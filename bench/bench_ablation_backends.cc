// Ablation: ASketch generality over sketch backends. Runs the same
// 128 KB budget with Count-Min, conservative-update Count-Min, SALSA,
// FCM, and Count Sketch backends, with and without the filter, at
// Zipf 1.5.
// Validates the paper's claim that the filter's improvement is orthogonal
// to the underlying sketch (§7.2.1, Fig. 8) — and extends it to two
// backends the paper did not measure.

#include <cstdio>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"

namespace asketch {
namespace bench {
namespace {

constexpr size_t kBudget = 128 * 1024;
constexpr uint32_t kWidth = 8;
constexpr uint32_t kFilterItems = 32;
constexpr uint64_t kSeed = 42;

template <typename T>
void Run(const char* name, T estimator, const Workload& workload) {
  const double update = UpdateThroughput(estimator, workload.stream);
  const double error = ObservedErrorPercent(estimator, workload);
  std::printf("%-34s %14.0f %18.4g\n", name, update, error);
}

void Main() {
  const double scale = ScaleFromEnv();
  const Workload workload(SyntheticSpec(1.5, scale));
  PrintBanner("Ablation: sketch backends",
              "Plain backend vs the same backend behind the filter; the "
              "filter's win must be backend-independent.",
              workload.spec.ToString());
  std::printf("%-34s %14s %18s\n", "configuration", "updates/ms",
              "observed err (%)");

  ASketchConfig config;
  config.total_bytes = kBudget;
  config.width = kWidth;
  config.filter_items = kFilterItems;
  config.seed = kSeed;

  Run("CountMin",
      CountMin(CountMinConfig::FromSpaceBudget(kBudget, kWidth, kSeed)),
      workload);
  Run("ASketch<CountMin>",
      MakeASketchCountMin<RelaxedHeapFilter>(config), workload);

  CountMinConfig conservative =
      CountMinConfig::FromSpaceBudget(kBudget, kWidth, kSeed);
  conservative.policy = CmUpdatePolicy::kConservative;
  Run("CountMin (conservative update)", CountMin(conservative), workload);
  CountMinConfig conservative_small = CountMinConfig::FromSpaceBudget(
      kBudget - kFilterItems * RelaxedHeapFilter::BytesPerItem(), kWidth,
      kSeed);
  conservative_small.policy = CmUpdatePolicy::kConservative;
  Run("ASketch<CountMin conservative>",
      ASketch<RelaxedHeapFilter, CountMin>(
          RelaxedHeapFilter(kFilterItems), CountMin(conservative_small)),
      workload);

  Run("SalsaCountMin",
      SalsaCountMin(SalsaConfig::FromSpaceBudget(kBudget, kWidth, kSeed)),
      workload);
  Run("ASketch<SalsaCountMin>",
      MakeASketchSalsa<RelaxedHeapFilter>(config), workload);

  FcmConfig fcm_config =
      FcmConfig::FromSpaceBudget(kBudget, kWidth, kFilterItems, kSeed);
  Run("FCM", Fcm(fcm_config), workload);
  Run("ASketch<FCM>", MakeASketchFcm<RelaxedHeapFilter>(config), workload);

  Run("CountSketch",
      CountSketch(CountSketchConfig::FromSpaceBudget(kBudget, kWidth,
                                                     kSeed)),
      workload);
  Run("ASketch<CountSketch>",
      MakeASketchCountSketch<RelaxedHeapFilter>(config), workload);
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
