// Ablation: the exchange policy. Compares the full ASketch against a
// variant with exchanges disabled (the filter keeps whatever 32 keys
// arrived first — pure early aggregation, no adaptation). The exchange
// policy is what lets the filter converge onto the true heavy hitters
// when the head of the distribution does not arrive first.

#include <cstdio>
#include <vector>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"

namespace asketch {
namespace bench {
namespace {

constexpr size_t kBudget = 128 * 1024;
constexpr uint32_t kWidth = 8;
constexpr uint32_t kFilterItems = 32;
constexpr uint64_t kSeed = 42;

ASketch<RelaxedHeapFilter, CountMin> Make(bool exchanges) {
  const CountMinConfig sketch_config = CountMinConfig::FromSpaceBudget(
      kBudget - kFilterItems * RelaxedHeapFilter::BytesPerItem(), kWidth,
      kSeed);
  return ASketch<RelaxedHeapFilter, CountMin>(
      RelaxedHeapFilter(kFilterItems), CountMin(sketch_config),
      exchanges);
}

void Main() {
  const double scale = ScaleFromEnv();
  PrintBanner("Ablation: exchange policy",
              "ASketch vs ASketch with exchanges disabled (first-come "
              "filter), across skews.",
              SyntheticSpec(0, scale).ToString());
  std::printf("%-8s | %14s %14s | %18s %18s | %12s\n", "skew",
              "upd/ms (on)", "upd/ms (off)", "err%% (on)", "err%% (off)",
              "precision@32");
  for (const double skew : {0.5, 1.0, 1.5, 2.0, 2.5}) {
    const Workload workload(SyntheticSpec(skew, scale));
    auto with_exchange = Make(true);
    auto without_exchange = Make(false);
    const double on_thpt = UpdateThroughput(with_exchange,
                                            workload.stream);
    const double off_thpt = UpdateThroughput(without_exchange,
                                             workload.stream);
    const double on_err = ObservedErrorPercent(with_exchange, workload);
    const double off_err = ObservedErrorPercent(without_exchange,
                                                workload);
    std::vector<item_t> reported;
    for (const FilterEntry& e : without_exchange.TopK()) {
      reported.push_back(e.key);
    }
    const double off_precision =
        PrecisionAtK(reported, workload.truth, kFilterItems);
    std::printf("%-8.1f | %14.0f %14.0f | %18.4g %18.4g | %12.2f\n", skew,
                on_thpt, off_thpt, on_err, off_err, off_precision);
  }
  std::printf("\n(precision@32 is for the exchange-OFF filter; the "
              "exchange-ON variant reaches ~1.0 at skew >= 1, see "
              "bench_table5_precision)\n");
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
