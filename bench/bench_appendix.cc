// Appendix experiments:
//   Figure 16 — average relative error over all low-frequency items
//               (ASketch vs Count-Min, 128 KB, skew 0.8..1.8);
//   Table 7  — average accumulated error of the top-10 highest-error
//              items (ASketch vs Count-Min).
// Together these show the filter costs the cold tail essentially nothing
// (Theorem 1's bound in practice).

#include <cstdio>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"
#include "src/sketch/count_min.h"

namespace asketch {
namespace bench {
namespace {

constexpr size_t kBudget = 128 * 1024;
constexpr uint32_t kWidth = 8;
constexpr uint32_t kFilterItems = 32;
constexpr uint64_t kSeed = 42;

void Main() {
  const double scale = ScaleFromEnv();
  PrintBanner("Figure 16 + Table 7 (Appendix)",
              "Low-frequency-item cost of the filter: avg relative error "
              "over all low-frequency items and mean error of the top-10 "
              "error items.",
              SyntheticSpec(0, scale).ToString());
  std::printf("%-8s | %16s %16s | %16s %16s\n", "", "--- Fig16: low-freq",
              "avg rel err ---", "--- Table 7: top-10", "error items ---");
  std::printf("%-8s | %16s %16s | %16s %16s\n", "skew", "ASketch",
              "Count-Min", "ASketch", "Count-Min");
  for (const double skew : ErrorSkewGrid()) {
    const Workload workload(SyntheticSpec(skew, scale));
    CountMin cm(CountMinConfig::FromSpaceBudget(kBudget, kWidth, kSeed));
    ASketchConfig config;
    config.total_bytes = kBudget;
    config.width = kWidth;
    config.filter_items = kFilterItems;
    config.seed = kSeed;
    auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
    for (const Tuple& t : workload.stream) {
      cm.Update(t.key, t.value);
      as.Update(t.key, t.value);
    }
    const auto cm_est = [&cm](item_t k) { return cm.Estimate(k); };
    const auto as_est = [&as](item_t k) { return as.Estimate(k); };
    std::printf("%-8.1f | %16.4g %16.4g | %16.1f %16.1f\n", skew,
                LowFrequencyAverageRelativeError(as_est, workload.truth,
                                                 kFilterItems),
                LowFrequencyAverageRelativeError(cm_est, workload.truth,
                                                 kFilterItems),
                TopErrorItemsMeanError(as_est, workload.truth, 10),
                TopErrorItemsMeanError(cm_est, workload.truth, 10));
  }
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
