// Batched-ingestion throughput: scalar Update() loop vs UpdateBatch()
// on the paper's default setting (Zipf-1.0, 128 KB synopsis, w = 8,
// Relaxed-Heap filter of 32 items), plus the other filter backends and
// a skew sweep. UpdateBatch probes the filter for a whole block of keys
// with one SIMD pass per key block and prefetches the sketch rows of
// upcoming misses, so the win grows with the miss rate.

#include <algorithm>
#include <cstdio>

#include "bench/common/bench_util.h"
#include "src/common/stopwatch.h"
#include "src/core/asketch.h"

namespace asketch {
namespace bench {
namespace {

constexpr size_t kBudget = 128 * 1024;
constexpr uint32_t kWidth = 8;
constexpr uint32_t kFilterItems = 32;
constexpr uint64_t kSeed = 42;
constexpr size_t kBatchTuples = 4096;

ASketchConfig DefaultConfig() {
  ASketchConfig config;
  config.total_bytes = kBudget;
  config.width = kWidth;
  config.filter_items = kFilterItems;
  config.seed = kSeed;
  return config;
}

/// Interleaved repetitions per measurement; the per-variant maximum is
/// reported. Alternating the two variants and keeping the best pass of
/// each makes the speedup ratio robust against CPU-frequency drift and
/// neighbor interference, which on shared machines dwarf the effect
/// being measured when each variant runs only once.
constexpr int kReps = 7;

/// Items/ms of a scalar per-tuple Update pass.
template <typename T>
double ScalarThroughput(T& estimator, const std::vector<Tuple>& stream) {
  return UpdateThroughput(estimator, stream);
}

/// Items/ms feeding the stream through UpdateBatch in kBatchTuples
/// blocks — the shape a block-reading ingest loop (asketch_cli) sees.
template <typename T>
double BatchThroughput(T& estimator, const std::vector<Tuple>& stream) {
  Stopwatch timer;
  const size_t n = stream.size();
  for (size_t begin = 0; begin < n; begin += kBatchTuples) {
    const size_t count = std::min(kBatchTuples, n - begin);
    estimator.UpdateBatch(
        std::span<const Tuple>(stream.data() + begin, count));
  }
  const double ms = timer.ElapsedMillis();
  return static_cast<double>(n) / ms;
}

template <typename FilterT>
void MeasureRow(const char* name, const Workload& workload) {
  auto scalar = MakeASketchCountMin<FilterT>(DefaultConfig());
  auto batched = MakeASketchCountMin<FilterT>(DefaultConfig());
  double scalar_tput = 0;
  double batch_tput = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    scalar_tput =
        std::max(scalar_tput, ScalarThroughput(scalar, workload.stream));
    batch_tput =
        std::max(batch_tput, BatchThroughput(batched, workload.stream));
  }
  std::printf("%-16s %12.0f %12.0f %8.2fx\n", name, scalar_tput,
              batch_tput, batch_tput / scalar_tput);
}

void Main() {
  const double scale = ScaleFromEnv();
  PrintBanner("Batched ingestion",
              "scalar Update loop vs UpdateBatch (4096-tuple blocks); "
              "128KB synopsis, w=8, 32-item filter.",
              SyntheticSpec(1.0, scale).ToString());

  {
    const Workload workload(SyntheticSpec(1.0, scale));
    std::printf("Zipf 1.0, by filter backend:\n");
    std::printf("%-16s %12s %12s %9s\n", "filter", "scalar/ms",
                "batched/ms", "speedup");
    MeasureRow<VectorFilter>("Vector", workload);
    MeasureRow<StrictHeapFilter>("Strict-Heap", workload);
    MeasureRow<RelaxedHeapFilter>("Relaxed-Heap", workload);
    MeasureRow<StreamSummaryFilter>("Stream-Summary", workload);
  }

  std::printf("\nRelaxed-Heap filter, by skew:\n");
  std::printf("%-8s %12s %12s %9s\n", "skew", "scalar/ms", "batched/ms",
              "speedup");
  for (const double skew : {0.5, 1.0, 1.5, 2.0}) {
    const Workload workload(SyntheticSpec(skew, scale));
    auto scalar = MakeASketchCountMin<RelaxedHeapFilter>(DefaultConfig());
    auto batched = MakeASketchCountMin<RelaxedHeapFilter>(DefaultConfig());
    double scalar_tput = 0;
    double batch_tput = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      scalar_tput =
          std::max(scalar_tput, ScalarThroughput(scalar, workload.stream));
      batch_tput =
          std::max(batch_tput, BatchThroughput(batched, workload.stream));
    }
    std::printf("%-8.2f %12.0f %12.0f %8.2fx\n", skew, scalar_tput,
                batch_tput, batch_tput / scalar_tput);
  }
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
