// Micro-benchmarks (google-benchmark): checkpoint cost for a 128 KB
// ASketch — envelope encode (serialize + CRC32C), decode/validate, the
// raw CRC32C scan, and a full durable SnapshotStore::Save/Load round
// trip through the filesystem. Answers "what does a checkpoint interval
// of N tuples cost the ingest path?".

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/crc32c.h"
#include "src/common/snapshot.h"
#include "src/core/asketch.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

constexpr size_t kBudget = 128 * 1024;

ASketch<RelaxedHeapFilter, CountMin> WarmSketch() {
  ASketchConfig config;
  config.total_bytes = kBudget;
  config.width = 8;
  config.filter_items = 32;
  config.seed = 7;
  auto sketch = MakeASketchCountMin<RelaxedHeapFilter>(config);
  StreamSpec spec;
  spec.stream_size = 1 << 20;
  spec.num_distinct = 1 << 16;
  spec.skew = 1.2;
  spec.seed = 3;
  for (const Tuple& t : GenerateStream(spec)) {
    sketch.Update(t.key, t.value);
  }
  return sketch;
}

void BM_SnapshotEncode(benchmark::State& state) {
  const auto sketch = WarmSketch();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ToSnapshot(sketch));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ToSnapshot(sketch).size()));
}
BENCHMARK(BM_SnapshotEncode);

void BM_SnapshotDecode(benchmark::State& state) {
  const auto sketch = WarmSketch();
  const std::vector<uint8_t> blob = ToSnapshot(sketch);
  using Summary = ASketch<RelaxedHeapFilter, CountMin>;
  for (auto _ : state) {
    auto restored = FromSnapshot<Summary>(blob.data(), blob.size());
    benchmark::DoNotOptimize(restored);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_SnapshotDecode);

void BM_Crc32c(benchmark::State& state) {
  const std::vector<uint8_t> blob = ToSnapshot(WarmSketch());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(blob.data(), blob.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_Crc32c);

void BM_SnapshotStoreSave(benchmark::State& state) {
  using Summary = ASketch<RelaxedHeapFilter, CountMin>;
  const auto sketch = WarmSketch();
  BinaryWriter writer;
  sketch.SerializeTo(writer);
  const std::vector<uint8_t>& payload = writer.buffer();
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "asketch_bench_ckpt";
  fs::create_directories(dir);
  SnapshotStore store((dir / "bench").string(), /*retain=*/2);
  for (auto _ : state) {
    auto err = store.Save(Summary::kSnapshotPayloadType, payload);
    benchmark::DoNotOptimize(err);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
  fs::remove_all(dir);
}
BENCHMARK(BM_SnapshotStoreSave);

void BM_SnapshotStoreLoad(benchmark::State& state) {
  using Summary = ASketch<RelaxedHeapFilter, CountMin>;
  const auto sketch = WarmSketch();
  BinaryWriter writer;
  sketch.SerializeTo(writer);
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "asketch_bench_ckpt";
  fs::create_directories(dir);
  SnapshotStore store((dir / "bench").string(), /*retain=*/2);
  store.Save(Summary::kSnapshotPayloadType, writer.buffer());
  int64_t bytes = 0;
  for (auto _ : state) {
    auto loaded = store.Load(Summary::kSnapshotPayloadType);
    benchmark::DoNotOptimize(loaded);
    if (loaded.has_value()) {
      bytes += static_cast<int64_t>(loaded->payload.size());
    }
  }
  state.SetBytesProcessed(bytes);
  fs::remove_all(dir);
}
BENCHMARK(BM_SnapshotStoreLoad);

}  // namespace
}  // namespace asketch

BENCHMARK_MAIN();
