// Delta-merge ingest vs queued per-tuple ingest (the PR 9 tentpole):
// decode threads feeding the 4-shard loopback ShardSet either push raw
// tuple batches onto the shard queues (--ingest-mode queue, the
// pre-delta architecture) or accumulate private DeltaBatches that the
// shard owners fold in at epoch boundaries (--ingest-mode delta).
//
// What the delta path removes from the per-tuple cost: the SIMD filter
// probe + seqlock write section + exchange bookkeeping every tuple pays
// inside ASketch::UpdateBatch becomes, for head-resident keys (~90% of
// a zipf-1.5 stream's mass), one open-addressed probe into a private
// 16-entry table; and the queue mutex/condvar handshake per sub-batch
// becomes one handoff per delta_flush_tuples epoch. The owner pays one
// dense sketch merge per epoch, amortized across the epoch's tuples.
//
// Reported per (mode, decode threads): sustained updates/s, plus a
// delta/queue speedup row per thread count. The acceptance bar is
// >= 1.5x at 8 decode threads (ISSUE 9); on a single-core host the win
// is pure hot-path economy, on SMP hosts delta additionally scales past
// the single-writer ceiling because decode work runs truly in parallel.
//
// ASKETCH_BENCH_SCALE scales the stream. Flags:
//   --mode queue|delta|both   (default both: prints the speedup rows)
//   --threads N               bench only N decode threads (default
//                             sweep 1,2,4,8)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common/bench_util.h"
#include "src/common/stopwatch.h"
#include "src/net/shard_set.h"

namespace asketch {
namespace bench {
namespace {

using net::DeltaIngestState;
using net::IngestMode;
using net::ShardSet;
using net::ShardSetOptions;

constexpr size_t kIngestBatch = 8192;  // one UPDATE frame's worth

uint32_t g_flush_tuples = 0;  // 0 = ShardSetOptions default

ShardSetOptions LoopbackOptions(IngestMode mode) {
  ShardSetOptions options;  // 4 shards — asketchd's default topology
  options.ingest_mode = mode;
  if (g_flush_tuples > 0) options.delta_flush_tuples = g_flush_tuples;
  return options;
}

void IngestPass(ShardSet& shards, IngestMode mode, uint32_t threads,
                const std::vector<Tuple>& stream) {
  const size_t per_thread = stream.size() / threads;
  std::vector<std::thread> decoders;
  decoders.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    const size_t begin = t * per_thread;
    const size_t end =
        t + 1 == threads ? stream.size() : begin + per_thread;
    decoders.emplace_back([&shards, &stream, mode, begin, end] {
      DeltaIngestState state = shards.MakeDeltaState();
      DeltaIngestState* state_ptr =
          mode == IngestMode::kDelta ? &state : nullptr;
      for (size_t at = begin; at < end; at += kIngestBatch) {
        const size_t count = std::min(kIngestBatch, end - at);
        shards.Ingest(std::span<const Tuple>(stream.data() + at, count),
                      state_ptr);
      }
      if (state_ptr != nullptr) shards.FlushDeltas(state);
    });
  }
  for (std::thread& t : decoders) t.join();
  shards.Drain();
}

/// Runs one (mode, threads) configuration and returns steady-state
/// updates/s: an untimed pass first warms the shard filters (both modes
/// get the identical warm-up, through their own ingest path), then the
/// best of three timed passes — each measured to full visibility (all
/// deltas flushed, all queues drained) — is reported, which filters the
/// scheduler noise of shared hosts out of the comparison.
double RunOnce(IngestMode mode, uint32_t threads,
               const std::vector<Tuple>& stream) {
  ShardSet shards(LoopbackOptions(mode));
  IngestPass(shards, mode, threads, stream);  // warm-up, untimed
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    IngestPass(shards, mode, threads, stream);
    best = std::max(best,
                    static_cast<double>(stream.size()) /
                        watch.ElapsedSeconds());
  }
  return best;
}

int Main(int argc, char** argv) {
  const char* mode_arg = "both";
  uint32_t only_threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      mode_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      only_threads = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--flush-tuples") == 0 && i + 1 < argc) {
      g_flush_tuples = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: bench_delta_ingest [--mode queue|delta|both] "
                   "[--threads N]\n");
      return 2;
    }
  }
  const bool run_queue = std::strcmp(mode_arg, "delta") != 0;
  const bool run_delta = std::strcmp(mode_arg, "queue") != 0;
  if (!run_queue && !run_delta) {
    std::fprintf(stderr, "bad --mode %s\n", mode_arg);
    return 2;
  }

  const double scale = ScaleFromEnv();
  const StreamSpec spec = SyntheticSpec(/*skew=*/1.5, scale);
  std::printf("# bench_delta_ingest: %s, 4 shards, batch %zu\n",
              spec.ToString().c_str(), kIngestBatch);
  const std::vector<Tuple> stream = GenerateStream(spec);

  std::vector<uint32_t> thread_counts = {1, 2, 4, 8};
  if (only_threads > 0) thread_counts = {only_threads};
  std::printf("%-8s %8s %14s\n", "mode", "threads", "updates/s");
  for (const uint32_t threads : thread_counts) {
    double queue_rate = 0;
    double delta_rate = 0;
    if (run_queue) {
      queue_rate = RunOnce(IngestMode::kQueue, threads, stream);
      std::printf("%-8s %8u %14.0f\n", "queue", threads, queue_rate);
    }
    if (run_delta) {
      delta_rate = RunOnce(IngestMode::kDelta, threads, stream);
      std::printf("%-8s %8u %14.0f\n", "delta", threads, delta_rate);
    }
    if (run_queue && run_delta && queue_rate > 0) {
      std::printf("speedup_delta_vs_queue_%ut=%.2f\n", threads,
                  delta_rate / queue_rate);
    }
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main(int argc, char** argv) { return asketch::bench::Main(argc, argv); }
