// Extension bench: distributed aggregation via mergeable summaries.
//
// A fleet of agents each summarizes its own partition of a stream; the
// partial synopses are merged at a coordinator. Compares the merged
// ASketch / Count-Min against a single summary that saw the whole stream
// (the merge should cost little accuracy), across agent counts. This is
// the aggregation mode the SPMD section's "combination from multiple
// kernels" alludes to, made explicit through MergeFrom.

#include <cstdio>
#include <vector>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"

namespace asketch {
namespace bench {
namespace {

constexpr size_t kBudget = 128 * 1024;
constexpr uint32_t kWidth = 8;
constexpr uint32_t kFilterItems = 32;
constexpr uint64_t kSeed = 42;

ASketchConfig Config() {
  ASketchConfig config;
  config.total_bytes = kBudget;
  config.width = kWidth;
  config.filter_items = kFilterItems;
  config.seed = kSeed;
  return config;
}

void Main() {
  const double scale = ScaleFromEnv();
  const Workload workload(SyntheticSpec(1.5, scale));
  PrintBanner("Extension: distributed merge",
              "Per-agent partial ASketch/Count-Min synopses merged at a "
              "coordinator vs a single whole-stream summary.",
              workload.spec.ToString());

  // Whole-stream references.
  auto whole_as = MakeASketchCountMin<RelaxedHeapFilter>(Config());
  CountMin whole_cm(CountMinConfig::FromSpaceBudget(kBudget, kWidth,
                                                    kSeed));
  for (const Tuple& t : workload.stream) {
    whole_as.Update(t.key, t.value);
    whole_cm.Update(t.key, t.value);
  }
  const double whole_as_error = ObservedErrorPercent(whole_as, workload);
  const double whole_cm_error = ObservedErrorPercent(whole_cm, workload);

  std::printf("%-10s %20s %20s\n", "agents", "merged ASketch err%",
              "merged CountMin err%");
  std::printf("%-10s %20.4g %20.4g   (whole-stream reference)\n", "1",
              whole_as_error, whole_cm_error);
  for (const uint32_t agents : {2u, 4u, 8u, 16u}) {
    std::vector<ASketch<RelaxedHeapFilter, CountMin>> as_parts;
    std::vector<CountMin> cm_parts;
    for (uint32_t i = 0; i < agents; ++i) {
      as_parts.push_back(MakeASketchCountMin<RelaxedHeapFilter>(Config()));
      cm_parts.emplace_back(
          CountMinConfig::FromSpaceBudget(kBudget, kWidth, kSeed));
    }
    for (size_t i = 0; i < workload.stream.size(); ++i) {
      const Tuple& t = workload.stream[i];
      as_parts[i % agents].Update(t.key, t.value);
      cm_parts[i % agents].Update(t.key, t.value);
    }
    for (uint32_t i = 1; i < agents; ++i) {
      const auto as_error = as_parts[0].MergeFrom(as_parts[i]);
      ASKETCH_CHECK(!as_error.has_value());
      const auto cm_error = cm_parts[0].MergeFrom(cm_parts[i]);
      ASKETCH_CHECK(!cm_error.has_value());
    }
    std::printf("%-10u %20.4g %20.4g\n", agents,
                ObservedErrorPercent(as_parts[0], workload),
                ObservedErrorPercent(cm_parts[0], workload));
  }
  std::printf("\n(merged Count-Min is bit-identical to the whole-stream "
              "sketch; merged ASketch adds only the per-agent exchange "
              "over-estimates)\n");
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
