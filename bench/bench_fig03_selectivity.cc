// Figure 3: filter selectivity (N2/N, the fraction of stream weight that
// reaches the underlying sketch) as a function of Zipf skew, for filter
// sizes |F| in {8, 32, 64, 128}.

#include <cstdio>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"

namespace asketch {
namespace bench {
namespace {

void Main() {
  const double scale = ScaleFromEnv();
  PrintBanner("Figure 3",
              "Filter selectivity (N2/N) vs skew for |F| in "
              "{8, 32, 64, 128}; ASketch 128KB over Count-Min.",
              SyntheticSpec(0, scale).ToString());
  const std::vector<uint32_t> filter_sizes = {8, 32, 64, 128};
  std::printf("%-8s", "skew");
  for (const uint32_t f : filter_sizes) {
    std::printf("   |F|=%-6u", f);
  }
  std::printf("\n");
  for (const double skew : SkewGrid()) {
    const Workload workload(SyntheticSpec(skew, scale));
    std::printf("%-8.2f", skew);
    for (const uint32_t f : filter_sizes) {
      ASketchConfig config;
      config.total_bytes = 128 * 1024;
      config.width = 8;
      config.filter_items = f;
      auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
      for (const Tuple& t : workload.stream) as.Update(t.key, t.value);
      std::printf("   %-9.4f", as.stats().FilterSelectivity());
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
