// Figure 5(a,b): stream-processing and query-processing throughput vs
// Zipf skew for ASketch, FCM, Count-Min, and Holistic UDAFs (128 KB each,
// Relaxed-Heap filter of 32 items).

#include <cstdio>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"
#include "src/sketch/count_min.h"
#include "src/sketch/fcm.h"
#include "src/sketch/holistic_udaf.h"

namespace asketch {
namespace bench {
namespace {

constexpr size_t kBudget = 128 * 1024;
constexpr uint32_t kWidth = 8;
constexpr uint32_t kFilterItems = 32;
constexpr uint64_t kSeed = 42;

struct Row {
  double update;
  double query;
};

template <typename T>
Row Measure(T estimator, const Workload& workload) {
  return Row{UpdateThroughput(estimator, workload.stream),
             QueryThroughput(estimator, workload.queries)};
}

void Main() {
  const double scale = ScaleFromEnv();
  PrintBanner("Figure 5",
              "(a) stream and (b) query throughput vs skew; 128KB "
              "synopses, ASketch uses a Relaxed-Heap filter of 32 items.",
              SyntheticSpec(0, scale).ToString());

  std::printf("%-8s | %12s %12s %12s %12s | %12s %12s %12s %12s\n", "",
              "---------", "(a) updates", "/ms ------", "", "---------",
              "(b) queries", "/ms ------", "");
  std::printf("%-8s | %12s %12s %12s %12s | %12s %12s %12s %12s\n", "skew",
              "ASketch", "FCM", "CountMin", "H-UDAF", "ASketch", "FCM",
              "CountMin", "H-UDAF");
  for (const double skew : SkewGrid()) {
    const Workload workload(SyntheticSpec(skew, scale));
    ASketchConfig config;
    config.total_bytes = kBudget;
    config.width = kWidth;
    config.filter_items = kFilterItems;
    config.seed = kSeed;
    const Row asketch_row =
        Measure(MakeASketchCountMin<RelaxedHeapFilter>(config), workload);
    const Row fcm_row = Measure(
        Fcm(FcmConfig::FromSpaceBudget(kBudget, kWidth, kFilterItems,
                                       kSeed)),
        workload);
    const Row cm_row = Measure(
        CountMin(CountMinConfig::FromSpaceBudget(kBudget, kWidth, kSeed)),
        workload);
    const Row udaf_row = Measure(
        HolisticUdaf(HolisticUdafConfig::FromSpaceBudget(
            kBudget, kWidth, kFilterItems, kSeed)),
        workload);
    std::printf(
        "%-8.2f | %12.0f %12.0f %12.0f %12.0f | %12.0f %12.0f %12.0f "
        "%12.0f\n",
        skew, asketch_row.update, fcm_row.update, cm_row.update,
        udaf_row.update, asketch_row.query, fcm_row.query, cm_row.query,
        udaf_row.query);
  }
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
