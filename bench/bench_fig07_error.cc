// Figure 7 + Table 4: observed error vs skew (0.8 .. 1.8) for ASketch,
// Count-Min, and Holistic UDAFs at 128 KB; and ASketch's improvement
// factor over Count-Min at 64 KB and 128 KB (Table 4).

#include <cstdio>
#include <vector>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"
#include "src/sketch/count_min.h"
#include "src/sketch/holistic_udaf.h"

namespace asketch {
namespace bench {
namespace {

constexpr uint32_t kWidth = 8;
constexpr uint32_t kFilterItems = 32;
constexpr uint64_t kSeed = 42;

double ASketchError(const Workload& workload, size_t budget) {
  ASketchConfig config;
  config.total_bytes = budget;
  config.width = kWidth;
  config.filter_items = kFilterItems;
  config.seed = kSeed;
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
  for (const Tuple& t : workload.stream) as.Update(t.key, t.value);
  return ObservedErrorPercent(as, workload);
}

double CountMinError(const Workload& workload, size_t budget) {
  CountMin cm(CountMinConfig::FromSpaceBudget(budget, kWidth, kSeed));
  for (const Tuple& t : workload.stream) cm.Update(t.key, t.value);
  return ObservedErrorPercent(cm, workload);
}

double UdafError(const Workload& workload, size_t budget) {
  HolisticUdaf udaf(HolisticUdafConfig::FromSpaceBudget(
      budget, kWidth, kFilterItems, kSeed));
  for (const Tuple& t : workload.stream) udaf.Update(t.key, t.value);
  return ObservedErrorPercent(udaf, workload);
}

void Main() {
  const double scale = ScaleFromEnv();
  PrintBanner("Figure 7 + Table 4",
              "Observed error (%) vs skew at 128KB; improvement factor of "
              "ASketch over Count-Min at 64KB and 128KB.",
              SyntheticSpec(0, scale).ToString());
  std::printf("%-8s %14s %14s %14s | %16s %16s\n", "skew", "ASketch",
              "Count-Min", "H-UDAF", "x-improve 64KB", "x-improve 128KB");
  for (const double skew : ErrorSkewGrid()) {
    const Workload workload(SyntheticSpec(skew, scale));
    const double as_128 = ASketchError(workload, 128 * 1024);
    const double cm_128 = CountMinError(workload, 128 * 1024);
    const double udaf_128 = UdafError(workload, 128 * 1024);
    const double as_64 = ASketchError(workload, 64 * 1024);
    const double cm_64 = CountMinError(workload, 64 * 1024);
    const double improve_64 = as_64 > 0 ? cm_64 / as_64 : 0;
    const double improve_128 = as_128 > 0 ? cm_128 / as_128 : 0;
    std::printf("%-8.1f %14.4g %14.4g %14.4g | %16.1f %16.1f\n", skew,
                as_128, cm_128, udaf_128, improve_64, improve_128);
  }
  std::printf("\n(x-improve of 0.0 means the ASketch error was exactly "
              "zero at that skew)\n");
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
