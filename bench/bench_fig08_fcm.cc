// Figure 8: observed error of ASketch-FCM (ASketch over an FCM backend,
// MG classifier disabled) vs plain FCM — the generality-of-ASketch
// experiment.

#include <cstdio>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"
#include "src/sketch/fcm.h"

namespace asketch {
namespace bench {
namespace {

constexpr size_t kBudget = 128 * 1024;
constexpr uint32_t kWidth = 8;
constexpr uint32_t kFilterItems = 32;
constexpr uint64_t kSeed = 42;

void Main() {
  const double scale = ScaleFromEnv();
  PrintBanner("Figure 8",
              "Observed error (%) vs skew: ASketch-FCM vs FCM at 128KB.",
              SyntheticSpec(0, scale).ToString());
  std::printf("%-8s %16s %16s %14s\n", "skew", "ASketch-FCM", "FCM",
              "x-improve");
  for (const double skew : ErrorSkewGrid()) {
    const Workload workload(SyntheticSpec(skew, scale));
    Fcm fcm(FcmConfig::FromSpaceBudget(kBudget, kWidth, kFilterItems,
                                       kSeed));
    for (const Tuple& t : workload.stream) fcm.Update(t.key, t.value);
    const double fcm_error = ObservedErrorPercent(fcm, workload);

    ASketchConfig config;
    config.total_bytes = kBudget;
    config.width = kWidth;
    config.filter_items = kFilterItems;
    config.seed = kSeed;
    auto as = MakeASketchFcm<RelaxedHeapFilter>(config);
    for (const Tuple& t : workload.stream) as.Update(t.key, t.value);
    const double as_error = ObservedErrorPercent(as, workload);

    std::printf("%-8.1f %16.4g %16.4g %14.1f\n", skew, as_error,
                fcm_error, as_error > 0 ? fcm_error / as_error : 0.0);
  }
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
