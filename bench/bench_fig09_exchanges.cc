// Figure 9: average number of filter<->sketch exchanges vs skew
// (Relaxed-Heap filter of 32 items, ASketch 128KB).

#include <cstdio>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"

namespace asketch {
namespace bench {
namespace {

void Main() {
  const double scale = ScaleFromEnv();
  PrintBanner("Figure 9",
              "Number of exchanges between filter and sketch vs skew; "
              "also the writeback count (exchanges whose evicted entry "
              "carried exact hits).",
              SyntheticSpec(0, scale).ToString());
  std::printf("%-8s %14s %14s %18s\n", "skew", "exchanges", "writebacks",
              "exchanges/N (ppm)");
  for (const double skew : SkewGrid()) {
    const Workload workload(SyntheticSpec(skew, scale));
    ASketchConfig config;
    config.total_bytes = 128 * 1024;
    config.width = 8;
    config.filter_items = 32;
    auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
    for (const Tuple& t : workload.stream) as.Update(t.key, t.value);
    const ASketchStats& stats = as.stats();
    std::printf("%-8.2f %14llu %14llu %18.1f\n", skew,
                static_cast<unsigned long long>(stats.exchanges),
                static_cast<unsigned long long>(stats.exchange_writebacks),
                1e6 * static_cast<double>(stats.exchanges) /
                    static_cast<double>(workload.stream.size()));
  }
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
