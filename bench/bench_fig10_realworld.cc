// Figure 10(a-d): stream-processing throughput and observed error on the
// two (simulated) real-world traces — IP-trace-like (Zipf ~0.9) and
// Kosarak-like (Zipf ~1.0) — for Count-Min, ASketch, Holistic UDAFs,
// FCM, and ASketch-FCM, all at 128 KB.
//
// The paper's FCM on real data omits the MG counter (§7.3); we follow
// that: `FCM` here runs with the classifier disabled.

#include <cstdio>
#include <string>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"
#include "src/sketch/count_min.h"
#include "src/sketch/fcm.h"
#include "src/sketch/holistic_udaf.h"
#include "src/workload/trace_simulators.h"

namespace asketch {
namespace bench {
namespace {

constexpr size_t kBudget = 128 * 1024;
constexpr uint32_t kWidth = 8;
constexpr uint32_t kFilterItems = 32;
constexpr uint64_t kSeed = 42;

template <typename T>
void Run(const char* name, T estimator, const Workload& workload) {
  const double update = UpdateThroughput(estimator, workload.stream);
  const double error = ObservedErrorPercent(estimator, workload);
  std::printf("  %-16s %16.0f %18.4g\n", name, update, error);
}

void RunTrace(const char* title, const StreamSpec& spec) {
  const Workload workload(spec);
  std::printf("%s  [%s]\n", title, spec.ToString().c_str());
  std::printf("  %-16s %16s %18s\n", "method", "updates/ms",
              "observed err (%)");
  Run("CMS",
      CountMin(CountMinConfig::FromSpaceBudget(kBudget, kWidth, kSeed)),
      workload);
  ASketchConfig config;
  config.total_bytes = kBudget;
  config.width = kWidth;
  config.filter_items = kFilterItems;
  config.seed = kSeed;
  Run("ASketch", MakeASketchCountMin<RelaxedHeapFilter>(config), workload);
  Run("H-UDAF",
      HolisticUdaf(HolisticUdafConfig::FromSpaceBudget(
          kBudget, kWidth, kFilterItems, kSeed)),
      workload);
  FcmConfig fcm_config =
      FcmConfig::FromSpaceBudget(kBudget, kWidth, kFilterItems, kSeed);
  fcm_config.use_mg_classifier = false;  // §7.3 variant
  Run("FCM", Fcm(fcm_config), workload);
  Run("ASketch-FCM", MakeASketchFcm<RelaxedHeapFilter>(config), workload);
  std::printf("\n");
}

void Main() {
  const double scale = ScaleFromEnv();
  PrintBanner("Figure 10",
              "Real-world traces (simulated: same skew and N/M shape as "
              "the originals; see DESIGN.md).",
              "IP-trace-like and Kosarak-like");
  // The IP trace is huge; default to ~1% of it at scale 1.
  RunTrace("(a,b) IP-trace stream", IpTraceLikeSpec(0.01 * scale));
  RunTrace("(c,d) Kosarak click stream", KosarakLikeSpec(0.5 * scale));
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
