// Figure 11: observed error of Space Saving (both the `min` and the
// `zero` estimate adaptations) vs ASketch and ASketch-FCM on the
// Kosarak-like click stream, all methods at 128 KB.

#include <cstdio>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"
#include "src/sketch/space_saving.h"
#include "src/workload/trace_simulators.h"

namespace asketch {
namespace bench {
namespace {

constexpr size_t kBudget = 128 * 1024;

template <typename T>
void Run(const char* name, T estimator, const Workload& workload) {
  for (const Tuple& t : workload.stream) {
    estimator.Update(t.key, t.value);
  }
  std::printf("%-22s %18.4g\n", name,
              ObservedErrorPercent(estimator, workload));
}

void Main() {
  const double scale = ScaleFromEnv();
  const Workload workload(KosarakLikeSpec(0.5 * scale));
  PrintBanner("Figure 11",
              "Observed error (%) on the Kosarak-like stream: ASketch vs "
              "Space Saving adapted to frequency estimation.",
              workload.spec.ToString());
  std::printf("%-22s %18s\n", "method", "observed err (%)");

  ASketchConfig config;
  config.total_bytes = kBudget;
  config.width = 8;
  config.filter_items = 32;
  Run("ASketch", MakeASketchCountMin<RelaxedHeapFilter>(config), workload);
  Run("ASketch-FCM", MakeASketchFcm<RelaxedHeapFilter>(config), workload);
  const uint32_t ss_items =
      static_cast<uint32_t>(kBudget / SpaceSaving::BytesPerItem());
  Run("SpaceSaving(min)",
      SpaceSaving(ss_items, SpaceSavingEstimateMode::kMin), workload);
  Run("SpaceSaving(zero)",
      SpaceSaving(ss_items, SpaceSavingEstimateMode::kZero), workload);
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
