// Figure 12: stream-processing throughput of pipeline-parallel ASketch
// (filter core + sketch core) and pipeline-parallel Holistic UDAFs vs the
// sequential ASketch baseline, across skews.
//
// NOTE: the paper ran this on an 8-core Xeon; this container exposes one
// core, so the pipeline cannot show a speedup here — the bench still
// exercises the real two-thread deployment and reports honest numbers
// (see EXPERIMENTS.md for the discussion).

#include <cstdio>
#include <thread>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"
#include "src/core/pipeline_asketch.h"
#include "src/core/pipeline_holistic_udaf.h"
#include "src/sketch/holistic_udaf.h"

namespace asketch {
namespace bench {
namespace {

constexpr size_t kBudget = 128 * 1024;

double PipelineThroughput(const Workload& workload,
                          const ASketchConfig& config) {
  PipelineASketch pipeline(config);
  Stopwatch timer;
  for (const Tuple& t : workload.stream) {
    pipeline.Update(t.key, t.value);
  }
  pipeline.Flush();
  return static_cast<double>(workload.stream.size()) /
         timer.ElapsedMillis();
}

double PipelineUdafThroughput(const Workload& workload) {
  PipelineHolisticUdaf pipeline(HolisticUdafConfig::FromSpaceBudget(
      kBudget, 8, 32, 42));
  Stopwatch timer;
  for (const Tuple& t : workload.stream) {
    pipeline.Update(t.key, t.value);
  }
  pipeline.Flush();
  return static_cast<double>(workload.stream.size()) /
         timer.ElapsedMillis();
}

void Main() {
  const double scale = ScaleFromEnv();
  PrintBanner(
      "Figure 12",
      "Pipeline-parallel ASketch and pipeline-parallel Holistic UDAFs vs "
      "sequential ASketch. Hardware note: this host reports "
      + std::to_string(std::thread::hardware_concurrency()) +
      " hardware thread(s); the paper used 8 cores.",
      SyntheticSpec(0, scale).ToString());
  std::printf("%-8s %20s %20s %20s\n", "skew", "ASketch (items/ms)",
              "Parallel ASketch", "Parallel H-UDAF");
  for (const double skew : SkewGrid()) {
    const Workload workload(SyntheticSpec(skew, scale));
    ASketchConfig config;
    config.total_bytes = kBudget;
    config.width = 8;
    config.filter_items = 32;
    auto sequential = MakeASketchCountMin<RelaxedHeapFilter>(config);
    const double seq = UpdateThroughput(sequential, workload.stream);
    const double par = PipelineThroughput(workload, config);
    const double udaf_thpt = PipelineUdafThroughput(workload);
    std::printf("%-8.2f %20.0f %20.0f %20.0f\n", skew, seq, par,
                udaf_thpt);
  }
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
