// Figure 13: SPMD scalability — aggregate throughput of ASketch and
// Count-Min counting kernels as the number of kernels grows (the paper
// used a 32-core Sandy Bridge; each kernel owns a 128 KB synopsis and a
// private sub-stream).
//
// On a single-core host the kernels time-share one CPU, so the aggregate
// curve is flat instead of linear — the bench still drives the real
// multi-threaded kernel group and prints per-kernel-count numbers.

#include <cstdio>
#include <thread>

#include "bench/common/bench_util.h"
#include "src/core/spmd_group.h"

namespace asketch {
namespace bench {
namespace {

void Main() {
  const double scale = ScaleFromEnv();
  // The paper's Fig. 13 stream: 1B tuples over 100M keys at skew 1.5;
  // scaled to 8M/0.8M at scale 1.
  StreamSpec spec;
  spec.stream_size = static_cast<uint64_t>(8'000'000 * scale);
  spec.num_distinct = static_cast<uint32_t>(800'000 * scale);
  spec.skew = 1.5;
  spec.seed = 7;
  PrintBanner(
      "Figure 13",
      "SPMD counting kernels: aggregate update throughput vs kernel "
      "count (each kernel 128KB). Host hardware threads: " +
          std::to_string(std::thread::hardware_concurrency()) + ".",
      spec.ToString());
  const std::vector<Tuple> stream = GenerateStream(spec);

  std::printf("%-10s %22s %22s %12s\n", "kernels", "ASketch (items/ms)",
              "Count-Min (items/ms)", "AS/CM");
  for (const uint32_t kernels : {1u, 2u, 4u, 8u, 16u, 32u}) {
    ASketchConfig config;
    config.total_bytes = 128 * 1024;
    config.width = 8;
    config.filter_items = 32;
    SpmdAsketchGroup as_group(kernels, config);
    Stopwatch as_timer;
    as_group.Process(stream);
    const double as_thpt =
        static_cast<double>(stream.size()) / as_timer.ElapsedMillis();

    SpmdCountMinGroup cm_group(
        kernels, CountMinConfig::FromSpaceBudget(128 * 1024, 8, 42));
    Stopwatch cm_timer;
    cm_group.Process(stream);
    const double cm_thpt =
        static_cast<double>(stream.size()) / cm_timer.ElapsedMillis();

    std::printf("%-10u %22.0f %22.0f %12.2f\n", kernels, as_thpt, cm_thpt,
                as_thpt / cm_thpt);
  }
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
