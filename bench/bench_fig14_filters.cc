// Figure 14 + Table 6: the four filter implementations compared — stream
// throughput across skews (Fig. 14) and observed error at skew 1.5
// (Table 6). All ASketch instances are 128 KB with a 0.4 KB filter
// budget; the Stream-Summary filter's heavy per-item overhead means it
// monitors far fewer items within that budget, which is exactly the
// paper's point.

#include <cstdio>
#include <vector>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"

namespace asketch {
namespace bench {
namespace {

constexpr size_t kBudget = 128 * 1024;
constexpr size_t kFilterBudgetBytes = 410;  // ~0.4 KB

template <typename FilterT>
ASketch<FilterT, CountMin> Make() {
  ASketchConfig config;
  config.total_bytes = kBudget;
  config.width = 8;
  config.filter_items = static_cast<uint32_t>(
      std::max<size_t>(1, kFilterBudgetBytes / FilterT::BytesPerItem()));
  config.seed = 42;
  return MakeASketchCountMin<FilterT>(config);
}

void Main() {
  const double scale = ScaleFromEnv();
  PrintBanner("Figure 14 + Table 6",
              "The four filter designs under the same 0.4KB filter "
              "budget (items monitored: Vector/Heaps 34, Stream-Summary "
              "9 due to pointer overhead).",
              SyntheticSpec(0, scale).ToString());

  std::printf("--- Figure 14: stream throughput (items/ms) vs skew ---\n");
  std::printf("%-8s %14s %14s %14s %16s\n", "skew", "Vector",
              "Strict-Heap", "Relaxed-Heap", "Stream-Summary");
  for (const double skew : SkewGrid()) {
    const Workload workload(SyntheticSpec(skew, scale));
    auto vector_as = Make<VectorFilter>();
    auto strict_as = Make<StrictHeapFilter>();
    auto relaxed_as = Make<RelaxedHeapFilter>();
    auto summary_as = Make<StreamSummaryFilter>();
    std::printf("%-8.2f %14.0f %14.0f %14.0f %16.0f\n", skew,
                UpdateThroughput(vector_as, workload.stream),
                UpdateThroughput(strict_as, workload.stream),
                UpdateThroughput(relaxed_as, workload.stream),
                UpdateThroughput(summary_as, workload.stream));
  }

  std::printf("\n--- Table 6: observed error (%%) at skew 1.5 ---\n");
  const Workload workload(SyntheticSpec(1.5, scale));
  std::printf("%-18s %10s %18s\n", "filter", "items", "observed err (%)");
  {
    auto as = Make<StreamSummaryFilter>();
    for (const Tuple& t : workload.stream) as.Update(t.key, t.value);
    std::printf("%-18s %10u %18.4g\n", "Stream-Summary",
                as.filter().capacity(),
                ObservedErrorPercent(as, workload));
  }
  {
    auto as = Make<VectorFilter>();
    for (const Tuple& t : workload.stream) as.Update(t.key, t.value);
    std::printf("%-18s %10u %18.4g\n", "Vector", as.filter().capacity(),
                ObservedErrorPercent(as, workload));
  }
  {
    auto as = Make<RelaxedHeapFilter>();
    for (const Tuple& t : workload.stream) as.Update(t.key, t.value);
    std::printf("%-18s %10u %18.4g\n", "Relaxed-Heap",
                as.filter().capacity(),
                ObservedErrorPercent(as, workload));
  }
  {
    auto as = Make<StrictHeapFilter>();
    for (const Tuple& t : workload.stream) as.Update(t.key, t.value);
    std::printf("%-18s %10u %18.4g\n", "Strict-Heap",
                as.filter().capacity(),
                ObservedErrorPercent(as, workload));
  }
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
