// Figure 15(a,b): sensitivity to the filter size — stream throughput and
// observed error as the filter grows from 0.1 KB (8 items) to 12 KB
// (1024 items) inside a fixed 128 KB ASketch (Relaxed-Heap filter,
// Zipf 1.5). The plain Count-Min is printed as the reference point.

#include <cstdio>
#include <vector>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"
#include "src/sketch/count_min.h"

namespace asketch {
namespace bench {
namespace {

constexpr size_t kBudget = 128 * 1024;
constexpr uint32_t kWidth = 8;
constexpr uint64_t kSeed = 42;

void Main() {
  const double scale = ScaleFromEnv();
  const Workload workload(SyntheticSpec(1.5, scale));
  PrintBanner("Figure 15",
              "Filter-size sensitivity at Zipf 1.5: throughput and "
              "observed error for filter sizes 0.1KB..12KB inside 128KB.",
              workload.spec.ToString());

  std::printf("%-12s %10s %16s %18s %12s\n", "filter size", "items",
              "updates/ms", "observed err (%)", "exchanges");
  {
    CountMin cm(CountMinConfig::FromSpaceBudget(kBudget, kWidth, kSeed));
    const double thpt = UpdateThroughput(cm, workload.stream);
    std::printf("%-12s %10s %16.0f %18.4g %12s\n", "CMS (none)", "-",
                thpt, ObservedErrorPercent(cm, workload), "-");
  }
  for (const uint32_t items : {8u, 16u, 32u, 64u, 128u, 256u, 512u,
                               1024u}) {
    ASketchConfig config;
    config.total_bytes = kBudget;
    config.width = kWidth;
    config.filter_items = items;
    config.seed = kSeed;
    auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
    const double thpt = UpdateThroughput(as, workload.stream);
    const double error = ObservedErrorPercent(as, workload);
    char label[32];
    std::snprintf(label, sizeof(label), "%.1fKB",
                  items * RelaxedHeapFilter::BytesPerItem() / 1024.0);
    std::printf("%-12s %10u %16.0f %18.4g %12llu\n", label, items, thpt,
                error,
                static_cast<unsigned long long>(as.stats().exchanges));
  }
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
