// Figure 17 (Appendix): predicted vs achieved filter selectivity. The
// prediction is the analytic Zipf tail mass 1 - TopKMass(|F|); the
// achieved value is the fraction of stream weight the sketch actually
// processed (N2/N from the ASketch stats counters).

#include <cstdio>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"

namespace asketch {
namespace bench {
namespace {

void Main() {
  const double scale = ScaleFromEnv();
  PrintBanner("Figure 17 (Appendix)",
              "Predicted (analytic Zipf tail mass beyond the top-32) vs "
              "achieved (measured N2/N) filter selectivity.",
              SyntheticSpec(0, scale).ToString());
  std::printf("%-8s %14s %14s %12s\n", "skew", "predicted", "achieved",
              "|delta|");
  for (const double skew : SkewGrid()) {
    const StreamSpec spec = SyntheticSpec(skew, scale);
    const ZipfDistribution zipf(spec.num_distinct, skew);
    const double predicted = 1.0 - zipf.TopKMass(32);
    ASketchConfig config;
    config.total_bytes = 128 * 1024;
    config.width = 8;
    config.filter_items = 32;
    auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
    ZipfStreamGenerator gen(spec);
    for (uint64_t i = 0; i < spec.stream_size; ++i) {
      const Tuple t = gen.Next();
      as.Update(t.key, t.value);
    }
    const double achieved = as.stats().FilterSelectivity();
    std::printf("%-8.2f %14.4f %14.4f %12.4f\n", skew, predicted,
                achieved, achieved > predicted ? achieved - predicted
                                               : predicted - achieved);
  }
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
