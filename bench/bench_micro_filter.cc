// Micro-benchmarks (google-benchmark): the filter primitives.
//   * FindKey: SIMD (SSE2/AVX2) vs scalar linear scan, across sizes —
//     quantifies Algorithm 3's contribution.
//   * MinIndex: vector vs scalar min scan.
//   * Filter hit / miss paths for all four filter designs.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/bit_util.h"
#include "src/common/random.h"
#include "src/common/simd_scan.h"
#include "src/filter/heap_filter.h"
#include "src/filter/static_vector_filter.h"
#include "src/filter/stream_summary_filter.h"
#include "src/filter/vector_filter.h"

namespace asketch {
namespace {

std::vector<uint32_t> MakeIds(size_t n) {
  std::vector<uint32_t> ids(RoundUp(n, kSimdBlockElements));
  Rng rng(n);
  for (size_t i = 0; i < n; ++i) {
    ids[i] = static_cast<uint32_t>(rng.NextU64());
  }
  return ids;
}

void BM_FindKeyScalar(benchmark::State& state) {
  const size_t n = state.range(0);
  const auto ids = MakeIds(n);
  uint32_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindKeyScalar(ids.data(), n, probe++));
  }
}
BENCHMARK(BM_FindKeyScalar)->Arg(16)->Arg(32)->Arg(128)->Arg(1024);

#if defined(__SSE2__)
void BM_FindKeySse2(benchmark::State& state) {
  const size_t n = state.range(0);
  const auto ids = MakeIds(n);
  uint32_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FindKeySse2(ids.data(), ids.size(), n, probe++));
  }
}
BENCHMARK(BM_FindKeySse2)->Arg(16)->Arg(32)->Arg(128)->Arg(1024);
#endif

#if defined(__AVX2__)
void BM_FindKeyAvx2(benchmark::State& state) {
  const size_t n = state.range(0);
  const auto ids = MakeIds(n);
  uint32_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FindKeyAvx2(ids.data(), ids.size(), n, probe++));
  }
}
BENCHMARK(BM_FindKeyAvx2)->Arg(16)->Arg(32)->Arg(128)->Arg(1024);
#endif

void BM_MinIndexScalar(benchmark::State& state) {
  const size_t n = state.range(0);
  auto counts = MakeIds(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinIndexScalar(counts.data(), n));
  }
}
BENCHMARK(BM_MinIndexScalar)->Arg(32)->Arg(128)->Arg(1024);

void BM_MinIndexVector(benchmark::State& state) {
  const size_t n = state.range(0);
  auto counts = MakeIds(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinIndex(counts.data(), counts.size(), n));
  }
}
BENCHMARK(BM_MinIndexVector)->Arg(32)->Arg(128)->Arg(1024);

template <typename FilterT>
void BM_FilterHit(benchmark::State& state) {
  const uint32_t capacity = static_cast<uint32_t>(state.range(0));
  FilterT filter(capacity);
  for (uint32_t key = 0; key < capacity; ++key) {
    filter.Insert(key * 977 + 13, key + 1, 0);
  }
  Rng rng(7);
  std::vector<item_t> probes(1024);
  for (auto& p : probes) {
    p = static_cast<item_t>(rng.NextBounded(capacity)) * 977 + 13;
  }
  size_t i = 0;
  for (auto _ : state) {
    const int32_t slot = filter.Find(probes[i++ & 1023]);
    benchmark::DoNotOptimize(slot);
    if (slot >= 0) filter.AddToNewCount(slot, 1);
  }
}
BENCHMARK_TEMPLATE(BM_FilterHit, StaticVectorFilter<32>)->Arg(32);
BENCHMARK_TEMPLATE(BM_FilterHit, VectorFilter)->Arg(32)->Arg(128);
BENCHMARK_TEMPLATE(BM_FilterHit, StrictHeapFilter)->Arg(32)->Arg(128);
BENCHMARK_TEMPLATE(BM_FilterHit, RelaxedHeapFilter)->Arg(32)->Arg(128);
BENCHMARK_TEMPLATE(BM_FilterHit, StreamSummaryFilter)->Arg(32)->Arg(128);

template <typename FilterT>
void BM_FilterMissAndMin(benchmark::State& state) {
  // The miss path of Algorithm 1: a failed lookup plus a MinNewCount().
  const uint32_t capacity = static_cast<uint32_t>(state.range(0));
  FilterT filter(capacity);
  for (uint32_t key = 0; key < capacity; ++key) {
    filter.Insert(key * 977 + 13, key + 1, 0);
  }
  item_t probe = 1;  // never inserted (all inserted keys are odd*977+13)
  for (auto _ : state) {
    const int32_t slot = filter.Find(probe);
    benchmark::DoNotOptimize(slot);
    benchmark::DoNotOptimize(filter.MinNewCount());
    probe += 2;
  }
}
BENCHMARK_TEMPLATE(BM_FilterMissAndMin, StaticVectorFilter<32>)->Arg(32);
BENCHMARK_TEMPLATE(BM_FilterMissAndMin, VectorFilter)->Arg(32)->Arg(128);
BENCHMARK_TEMPLATE(BM_FilterMissAndMin, StrictHeapFilter)
    ->Arg(32)
    ->Arg(128);
BENCHMARK_TEMPLATE(BM_FilterMissAndMin, RelaxedHeapFilter)
    ->Arg(32)
    ->Arg(128);
BENCHMARK_TEMPLATE(BM_FilterMissAndMin, StreamSummaryFilter)
    ->Arg(32)
    ->Arg(128);

}  // namespace
}  // namespace asketch

BENCHMARK_MAIN();
