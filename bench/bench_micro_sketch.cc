// Micro-benchmarks (google-benchmark): sketch update and estimate costs
// for the backends (Count-Min plain/conservative, FCM, Count Sketch) and
// the end-to-end ASketch update at two skews.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/core/asketch.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

constexpr size_t kBudget = 128 * 1024;

std::vector<Tuple> SkewedStream(double skew) {
  StreamSpec spec;
  spec.stream_size = 1 << 20;
  spec.num_distinct = 1 << 18;
  spec.skew = skew;
  spec.seed = 3;
  return GenerateStream(spec);
}

template <typename T>
void RunUpdates(benchmark::State& state, T& estimator,
                const std::vector<Tuple>& stream) {
  size_t i = 0;
  const size_t mask = stream.size() - 1;  // stream size is a power of two
  for (auto _ : state) {
    const Tuple& t = stream[i++ & mask];
    estimator.Update(t.key, t.value);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CountMinUpdate(benchmark::State& state) {
  CountMin sketch(CountMinConfig::FromSpaceBudget(kBudget, 8));
  const auto stream = SkewedStream(1.5);
  RunUpdates(state, sketch, stream);
}
BENCHMARK(BM_CountMinUpdate);

void BM_CountMinConservativeUpdate(benchmark::State& state) {
  CountMinConfig config = CountMinConfig::FromSpaceBudget(kBudget, 8);
  config.policy = CmUpdatePolicy::kConservative;
  CountMin sketch(config);
  const auto stream = SkewedStream(1.5);
  RunUpdates(state, sketch, stream);
}
BENCHMARK(BM_CountMinConservativeUpdate);

void BM_FcmUpdate(benchmark::State& state) {
  Fcm sketch(FcmConfig::FromSpaceBudget(kBudget, 8, 32));
  const auto stream = SkewedStream(1.5);
  RunUpdates(state, sketch, stream);
}
BENCHMARK(BM_FcmUpdate);

void BM_CountSketchUpdate(benchmark::State& state) {
  CountSketch sketch(CountSketchConfig::FromSpaceBudget(kBudget, 8));
  const auto stream = SkewedStream(1.5);
  RunUpdates(state, sketch, stream);
}
BENCHMARK(BM_CountSketchUpdate);

void BM_ASketchUpdate(benchmark::State& state) {
  ASketchConfig config;
  config.total_bytes = kBudget;
  config.width = 8;
  config.filter_items = 32;
  auto sketch = MakeASketchCountMin<RelaxedHeapFilter>(config);
  const auto stream = SkewedStream(state.range(0) / 10.0);
  RunUpdates(state, sketch, stream);
}
BENCHMARK(BM_ASketchUpdate)->Arg(0)->Arg(10)->Arg(15)->Arg(25);

void BM_CountMinEstimate(benchmark::State& state) {
  CountMin sketch(CountMinConfig::FromSpaceBudget(kBudget, 8));
  const auto stream = SkewedStream(1.5);
  for (const Tuple& t : stream) sketch.Update(t.key, t.value);
  size_t i = 0;
  const size_t mask = stream.size() - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Estimate(stream[i++ & mask].key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinEstimate);

void BM_ASketchEstimate(benchmark::State& state) {
  ASketchConfig config;
  config.total_bytes = kBudget;
  config.width = 8;
  config.filter_items = 32;
  auto sketch = MakeASketchCountMin<RelaxedHeapFilter>(config);
  const auto stream = SkewedStream(1.5);
  for (const Tuple& t : stream) sketch.Update(t.key, t.value);
  size_t i = 0;
  const size_t mask = stream.size() - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Estimate(stream[i++ & mask].key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ASketchEstimate);

}  // namespace
}  // namespace asketch

BENCHMARK_MAIN();
