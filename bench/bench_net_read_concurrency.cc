// Read-path contention under ingest-saturated shards: the experiment
// behind the lock-free serving read path (DESIGN.md §5c).
//
// A ShardSet with 4 shards is kept saturated by a feeder thread pushing
// large UPDATE batches, so each shard worker spends most of its time
// inside shard.mu applying tuples. Against that background load the
// bench issues 256-key query batches three ways:
//
//   mutex/key   the pre-seqlock read path: take shard.mu per key
//               (ShardSet::EstimateMutexBaseline — the old QUERY_BATCH
//               inner loop)
//   lockfree/key  the seqlock read path, still resolving the shard per
//               key (ShardSet::Estimate)
//   lockfree/batch  the shipped QUERY_BATCH fanout: group keys by shard
//               once, answer shard-by-shard (ShardSet::EstimateBatch)
//
// Reported: per-batch latency p50/p95 and sustained queries/s. The
// lock-free rows must not degrade when workers are mid-batch; the mutex
// row inherits the workers' lock hold times. EXPERIMENTS.md records the
// numbers this bench produced for the PR that introduced it.
//
// ASKETCH_BENCH_SCALE scales both the background stream and the number
// of measured batches.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "bench/common/bench_util.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/shard_set.h"

namespace asketch {
namespace bench {
namespace {

using net::ShardSet;
using net::ShardSetOptions;

struct ReadStats {
  double p50_us = 0;
  double p95_us = 0;
  double kqps = 0;
};

double Percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(), samples.begin() + idx, samples.end());
  return samples[idx];
}

/// One measured read mode: a name, a way to answer a 256-key batch,
/// and the latency samples collected so far.
struct Mode {
  const char* name;
  std::function<void(const std::vector<item_t>&)> answer_batch;
  std::vector<double> latencies_us;

  ReadStats Stats(uint32_t batch_keys) {
    ReadStats stats;
    double in_call_us = 0;
    for (const double us : latencies_us) in_call_us += us;
    stats.p50_us = Percentile(latencies_us, 0.50);
    stats.p95_us = Percentile(latencies_us, 0.95);
    stats.kqps = static_cast<double>(latencies_us.size()) * batch_keys /
                 (in_call_us / 1e6) / 1e3;
    return stats;
  }
};

/// Runs `iterations` rounds, each timing one query batch per mode with
/// the modes interleaved round-robin and ~200us of pacing between
/// calls. Two scheduling artifacts are being defused here. The pacing
/// gap hands the core back to the ingest workers, so every measured
/// batch faces a fresh mid-batch worker state instead of whatever state
/// the reader's scheduler quantum happened to freeze (back-to-back
/// calls within one quantum all see the same — usually lock-free —
/// snapshot of the writers). The interleaving makes the modes sample
/// the *same* background phases: sequential per-mode phases can hand
/// one mode a minutes-long low-contention scheduler phase and another a
/// pathological one, which dominates any real difference. Throughput is
/// computed from in-call service time, so the pacing does not dilute
/// it.
void MeasureReads(const std::vector<std::vector<item_t>>& batches,
                  uint32_t iterations, std::vector<Mode>& modes) {
  for (Mode& mode : modes) mode.latencies_us.reserve(iterations);
  for (uint32_t i = 0; i < iterations; ++i) {
    const std::vector<item_t>& keys = batches[i % batches.size()];
    for (Mode& mode : modes) {
      const auto start = std::chrono::steady_clock::now();
      mode.answer_batch(keys);
      const auto end = std::chrono::steady_clock::now();
      mode.latencies_us.push_back(
          std::chrono::duration<double, std::micro>(end - start).count());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

int Run() {
  const double scale = ScaleFromEnv();
  ShardSetOptions options;
  options.num_shards = 4;
  options.shard_config.total_bytes = 128 * 1024;
  options.max_queue_batches = 64;

  const StreamSpec spec = SyntheticSpec(/*skew=*/1.0, scale);
  std::vector<Tuple> stream = GenerateStream(spec);
  const std::vector<item_t> queries = GenerateQueries(
      stream, spec.num_distinct, /*num_queries=*/1u << 16,
      QuerySampling::kFrequencyProportional, spec.seed ^ 0x51);

  constexpr uint32_t kBatchKeys = 256;
  std::vector<std::vector<item_t>> batches;
  for (size_t at = 0; at + kBatchKeys <= queries.size();
       at += kBatchKeys) {
    batches.emplace_back(queries.begin() + static_cast<long>(at),
                         queries.begin() + static_cast<long>(at) +
                             kBatchKeys);
  }
  const uint32_t iterations =
      static_cast<uint32_t>(1000 * scale) < 200
          ? 200
          : static_cast<uint32_t>(1000 * scale);

  PrintBanner("bench_net_read_concurrency",
              "QUERY_BATCH read latency against ingest-saturated shards: "
              "per-key mutex baseline vs lock-free seqlock reads",
              spec.ToString());

  ShardSet set(options);
  std::atomic<bool> stop{false};
  // Feeder: replays the stream in 128K-tuple UPDATE batches forever;
  // the bounded queues (kInlineApply overload) keep every worker
  // saturated, which is exactly the regime the mutex baseline
  // collapses in.
  std::thread feeder([&] {
    constexpr size_t kIngestBatch = 131072;
    size_t at = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const size_t count = std::min(kIngestBatch, stream.size() - at);
      set.Ingest(std::span<const Tuple>(stream.data() + at, count));
      at += count;
      if (at >= stream.size()) at = 0;
    }
  });
  // Let the queues build a deep backlog before measuring: with tens of
  // ~32K-tuple sub-batches queued per shard, a worker that gets CPU
  // time is almost always inside shard.mu applying one — the regime the
  // mutex baseline is exposed to.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  std::vector<uint64_t> scratch;
  std::vector<Mode> modes;
  modes.push_back({"mutex/key",
                   [&](const std::vector<item_t>& keys) {
                     uint64_t sum = 0;
                     for (const item_t key : keys) {
                       sum += set.EstimateMutexBaseline(key);
                     }
                     static volatile uint64_t sink;
                     sink = sum;
                     (void)sink;
                   },
                   {}});
  modes.push_back({"lockfree/key",
                   [&](const std::vector<item_t>& keys) {
                     uint64_t sum = 0;
                     for (const item_t key : keys) {
                       sum += set.Estimate(key);
                     }
                     static volatile uint64_t sink;
                     sink = sum;
                     (void)sink;
                   },
                   {}});
  modes.push_back({"lockfree/batch",
                   [&](const std::vector<item_t>& keys) {
                     set.EstimateBatch(keys, &scratch);
                   },
                   {}});
  MeasureReads(batches, iterations, modes);
  stop.store(true, std::memory_order_release);
  feeder.join();

  std::printf("%-16s %12s %12s %14s\n", "read path", "p50 (us)",
              "p95 (us)", "kqueries/s");
  std::vector<ReadStats> stats;
  for (Mode& mode : modes) {
    stats.push_back(mode.Stats(kBatchKeys));
    std::printf("%-16s %12.1f %12.1f %14.0f\n", mode.name,
                stats.back().p50_us, stats.back().p95_us,
                stats.back().kqps);
  }
  const double speedup_p50 =
      stats[2].p50_us > 0 ? stats[0].p50_us / stats[2].p50_us : 0;
  const double speedup_qps =
      stats[0].kqps > 0 ? stats[2].kqps / stats[0].kqps : 0;
  std::printf("\nbatched lock-free vs per-key mutex: p50 %.1fx, "
              "queries/s %.1fx\n",
              speedup_p50, speedup_qps);

  // Faults-off loopback ingest: pins the no-fault overhead of the
  // client/server fault-tolerance machinery (SocketIoHooks dispatch,
  // deadline plumbing, replay accounting — all off by default). The
  // row is tracked across PRs; the fault-tolerance PR's budget was a
  // ≤2% regression versus the pre-hooks baseline.
  {
    net::ServerOptions server_options;
    server_options.shards = options;
    net::Server server(server_options);
    if (auto error = server.Start()) {
      std::printf("\nloopback ingest: skipped (%s)\n", error->c_str());
      return 0;
    }
    net::Client client;
    if (auto error = client.Connect({.port = server.port()})) {
      std::printf("\nloopback ingest: skipped (%s)\n", error->c_str());
      return 0;
    }
    constexpr size_t kNetBatch = 1024;
    const auto start = std::chrono::steady_clock::now();
    for (size_t at = 0; at < stream.size(); at += kNetBatch) {
      const size_t count = std::min(kNetBatch, stream.size() - at);
      if (client.Update(
              std::span<const Tuple>(stream.data() + at, count))) {
        break;
      }
    }
    (void)client.Flush();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf("\nloopback ingest (faults off, default deadlines): "
                "%.2f Mupdates/s (%zu tuples)\n",
                seconds > 0
                    ? static_cast<double>(stream.size()) / seconds / 1e6
                    : 0,
                stream.size());
    server.Stop();
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() { return asketch::bench::Run(); }
