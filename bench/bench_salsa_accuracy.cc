// SALSA accuracy-per-byte sweep (Figure-7 style): observed error of
// SalsaCountMin vs plain Count-Min at equal byte budgets across the
// error skew grid, plus the budget sweep at Zipf 1.1. The headline
// number is the error ratio (Count-Min / SALSA) at 128 KB — the
// self-adjusting 8-bit layout buys ~3.6x more buckets per row, and on
// skewed streams almost none of them ever outgrow a byte.

#include <cstdio>
#include <vector>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"
#include "src/sketch/count_min.h"
#include "src/sketch/salsa_count_min.h"

namespace asketch {
namespace bench {
namespace {

constexpr uint32_t kWidth = 8;
constexpr uint64_t kSeed = 42;

struct SalsaRun {
  double error_percent;
  uint64_t logical_counters;
  uint64_t merged_pairs;
  uint64_t merged_quads;
};

SalsaRun SalsaError(const Workload& workload, size_t budget) {
  SalsaCountMin salsa(SalsaConfig::FromSpaceBudget(budget, kWidth, kSeed));
  for (const Tuple& t : workload.stream) salsa.Update(t.key, t.value);
  return {ObservedErrorPercent(salsa, workload), salsa.LogicalCounters(),
          salsa.MergedPairs(), salsa.MergedQuads()};
}

double CountMinError(const Workload& workload, size_t budget) {
  CountMin cm(CountMinConfig::FromSpaceBudget(budget, kWidth, kSeed));
  for (const Tuple& t : workload.stream) cm.Update(t.key, t.value);
  return ObservedErrorPercent(cm, workload);
}

double ASketchSalsaError(const Workload& workload, size_t budget) {
  ASketchConfig config;
  config.total_bytes = budget;
  config.width = kWidth;
  config.filter_items = 32;
  config.seed = kSeed;
  auto as = MakeASketchSalsa<RelaxedHeapFilter>(config);
  for (const Tuple& t : workload.stream) as.Update(t.key, t.value);
  return ObservedErrorPercent(as, workload);
}

void Main() {
  const double scale = ScaleFromEnv();
  PrintBanner("SALSA accuracy per byte",
              "Observed error (%) of SalsaCountMin vs Count-Min at equal "
              "budgets; x-accuracy is the Count-Min/SALSA error ratio.",
              SyntheticSpec(0, scale).ToString());

  std::printf("-- error vs skew at 128 KB --\n");
  std::printf("%-8s %14s %14s %12s %12s | %12s\n", "skew", "Count-Min",
              "SALSA", "pair-merges", "quad-merges", "x-accuracy");
  for (const double skew : ErrorSkewGrid()) {
    const Workload workload(SyntheticSpec(skew, scale));
    const double cm = CountMinError(workload, 128 * 1024);
    const SalsaRun salsa = SalsaError(workload, 128 * 1024);
    const double ratio =
        salsa.error_percent > 0 ? cm / salsa.error_percent : 0;
    std::printf("%-8.1f %14.4g %14.4g %12llu %12llu | %12.1f\n", skew, cm,
                salsa.error_percent,
                static_cast<unsigned long long>(salsa.merged_pairs),
                static_cast<unsigned long long>(salsa.merged_quads),
                ratio);
  }

  std::printf("\n-- budget sweep at skew 1.1 --\n");
  std::printf("%-10s %14s %14s %14s %14s | %12s\n", "budget", "Count-Min",
              "SALSA", "ASketch+SALSA", "eff-buckets", "x-accuracy");
  const Workload workload(SyntheticSpec(1.1, scale));
  for (const size_t kb : {32, 64, 128, 256}) {
    const size_t budget = kb * 1024;
    const double cm = CountMinError(workload, budget);
    const SalsaRun salsa = SalsaError(workload, budget);
    const double as_salsa = ASketchSalsaError(workload, budget);
    const double ratio =
        salsa.error_percent > 0 ? cm / salsa.error_percent : 0;
    std::printf("%-8zuKB %14.4g %14.4g %14.4g %14llu | %12.1f\n", kb, cm,
                salsa.error_percent, as_salsa,
                static_cast<unsigned long long>(salsa.logical_counters),
                ratio);
  }
  std::printf("\n(x-accuracy of 0.0 means the SALSA error was exactly "
              "zero; eff-buckets counts logical counters surviving "
              "merges)\n");
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
