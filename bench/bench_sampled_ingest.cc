// Sampled delta-mode ingest (the PR 10 tentpole): NitroSketch-style
// geometric skip counters on the tail path of the 4-shard loopback
// ShardSet, sweeping the sampling rate over {1.0, 0.5, 0.25, 0.1,
// 0.05} on the paper-default zipf-1.1 synthetic workload. Rate 1.0 is
// the unsampled delta-mode baseline of bench_delta_ingest.
//
// Two curves per rate: sustained updates/s (best of three timed
// passes, delta decode threads feeding UPDATE-frame-sized batches) and
// the tail ARE measured on a fresh single-pass instance (head keys —
// the merged top-k the filters hold — are excluded, because the head
// is exact at every rate; only the sampled sketch tail pays error).
// The frontier ships to EXPERIMENTS.md; the acceptance bar (ISSUE 10)
// is >= 1.5x updates/s over the unsampled baseline at some rate whose
// tail ARE stays within 2x of unsampled — reported as
// speedup_within_2x_are.
//
// ASKETCH_BENCH_SCALE scales the stream. Flags:
//   --threads N   decode threads (default 4, asketchd's topology)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench/common/bench_util.h"
#include "src/common/stopwatch.h"
#include "src/net/shard_set.h"

namespace asketch {
namespace bench {
namespace {

using net::DeltaIngestState;
using net::IngestMode;
using net::ShardSet;
using net::ShardSetOptions;

constexpr size_t kIngestBatch = 8192;  // one UPDATE frame's worth
constexpr uint32_t kRatesPermille[] = {1000, 500, 250, 100, 50};

ShardSetOptions LoopbackOptions(uint32_t permille) {
  ShardSetOptions options;  // 4 shards — asketchd's default topology
  options.ingest_mode = IngestMode::kDelta;
  options.sample_rate = permille / 1000.0;
  return options;
}

void IngestPass(ShardSet& shards, uint32_t threads,
                const std::vector<Tuple>& stream) {
  const size_t per_thread = stream.size() / threads;
  std::vector<std::thread> decoders;
  decoders.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    const size_t begin = t * per_thread;
    const size_t end =
        t + 1 == threads ? stream.size() : begin + per_thread;
    decoders.emplace_back([&shards, &stream, begin, end] {
      DeltaIngestState state = shards.MakeDeltaState();
      for (size_t at = begin; at < end; at += kIngestBatch) {
        const size_t count = std::min(kIngestBatch, end - at);
        shards.Ingest(std::span<const Tuple>(stream.data() + at, count),
                      &state);
      }
      shards.FlushDeltas(state);
    });
  }
  for (std::thread& t : decoders) t.join();
  shards.Drain();
}

double Throughput(uint32_t permille, uint32_t threads,
                  const std::vector<Tuple>& stream) {
  ShardSet shards(LoopbackOptions(permille));
  IngestPass(shards, threads, stream);  // warm-up, untimed
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    IngestPass(shards, threads, stream);
    best = std::max(best, static_cast<double>(stream.size()) /
                              watch.ElapsedSeconds());
  }
  return best;
}

/// Single-pass tail ARE on a fresh instance: mean |est - exact|/exact
/// over keys with nonzero exact count that ended outside the merged
/// filter heads. Under sampling the tail is unbiased but two-sided, so
/// the absolute value is the honest error measure.
double TailAre(uint32_t permille, uint32_t threads,
               const Workload& workload) {
  ShardSet shards(LoopbackOptions(permille));
  IngestPass(shards, threads, workload.stream);
  std::unordered_set<item_t> head;
  for (const auto& entry : shards.TopK(4 * 32)) head.insert(entry.key);
  double sum = 0;
  uint64_t keys = 0;
  for (item_t key = 0; key < workload.spec.num_distinct; ++key) {
    const wide_count_t exact = workload.truth.Count(key);
    if (exact == 0 || head.count(key) != 0) continue;
    const double est = static_cast<double>(shards.Estimate(key));
    sum += std::abs(est - static_cast<double>(exact)) /
           static_cast<double>(exact);
    ++keys;
  }
  return keys == 0 ? 0.0 : sum / static_cast<double>(keys);
}

int Main(int argc, char** argv) {
  uint32_t threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: bench_sampled_ingest [--threads N]\n");
      return 2;
    }
  }
  const double scale = ScaleFromEnv();
  const StreamSpec spec = SyntheticSpec(/*skew=*/1.1, scale);
  std::printf("# bench_sampled_ingest: %s, 4 shards, %u decode threads\n",
              spec.ToString().c_str(), threads);
  const Workload workload(spec);

  double base_rate = 0;
  double base_are = 0;
  double best_qualified_speedup = 0;
  std::printf("%-8s %14s %10s %10s %10s\n", "rate", "updates/s", "ARE",
              "speedup", "are_ratio");
  for (const uint32_t permille : kRatesPermille) {
    const double rate = Throughput(permille, threads, workload.stream);
    const double are = TailAre(permille, threads, workload);
    if (permille == 1000) {
      base_rate = rate;
      base_are = are;
    }
    const double speedup = base_rate > 0 ? rate / base_rate : 0;
    const double are_ratio = base_are > 0 ? are / base_are : 0;
    std::printf("%-8.3f %14.0f %10.4f %10.2f %10.2f\n", permille / 1000.0,
                rate, are, speedup, are_ratio);
    std::printf("updates_per_s_r%u=%.0f\n", permille, rate);
    std::printf("tail_are_r%u=%.4f\n", permille, are);
    if (permille != 1000 && are_ratio <= 2.0) {
      best_qualified_speedup = std::max(best_qualified_speedup, speedup);
    }
    std::fflush(stdout);
  }
  // The acceptance frontier: best throughput gain among rates whose
  // tail ARE stayed within 2x of the unsampled baseline.
  std::printf("speedup_within_2x_are=%.2f\n", best_qualified_speedup);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main(int argc, char** argv) { return asketch::bench::Main(argc, argv); }
