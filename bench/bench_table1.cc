// Table 1: ASketch vs. other sketch-based methods — stream-processing
// throughput, query throughput, and observed error at Zipf skew 1.5 with
// a 128 KB synopsis (filter capacity 32 items).

#include <cstdio>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"
#include "src/sketch/count_min.h"
#include "src/sketch/fcm.h"
#include "src/sketch/holistic_udaf.h"

namespace asketch {
namespace bench {
namespace {

constexpr size_t kBudget = 128 * 1024;
constexpr uint32_t kWidth = 8;
constexpr uint32_t kFilterItems = 32;
constexpr uint64_t kSeed = 42;

template <typename T>
void Run(const char* name, T estimator, const Workload& workload) {
  const double update = UpdateThroughput(estimator, workload.stream);
  const double query = QueryThroughput(estimator, workload.queries);
  const double error = ObservedErrorPercent(estimator, workload);
  std::printf("%-28s %18.0f %18.0f %16.4g\n", name, update, query, error);
}

void Main() {
  const Workload workload(SyntheticSpec(1.5, ScaleFromEnv()));
  PrintBanner("Table 1",
              "ASketch vs Count-Min / FCM / Holistic UDAFs: all methods "
              "get 128KB; ASketch filter holds 32 items.",
              workload.spec.ToString());
  std::printf("%-28s %18s %18s %16s\n", "method", "updates/ms",
              "queries/ms", "observed err (%)");

  Run("Count-Min",
      CountMin(CountMinConfig::FromSpaceBudget(kBudget, kWidth, kSeed)),
      workload);
  Run("Frequency-Aware Count (FCM)",
      Fcm(FcmConfig::FromSpaceBudget(kBudget, kWidth, kFilterItems, kSeed)),
      workload);
  Run("Holistic UDAFs",
      HolisticUdaf(HolisticUdafConfig::FromSpaceBudget(
          kBudget, kWidth, kFilterItems, kSeed)),
      workload);
  ASketchConfig config;
  config.total_bytes = kBudget;
  config.width = kWidth;
  config.filter_items = kFilterItems;
  config.seed = kSeed;
  Run("ASketch [this work]",
      MakeASketchCountMin<RelaxedHeapFilter>(config), workload);
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
