// Table 3 + Figure 6: low-frequency keys misclassified as heavy hitters
// by small Count-Min synopses (16/24/32 KB) over repeated runs, and the
// average relative error those misclassified keys carry — compared with
// the same-space ASketch, which should exhibit none.

#include <algorithm>
#include <cstdio>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"
#include "src/sketch/count_min.h"

namespace asketch {
namespace bench {
namespace {

constexpr uint32_t kWidth = 8;
constexpr uint32_t kFilterItems = 32;
constexpr uint32_t kRuns = 20;  // the paper uses 100; scaled for runtime

struct MisclassStats {
  size_t max_count = 0;
  double worst_avg_relative_error = 0;
};

template <typename T>
MisclassStats Collect(const T& estimator, const Workload& workload,
                      MisclassStats stats) {
  // A key counts as misclassified when its estimate reaches the true
  // top-32 threshold although its true count is an order of magnitude
  // below it (the paper's "low-frequency items misleadingly appearing
  // as very high-frequency items" with relative errors ~1e5).
  const auto mis = FindMisclassifiedKeys(
      [&estimator](item_t key) { return estimator.Estimate(key); },
      workload.truth, kFilterItems, /*low_frequency_divisor=*/10);
  stats.max_count = std::max(stats.max_count, mis.size());
  if (!mis.empty()) {
    double sum = 0;
    for (const Misclassification& m : mis) sum += m.RelativeError();
    stats.worst_avg_relative_error =
        std::max(stats.worst_avg_relative_error, sum / mis.size());
  }
  return stats;
}

void Main() {
  const double scale = ScaleFromEnv();
  StreamSpec base = SyntheticSpec(1.5, scale);
  PrintBanner("Table 3 + Figure 6",
              "Max misclassifications over runs (cold keys whose estimate "
              "reaches the true top-32 threshold) and their avg relative "
              "error: Count-Min vs same-space ASketch.",
              base.ToString());
  // Two row-count settings: w = 8 (the default elsewhere in §7) and
  // w = 4, where the min-of-rows protection is weak enough for cold keys
  // to reach heavy-hitter estimates — the regime in which the paper's
  // Table 3 reports dozens of misclassified items.
  const std::vector<size_t> sizes_kb = {16, 24, 32};
  const std::vector<uint32_t> widths = {8, 4};
  const size_t cells = sizes_kb.size() * widths.size();
  std::vector<MisclassStats> cm_stats(cells);
  std::vector<MisclassStats> as_stats(cells);
  for (uint32_t run = 0; run < kRuns; ++run) {
    StreamSpec spec = base;
    spec.seed = base.seed + run;
    const Workload workload(spec);
    for (size_t wi = 0; wi < widths.size(); ++wi) {
      for (size_t i = 0; i < sizes_kb.size(); ++i) {
        const size_t kb = sizes_kb[i];
        const size_t cell = wi * sizes_kb.size() + i;
        CountMin cm(CountMinConfig::FromSpaceBudget(kb * 1024, widths[wi],
                                                    100 + run));
        ASketchConfig config;
        config.total_bytes = kb * 1024;
        config.width = widths[wi];
        config.filter_items = kFilterItems;
        config.seed = 100 + run;
        auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
        for (const Tuple& t : workload.stream) {
          cm.Update(t.key, t.value);
          as.Update(t.key, t.value);
        }
        cm_stats[cell] = Collect(cm, workload, cm_stats[cell]);
        as_stats[cell] = Collect(as, workload, as_stats[cell]);
      }
    }
  }
  std::printf("%-12s %18s %24s %18s %24s\n", "size", "CM max misclass",
              "CM avg rel err (worst)", "AS max misclass",
              "AS avg rel err (worst)");
  for (size_t wi = 0; wi < widths.size(); ++wi) {
    for (size_t i = 0; i < sizes_kb.size(); ++i) {
      const size_t cell = wi * sizes_kb.size() + i;
      std::printf("%zuKB w=%u%-3s %18zu %24.3g %18zu %24.3g\n",
                  sizes_kb[i], widths[wi], "", cm_stats[cell].max_count,
                  cm_stats[cell].worst_avg_relative_error,
                  as_stats[cell].max_count,
                  as_stats[cell].worst_avg_relative_error);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
