// Table 5: precision-at-k of ASketch's top-k frequent-items query (k =
// the filter capacity, 32) across skews.

#include <cstdio>
#include <vector>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"
#include "src/sketch/space_saving.h"
#include "src/sketch/topk_sketch.h"

namespace asketch {
namespace bench {
namespace {

constexpr uint32_t kTopK = 32;

void Main() {
  const double scale = ScaleFromEnv();
  PrintBanner("Table 5",
              "Precision-at-k of ASketch's filter-based top-k report "
              "(paper's table), extended with the two same-space "
              "baselines of §2: Count-Min + candidate heap and Space "
              "Saving. All 128KB.",
              SyntheticSpec(0, scale).ToString());
  std::printf("%-8s %16s %16s %16s\n", "skew", "ASketch", "CMS+heap",
              "SpaceSaving");
  for (const double skew : {0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0, 3.0}) {
    const Workload workload(SyntheticSpec(skew, scale));
    ASketchConfig config;
    config.total_bytes = 128 * 1024;
    config.width = 8;
    config.filter_items = kTopK;
    auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
    TopKCountMin topk =
        TopKCountMin::FromSpaceBudget(128 * 1024, 8, kTopK, 42);
    SpaceSaving ss(static_cast<uint32_t>(128 * 1024 /
                                         SpaceSaving::BytesPerItem()));
    for (const Tuple& t : workload.stream) {
      as.Update(t.key, t.value);
      topk.Update(t.key, t.value);
      ss.Update(t.key, t.value);
    }
    std::vector<item_t> as_report, topk_report, ss_report;
    for (const FilterEntry& e : as.TopK()) as_report.push_back(e.key);
    for (const TopKEntry& e : topk.TopK()) topk_report.push_back(e.key);
    for (const SpaceSavingEntry& e : ss.TopK()) {
      ss_report.push_back(e.key);
    }
    std::printf("%-8.1f %16.2f %16.2f %16.2f\n", skew,
                PrecisionAtK(as_report, workload.truth, kTopK),
                PrecisionAtK(topk_report, workload.truth, kTopK),
                PrecisionAtK(ss_report, workload.truth, kTopK));
  }
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
