// Telemetry overhead harness: the Figure-5 ASketch configuration (128 KB,
// Relaxed-Heap filter of 32 items, skew 1.0) timed with the metrics layer
// in its three states:
//
//   1. this binary (bench_telemetry_overhead): telemetry compiled in,
//      counters live on the hot path, tracing disabled (the default);
//   2. same binary with tracing force-enabled, to price the span macro;
//   3. bench_telemetry_overhead_notel: the identical source linked
//      against the ASKETCH_NO_TELEMETRY build, where every instrument
//      site compiles to nothing.
//
// Run both binaries and compare the "best" columns: the instrumented
// build must stay within ~2% of the compiled-out build, and the
// compiled-out build must match the pre-telemetry baseline exactly (it is
// the same machine code). Each pass replays the full stream `kRuns`
// times; "best" (the fastest replay) is the noise-robust comparator —
// scheduler and frequency jitter only ever slow a run down — and the
// median is shown for context.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common/bench_util.h"
#include "src/core/asketch.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace asketch {
namespace bench {
namespace {

constexpr size_t kBudget = 128 * 1024;
constexpr uint32_t kWidth = 8;
constexpr uint32_t kFilterItems = 32;
constexpr uint64_t kSeed = 42;
constexpr double kSkew = 1.0;
constexpr int kRuns = 7;

ASketchConfig BenchConfig() {
  ASketchConfig config;
  config.total_bytes = kBudget;
  config.width = kWidth;
  config.filter_items = kFilterItems;
  config.seed = kSeed;
  return config;
}

struct Rates {
  double best;    ///< fastest replay (noise-robust comparator)
  double median;  ///< middle replay (context)
};

/// Replays the stream kRuns times, each on a fresh sketch so the filter
/// warms identically every time.
template <typename PassFn>
Rates MeasureThroughput(const std::vector<Tuple>& stream, PassFn&& pass) {
  std::vector<double> rates;
  rates.reserve(kRuns);
  for (int run = 0; run < kRuns; ++run) {
    auto sketch = MakeASketchCountMin<RelaxedHeapFilter>(BenchConfig());
    Stopwatch timer;
    pass(sketch, stream);
    rates.push_back(static_cast<double>(stream.size()) /
                    timer.ElapsedMillis());
  }
  std::sort(rates.begin(), rates.end());
  return Rates{rates.back(), rates[rates.size() / 2]};
}

void Main() {
  const double scale = ScaleFromEnv();
  PrintBanner("Telemetry overhead",
              "Figure-5 ASketch config; best/median of 7 full-stream "
              "replays per row. Compare the `best` column against "
              "bench_telemetry_overhead_notel.",
              SyntheticSpec(kSkew, scale).ToString());
  std::printf("variant: %s\n\n", obs::TelemetryCompiledIn()
                                     ? "instrumented"
                                     : "compiled-out (ASKETCH_NO_TELEMETRY)");

  std::vector<wide_count_t> counts;
  const std::vector<Tuple> stream =
      GenerateStreamWithTruth(SyntheticSpec(kSkew, scale), &counts);

  using Sketch = decltype(MakeASketchCountMin<RelaxedHeapFilter>(
      BenchConfig()));
  const auto scalar_pass = [](Sketch& sketch,
                              const std::vector<Tuple>& tuples) {
    for (const Tuple& t : tuples) sketch.Update(t.key, t.value);
  };
  const auto batch_pass = [](Sketch& sketch,
                             const std::vector<Tuple>& tuples) {
    sketch.UpdateBatch(tuples);
  };

  const auto print = [](const char* row, const Rates& r) {
    std::printf("%-28s | %14.0f %14.0f\n", row, r.best, r.median);
  };
  std::printf("%-28s | %14s %14s\n", "pass", "best updates/ms", "median");
  print("scalar Update", MeasureThroughput(stream, scalar_pass));
  print("UpdateBatch", MeasureThroughput(stream, batch_pass));

  // Price the trace-span macro when the flight recorder is armed. In the
  // compiled-out build SetEnabled is a stub and this row equals the ones
  // above.
  obs::TraceRegistry::Global().SetEnabled(true);
  print("UpdateBatch + tracing on", MeasureThroughput(stream, batch_pass));
  obs::TraceRegistry::Global().SetEnabled(false);
}

}  // namespace
}  // namespace bench
}  // namespace asketch

int main() {
  asketch::bench::Main();
  return 0;
}
