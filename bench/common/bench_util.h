// Shared harness for the paper-reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of the paper. The
// default workload is a scaled-down version of the paper's synthetic
// setting (32M tuples over 8M distinct keys): scale 1.0 = 4M tuples over
// 1M keys, which keeps the full suite in minutes on one core while
// preserving every qualitative shape. Set ASKETCH_BENCH_SCALE=8 to run the
// paper's full sizes.

#ifndef ASKETCH_BENCH_COMMON_BENCH_UTIL_H_
#define ASKETCH_BENCH_COMMON_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/stopwatch.h"
#include "src/common/types.h"
#include "src/workload/exact_counter.h"
#include "src/workload/metrics.h"
#include "src/workload/query_generator.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace bench {

/// Multiplier from ASKETCH_BENCH_SCALE (default 1.0; 8.0 reproduces the
/// paper's full 32M/8M setting).
inline double ScaleFromEnv() {
  const char* env = std::getenv("ASKETCH_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0 ? scale : 1.0;
}

/// The synthetic workload spec at the given skew (§7.1, scaled).
inline StreamSpec SyntheticSpec(double skew, double scale) {
  StreamSpec spec;
  spec.stream_size = static_cast<uint64_t>(4'000'000 * scale);
  spec.num_distinct =
      static_cast<uint32_t>(static_cast<uint64_t>(1'000'000 * scale));
  spec.skew = skew;
  spec.seed = 7;
  return spec;
}

/// A fully materialized benchmark workload: stream, ground truth, and a
/// frequency-proportional query mix (the paper's query setting).
struct Workload {
  StreamSpec spec;
  std::vector<Tuple> stream;
  ExactCounter truth;
  std::vector<item_t> queries;

  explicit Workload(const StreamSpec& s)
      : spec(s), truth(s.num_distinct) {
    std::vector<wide_count_t> counts;
    stream = GenerateStreamWithTruth(s, &counts);
    for (item_t key = 0; key < s.num_distinct; ++key) {
      if (counts[key] != 0) {
        truth.Update(key, static_cast<delta_t>(counts[key]));
      }
    }
    const uint64_t num_queries =
        std::max<uint64_t>(200'000, s.stream_size / 4);
    queries = GenerateQueries(stream, s.num_distinct, num_queries,
                              QuerySampling::kFrequencyProportional,
                              s.seed ^ 0x51);
  }
};

/// Times a full pass of `stream` through `estimator`; returns items/ms —
/// the paper's stream-processing-throughput metric.
template <typename T>
double UpdateThroughput(T& estimator, const std::vector<Tuple>& stream) {
  Stopwatch timer;
  for (const Tuple& t : stream) {
    estimator.Update(t.key, t.value);
  }
  const double ms = timer.ElapsedMillis();
  return static_cast<double>(stream.size()) / ms;
}

/// Times point queries; returns queries/ms. The checksum defeats
/// dead-code elimination.
template <typename T>
double QueryThroughput(const T& estimator,
                       const std::vector<item_t>& queries) {
  Stopwatch timer;
  uint64_t checksum = 0;
  for (const item_t key : queries) {
    checksum += estimator.Estimate(key);
  }
  const double ms = timer.ElapsedMillis();
  // Publish the checksum so the loop cannot be optimized away.
  static volatile uint64_t sink;
  sink = checksum;
  (void)sink;
  return static_cast<double>(queries.size()) / ms;
}

/// Observed error (%) of `estimator` on the workload's query mix.
template <typename T>
double ObservedErrorPercent(const T& estimator, const Workload& workload) {
  return 100.0 * ObservedError(
                     workload.queries,
                     [&estimator](item_t key) {
                       return estimator.Estimate(key);
                     },
                     workload.truth);
}

/// Prints the standard bench banner.
inline void PrintBanner(const std::string& experiment,
                        const std::string& description,
                        const std::string& workload) {
  std::printf("=== %s ===\n%s\nworkload: %s\n\n", experiment.c_str(),
              description.c_str(), workload.c_str());
}

/// The skew grid used by the "vs skew (Zipf)" figures: 0 to 3 in steps
/// of 0.25 at scale >= 1, coarser when scaled down hard.
inline std::vector<double> SkewGrid() {
  std::vector<double> skews;
  for (double z = 0.0; z <= 3.0 + 1e-9; z += 0.25) skews.push_back(z);
  return skews;
}

/// The narrower error-figure grid (0.8 .. 1.8, step 0.2) of Figs. 7/8/16.
inline std::vector<double> ErrorSkewGrid() {
  return {0.8, 1.0, 1.2, 1.4, 1.6, 1.8};
}

}  // namespace bench
}  // namespace asketch

#endif  // ASKETCH_BENCH_COMMON_BENCH_UTIL_H_
