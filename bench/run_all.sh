#!/usr/bin/env bash
# Regenerates every paper table/figure: runs each bench binary in
# build/bench/, concatenates the raw output into bench_output.txt (the
# file EXPERIMENTS.md quotes from), and writes a per-bench record under
# bench/out/: <name>.txt (raw stdout) and <name>.json (name, scale,
# exit code, wall seconds, output embedded as a JSON string).
#
# usage: bench/run_all.sh [build_dir] [out_dir]
#   build_dir  defaults to "build" (relative to the repo root)
#   out_dir    defaults to "bench/out"
#
# Honors ASKETCH_BENCH_SCALE (EXPERIMENTS.md §Workload scaling): 1 is
# the default 4M/1M workload, 8 the paper's full size. CI smokes the
# whole suite at 0.01. Exits nonzero if any bench fails.
set -u

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${1:-"$REPO_ROOT/build"}
OUT_DIR=${2:-"$REPO_ROOT/bench/out"}
SCALE=${ASKETCH_BENCH_SCALE:-1}
SUMMARY="$REPO_ROOT/bench_output.txt"

[ -d "$BUILD_DIR/bench" ] || {
  echo "run_all.sh: no bench binaries under $BUILD_DIR/bench" \
       "(build first: cmake -B build -S . && cmake --build build)" >&2
  exit 2
}
mkdir -p "$OUT_DIR"

# Raw stdout -> a JSON string literal (escape \, ", and newlines).
json_escape_file() {
  awk 'BEGIN{ORS="";} {
    gsub(/\\/, "\\\\"); gsub(/"/, "\\\"");
    if (NR > 1) print "\\n";
    print
  }' "$1"
}

: > "$SUMMARY"
failed=0
ran=0
for bin in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bin" ] && [ -f "$bin" ] || continue
  name=$(basename "$bin")
  printf '=== %s (ASKETCH_BENCH_SCALE=%s) ===\n' "$name" "$SCALE" \
    >> "$SUMMARY"
  start_ns=$(date +%s%N)
  "$bin" > "$OUT_DIR/$name.txt" 2>&1
  status=$?
  end_ns=$(date +%s%N)
  seconds=$(awk "BEGIN{printf \"%.3f\", ($end_ns - $start_ns) / 1e9}")
  cat "$OUT_DIR/$name.txt" >> "$SUMMARY"
  printf '\n' >> "$SUMMARY"
  # Benches that print machine-readable `key=value` lines (e.g.
  # bench_delta_ingest's speedup_delta_vs_queue_8t=2.24 rows) get them
  # lifted into a "metrics" object so dashboards can read the numbers
  # without parsing the raw output.
  metrics=$(grep -ohE '^[a-z][a-z0-9_]*=[0-9.]+$' "$OUT_DIR/$name.txt" \
              | awk -F= 'BEGIN{ORS=""; sep=""}
                         {printf "%s\"%s\":%s", sep, $1, $2; sep=","}')
  {
    printf '{"name":"%s","scale":"%s","exit_code":%d,"seconds":%s,' \
           "$name" "$SCALE" "$status" "$seconds"
    printf '"metrics":{%s},' "$metrics"
    printf '"output":"'
    json_escape_file "$OUT_DIR/$name.txt"
    printf '"}\n'
  } > "$OUT_DIR/$name.json"
  ran=$((ran + 1))
  if [ "$status" -ne 0 ]; then
    echo "run_all.sh: $name exited $status" >&2
    failed=$((failed + 1))
  else
    echo "ran $name (${seconds}s)"
  fi
done

[ "$ran" -gt 0 ] || { echo "run_all.sh: no bench binaries found" >&2; exit 2; }
echo "wrote $SUMMARY and $ran per-bench records in $OUT_DIR"
[ "$failed" -eq 0 ] || { echo "run_all.sh: $failed bench(es) failed" >&2; exit 1; }
