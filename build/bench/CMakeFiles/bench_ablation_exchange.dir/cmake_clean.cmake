file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_exchange.dir/bench_ablation_exchange.cc.o"
  "CMakeFiles/bench_ablation_exchange.dir/bench_ablation_exchange.cc.o.d"
  "bench_ablation_exchange"
  "bench_ablation_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
