file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix.dir/bench_appendix.cc.o"
  "CMakeFiles/bench_appendix.dir/bench_appendix.cc.o.d"
  "bench_appendix"
  "bench_appendix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
