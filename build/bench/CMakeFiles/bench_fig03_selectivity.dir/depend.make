# Empty dependencies file for bench_fig03_selectivity.
# This may be replaced when dependencies are built.
