# Empty dependencies file for bench_fig07_error.
# This may be replaced when dependencies are built.
