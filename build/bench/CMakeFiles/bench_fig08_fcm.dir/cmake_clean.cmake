file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_fcm.dir/bench_fig08_fcm.cc.o"
  "CMakeFiles/bench_fig08_fcm.dir/bench_fig08_fcm.cc.o.d"
  "bench_fig08_fcm"
  "bench_fig08_fcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_fcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
