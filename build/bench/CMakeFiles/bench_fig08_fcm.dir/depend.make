# Empty dependencies file for bench_fig08_fcm.
# This may be replaced when dependencies are built.
