file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_exchanges.dir/bench_fig09_exchanges.cc.o"
  "CMakeFiles/bench_fig09_exchanges.dir/bench_fig09_exchanges.cc.o.d"
  "bench_fig09_exchanges"
  "bench_fig09_exchanges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_exchanges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
