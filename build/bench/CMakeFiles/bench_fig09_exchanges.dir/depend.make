# Empty dependencies file for bench_fig09_exchanges.
# This may be replaced when dependencies are built.
