# Empty dependencies file for bench_fig10_realworld.
# This may be replaced when dependencies are built.
