file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_spacesaving.dir/bench_fig11_spacesaving.cc.o"
  "CMakeFiles/bench_fig11_spacesaving.dir/bench_fig11_spacesaving.cc.o.d"
  "bench_fig11_spacesaving"
  "bench_fig11_spacesaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_spacesaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
