# Empty dependencies file for bench_fig12_pipeline.
# This may be replaced when dependencies are built.
