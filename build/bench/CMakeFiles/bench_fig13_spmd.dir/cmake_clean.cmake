file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_spmd.dir/bench_fig13_spmd.cc.o"
  "CMakeFiles/bench_fig13_spmd.dir/bench_fig13_spmd.cc.o.d"
  "bench_fig13_spmd"
  "bench_fig13_spmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_spmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
