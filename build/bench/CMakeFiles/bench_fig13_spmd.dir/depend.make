# Empty dependencies file for bench_fig13_spmd.
# This may be replaced when dependencies are built.
