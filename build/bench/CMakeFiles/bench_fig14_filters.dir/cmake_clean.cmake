file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_filters.dir/bench_fig14_filters.cc.o"
  "CMakeFiles/bench_fig14_filters.dir/bench_fig14_filters.cc.o.d"
  "bench_fig14_filters"
  "bench_fig14_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
