# Empty compiler generated dependencies file for bench_fig14_filters.
# This may be replaced when dependencies are built.
