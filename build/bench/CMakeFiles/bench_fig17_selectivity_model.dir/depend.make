# Empty dependencies file for bench_fig17_selectivity_model.
# This may be replaced when dependencies are built.
