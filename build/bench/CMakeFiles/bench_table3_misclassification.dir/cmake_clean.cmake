file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_misclassification.dir/bench_table3_misclassification.cc.o"
  "CMakeFiles/bench_table3_misclassification.dir/bench_table3_misclassification.cc.o.d"
  "bench_table3_misclassification"
  "bench_table3_misclassification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_misclassification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
