# Empty compiler generated dependencies file for bench_table3_misclassification.
# This may be replaced when dependencies are built.
