file(REMOVE_RECURSE
  "CMakeFiles/nlp_pmi.dir/nlp_pmi.cc.o"
  "CMakeFiles/nlp_pmi.dir/nlp_pmi.cc.o.d"
  "nlp_pmi"
  "nlp_pmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_pmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
