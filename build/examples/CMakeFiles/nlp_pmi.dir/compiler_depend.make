# Empty compiler generated dependencies file for nlp_pmi.
# This may be replaced when dependencies are built.
