
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/hashing.cc" "src/CMakeFiles/asketch.dir/common/hashing.cc.o" "gcc" "src/CMakeFiles/asketch.dir/common/hashing.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/asketch.dir/common/random.cc.o" "gcc" "src/CMakeFiles/asketch.dir/common/random.cc.o.d"
  "/root/repo/src/common/stream_summary.cc" "src/CMakeFiles/asketch.dir/common/stream_summary.cc.o" "gcc" "src/CMakeFiles/asketch.dir/common/stream_summary.cc.o.d"
  "/root/repo/src/core/asketch.cc" "src/CMakeFiles/asketch.dir/core/asketch.cc.o" "gcc" "src/CMakeFiles/asketch.dir/core/asketch.cc.o.d"
  "/root/repo/src/core/pipeline_asketch.cc" "src/CMakeFiles/asketch.dir/core/pipeline_asketch.cc.o" "gcc" "src/CMakeFiles/asketch.dir/core/pipeline_asketch.cc.o.d"
  "/root/repo/src/core/spmd_group.cc" "src/CMakeFiles/asketch.dir/core/spmd_group.cc.o" "gcc" "src/CMakeFiles/asketch.dir/core/spmd_group.cc.o.d"
  "/root/repo/src/filter/relaxed_heap_filter.cc" "src/CMakeFiles/asketch.dir/filter/relaxed_heap_filter.cc.o" "gcc" "src/CMakeFiles/asketch.dir/filter/relaxed_heap_filter.cc.o.d"
  "/root/repo/src/filter/strict_heap_filter.cc" "src/CMakeFiles/asketch.dir/filter/strict_heap_filter.cc.o" "gcc" "src/CMakeFiles/asketch.dir/filter/strict_heap_filter.cc.o.d"
  "/root/repo/src/filter/vector_filter.cc" "src/CMakeFiles/asketch.dir/filter/vector_filter.cc.o" "gcc" "src/CMakeFiles/asketch.dir/filter/vector_filter.cc.o.d"
  "/root/repo/src/sketch/count_min.cc" "src/CMakeFiles/asketch.dir/sketch/count_min.cc.o" "gcc" "src/CMakeFiles/asketch.dir/sketch/count_min.cc.o.d"
  "/root/repo/src/sketch/count_sketch.cc" "src/CMakeFiles/asketch.dir/sketch/count_sketch.cc.o" "gcc" "src/CMakeFiles/asketch.dir/sketch/count_sketch.cc.o.d"
  "/root/repo/src/sketch/dyadic_count_min.cc" "src/CMakeFiles/asketch.dir/sketch/dyadic_count_min.cc.o" "gcc" "src/CMakeFiles/asketch.dir/sketch/dyadic_count_min.cc.o.d"
  "/root/repo/src/sketch/fcm.cc" "src/CMakeFiles/asketch.dir/sketch/fcm.cc.o" "gcc" "src/CMakeFiles/asketch.dir/sketch/fcm.cc.o.d"
  "/root/repo/src/sketch/holistic_udaf.cc" "src/CMakeFiles/asketch.dir/sketch/holistic_udaf.cc.o" "gcc" "src/CMakeFiles/asketch.dir/sketch/holistic_udaf.cc.o.d"
  "/root/repo/src/sketch/misra_gries.cc" "src/CMakeFiles/asketch.dir/sketch/misra_gries.cc.o" "gcc" "src/CMakeFiles/asketch.dir/sketch/misra_gries.cc.o.d"
  "/root/repo/src/sketch/space_saving.cc" "src/CMakeFiles/asketch.dir/sketch/space_saving.cc.o" "gcc" "src/CMakeFiles/asketch.dir/sketch/space_saving.cc.o.d"
  "/root/repo/src/sketch/topk_sketch.cc" "src/CMakeFiles/asketch.dir/sketch/topk_sketch.cc.o" "gcc" "src/CMakeFiles/asketch.dir/sketch/topk_sketch.cc.o.d"
  "/root/repo/src/workload/dataset_io.cc" "src/CMakeFiles/asketch.dir/workload/dataset_io.cc.o" "gcc" "src/CMakeFiles/asketch.dir/workload/dataset_io.cc.o.d"
  "/root/repo/src/workload/exact_counter.cc" "src/CMakeFiles/asketch.dir/workload/exact_counter.cc.o" "gcc" "src/CMakeFiles/asketch.dir/workload/exact_counter.cc.o.d"
  "/root/repo/src/workload/metrics.cc" "src/CMakeFiles/asketch.dir/workload/metrics.cc.o" "gcc" "src/CMakeFiles/asketch.dir/workload/metrics.cc.o.d"
  "/root/repo/src/workload/query_generator.cc" "src/CMakeFiles/asketch.dir/workload/query_generator.cc.o" "gcc" "src/CMakeFiles/asketch.dir/workload/query_generator.cc.o.d"
  "/root/repo/src/workload/stream_generator.cc" "src/CMakeFiles/asketch.dir/workload/stream_generator.cc.o" "gcc" "src/CMakeFiles/asketch.dir/workload/stream_generator.cc.o.d"
  "/root/repo/src/workload/trace_simulators.cc" "src/CMakeFiles/asketch.dir/workload/trace_simulators.cc.o" "gcc" "src/CMakeFiles/asketch.dir/workload/trace_simulators.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/CMakeFiles/asketch.dir/workload/zipf.cc.o" "gcc" "src/CMakeFiles/asketch.dir/workload/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
