file(REMOVE_RECURSE
  "libasketch.a"
)
