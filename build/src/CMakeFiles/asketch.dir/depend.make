# Empty dependencies file for asketch.
# This may be replaced when dependencies are built.
