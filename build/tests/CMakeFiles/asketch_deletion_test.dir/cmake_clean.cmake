file(REMOVE_RECURSE
  "CMakeFiles/asketch_deletion_test.dir/asketch_deletion_test.cc.o"
  "CMakeFiles/asketch_deletion_test.dir/asketch_deletion_test.cc.o.d"
  "asketch_deletion_test"
  "asketch_deletion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asketch_deletion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
