# Empty dependencies file for asketch_deletion_test.
# This may be replaced when dependencies are built.
