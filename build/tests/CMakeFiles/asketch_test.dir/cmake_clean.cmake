file(REMOVE_RECURSE
  "CMakeFiles/asketch_test.dir/asketch_test.cc.o"
  "CMakeFiles/asketch_test.dir/asketch_test.cc.o.d"
  "asketch_test"
  "asketch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
