# Empty compiler generated dependencies file for asketch_test.
# This may be replaced when dependencies are built.
