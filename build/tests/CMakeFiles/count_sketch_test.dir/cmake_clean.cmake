file(REMOVE_RECURSE
  "CMakeFiles/count_sketch_test.dir/count_sketch_test.cc.o"
  "CMakeFiles/count_sketch_test.dir/count_sketch_test.cc.o.d"
  "count_sketch_test"
  "count_sketch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/count_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
