file(REMOVE_RECURSE
  "CMakeFiles/estimator_adapter_test.dir/estimator_adapter_test.cc.o"
  "CMakeFiles/estimator_adapter_test.dir/estimator_adapter_test.cc.o.d"
  "estimator_adapter_test"
  "estimator_adapter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_adapter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
