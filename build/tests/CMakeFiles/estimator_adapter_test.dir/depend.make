# Empty dependencies file for estimator_adapter_test.
# This may be replaced when dependencies are built.
