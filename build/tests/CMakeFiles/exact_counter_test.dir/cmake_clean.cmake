file(REMOVE_RECURSE
  "CMakeFiles/exact_counter_test.dir/exact_counter_test.cc.o"
  "CMakeFiles/exact_counter_test.dir/exact_counter_test.cc.o.d"
  "exact_counter_test"
  "exact_counter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
