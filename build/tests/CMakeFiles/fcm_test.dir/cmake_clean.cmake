file(REMOVE_RECURSE
  "CMakeFiles/fcm_test.dir/fcm_test.cc.o"
  "CMakeFiles/fcm_test.dir/fcm_test.cc.o.d"
  "fcm_test"
  "fcm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
