# Empty compiler generated dependencies file for fcm_test.
# This may be replaced when dependencies are built.
