file(REMOVE_RECURSE
  "CMakeFiles/holistic_udaf_test.dir/holistic_udaf_test.cc.o"
  "CMakeFiles/holistic_udaf_test.dir/holistic_udaf_test.cc.o.d"
  "holistic_udaf_test"
  "holistic_udaf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holistic_udaf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
