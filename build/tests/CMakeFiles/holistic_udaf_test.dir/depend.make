# Empty dependencies file for holistic_udaf_test.
# This may be replaced when dependencies are built.
