file(REMOVE_RECURSE
  "CMakeFiles/join_estimation_test.dir/join_estimation_test.cc.o"
  "CMakeFiles/join_estimation_test.dir/join_estimation_test.cc.o.d"
  "join_estimation_test"
  "join_estimation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_estimation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
