# Empty dependencies file for join_estimation_test.
# This may be replaced when dependencies are built.
