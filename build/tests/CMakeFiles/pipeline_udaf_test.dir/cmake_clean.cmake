file(REMOVE_RECURSE
  "CMakeFiles/pipeline_udaf_test.dir/pipeline_udaf_test.cc.o"
  "CMakeFiles/pipeline_udaf_test.dir/pipeline_udaf_test.cc.o.d"
  "pipeline_udaf_test"
  "pipeline_udaf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_udaf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
