file(REMOVE_RECURSE
  "CMakeFiles/simd_scan_test.dir/simd_scan_test.cc.o"
  "CMakeFiles/simd_scan_test.dir/simd_scan_test.cc.o.d"
  "simd_scan_test"
  "simd_scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
