# Empty dependencies file for simd_scan_test.
# This may be replaced when dependencies are built.
