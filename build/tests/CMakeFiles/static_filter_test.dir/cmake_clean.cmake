file(REMOVE_RECURSE
  "CMakeFiles/static_filter_test.dir/static_filter_test.cc.o"
  "CMakeFiles/static_filter_test.dir/static_filter_test.cc.o.d"
  "static_filter_test"
  "static_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
