# Empty compiler generated dependencies file for static_filter_test.
# This may be replaced when dependencies are built.
