file(REMOVE_RECURSE
  "CMakeFiles/topk_sketch_test.dir/topk_sketch_test.cc.o"
  "CMakeFiles/topk_sketch_test.dir/topk_sketch_test.cc.o.d"
  "topk_sketch_test"
  "topk_sketch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
