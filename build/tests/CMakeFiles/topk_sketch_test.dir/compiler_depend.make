# Empty compiler generated dependencies file for topk_sketch_test.
# This may be replaced when dependencies are built.
