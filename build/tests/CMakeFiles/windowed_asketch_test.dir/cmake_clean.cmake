file(REMOVE_RECURSE
  "CMakeFiles/windowed_asketch_test.dir/windowed_asketch_test.cc.o"
  "CMakeFiles/windowed_asketch_test.dir/windowed_asketch_test.cc.o.d"
  "windowed_asketch_test"
  "windowed_asketch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windowed_asketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
