# Empty compiler generated dependencies file for windowed_asketch_test.
# This may be replaced when dependencies are built.
