file(REMOVE_RECURSE
  "CMakeFiles/asketch_cli.dir/asketch_cli.cc.o"
  "CMakeFiles/asketch_cli.dir/asketch_cli.cc.o.d"
  "asketch_cli"
  "asketch_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asketch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
