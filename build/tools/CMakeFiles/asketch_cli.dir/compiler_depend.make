# Empty compiler generated dependencies file for asketch_cli.
# This may be replaced when dependencies are built.
