file(REMOVE_RECURSE
  "CMakeFiles/make_stream.dir/make_stream.cc.o"
  "CMakeFiles/make_stream.dir/make_stream.cc.o.d"
  "make_stream"
  "make_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
