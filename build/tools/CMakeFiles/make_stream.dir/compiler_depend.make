# Empty compiler generated dependencies file for make_stream.
# This may be replaced when dependencies are built.
