// Heavy hitters over a click stream — the top-k workload of §7.2.2.
//
//   $ ./heavy_hitters
//
// Scenario: an online news portal wants its top-32 most-clicked articles
// in real time (the paper's Kosarak motivation). We run three same-space
// summaries side by side — ASketch (filter = top-k report), Space Saving
// (the classic counter-based method), and a plain Count-Min scanned
// against a threshold — and score them with precision-at-k.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/core/asketch.h"
#include "src/sketch/space_saving.h"
#include "src/workload/exact_counter.h"
#include "src/workload/metrics.h"
#include "src/workload/trace_simulators.h"

int main() {
  using namespace asketch;

  constexpr size_t kBudget = 32 * 1024;
  constexpr uint32_t kTopK = 32;

  // Kosarak-like click stream (Zipf ~1.0, small domain).
  const StreamSpec spec = KosarakLikeSpec(/*scale=*/0.25);
  std::printf("stream: %s\n\n", spec.ToString().c_str());

  ASketchConfig config;
  config.total_bytes = kBudget;
  config.width = 8;
  config.filter_items = kTopK;
  auto asketch_summary = MakeASketchCountMin<RelaxedHeapFilter>(config);

  SpaceSaving space_saving(
      static_cast<uint32_t>(kBudget / SpaceSaving::BytesPerItem()));

  ExactCounter truth(spec.num_distinct);
  ZipfStreamGenerator generator(spec);
  for (uint64_t i = 0; i < spec.stream_size; ++i) {
    const Tuple t = generator.Next();
    asketch_summary.Update(t.key, t.value);
    space_saving.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }

  // Build each method's top-k report.
  std::vector<item_t> asketch_top;
  for (const FilterEntry& e : asketch_summary.TopK()) {
    asketch_top.push_back(e.key);
  }
  std::vector<item_t> ss_top;
  for (const SpaceSavingEntry& e : space_saving.TopK()) {
    ss_top.push_back(e.key);
  }

  std::printf("%-22s precision-at-%u\n", "method", kTopK);
  std::printf("%-22s %.3f\n", asketch_summary.Name().c_str(),
              PrecisionAtK(asketch_top, truth, kTopK));
  std::printf("%-22s %.3f\n", space_saving.Name().c_str(),
              PrecisionAtK(ss_top, truth, kTopK));

  // Show the head of the report with exact vs estimated counts.
  std::printf("\ntop articles (ASketch report):\n%-10s %12s %12s\n", "key",
              "estimated", "true");
  int shown = 0;
  for (const FilterEntry& e : asketch_summary.TopK()) {
    if (shown++ == 10) break;
    std::printf("%-10u %12u %12llu\n", e.key, e.new_count,
                static_cast<unsigned long long>(truth.Count(e.key)));
  }
  return 0;
}
