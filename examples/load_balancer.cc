// Frequency-aware load balancing — the MapReduce-style motivation from
// the paper's introduction (Yan & Malin: biased frequency estimates lead
// to unbalanced job distribution).
//
//   $ ./load_balancer
//
// Scenario: a partitioner must split a skewed key stream across W
// workers. A frequency-oblivious hash partitioner overloads whichever
// worker draws the hottest keys; a frequency-aware partitioner isolates
// the estimated heavy hitters onto dedicated assignments. We compare the
// resulting load imbalance (max worker load / ideal load) when the heavy
// hitters come from (a) exact counts, (b) a Count-Min scan, and (c)
// ASketch's filter (TopK), all summaries same-sized.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "src/common/bit_util.h"
#include "src/core/asketch.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace {

using namespace asketch;

constexpr uint32_t kWorkers = 8;

// Greedy frequency-aware assignment: heavy keys first, each to the
// currently lightest worker; everything else by hash.
double ImbalanceWithHeavySet(
    const std::vector<Tuple>& stream, const ExactCounter& truth,
    const std::vector<std::pair<item_t, double>>& heavy_estimates) {
  std::unordered_map<item_t, uint32_t> assignment;
  std::vector<double> planned(kWorkers, 0);
  // Plan using the *estimated* weights (that is all the balancer knows).
  for (const auto& [key, weight] : heavy_estimates) {
    const uint32_t worker = static_cast<uint32_t>(
        std::min_element(planned.begin(), planned.end()) -
        planned.begin());
    assignment[key] = worker;
    planned[worker] += weight;
  }
  // Measure using the *true* loads the plan produces.
  std::vector<uint64_t> load(kWorkers, 0);
  for (const Tuple& t : stream) {
    const auto it = assignment.find(t.key);
    const uint32_t worker =
        it != assignment.end()
            ? it->second
            : static_cast<uint32_t>(Mix64(t.key) % kWorkers);
    load[worker] += t.value;
  }
  const uint64_t max_load = *std::max_element(load.begin(), load.end());
  const double ideal =
      static_cast<double>(truth.Total()) / kWorkers;
  return static_cast<double>(max_load) / ideal;
}

}  // namespace

int main() {
  StreamSpec spec;
  spec.stream_size = 4'000'000;
  spec.num_distinct = 1'000'000;
  spec.skew = 1.1;
  spec.seed = 9;
  std::printf("stream: %s, %u workers\n\n", spec.ToString().c_str(),
              kWorkers);
  ExactCounter truth(spec.num_distinct);
  const std::vector<Tuple> stream = GenerateStream(spec);
  for (const Tuple& t : stream) truth.Update(t.key, t.value);

  constexpr size_t kBudget = 4 * 1024;
  constexpr uint32_t kHeavyKeys = 32;

  // (a) hash-only partitioner: no heavy set at all.
  const double hash_only = ImbalanceWithHeavySet(stream, truth, {});

  // (b) exact oracle.
  std::vector<std::pair<item_t, double>> oracle;
  const auto by_frequency = truth.KeysByFrequency();
  for (uint32_t i = 0; i < kHeavyKeys; ++i) {
    oracle.push_back({by_frequency[i],
                      static_cast<double>(truth.Count(by_frequency[i]))});
  }

  // (c) Count-Min: scan the domain for the best estimates (what a
  // sketch-only system would have to do).
  CountMin cm(CountMinConfig::FromSpaceBudget(kBudget, 8, 42));
  for (const Tuple& t : stream) cm.Update(t.key, t.value);
  std::vector<std::pair<item_t, double>> cm_heavy;
  {
    std::vector<std::pair<count_t, item_t>> scored;
    scored.reserve(spec.num_distinct);
    for (item_t key = 0; key < spec.num_distinct; ++key) {
      scored.push_back({cm.Estimate(key), key});
    }
    std::partial_sort(scored.begin(), scored.begin() + kHeavyKeys,
                      scored.end(), std::greater<>());
    for (uint32_t i = 0; i < kHeavyKeys; ++i) {
      cm_heavy.push_back({scored[i].second,
                          static_cast<double>(scored[i].first)});
    }
  }

  // (d) ASketch: the filter IS the heavy set — no domain scan needed.
  ASketchConfig config;
  config.total_bytes = kBudget;
  config.width = 8;
  config.filter_items = kHeavyKeys;
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
  for (const Tuple& t : stream) as.Update(t.key, t.value);
  std::vector<std::pair<item_t, double>> as_heavy;
  for (const FilterEntry& e : as.TopK()) {
    as_heavy.push_back({e.key, static_cast<double>(e.new_count)});
  }

  // Quality of each heavy set: how many of the true top keys it found,
  // and how far its weight estimates are from the truth (wrong weights
  // mean the greedy packing balances phantom load).
  const auto report = [&](const char* name,
                          const std::vector<std::pair<item_t, double>>&
                              heavy) {
    const wide_count_t threshold = truth.CountOfRank(kHeavyKeys);
    uint32_t correct = 0;
    double weight_error = 0;
    double weight_total = 0;
    for (const auto& [key, weight] : heavy) {
      if (truth.Count(key) >= threshold) ++correct;
      weight_error +=
          std::abs(weight - static_cast<double>(truth.Count(key)));
      weight_total += static_cast<double>(truth.Count(key));
    }
    std::printf("%-34s %12.3f %12.2f %16.4f\n", name,
                ImbalanceWithHeavySet(stream, truth, heavy),
                heavy.empty() ? 0.0
                              : static_cast<double>(correct) / kHeavyKeys,
                weight_total > 0 ? weight_error / weight_total : 0.0);
  };
  std::printf("%-34s %12s %12s %16s\n", "partitioner", "imbalance",
              "precision", "weight rel err");
  std::printf("%-34s %12.3f %12s %16s\n", "hash only", hash_only, "-",
              "-");
  report("heavy set from exact counts", oracle);
  report("heavy set from Count-Min (scan)", cm_heavy);
  report("heavy set from ASketch filter", as_heavy);
  std::printf("\n(imbalance 1.0 = perfectly balanced; ASketch should "
              "track the exact oracle)\n");
  return 0;
}
