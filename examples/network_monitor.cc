// Network flow monitor with flow expiry — deletions in practice
// (Appendix A of the paper).
//
//   $ ./network_monitor
//
// Scenario: an IP-trace-like packet stream where finished flows are
// retired: when a flow closes, its packets are removed from the synopsis
// with negative-count updates so the summary tracks only *live* traffic.
// ASketch supports this through the two-counter deletion protocol; the
// estimates stay one-sided (never below the live true count).

#include <cstdio>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/core/asketch.h"
#include "src/workload/trace_simulators.h"

int main() {
  using namespace asketch;

  ASketchConfig config;
  config.total_bytes = 64 * 1024;
  config.width = 8;
  config.filter_items = 32;
  auto monitor = MakeASketchCountMin<RelaxedHeapFilter>(config);

  const StreamSpec spec = IpTraceLikeSpec(/*scale=*/0.002);
  std::printf("simulated trace: %s\n", spec.ToString().c_str());

  // Live ground truth per flow (packets seen minus packets retired).
  std::unordered_map<item_t, uint64_t> live;
  ZipfStreamGenerator generator(spec);
  Rng rng(1234);
  uint64_t retired_flows = 0;
  for (uint64_t i = 0; i < spec.stream_size; ++i) {
    const Tuple t = generator.Next();
    monitor.Update(t.key, t.value);
    live[t.key] += t.value;
    // Every ~64 packets, a random observed flow finishes: retire it.
    if (rng.NextBounded(64) == 0 && !live.empty()) {
      const item_t victim = t.key;  // retire the flow we just saw
      const uint64_t packets = live[victim];
      if (packets > 1) {
        monitor.Update(victim, -static_cast<delta_t>(packets - 1));
        live[victim] = 1;
        ++retired_flows;
      }
    }
  }

  std::printf("processed %llu packets, retired %llu flows\n\n",
              static_cast<unsigned long long>(spec.stream_size),
              static_cast<unsigned long long>(retired_flows));

  // Verify the one-sided guarantee on live counts and report the heaviest
  // live flows.
  uint64_t undercounts = 0;
  uint64_t checked = 0;
  for (const auto& [key, packets] : live) {
    if (monitor.Estimate(key) < packets) ++undercounts;
    ++checked;
  }
  std::printf("one-sided check: %llu under-estimates across %llu live "
              "flows (must be 0)\n",
              static_cast<unsigned long long>(undercounts),
              static_cast<unsigned long long>(checked));

  std::printf("\nheaviest live flows:\n%-12s %12s %12s\n", "flow", "est",
              "true");
  int shown = 0;
  for (const FilterEntry& e : monitor.TopK()) {
    if (shown++ == 8) break;
    std::printf("%-12u %12u %12llu\n", e.key, e.new_count,
                static_cast<unsigned long long>(live[e.key]));
  }
  return undercounts == 0 ? 0 : 1;
}
