// Sketch-based pointwise mutual information (PMI) — the NLP application
// motivating accurate rankings in the paper's introduction (Goyal, Daumé,
// Cormode: "Sketch Algorithms for Estimating Point Queries in NLP").
//
//   $ ./nlp_pmi
//
// Scenario: a corpus streams by as (word, context-word) pairs; pair
// frequencies are sketched and word pairs are scored by
// PMI(x, y) = log( p(x,y) / (p(x) p(y)) ). Misestimated pair counts
// corrupt the PMI scores of the most frequent pairs — exactly the failure
// mode the paper cites for sentiment analysis — so we measure the count
// and PMI error of a Count-Min vs a same-space ASketch on the hottest
// collocations.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/core/asketch.h"
#include "src/workload/stream_generator.h"
#include "src/workload/zipf.h"

namespace {

using namespace asketch;

// Synthetic corpus model: word unigrams follow a Zipf law; a small set of
// "collocations" (fixed word pairs) co-occur far more often than chance.
struct Corpus {
  std::vector<std::pair<item_t, item_t>> pairs;  // (word, context) stream
  std::unordered_map<uint64_t, uint64_t> pair_counts;
  std::vector<uint64_t> word_counts;
  uint64_t total_pairs = 0;
};

uint64_t PairId(item_t x, item_t y) {
  return (static_cast<uint64_t>(x) << 32) | y;
}

item_t PairKey(item_t x, item_t y) {
  // 32-bit key for the sketches: mix the pair id.
  return static_cast<item_t>(Mix64(PairId(x, y)) >> 32);
}

Corpus MakeCorpus(uint32_t vocabulary, uint64_t num_pairs,
                  uint32_t num_collocations, uint64_t seed) {
  Corpus corpus;
  corpus.word_counts.assign(vocabulary, 0);
  corpus.pairs.reserve(num_pairs);
  ZipfDistribution unigram(vocabulary, 1.1);
  Rng rng(seed);
  // Collocation pairs between mid-frequency words (the interesting PMI
  // case: high joint probability relative to moderate marginals).
  std::vector<std::pair<item_t, item_t>> collocations;
  for (uint32_t i = 0; i < num_collocations; ++i) {
    collocations.push_back(
        {static_cast<item_t>(100 + 7 * i),
         static_cast<item_t>(150 + 11 * i)});
  }
  for (uint64_t i = 0; i < num_pairs; ++i) {
    item_t x, y;
    if (rng.NextBounded(10) < 3) {  // 30% of pairs are collocations
      // Graded strengths: collocation j is roughly twice as common as
      // collocation j+3, so the PMI ranking has a meaningful order that
      // estimation noise can scramble.
      size_t j = 0;
      while (j + 1 < collocations.size() && rng.NextBounded(5) < 4) ++j;
      const auto& c = collocations[j];
      x = c.first;
      y = c.second;
    } else {
      x = static_cast<item_t>(unigram.Sample(rng) - 1);
      y = static_cast<item_t>(unigram.Sample(rng) - 1);
    }
    corpus.pairs.push_back({x, y});
    ++corpus.word_counts[x];
    ++corpus.word_counts[y];
    ++corpus.pair_counts[PairId(x, y)];
    ++corpus.total_pairs;
  }
  return corpus;
}

double Pmi(double pair_count, double x_count, double y_count,
           double total) {
  if (pair_count <= 0 || x_count <= 0 || y_count <= 0) return -1e9;
  return std::log((pair_count * 2.0 * total) / (x_count * y_count));
}

}  // namespace

int main() {
  constexpr uint32_t kVocabulary = 200000;
  constexpr uint64_t kPairs = 2'000'000;
  const Corpus corpus = MakeCorpus(kVocabulary, kPairs, 60, 1234);
  std::printf("corpus: %llu word pairs, vocabulary %u\n\n",
              static_cast<unsigned long long>(corpus.total_pairs),
              kVocabulary);

  // Summarize pair frequencies with small same-space synopses (word
  // marginals are kept exact; the quadratic pair space is what needs
  // sketching).
  constexpr size_t kBudget = 8 * 1024;
  CountMin cm(CountMinConfig::FromSpaceBudget(kBudget, 8, 42));
  ASketchConfig config;
  config.total_bytes = kBudget;
  config.width = 8;
  config.filter_items = 32;
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
  for (const auto& [x, y] : corpus.pairs) {
    const item_t key = PairKey(x, y);
    cm.Update(key);
    as.Update(key);
  }

  // Candidates: all pairs seen at least 20 times (tracking the candidate
  // *set* is cheap; scoring needs the frequencies).
  std::vector<std::pair<item_t, item_t>> candidates;
  for (const auto& [id, count] : corpus.pair_counts) {
    if (count >= 20) {
      candidates.push_back({static_cast<item_t>(id >> 32),
                            static_cast<item_t>(id & 0xffffffff)});
    }
  }
  std::printf("%zu candidate pairs with count >= 20\n", candidates.size());

  // The paper's point is accuracy on the MOST FREQUENT items: rank the
  // candidates by true frequency and evaluate the PMI computed from each
  // summary on the hottest 40 pairs (the collocations an NLP pipeline
  // would actually report).
  std::sort(candidates.begin(), candidates.end(),
            [&corpus](const auto& a, const auto& b) {
              return corpus.pair_counts.at(PairId(a.first, a.second)) >
                     corpus.pair_counts.at(PairId(b.first, b.second));
            });
  const size_t hot_n = std::min<size_t>(40, candidates.size());
  const auto hot = std::vector<std::pair<item_t, item_t>>(
      candidates.begin(), candidates.begin() + hot_n);

  const auto pmi_error = [&](auto&& estimate) {
    double total = 0;
    for (const auto& [x, y] : hot) {
      const double exact_pmi =
          Pmi(static_cast<double>(corpus.pair_counts.at(PairId(x, y))),
              corpus.word_counts[x], corpus.word_counts[y],
              static_cast<double>(corpus.total_pairs));
      const double est_pmi =
          Pmi(estimate(x, y), corpus.word_counts[x],
              corpus.word_counts[y],
              static_cast<double>(corpus.total_pairs));
      total += std::abs(est_pmi - exact_pmi);
    }
    return total / static_cast<double>(hot_n);
  };
  const auto count_error = [&](auto&& estimate) {
    double total = 0, truth_sum = 0;
    for (const auto& [x, y] : hot) {
      const double t =
          static_cast<double>(corpus.pair_counts.at(PairId(x, y)));
      total += std::abs(estimate(x, y) - t);
      truth_sum += t;
    }
    return total / truth_sum;
  };
  const auto cm_estimate = [&cm](item_t x, item_t y) {
    return static_cast<double>(cm.Estimate(PairKey(x, y)));
  };
  const auto as_estimate = [&as](item_t x, item_t y) {
    return static_cast<double>(as.Estimate(PairKey(x, y)));
  };

  std::printf("\naccuracy on the %zu most frequent pairs:\n", hot_n);
  std::printf("%-22s %18s %18s\n", "method", "count rel err",
              "mean |PMI error|");
  std::printf("%-22s %18.4f %18.4f\n", "Count-Min (8KB)",
              count_error(cm_estimate), pmi_error(cm_estimate));
  std::printf("%-22s %18.4f %18.4f\n", "ASketch (8KB)",
              count_error(as_estimate), pmi_error(as_estimate));
  std::printf("\n(an ASketch filter of 32 pairs keeps the hottest "
              "collocations exact, so their PMI scores — and any top-k "
              "sentiment/collocation report built on them — stay "
              "correct)\n");
  return 0;
}
