// Pipeline parallelism demo — the two-core deployment of §6.2.
//
//   $ ./pipeline_demo
//
// Runs the same skewed stream through the sequential ASketch and the
// pipeline-parallel one (filter on the caller's core, Count-Min on a
// worker core, SPSC message queues in between), then cross-checks the
// estimates. On a multi-core machine the pipeline roughly doubles update
// throughput in the real-world skew range (Fig. 12); on a single-core
// machine it demonstrates the protocol's correctness rather than speed.

#include <cstdio>

#include "src/common/stopwatch.h"
#include "src/core/asketch.h"
#include "src/core/pipeline_asketch.h"
#include "src/workload/stream_generator.h"

int main() {
  using namespace asketch;

  ASketchConfig config;
  config.total_bytes = 128 * 1024;
  config.width = 8;
  config.filter_items = 32;

  StreamSpec spec;
  spec.stream_size = 2'000'000;
  spec.num_distinct = 500'000;
  spec.skew = 1.5;
  const std::vector<Tuple> stream = GenerateStream(spec);

  auto sequential = MakeASketchCountMin<RelaxedHeapFilter>(config);
  Stopwatch sequential_timer;
  for (const Tuple& t : stream) sequential.Update(t.key, t.value);
  const double sequential_ms = sequential_timer.ElapsedMillis();

  PipelineASketch pipeline(config);
  Stopwatch pipeline_timer;
  for (const Tuple& t : stream) pipeline.Update(t.key, t.value);
  pipeline.Flush();
  const double pipeline_ms = pipeline_timer.ElapsedMillis();

  std::printf("%-22s %14s %16s\n", "variant", "items/ms", "exchanges");
  std::printf("%-22s %14.0f %16llu\n", "sequential ASketch",
              stream.size() / sequential_ms,
              static_cast<unsigned long long>(
                  sequential.stats().exchanges));
  std::printf("%-22s %14.0f %16llu\n", "pipeline ASketch",
              stream.size() / pipeline_ms,
              static_cast<unsigned long long>(
                  pipeline.stats().exchanges));

  // Cross-check a few estimates between the two deployments.
  ZipfStreamGenerator generator(spec);
  std::printf("\n%-8s %14s %14s\n", "rank", "sequential", "pipeline");
  for (uint64_t rank : {1, 2, 4, 8, 1000}) {
    const item_t key = generator.RankToKey(rank);
    std::printf("%-8llu %14u %14u\n",
                static_cast<unsigned long long>(rank),
                sequential.Estimate(key), pipeline.Estimate(key));
  }
  std::printf("\npipeline stats: forwarded=%llu fixups=%llu (dropped "
              "%llu)\n",
              static_cast<unsigned long long>(pipeline.stats().forwarded),
              static_cast<unsigned long long>(
                  pipeline.stats().fixups_applied),
              static_cast<unsigned long long>(
                  pipeline.stats().fixups_dropped));
  return 0;
}
