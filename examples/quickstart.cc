// Quickstart: build an ASketch, feed it a stream, query frequencies.
//
//   $ ./quickstart
//
// Demonstrates the three-line happy path — configure a space budget,
// update with (key, weight) tuples, query point frequencies — and shows
// the accuracy difference against a plain Count-Min of the same size.

#include <cstdio>

#include "src/core/asketch.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

int main() {
  using namespace asketch;

  // 1. Configure: 128 KB total, 8 hash rows, a 32-item filter. The filter
  //    is paid for by shrinking the sketch, so the whole synopsis is
  //    exactly as big as a plain 128 KB Count-Min.
  ASketchConfig config;
  config.total_bytes = 128 * 1024;
  config.width = 8;
  config.filter_items = 32;
  auto sketch = MakeASketchCountMin<RelaxedHeapFilter>(config);

  // 2. Update with a synthetic skewed stream (2M tuples, 500K distinct
  //    keys, Zipf 1.5 — a typical real-world skew).
  StreamSpec spec;
  spec.stream_size = 2'000'000;
  spec.num_distinct = 500'000;
  spec.skew = 1.5;
  ExactCounter truth(spec.num_distinct);
  ZipfStreamGenerator generator(spec);
  for (uint64_t i = 0; i < spec.stream_size; ++i) {
    const Tuple t = generator.Next();
    sketch.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }

  // 3. Query: the hottest keys are answered exactly from the filter.
  CountMin baseline(CountMinConfig::FromSpaceBudget(config.total_bytes,
                                                    config.width));
  // (re-run the same stream through the baseline for a fair comparison)
  ZipfStreamGenerator replay(spec);
  for (uint64_t i = 0; i < spec.stream_size; ++i) {
    const Tuple t = replay.Next();
    baseline.Update(t.key, t.value);
  }

  std::printf("%-6s %12s %12s %12s\n", "rank", "true", "ASketch",
              "Count-Min");
  for (uint64_t rank : {1, 2, 3, 5, 10, 100, 10000}) {
    const item_t key = generator.RankToKey(rank);
    std::printf("%-6llu %12llu %12u %12u\n",
                static_cast<unsigned long long>(rank),
                static_cast<unsigned long long>(truth.Count(key)),
                sketch.Estimate(key), baseline.Estimate(key));
  }

  std::printf(
      "\nfilter absorbed %.1f%% of all counts; %llu exchanges; "
      "synopsis size %zu bytes\n",
      100.0 * (1.0 - sketch.stats().FilterSelectivity()),
      static_cast<unsigned long long>(sketch.stats().exchanges),
      sketch.MemoryUsageBytes());
  return 0;
}
