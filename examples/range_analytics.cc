// Range analytics with the dyadic Count-Min — the "hierarchical data
// structure" companion of §2, applied to a latency-monitoring scenario.
//
//   $ ./range_analytics
//
// Scenario: a service emits one tuple per request keyed by its latency
// in microseconds (a 20-bit domain, up to ~1s). The dyadic Count-Min
// answers, from one compact summary built in a single pass:
//   * range sums   — "how many requests took 10ms..50ms?"
//   * quantiles    — binary search over prefix range sums
//   * heavy values — latency values that dominate the distribution
// All answers are one-sided (never under-count), so SLO alerts built on
// them cannot miss.

#include <cmath>
#include <cstdio>

#include "src/common/random.h"
#include "src/sketch/dyadic_count_min.h"

namespace {

using namespace asketch;

constexpr uint32_t kDomainBits = 20;  // latencies 0 .. ~1.05s in us

// Bimodal latency model: a fast path around 800us and a slow tail around
// 45ms, plus a spike at exactly 30000us (a retry timeout).
item_t SampleLatency(Rng& rng) {
  const uint64_t r = rng.NextBounded(100);
  double latency;
  if (r < 70) {  // fast path: lognormal-ish around 800us
    latency = 800.0 * std::exp(0.4 * (rng.NextDouble() +
                                      rng.NextDouble() - 1.0));
  } else if (r < 95) {  // slow path around 45ms
    latency = 45000.0 * std::exp(0.5 * (rng.NextDouble() +
                                        rng.NextDouble() - 1.0));
  } else {  // retry timeout spike
    latency = 30000.0;
  }
  const double clamped =
      std::min(latency, static_cast<double>((1u << kDomainBits) - 1));
  return static_cast<item_t>(clamped);
}

// p-quantile via binary search on prefix range sums.
item_t Quantile(const DyadicCountMin& sketch, double p) {
  const wide_count_t target =
      static_cast<wide_count_t>(p * static_cast<double>(sketch.Total()));
  item_t lo = 0, hi = (1u << kDomainBits) - 1;
  while (lo < hi) {
    const item_t mid = lo + (hi - lo) / 2;
    if (sketch.RangeSum(0, mid) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

int main() {
  DyadicCountMinConfig config;
  config.domain_bits = kDomainBits;
  config.width = 4;
  config.total_bytes = 256 * 1024;
  DyadicCountMin sketch(config);

  constexpr uint64_t kRequests = 2'000'000;
  Rng rng(2024);
  for (uint64_t i = 0; i < kRequests; ++i) {
    sketch.Update(SampleLatency(rng));
  }
  std::printf("summarized %llu requests into %zu bytes\n\n",
              static_cast<unsigned long long>(kRequests),
              sketch.MemoryUsageBytes());

  std::printf("latency band            requests   share\n");
  const auto band = [&sketch](const char* label, item_t lo, item_t hi) {
    const wide_count_t count = sketch.RangeSum(lo, hi);
    std::printf("%-22s %10llu   %5.1f%%\n", label,
                static_cast<unsigned long long>(count),
                100.0 * static_cast<double>(count) /
                    static_cast<double>(sketch.Total()));
  };
  band("< 1ms", 0, 999);
  band("1ms .. 10ms", 1000, 9999);
  band("10ms .. 50ms", 10000, 49999);
  band("50ms .. 200ms", 50000, 199999);
  band(">= 200ms", 200000, (1u << kDomainBits) - 1);

  std::printf("\nquantiles (us): p50=%u  p90=%u  p99=%u\n",
              Quantile(sketch, 0.50), Quantile(sketch, 0.90),
              Quantile(sketch, 0.99));

  std::printf("\ndominant exact latency values (>= 1%% of traffic):\n");
  const count_t threshold =
      static_cast<count_t>(sketch.Total() / 100);
  for (const RangeHeavyHitter& h : sketch.HeavyHitters(threshold)) {
    std::printf("  %uus  x%u\n", h.key, h.estimate);
  }
  std::printf("(the 30000us retry-timeout spike must appear above)\n");
  return 0;
}
