// Trending topics over a jumping window — WindowedASketch in action.
//
//   $ ./trending_topics
//
// Scenario: a news portal's click stream where the popular articles
// change over time. A plain (cumulative) summary keeps reporting
// yesterday's hits forever; the windowed summary tracks what is hot
// *now*. We stream three "phases" with different head articles and show
// each summary's top-5 after every phase.

#include <cstdio>
#include <vector>

#include "src/core/asketch.h"
#include "src/core/windowed_asketch.h"
#include "src/workload/stream_generator.h"

namespace {

using namespace asketch;

ASketchConfig Config() {
  ASketchConfig config;
  config.total_bytes = 64 * 1024;
  config.width = 8;
  config.filter_items = 32;
  return config;
}

void PrintTop(const char* label, const std::vector<FilterEntry>& top) {
  std::printf("  %-12s", label);
  for (size_t i = 0; i < 5 && i < top.size(); ++i) {
    std::printf("  #%u(x%u)", top[i].key, top[i].new_count);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  constexpr uint64_t kPhaseLength = 500'000;
  // Window = one phase: after a phase ends, its articles fade within one
  // further phase.
  WindowedASketch windowed(kPhaseLength, Config());
  auto cumulative = MakeASketchCountMin<RelaxedHeapFilter>(Config());

  // Each phase draws from a Zipf stream whose hot head is shifted: phase
  // p's hottest articles are around id_base = 1000 * (p + 1).
  for (int phase = 0; phase < 3; ++phase) {
    StreamSpec spec;
    spec.stream_size = kPhaseLength;
    spec.num_distinct = 50'000;
    spec.skew = 1.3;
    spec.seed = 100 + phase;  // different seed => different hot head
    ZipfStreamGenerator generator(spec);
    for (uint64_t i = 0; i < kPhaseLength; ++i) {
      const Tuple t = generator.Next();
      // Offset the key space per phase so the "news cycle" moves on.
      const item_t article =
          static_cast<item_t>((t.key + 7919u * phase) % 50000u);
      windowed.Update(article);
      cumulative.Update(article);
    }
    std::printf("after phase %d (hot articles rotated):\n", phase);
    PrintTop("windowed", windowed.TopK());
    PrintTop("cumulative", cumulative.TopK());
  }
  std::printf(
      "\nthe windowed report follows the current phase's articles; the\n"
      "cumulative one is stuck on the all-time leaders. memory: %zu vs "
      "%zu bytes\n",
      windowed.MemoryUsageBytes(), cumulative.MemoryUsageBytes());
  return 0;
}
