// Free-function atomic views over plain storage (std::atomic_ref).
//
// The lock-free read path (DESIGN.md §5c) leaves hot-path data in
// ordinary vectors/members — the single writer keeps mutating them with
// plain-cost store instructions — while concurrent readers observe them
// through atomic_ref loads. Every cross-thread access goes through these
// helpers so the protocol is auditable at the call sites and the builds
// under -fsanitize=thread see matching atomic access pairs (a plain
// store racing an atomic load is still a data race).
//
// On x86-64 all four helpers compile to plain MOVs; the memory orders
// only constrain compiler reordering.

#ifndef ASKETCH_COMMON_ATOMIC_UTIL_H_
#define ASKETCH_COMMON_ATOMIC_UTIL_H_

#include <atomic>

namespace asketch {

/// Relaxed atomic load of a plain location. Use when ordering against
/// other locations is established elsewhere (or monotonicity makes any
/// interleaving acceptable, as for Count-Min cells on insert-only
/// streams).
template <typename T>
inline T RelaxedLoad(const T& location) {
  return std::atomic_ref<T>(const_cast<T&>(location))
      .load(std::memory_order_relaxed);
}

/// Relaxed atomic store to a plain location (single-writer data whose
/// publication order is carried by a later release store).
template <typename T>
inline void RelaxedStore(T& location, T value) {
  std::atomic_ref<T>(location).store(value, std::memory_order_relaxed);
}

/// Acquire load: no later access in this thread may be reordered before
/// it. The seqlock reader uses this for its data loads, which pins the
/// validating sequence re-read after every one of them (seqlock.h).
template <typename T>
inline T AcquireLoad(const T& location) {
  return std::atomic_ref<T>(const_cast<T&>(location))
      .load(std::memory_order_acquire);
}

/// Release store: no earlier access in this thread may be reordered
/// after it. The seqlock writer uses this for its data stores, which
/// pins each store after the odd sequence bump that opened the write
/// section.
template <typename T>
inline void ReleaseStore(T& location, T value) {
  std::atomic_ref<T>(location).store(value, std::memory_order_release);
}

}  // namespace asketch

#endif  // ASKETCH_COMMON_ATOMIC_UTIL_H_
