// Small bit-twiddling helpers used by the hashing and filter code.

#ifndef ASKETCH_COMMON_BIT_UTIL_H_
#define ASKETCH_COMMON_BIT_UTIL_H_

#include <cstddef>
#include <cstdint>

namespace asketch {

/// Rounds `n` up to the next multiple of `m` (m > 0).
constexpr size_t RoundUp(size_t n, size_t m) { return ((n + m - 1) / m) * m; }

/// Rounds `n` down to the previous multiple of `m` (m > 0).
constexpr size_t RoundDown(size_t n, size_t m) { return (n / m) * m; }

/// True if `n` is a power of two (n > 0).
constexpr bool IsPowerOfTwo(uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n (n >= 1, n <= 2^63).
constexpr uint64_t NextPowerOfTwo(uint64_t n) {
  uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// 64-bit finalizer from splitmix64 / MurmurHash3. Bijective; used to
/// decorrelate sequential ids when a full hash family is unnecessary.
constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace asketch

#endif  // ASKETCH_COMMON_BIT_UTIL_H_
