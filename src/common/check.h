// Invariant-enforcement macros. The library does not use exceptions; broken
// preconditions and internal invariants terminate the process with a message,
// in the style of glog's CHECK. Recoverable misconfiguration is handled by
// the validating factories / Config::Validate() methods instead.

#ifndef ASKETCH_COMMON_CHECK_H_
#define ASKETCH_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace asketch {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace asketch

/// Aborts the process if `expr` is false. Enabled in all build types: the
/// conditions guarded by ASKETCH_CHECK are genuine API contract violations,
/// not debugging aids.
#define ASKETCH_CHECK(expr)                                         \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::asketch::internal::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                               \
  } while (0)

/// Debug-only invariant check; compiles away in NDEBUG builds.
#ifdef NDEBUG
#define ASKETCH_DCHECK(expr) \
  do {                       \
  } while (0)
#else
#define ASKETCH_DCHECK(expr) ASKETCH_CHECK(expr)
#endif

#endif  // ASKETCH_COMMON_CHECK_H_
