// CRC32C (Castagnoli) checksums for snapshot integrity.
//
// The snapshot envelope (src/common/snapshot.h) protects serialized
// synopses end to end: a bit flip anywhere in a checkpoint file must be
// detected at load time rather than deserializing silently into wrong
// counts. CRC32C is the standard choice (iSCSI, ext4, RocksDB): its
// polynomial has hardware support on x86-64 since Nehalem, so checksumming
// a 128 KB synopsis costs microseconds.
//
// Hardware path: SSE4.2 `_mm_crc32_u64`, eight bytes per instruction.
// Fallback: byte-wise table over the reflected polynomial 0x82F63B78,
// generated at compile time. Both compute the standard CRC32C (initial
// state and final XOR of 0xffffffff) — e.g. Crc32c("123456789", 9) ==
// 0xE3069283 — so a snapshot written on any machine validates on any
// other. Dispatch is compile-time on the target ISA, matching the rest of
// the library's SIMD kernels (simd_scan.h, hashing.cc).

#ifndef ASKETCH_COMMON_CRC32C_H_
#define ASKETCH_COMMON_CRC32C_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace asketch {
namespace internal {

constexpr std::array<uint32_t, 256> MakeCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0x82f63b78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32cTable = MakeCrc32cTable();

/// Extends the (pre-inverted) running state `crc` over `size` bytes.
inline uint32_t Crc32cUpdateScalar(uint32_t crc, const void* data,
                                   size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kCrc32cTable[(crc ^ bytes[i]) & 0xffu];
  }
  return crc;
}

#if defined(__SSE4_2__)
inline uint32_t Crc32cUpdateSse42(uint32_t crc, const void* data,
                                  size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t crc64 = crc;
  while (size >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, bytes, sizeof(chunk));
    crc64 = _mm_crc32_u64(crc64, chunk);
    bytes += 8;
    size -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (size > 0) {
    crc = _mm_crc32_u8(crc, *bytes++);
    --size;
  }
  return crc;
}
#endif  // __SSE4_2__

}  // namespace internal

/// CRC32C of `size` bytes.
inline uint32_t Crc32c(const void* data, size_t size) {
  uint32_t crc = ~uint32_t{0};
#if defined(__SSE4_2__)
  crc = internal::Crc32cUpdateSse42(crc, data, size);
#else
  crc = internal::Crc32cUpdateScalar(crc, data, size);
#endif
  return ~crc;
}

/// Portable reference implementation; the tests assert the dispatched
/// Crc32c agrees with it bit for bit.
inline uint32_t Crc32cReference(const void* data, size_t size) {
  return ~internal::Crc32cUpdateScalar(~uint32_t{0}, data, size);
}

}  // namespace asketch

#endif  // ASKETCH_COMMON_CRC32C_H_
