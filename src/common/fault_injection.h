// Deterministic fault injection for the snapshot I/O path.
//
// Every recovery branch of SnapshotStore — short write, fwrite error,
// fsync failure, crash between temp-file write and rename, bit rot on
// the way to the medium — must be exercised reproducibly, not hoped
// for. FaultInjectingIo produces a SnapshotIoHooks whose behavior is
// fully determined by the faults armed on it: tests arm exactly one
// fault (or a seeded schedule of them), run the save/recover cycle, and
// assert the outcome. No randomness lives here; tests that want random
// offsets draw them from a seeded Rng and arm them explicitly, so every
// failure is replayable from the seed.
//
// Write calls are counted across the shim's lifetime (writes_seen()),
// letting tests target "the Nth fwrite of the run" — SnapshotStore
// issues one write per envelope, so call index == snapshot index.

#ifndef ASKETCH_COMMON_FAULT_INJECTION_H_
#define ASKETCH_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <cstdio>
#include <vector>

#include "src/common/snapshot.h"

namespace asketch {

/// Fault-point shim for SnapshotIoHooks. Arm* methods schedule faults;
/// Hooks() returns hooks bound to this object (which must outlive them).
class FaultInjectingIo {
 public:
  FaultInjectingIo() = default;

  /// The `index`-th write call (0-based) reports only half the bytes
  /// written (a short write, as on a full disk).
  void ArmShortWriteAt(uint64_t index) { short_write_at_ = index; }

  /// The `index`-th write call fails outright (0 bytes written).
  void ArmWriteErrorAt(uint64_t index) { write_error_at_ = index; }

  /// The `index`-th sync (fflush/fsync) call fails.
  void ArmSyncErrorAt(uint64_t index) { sync_error_at_ = index; }

  /// Flips bit `bit` (0-7) of byte `byte_offset` within the buffer of
  /// the `index`-th write call before it reaches the file — media
  /// corruption that the envelope checksum must catch at load time.
  void ArmBitFlip(uint64_t index, uint64_t byte_offset, uint32_t bit) {
    bit_flips_.push_back(BitFlip{index, byte_offset, bit});
  }

  /// The `index`-th commit (rename) "crashes": the temp file is left on
  /// disk, written and synced, but never published — the state a real
  /// kill-9 between fsync and rename leaves behind.
  void ArmCommitCrashAt(uint64_t index) { commit_crash_at_ = index; }

  uint64_t writes_seen() const { return writes_; }
  uint64_t commits_seen() const { return commits_; }

  SnapshotIoHooks Hooks() {
    SnapshotIoHooks hooks;
    hooks.write = [this](const void* data, size_t size, std::FILE* file) {
      return Write(data, size, file);
    };
    hooks.sync = [this](std::FILE* file) { return Sync(file); };
    hooks.commit = [this](const std::string& tmp, const std::string& final_path) {
      return Commit(tmp, final_path);
    };
    return hooks;
  }

 private:
  struct BitFlip {
    uint64_t write_index;
    uint64_t byte_offset;
    uint32_t bit;
  };

  size_t Write(const void* data, size_t size, std::FILE* file) {
    const uint64_t index = writes_++;
    if (index == write_error_at_) return 0;
    if (index == short_write_at_) {
      return std::fwrite(data, 1, size / 2, file);
    }
    std::vector<uint8_t> buffer(static_cast<const uint8_t*>(data),
                                static_cast<const uint8_t*>(data) + size);
    for (const BitFlip& flip : bit_flips_) {
      if (flip.write_index == index && flip.byte_offset < buffer.size()) {
        buffer[flip.byte_offset] ^=
            static_cast<uint8_t>(1u << (flip.bit & 7u));
      }
    }
    return std::fwrite(buffer.data(), 1, buffer.size(), file);
  }

  bool Sync(std::FILE* file) {
    const uint64_t index = syncs_++;
    if (index == sync_error_at_) return false;
    return std::fflush(file) == 0;  // kernel-level sync skipped in tests
  }

  bool Commit(const std::string& tmp, const std::string& final_path) {
    const uint64_t index = commits_++;
    if (index == commit_crash_at_) return false;
    return std::rename(tmp.c_str(), final_path.c_str()) == 0;
  }

  static constexpr uint64_t kNever = ~uint64_t{0};

  uint64_t writes_ = 0;
  uint64_t syncs_ = 0;
  uint64_t commits_ = 0;
  uint64_t short_write_at_ = kNever;
  uint64_t write_error_at_ = kNever;
  uint64_t sync_error_at_ = kNever;
  uint64_t commit_crash_at_ = kNever;
  std::vector<BitFlip> bit_flips_;
};

}  // namespace asketch

#endif  // ASKETCH_COMMON_FAULT_INJECTION_H_
