#include "src/common/hashing.h"

#include "src/common/random.h"

namespace asketch {

HashFamily::HashFamily(uint32_t rows, uint32_t range, uint64_t seed)
    : range_(range) {
  ASKETCH_CHECK(rows >= 1);
  ASKETCH_CHECK(range >= 1);
  Rng rng(seed);
  funcs_.reserve(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    const uint64_t a = 1 + rng.NextBounded(kMersenne61 - 1);
    const uint64_t b = rng.NextBounded(kMersenne61);
    funcs_.emplace_back(a, b, range);
  }
}

SignFamily::SignFamily(uint32_t rows, uint64_t seed) {
  ASKETCH_CHECK(rows >= 1);
  // Distinct stream from HashFamily for the same seed.
  Rng rng(seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  funcs_.reserve(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    const uint64_t a = 1 + rng.NextBounded(kMersenne61 - 1);
    const uint64_t b = rng.NextBounded(kMersenne61);
    funcs_.emplace_back(a, b, /*range=*/2);
  }
}

}  // namespace asketch
