#include "src/common/hashing.h"

#include "src/common/random.h"

namespace asketch {

HashFamily::HashFamily(uint32_t rows, uint32_t range, uint64_t seed)
    : range_(range) {
  ASKETCH_CHECK(rows >= 1);
  ASKETCH_CHECK(range >= 1);
  barrett_magic_ = ~uint64_t{0} / range;
  Rng rng(seed);
  funcs_.reserve(rows);
  a_lo_.reserve(rows);
  a_hi_.reserve(rows);
  b_.reserve(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    const uint64_t a = 1 + rng.NextBounded(kMersenne61 - 1);
    const uint64_t b = rng.NextBounded(kMersenne61);
    funcs_.emplace_back(a, b, range);
    a_lo_.push_back(a & 0xffffffffu);
    a_hi_.push_back(a >> 32);
    b_.push_back(b);
  }
}

#if defined(__GNUC__) && !defined(__clang__)
// GCC's -Wmaybe-uninitialized fires spuriously inside the AVX-512 maskz
// intrinsic headers (GCC PR105593).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
void HashFamily::BucketsForKeys(const uint32_t* keys, size_t count,
                                uint32_t* out, size_t stride) const {
  ASKETCH_DCHECK(stride >= count);
  const uint32_t nrows = rows();
  size_t k = 0;
#if defined(__AVX512F__) && defined(__AVX512VL__)
  // Eight keys per vector; same exact arithmetic as the AVX2 path below
  // (see its comments for the fold and Barrett derivations), with mask
  // registers replacing the compare-and-subtract idiom. A masked load
  // covers the final partial group, so no scalar tail remains.
  constexpr size_t kKeyBlock = 32;  // keys per outer block (4 vectors)
  const __m512i m61 = _mm512_set1_epi64(
      static_cast<long long>(kMersenne61));
  const __m512i low29 = _mm512_set1_epi64((1ll << 29) - 1);
  const __m512i low32 = _mm512_set1_epi64(0xffffffffll);
  const __m512i magic_lo = _mm512_set1_epi64(
      static_cast<long long>(barrett_magic_ & 0xffffffffu));
  const __m512i magic_hi = _mm512_set1_epi64(
      static_cast<long long>(barrett_magic_ >> 32));
  const __m512i vd = _mm512_set1_epi64(static_cast<long long>(range_));
  while (k < count) {
    const size_t block = std::min(kKeyBlock, count - k);
    const size_t groups = (block + 7) / 8;
    __m512i x[kKeyBlock / 8];
    size_t live[kKeyBlock / 8];  // keys in this group (8, or a tail)
    for (size_t g = 0; g < groups; ++g) {
      live[g] = std::min<size_t>(8, block - 8 * g);
      const __mmask8 lanes_mask =
          static_cast<__mmask8>((1u << live[g]) - 1);
      x[g] = _mm512_cvtepu32_epi64(
          _mm256_maskz_loadu_epi32(lanes_mask, keys + k + 8 * g));
    }
    for (uint32_t r = 0; r < nrows; ++r) {
      const __m512i a_lo = _mm512_set1_epi64(
          static_cast<long long>(a_lo_[r]));
      const __m512i a_hi = _mm512_set1_epi64(
          static_cast<long long>(a_hi_[r]));
      const __m512i b = _mm512_set1_epi64(static_cast<long long>(b_[r]));
      for (size_t g = 0; g < groups; ++g) {
        const __m512i t1 = _mm512_mul_epu32(x[g], a_lo);
        const __m512i t2 = _mm512_mul_epu32(x[g], a_hi);
        const __m512i u = _mm512_srli_epi64(t2, 29);
        const __m512i v =
            _mm512_slli_epi64(_mm512_and_si512(t2, low29), 32);
        const __m512i t1f = _mm512_add_epi64(_mm512_and_si512(t1, m61),
                                             _mm512_srli_epi64(t1, 61));
        __m512i s = _mm512_add_epi64(_mm512_add_epi64(t1f, v),
                                     _mm512_add_epi64(u, b));
        s = _mm512_add_epi64(_mm512_and_si512(s, m61),
                             _mm512_srli_epi64(s, 61));
        s = _mm512_mask_sub_epi64(
            s, _mm512_cmpge_epu64_mask(s, m61), s, m61);
        const __m512i h0 = _mm512_and_si512(s, low32);
        const __m512i h1 = _mm512_srli_epi64(s, 32);
        const __m512i p00 = _mm512_mul_epu32(h0, magic_lo);
        const __m512i mid =
            _mm512_add_epi64(_mm512_mul_epu32(h1, magic_lo),
                             _mm512_srli_epi64(p00, 32));
        const __m512i acc =
            _mm512_add_epi64(_mm512_mul_epu32(h0, magic_hi),
                             _mm512_and_si512(mid, low32));
        const __m512i q = _mm512_add_epi64(
            _mm512_mul_epu32(h1, magic_hi),
            _mm512_add_epi64(_mm512_srli_epi64(mid, 32),
                             _mm512_srli_epi64(acc, 32)));
        const __m512i qd = _mm512_add_epi64(
            _mm512_mul_epu32(_mm512_and_si512(q, low32), vd),
            _mm512_slli_epi64(
                _mm512_mul_epu32(_mm512_srli_epi64(q, 32), vd), 32));
        __m512i rem = _mm512_sub_epi64(s, qd);
        rem = _mm512_mask_sub_epi64(
            rem, _mm512_cmpge_epu64_mask(rem, vd), rem, vd);
        // Row-major layout: the eight buckets of row r for this key
        // group are contiguous — one narrowing store, no lane shuffling
        // through the stack.
        uint32_t* dst = out + r * stride + (k + 8 * g);
        const __m256i narrowed = _mm512_cvtepi64_epi32(rem);
        if (live[g] == 8) {
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), narrowed);
        } else {
          _mm256_mask_storeu_epi32(
              dst, static_cast<__mmask8>((1u << live[g]) - 1), narrowed);
        }
      }
    }
    k += block;
  }
#elif defined(__AVX2__)
  // Four keys per vector, rows in the outer loop so each row's
  // coefficients are broadcast once per block of keys. Everything is
  // exact u64 lane arithmetic: the 93-bit product a*x + b is assembled
  // from 32x32 multiplies and folded mod 2^61-1 (2^61 ≡ 1), then
  // reduced mod range with a Barrett multiply whose quotient is off by
  // at most one for inputs < 2^61 — one conditional subtract lands the
  // exact remainder.
  constexpr size_t kKeyBlock = 32;  // keys per outer block (8 vectors)
  const __m256i m61 = _mm256_set1_epi64x(
      static_cast<long long>(kMersenne61));
  const __m256i m61_minus1 = _mm256_set1_epi64x(
      static_cast<long long>(kMersenne61 - 1));
  const __m256i low29 = _mm256_set1_epi64x((1ll << 29) - 1);
  const __m256i low32 = _mm256_set1_epi64x(0xffffffffll);
  const __m256i magic_lo = _mm256_set1_epi64x(
      static_cast<long long>(barrett_magic_ & 0xffffffffu));
  const __m256i magic_hi = _mm256_set1_epi64x(
      static_cast<long long>(barrett_magic_ >> 32));
  const __m256i vd = _mm256_set1_epi64x(static_cast<long long>(range_));
  const __m256i vd_minus1 = _mm256_set1_epi64x(
      static_cast<long long>(range_) - 1);
  for (; k + 4 <= count;) {
    const size_t block = std::min(kKeyBlock, (count - k) & ~size_t{3});
    const size_t groups = block / 4;
    __m256i x[kKeyBlock / 4];
    for (size_t g = 0; g < groups; ++g) {
      x[g] = _mm256_cvtepu32_epi64(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(keys + k + 4 * g)));
    }
    for (uint32_t r = 0; r < nrows; ++r) {
      const __m256i a_lo = _mm256_set1_epi64x(
          static_cast<long long>(a_lo_[r]));
      const __m256i a_hi = _mm256_set1_epi64x(
          static_cast<long long>(a_hi_[r]));
      const __m256i b = _mm256_set1_epi64x(static_cast<long long>(b_[r]));
      for (size_t g = 0; g < groups; ++g) {
        // a*x = aLo*x + (aHi*x)<<32; the shifted half folds as
        // t2*2^32 = (t2>>29)*2^61 + (t2 mod 2^29)*2^32
        //         ≡ (t2>>29)      + (t2 mod 2^29)*2^32   (mod 2^61-1).
        const __m256i t1 = _mm256_mul_epu32(x[g], a_lo);  // < 2^64
        const __m256i t2 = _mm256_mul_epu32(x[g], a_hi);  // < 2^61
        const __m256i u = _mm256_srli_epi64(t2, 29);
        const __m256i v =
            _mm256_slli_epi64(_mm256_and_si256(t2, low29), 32);
        const __m256i t1f = _mm256_add_epi64(_mm256_and_si256(t1, m61),
                                             _mm256_srli_epi64(t1, 61));
        __m256i s = _mm256_add_epi64(_mm256_add_epi64(t1f, v),
                                     _mm256_add_epi64(u, b));  // < 2^63
        s = _mm256_add_epi64(_mm256_and_si256(s, m61),
                             _mm256_srli_epi64(s, 61));  // < 2^61 + 4
        s = _mm256_sub_epi64(
            s, _mm256_and_si256(_mm256_cmpgt_epi64(s, m61_minus1), m61));
        // Barrett: q = mulhi64(s, magic) via 32x32 partials (s < 2^61,
        // so the h1 terms cannot carry out of a lane).
        const __m256i h0 = _mm256_and_si256(s, low32);
        const __m256i h1 = _mm256_srli_epi64(s, 32);
        const __m256i p00 = _mm256_mul_epu32(h0, magic_lo);
        const __m256i mid =
            _mm256_add_epi64(_mm256_mul_epu32(h1, magic_lo),
                             _mm256_srli_epi64(p00, 32));
        const __m256i acc =
            _mm256_add_epi64(_mm256_mul_epu32(h0, magic_hi),
                             _mm256_and_si256(mid, low32));
        const __m256i q = _mm256_add_epi64(
            _mm256_mul_epu32(h1, magic_hi),
            _mm256_add_epi64(_mm256_srli_epi64(mid, 32),
                             _mm256_srli_epi64(acc, 32)));
        const __m256i qd = _mm256_add_epi64(
            _mm256_mul_epu32(_mm256_and_si256(q, low32), vd),
            _mm256_slli_epi64(
                _mm256_mul_epu32(_mm256_srli_epi64(q, 32), vd), 32));
        __m256i rem = _mm256_sub_epi64(s, qd);  // < 2*range
        rem = _mm256_sub_epi64(
            rem, _mm256_and_si256(_mm256_cmpgt_epi64(rem, vd_minus1), vd));
        // Pack the four 64-bit lanes down to u32 and store them
        // contiguously into row r (row-major layout).
        const __m256i packed = _mm256_permutevar8x32_epi32(
            rem, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(out + r * stride + k + 4 * g),
            _mm256_castsi256_si128(packed));
      }
    }
    k += block;
  }
#endif  // vector paths
  for (; k < count; ++k) {
    for (uint32_t r = 0; r < nrows; ++r) {
      out[r * stride + k] = funcs_[r](keys[k]);
    }
  }
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

SignFamily::SignFamily(uint32_t rows, uint64_t seed) {
  ASKETCH_CHECK(rows >= 1);
  // Distinct stream from HashFamily for the same seed.
  Rng rng(seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  funcs_.reserve(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    const uint64_t a = 1 + rng.NextBounded(kMersenne61 - 1);
    const uint64_t b = rng.NextBounded(kMersenne61);
    funcs_.emplace_back(a, b, /*range=*/2);
  }
}

}  // namespace asketch
