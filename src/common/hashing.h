// Pairwise-independent hashing for sketch rows.
//
// All sketches in this library use the Carter–Wegman construction
//   h_{a,b}(x) = ((a*x + b) mod p) mod range,     p = 2^61 - 1,
// with a in [1, p) and b in [0, p). The family is pairwise independent,
// which is exactly the property assumed by the Count-Min analysis (and by
// the ASketch error bounds built on top of it). The Mersenne prime allows
// the mod-p reduction to be done with shifts and adds.

#ifndef ASKETCH_COMMON_HASHING_H_
#define ASKETCH_COMMON_HASHING_H_

#include <cstdint>
#include <vector>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "src/common/check.h"

namespace asketch {

/// The Mersenne prime 2^61 - 1 used as the hash field size.
inline constexpr uint64_t kMersenne61 = (uint64_t{1} << 61) - 1;

/// Reduces a 128-bit product modulo 2^61 - 1.
inline uint64_t ModMersenne61(unsigned __int128 x) {
  uint64_t lo = static_cast<uint64_t>(x & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(x >> 61);
  uint64_t r = lo + hi;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

/// One Carter–Wegman hash function h(x) = ((a*x + b) mod p) mod range.
class PairwiseHash {
 public:
  PairwiseHash() = default;

  /// Constructs with explicit coefficients; a must be in [1, p),
  /// b in [0, p), range >= 1.
  PairwiseHash(uint64_t a, uint64_t b, uint32_t range)
      : a_(a), b_(b), range_(range) {
    ASKETCH_CHECK(a >= 1 && a < kMersenne61);
    ASKETCH_CHECK(b < kMersenne61);
    ASKETCH_CHECK(range >= 1);
  }

  /// Bucket of `key` in [0, range).
  uint32_t operator()(uint64_t key) const {
    unsigned __int128 prod =
        static_cast<unsigned __int128>(a_) * key + b_;
    return static_cast<uint32_t>(ModMersenne61(prod) % range_);
  }

  uint32_t range() const { return range_; }

 private:
  uint64_t a_ = 1;
  uint64_t b_ = 0;
  uint32_t range_ = 1;
};

/// A family of `rows` independent PairwiseHash functions with a common
/// range, drawn deterministically from a seed. Sketches own one of these
/// per row set; two sketches built from the same seed hash identically,
/// which the SPMD query combiner and the tests rely on.
class HashFamily {
 public:
  HashFamily() = default;

  /// Draws `rows` functions with buckets [0, range) from `seed`.
  HashFamily(uint32_t rows, uint32_t range, uint64_t seed);

  uint32_t rows() const { return static_cast<uint32_t>(funcs_.size()); }
  uint32_t range() const { return range_; }

  /// Bucket of `key` under row `row`.
  uint32_t Bucket(uint32_t row, uint64_t key) const {
    ASKETCH_DCHECK(row < funcs_.size());
    return funcs_[row](key);
  }

  /// Buckets of `count` 32-bit keys under every row, stored row-major:
  /// out[r * stride + k] receives Bucket(r, keys[k]), bit-identical to
  /// the scalar per-row computation (`stride` >= count; the row-major
  /// layout lets the vector kernels store each row's lane group with one
  /// contiguous write). The AVX-512 path hashes eight keys per
  /// instruction stream (AVX2: four) and replaces the per-bucket
  /// `mod range` division with an exact Barrett reduction — the hash
  /// kernel of the batched ingestion path, where misses arrive in blocks
  /// and the vector lanes are full.
  void BucketsForKeys(const uint32_t* keys, size_t count, uint32_t* out,
                      size_t stride) const;

 private:
  std::vector<PairwiseHash> funcs_;
  // Structure-of-arrays copy of the coefficients for BucketsForKeys: a is
  // split into 32-bit halves (the 64x64 products are assembled from
  // 32x32 vector multiplies), b is kept whole.
  std::vector<uint64_t> a_lo_, a_hi_, b_;
  uint64_t barrett_magic_ = 0;  // floor((2^64 - 1) / range_)
  uint32_t range_ = 1;
};

/// A family of pairwise-independent ±1 sign functions, as required by the
/// Count Sketch estimator. Implemented as CW hashes onto {0,1} mapped to
/// {-1,+1}.
class SignFamily {
 public:
  SignFamily() = default;

  /// Draws `rows` sign functions from `seed`.
  SignFamily(uint32_t rows, uint64_t seed);

  uint32_t rows() const { return static_cast<uint32_t>(funcs_.size()); }

  /// Sign of `key` under row `row`: -1 or +1.
  int32_t Sign(uint32_t row, uint64_t key) const {
    ASKETCH_DCHECK(row < funcs_.size());
    return funcs_[row](key) == 0 ? -1 : 1;
  }

 private:
  std::vector<PairwiseHash> funcs_;
};

}  // namespace asketch

#endif  // ASKETCH_COMMON_HASHING_H_
