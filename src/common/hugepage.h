// Best-effort transparent-huge-page backing for large sketch arrays.
//
// A paper-default Count-Min row is wide enough that successive row
// probes of one key land in distinct 4 KiB pages; with depth 4-8 rows
// a single update can take 4-8 dTLB misses. Advising the kernel to
// back the counter array with 2 MiB pages collapses those to one TLB
// entry per sketch in the common case.
//
// This is advice, not a requirement: madvise(MADV_HUGEPAGE) asks
// khugepaged to collapse the range when THP is enabled ("madvise" or
// "always" mode) and silently does nothing otherwise. Failure is
// ignored by design — the sketch works identically either way, only
// slower. Non-Linux builds compile to a no-op.

#ifndef ASKETCH_COMMON_HUGEPAGE_H_
#define ASKETCH_COMMON_HUGEPAGE_H_

#include <cstddef>
#include <cstdint>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace asketch {

/// Advises the kernel to use transparent huge pages for the 2 MiB-
/// aligned interior of [ptr, ptr + bytes). No-op when the interior is
/// empty (arrays under ~4 MiB may align down to nothing — callers
/// should gate on size), on madvise failure, or off Linux.
inline void MaybeAdviseHugePages(void* ptr, size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr uintptr_t kHugePage = 2ull << 20;
  const uintptr_t begin = reinterpret_cast<uintptr_t>(ptr);
  const uintptr_t aligned_begin = (begin + kHugePage - 1) & ~(kHugePage - 1);
  const uintptr_t end = (begin + bytes) & ~(kHugePage - 1);
  if (aligned_begin >= end) return;
  (void)madvise(reinterpret_cast<void*>(aligned_begin), end - aligned_begin,
                MADV_HUGEPAGE);
#else
  (void)ptr;
  (void)bytes;
#endif
}

/// Size threshold below which advising is pointless (the aligned
/// interior of a smaller array can be empty).
inline constexpr size_t kHugePageAdviseMinBytes = 2ull << 20;

}  // namespace asketch

#endif  // ASKETCH_COMMON_HUGEPAGE_H_
