#include "src/common/random.h"

namespace asketch {

namespace {

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64Next(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  ASKETCH_CHECK(bound > 0);
  // Lemire's nearly-divisionless method: accept unless the 128-bit product
  // lands in the biased low fringe.
  unsigned __int128 product =
      static_cast<unsigned __int128>(NextU64()) * bound;
  auto low = static_cast<uint64_t>(product);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      product = static_cast<unsigned __int128>(NextU64()) * bound;
      low = static_cast<uint64_t>(product);
    }
  }
  return static_cast<uint64_t>(product >> 64);
}

}  // namespace asketch
