// Seeded pseudo-random number generation.
//
// The library ships its own small PRNG (xoshiro256**) instead of <random>
// engines so that streams are reproducible across standard-library
// implementations and cheap to fork per benchmark run. Distribution helpers
// cover the needs of the workload generators.

#ifndef ASKETCH_COMMON_RANDOM_H_
#define ASKETCH_COMMON_RANDOM_H_

#include <cstdint>

#include "src/common/check.h"

namespace asketch {

/// xoshiro256** PRNG (Blackman & Vigna), seeded via splitmix64 so any
/// 64-bit seed — including 0 — yields a well-mixed state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed);

  /// Next 64 uniformly random bits.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased, no modulo).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; never returns 0 (safe as a log() argument).
  double NextDoublePositive() {
    return static_cast<double>((NextU64() >> 11) + 1) * 0x1.0p-53;
  }

 private:
  uint64_t s_[4];
};

}  // namespace asketch

#endif  // ASKETCH_COMMON_RANDOM_H_
