// Geometric skip sampling for tail-sketch updates (NitroSketch-style).
//
// Instead of flipping a Bernoulli(p) coin per tuple, the sampler draws
// the number of *skipped* tuples between two applied ones from the
// geometric distribution Geom(p) once, then counts down with a plain
// decrement — the hot path is one branch and one subtraction. Each
// applied update is scaled by 1/p so the expected contribution of
// every tuple is exactly its weight:
//
//   E[contribution] = p * (w / p) + (1 - p) * 0 = w
//
// which keeps the tail estimator unbiased. The scaled increment is
// stochastically rounded (floor plus a Bernoulli on the fractional
// part), so unbiasedness is exact even with integer counters. Note
// the bound change this buys: a sampled tail estimate is unbiased but
// no longer one-sided — individual estimates can fall below the true
// count (ALGORITHMS.md §8). The exact filter head is never sampled.
//
// Rates are quantized to permille (1/1000 steps) so a shard owner can
// mirror a rate published through a relaxed atomic uint32 without
// comparing doubles; 1000 means "inactive", and the inactive sampler
// never touches its RNG, which is what makes rate 1.0 bit-identical
// to the unsampled path.

#ifndef ASKETCH_COMMON_SAMPLING_H_
#define ASKETCH_COMMON_SAMPLING_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/common/random.h"
#include "src/common/types.h"

namespace asketch {

class GeometricSampler {
 public:
  GeometricSampler() = default;
  explicit GeometricSampler(uint64_t seed) : rng_(seed) {}

  /// Sets the sampling probability to permille / 1000, clamped to
  /// [1, 1000]. Resets the skip counter so a rate change takes effect
  /// on the next tuple rather than after a stale countdown.
  void SetPermille(uint32_t permille) {
    permille_ = std::clamp<uint32_t>(permille, 1, 1000);
    skip_ = 0;
  }

  uint32_t permille() const { return permille_; }

  /// False at rate 1.0: the sampler is pass-through and consumes no
  /// randomness, so the unsampled path stays bit-identical.
  bool active() const { return permille_ < 1000; }

  /// One countdown step: true when this tuple's update should be
  /// applied (scaled via ScaleDelta), false when it is elided.
  /// Callers must only consult this while active().
  bool ShouldApply() {
    if (skip_ > 0) {
      --skip_;
      return false;
    }
    skip_ = NextSkip();
    return true;
  }

  /// Scales an applied positive delta by 1/p with stochastic rounding:
  /// floor(delta / p) plus one with probability frac(delta / p).
  /// E[ScaleDelta(d)] = d / p exactly, so sampling stays unbiased
  /// under integer counters.
  delta_t ScaleDelta(delta_t delta) {
    const double scaled = static_cast<double>(delta) * 1000.0 /
                          static_cast<double>(permille_);
    const double floor_part = std::floor(scaled);
    const double frac = scaled - floor_part;
    delta_t result = static_cast<delta_t>(floor_part);
    if (frac > 0.0 && rng_.NextDouble() < frac) ++result;
    return result;
  }

 private:
  /// Number of tuples to elide before the next applied one, drawn
  /// from Geom(p): floor(log(u) / log(1 - p)) for u ~ Uniform(0, 1].
  /// NextDoublePositive never returns 0, so the log is finite.
  uint64_t NextSkip() {
    const double p = static_cast<double>(permille_) / 1000.0;
    const double u = rng_.NextDoublePositive();
    const double skips = std::floor(std::log(u) / std::log1p(-p));
    // Clamp pathological draws (u ~ DBL_MIN at tiny p) to a sane cap.
    return static_cast<uint64_t>(std::min(skips, 1e18));
  }

  Rng rng_;
  uint32_t permille_ = 1000;
  uint64_t skip_ = 0;
};

}  // namespace asketch

#endif  // ASKETCH_COMMON_SAMPLING_H_
