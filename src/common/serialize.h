// Binary (de)serialization primitives.
//
// Synopses are long-lived: a monitoring agent builds a 128 KB summary
// over hours and ships it to an aggregator, or checkpoints it across
// restarts. Every summary type in this library therefore supports
//   bool SerializeTo(BinaryWriter&) const;
//   static std::optional<T> DeserializeFrom(BinaryReader&);
// over the little-endian primitives below. Hash functions are never
// written: they are reconstructed deterministically from the serialized
// config seed, which also makes serialized sketches mergeable.
//
// Readers are defensive: every Get* reports failure on a short file, and
// deserializers validate configs before allocating, so a truncated or
// corrupted file yields std::nullopt rather than UB.

#ifndef ASKETCH_COMMON_SERIALIZE_H_
#define ASKETCH_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

namespace asketch {

/// Upper bound a deserializer accepts for a serialized capacity field
/// before allocating. Real summaries hold tens to thousands of monitored
/// items; a corrupt capacity (e.g. a flipped high bit) must be rejected
/// before the constructor zero-fills gigabytes.
inline constexpr uint32_t kMaxSerializedCapacity = 1u << 20;

/// Upper bound a deserializer accepts for a serialized byte-budget field
/// (e.g. a config's total_bytes) before constructing the summary. Same
/// rationale as kMaxSerializedCapacity: a single flipped high bit in a
/// u64 budget must not translate into a multi-gigabyte allocation.
inline constexpr uint64_t kMaxSerializedBytes = uint64_t{1} << 28;

/// Appends little-endian primitives to an in-memory buffer or a FILE*.
class BinaryWriter {
 public:
  /// Writes into an owned in-memory buffer (retrieve with buffer()).
  BinaryWriter() = default;
  /// Writes through to `file` (not owned; must outlive the writer).
  explicit BinaryWriter(std::FILE* file) : file_(file) {}

  void PutU8(uint8_t v) { PutBytes(&v, 1); }
  void PutU32(uint32_t v) { PutBytes(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutBytes(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutBytes(&v, sizeof(v)); }
  void PutDouble(double v) { PutBytes(&v, sizeof(v)); }

  void PutBytes(const void* data, size_t size) {
    if (!ok_) return;
    if (file_ != nullptr) {
      ok_ = std::fwrite(data, 1, size, file_) == size;
    } else if (size > 0) {
      const size_t offset = buffer_.size();
      buffer_.resize(offset + size);
      std::memcpy(buffer_.data() + offset, data, size);
    }
  }

  template <typename T>
  void PutPodVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutU64(values.size());
    if (!values.empty()) {
      PutBytes(values.data(), values.size() * sizeof(T));
    }
  }

  /// Pre-sizes the in-memory buffer (no-op in FILE* mode).
  void Reserve(size_t total_bytes) { buffer_.reserve(total_bytes); }

  /// False once any write failed (FILE* mode only).
  bool ok() const { return ok_; }
  const std::vector<uint8_t>& buffer() const { return buffer_; }

 private:
  std::FILE* file_ = nullptr;
  std::vector<uint8_t> buffer_;
  bool ok_ = true;
};

/// Reads little-endian primitives from a buffer or a FILE*. All Get*
/// functions return false (and leave the output untouched) once the
/// source is exhausted or a previous read failed.
class BinaryReader {
 public:
  BinaryReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit BinaryReader(const std::vector<uint8_t>& buffer)
      : BinaryReader(buffer.data(), buffer.size()) {}
  explicit BinaryReader(std::FILE* file) : file_(file) {}

  bool GetU8(uint8_t* v) { return GetBytes(v, 1); }
  bool GetU32(uint32_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetI64(int64_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetDouble(double* v) { return GetBytes(v, sizeof(*v)); }

  bool GetBytes(void* out, size_t size) {
    if (!ok_) return false;
    if (file_ != nullptr) {
      ok_ = std::fread(out, 1, size, file_) == size;
      return ok_;
    }
    if (position_ + size > size_) {
      ok_ = false;
      return false;
    }
    std::memcpy(out, data_ + position_, size);
    position_ += size;
    return true;
  }

  /// Reads a vector written by PutPodVector; rejects element counts that
  /// would exceed `max_elements` (corruption guard). In in-memory mode
  /// the count is additionally clamped against the bytes actually
  /// remaining, so a corrupt length field never allocates at all; in
  /// FILE* mode (where the remaining size is unknown) the default bound
  /// caps the damage at max_elements * sizeof(T) before the short read
  /// fails. Callers with genuinely larger vectors pass an explicit bound.
  template <typename T>
  bool GetPodVector(std::vector<T>* values,
                    uint64_t max_elements = uint64_t{1} << 28) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    if (!GetU64(&count)) return false;
    if (count > max_elements) {
      ok_ = false;
      return false;
    }
    // count <= max_elements, so count * sizeof(T) cannot overflow here.
    if (file_ == nullptr && count * sizeof(T) > size_ - position_) {
      ok_ = false;
      return false;
    }
    values->resize(count);
    if (count == 0) return true;
    return GetBytes(values->data(), count * sizeof(T));
  }

  bool ok() const { return ok_; }

 private:
  std::FILE* file_ = nullptr;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t position_ = 0;
  bool ok_ = true;
};

}  // namespace asketch

#endif  // ASKETCH_COMMON_SERIALIZE_H_
