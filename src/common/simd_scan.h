// Vectorized linear scans over small uint32 arrays.
//
// The ASketch filter is deliberately tiny, so lookups are linear scans:
// on modern hardware a vectorized scan over a few cache lines beats hashed
// lookups with their random accesses and pointer chasing (§6.1). FindKey is
// a faithful generalization of the paper's Algorithm 3 (SSE2
// _mm_cmpeq_epi32 + movemask + ctz) from 16 elements to any multiple of 16;
// an AVX2 variant and a scalar fallback are provided. FindKeysBatch probes
// many keys per pass over the array (the batched-ingestion fast path).
// MinIndex implements the other filter primitive, locating the smallest
// count.
//
// Arrays passed to the *Sse2/*Avx2 entry points must be padded to a
// multiple of 16 elements; `n` is the logical element count. Padding cells
// may hold arbitrary values: a match in the padding has a higher index than
// any logical match (the scan reports the first match), so the `index < n`
// check rejects it correctly.

#ifndef ASKETCH_COMMON_SIMD_SCAN_H_
#define ASKETCH_COMMON_SIMD_SCAN_H_

#include <cstddef>
#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "src/common/check.h"

namespace asketch {

/// Number of elements the vector kernels process per iteration; array
/// capacities must be padded to a multiple of this.
inline constexpr size_t kSimdBlockElements = 16;

/// Scalar reference implementation of FindKey: index of the first element
/// equal to `key` in ids[0, n), or -1.
inline int32_t FindKeyScalar(const uint32_t* ids, size_t n, uint32_t key) {
  for (size_t i = 0; i < n; ++i) {
    if (ids[i] == key) return static_cast<int32_t>(i);
  }
  return -1;
}

#if defined(__SSE2__)
/// SSE2 FindKey over an array whose *capacity* `padded` is a multiple of 16;
/// only matches at index < n count. This is Algorithm 3 of the paper, looped
/// over 16-element blocks.
inline int32_t FindKeySse2(const uint32_t* ids, size_t padded, size_t n,
                           uint32_t key) {
  ASKETCH_DCHECK(padded % kSimdBlockElements == 0);
  ASKETCH_DCHECK(n <= padded);
  const __m128i needle = _mm_set1_epi32(static_cast<int32_t>(key));
  for (size_t base = 0; base < padded; base += kSimdBlockElements) {
    const __m128i* block =
        reinterpret_cast<const __m128i*>(ids + base);
    __m128i c0 = _mm_cmpeq_epi32(needle, _mm_loadu_si128(block + 0));
    __m128i c1 = _mm_cmpeq_epi32(needle, _mm_loadu_si128(block + 1));
    __m128i c2 = _mm_cmpeq_epi32(needle, _mm_loadu_si128(block + 2));
    __m128i c3 = _mm_cmpeq_epi32(needle, _mm_loadu_si128(block + 3));
    // Narrow the four 32-bit masks to one 16-bit movemask, one bit per
    // element, exactly as in the paper's listing.
    c0 = _mm_packs_epi32(c0, c1);
    c2 = _mm_packs_epi32(c2, c3);
    c0 = _mm_packs_epi16(c0, c2);
    const int found = _mm_movemask_epi8(c0);
    if (found != 0) {
      const size_t index = base + static_cast<size_t>(__builtin_ctz(
                                      static_cast<unsigned>(found)));
      return index < n ? static_cast<int32_t>(index) : -1;
    }
  }
  return -1;
}
#endif  // __SSE2__

#if defined(__AVX2__)
/// AVX2 FindKey: two 256-bit compares per 16-element block.
inline int32_t FindKeyAvx2(const uint32_t* ids, size_t padded, size_t n,
                           uint32_t key) {
  ASKETCH_DCHECK(padded % kSimdBlockElements == 0);
  ASKETCH_DCHECK(n <= padded);
  const __m256i needle = _mm256_set1_epi32(static_cast<int32_t>(key));
  for (size_t base = 0; base < padded; base += kSimdBlockElements) {
    const __m256i lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ids + base));
    const __m256i hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ids + base + 8));
    const uint32_t mask_lo = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(
            _mm256_cmpeq_epi32(needle, lo))));
    const uint32_t mask_hi = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(
            _mm256_cmpeq_epi32(needle, hi))));
    const uint32_t mask = mask_lo | (mask_hi << 8);
    if (mask != 0) {
      const size_t index = base + static_cast<size_t>(__builtin_ctz(mask));
      return index < n ? static_cast<int32_t>(index) : -1;
    }
  }
  return -1;
}
#endif  // __AVX2__

/// Best-available FindKey for this build. `padded` is the array capacity
/// (multiple of 16 for the vector paths), `n` the logical size.
inline int32_t FindKey(const uint32_t* ids, size_t padded, size_t n,
                       uint32_t key) {
#if defined(__AVX2__)
  return FindKeyAvx2(ids, padded, n, key);
#elif defined(__SSE2__)
  return FindKeySse2(ids, padded, n, key);
#else
  (void)padded;
  return FindKeyScalar(ids, n, key);
#endif
}

/// Maximum number of keys one FindKeysBatch call may probe; the pending
/// set is tracked in a 32-bit mask.
inline constexpr size_t kMaxProbeBatch = 32;

/// Scalar reference implementation of FindKeysBatch: slots[i] receives
/// FindKey(ids, n, keys[i]) for each of the `count` keys.
inline void FindKeysScalar(const uint32_t* ids, size_t n,
                           const uint32_t* keys, size_t count,
                           int32_t* slots) {
  for (size_t k = 0; k < count; ++k) {
    slots[k] = FindKeyScalar(ids, n, keys[k]);
  }
}

#if defined(__AVX2__)
/// AVX2 multi-key probe: one pass over the id array resolves up to 32
/// keys. Each 16-element block is loaded once and compared against every
/// still-unresolved needle, amortizing the array traffic the per-key scan
/// pays `count` times — the batched form of Algorithm 3 the ingestion
/// fast path relies on. Semantics match per-key FindKey exactly: first
/// match wins, and a first match inside the padding (index >= n) means
/// "absent" (blocks are visited in ascending order, so no live match can
/// follow one in the padding).
inline void FindKeysAvx2(const uint32_t* ids, size_t padded, size_t n,
                         const uint32_t* keys, size_t count,
                         int32_t* slots) {
  ASKETCH_DCHECK(padded % kSimdBlockElements == 0);
  ASKETCH_DCHECK(n <= padded);
  ASKETCH_DCHECK(count <= kMaxProbeBatch);
  if (padded == 2 * kSimdBlockElements) {
    // A 32-element array fits in four YMM registers: hoist it once and
    // resolve every key with four compares and zero data-dependent
    // branches (the hit/miss branch in the pending-mask loop below
    // mispredicts heavily on mixed hit/miss batches, which is the common
    // case for a 32-item filter).
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + 8));
    const __m256i v2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + 16));
    const __m256i v3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + 24));
    for (size_t k = 0; k < count; ++k) {
      const __m256i needle =
          _mm256_set1_epi32(static_cast<int32_t>(keys[k]));
      const uint32_t m0 = static_cast<uint32_t>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(needle, v0))));
      const uint32_t m1 = static_cast<uint32_t>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(needle, v1))));
      const uint32_t m2 = static_cast<uint32_t>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(needle, v2))));
      const uint32_t m3 = static_cast<uint32_t>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(needle, v3))));
      const uint32_t mask = m0 | (m1 << 8) | (m2 << 16) | (m3 << 24);
      // ffs maps no-match to 0 - 1 == -1; a padding match (index >= n)
      // also reports absent, matching per-key FindKey.
      const int32_t index = __builtin_ffs(static_cast<int>(mask)) - 1;
      slots[k] = index < static_cast<int32_t>(n) ? index : -1;
    }
    return;
  }
  if (padded == kSimdBlockElements) {
    // Same idea for a 16-element array (two registers).
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + 8));
    for (size_t k = 0; k < count; ++k) {
      const __m256i needle =
          _mm256_set1_epi32(static_cast<int32_t>(keys[k]));
      const uint32_t m0 = static_cast<uint32_t>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(needle, v0))));
      const uint32_t m1 = static_cast<uint32_t>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(needle, v1))));
      const uint32_t mask = m0 | (m1 << 8);
      const int32_t index = __builtin_ffs(static_cast<int>(mask)) - 1;
      slots[k] = index < static_cast<int32_t>(n) ? index : -1;
    }
    return;
  }
  uint32_t pending =
      count >= 32 ? ~uint32_t{0} : ((uint32_t{1} << count) - 1);
  for (size_t k = 0; k < count; ++k) slots[k] = -1;
  for (size_t base = 0; base < padded && pending != 0;
       base += kSimdBlockElements) {
    const __m256i lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ids + base));
    const __m256i hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ids + base + 8));
    uint32_t rest = pending;
    while (rest != 0) {
      const uint32_t k = static_cast<uint32_t>(__builtin_ctz(rest));
      rest &= rest - 1;
      const __m256i needle =
          _mm256_set1_epi32(static_cast<int32_t>(keys[k]));
      const uint32_t mask_lo = static_cast<uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(
              _mm256_cmpeq_epi32(needle, lo))));
      const uint32_t mask_hi = static_cast<uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(
              _mm256_cmpeq_epi32(needle, hi))));
      const uint32_t mask = mask_lo | (mask_hi << 8);
      if (mask != 0) {
        const size_t index = base + static_cast<size_t>(__builtin_ctz(mask));
        slots[k] = index < n ? static_cast<int32_t>(index) : -1;
        pending &= ~(uint32_t{1} << k);
      }
    }
  }
}
#endif  // __AVX2__

/// Best-available multi-key FindKey for this build: slots[i] = slot of
/// keys[i], or -1. `count` must be <= kMaxProbeBatch. Duplicate keys
/// resolve to the same slot.
inline void FindKeysBatch(const uint32_t* ids, size_t padded, size_t n,
                          const uint32_t* keys, size_t count,
                          int32_t* slots) {
#if defined(__AVX2__)
  FindKeysAvx2(ids, padded, n, keys, count, slots);
#elif defined(__SSE2__)
  for (size_t k = 0; k < count; ++k) {
    slots[k] = FindKeySse2(ids, padded, n, keys[k]);
  }
#else
  (void)padded;
  FindKeysScalar(ids, n, keys, count, slots);
#endif
}

/// Scalar MinIndex: index of the smallest element in counts[0, n), first
/// occurrence on ties. n must be >= 1.
inline size_t MinIndexScalar(const uint32_t* counts, size_t n) {
  ASKETCH_DCHECK(n >= 1);
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (counts[i] < counts[best]) best = i;
  }
  return best;
}

#if defined(__AVX2__)
/// AVX2 MinIndex: finds the minimum value with vector min-reduction, then
/// locates its first position with FindKey-style compares. counts capacity
/// must be padded to a multiple of 16 with 0xFFFFFFFF (or any value >= the
/// true minimum) beyond n.
inline size_t MinIndexAvx2(const uint32_t* counts, size_t padded, size_t n) {
  ASKETCH_DCHECK(n >= 1);
  ASKETCH_DCHECK(padded % kSimdBlockElements == 0);
  if (n < kSimdBlockElements) return MinIndexScalar(counts, n);
  __m256i vmin = _mm256_set1_epi32(-1);  // all ones == UINT32_MAX
  for (size_t base = 0; base + 8 <= n; base += 8) {
    vmin = _mm256_min_epu32(
        vmin, _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(counts + base)));
  }
  alignas(32) uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmin);
  uint32_t min_value = lanes[0];
  for (int i = 1; i < 8; ++i) min_value = min_value < lanes[i] ? min_value
                                                               : lanes[i];
  // The vector loop covered [0, n - n%8); finish the tail in scalar.
  for (size_t i = n - n % 8; i < n; ++i) {
    if (counts[i] < min_value) min_value = counts[i];
  }
  const int32_t pos = FindKeyAvx2(counts, padded, n, min_value);
  ASKETCH_DCHECK(pos >= 0);
  return static_cast<size_t>(pos);
}
#endif  // __AVX2__

/// Best-available MinIndex for this build.
inline size_t MinIndex(const uint32_t* counts, size_t padded, size_t n) {
#if defined(__AVX2__)
  return MinIndexAvx2(counts, padded, n);
#else
  (void)padded;
  return MinIndexScalar(counts, n);
#endif
}

}  // namespace asketch

#endif  // ASKETCH_COMMON_SIMD_SCAN_H_
