#include "src/common/snapshot.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "src/common/crc32c.h"
#include "src/obs/core_metrics.h"
#include "src/obs/trace.h"

namespace asketch {
namespace {

namespace fs = std::filesystem;

size_t DefaultWrite(const void* data, size_t size, std::FILE* file) {
  return std::fwrite(data, 1, size, file);
}

bool DefaultSync(std::FILE* file) {
  if (std::fflush(file) != 0) return false;
#if defined(__unix__) || defined(__APPLE__)
  if (::fsync(::fileno(file)) != 0) return false;
#endif
  return true;
}

bool DefaultCommit(const std::string& tmp_path,
                   const std::string& final_path) {
  return std::rename(tmp_path.c_str(), final_path.c_str()) == 0;
}

size_t DoWrite(const SnapshotIoHooks& hooks, const void* data, size_t size,
               std::FILE* file) {
  return hooks.write ? hooks.write(data, size, file)
                     : DefaultWrite(data, size, file);
}

bool DoSync(const SnapshotIoHooks& hooks, std::FILE* file) {
  return hooks.sync ? hooks.sync(file) : DefaultSync(file);
}

bool DoCommit(const SnapshotIoHooks& hooks, const std::string& tmp_path,
              const std::string& final_path) {
  return hooks.commit ? hooks.commit(tmp_path, final_path)
                      : DefaultCommit(tmp_path, final_path);
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

std::vector<uint8_t> WrapSnapshot(uint32_t payload_type,
                                  const std::vector<uint8_t>& payload) {
  BinaryWriter writer;
  writer.Reserve(kSnapshotHeaderBytes + payload.size());
  writer.PutU32(kSnapshotMagic);
  writer.PutU32(kSnapshotFormatVersion);
  writer.PutU32(payload_type);
  writer.PutU64(payload.size());
  writer.PutU32(Crc32c(payload.data(), payload.size()));
  writer.PutBytes(payload.data(), payload.size());
  return writer.buffer();
}

std::optional<std::vector<uint8_t>> UnwrapSnapshot(const void* data,
                                                   size_t size,
                                                   uint32_t expected_type) {
  BinaryReader reader(data, size);
  uint32_t magic = 0, version = 0, type = 0, crc = 0;
  uint64_t length = 0;
  if (!reader.GetU32(&magic) || magic != kSnapshotMagic) return std::nullopt;
  if (!reader.GetU32(&version) || version != kSnapshotFormatVersion) {
    return std::nullopt;
  }
  if (!reader.GetU32(&type) || type != expected_type) return std::nullopt;
  if (!reader.GetU64(&length) || !reader.GetU32(&crc)) return std::nullopt;
  // The length must match the bytes present exactly: a flipped length bit
  // shows up as either a short read or trailing garbage, both rejected.
  if (length != size - kSnapshotHeaderBytes) return std::nullopt;
  std::vector<uint8_t> payload(length);
  if (length > 0 && !reader.GetBytes(payload.data(), length)) {
    return std::nullopt;
  }
  if (Crc32c(payload.data(), payload.size()) != crc) return std::nullopt;
  return payload;
}

std::optional<std::string> WriteFileAtomic(const std::string& path,
                                           const std::vector<uint8_t>& bytes,
                                           const SnapshotIoHooks& hooks) {
  const std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) return ErrnoMessage("cannot open", tmp_path);
  const bool written =
      DoWrite(hooks, bytes.data(), bytes.size(), file) == bytes.size();
  const bool synced = written && DoSync(hooks, file);
  const bool closed = std::fclose(file) == 0;
  if (!written || !synced || !closed) {
    std::remove(tmp_path.c_str());
    return "write failed: " + tmp_path;
  }
  if (!DoCommit(hooks, tmp_path, path)) {
    // Simulated-crash hooks intentionally leave the temp file behind (a
    // real crash would); only a real rename failure cleans it up.
    return "rename failed: " + tmp_path + " -> " + path;
  }
  return std::nullopt;
}

std::optional<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::vector<uint8_t> bytes;
  uint8_t chunk[64 * 1024];
  size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return std::nullopt;
  return bytes;
}

SnapshotStore::SnapshotStore(std::string prefix, uint32_t retain,
                             SnapshotIoHooks hooks)
    : prefix_(std::move(prefix)),
      retain_(retain < 1 ? 1 : retain),
      hooks_(std::move(hooks)) {}

std::string SnapshotStore::GenerationPath(uint64_t gen) const {
  return prefix_ + "." + std::to_string(gen) + ".snap";
}

std::vector<uint64_t> SnapshotStore::ListGenerations() const {
  // Generations are discovered by listing the prefix's directory for
  // `<base>.<digits>.snap` — no manifest file exists that could itself be
  // corrupted or torn.
  const fs::path prefix_path(prefix_);
  fs::path dir = prefix_path.parent_path();
  if (dir.empty()) dir = ".";
  const std::string base = prefix_path.filename().string() + ".";
  std::vector<uint64_t> generations;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= base.size() + 5 || name.compare(0, base.size(), base) != 0 ||
        name.compare(name.size() - 5, 5, ".snap") != 0) {
      continue;
    }
    const std::string digits =
        name.substr(base.size(), name.size() - base.size() - 5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    errno = 0;
    char* end = nullptr;
    const uint64_t gen = std::strtoull(digits.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' || gen == 0) continue;
    generations.push_back(gen);
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

uint64_t SnapshotStore::LatestGeneration() const {
  const std::vector<uint64_t> generations = ListGenerations();
  return generations.empty() ? 0 : generations.back();
}

std::optional<std::string> SnapshotStore::Save(
    uint32_t payload_type, const std::vector<uint8_t>& payload) {
  ASKETCH_TRACE_SPAN("snapshot_save");
  ASKETCH_TELEMETRY_ONLY(
      const auto telemetry_start = std::chrono::steady_clock::now();)
  const fs::path dir = fs::path(prefix_).parent_path();
  if (!dir.empty()) {
    std::error_code ec;
    fs::create_directories(dir, ec);  // surfaced by the write below
  }
  const uint64_t gen = LatestGeneration() + 1;
  const std::vector<uint8_t> envelope = WrapSnapshot(payload_type, payload);
  if (auto error =
          WriteFileAtomic(GenerationPath(gen), envelope, hooks_)) {
    ASKETCH_TELEMETRY_ONLY(
        obs::SnapshotMetrics::Get().save_failures.Increment();)
    return error;
  }
  // Prune only after the new generation is durably in place, oldest
  // first, so a crash during pruning still leaves >= retain generations.
  std::vector<uint64_t> generations = ListGenerations();
  while (generations.size() > retain_) {
    std::remove(GenerationPath(generations.front()).c_str());
    generations.erase(generations.begin());
  }
  ASKETCH_TELEMETRY_ONLY({
    obs::SnapshotMetrics& metrics = obs::SnapshotMetrics::Get();
    metrics.saves.Increment();
    metrics.save_ns.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - telemetry_start)
            .count()));
  })
  return std::nullopt;
}

std::optional<SnapshotStore::Loaded> SnapshotStore::Load(
    uint32_t expected_type, std::string* error) const {
  ASKETCH_TRACE_SPAN("snapshot_load");
  ASKETCH_TELEMETRY_ONLY(
      const auto telemetry_start = std::chrono::steady_clock::now();)
  const std::vector<uint64_t> generations = ListGenerations();
  if (generations.empty()) {
    if (error != nullptr) *error = "no snapshots under " + prefix_;
    ASKETCH_TELEMETRY_ONLY(
        obs::SnapshotMetrics::Get().load_failures.Increment();)
    return std::nullopt;
  }
  uint32_t skipped = 0;
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    const std::string path = GenerationPath(*it);
    const auto bytes = ReadFileBytes(path);
    if (bytes.has_value()) {
      auto payload = UnwrapSnapshot(bytes->data(), bytes->size(),
                                    expected_type);
      if (payload.has_value()) {
        ASKETCH_TELEMETRY_ONLY({
          obs::SnapshotMetrics& metrics = obs::SnapshotMetrics::Get();
          metrics.loads.Increment();
          metrics.corrupt_skipped.Add(skipped);
          metrics.load_ns.Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - telemetry_start)
                  .count()));
        })
        return Loaded{*std::move(payload), *it, skipped};
      }
    }
    ++skipped;
  }
  if (error != nullptr) {
    *error = "all " + std::to_string(generations.size()) +
             " snapshot generations under " + prefix_ +
             " are unreadable or corrupt";
  }
  ASKETCH_TELEMETRY_ONLY({
    obs::SnapshotMetrics& metrics = obs::SnapshotMetrics::Get();
    metrics.load_failures.Increment();
    metrics.corrupt_skipped.Add(skipped);
  })
  return std::nullopt;
}

}  // namespace asketch
