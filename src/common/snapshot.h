// Crash-safe snapshot envelope and generation store.
//
// Raw SerializeTo blobs are deliberately minimal: they catch truncation
// and cross-type confusion, but a flipped bit inside a cell array
// deserializes silently into wrong counts, and writing a checkpoint file
// in place destroys the only copy if the process dies mid-write. The
// long-lived deployments that serialize.h's header comment promises
// (monitoring agents checkpointing across restarts, sketches shipped to
// a remote collector) need end-to-end integrity, atomic publication, and
// a recovery order. This file provides all three.
//
// Snapshot envelope (format v1, little-endian):
//
//   offset  size  field
//        0     4  magic "ASNP" (0x504e5341)
//        4     4  format version (currently 1)
//        8     4  payload type tag (registry below)
//       12     8  payload length in bytes
//       20     4  CRC32C over the payload bytes
//       24     …  payload (a SerializeTo blob)
//
// Validation checks every field: exact magic and version, the expected
// type tag, a length equal to the bytes actually present (no trailing
// garbage), and the checksum — any single flipped bit in the header or
// the payload is rejected. Version gates compatibility: a future v2
// loader may accept v1 envelopes, but a v1 loader rejects anything else.
//
// Payload type tag registry (each summary class mirrors its tag as
// `kSnapshotPayloadType`; keep this list authoritative):
//
//    1 CountMin            7 DyadicCountMin
//    2 CountSketch         8 VectorFilter
//    3 Fcm                 9 StrictHeapFilter
//    4 MisraGries         10 RelaxedHeapFilter
//    5 SpaceSaving        11 StreamSummaryFilter
//    6 HolisticUdaf       12 WindowedASketch
//                         13 SalsaCountMin
//   ASketch<F, S> composes 0x41000000 | (F's tag << 8) | S's tag.
//   Application formats (e.g. asketch_cli's checkpoint) use tags with a
//   nonzero top byte outside 0x41.
//
// SnapshotStore persists numbered generations `<prefix>.<gen>.snap`.
// Save() writes a temp file, flushes and fsyncs it, then renames it into
// place — a crash at any point leaves either the previous generations
// untouched or a stray temp file, never a half-written generation.
// Load() recovers from the newest generation that validates, falling
// back generation by generation, so a torn or corrupted newest snapshot
// degrades to the previous intact one instead of poisoning the reader.
// All file I/O is routed through SnapshotIoHooks so tests can inject
// short writes, write errors, bit flips, and crashes between write and
// rename deterministically (src/common/fault_injection.h).

#ifndef ASKETCH_COMMON_SNAPSHOT_H_
#define ASKETCH_COMMON_SNAPSHOT_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/serialize.h"

namespace asketch {

inline constexpr uint32_t kSnapshotMagic = 0x504e5341u;  // "ASNP"
inline constexpr uint32_t kSnapshotFormatVersion = 1;
inline constexpr size_t kSnapshotHeaderBytes = 24;

/// Wraps a SerializeTo blob in the envelope described above.
std::vector<uint8_t> WrapSnapshot(uint32_t payload_type,
                                  const std::vector<uint8_t>& payload);

/// Validates an envelope and returns its payload. std::nullopt if the
/// magic, version, or type tag mismatch, the length disagrees with the
/// bytes present, or the checksum fails.
std::optional<std::vector<uint8_t>> UnwrapSnapshot(const void* data,
                                                   size_t size,
                                                   uint32_t expected_type);

/// Serializes `object` and wraps it under its registered payload tag.
/// Empty vector if serialization fails (only possible for FILE*-backed
/// writers, which this is not — treat it as a programming error).
template <typename T>
std::vector<uint8_t> ToSnapshot(const T& object) {
  BinaryWriter writer;
  if (!object.SerializeTo(writer)) return {};
  return WrapSnapshot(T::kSnapshotPayloadType, writer.buffer());
}

/// Unwraps and deserializes a snapshot of T. std::nullopt on any
/// envelope or deserialization failure.
template <typename T>
std::optional<T> FromSnapshot(const void* data, size_t size) {
  const auto payload = UnwrapSnapshot(data, size, T::kSnapshotPayloadType);
  if (!payload.has_value()) return std::nullopt;
  BinaryReader reader(*payload);
  return T::DeserializeFrom(reader);
}

/// Injection points for SnapshotStore / WriteFileAtomic file I/O. A
/// default-constructed instance (empty functions) uses the real calls;
/// tests substitute deterministic fault shims (fault_injection.h).
struct SnapshotIoHooks {
  /// fwrite replacement: returns the number of bytes written (a short
  /// count is a failure, exactly like fwrite).
  std::function<size_t(const void* data, size_t size, std::FILE* file)>
      write;
  /// Flushes stdio and kernel buffers to stable storage (fflush +
  /// fsync). Returns false on failure.
  std::function<bool(std::FILE* file)> sync;
  /// Atomically publishes `tmp_path` as `final_path` (rename). Returning
  /// false simulates a crash between write and publish: the temp file is
  /// left behind and no new generation appears.
  std::function<bool(const std::string& tmp_path,
                     const std::string& final_path)>
      commit;
};

/// Writes `bytes` to `path` via a sibling temp file + fflush/fsync +
/// rename, so `path` either keeps its old content or holds the complete
/// new content — never a torn write. Returns an error message on
/// failure (the temp file is cleaned up; `path` is untouched).
std::optional<std::string> WriteFileAtomic(const std::string& path,
                                           const std::vector<uint8_t>& bytes,
                                           const SnapshotIoHooks& hooks = {});

/// Reads all of `path`. std::nullopt if the file cannot be opened/read.
std::optional<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

/// Multi-generation snapshot store over `<prefix>.<gen>.snap` files.
class SnapshotStore {
 public:
  /// `retain` >= 1 generations are kept on disk; older ones are pruned
  /// after each successful Save.
  explicit SnapshotStore(std::string prefix, uint32_t retain = 3,
                         SnapshotIoHooks hooks = {});

  /// Writes `payload` as the next generation (atomically, fsynced) and
  /// prunes generations beyond `retain`. Returns an error message on
  /// failure; previously written generations are never damaged.
  std::optional<std::string> Save(uint32_t payload_type,
                                  const std::vector<uint8_t>& payload);

  struct Loaded {
    std::vector<uint8_t> payload;
    uint64_t generation = 0;
    /// Newer generations that failed validation and were skipped over.
    uint32_t generations_skipped = 0;
  };

  /// Recovers the newest generation whose envelope validates against
  /// `expected_type`, falling back one generation at a time. Returns
  /// std::nullopt when no generation validates (including when none
  /// exist); `error`, if given, then describes what was found.
  std::optional<Loaded> Load(uint32_t expected_type,
                             std::string* error = nullptr) const;

  /// Existing generation numbers, ascending (empty when none).
  std::vector<uint64_t> ListGenerations() const;

  /// Newest existing generation number, or 0 when none exist.
  uint64_t LatestGeneration() const;

  /// On-disk path of generation `gen`.
  std::string GenerationPath(uint64_t gen) const;

  const std::string& prefix() const { return prefix_; }

 private:
  std::string prefix_;
  uint32_t retain_;
  SnapshotIoHooks hooks_;
};

}  // namespace asketch

#endif  // ASKETCH_COMMON_SNAPSHOT_H_
