// Wall-clock timing helper for the benchmark harness and examples.

#ifndef ASKETCH_COMMON_STOPWATCH_H_
#define ASKETCH_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace asketch {

/// Monotonic stopwatch. Started on construction; Restart() resets it.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction / Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace asketch

#endif  // ASKETCH_COMMON_STOPWATCH_H_
