#include "src/common/stream_summary.h"

#include "src/common/bit_util.h"

namespace asketch {


StreamSummary::StreamSummary(uint32_t capacity) : capacity_(capacity) {
  ASKETCH_CHECK(capacity >= 1);
  nodes_.resize(capacity);
  buckets_.resize(capacity);
  const size_t table_size = NextPowerOfTwo(2 * static_cast<size_t>(capacity));
  table_.assign(table_size, kSummaryNil);
  table_mask_ = table_size - 1;
  Reset();
}

void StreamSummary::Reset() {
  size_ = 0;
  head_bucket_ = kSummaryNil;
  // Chain all nodes and buckets into freelists through their next links.
  free_node_ = 0;
  for (uint32_t i = 0; i < capacity_; ++i) {
    nodes_[i].next = (i + 1 < capacity_) ? i + 1 : kSummaryNil;
  }
  free_bucket_ = 0;
  for (uint32_t i = 0; i < capacity_; ++i) {
    buckets_[i].next = (i + 1 < capacity_) ? i + 1 : kSummaryNil;
  }
  std::fill(table_.begin(), table_.end(), kSummaryNil);
}

uint32_t StreamSummary::AllocNode() {
  ASKETCH_DCHECK(free_node_ != kSummaryNil);
  const uint32_t node = free_node_;
  free_node_ = nodes_[node].next;
  return node;
}

void StreamSummary::FreeNode(uint32_t node) {
  nodes_[node].next = free_node_;
  free_node_ = node;
}

uint32_t StreamSummary::AllocBucket(count_t count) {
  ASKETCH_DCHECK(free_bucket_ != kSummaryNil);
  const uint32_t bucket = free_bucket_;
  free_bucket_ = buckets_[bucket].next;
  buckets_[bucket].count = count;
  buckets_[bucket].head = kSummaryNil;
  buckets_[bucket].prev = kSummaryNil;
  buckets_[bucket].next = kSummaryNil;
  return bucket;
}

void StreamSummary::FreeBucket(uint32_t bucket) {
  buckets_[bucket].next = free_bucket_;
  free_bucket_ = bucket;
}

size_t StreamSummary::TableSlot(item_t key) const {
  return static_cast<size_t>(Mix64(key)) & table_mask_;
}

void StreamSummary::TableInsert(item_t key, uint32_t node) {
  size_t slot = TableSlot(key);
  while (table_[slot] != kSummaryNil) slot = (slot + 1) & table_mask_;
  table_[slot] = node;
}

void StreamSummary::TableErase(item_t key) {
  size_t slot = TableSlot(key);
  while (table_[slot] == kSummaryNil || nodes_[table_[slot]].key != key) {
    ASKETCH_DCHECK(table_[slot] != kSummaryNil);
    slot = (slot + 1) & table_mask_;
  }
  // Backward-shift deletion keeps probe sequences intact without
  // tombstones (important: the table never degrades under churn).
  size_t hole = slot;
  table_[hole] = kSummaryNil;
  size_t probe = hole;
  while (true) {
    probe = (probe + 1) & table_mask_;
    const uint32_t node = table_[probe];
    if (node == kSummaryNil) break;
    const size_t home = TableSlot(nodes_[node].key);
    // `node` may move into the hole iff its home slot does not lie in the
    // (cyclic) open interval (hole, probe].
    const bool movable = (hole <= probe)
                             ? (home <= hole || home > probe)
                             : (home <= hole && home > probe);
    if (movable) {
      table_[hole] = node;
      table_[probe] = kSummaryNil;
      hole = probe;
    }
  }
}

uint32_t StreamSummary::Find(item_t key) const {
  size_t slot = TableSlot(key);
  while (table_[slot] != kSummaryNil) {
    const uint32_t node = table_[slot];
    if (nodes_[node].key == key) return node;
    slot = (slot + 1) & table_mask_;
  }
  return kSummaryNil;
}

void StreamSummary::DetachFromBucket(uint32_t node, uint32_t* anchor_prev,
                                     uint32_t* anchor_next) {
  Node& n = nodes_[node];
  const uint32_t bucket = n.bucket;
  Bucket& b = buckets_[bucket];
  if (n.prev != kSummaryNil) {
    nodes_[n.prev].next = n.next;
  } else {
    b.head = n.next;
  }
  if (n.next != kSummaryNil) nodes_[n.next].prev = n.prev;
  n.prev = n.next = kSummaryNil;
  if (b.head == kSummaryNil) {
    // Bucket emptied: unlink and free it.
    *anchor_prev = b.prev;
    *anchor_next = b.next;
    if (b.prev != kSummaryNil) {
      buckets_[b.prev].next = b.next;
    } else {
      head_bucket_ = b.next;
    }
    if (b.next != kSummaryNil) buckets_[b.next].prev = b.prev;
    FreeBucket(bucket);
  } else {
    *anchor_prev = bucket;
    *anchor_next = bucket;
  }
  n.bucket = kSummaryNil;
}

void StreamSummary::AttachToBucket(uint32_t node, count_t count,
                                   uint32_t anchor_prev,
                                   uint32_t anchor_next) {
  // Locate the insertion point: `after` = last bucket with count < target
  // (nil if none) and `before` = the bucket following it (nil for the
  // tail). Scan forward or backward from whichever anchor applies.
  uint32_t after, before;
  if (anchor_next != kSummaryNil && buckets_[anchor_next].count <= count) {
    after = anchor_prev;
    before = anchor_next;
    while (before != kSummaryNil && buckets_[before].count < count) {
      after = before;
      before = buckets_[before].next;
    }
  } else {
    after = anchor_prev;
    while (after != kSummaryNil && buckets_[after].count >= count) {
      after = buckets_[after].prev;
    }
    before = (after == kSummaryNil) ? head_bucket_ : buckets_[after].next;
  }
  uint32_t bucket;
  if (before != kSummaryNil && buckets_[before].count == count) {
    bucket = before;
  } else {
    bucket = AllocBucket(count);
    Bucket& b = buckets_[bucket];
    b.prev = after;
    b.next = before;
    if (after != kSummaryNil) {
      buckets_[after].next = bucket;
    } else {
      head_bucket_ = bucket;
    }
    if (before != kSummaryNil) buckets_[before].prev = bucket;
  }
  Node& n = nodes_[node];
  n.bucket = bucket;
  n.prev = kSummaryNil;
  n.next = buckets_[bucket].head;
  if (n.next != kSummaryNil) nodes_[n.next].prev = node;
  buckets_[bucket].head = node;
}

void StreamSummary::MoveToCount(uint32_t node, count_t new_count) {
  ASKETCH_DCHECK(node < capacity_);
  uint32_t anchor_prev, anchor_next;
  DetachFromBucket(node, &anchor_prev, &anchor_next);
  AttachToBucket(node, new_count, anchor_prev, anchor_next);
}

uint32_t StreamSummary::Insert(item_t key, count_t count, count_t aux) {
  ASKETCH_CHECK(!Full());
  ASKETCH_DCHECK(Find(key) == kSummaryNil);
  const uint32_t node = AllocNode();
  nodes_[node] = Node{key, aux, kSummaryNil, kSummaryNil, kSummaryNil};
  AttachToBucket(node, count, /*anchor_prev=*/kSummaryNil,
                 /*anchor_next=*/head_bucket_);
  TableInsert(key, node);
  ++size_;
  return node;
}

void StreamSummary::Remove(uint32_t node) {
  ASKETCH_DCHECK(node < capacity_);
  TableErase(nodes_[node].key);
  uint32_t anchor_prev, anchor_next;
  DetachFromBucket(node, &anchor_prev, &anchor_next);
  FreeNode(node);
  --size_;
}

bool StreamSummary::CheckInvariants() const {
  uint32_t counted = 0;
  count_t prev_count = 0;
  bool first = true;
  for (uint32_t b = head_bucket_; b != kSummaryNil; b = buckets_[b].next) {
    if (!first && buckets_[b].count <= prev_count) return false;
    first = false;
    prev_count = buckets_[b].count;
    if (buckets_[b].head == kSummaryNil) return false;  // no empty buckets
    if (buckets_[b].next != kSummaryNil &&
        buckets_[buckets_[b].next].prev != b) {
      return false;
    }
    uint32_t prev_node = kSummaryNil;
    for (uint32_t n = buckets_[b].head; n != kSummaryNil;
         n = nodes_[n].next) {
      if (nodes_[n].prev != prev_node) return false;
      if (nodes_[n].bucket != b) return false;
      if (Find(nodes_[n].key) != n) return false;
      prev_node = n;
      ++counted;
    }
  }
  if (counted != size_) return false;
  // Table holds exactly `size_` live entries.
  uint32_t live = 0;
  for (uint32_t slot : table_) {
    if (slot != kSummaryNil) ++live;
  }
  return live == size_;
}

}  // namespace asketch
