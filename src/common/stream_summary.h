// Stream-Summary: the counter-sorted data structure of Metwally et al.'s
// Space Saving algorithm (ICDT 2005).
//
// Maintains up to `capacity` (key, count, aux) entries with O(1) access to
// the entry of minimum count. Entries live in "buckets" — one bucket per
// distinct count value, kept in a doubly-linked list sorted by count —
// and each bucket holds a doubly-linked child list of its entries. A
// linear-probing hash table maps keys to entries. All links are 32-bit
// indices into preallocated arrays (no per-node allocation).
//
// Two clients: SpaceSaving (aux = over-estimation error) and the
// Stream-Summary variant of the ASketch filter (aux = old_count). The
// heavy pointer structure is exactly what the paper charges this design
// for: BytesPerItem() is ~5x the flat-array filters', so a fixed byte
// budget monitors far fewer items (Table 6).

#ifndef ASKETCH_COMMON_STREAM_SUMMARY_H_
#define ASKETCH_COMMON_STREAM_SUMMARY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace asketch {

/// Sentinel index for "no node / no bucket".
inline constexpr uint32_t kSummaryNil = ~uint32_t{0};

/// The stream-summary structure. Node handles returned by Find()/MinNode()
/// are stable until the node is removed or evicted.
class StreamSummary {
 public:
  /// A summary monitoring at most `capacity` keys (>= 1).
  explicit StreamSummary(uint32_t capacity);

  /// Handle of `key`'s node, or kSummaryNil.
  uint32_t Find(item_t key) const;

  item_t Key(uint32_t node) const { return nodes_[node].key; }
  count_t Count(uint32_t node) const {
    return buckets_[nodes_[node].bucket].count;
  }
  count_t Aux(uint32_t node) const { return nodes_[node].aux; }
  void SetAux(uint32_t node, count_t aux) { nodes_[node].aux = aux; }

  /// Moves `node` to the bucket for count `new_count` (any direction).
  /// The handle stays valid.
  void MoveToCount(uint32_t node, count_t new_count);

  /// Inserts (key, count, aux); key must be absent and the summary not
  /// full. Returns the new node's handle.
  uint32_t Insert(item_t key, count_t count, count_t aux);

  /// Node with the smallest count (first inserted among ties), or
  /// kSummaryNil when empty.
  uint32_t MinNode() const {
    return head_bucket_ == kSummaryNil ? kSummaryNil
                                       : buckets_[head_bucket_].head;
  }

  /// Smallest monitored count; 0 when empty (Space Saving's convention for
  /// the estimate of unmonitored keys before the summary fills).
  count_t MinCount() const {
    return head_bucket_ == kSummaryNil ? 0 : buckets_[head_bucket_].count;
  }

  /// Removes `node` from the summary (handle becomes invalid).
  void Remove(uint32_t node);

  uint32_t size() const { return size_; }
  uint32_t capacity() const { return capacity_; }
  bool Full() const { return size_ == capacity_; }

  void Reset();

  /// Visits all (key, count, aux) triples, in no particular order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint32_t b = head_bucket_; b != kSummaryNil; b = buckets_[b].next) {
      for (uint32_t n = buckets_[b].head; n != kSummaryNil;
           n = nodes_[n].next) {
        fn(nodes_[n].key, buckets_[b].count, nodes_[n].aux);
      }
    }
  }

  /// Accounted bytes per monitored item: node (key + aux + 3 links) +
  /// bucket (count + 3 links) + two hash-table slots (the table is sized
  /// at 2x capacity).
  static constexpr size_t BytesPerItem() {
    return (sizeof(item_t) + sizeof(count_t) + 3 * sizeof(uint32_t)) +
           (sizeof(count_t) + 3 * sizeof(uint32_t)) + 2 * sizeof(uint32_t);
  }
  size_t MemoryUsageBytes() const { return capacity_ * BytesPerItem(); }

  /// Validates all internal invariants (test hook): bucket ordering,
  /// link symmetry, hash-table consistency, size accounting.
  bool CheckInvariants() const;

 private:
  struct Node {
    item_t key = 0;
    count_t aux = 0;
    uint32_t prev = kSummaryNil;   // previous sibling in bucket child list
    uint32_t next = kSummaryNil;   // next sibling / freelist link
    uint32_t bucket = kSummaryNil;
  };
  struct Bucket {
    count_t count = 0;
    uint32_t prev = kSummaryNil;  // bucket with next-smaller count
    uint32_t next = kSummaryNil;  // bucket with next-larger count / freelist
    uint32_t head = kSummaryNil;  // first child node
  };

  uint32_t AllocNode();
  void FreeNode(uint32_t node);
  uint32_t AllocBucket(count_t count);
  void FreeBucket(uint32_t bucket);

  /// Detaches `node` from its bucket, freeing the bucket if it empties.
  /// Returns the handle of the bucket *after* the old one (kSummaryNil at
  /// the tail) as a forward-search anchor, via out-params for both sides.
  void DetachFromBucket(uint32_t node, uint32_t* anchor_prev,
                        uint32_t* anchor_next);

  /// Attaches `node` to the bucket holding `count`, searching forward from
  /// `anchor_next` / backward from `anchor_prev` (either may be nil).
  void AttachToBucket(uint32_t node, count_t count, uint32_t anchor_prev,
                      uint32_t anchor_next);

  size_t TableSlot(item_t key) const;
  void TableInsert(item_t key, uint32_t node);
  void TableErase(item_t key);

  uint32_t capacity_;
  uint32_t size_ = 0;
  uint32_t head_bucket_ = kSummaryNil;
  uint32_t free_node_ = kSummaryNil;
  uint32_t free_bucket_ = kSummaryNil;
  std::vector<Node> nodes_;
  std::vector<Bucket> buckets_;
  // Linear-probing table of node indices; kSummaryNil marks empty slots.
  std::vector<uint32_t> table_;
  size_t table_mask_ = 0;
};

}  // namespace asketch

#endif  // ASKETCH_COMMON_STREAM_SUMMARY_H_
