// Fundamental value types shared across the library.
//
// Keys are 32-bit: the paper's SIMD filter (Algorithm 3) compares four
// 32-bit lanes per SSE2 register, and every evaluated domain (up to 13M
// distinct items) fits comfortably. Per-cell counters are 32-bit to match
// the paper's space accounting (a 128KB Count-Min with w=8 rows has
// h=4096 cells per row); aggregate arithmetic is carried out in 64 bits.

#ifndef ASKETCH_COMMON_TYPES_H_
#define ASKETCH_COMMON_TYPES_H_

#include <cstdint>

namespace asketch {

/// Key of a stream tuple (k, u). Drawn from a large domain (IP pairs,
/// click ids, ...) and used for hashing.
using item_t = uint32_t;

/// Per-cell / per-slot frequency counter. 32-bit by design: synopsis sizes
/// are quoted in bytes in the paper, and 32-bit cells are what make a
/// 128KB/w=8 Count-Min come out at h=4096. Additions saturate (see
/// SaturatingAdd) instead of wrapping.
using count_t = uint32_t;

/// Wide type for count sums, stream lengths, and error accumulation.
using wide_count_t = uint64_t;

/// Signed update delta. Positive for arrivals; negative deltas model
/// deletions (Appendix A of the paper) under the strict-turnstile
/// assumption that no true count ever goes negative.
using delta_t = int64_t;

/// One stream tuple (k, u).
struct Tuple {
  item_t key = 0;
  count_t value = 1;
};

inline bool operator==(const Tuple& a, const Tuple& b) {
  return a.key == b.key && a.value == b.value;
}

/// Adds `delta` to `cell`, clamping at the representable range instead of
/// wrapping. `delta` may be negative; the result is clamped at zero, which
/// preserves the one-sided (over-estimate) guarantee under strict streams.
inline count_t SaturatingAdd(count_t cell, delta_t delta) {
  int64_t v = static_cast<int64_t>(cell) + delta;
  if (v < 0) return 0;
  constexpr int64_t kMax = static_cast<int64_t>(~count_t{0});
  if (v > kMax) return static_cast<count_t>(kMax);
  return static_cast<count_t>(v);
}

}  // namespace asketch

#endif  // ASKETCH_COMMON_TYPES_H_
