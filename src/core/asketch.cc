#include "src/core/asketch.h"

namespace asketch {

// Explicit instantiations of the filter/sketch combinations used by the
// tests, examples, and benchmark harness; keeps their compile times down.
template class ASketch<VectorFilter, CountMin>;
template class ASketch<StrictHeapFilter, CountMin>;
template class ASketch<RelaxedHeapFilter, CountMin>;
template class ASketch<StreamSummaryFilter, CountMin>;
template class ASketch<RelaxedHeapFilter, Fcm>;
template class ASketch<RelaxedHeapFilter, CountSketch>;
template class ASketch<RelaxedHeapFilter, SalsaCountMin>;

}  // namespace asketch
