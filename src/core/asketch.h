// ASketch: a sketch augmented with an exact pre-filter for the hottest
// keys (Roy, Khan, Alonso, SIGMOD 2016).
//
// Every tuple first probes the filter. Hits aggregate exactly in the
// filter; misses flow to the underlying sketch, and when the sketch's
// estimate for the missed key exceeds the smallest count in the filter the
// two items are *exchanged* (Algorithm 1). The two-counter protocol keeps
// the one-sided guarantee of the underlying sketch:
//
//   new_count — over-estimated total frequency of a filtered key,
//   old_count — the portion already reflected inside the sketch;
//   new_count − old_count is the exact number of hits absorbed while the
//   key has been resident in the filter, and is the only quantity written
//   back to the sketch on eviction. The sketch is never decremented when a
//   key moves *into* the filter, so no other key's estimate can drop below
//   its true count (Example 1 of the paper is exactly the hazard avoided).
//
// At most one exchange is performed per sketch insertion; together with
// the zero-delta writeback suppression this yields Lemma 1: a key that
// appears t times is inserted into the sketch at most t times.
//
// Analytic model (Table 2), with w rows, h cells/row, filter of s_f bytes,
// h' = h − s_f/w, filter time t_f, sketch time t_s, total count N of which
// N2 reaches the sketch:
//   update/query time:   t_f + (N2/N)·t_s
//   estimation error:    (e/h')·N2·(N2/N)  w.p. e^{−w}   (vs (e/h)·N)
// The space identity s_f + w·h' = w·h is enforced by MakeASketch*.
//
// Deletions (Appendix A) are negative-delta updates; the filter absorbs
// them out of its exact (new−old) slack and pushes any residual into the
// sketch. No exchange is triggered by a deletion.

#ifndef ASKETCH_CORE_ASKETCH_H_
#define ASKETCH_CORE_ASKETCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/serialize.h"
#include "src/common/types.h"
#include "src/filter/filter_interface.h"
#include "src/filter/heap_filter.h"
#include "src/filter/stream_summary_filter.h"
#include "src/filter/vector_filter.h"
#include "src/sketch/count_min.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/fcm.h"
#include "src/sketch/frequency_estimator.h"

namespace asketch {

/// Running counters describing how the stream split between filter and
/// sketch; the basis of the selectivity and exchange experiments
/// (Figs. 3, 9, 17).
struct ASketchStats {
  /// Aggregated count absorbed by the filter (N1).
  wide_count_t filtered_weight = 0;
  /// Aggregated count forwarded to the sketch (N2). N2 / (N1 + N2) is the
  /// paper's filter_selectivity.
  wide_count_t sketch_weight = 0;
  /// Number of filter<->sketch exchanges performed (Fig. 9).
  uint64_t exchanges = 0;
  /// Number of evictions whose (new-old) delta was written back into the
  /// sketch (exchanges minus zero-delta suppressions).
  uint64_t exchange_writebacks = 0;
  /// Number of sketch insertions, including exchange writebacks.
  uint64_t sketch_updates = 0;

  /// N2 / N, the fraction of stream weight the sketch had to process.
  double FilterSelectivity() const {
    const wide_count_t total = filtered_weight + sketch_weight;
    return total == 0 ? 0.0
                      : static_cast<double>(sketch_weight) /
                            static_cast<double>(total);
  }
};

/// The Augmented Sketch, composed of a FilterType and a sketch backend.
template <FilterType FilterT, FrequencyEstimatorType SketchT>
class ASketch {
 public:
  /// Takes ownership of a constructed filter and sketch. Use the
  /// MakeASketch* helpers to build a space-budgeted instance.
  /// `enable_exchanges = false` disables the filter<->sketch exchange
  /// (lines 9-17 of Algorithm 1), leaving a first-come early-aggregation
  /// filter — an ablation knob for quantifying the exchange policy's
  /// contribution; production use should keep it on.
  explicit ASketch(FilterT filter, SketchT sketch,
                   bool enable_exchanges = true)
      : filter_(std::move(filter)),
        sketch_(std::move(sketch)),
        enable_exchanges_(enable_exchanges) {}

  /// Algorithm 1 (positive deltas) / Appendix A (negative deltas).
  void Update(item_t key, delta_t delta = 1) {
    if (delta == 0) return;
    if (delta > 0) {
      UpdatePositive(key, delta);
    } else {
      UpdateNegative(key, delta);
    }
  }

  /// Algorithm 2: filter hit answers exactly from new_count; otherwise the
  /// sketch answers.
  count_t Estimate(item_t key) const {
    const int32_t slot = filter_.Find(key);
    if (slot >= 0) return filter_.NewCount(slot);
    return sketch_.Estimate(key);
  }

  /// Top-k frequent items query (§7.2.2): the filter's contents, sorted by
  /// descending estimated frequency. k is bounded by the filter capacity.
  std::vector<FilterEntry> TopK() const {
    std::vector<FilterEntry> entries;
    entries.reserve(filter_.size());
    filter_.ForEach([&entries](const FilterEntry& e) {
      entries.push_back(e);
    });
    std::sort(entries.begin(), entries.end(),
              [](const FilterEntry& a, const FilterEntry& b) {
                if (a.new_count != b.new_count) {
                  return a.new_count > b.new_count;
                }
                return a.key < b.key;
              });
    return entries;
  }

  void Reset() {
    filter_.Reset();
    sketch_.Reset();
    stats_ = ASketchStats{};
  }

  size_t MemoryUsageBytes() const {
    return filter_.MemoryUsageBytes() + sketch_.MemoryUsageBytes();
  }

  /// Merges `other` (built from the same config — compatible sketches
  /// and equal filter capacities) into this instance. The merged ASketch
  /// answers queries over the union of both streams with the one-sided
  /// guarantee intact. Returns an error message on mismatch.
  ///
  /// Procedure: (1) merge the sketch cells; (2) transfer the exact
  /// filter-era hits (new−old) of `other`'s filter entries, through the
  /// normal update path so exchanges still apply; (3) raise each of this
  /// filter's entries by `other`'s sketch estimate for its key — that
  /// mass is now inside the merged sketch, so both counters grow by it.
  std::optional<std::string> MergeFrom(const ASketch& other) {
    if (filter_.capacity() != other.filter_.capacity()) {
      return std::string("ASketch::MergeFrom: filter capacities differ");
    }
    if (auto error = sketch_.MergeFrom(other.sketch_)) return error;
    std::vector<FilterEntry> other_entries;
    other.filter_.ForEach([&other_entries](const FilterEntry& e) {
      other_entries.push_back(e);
    });
    for (const FilterEntry& e : other_entries) {
      if (e.new_count > e.old_count) {
        const int32_t slot = filter_.Find(e.key);
        if (slot >= 0) {
          filter_.AddToNewCount(
              slot, static_cast<delta_t>(e.new_count - e.old_count));
        } else {
          UpdatePositive(e.key, static_cast<delta_t>(e.new_count -
                                                     e.old_count));
        }
      }
    }
    std::vector<FilterEntry> own_entries;
    filter_.ForEach([&own_entries](const FilterEntry& e) {
      own_entries.push_back(e);
    });
    for (const FilterEntry& e : own_entries) {
      const count_t other_sketch_estimate =
          other.sketch_.Estimate(e.key);
      if (other_sketch_estimate == 0) continue;
      const int32_t slot = filter_.Find(e.key);
      if (slot < 0) continue;  // evicted by an exchange in pass 2
      filter_.SetCounts(
          slot,
          SaturatingAdd(filter_.NewCount(slot),
                        static_cast<delta_t>(other_sketch_estimate)),
          SaturatingAdd(filter_.OldCount(slot),
                        static_cast<delta_t>(other_sketch_estimate)));
    }
    return std::nullopt;
  }

  /// Writes filter + sketch + stats. Hash functions come back from the
  /// serialized seeds.
  bool SerializeTo(BinaryWriter& writer) const {
    writer.PutU32(0x314b5341u);  // "ASK1"
    if (!filter_.SerializeTo(writer)) return false;
    if (!sketch_.SerializeTo(writer)) return false;
    writer.PutU8(enable_exchanges_ ? 1 : 0);
    writer.PutU64(stats_.filtered_weight);
    writer.PutU64(stats_.sketch_weight);
    writer.PutU64(stats_.exchanges);
    writer.PutU64(stats_.exchange_writebacks);
    writer.PutU64(stats_.sketch_updates);
    return writer.ok();
  }

  static std::optional<ASketch> DeserializeFrom(BinaryReader& reader) {
    uint32_t magic = 0;
    if (!reader.GetU32(&magic) || magic != 0x314b5341u) {
      return std::nullopt;
    }
    auto filter = FilterT::DeserializeFrom(reader);
    if (!filter.has_value()) return std::nullopt;
    auto sketch = SketchT::DeserializeFrom(reader);
    if (!sketch.has_value()) return std::nullopt;
    uint8_t exchanges = 0;
    ASketchStats stats;
    if (!reader.GetU8(&exchanges) || exchanges > 1 ||
        !reader.GetU64(&stats.filtered_weight) ||
        !reader.GetU64(&stats.sketch_weight) ||
        !reader.GetU64(&stats.exchanges) ||
        !reader.GetU64(&stats.exchange_writebacks) ||
        !reader.GetU64(&stats.sketch_updates)) {
      return std::nullopt;
    }
    ASketch result(*std::move(filter), *std::move(sketch),
                   exchanges != 0);
    result.stats_ = stats;
    return result;
  }

  const ASketchStats& stats() const { return stats_; }
  FilterT& filter() { return filter_; }
  const FilterT& filter() const { return filter_; }
  SketchT& sketch() { return sketch_; }
  const SketchT& sketch() const { return sketch_; }

  std::string Name() const {
    return "ASketch<" + FilterT::Name() + "," + sketch_.Name() + ">";
  }

 private:
  void UpdatePositive(item_t key, delta_t delta) {
    // Lines 1-6: filter lookup / free-slot insertion.
    const int32_t slot = filter_.Find(key);
    if (slot >= 0) {
      filter_.AddToNewCount(slot, delta);
      stats_.filtered_weight += static_cast<wide_count_t>(delta);
      return;
    }
    if (!filter_.Full()) {
      filter_.Insert(key, static_cast<count_t>(std::min<delta_t>(
                              delta, ~count_t{0})),
                     /*old_count=*/0);
      stats_.filtered_weight += static_cast<wide_count_t>(delta);
      return;
    }
    // Lines 7-9: forward to the sketch and read back the new estimate.
    // Backends exposing the fused UpdateAndEstimate hash only once here;
    // others fall back to Update + Estimate.
    count_t estimate;
    if constexpr (requires(SketchT& s) { s.UpdateAndEstimate(key, delta); }) {
      estimate = sketch_.UpdateAndEstimate(key, delta);
    } else {
      sketch_.Update(key, delta);
      estimate = sketch_.Estimate(key);
    }
    ++stats_.sketch_updates;
    stats_.sketch_weight += static_cast<wide_count_t>(delta);
    if (!enable_exchanges_) return;
    // Lines 9-17: at most ONE exchange per sketch insertion. Multiple
    // cascading exchanges would re-inject over-estimated counts and only
    // add error (see the paper's discussion of the exchange policy).
    if (estimate > filter_.MinNewCount()) {
      const FilterEntry victim = filter_.EvictMin();
      if (victim.new_count > victim.old_count) {
        // Only the exact hits accumulated in the filter go back; the
        // old_count portion never left the sketch.
        sketch_.Update(victim.key, static_cast<delta_t>(
                                       victim.new_count - victim.old_count));
        ++stats_.exchange_writebacks;
        ++stats_.sketch_updates;
      }
      // The incoming key keeps its sketch cells untouched; both counts
      // start at the estimate so (new - old) = 0 exact hits so far.
      filter_.Insert(key, estimate, estimate);
      ++stats_.exchanges;
    }
  }

  void UpdateNegative(item_t key, delta_t delta) {
    const int32_t slot = filter_.Find(key);
    if (slot < 0) {
      // Not monitored: the deletion applies directly to the sketch.
      sketch_.Update(key, delta);
      ++stats_.sketch_updates;
      return;
    }
    const count_t magnitude = static_cast<count_t>(
        std::min<delta_t>(-delta, ~count_t{0}));
    const count_t new_count = filter_.NewCount(slot);
    const count_t old_count = filter_.OldCount(slot);
    const count_t slack = new_count - old_count;  // exact filter-era hits
    if (slack >= magnitude) {
      // The filter's exact portion absorbs the whole deletion.
      filter_.AddToNewCount(slot, delta);
      return;
    }
    // Appendix A: subtract `magnitude` from new_count and the residual
    // (magnitude - slack) from both old_count and the sketch. Afterwards
    // new_count == old_count (all filter-era hits are consumed).
    const count_t residual = magnitude - slack;
    const count_t next = new_count >= magnitude ? new_count - magnitude : 0;
    filter_.SetCounts(slot, next, next);
    sketch_.Update(key, -static_cast<delta_t>(residual));
    ++stats_.sketch_updates;
    // Per Appendix A, no exchange is initiated by a negative update.
  }

  FilterT filter_;
  SketchT sketch_;
  bool enable_exchanges_ = true;
  ASketchStats stats_;
};

/// Space-budget configuration for the MakeASketch* helpers. The filter is
/// carved out of the sketch's budget by shrinking the hash range:
/// depth' = depth − s_f/(width·sizeof(cell)), i.e. s_f + w·h' = w·h.
struct ASketchConfig {
  /// Total synopsis budget in bytes (filter + sketch), e.g. 128 KB.
  size_t total_bytes = 128 * 1024;
  /// Number of sketch rows (w); kept identical to the plain sketch so the
  /// error-probability term e^{-w} is unchanged (§4).
  uint32_t width = 8;
  /// Filter capacity in items (|F|), e.g. 32 (~0.4 KB for flat filters).
  uint32_t filter_items = 32;
  uint64_t seed = 42;

  std::optional<std::string> Validate() const {
    if (width < 1) return std::string("ASketch width must be >= 1");
    if (filter_items < 1) {
      return std::string("ASketch filter_items must be >= 1");
    }
    return std::nullopt;
  }
};

namespace internal {

/// Sketch byte budget left after the filter takes its share.
template <FilterType FilterT>
size_t SketchBudgetBytes(const ASketchConfig& config) {
  const size_t filter_bytes = config.filter_items * FilterT::BytesPerItem();
  ASKETCH_CHECK(filter_bytes < config.total_bytes);
  return config.total_bytes - filter_bytes;
}

}  // namespace internal

/// ASketch over Count-Min (the paper's default configuration).
template <FilterType FilterT>
ASketch<FilterT, CountMin> MakeASketchCountMin(const ASketchConfig& config) {
  ASKETCH_CHECK(!config.Validate().has_value());
  const CountMinConfig sketch_config = CountMinConfig::FromSpaceBudget(
      internal::SketchBudgetBytes<FilterT>(config), config.width,
      config.seed);
  return ASketch<FilterT, CountMin>(FilterT(config.filter_items),
                                    CountMin(sketch_config));
}

/// ASketch over FCM ("ASketch-FCM", §7.2.1). The MG classifier is dropped:
/// the filter already separates the hot keys, so every key reaching the
/// sketch is treated as low-frequency — this is the modified FCM the paper
/// uses inside ASketch-FCM.
template <FilterType FilterT>
ASketch<FilterT, Fcm> MakeASketchFcm(const ASketchConfig& config) {
  ASKETCH_CHECK(!config.Validate().has_value());
  FcmConfig sketch_config = FcmConfig::FromSpaceBudget(
      internal::SketchBudgetBytes<FilterT>(config), config.width,
      /*mg_capacity=*/0, config.seed);
  sketch_config.use_mg_classifier = false;
  sketch_config.mg_capacity = 0;
  return ASketch<FilterT, Fcm>(FilterT(config.filter_items),
                               Fcm(sketch_config));
}

/// ASketch over Count Sketch (generality demonstration).
template <FilterType FilterT>
ASketch<FilterT, CountSketch> MakeASketchCountSketch(
    const ASketchConfig& config) {
  ASKETCH_CHECK(!config.Validate().has_value());
  const CountSketchConfig sketch_config = CountSketchConfig::FromSpaceBudget(
      internal::SketchBudgetBytes<FilterT>(config), config.width,
      config.seed);
  return ASketch<FilterT, CountSketch>(FilterT(config.filter_items),
                                       CountSketch(sketch_config));
}

extern template class ASketch<VectorFilter, CountMin>;
extern template class ASketch<StrictHeapFilter, CountMin>;
extern template class ASketch<RelaxedHeapFilter, CountMin>;
extern template class ASketch<StreamSummaryFilter, CountMin>;
extern template class ASketch<RelaxedHeapFilter, Fcm>;
extern template class ASketch<RelaxedHeapFilter, CountSketch>;

}  // namespace asketch

#endif  // ASKETCH_CORE_ASKETCH_H_
