// ASketch: a sketch augmented with an exact pre-filter for the hottest
// keys (Roy, Khan, Alonso, SIGMOD 2016).
//
// Every tuple first probes the filter. Hits aggregate exactly in the
// filter; misses flow to the underlying sketch, and when the sketch's
// estimate for the missed key exceeds the smallest count in the filter the
// two items are *exchanged* (Algorithm 1). The two-counter protocol keeps
// the one-sided guarantee of the underlying sketch:
//
//   new_count — over-estimated total frequency of a filtered key,
//   old_count — the portion already reflected inside the sketch;
//   new_count − old_count is the exact number of hits absorbed while the
//   key has been resident in the filter, and is the only quantity written
//   back to the sketch on eviction. The sketch is never decremented when a
//   key moves *into* the filter, so no other key's estimate can drop below
//   its true count (Example 1 of the paper is exactly the hazard avoided).
//
// At most one exchange is performed per sketch insertion; together with
// the zero-delta writeback suppression this yields Lemma 1: a key that
// appears t times is inserted into the sketch at most t times.
//
// Analytic model (Table 2), with w rows, h cells/row, filter of s_f bytes,
// h' = h − s_f/w, filter time t_f, sketch time t_s, total count N of which
// N2 reaches the sketch:
//   update/query time:   t_f + (N2/N)·t_s
//   estimation error:    (e/h')·N2·(N2/N)  w.p. e^{−w}   (vs (e/h)·N)
// The space identity s_f + w·h' = w·h is enforced by MakeASketch*.
//
// Deletions (Appendix A) are negative-delta updates; the filter absorbs
// them out of its exact (new−old) slack and pushes any residual into the
// sketch. No exchange is triggered by a deletion.

#ifndef ASKETCH_CORE_ASKETCH_H_
#define ASKETCH_CORE_ASKETCH_H_

#include <algorithm>
#include <chrono>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/atomic_util.h"
#include "src/common/check.h"
#include "src/common/sampling.h"
#include "src/core/delta_batch.h"
#include "src/obs/core_metrics.h"
#include "src/obs/trace.h"
#include "src/common/serialize.h"
#include "src/common/simd_scan.h"
#include "src/common/types.h"
#include "src/filter/filter_interface.h"
#include "src/filter/heap_filter.h"
#include "src/filter/stream_summary_filter.h"
#include "src/filter/vector_filter.h"
#include "src/sketch/count_min.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/fcm.h"
#include "src/sketch/frequency_estimator.h"
#include "src/sketch/salsa_count_min.h"

namespace asketch {

/// Running counters describing how the stream split between filter and
/// sketch; the basis of the selectivity and exchange experiments
/// (Figs. 3, 9, 17).
struct ASketchStats {
  /// Aggregated count absorbed by the filter (N1).
  wide_count_t filtered_weight = 0;
  /// Aggregated count forwarded to the sketch (N2). N2 / (N1 + N2) is the
  /// paper's filter_selectivity.
  wide_count_t sketch_weight = 0;
  /// Number of filter<->sketch exchanges performed (Fig. 9).
  uint64_t exchanges = 0;
  /// Number of evictions whose (new-old) delta was written back into the
  /// sketch (exchanges minus zero-delta suppressions).
  uint64_t exchange_writebacks = 0;
  /// Number of sketch insertions, including exchange writebacks.
  uint64_t sketch_updates = 0;
  /// Tail updates elided by geometric sampling (ALGORITHMS.md §8); their
  /// weight still counts in sketch_weight — the scaled survivors carry
  /// it in expectation. Not serialized (the "ASK1" layout predates it).
  uint64_t sampled_skips = 0;

  /// N2 / N, the fraction of stream weight the sketch had to process.
  double FilterSelectivity() const {
    const wide_count_t total = filtered_weight + sketch_weight;
    return total == 0 ? 0.0
                      : static_cast<double>(sketch_weight) /
                            static_cast<double>(total);
  }
};

/// The Augmented Sketch, composed of a FilterType and a sketch backend.
template <FilterType FilterT, FrequencyEstimatorType SketchT>
class ASketch {
 public:
  /// Takes ownership of a constructed filter and sketch. Use the
  /// MakeASketch* helpers to build a space-budgeted instance.
  /// `enable_exchanges = false` disables the filter<->sketch exchange
  /// (lines 9-17 of Algorithm 1), leaving a first-come early-aggregation
  /// filter — an ablation knob for quantifying the exchange policy's
  /// contribution; production use should keep it on.
  explicit ASketch(FilterT filter, SketchT sketch,
                   bool enable_exchanges = true)
      : filter_(std::move(filter)),
        sketch_(std::move(sketch)),
        enable_exchanges_(enable_exchanges) {}

  /// Publishes a tail sampling rate (permille of tail updates applied;
  /// 1000 = sampling off). Callable from any thread — the value lands in
  /// a relaxed-atomic target that the owner thread folds into its private
  /// sampler at the next Update/UpdateBatch boundary (SyncTailSampler).
  /// When active, each sketch insert in MissPositive is applied with
  /// probability p = permille/1000 and scaled by 1/p (stochastically
  /// rounded): tail estimates become unbiased but lose the one-sided
  /// bound; filter hits and free-slot inserts stay bit-exact
  /// (ALGORITHMS.md §8). At 1000 the path is bit-identical to unsampled.
  void SetTailSamplePermille(uint32_t permille) {
    RelaxedStore(tail_sample_permille_,
                 std::clamp<uint32_t>(permille, 1, 1000));
  }
  void SetTailSampleRate(double rate) {
    SetTailSamplePermille(static_cast<uint32_t>(rate * 1000.0 + 0.5));
  }
  uint32_t tail_sample_permille() const {
    return RelaxedLoad(tail_sample_permille_);
  }
  /// Reseeds the owner-side sampler (owner thread only; call before
  /// ingest starts for reproducible runs).
  void SeedTailSampler(uint64_t seed) {
    const uint32_t permille = tail_sampler_.permille();
    tail_sampler_ = GeometricSampler(seed);
    tail_sampler_.SetPermille(permille);
  }

  /// Algorithm 1 (positive deltas) / Appendix A (negative deltas).
  void Update(item_t key, delta_t delta = 1) {
    if (delta == 0) return;
    SyncTailSampler();
    if (delta > 0) {
      UpdatePositive(key, delta);
    } else {
      UpdateNegative(key, delta);
    }
    // Scalar ingest flushes the pending telemetry block periodically so
    // the registry trails the sketch by at most kTelemetryFlushInterval
    // tuples; batch ingest flushes exactly once per batch instead.
    ASKETCH_TELEMETRY_ONLY(if (++pending_.since_flush >=
                               kTelemetryFlushInterval) [[unlikely]] {
      PublishTelemetry();
    })
  }

  /// Batched Algorithm 1 — the ingestion fast path. Tuples are processed
  /// in stream order and the resulting filter/sketch state is
  /// bit-identical to the equivalent sequence of Update() calls
  /// (identical hit aggregation, identical exchange decisions, identical
  /// stats). The throughput comes from working in chunks:
  ///
  ///   1. one multi-key SIMD pass over the filter id array resolves a
  ///      whole chunk of probes (FindKeysBatch) instead of re-scanning
  ///      per tuple;
  ///   2. the misses' sketch buckets are hashed in one vectorized pass
  ///      (PrepareUpdateBatch) and, for sketches too large to sit in
  ///      cache, their cells software-prefetched up front so the w
  ///      random accesses of each miss overlap the tuples ahead of it.
  ///
  /// Probed slots are reused until a structural filter change (free-slot
  /// insertion, exchange) or a slot-moving hit invalidates them; from
  /// then on the remainder of the chunk falls back to per-key Find, which
  /// keeps the walk exactly equivalent to Algorithm 1. Tuple weights are
  /// unsigned; zero-weight tuples are skipped like Update(key, 0).
  void UpdateBatch(std::span<const Tuple> tuples) {
    ASKETCH_TRACE_SPAN("asketch_update_batch");
    ASKETCH_TELEMETRY_ONLY(
        const auto telemetry_start = std::chrono::steady_clock::now();)
    SyncTailSampler();
    constexpr size_t kChunk = 16;
    static_assert(kChunk <= kMaxProbeBatch);
    // Backends exposing the prepared-update API (PrepareUpdateBatch +
    // UpdateAndEstimateAt) hash a whole chunk's misses in one vectorized
    // pass at prefetch time; others fall back to a plain per-key
    // Prefetch if they have one.
    constexpr bool kPrepared =
        requires(SketchT& s, const item_t* k, uint32_t* b, delta_t d) {
          s.PrepareUpdateBatch(k, size_t{1}, b);
          s.UpdateAndEstimateAt(b, d, size_t{1});
        };
    item_t keys[kChunk];
    int32_t slots[kChunk];
    item_t miss_keys[kChunk];
    int8_t miss_index[kChunk];
    uint32_t rows = 0;
    std::vector<uint32_t> buckets;
    if constexpr (kPrepared) {
      rows = sketch_.width();
      buckets.resize(kChunk * rows);
    }
    const size_t n = tuples.size();
    for (size_t begin = 0; begin < n; begin += kChunk) {
      const size_t count = std::min(kChunk, n - begin);
      for (size_t i = 0; i < count; ++i) keys[i] = tuples[begin + i].key;
      if constexpr (requires(const FilterT& f) {
                      f.FindBatch(keys, count, slots);
                    }) {
        filter_.FindBatch(keys, count, slots);
      } else {
        for (size_t i = 0; i < count; ++i) slots[i] = filter_.Find(keys[i]);
      }
      // Hash (and, for out-of-cache sketches, warm) the sketch rows of
      // the probed misses before the in-order walk reaches them; hits
      // never touch the sketch.
      size_t miss_count = 0;
      if constexpr (kPrepared) {
        // Branchless compaction — the hit/miss mix is data-dependent and
        // a conditional append mispredicts on every boundary.
        for (size_t i = 0; i < count; ++i) {
          const bool miss = slots[i] < 0;
          miss_keys[miss_count] = keys[i];
          miss_index[i] = miss ? static_cast<int8_t>(miss_count)
                               : static_cast<int8_t>(-1);
          miss_count += miss;
        }
        sketch_.PrepareUpdateBatch(miss_keys, miss_count, buckets.data());
      } else if constexpr (requires(const SketchT& s, item_t k) {
                             s.Prefetch(k);
                           }) {
        for (size_t i = 0; i < count; ++i) {
          if (slots[i] < 0) sketch_.Prefetch(keys[i]);
        }
      }
      bool slots_valid = true;
      for (size_t i = 0; i < count; ++i) {
        const delta_t delta = static_cast<delta_t>(tuples[begin + i].value);
        if (delta == 0) continue;
        const int32_t slot =
            slots_valid ? slots[i] : filter_.Find(keys[i]);
        if (slot >= 0) {
          filter_.AddToNewCount(slot, delta);
          stats_.filtered_weight += static_cast<wide_count_t>(delta);
          ASKETCH_TELEMETRY_ONLY(
              pending_.filtered_weight += static_cast<uint64_t>(delta);)
          if constexpr (requires { FilterT::HitInvalidatesSlots(slot); }) {
            if (FilterT::HitInvalidatesSlots(slot)) slots_valid = false;
          } else {
            slots_valid = false;
          }
          continue;
        }
        // Buckets were prepared iff the original probe reported a miss;
        // they stay valid across filter mutations (they depend only on
        // the sketch's hash seeds, not on filter state). Row-major
        // layout: the key's column starts at its miss index with the
        // chunk's miss count as the stride.
        const uint32_t* prepared = nullptr;
        if constexpr (kPrepared) {
          if (miss_index[i] >= 0) {
            prepared = &buckets[static_cast<size_t>(miss_index[i])];
          }
        }
        if (MissPositive(keys[i], delta, prepared, miss_count)) {
          slots_valid = false;
        }
      }
    }
    ASKETCH_TELEMETRY_ONLY({
      PublishTelemetry();
      obs::IngestMetrics::Get().update_batch_ns.Record(
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - telemetry_start)
                  .count()));
    })
  }

  /// Algorithm 2: filter hit answers exactly from new_count; otherwise the
  /// sketch answers.
  count_t Estimate(item_t key) const {
    const int32_t slot = filter_.Find(key);
    if (slot >= 0) return filter_.NewCount(slot);
    return sketch_.Estimate(key);
  }

  /// Top-k frequent items query (§7.2.2): the filter's contents, sorted by
  /// descending estimated frequency. k is bounded by the filter capacity.
  std::vector<FilterEntry> TopK() const {
    std::vector<FilterEntry> entries;
    entries.reserve(filter_.size());
    filter_.ForEach([&entries](const FilterEntry& e) {
      entries.push_back(e);
    });
    SortTopK(&entries);
    return entries;
  }

  /// Algorithm 2 against a concurrently-updated instance, without any
  /// lock: the filter lookup runs under its seqlock (retrying torn
  /// snapshots) and a miss falls through to relaxed atomic sketch reads.
  /// Requires a single concurrent writer (the normal shard discipline).
  ///
  /// One-sidedness survives the races (DESIGN.md §5c): a validated
  /// filter snapshot is a state the filter actually passed through, and
  /// the exchange path writes the victim's exact delta back to the
  /// sketch *before* evicting it, so by the time a reader can see a key
  /// absent from the filter the sketch already carries all of its mass
  /// — with insert-only cells the min can only sit at or above the true
  /// prefix count. `*retries` accumulates torn-snapshot retries.
  count_t EstimateConcurrent(item_t key, uint64_t* retries = nullptr) const
      requires requires(const FilterT& f, const SketchT& s, item_t k,
                        count_t* c, uint64_t* r) {
        { f.SnapshotFind(k, c, r) } -> std::same_as<bool>;
        { s.EstimateRelaxed(k) } -> std::same_as<count_t>;
      }
  {
    count_t count = 0;
    // Filter first, sketch second: if the key is mid-exchange, the
    // snapshot that no longer holds it was published after the sketch
    // writeback, which the seqlock's release/acquire pairing then makes
    // visible to the sketch reads below.
    if (filter_.SnapshotFind(key, &count, retries)) return count;
    return sketch_.EstimateRelaxed(key);
  }

  /// TopK against a concurrently-updated instance; the entries come from
  /// one validated seqlock snapshot of the filter, so the report is a
  /// state the filter actually passed through.
  std::vector<FilterEntry> TopKConcurrent(uint64_t* retries = nullptr) const
      requires requires(const FilterT& f, std::vector<FilterEntry>* out,
                        uint64_t* r) {
        f.SnapshotEntries(out, r);
      }
  {
    std::vector<FilterEntry> entries;
    filter_.SnapshotEntries(&entries, retries);
    SortTopK(&entries);
    return entries;
  }

  void Reset() {
    // Events observed before the reset still happened; surface them.
    ASKETCH_TELEMETRY_ONLY(PublishTelemetry();)
    filter_.Reset();
    sketch_.Reset();
    stats_ = ASketchStats{};
  }

  /// Flushes locally accumulated telemetry deltas into the global
  /// metrics registry (obs::IngestMetrics). Hot paths bank their events
  /// in plain per-instance fields and this call moves them into the
  /// per-thread sharded counters; UpdateBatch calls it once per batch,
  /// scalar Update every kTelemetryFlushInterval tuples. Call it before
  /// reading the registry when exact totals matter. No-op when telemetry
  /// is compiled out. Deliberately out-of-line and cold: it must not
  /// bloat the inlined ingest fast paths.
#if defined(__GNUC__) && !defined(ASKETCH_NO_TELEMETRY)
  __attribute__((noinline, cold))
#endif
  void PublishTelemetry() {
    ASKETCH_TELEMETRY_ONLY({
      obs::IngestMetrics& metrics = obs::IngestMetrics::Get();
      if (pending_.filtered_weight != 0) {
        metrics.filtered_weight.Add(pending_.filtered_weight);
      }
      if (pending_.sketch_weight != 0) {
        metrics.sketch_weight.Add(pending_.sketch_weight);
      }
      if (pending_.sketch_updates != 0) {
        metrics.sketch_updates.Add(pending_.sketch_updates);
      }
      if (pending_.exchanges != 0) {
        metrics.exchanges.Add(pending_.exchanges);
      }
      if (pending_.exchange_writebacks != 0) {
        metrics.exchange_writebacks.Add(pending_.exchange_writebacks);
      }
      if (pending_.deletions != 0) {
        metrics.deletions.Add(pending_.deletions);
      }
      if (pending_.sampled_skips != 0) {
        metrics.sampled_skips.Add(pending_.sampled_skips);
      }
      pending_ = PendingTelemetry{};
    })
  }

  size_t MemoryUsageBytes() const {
    return filter_.MemoryUsageBytes() + sketch_.MemoryUsageBytes();
  }

  /// Merges `other` (built from the same config — compatible sketches
  /// and equal filter capacities) into this instance. The merged ASketch
  /// answers queries over the union of both streams with the one-sided
  /// guarantee intact. Returns an error message on mismatch.
  ///
  /// Procedure: (1) merge the sketch cells; (2) transfer the exact
  /// filter-era hits (new−old) of `other`'s filter entries, through the
  /// normal update path so exchanges still apply; (3) raise each of this
  /// filter's entries by `other`'s sketch estimate for its key — that
  /// mass is now inside the merged sketch, so both counters grow by it.
  std::optional<std::string> MergeFrom(const ASketch& other) {
    if (filter_.capacity() != other.filter_.capacity()) {
      return std::string("ASketch::MergeFrom: filter capacities differ");
    }
    if (auto error = sketch_.MergeFrom(other.sketch_)) return error;
    std::vector<FilterEntry> other_entries;
    other.filter_.ForEach([&other_entries](const FilterEntry& e) {
      other_entries.push_back(e);
    });
    for (const FilterEntry& e : other_entries) {
      if (e.new_count > e.old_count) {
        const int32_t slot = filter_.Find(e.key);
        if (slot >= 0) {
          filter_.AddToNewCount(
              slot, static_cast<delta_t>(e.new_count - e.old_count));
        } else {
          UpdatePositive(e.key, static_cast<delta_t>(e.new_count -
                                                     e.old_count));
        }
      }
    }
    std::vector<FilterEntry> own_entries;
    filter_.ForEach([&own_entries](const FilterEntry& e) {
      own_entries.push_back(e);
    });
    for (const FilterEntry& e : own_entries) {
      const count_t other_sketch_estimate =
          other.sketch_.Estimate(e.key);
      if (other_sketch_estimate == 0) continue;
      const int32_t slot = filter_.Find(e.key);
      if (slot < 0) continue;  // evicted by an exchange in pass 2
      filter_.SetCounts(
          slot,
          SaturatingAdd(filter_.NewCount(slot),
                        static_cast<delta_t>(other_sketch_estimate)),
          SaturatingAdd(filter_.OldCount(slot),
                        static_cast<delta_t>(other_sketch_estimate)));
    }
    return std::nullopt;
  }

  /// Opens a delta epoch against this instance: a DeltaBatch whose head
  /// snapshot is the filter's current membership (taken lock-free
  /// through the seqlock, so decode threads may call this while the
  /// owner is mid-merge) and whose tail is a fresh sketch built from
  /// this sketch's config — the CompatibleWith precondition ApplyDelta's
  /// MergeFrom needs. The snapshot is advisory: ApplyDelta tolerates
  /// any drift between it and the filter at merge time.
  DeltaBatch<SketchT> MakeDeltaBatch() const
      requires requires(const FilterT& f, const SketchT& s,
                        std::vector<FilterEntry>* out) {
        f.SnapshotEntries(out);
        SketchT(s.config());
      }
  {
    std::vector<FilterEntry> entries;
    filter_.SnapshotEntries(&entries);
    std::vector<item_t> keys;
    keys.reserve(entries.size());
    for (const FilterEntry& e : entries) keys.push_back(e.key);
    return DeltaBatch<SketchT>(keys, SketchT(sketch_.config()),
                               filter_.capacity());
  }

  /// Folds a decode thread's DeltaBatch into this instance — the owner
  /// side of the delta-merge ingest model (ALGORITHMS.md §7). Caller
  /// must hold the shard's writer role (same discipline as UpdateBatch).
  ///
  /// Order matters for the one-sided guarantee under head drift:
  ///
  ///   1. Merge the tail sketch FIRST. Every estimate taken below —
  ///      exchange decisions in step 2, inflation in step 3 — then
  ///      already includes the delta's tail mass, so no key's mass can
  ///      be "in flight" when a decision about it is made.
  ///   2. Head entries re-probe the live filter: still resident →
  ///      exact AddToNewCount (the aggregation the head table exists
  ///      for); not resident — evicted since the snapshot, or a
  ///      first-touch claim that was never filter-resident — the
  ///      aggregate flows through MissPositive: one sketch update
  ///      carrying the key's whole epoch mass (cell sums identical to
  ///      per-arrival updates under the plain CountMin policy,
  ///      one-sided under SALSA), then the normal free-slot / exchange
  ///      policy. The exact (new − old) slack survives either way.
  ///   3. Inflation pass (the MergeFrom pass-3 law): every live filter
  ///      entry that was NOT in the delta's head table may have
  ///      absorbed tail mass into the sketch in step 1 while queries
  ///      answer it exactly from the filter — raise new_count AND
  ///      old_count by the delta tail's estimate. One-sided (estimate
  ///      ≥ the key's true tail mass) and slack-preserving (both
  ///      counters move together, so the eviction writeback never
  ///      re-injects mass the sketch already holds). Head members
  ///      (snapshot or claimed) are skipped: their tail mass is zero by
  ///      construction — a key never splits between head and tail — and
  ///      skipping them is what makes a stable-head delta apply
  ///      bit-identical to serial CountMin ingest.
  ///   4. Admission pass: the delta's Misra–Gries candidates (heavy
  ///      tail keys) are offered to the filter under the normal policy
  ///      — free slot, or one exchange when the sketch estimate beats
  ///      the filter minimum. Because the candidate's mass already sits
  ///      in sketch cells from step 1, an admitted key starts with
  ///      new_count == old_count == estimate (zero exact slack), the
  ///      same state a serial exchange would have produced. This pass
  ///      is what lets a cold filter learn the hot set in delta mode;
  ///      under a stable head every attempt loses the exchange test and
  ///      the pass reads but never writes (bit-identity preserved).
  ///
  /// Returns an error (state of step 1 unapplied) on a sketch-geometry
  /// mismatch; deltas from MakeDeltaBatch never mismatch.
  std::optional<std::string> ApplyDelta(DeltaBatch<SketchT>& delta) {
    if (delta.Empty()) return std::nullopt;
    delta.FlushMisses();  // seal the tail before reading it
    if (auto error = sketch_.MergeFrom(delta.tail())) return error;
    stats_.sketch_weight += delta.tail_weight();
    stats_.sketch_updates += delta.tail_updates();
    ASKETCH_TELEMETRY_ONLY({
      pending_.sketch_weight += delta.tail_weight();
      pending_.sketch_updates += delta.tail_updates();
    })
    delta.ForEachHead([&](item_t key, uint64_t weight) {
      // A uint64 aggregate cannot overflow delta_t in practice; clamp
      // rather than wrap if a forged delta tries.
      const delta_t d = static_cast<delta_t>(
          std::min<uint64_t>(weight, 0x7fffffffffffffffull));
      const int32_t slot = filter_.Find(key);
      if (slot >= 0) {
        filter_.AddToNewCount(slot, d);
        stats_.filtered_weight += static_cast<wide_count_t>(d);
        ASKETCH_TELEMETRY_ONLY(
            pending_.filtered_weight += static_cast<uint64_t>(d);)
      } else {
        MissPositive(key, d);
      }
    });
    if (delta.tail_weight() != 0) {
      std::vector<FilterEntry> own_entries;
      filter_.ForEach([&own_entries](const FilterEntry& e) {
        own_entries.push_back(e);
      });
      for (const FilterEntry& e : own_entries) {
        if (delta.HeadContains(e.key)) continue;
        const count_t tail_estimate = delta.tail().Estimate(e.key);
        if (tail_estimate == 0) continue;
        const int32_t slot = filter_.Find(e.key);
        if (slot < 0) continue;
        filter_.SetCounts(
            slot,
            SaturatingAdd(filter_.NewCount(slot),
                          static_cast<delta_t>(tail_estimate)),
            SaturatingAdd(filter_.OldCount(slot),
                          static_cast<delta_t>(tail_estimate)));
      }
      delta.ForEachCandidate(
          [&](item_t key, count_t) { TryAdmitSketchResident(key); });
    }
    return std::nullopt;
  }

  /// Whether AdoptFrom(other) can replace this instance's state without
  /// reallocating the buffers lock-free readers are scanning. Always
  /// true for component types without in-place adoption (AdoptFrom then
  /// falls back to move assignment — only safe without concurrent
  /// readers).
  bool CanAdoptFrom(const ASketch& other) const {
    if constexpr (requires(const FilterT& f, const SketchT& s) {
                    { f.CanAdoptFrom(f) } -> std::same_as<bool>;
                    { s.CanAdoptFrom(s) } -> std::same_as<bool>;
                  }) {
      return filter_.CanAdoptFrom(other.filter_) &&
             sketch_.CanAdoptFrom(other.sketch_);
    } else {
      return true;
    }
  }

  /// Replaces this instance's state with `other`'s. When both components
  /// support in-place adoption the buffers are reused, so readers racing
  /// the adoption via EstimateConcurrent/TopKConcurrent never touch
  /// freed memory (the ShardSet restore path depends on this). Requires
  /// CanAdoptFrom(other); the caller must exclude concurrent writers.
  void AdoptFrom(ASketch&& other) {
    if constexpr (requires(FilterT& f, FilterT&& fo, SketchT& s,
                           SketchT&& so) {
                    f.AdoptFrom(std::move(fo));
                    s.AdoptFrom(std::move(so));
                  }) {
      ASKETCH_CHECK(CanAdoptFrom(other));
      filter_.AdoptFrom(std::move(other.filter_));
      sketch_.AdoptFrom(std::move(other.sketch_));
      enable_exchanges_ = other.enable_exchanges_;
      stats_ = other.stats_;
      ASKETCH_TELEMETRY_ONLY(pending_ = PendingTelemetry{};)
    } else {
      *this = std::move(other);
    }
  }

  /// Writes filter + sketch + stats. Hash functions come back from the
  /// serialized seeds.
  bool SerializeTo(BinaryWriter& writer) const {
    writer.PutU32(0x314b5341u);  // "ASK1"
    if (!filter_.SerializeTo(writer)) return false;
    if (!sketch_.SerializeTo(writer)) return false;
    writer.PutU8(enable_exchanges_ ? 1 : 0);
    writer.PutU64(stats_.filtered_weight);
    writer.PutU64(stats_.sketch_weight);
    writer.PutU64(stats_.exchanges);
    writer.PutU64(stats_.exchange_writebacks);
    writer.PutU64(stats_.sketch_updates);
    return writer.ok();
  }

  static std::optional<ASketch> DeserializeFrom(BinaryReader& reader) {
    uint32_t magic = 0;
    if (!reader.GetU32(&magic) || magic != 0x314b5341u) {
      return std::nullopt;
    }
    auto filter = FilterT::DeserializeFrom(reader);
    if (!filter.has_value()) return std::nullopt;
    auto sketch = SketchT::DeserializeFrom(reader);
    if (!sketch.has_value()) return std::nullopt;
    uint8_t exchanges = 0;
    ASketchStats stats;
    if (!reader.GetU8(&exchanges) || exchanges > 1 ||
        !reader.GetU64(&stats.filtered_weight) ||
        !reader.GetU64(&stats.sketch_weight) ||
        !reader.GetU64(&stats.exchanges) ||
        !reader.GetU64(&stats.exchange_writebacks) ||
        !reader.GetU64(&stats.sketch_updates)) {
      return std::nullopt;
    }
    ASketch result(*std::move(filter), *std::move(sketch),
                   exchanges != 0);
    result.stats_ = stats;
    return result;
  }

  /// Snapshot-envelope payload tag, composed from the component tags so
  /// every Filter/Sketch combination gets a distinct tag (registry:
  /// src/common/snapshot.h).
  static constexpr uint32_t kSnapshotPayloadType =
      0x41000000u | (FilterT::kSnapshotPayloadType << 8) |
      SketchT::kSnapshotPayloadType;

  const ASketchStats& stats() const { return stats_; }
  FilterT& filter() { return filter_; }
  const FilterT& filter() const { return filter_; }
  SketchT& sketch() { return sketch_; }
  const SketchT& sketch() const { return sketch_; }

  std::string Name() const {
    return "ASketch<" + FilterT::Name() + "," + sketch_.Name() + ">";
  }

 private:
  /// Shared TopK ordering: descending estimate, ties by ascending key.
  static void SortTopK(std::vector<FilterEntry>* entries) {
    std::sort(entries->begin(), entries->end(),
              [](const FilterEntry& a, const FilterEntry& b) {
                if (a.new_count != b.new_count) {
                  return a.new_count > b.new_count;
                }
                return a.key < b.key;
              });
  }

  void UpdatePositive(item_t key, delta_t delta) {
    // Lines 1-6: filter lookup / hit aggregation.
    const int32_t slot = filter_.Find(key);
    if (slot >= 0) {
      filter_.AddToNewCount(slot, delta);
      stats_.filtered_weight += static_cast<wide_count_t>(delta);
      ASKETCH_TELEMETRY_ONLY(
          pending_.filtered_weight += static_cast<uint64_t>(delta);)
      return;
    }
    MissPositive(key, delta);
  }

  /// Lines 6-17 of Algorithm 1 for a key known to be absent from the
  /// filter: free-slot insertion, or sketch insert with the
  /// one-exchange-per-insertion rule. Returns true when the filter's
  /// membership changed (insertion or exchange) — i.e. slots found before
  /// this call are stale. `prepared` optionally carries the bucket
  /// indices PrepareUpdate/PrepareUpdateBatch computed for `key` (batch
  /// path; row r's bucket at prepared[r*stride]); they replace the hash
  /// pass of the sketch insert with a bit-identical replay.
  bool MissPositive(item_t key, delta_t delta,
                    const uint32_t* prepared = nullptr,
                    size_t stride = 1) {
    if (!filter_.Full()) {
      filter_.Insert(key, static_cast<count_t>(std::min<delta_t>(
                              delta, ~count_t{0})),
                     /*old_count=*/0);
      stats_.filtered_weight += static_cast<wide_count_t>(delta);
      ASKETCH_TELEMETRY_ONLY(
          pending_.filtered_weight += static_cast<uint64_t>(delta);)
      return true;
    }
    // Sampled tail path (ALGORITHMS.md §8): elide this sketch insert
    // with probability 1-p, or apply it scaled by 1/p. Either way the
    // TRUE weight is booked into sketch_weight — the stream-split stats
    // describe the stream, not the sampler. Skips cost one countdown
    // decrement and never touch a sketch cell; no exchange can trigger
    // on a skipped tuple. Exchange writebacks (WriteBackVictim) bypass
    // this entirely — a victim's exact slack is never sampled away.
    delta_t applied = delta;
    if (tail_sampler_.active()) {
      if (!tail_sampler_.ShouldApply()) {
        stats_.sketch_weight += static_cast<wide_count_t>(delta);
        ++stats_.sampled_skips;
        ASKETCH_TELEMETRY_ONLY({
          pending_.sketch_weight += static_cast<uint64_t>(delta);
          ++pending_.sampled_skips;
        })
        return false;
      }
      applied = tail_sampler_.ScaleDelta(delta);
    }
    // Lines 7-9: forward to the sketch and read back the new estimate.
    // Backends exposing the fused UpdateAndEstimate hash only once here;
    // others fall back to Update + Estimate.
    count_t estimate;
    if constexpr (requires(SketchT& s) {
                    s.UpdateAndEstimateAt(prepared, delta, stride);
                  }) {
      if (prepared != nullptr) {
        estimate = sketch_.UpdateAndEstimateAt(prepared, applied, stride);
      } else {
        estimate = UpdateAndEstimateUnprepared(key, applied);
      }
    } else {
      (void)prepared;
      (void)stride;
      estimate = UpdateAndEstimateUnprepared(key, applied);
    }
    ++stats_.sketch_updates;
    stats_.sketch_weight += static_cast<wide_count_t>(delta);
    ASKETCH_TELEMETRY_ONLY({
      pending_.sketch_weight += static_cast<uint64_t>(delta);
      ++pending_.sketch_updates;
    })
    if (!enable_exchanges_) return false;
    // Lines 9-17: at most ONE exchange per sketch insertion. Multiple
    // cascading exchanges would re-inject over-estimated counts and only
    // add error (see the paper's discussion of the exchange policy).
    if (estimate > filter_.MinNewCount()) {
      // Writeback-before-eviction: filters exposing PeekMin get the
      // victim's exact delta pushed into the sketch while the victim is
      // still filter-resident, so a lock-free reader can never observe
      // the victim absent from the filter with its filter-era hits
      // missing from the sketch (a transient under-estimate). The final
      // state is bit-identical to the evict-then-writeback order — the
      // writeback touches no filter state.
      FilterEntry victim;
      if constexpr (requires(const FilterT& f) {
                      { f.PeekMin() } -> std::same_as<FilterEntry>;
                    }) {
        victim = filter_.PeekMin();
        WriteBackVictim(victim);
        filter_.EvictMin();
      } else {
        victim = filter_.EvictMin();
        WriteBackVictim(victim);
      }
      // The incoming key keeps its sketch cells untouched; both counts
      // start at the estimate so (new - old) = 0 exact hits so far.
      filter_.Insert(key, estimate, estimate);
      ++stats_.exchanges;
      ASKETCH_TELEMETRY_ONLY(++pending_.exchanges;)
      return true;
    }
    return false;
  }

  /// Admission attempt for a key whose mass ALREADY sits in the sketch
  /// (ApplyDelta step 4): no sketch write happens here — the key enters
  /// the filter with new_count == old_count == its current estimate, so
  /// the eviction writeback later re-injects only post-admission exact
  /// hits. Same free-slot / single-exchange policy as MissPositive.
  void TryAdmitSketchResident(item_t key) {
    if (filter_.Find(key) >= 0) return;  // already resident (e.g. step 2/4)
    const count_t estimate = sketch_.Estimate(key);
    if (estimate == 0) return;
    if (!filter_.Full()) {
      filter_.Insert(key, estimate, estimate);
      return;
    }
    if (!enable_exchanges_) return;
    if (estimate > filter_.MinNewCount()) {
      FilterEntry victim;
      if constexpr (requires(const FilterT& f) {
                      { f.PeekMin() } -> std::same_as<FilterEntry>;
                    }) {
        victim = filter_.PeekMin();
        WriteBackVictim(victim);
        filter_.EvictMin();
      } else {
        victim = filter_.EvictMin();
        WriteBackVictim(victim);
      }
      filter_.Insert(key, estimate, estimate);
      ++stats_.exchanges;
      ASKETCH_TELEMETRY_ONLY(++pending_.exchanges;)
    }
  }

  /// Lines 10-12 of Algorithm 1: pushes an exchange victim's exact
  /// filter-era hits back into the sketch (zero-delta suppressed).
  void WriteBackVictim(const FilterEntry& victim) {
    if (victim.new_count <= victim.old_count) return;
    // Only the exact hits accumulated in the filter go back; the
    // old_count portion never left the sketch.
    sketch_.Update(victim.key, static_cast<delta_t>(victim.new_count -
                                                    victim.old_count));
    ++stats_.exchange_writebacks;
    ++stats_.sketch_updates;
    ASKETCH_TELEMETRY_ONLY({
      ++pending_.exchange_writebacks;
      ++pending_.sketch_updates;
    })
  }

  count_t UpdateAndEstimateUnprepared(item_t key, delta_t delta) {
    if constexpr (requires(SketchT& s) {
                    s.UpdateAndEstimate(key, delta);
                  }) {
      return sketch_.UpdateAndEstimate(key, delta);
    } else {
      sketch_.Update(key, delta);
      return sketch_.Estimate(key);
    }
  }

  void UpdateNegative(item_t key, delta_t delta) {
    ASKETCH_TELEMETRY_ONLY(++pending_.deletions;)
    const int32_t slot = filter_.Find(key);
    if (slot < 0) {
      // Not monitored: the deletion applies directly to the sketch, and
      // the weight it removes comes out of the sketch's share of the
      // stream (N2). Clamped: over-deletion of colliding keys must not
      // wrap the unsigned stats counters.
      sketch_.Update(key, delta);
      ++stats_.sketch_updates;
      ASKETCH_TELEMETRY_ONLY(++pending_.sketch_updates;)
      DeductWeight(stats_.sketch_weight, static_cast<count_t>(std::min<delta_t>(
                                             -delta, ~count_t{0})));
      return;
    }
    const count_t magnitude = static_cast<count_t>(
        std::min<delta_t>(-delta, ~count_t{0}));
    const count_t new_count = filter_.NewCount(slot);
    const count_t old_count = filter_.OldCount(slot);
    const count_t slack = new_count - old_count;  // exact filter-era hits
    if (slack >= magnitude) {
      // The filter's exact portion absorbs the whole deletion; the
      // removed weight was counted as filtered when it arrived.
      filter_.AddToNewCount(slot, delta);
      DeductWeight(stats_.filtered_weight, magnitude);
      return;
    }
    // Appendix A: subtract `magnitude` from new_count and the residual
    // (magnitude - slack) from both old_count and the sketch. Afterwards
    // new_count == old_count (all filter-era hits are consumed).
    const count_t residual = magnitude - slack;
    const count_t next = new_count >= magnitude ? new_count - magnitude : 0;
    filter_.SetCounts(slot, next, next);
    sketch_.Update(key, -static_cast<delta_t>(residual));
    ++stats_.sketch_updates;
    ASKETCH_TELEMETRY_ONLY(++pending_.sketch_updates;)
    // The slack portion undoes filter-absorbed weight (N1); the residual
    // undoes weight that had reached the sketch (N2).
    DeductWeight(stats_.filtered_weight, slack);
    DeductWeight(stats_.sketch_weight, residual);
    // Per Appendix A, no exchange is initiated by a negative update.
  }

  /// Removes deleted weight from a split-stats counter without wrapping:
  /// an over-deletion (possible for unmonitored keys, whose sketch
  /// estimate may exceed the true count) floors the counter at zero.
  static void DeductWeight(wide_count_t& counter, count_t amount) {
    counter -= std::min<wide_count_t>(counter, amount);
  }

  /// Scalar-path auto-flush period for the pending telemetry block (see
  /// PublishTelemetry): the registry trails by at most this many tuples.
  static constexpr uint64_t kTelemetryFlushInterval = 1024;

  /// Gross (monotonic) event deltas accrued since the last
  /// PublishTelemetry — unlike stats_, never decremented by deletions,
  /// matching the registry counters' monotonic semantics. Plain fields:
  /// banking an event costs one cache-local add, cheaper than even the
  /// sharded registry increment.
  struct PendingTelemetry {
    uint64_t filtered_weight = 0;
    uint64_t sketch_weight = 0;
    uint64_t sketch_updates = 0;
    uint64_t exchanges = 0;
    uint64_t exchange_writebacks = 0;
    uint64_t deletions = 0;
    uint64_t sampled_skips = 0;
    uint64_t since_flush = 0;  ///< scalar Updates since the last flush
  };

  /// Folds a cross-thread rate change (SetTailSamplePermille) into the
  /// owner's private sampler. One relaxed load + compare; the branch is
  /// never taken in steady state.
  void SyncTailSampler() {
    const uint32_t target = RelaxedLoad(tail_sample_permille_);
    if (target != tail_sampler_.permille()) [[unlikely]] {
      tail_sampler_.SetPermille(target);
    }
  }

  FilterT filter_;
  SketchT sketch_;
  bool enable_exchanges_ = true;
  ASketchStats stats_;
  /// Owner-thread tail sampler (inactive by default) and its cross-
  /// thread rate target, accessed via atomic_ref so the class stays
  /// movable. Runtime ingest policy, not synopsis state: neither is
  /// serialized or adopted.
  GeometricSampler tail_sampler_;
  uint32_t tail_sample_permille_ = 1000;
  ASKETCH_TELEMETRY_ONLY(PendingTelemetry pending_;)
};

/// Space-budget configuration for the MakeASketch* helpers. The filter is
/// carved out of the sketch's budget by shrinking the hash range:
/// depth' = depth − s_f/(width·sizeof(cell)), i.e. s_f + w·h' = w·h.
struct ASketchConfig {
  /// Total synopsis budget in bytes (filter + sketch), e.g. 128 KB.
  size_t total_bytes = 128 * 1024;
  /// Number of sketch rows (w); kept identical to the plain sketch so the
  /// error-probability term e^{-w} is unchanged (§4).
  uint32_t width = 8;
  /// Filter capacity in items (|F|), e.g. 32 (~0.4 KB for flat filters).
  uint32_t filter_items = 32;
  uint64_t seed = 42;

  std::optional<std::string> Validate() const {
    if (width < 1) return std::string("ASketch width must be >= 1");
    if (filter_items < 1) {
      return std::string("ASketch filter_items must be >= 1");
    }
    return std::nullopt;
  }
};

namespace internal {

/// Sketch byte budget left after the filter takes its share.
template <FilterType FilterT>
size_t SketchBudgetBytes(const ASketchConfig& config) {
  const size_t filter_bytes = config.filter_items * FilterT::BytesPerItem();
  ASKETCH_CHECK(filter_bytes < config.total_bytes);
  return config.total_bytes - filter_bytes;
}

}  // namespace internal

/// ASketch over Count-Min (the paper's default configuration).
template <FilterType FilterT>
ASketch<FilterT, CountMin> MakeASketchCountMin(const ASketchConfig& config) {
  ASKETCH_CHECK(!config.Validate().has_value());
  const CountMinConfig sketch_config = CountMinConfig::FromSpaceBudget(
      internal::SketchBudgetBytes<FilterT>(config), config.width,
      config.seed);
  return ASketch<FilterT, CountMin>(FilterT(config.filter_items),
                                    CountMin(sketch_config));
}

/// ASketch over FCM ("ASketch-FCM", §7.2.1). The MG classifier is dropped:
/// the filter already separates the hot keys, so every key reaching the
/// sketch is treated as low-frequency — this is the modified FCM the paper
/// uses inside ASketch-FCM.
template <FilterType FilterT>
ASketch<FilterT, Fcm> MakeASketchFcm(const ASketchConfig& config) {
  ASKETCH_CHECK(!config.Validate().has_value());
  FcmConfig sketch_config = FcmConfig::FromSpaceBudget(
      internal::SketchBudgetBytes<FilterT>(config), config.width,
      /*mg_capacity=*/0, config.seed);
  sketch_config.use_mg_classifier = false;
  sketch_config.mg_capacity = 0;
  return ASketch<FilterT, Fcm>(FilterT(config.filter_items),
                               Fcm(sketch_config));
}

/// ASketch over the SALSA self-adjusting Count-Min: same byte budget,
/// packed 8-bit starting counters that merge on overflow, so the tail
/// that survives the filter meets a ~3.7x wider row (salsa_count_min.h;
/// bench_salsa_accuracy measures the accuracy-per-byte win).
template <FilterType FilterT>
ASketch<FilterT, SalsaCountMin> MakeASketchSalsa(
    const ASketchConfig& config) {
  ASKETCH_CHECK(!config.Validate().has_value());
  const SalsaConfig sketch_config = SalsaConfig::FromSpaceBudget(
      internal::SketchBudgetBytes<FilterT>(config), config.width,
      config.seed);
  return ASketch<FilterT, SalsaCountMin>(FilterT(config.filter_items),
                                         SalsaCountMin(sketch_config));
}

/// ASketch over Count Sketch (generality demonstration).
template <FilterType FilterT>
ASketch<FilterT, CountSketch> MakeASketchCountSketch(
    const ASketchConfig& config) {
  ASKETCH_CHECK(!config.Validate().has_value());
  const CountSketchConfig sketch_config = CountSketchConfig::FromSpaceBudget(
      internal::SketchBudgetBytes<FilterT>(config), config.width,
      config.seed);
  return ASketch<FilterT, CountSketch>(FilterT(config.filter_items),
                                       CountSketch(sketch_config));
}

extern template class ASketch<VectorFilter, CountMin>;
extern template class ASketch<StrictHeapFilter, CountMin>;
extern template class ASketch<RelaxedHeapFilter, CountMin>;
extern template class ASketch<StreamSummaryFilter, CountMin>;
extern template class ASketch<RelaxedHeapFilter, Fcm>;
extern template class ASketch<RelaxedHeapFilter, CountSketch>;
extern template class ASketch<RelaxedHeapFilter, SalsaCountMin>;

}  // namespace asketch

#endif  // ASKETCH_CORE_ASKETCH_H_
