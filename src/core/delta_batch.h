// DeltaBatch: a decode thread's private, mergeable slice of ingest.
//
// The serving layer's single-writer invariant (DESIGN.md §5c) allows
// exactly one thread to mutate a shard's filter seqlock and sketch
// cells, so adding decode threads cannot speed up ingest by touching
// the shard directly. A DeltaBatch is the indirection that removes the
// shared state from the hot path: each decode thread accumulates its
// tuples into a private delta — a compact exact table seeded with the
// keys that were filter-resident when the delta epoch opened (the *head
// snapshot*) plus a same-geometry tail sketch for everything else — and
// the shard's owner thread folds the whole delta in at a batch boundary
// via ASketch::ApplyDelta. No locks, no atomics, no seqlock sections on
// the per-tuple path; the owner pays one dense sketch merge plus at
// most |head| filter updates per delta.
//
// The head is not limited to the snapshot: any key may *claim* a free
// slot on first touch, up to a load cap. A skewed stream's warm keys —
// too cold for the 32-entry filter, hot enough to repeat within an
// epoch — then aggregate exactly too, and the owner applies each as a
// single sketch update (ApplyDelta's MissPositive path) instead of one
// per arrival. A key either aggregates fully in the head or flows fully
// to the tail; claiming never splits a key's mass.
//
// Splitting this way preserves both halves of the ASketch contract:
//   - head hits aggregate *exactly*, so the filter's new_count keeps
//     its exact (new - old) slack after the merge — the two-counter
//     protocol never sees sketch noise for a stably-hot key;
//   - tail mass lands in sketch cells via MergeFrom, whose cell-wise
//     (CountMin) or bucket-saturating (SalsaCountMin) addition keeps
//     every estimate one-sided under any merge order, and claimed keys
//     reach the sketch through one aggregate update — identical cell
//     sums under the plain (linear) CountMin policy, one-sided under
//     SALSA's saturating buckets (ALGORITHMS.md §7).
//
// The head snapshot is advisory, not authoritative: the live filter may
// have evicted or admitted keys since the epoch opened. ApplyDelta
// handles both races conservatively (head entries re-probe the live
// filter; live entries missing from the snapshot are inflated by the
// delta tail's estimate) — see asketch.h.
//
// Admission: tail mass merges into anonymous sketch cells, so the owner
// cannot discover newly-hot keys from the merge alone — without help,
// a filter that starts empty would stay empty forever in delta mode and
// every tuple would pay the full sketch-update price. First-touch
// claims are the primary fix: a cold stream's hot keys claim head slots
// immediately and reach the filter through ApplyDelta's MissPositive
// free-slot / exchange policy on the very first merge. As a safety net
// for when the head table saturates before the hot set is covered, the
// delta also runs a small Misra–Gries summary over its tail keys (the
// classic frequent-items guarantee: any key with more than
// tail/(capacity+1) of the delta's tail occurrences is monitored) and
// ApplyDelta offers the monitored keys to the same admission policy
// after the merge.

#ifndef ASKETCH_CORE_DELTA_BATCH_H_
#define ASKETCH_CORE_DELTA_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/common/sampling.h"
#include "src/common/types.h"
#include "src/sketch/frequency_estimator.h"
#include "src/sketch/misra_gries.h"

namespace asketch {

template <FrequencyEstimatorType SketchT>
class DeltaBatch {
 public:
  /// Builds a delta keyed on `head_keys` (the filter contents at epoch
  /// start) with `tail` as the miss sketch. `tail` must be built from
  /// the owner sketch's own config so MergeFrom's CompatibleWith
  /// precondition holds at apply time; use ASketch::MakeDeltaBatch.
  /// `candidate_capacity` sizes the admission summary — the filter's
  /// capacity is the natural choice (a full replacement set per epoch).
  /// `head_slots` lower-bounds the head table size, giving first-touch
  /// claims room beyond the snapshot (kDefaultHeadSlots below); 0
  /// disables claiming entirely (snapshot-only head — the routing the
  /// head-drift tests pin).
  DeltaBatch(std::span<const item_t> head_keys, SketchT tail,
             uint32_t candidate_capacity = 8,
             uint32_t head_slots = kDefaultHeadSlots)
      : tail_(std::move(tail)),
        candidates_(std::max<uint32_t>(1, candidate_capacity)) {
    // Open-addressed table, bounded load: the snapshot occupies at most
    // half the table, and first-touch claims stop at kClaimLoadNum/Den
    // so probe sequences stay short — a head hit must be cheaper than
    // the SIMD filter scan plus seqlock write section it replaces.
    uint32_t capacity = 8;
    while (capacity < 2 * head_keys.size() + 1) capacity *= 2;
    capacity = std::max(capacity, head_slots);
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    claim_limit_ = head_slots == 0
                       ? 0
                       : std::max<uint32_t>(
                             static_cast<uint32_t>(head_keys.size()),
                             capacity / kClaimLoadDen * kClaimLoadNum);
    for (const item_t key : head_keys) {
      Slot& slot = ProbeSlot(key);
      if (!slot.used) {
        slot.used = true;
        slot.key = key;
        ++head_size_;
      }
    }
  }

  /// Accumulates one tuple: exact aggregation for keys with a head slot.
  /// The head is the snapshot plus any key that claims a free slot on
  /// first touch (until the load cap) — a key either aggregates fully in
  /// the head or flows fully to the tail, never split. Misses are staged
  /// and periodically flushed through the tail's batched update path
  /// (prepared buckets / prefetch for free on backends that have them).
  /// The only mutable state touched is this delta's — safe without
  /// synchronization from any thread.
  void Add(item_t key, count_t weight) {
    if (weight == 0) return;
    ++tuple_count_;
    Slot& slot = ProbeSlot(key);
    if (slot.used) {
      slot.weight += weight;
      head_weight_ += weight;
      return;
    }
    if (head_size_ < claim_limit_) {
      slot.used = true;
      slot.key = key;
      slot.weight = weight;
      ++head_size_;
      head_weight_ += weight;
      return;
    }
    tail_weight_ += weight;
    if (tail_sampler_.active()) {
      if (!tail_sampler_.ShouldApply()) {
        ++sampled_skips_;
        return;
      }
      // Scale by 1/p (stochastically rounded) so the tail sketch stays
      // unbiased; clamp at the Tuple weight ceiling — the sketch's own
      // saturating adds would cap there anyway.
      weight = static_cast<count_t>(std::min<delta_t>(
          tail_sampler_.ScaleDelta(static_cast<delta_t>(weight)),
          static_cast<delta_t>(~count_t{0})));
    }
    misses_.push_back(Tuple{key, weight});
    if (misses_.size() >= kMissFlushBatch) FlushMisses();
  }

  /// Batched Add.
  void AddBatch(std::span<const Tuple> tuples) {
    for (const Tuple& t : tuples) Add(t.key, t.value);
    FlushMisses();
  }

  /// Drains staged misses into the tail sketch and candidate summary.
  /// ApplyDelta calls this before reading tail(); callers that hand the
  /// delta to another thread flush first so the receiver sees a sealed
  /// tail.
  void FlushMisses() {
    if (misses_.empty()) return;
    tail_.UpdateBatch(misses_);
    for (const Tuple& t : misses_) candidates_.Update(t.key, t.value);
    tail_updates_ += misses_.size();
    misses_.clear();
  }

  /// Whether `key` aggregated in this delta's head — a snapshot member
  /// or a first-touch claim (regardless of accumulated weight). Keys for
  /// which this is true contributed nothing to the tail sketch.
  bool HeadContains(item_t key) const {
    // const_cast-free re-probe: ProbeSlot only reads until it decides.
    uint32_t index = (key * 2654435761u) & mask_;
    for (;;) {
      const Slot& slot = slots_[index];
      if (!slot.used) return false;
      if (slot.key == key) return true;
      index = (index + 1) & mask_;
    }
  }

  /// Visits every head-snapshot entry that accumulated weight.
  template <typename Fn>
  void ForEachHead(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.used && slot.weight != 0) fn(slot.key, slot.weight);
    }
  }

  /// Visits the heavy tail keys this delta observed — ApplyDelta's
  /// admission candidates. Counts are MG lower bounds on the key's tail
  /// occurrences within this delta. Disjoint from the head snapshot by
  /// construction (head hits never reach the tail path).
  template <typename Fn>
  void ForEachCandidate(Fn&& fn) const {
    candidates_.ForEach(std::forward<Fn>(fn));
  }

  /// Staged-miss batch size: big enough for the tail's prepared-update
  /// prefetch to pay off, small enough to stay cache-resident.
  static constexpr size_t kMissFlushBatch = 512;

  /// Default head-table size. ~24 KB per delta: large enough that the
  /// warm tail of a skewed stream aggregates exactly instead of paying a
  /// full sketch update per arrival, small enough to stay L2-resident
  /// next to the delta tail.
  static constexpr uint32_t kDefaultHeadSlots = 1024;

  /// First-touch claims stop at 5/8 load so miss probes stay short.
  static constexpr uint32_t kClaimLoadNum = 5;
  static constexpr uint32_t kClaimLoadDen = 8;

  /// Enables NitroSketch-style sampling of the *tail* path: each miss
  /// is applied with probability `rate` and scaled by 1/rate, elided
  /// otherwise. Head aggregation stays exact and tail_weight() keeps
  /// the true (unscaled) mass, so ApplyDelta's inflation and weight
  /// accounting are unaffected; only the tail sketch contents become
  /// unbiased-but-not-one-sided (ALGORITHMS.md §8). Rate is quantized
  /// to permille; 1.0 leaves the path bit-identical to unsampled.
  void SetTailSampleRate(double rate, uint64_t seed) {
    tail_sampler_ = GeometricSampler(seed);
    tail_sampler_.SetPermille(static_cast<uint32_t>(rate * 1000.0 + 0.5));
  }
  void SetTailSamplePermille(uint32_t permille, uint64_t seed) {
    tail_sampler_ = GeometricSampler(seed);
    tail_sampler_.SetPermille(permille);
  }
  /// Tail tuples elided by sampling (their mass still counts in
  /// tail_weight(), scaled compensation covers it in expectation).
  uint64_t sampled_skips() const { return sampled_skips_; }
  uint32_t tail_sample_permille() const { return tail_sampler_.permille(); }

  bool Empty() const { return tuple_count_ == 0; }
  uint64_t tuple_count() const { return tuple_count_; }
  uint64_t head_weight() const { return head_weight_; }
  uint64_t tail_weight() const { return tail_weight_; }
  uint64_t tail_updates() const { return tail_updates_; }
  uint32_t head_size() const { return head_size_; }
  /// The tail sketch. Only complete after FlushMisses().
  const SketchT& tail() const { return tail_; }

 private:
  struct Slot {
    item_t key = 0;
    uint64_t weight = 0;
    bool used = false;
  };

  /// Linear probe to `key`'s slot or the first free slot. The table
  /// never grows and claims stop at kClaimLoadNum/Den load, so a miss
  /// always terminates at an unused slot.
  Slot& ProbeSlot(item_t key) {
    uint32_t index = (key * 2654435761u) & mask_;
    for (;;) {
      Slot& slot = slots_[index];
      if (!slot.used || slot.key == key) return slot;
      index = (index + 1) & mask_;
    }
  }

  std::vector<Slot> slots_;
  uint32_t mask_ = 0;
  uint32_t head_size_ = 0;
  uint32_t claim_limit_ = 0;  ///< head_size_ cap for first-touch claims
  SketchT tail_;
  MisraGries candidates_;      ///< heavy tail keys, offered for admission
  std::vector<Tuple> misses_;  ///< staged tail tuples, <= kMissFlushBatch
  uint64_t tuple_count_ = 0;
  uint64_t head_weight_ = 0;
  uint64_t tail_weight_ = 0;
  uint64_t tail_updates_ = 0;
  GeometricSampler tail_sampler_;  ///< inactive (rate 1.0) by default
  uint64_t sampled_skips_ = 0;
};

}  // namespace asketch

#endif  // ASKETCH_CORE_DELTA_BATCH_H_
