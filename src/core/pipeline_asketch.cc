#include "src/core/pipeline_asketch.h"

#include <algorithm>
#include <stdexcept>

#include "src/obs/core_metrics.h"

namespace asketch {

PipelineASketch::PipelineASketch(const ASketchConfig& config,
                                 size_t queue_capacity,
                                 PipelineOverloadOptions overload)
    : filter_(config.filter_items),
      sketch_(CountMinConfig::FromSpaceBudget(
          internal::SketchBudgetBytes<RelaxedHeapFilter>(config),
          config.width, config.seed)),
      forward_(queue_capacity),
      reverse_(queue_capacity),
      overload_(overload) {
  ASKETCH_CHECK(!config.Validate().has_value());
  ASKETCH_CHECK(overload_.max_push_spins >= 1);
  ASKETCH_TELEMETRY_ONLY({
    // Live forward-queue occupancy, labeled per pipeline instance;
    // evaluated only when the registry is collected.
    static std::atomic<uint64_t> next_instance{0};
    const uint64_t instance =
        next_instance.fetch_add(1, std::memory_order_relaxed);
    queue_depth_gauge_id_ =
        obs::MetricsRegistry::Global().RegisterCallbackGauge(
            "asketch_pipeline_queue_depth",
            "pipeline=\"" + std::to_string(instance) + "\"",
            [this]() -> double {
              return static_cast<double>(forward_.SizeApprox());
            });
  })
  worker_ = std::thread([this] { SketchStageMain(); });
}

PipelineASketch::~PipelineASketch() {
  // Unregister first: it blocks until no Collect() is mid-callback, after
  // which nothing outside can reach this instance.
  ASKETCH_TELEMETRY_ONLY({
    obs::MetricsRegistry::Global().UnregisterCallbackGauge(
        queue_depth_gauge_id_);
    obs::PipelineMetrics& metrics = obs::PipelineMetrics::Get();
    if (stats_.degraded) metrics.degraded.Add(-1);
    if (stats_.worker_dead) metrics.worker_dead.Add(-1);
  })
  stop_.store(true, std::memory_order_release);
  worker_.join();
}

void PipelineASketch::MarkDegraded() {
  if (stats_.degraded) return;
  stats_.degraded = true;
  ASKETCH_TELEMETRY_ONLY(obs::PipelineMetrics::Get().degraded.Add(1);)
}

PipelineASketch::PushResult PipelineASketch::PushForwardUpdate(
    item_t key, count_t weight) {
  const ForwardMsg msg{ForwardKind::kUpdate, key, weight};
  uint32_t spins = 0;
  while (true) {
    if (worker_dead_.load(std::memory_order_acquire)) {
      OnWorkerDeath();
      ApplyOverload(key, weight);
      return PushResult::kOverload;
    }
    if (forward_.TryPush(msg)) {
      ++produced_;
      return PushResult::kQueued;
    }
    ++stats_.forward_full_spins;
    ASKETCH_TELEMETRY_ONLY(
        obs::PipelineMetrics::Get().forward_full_spins.Increment();)
    // Backpressure: briefly help by draining reverse messages so neither
    // side can deadlock on two full queues.
    DrainReverseQueue();
    // The drain may have accepted an exchange for this very key. If the
    // key is now filter-resident, pushing the update anyway would place
    // it in the sketch AFTER the exchange's mark — the fix-up estimate
    // would not cover it and the filter entry would under-count. Absorb
    // it into the entry's exact portion instead.
    const int32_t slot = filter_.Find(key);
    if (slot >= 0) {
      const bool was_min = filter_.NewCount(slot) == filter_.MinNewCount();
      filter_.AddToNewCount(slot, static_cast<delta_t>(weight));
      if (was_min) PublishMin();
      return PushResult::kAbsorbed;
    }
    if (++spins >= overload_.max_push_spins) {
      // No drain runs between the Find above and ApplyOverload, so the
      // key is still sketch-resident: the inline update is safe.
      MarkDegraded();
      ApplyOverload(key, weight);
      return PushResult::kOverload;
    }
  }
}

bool PipelineASketch::TryPushMark(item_t key) {
  const ForwardMsg msg{ForwardKind::kMark, key, 0};
  // Yield-only (no reverse drain): this runs inside DrainReverseQueue,
  // which must not re-enter itself.
  for (uint32_t spins = 0; spins < overload_.max_push_spins; ++spins) {
    if (worker_dead_.load(std::memory_order_acquire)) return false;
    if (forward_.TryPush(msg)) {
      ++produced_;
      return true;
    }
    ++stats_.forward_full_spins;
    ASKETCH_TELEMETRY_ONLY(
        obs::PipelineMetrics::Get().forward_full_spins.Increment();)
    std::this_thread::yield();
  }
  MarkDegraded();
  return false;
}

void PipelineASketch::PushVictimWriteback(item_t key, count_t weight) {
  const ForwardMsg msg{ForwardKind::kUpdate, key, weight};
  // Yield-only, for the same non-reentrancy reason as TryPushMark.
  for (uint32_t spins = 0; spins < overload_.max_push_spins; ++spins) {
    if (worker_dead_.load(std::memory_order_acquire)) break;
    if (forward_.TryPush(msg)) {
      ++produced_;
      return;
    }
    ++stats_.forward_full_spins;
    ASKETCH_TELEMETRY_ONLY(
        obs::PipelineMetrics::Get().forward_full_spins.Increment();)
    std::this_thread::yield();
  }
  MarkDegraded();
  ApplyOverload(key, weight);
}

void PipelineASketch::ApplyOverload(item_t key, count_t weight) {
  if (overload_.policy == OverloadPolicy::kShed) {
    stats_.shed_tuples += weight;
    ASKETCH_TELEMETRY_ONLY(
        obs::PipelineMetrics::Get().shed_weight.Add(weight);)
    return;
  }
  {
    std::lock_guard<std::mutex> lock(sketch_mutex_);
    sketch_.Update(key, static_cast<delta_t>(weight));
  }
  ++stats_.inline_applied;
  ASKETCH_TELEMETRY_ONLY(
      obs::PipelineMetrics::Get().inline_applied.Increment();)
}

void PipelineASketch::OnWorkerDeath() {
  if (!stats_.worker_dead) {
    stats_.worker_dead = true;
    ASKETCH_TELEMETRY_ONLY(
        obs::PipelineMetrics::Get().worker_dead.Add(1);)
  }
  MarkDegraded();
  if (worker_absorbed_) return;
  worker_absorbed_ = true;
  // The worker set worker_dead_ (release) after its last queue access,
  // and we read it with acquire, so taking over the consumer side of the
  // forward queue is safe. Absorb it in FIFO order: updates land in the
  // sketch exactly as the worker would have applied them, and each mark
  // resolves to an immediate fix-up whose estimate — computed after all
  // earlier queued occurrences — is exactly what the protocol promises.
  ForwardMsg msg;
  while (forward_.TryPop(&msg)) {
    switch (msg.kind) {
      case ForwardKind::kUpdate: {
        std::lock_guard<std::mutex> lock(sketch_mutex_);
        sketch_.Update(msg.key, static_cast<delta_t>(msg.weight));
        break;
      }
      case ForwardKind::kMark: {
        count_t estimate = 0;
        {
          std::lock_guard<std::mutex> lock(sketch_mutex_);
          estimate = sketch_.Estimate(msg.key);
        }
        ApplyFixup(msg.key, estimate);
        break;
      }
    }
    consumed_.fetch_add(1, std::memory_order_release);
  }
}

void PipelineASketch::Update(item_t key, delta_t delta) {
  ASKETCH_CHECK(delta >= 1);
  if (worker_dead_.load(std::memory_order_acquire)) OnWorkerDeath();
  DrainReverseQueue();
  const int32_t slot = filter_.Find(key);
  if (slot >= 0) {
    const bool was_min = filter_.NewCount(slot) == filter_.MinNewCount();
    filter_.AddToNewCount(slot, delta);
    if (was_min) PublishMin();
    ++stats_.filter_hits;
    ASKETCH_TELEMETRY_ONLY(
        obs::PipelineMetrics::Get().filter_hits.Increment();)
    return;
  }
  const count_t weight = static_cast<count_t>(
      std::min<delta_t>(delta, ~count_t{0}));
  if (!filter_.Full()) {
    filter_.Insert(key, weight, /*old_count=*/0);
    PublishMin();
    ++stats_.filter_hits;
    ASKETCH_TELEMETRY_ONLY(
        obs::PipelineMetrics::Get().filter_hits.Increment();)
    return;
  }
  switch (PushForwardUpdate(key, weight)) {
    case PushResult::kQueued:
      ++stats_.forwarded;
      ASKETCH_TELEMETRY_ONLY(
          obs::PipelineMetrics::Get().forwarded.Increment();)
      break;
    case PushResult::kAbsorbed:
      ++stats_.filter_hits;  // absorbed during backpressure
      ASKETCH_TELEMETRY_ONLY(
          obs::PipelineMetrics::Get().filter_hits.Increment();)
      break;
    case PushResult::kOverload:
      break;  // accounted as inline_applied or shed_tuples
  }
}

void PipelineASketch::ApplyFixup(item_t key, count_t estimate) {
  const int32_t slot = filter_.Find(key);
  if (slot < 0) {
    // Evicted in the meantime; the eviction already wrote the exact
    // filter-era hits back to the sketch.
    ++stats_.fixups_dropped;
    ASKETCH_TELEMETRY_ONLY(
        obs::PipelineMetrics::Get().fixups_dropped.Increment();)
    return;
  }
  const count_t old_count = filter_.OldCount(slot);
  if (estimate > old_count) {
    const count_t raise = estimate - old_count;
    // Raise both counts: the in-flight occurrences are now reflected
    // in old_count (they live in the sketch), and new_count keeps
    // the exact hits accumulated since the exchange on top.
    filter_.SetCounts(slot,
                      SaturatingAdd(filter_.NewCount(slot), raise),
                      estimate);
    PublishMin();
  }
  ++stats_.fixups_applied;
  ASKETCH_TELEMETRY_ONLY(
      obs::PipelineMetrics::Get().fixups_applied.Increment();)
}

void PipelineASketch::DrainReverseQueue() {
  ReverseMsg msg;
  while (reverse_.TryPop(&msg)) {
    switch (msg.kind) {
      case ReverseKind::kCandidate: {
        const int32_t slot = filter_.Find(msg.key);
        if (slot >= 0) {
          // Already resident (e.g. a duplicate candidate); nothing to do —
          // the pending fix-up of the first acceptance covers it.
          ++stats_.rejected_candidates;
          ASKETCH_TELEMETRY_ONLY(
              obs::PipelineMetrics::Get().rejected_candidates.Increment();)
          break;
        }
        if (filter_.size() == 0 ||
            msg.estimate <= filter_.MinNewCount()) {
          ++stats_.rejected_candidates;  // stale by the time it arrived
          ASKETCH_TELEMETRY_ONLY(
              obs::PipelineMetrics::Get().rejected_candidates.Increment();)
          break;
        }
        // Reserve the mark fence BEFORE touching the filter: if the
        // forward queue is too congested to carry it, reject the
        // candidate (it is droppable — the worker re-proposes hot keys)
        // rather than install an entry whose fix-up can never arrive.
        // Pushing the mark first is safe because this whole function runs
        // on the filter thread: no occurrence of msg.key can enter the
        // forward queue between the mark and the Insert below.
        if (!TryPushMark(msg.key)) {
          ++stats_.rejected_candidates;
          ASKETCH_TELEMETRY_ONLY(
              obs::PipelineMetrics::Get().rejected_candidates.Increment();)
          break;
        }
        const FilterEntry victim = filter_.EvictMin();
        if (victim.new_count > victim.old_count) {
          PushVictimWriteback(victim.key,
                              victim.new_count - victim.old_count);
        }
        filter_.Insert(msg.key, msg.estimate, msg.estimate);
        PublishMin();
        ++stats_.exchanges;
        ASKETCH_TELEMETRY_ONLY(
            obs::PipelineMetrics::Get().exchanges.Increment();)
        break;
      }
      case ReverseKind::kFixup: {
        ApplyFixup(msg.key, msg.estimate);
        break;
      }
    }
  }
}

void PipelineASketch::SketchStageMain() {
  try {
    SketchStageLoop();
  } catch (...) {
    // Publish the death AFTER the last queue access so the producer's
    // acquire-read of worker_dead_ licenses it to take over the consumer
    // side of the forward queue.
    worker_dead_.store(true, std::memory_order_release);
  }
}

void PipelineASketch::SketchStageLoop() {
  // Drain the forward queue in batches: one acquire/release pair covers
  // up to kDrainBatch messages, and the sketch rows of every drained
  // update are prefetched before any of them is applied, so each
  // message's w random cell accesses overlap its predecessors'.
  constexpr size_t kDrainBatch = 16;
  ForwardMsg batch[kDrainBatch];
  struct Pending {
    ReverseMsg msg;
    bool has = false;
    bool must_deliver = false;
  };
  Pending pending[kDrainBatch];
  while (true) {
    while (stall_worker_.load(std::memory_order_acquire)) {
      if (stop_.load(std::memory_order_acquire)) return;
      std::this_thread::yield();
    }
    if (kill_worker_.load(std::memory_order_acquire)) {
      // At a message boundary: nothing popped, nothing lost.
      throw std::runtime_error("PipelineASketch worker killed for testing");
    }
    const size_t got = forward_.TryPopBatch(batch, kDrainBatch);
    if (got == 0) {
      if (stop_.load(std::memory_order_acquire) && forward_.Empty()) {
        return;
      }
      std::this_thread::yield();
      continue;
    }
    {
      // Compute everything under the sketch mutex, but push nothing: a
      // producer stuck in ApplyOverload must never wait on a worker that
      // is itself waiting for reverse-queue room.
      std::lock_guard<std::mutex> lock(sketch_mutex_);
      for (size_t i = 0; i < got; ++i) {
        if (batch[i].kind == ForwardKind::kUpdate) {
          sketch_.Prefetch(batch[i].key);
        }
      }
      for (size_t i = 0; i < got; ++i) {
        const ForwardMsg& msg = batch[i];
        pending[i].has = false;
        switch (msg.kind) {
          case ForwardKind::kUpdate: {
            const count_t estimate =
                sketch_.UpdateAndEstimate(msg.key, msg.weight);
            if (estimate > min_count_.load(std::memory_order_relaxed)) {
              // Propose an exchange; droppable if the reverse queue is
              // full (the filter stage will hear about the key again).
              pending[i] = {{ReverseKind::kCandidate, msg.key, estimate},
                            true, false};
            }
            break;
          }
          case ForwardKind::kMark: {
            pending[i] = {{ReverseKind::kFixup, msg.key,
                           sketch_.Estimate(msg.key)},
                          true, true};
            break;
          }
        }
      }
    }
    for (size_t i = 0; i < got; ++i) {
      if (pending[i].has) {
        if (pending[i].must_deliver) {
          // The fix-up must not be lost: spin until it fits, bailing out
          // only on shutdown (the producer no longer drains then).
          while (!reverse_.TryPush(pending[i].msg)) {
            if (stop_.load(std::memory_order_acquire)) return;
            std::this_thread::yield();
          }
        } else {
          reverse_.TryPush(pending[i].msg);
        }
      }
      // Incremented after this message's pushes so Flush() can conclude
      // from consumed == produced that every reverse message is visible.
      consumed_.fetch_add(1, std::memory_order_release);
    }
  }
}

void PipelineASketch::Flush() {
  // Alternate between draining reverse messages (which may enqueue more
  // forward work) and waiting for the worker to catch up, until both
  // queues are empty and every produced message was consumed.
  while (true) {
    if (worker_dead_.load(std::memory_order_acquire)) {
      OnWorkerDeath();
      DrainReverseQueue();
      // Quiescence after a death is queue emptiness, not the
      // produced/consumed match: a worker that died mid-message cannot
      // retroactively complete its accounting.
      if (forward_.Empty() && reverse_.Empty()) return;
      continue;
    }
    DrainReverseQueue();
    if (consumed_.load(std::memory_order_acquire) == produced_ &&
        reverse_.Empty()) {
      // The worker may still be about to push a candidate for the last
      // consumed message — consumed_ is incremented after the push, so
      // consumed == produced implies all pushes happened; one final drain
      // and we are quiescent.
      DrainReverseQueue();
      if (consumed_.load(std::memory_order_acquire) == produced_ &&
          reverse_.Empty()) {
        return;
      }
    }
    std::this_thread::yield();
  }
}

count_t PipelineASketch::Estimate(item_t key) const {
  const int32_t slot = filter_.Find(key);
  if (slot >= 0) return filter_.NewCount(slot);
  return sketch_.Estimate(key);
}

std::vector<FilterEntry> PipelineASketch::TopK() const {
  std::vector<FilterEntry> entries;
  entries.reserve(filter_.size());
  filter_.ForEach([&entries](const FilterEntry& e) {
    entries.push_back(e);
  });
  std::sort(entries.begin(), entries.end(),
            [](const FilterEntry& a, const FilterEntry& b) {
              if (a.new_count != b.new_count) {
                return a.new_count > b.new_count;
              }
              return a.key < b.key;
            });
  return entries;
}

}  // namespace asketch
