#include "src/core/pipeline_asketch.h"

#include <algorithm>

namespace asketch {

PipelineASketch::PipelineASketch(const ASketchConfig& config,
                                 size_t queue_capacity)
    : filter_(config.filter_items),
      sketch_(CountMinConfig::FromSpaceBudget(
          internal::SketchBudgetBytes<RelaxedHeapFilter>(config),
          config.width, config.seed)),
      forward_(queue_capacity),
      reverse_(queue_capacity) {
  ASKETCH_CHECK(!config.Validate().has_value());
  worker_ = std::thread([this] { SketchStageMain(); });
}

PipelineASketch::~PipelineASketch() {
  stop_.store(true, std::memory_order_release);
  worker_.join();
}

void PipelineASketch::PushForward(const ForwardMsg& msg) {
  while (!forward_.TryPush(msg)) {
    // Backpressure: the filter stage briefly helps by draining reverse
    // messages so neither side can deadlock on two full queues.
    DrainReverseQueue();
  }
  ++produced_;
}

bool PipelineASketch::PushForwardUpdate(item_t key, count_t weight) {
  ForwardMsg msg{ForwardKind::kUpdate, key, weight};
  while (!forward_.TryPush(msg)) {
    DrainReverseQueue();
    // The drain may have accepted an exchange for this very key. If the
    // key is now filter-resident, pushing the update anyway would place
    // it in the sketch AFTER the exchange's mark — the fix-up estimate
    // would not cover it and the filter entry would under-count. Absorb
    // it into the entry's exact portion instead.
    const int32_t slot = filter_.Find(key);
    if (slot >= 0) {
      const bool was_min = filter_.NewCount(slot) == filter_.MinNewCount();
      filter_.AddToNewCount(slot, static_cast<delta_t>(weight));
      if (was_min) PublishMin();
      return false;
    }
  }
  ++produced_;
  return true;
}

void PipelineASketch::Update(item_t key, delta_t delta) {
  ASKETCH_CHECK(delta >= 1);
  DrainReverseQueue();
  const int32_t slot = filter_.Find(key);
  if (slot >= 0) {
    const bool was_min = filter_.NewCount(slot) == filter_.MinNewCount();
    filter_.AddToNewCount(slot, delta);
    if (was_min) PublishMin();
    ++stats_.filter_hits;
    return;
  }
  const count_t weight = static_cast<count_t>(
      std::min<delta_t>(delta, ~count_t{0}));
  if (!filter_.Full()) {
    filter_.Insert(key, weight, /*old_count=*/0);
    PublishMin();
    ++stats_.filter_hits;
    return;
  }
  if (PushForwardUpdate(key, weight)) {
    ++stats_.forwarded;
  } else {
    ++stats_.filter_hits;  // absorbed during backpressure
  }
}

void PipelineASketch::DrainReverseQueue() {
  ReverseMsg msg;
  while (reverse_.TryPop(&msg)) {
    const int32_t slot = filter_.Find(msg.key);
    switch (msg.kind) {
      case ReverseKind::kCandidate: {
        if (slot >= 0) {
          // Already resident (e.g. a duplicate candidate); nothing to do —
          // the pending fix-up of the first acceptance covers it.
          ++stats_.rejected_candidates;
          break;
        }
        if (filter_.size() == 0 ||
            msg.estimate <= filter_.MinNewCount()) {
          ++stats_.rejected_candidates;  // stale by the time it arrived
          break;
        }
        const FilterEntry victim = filter_.EvictMin();
        if (victim.new_count > victim.old_count) {
          // Same hazard as in Update(): a nested drain during
          // backpressure can re-admit the victim; its exact hits must
          // then stay in the filter rather than race past a newer mark.
          PushForwardUpdate(victim.key,
                            victim.new_count - victim.old_count);
        }
        filter_.Insert(msg.key, msg.estimate, msg.estimate);
        PublishMin();
        // Fence the queue: when the sketch stage reaches this mark, all
        // earlier occurrences of the key are in the sketch and a fix-up
        // with the refreshed estimate comes back.
        PushForward(ForwardMsg{ForwardKind::kMark, msg.key, 0});
        ++stats_.exchanges;
        break;
      }
      case ReverseKind::kFixup: {
        if (slot < 0) {
          // Evicted in the meantime; the eviction already wrote the exact
          // filter-era hits back to the sketch.
          ++stats_.fixups_dropped;
          break;
        }
        const count_t old_count = filter_.OldCount(slot);
        if (msg.estimate > old_count) {
          const count_t raise = msg.estimate - old_count;
          // Raise both counts: the in-flight occurrences are now reflected
          // in old_count (they live in the sketch), and new_count keeps
          // the exact hits accumulated since the exchange on top.
          filter_.SetCounts(slot,
                            SaturatingAdd(filter_.NewCount(slot), raise),
                            msg.estimate);
          PublishMin();
        }
        ++stats_.fixups_applied;
        break;
      }
    }
  }
}

void PipelineASketch::SketchStageMain() {
  // Drain the forward queue in batches: one acquire/release pair covers
  // up to kDrainBatch messages, and the sketch rows of every drained
  // update are prefetched before any of them is applied, so each
  // message's w random cell accesses overlap its predecessors'.
  constexpr size_t kDrainBatch = 16;
  ForwardMsg batch[kDrainBatch];
  while (true) {
    const size_t got = forward_.TryPopBatch(batch, kDrainBatch);
    if (got == 0) {
      if (stop_.load(std::memory_order_acquire) && forward_.Empty()) {
        return;
      }
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < got; ++i) {
      if (batch[i].kind == ForwardKind::kUpdate) {
        sketch_.Prefetch(batch[i].key);
      }
    }
    for (size_t i = 0; i < got; ++i) {
      const ForwardMsg& msg = batch[i];
      switch (msg.kind) {
        case ForwardKind::kUpdate: {
          const count_t estimate =
              sketch_.UpdateAndEstimate(msg.key, msg.weight);
          if (estimate > min_count_.load(std::memory_order_relaxed)) {
            // Propose an exchange; drop the proposal if the reverse queue
            // is full (the filter stage will hear about the key again).
            reverse_.TryPush(
                ReverseMsg{ReverseKind::kCandidate, msg.key, estimate});
          }
          break;
        }
        case ForwardKind::kMark: {
          const count_t estimate = sketch_.Estimate(msg.key);
          // The fix-up must not be lost: spin until it fits.
          while (!reverse_.TryPush(
              ReverseMsg{ReverseKind::kFixup, msg.key, estimate})) {
            std::this_thread::yield();
          }
          break;
        }
      }
      // Incremented after this message's pushes so Flush() can conclude
      // from consumed == produced that every reverse message is visible.
      consumed_.fetch_add(1, std::memory_order_release);
    }
  }
}

void PipelineASketch::Flush() {
  // Alternate between draining reverse messages (which may enqueue more
  // forward work) and waiting for the worker to catch up, until both
  // queues are empty and every produced message was consumed.
  while (true) {
    DrainReverseQueue();
    if (consumed_.load(std::memory_order_acquire) == produced_ &&
        reverse_.Empty()) {
      // The worker may still be about to push a candidate for the last
      // consumed message — consumed_ is incremented after the push, so
      // consumed == produced implies all pushes happened; one final drain
      // and we are quiescent.
      DrainReverseQueue();
      if (consumed_.load(std::memory_order_acquire) == produced_ &&
          reverse_.Empty()) {
        return;
      }
    }
    std::this_thread::yield();
  }
}

count_t PipelineASketch::Estimate(item_t key) const {
  const int32_t slot = filter_.Find(key);
  if (slot >= 0) return filter_.NewCount(slot);
  return sketch_.Estimate(key);
}

std::vector<FilterEntry> PipelineASketch::TopK() const {
  std::vector<FilterEntry> entries;
  entries.reserve(filter_.size());
  filter_.ForEach([&entries](const FilterEntry& e) {
    entries.push_back(e);
  });
  std::sort(entries.begin(), entries.end(),
            [](const FilterEntry& a, const FilterEntry& b) {
              if (a.new_count != b.new_count) {
                return a.new_count > b.new_count;
              }
              return a.key < b.key;
            });
  return entries;
}

}  // namespace asketch
