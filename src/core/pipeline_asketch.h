// Pipeline-parallel ASketch (§6.2).
//
// The filter stage runs on the caller's thread (core C0) and the
// Count-Min stage on a dedicated worker thread (core C1); they communicate
// over two SPSC queues instead of sharing memory:
//
//   forward  (C0 -> C1): kUpdate  — a tuple that missed the filter,
//                        kMark    — a queue fence used by the fix-up
//                                   protocol below.
//   reverse  (C1 -> C0): kCandidate — a key whose sketch estimate exceeds
//                                     the filter's minimum (exchange
//                                     proposal),
//                        kFixup     — refreshed estimate for a key that
//                                     was recently moved into the filter.
//
// C0 additionally publishes the filter's current minimum count through an
// atomic, which C1 reads to decide when to propose an exchange — this is
// the "C0 forwards the minimum count whenever it changes" message of the
// paper, collapsed into a shared word.
//
// Exchange fix-up protocol. When C0 accepts a candidate (key, est) it
// inserts the key with new = old = est, but occurrences of the key that
// were already in the forward queue at that moment are only reflected in
// the *sketch*, not in `est` — querying the filter would under-count them
// and break the one-sided guarantee. So C0 also enqueues kMark(key): when
// C1 drains past the mark, every earlier occurrence has been applied to
// the sketch, and C1 replies kFixup(key, est2) with the refreshed
// estimate (est2 >= est; cells only grow). C0 raises the entry's counts
// by (est2 - old) — the filter hits that accumulated in between stay
// intact — restoring new_count >= true count. If the key was evicted
// before the fix-up arrives, its exact filter-era hits were already
// written back to the sketch by the eviction, so the fix-up is simply
// dropped.
//
// Deletions are not supported in the pipeline (Appendix A's protocol is
// inherently sequential); use the single-threaded ASketch when the stream
// contains negative updates.

#ifndef ASKETCH_CORE_PIPELINE_ASKETCH_H_
#define ASKETCH_CORE_PIPELINE_ASKETCH_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/core/asketch.h"
#include "src/core/spsc_queue.h"
#include "src/filter/heap_filter.h"
#include "src/sketch/count_min.h"

namespace asketch {

/// Statistics of a pipeline run.
struct PipelineStats {
  uint64_t filter_hits = 0;
  uint64_t forwarded = 0;        ///< tuples sent to the sketch stage
  uint64_t exchanges = 0;        ///< accepted exchange candidates
  uint64_t rejected_candidates = 0;
  uint64_t fixups_applied = 0;
  uint64_t fixups_dropped = 0;
};

/// ASketch with the filter and sketch stages decoupled onto two cores.
/// The filter is the Relaxed-Heap design (the paper's default). The
/// caller's thread is the filter stage; Update() never blocks on the
/// sketch stage except when the forward queue is full (backpressure).
class PipelineASketch {
 public:
  /// Builds from the same space-budget config as the sequential ASketch;
  /// `queue_capacity` sizes each SPSC ring.
  explicit PipelineASketch(const ASketchConfig& config,
                           size_t queue_capacity = 4096);

  /// Joins the sketch stage.
  ~PipelineASketch();

  PipelineASketch(const PipelineASketch&) = delete;
  PipelineASketch& operator=(const PipelineASketch&) = delete;

  /// Processes one arrival of `key` with weight `delta` (>= 1 — see the
  /// file comment on deletions).
  void Update(item_t key, delta_t delta = 1);

  /// Drains both queues and blocks until the sketch stage is idle.
  /// Required before Estimate()/TopK().
  void Flush();

  /// Point query; only valid on a flushed pipeline.
  count_t Estimate(item_t key) const;

  /// Top-k report from the filter; only valid on a flushed pipeline.
  std::vector<FilterEntry> TopK() const;

  const PipelineStats& stats() const { return stats_; }
  size_t MemoryUsageBytes() const {
    return filter_.MemoryUsageBytes() + sketch_.MemoryUsageBytes();
  }

 private:
  enum class ForwardKind : uint8_t { kUpdate, kMark };
  struct ForwardMsg {
    ForwardKind kind;
    item_t key;
    count_t weight;
  };
  enum class ReverseKind : uint8_t { kCandidate, kFixup };
  struct ReverseMsg {
    ReverseKind kind;
    item_t key;
    count_t estimate;
  };

  /// Sketch-stage main loop (runs on the worker thread).
  void SketchStageMain();

  /// Applies all pending reverse messages on the filter stage.
  void DrainReverseQueue();

  /// Publishes the filter's minimum to the sketch stage.
  void PublishMin() {
    min_count_.store(filter_.size() > 0 ? filter_.MinNewCount() : 0,
                     std::memory_order_relaxed);
  }

  void PushForward(const ForwardMsg& msg);

  /// Pushes a kUpdate, re-checking on every backpressure spin whether a
  /// nested reverse-drain admitted `key` into the filter — in that case
  /// the weight is absorbed into the filter entry instead (returns
  /// false; returns true when the message was enqueued).
  bool PushForwardUpdate(item_t key, count_t weight);

  RelaxedHeapFilter filter_;
  CountMin sketch_;  // owned by the worker thread between start and join

  SpscQueue<ForwardMsg> forward_;
  SpscQueue<ReverseMsg> reverse_;
  std::atomic<count_t> min_count_{0};
  std::atomic<bool> stop_{false};
  // Worker-side progress accounting for Flush(): number of forward
  // messages consumed and fully processed.
  std::atomic<uint64_t> consumed_{0};
  uint64_t produced_ = 0;  // filter-stage-owned

  PipelineStats stats_;
  std::thread worker_;
};

}  // namespace asketch

#endif  // ASKETCH_CORE_PIPELINE_ASKETCH_H_
