// Pipeline-parallel ASketch (§6.2).
//
// The filter stage runs on the caller's thread (core C0) and the
// Count-Min stage on a dedicated worker thread (core C1); they communicate
// over two SPSC queues instead of sharing memory:
//
//   forward  (C0 -> C1): kUpdate  — a tuple that missed the filter,
//                        kMark    — a queue fence used by the fix-up
//                                   protocol below.
//   reverse  (C1 -> C0): kCandidate — a key whose sketch estimate exceeds
//                                     the filter's minimum (exchange
//                                     proposal),
//                        kFixup     — refreshed estimate for a key that
//                                     was recently moved into the filter.
//
// C0 additionally publishes the filter's current minimum count through an
// atomic, which C1 reads to decide when to propose an exchange — this is
// the "C0 forwards the minimum count whenever it changes" message of the
// paper, collapsed into a shared word.
//
// Exchange fix-up protocol. When C0 accepts a candidate (key, est) it
// inserts the key with new = old = est, but occurrences of the key that
// were already in the forward queue at that moment are only reflected in
// the *sketch*, not in `est` — querying the filter would under-count them
// and break the one-sided guarantee. So C0 also enqueues kMark(key): when
// C1 drains past the mark, every earlier occurrence has been applied to
// the sketch, and C1 replies kFixup(key, est2) with the refreshed
// estimate (est2 >= est; cells only grow). C0 raises the entry's counts
// by (est2 - old) — the filter hits that accumulated in between stay
// intact — restoring new_count >= true count. If the key was evicted
// before the fix-up arrives, its exact filter-era hits were already
// written back to the sketch by the eviction, so the fix-up is simply
// dropped.
//
// Overload and fault tolerance. Every wait on a full forward queue is
// bounded by PipelineOverloadOptions::max_push_spins. When the budget is
// exhausted (a slow or wedged consumer), the producer degrades instead of
// spinning forever: under OverloadPolicy::kInlineApply it applies the
// tuple to the shared sketch itself (the sketch is mutex-guarded for
// exactly this crossover, and the one-sided guarantee is preserved);
// under OverloadPolicy::kShed it drops the tuple and counts the shed
// weight, trading accuracy for producer throughput. If the worker thread
// dies (an exception escapes the sketch stage), the producer detects the
// flag, absorbs the orphaned forward queue in FIFO order — marks included,
// so pending fix-ups still resolve — and from then on runs effectively
// single-threaded via the inline path. All degradation is reported in
// PipelineStats (forward_full_spins, inline_applied, shed_tuples,
// degraded, worker_dead); Update() and Flush() always terminate.
//
// Deletions are not supported in the pipeline (Appendix A's protocol is
// inherently sequential); use the single-threaded ASketch when the stream
// contains negative updates.

#ifndef ASKETCH_CORE_PIPELINE_ASKETCH_H_
#define ASKETCH_CORE_PIPELINE_ASKETCH_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/core/asketch.h"
#include "src/core/spsc_queue.h"
#include "src/filter/heap_filter.h"
#include "src/sketch/count_min.h"

namespace asketch {

/// What the producer does with a tuple once the bounded wait on the full
/// forward queue is exhausted.
enum class OverloadPolicy : uint8_t {
  /// Apply the tuple to the shared sketch inline (mutex-guarded). Keeps
  /// the one-sided estimate guarantee; costs producer cycles.
  kInlineApply,
  /// Drop the tuple and account it in PipelineStats::shed_tuples. The
  /// guarantee then only covers non-shed weight.
  kShed,
};

/// Overload policy knobs for PipelineASketch.
struct PipelineOverloadOptions {
  OverloadPolicy policy = OverloadPolicy::kInlineApply;
  /// Failed TryPush attempts tolerated per message before degrading.
  uint32_t max_push_spins = 256;
};

/// Statistics of a pipeline run.
struct PipelineStats {
  uint64_t filter_hits = 0;
  uint64_t forwarded = 0;        ///< tuples sent to the sketch stage
  uint64_t exchanges = 0;        ///< accepted exchange candidates
  uint64_t rejected_candidates = 0;
  uint64_t fixups_applied = 0;
  uint64_t fixups_dropped = 0;
  uint64_t forward_full_spins = 0;  ///< failed pushes onto a full queue
  uint64_t inline_applied = 0;   ///< tuples applied inline under overload
  uint64_t shed_tuples = 0;      ///< total weight dropped by kShed
  bool degraded = false;         ///< a bounded wait was ever exhausted
  bool worker_dead = false;      ///< sketch stage died; inline fallback
};

/// ASketch with the filter and sketch stages decoupled onto two cores.
/// The filter is the Relaxed-Heap design (the paper's default). The
/// caller's thread is the filter stage; every Update() wait is bounded
/// (see the overload section of the file comment).
class PipelineASketch {
 public:
  /// Builds from the same space-budget config as the sequential ASketch;
  /// `queue_capacity` sizes each SPSC ring and `overload` bounds the
  /// producer's waits.
  explicit PipelineASketch(const ASketchConfig& config,
                           size_t queue_capacity = 4096,
                           PipelineOverloadOptions overload = {});

  /// Joins the sketch stage (safe even if it already died).
  ~PipelineASketch();

  PipelineASketch(const PipelineASketch&) = delete;
  PipelineASketch& operator=(const PipelineASketch&) = delete;

  /// Processes one arrival of `key` with weight `delta` (>= 1 — see the
  /// file comment on deletions). Terminates even under overload or
  /// worker death.
  void Update(item_t key, delta_t delta = 1);

  /// Drains both queues and blocks until the sketch stage is idle (or,
  /// if the worker died, until the orphaned queues are absorbed).
  /// Required before Estimate()/TopK().
  void Flush();

  /// Point query; only valid on a flushed pipeline.
  count_t Estimate(item_t key) const;

  /// Top-k report from the filter; only valid on a flushed pipeline.
  std::vector<FilterEntry> TopK() const;

  const PipelineStats& stats() const { return stats_; }
  size_t MemoryUsageBytes() const {
    return filter_.MemoryUsageBytes() + sketch_.MemoryUsageBytes();
  }

  /// True once the sketch stage has terminated abnormally.
  bool worker_dead() const {
    return worker_dead_.load(std::memory_order_acquire);
  }

  /// Test hook: parks (true) / unparks (false) the sketch stage at its
  /// loop top, simulating an arbitrarily slow consumer.
  void StallWorkerForTesting(bool stalled) {
    stall_worker_.store(stalled, std::memory_order_release);
  }

  /// Test hook: makes the sketch stage throw at its next loop top,
  /// simulating a worker crash (at a message boundary, so no queued
  /// weight is lost).
  void KillWorkerForTesting() {
    kill_worker_.store(true, std::memory_order_release);
  }

 private:
  enum class ForwardKind : uint8_t { kUpdate, kMark };
  struct ForwardMsg {
    ForwardKind kind;
    item_t key;
    count_t weight;
  };
  enum class ReverseKind : uint8_t { kCandidate, kFixup };
  struct ReverseMsg {
    ReverseKind kind;
    item_t key;
    count_t estimate;
  };
  enum class PushResult : uint8_t {
    kQueued,    ///< enqueued onto the forward queue
    kAbsorbed,  ///< key became filter-resident mid-wait; weight absorbed
    kOverload,  ///< wait budget exhausted; handled by ApplyOverload
  };

  /// Sketch-stage entry point: runs the loop, flags worker_dead_ if an
  /// exception escapes.
  void SketchStageMain();
  void SketchStageLoop();

  /// Applies all pending reverse messages on the filter stage. Never
  /// re-enters itself (bounded pushes only), so no message can observe a
  /// half-applied exchange.
  void DrainReverseQueue();

  /// Applies a kFixup to the filter (shared with the worker-death path).
  void ApplyFixup(item_t key, count_t estimate);

  /// Publishes the filter's minimum to the sketch stage.
  void PublishMin() {
    min_count_.store(filter_.size() > 0 ? filter_.MinNewCount() : 0,
                     std::memory_order_relaxed);
  }

  /// Bounded-wait push of a kUpdate; see PushResult.
  PushResult PushForwardUpdate(item_t key, count_t weight);

  /// Bounded-wait push of a kMark fence; false means the candidate that
  /// needed it must be rejected (the worker will re-propose the key).
  bool TryPushMark(item_t key);

  /// Bounded-wait push of an evicted victim's exact hits; falls back to
  /// ApplyOverload so the weight is never silently lost under
  /// kInlineApply.
  void PushVictimWriteback(item_t key, count_t weight);

  /// Overload endgame for one tuple: inline sketch update or shed.
  void ApplyOverload(item_t key, count_t weight);

  /// Latches stats_.degraded (and the registry gauge) on its first
  /// false -> true transition. Filter-stage-owned, like stats_.
  void MarkDegraded();

  /// Producer-side takeover after the worker died: absorbs the orphaned
  /// forward queue in FIFO order (updates into the sketch, marks into
  /// immediate fix-ups). Idempotent.
  void OnWorkerDeath();

  RelaxedHeapFilter filter_;
  CountMin sketch_;  // guarded by sketch_mutex_ once both sides touch it

  SpscQueue<ForwardMsg> forward_;
  SpscQueue<ReverseMsg> reverse_;
  std::atomic<count_t> min_count_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> worker_dead_{false};
  std::atomic<bool> stall_worker_{false};
  std::atomic<bool> kill_worker_{false};
  // Serializes sketch access between the worker's batch application and
  // the producer's inline-apply / takeover paths.
  std::mutex sketch_mutex_;
  // Worker-side progress accounting for Flush(): number of forward
  // messages consumed and fully processed.
  std::atomic<uint64_t> consumed_{0};
  uint64_t produced_ = 0;       // filter-stage-owned
  bool worker_absorbed_ = false;  // OnWorkerDeath() ran (filter-stage-owned)

  PipelineOverloadOptions overload_;
  PipelineStats stats_;
  /// Registry id of this instance's queue-depth callback gauge
  /// (`asketch_pipeline_queue_depth{pipeline="N"}`); 0 when telemetry is
  /// compiled out.
  uint64_t queue_depth_gauge_id_ = 0;
  std::thread worker_;
};

}  // namespace asketch

#endif  // ASKETCH_CORE_PIPELINE_ASKETCH_H_
