// Pipeline-parallel Holistic UDAFs — the "Parallel Hollistic UDAFs"
// baseline of Fig. 12.
//
// Stage C0 (caller's thread) runs the low-level aggregation table; when
// a new key overflows the full table, the whole table is flushed through
// an SPSC queue to stage C1, which applies the entries to the Count-Min.
// Unlike ASketch's pipeline there is no reverse traffic at all — the
// table is a plain buffer, so the only coordination is the flush stream.
// As the paper notes, C0 "after flushing the low-level aggregator table,
// can immediately start processing next items from the input stream".

#ifndef ASKETCH_CORE_PIPELINE_HOLISTIC_UDAF_H_
#define ASKETCH_CORE_PIPELINE_HOLISTIC_UDAF_H_

#include <atomic>
#include <thread>

#include "src/common/bit_util.h"
#include "src/common/check.h"
#include "src/common/simd_scan.h"
#include "src/common/types.h"
#include "src/core/spsc_queue.h"
#include "src/sketch/holistic_udaf.h"

namespace asketch {

/// Holistic UDAFs with the aggregation table and the sketch on separate
/// threads.
class PipelineHolisticUdaf {
 public:
  explicit PipelineHolisticUdaf(const HolisticUdafConfig& config,
                                size_t queue_capacity = 4096)
      : table_capacity_(config.table_capacity),
        sketch_(config.sketch),
        queue_(queue_capacity) {
    ASKETCH_CHECK(!config.Validate().has_value());
    const size_t padded = RoundUp(table_capacity_, kSimdBlockElements);
    ids_.assign(padded, 0);
    counts_.assign(padded, 0);
    worker_ = std::thread([this] { SketchStageMain(); });
  }

  ~PipelineHolisticUdaf() {
    stop_.store(true, std::memory_order_release);
    worker_.join();
  }

  PipelineHolisticUdaf(const PipelineHolisticUdaf&) = delete;
  PipelineHolisticUdaf& operator=(const PipelineHolisticUdaf&) = delete;

  /// Processes one arrival (weight >= 1).
  void Update(item_t key, count_t weight = 1) {
    ASKETCH_CHECK(weight >= 1);
    const int32_t slot = FindKey(ids_.data(), ids_.size(), size_, key);
    if (slot >= 0) {
      counts_[slot] = SaturatingAdd(counts_[slot],
                                    static_cast<delta_t>(weight));
      return;
    }
    if (size_ == table_capacity_) FlushTable();
    ids_[size_] = key;
    counts_[size_] = weight;
    ++size_;
  }

  /// Drains the table and blocks until the sketch stage is idle.
  void Flush() {
    FlushTable();
    while (consumed_.load(std::memory_order_acquire) != produced_) {
      std::this_thread::yield();
    }
  }

  /// Point query; only valid on a flushed pipeline.
  count_t Estimate(item_t key) const { return sketch_.Estimate(key); }

  uint64_t flush_count() const { return flush_count_; }

 private:
  void FlushTable() {
    for (uint32_t i = 0; i < size_; ++i) {
      const Tuple entry{ids_[i], counts_[i]};
      while (!queue_.TryPush(entry)) {
        std::this_thread::yield();
      }
      ++produced_;
    }
    size_ = 0;
    ++flush_count_;
  }

  void SketchStageMain() {
    Tuple entry;
    while (true) {
      if (!queue_.TryPop(&entry)) {
        if (stop_.load(std::memory_order_acquire) && queue_.Empty()) {
          return;
        }
        std::this_thread::yield();
        continue;
      }
      sketch_.Update(entry.key, entry.value);
      consumed_.fetch_add(1, std::memory_order_release);
    }
  }

  uint32_t table_capacity_;
  uint32_t size_ = 0;
  uint64_t flush_count_ = 0;
  std::vector<uint32_t> ids_;
  std::vector<count_t> counts_;
  CountMin sketch_;
  SpscQueue<Tuple> queue_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> consumed_{0};
  uint64_t produced_ = 0;
  std::thread worker_;
};

}  // namespace asketch

#endif  // ASKETCH_CORE_PIPELINE_HOLISTIC_UDAF_H_
