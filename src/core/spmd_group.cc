#include "src/core/spmd_group.h"

#include <algorithm>
#include <thread>

#include "src/obs/core_metrics.h"
#include "src/obs/trace.h"

namespace asketch {

namespace {

/// Runs fn(kernel_index, chunk) on one thread per kernel over contiguous
/// chunks of `stream`. Each worker reports its partition size and wall
/// time under a `worker="i"` label, so per-kernel imbalance is visible in
/// the exported metrics.
template <typename Fn>
void ParallelChunks(std::span<const Tuple> stream, uint32_t num_kernels,
                    Fn&& fn) {
  const size_t chunk = (stream.size() + num_kernels - 1) / num_kernels;
  std::vector<std::thread> threads;
  threads.reserve(num_kernels);
  for (uint32_t i = 0; i < num_kernels; ++i) {
    const size_t begin = std::min(stream.size(), i * chunk);
    const size_t end = std::min(stream.size(), begin + chunk);
    threads.emplace_back(
        [&fn, i, part = stream.subspan(begin, end - begin)] {
          ASKETCH_TRACE_SPAN("spmd_worker");
          ASKETCH_TELEMETRY_ONLY(
              const auto start = std::chrono::steady_clock::now();)
          fn(i, part);
          ASKETCH_TELEMETRY_ONLY({
            const std::string label =
                "worker=\"" + std::to_string(i) + "\"";
            obs::MetricsRegistry& registry =
                obs::MetricsRegistry::Global();
            registry.GetCounter("asketch_spmd_tuples_total", label)
                .Add(part.size());
            registry.GetHistogram("asketch_spmd_process_ns", label)
                .Record(static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count()));
          })
        });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace

SpmdAsketchGroup::SpmdAsketchGroup(uint32_t num_kernels,
                                   const ASketchConfig& config) {
  ASKETCH_CHECK(num_kernels >= 1);
  kernels_.reserve(num_kernels);
  for (uint32_t i = 0; i < num_kernels; ++i) {
    ASketchConfig kernel_config = config;
    kernel_config.seed = config.seed + i;
    kernels_.push_back(
        MakeASketchCountMin<RelaxedHeapFilter>(kernel_config));
  }
}

void SpmdAsketchGroup::Process(std::span<const Tuple> stream) {
  // Each kernel ingests its partition through the batched fast path
  // (chunked SIMD filter probes + sketch-row prefetch); state is
  // bit-identical to the per-tuple Update loop.
  ParallelChunks(stream, num_kernels(),
                 [this](uint32_t i, std::span<const Tuple> part) {
                   kernels_[i].UpdateBatch(part);
                 });
}

count_t SpmdAsketchGroup::Estimate(item_t key) const {
  count_t sum = 0;
  for (const auto& kernel : kernels_) {
    sum = SaturatingAdd(sum, static_cast<delta_t>(kernel.Estimate(key)));
  }
  return sum;
}

size_t SpmdAsketchGroup::MemoryUsageBytes() const {
  size_t total = 0;
  for (const auto& kernel : kernels_) total += kernel.MemoryUsageBytes();
  return total;
}

SpmdCountMinGroup::SpmdCountMinGroup(uint32_t num_kernels,
                                     const CountMinConfig& config) {
  ASKETCH_CHECK(num_kernels >= 1);
  kernels_.reserve(num_kernels);
  for (uint32_t i = 0; i < num_kernels; ++i) {
    CountMinConfig kernel_config = config;
    kernel_config.seed = config.seed + i;
    kernels_.emplace_back(kernel_config);
  }
}

void SpmdCountMinGroup::Process(std::span<const Tuple> stream) {
  ParallelChunks(stream, num_kernels(),
                 [this](uint32_t i, std::span<const Tuple> part) {
                   kernels_[i].UpdateBatch(part);
                 });
}

count_t SpmdCountMinGroup::Estimate(item_t key) const {
  count_t sum = 0;
  for (const CountMin& kernel : kernels_) {
    sum = SaturatingAdd(sum, static_cast<delta_t>(kernel.Estimate(key)));
  }
  return sum;
}

}  // namespace asketch
