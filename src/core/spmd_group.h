// SPMD-parallel ASketch kernels (§6.3).
//
// Each worker thread runs an independent ASketch instance as a sequential
// counting kernel over its own sub-stream (the paper's multi-stream
// scenario). Frequency estimation is commutative, so a point query is
// answered by summing the kernels' estimates — each kernel only saw its
// own partition, and the sum of per-partition over-estimates is an
// over-estimate of the total.

#ifndef ASKETCH_CORE_SPMD_GROUP_H_
#define ASKETCH_CORE_SPMD_GROUP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/core/asketch.h"
#include "src/filter/heap_filter.h"
#include "src/sketch/count_min.h"

namespace asketch {

/// A group of independent ASketch kernels (Relaxed-Heap over Count-Min)
/// processing disjoint streams in parallel.
class SpmdAsketchGroup {
 public:
  /// `num_kernels` kernels, each built from `config` (each kernel gets the
  /// full per-kernel space budget, like the paper's per-core synopses;
  /// seeds are derotated per kernel).
  SpmdAsketchGroup(uint32_t num_kernels, const ASketchConfig& config);

  /// Splits `stream` into contiguous chunks, one per kernel, and processes
  /// them on `num_kernels` threads. Blocks until done. May be called
  /// repeatedly; counts accumulate.
  void Process(std::span<const Tuple> stream);

  /// Point query: sum of the kernels' estimates. Only valid while no
  /// Process() call is running.
  count_t Estimate(item_t key) const;

  uint32_t num_kernels() const {
    return static_cast<uint32_t>(kernels_.size());
  }
  size_t MemoryUsageBytes() const;

  /// Direct access to a kernel (tests).
  const ASketch<RelaxedHeapFilter, CountMin>& kernel(uint32_t i) const {
    return kernels_[i];
  }

 private:
  std::vector<ASketch<RelaxedHeapFilter, CountMin>> kernels_;
};

/// Same SPMD arrangement for plain Count-Min kernels — the baseline of
/// the paper's scalability experiment (Fig. 13).
class SpmdCountMinGroup {
 public:
  SpmdCountMinGroup(uint32_t num_kernels, const CountMinConfig& config);

  void Process(std::span<const Tuple> stream);
  count_t Estimate(item_t key) const;

  uint32_t num_kernels() const {
    return static_cast<uint32_t>(kernels_.size());
  }

 private:
  std::vector<CountMin> kernels_;
};

}  // namespace asketch

#endif  // ASKETCH_CORE_SPMD_GROUP_H_
