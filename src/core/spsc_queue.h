// Bounded lock-free single-producer / single-consumer ring buffer.
//
// The message-passing substrate of the pipeline-parallel ASketch (§6.2):
// the filter core and the sketch core exchange items over two of these
// queues instead of sharing the data structures, avoiding locks entirely.
// Head and tail live on separate cache lines; both sides keep a cached
// copy of the opposite index to avoid ping-ponging the shared lines on
// every operation (the standard Lamport queue optimization).

#ifndef ASKETCH_CORE_SPSC_QUEUE_H_
#define ASKETCH_CORE_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <new>
#include <vector>

#include "src/common/bit_util.h"
#include "src/common/check.h"

namespace asketch {

// 64 bytes covers every x86-64 and most ARM parts; using the fixed value
// avoids gcc's -Winterference-size ABI-stability warning.
inline constexpr size_t kCacheLineSize = 64;

/// Fixed-capacity SPSC queue of trivially-copyable T.
template <typename T>
class SpscQueue {
 public:
  /// Queue holding up to `capacity` elements (rounded up to a power of
  /// two; one slot is sacrificed to distinguish full from empty).
  explicit SpscQueue(size_t capacity)
      : mask_(NextPowerOfTwo(capacity + 1) - 1),
        slots_(mask_ + 1) {
    ASKETCH_CHECK(capacity >= 1);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer: enqueues `value` if there is room. Returns false when full.
  bool TryPush(const T& value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t next = (head + 1) & mask_;
    if (next == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (next == cached_tail_) return false;
    }
    slots_[head] = value;
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer: dequeues into `value` if non-empty. Returns false when
  /// empty.
  bool TryPop(T* value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;
    }
    *value = slots_[tail];
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer: dequeues up to `max` elements into out[0..max) and returns
  /// how many were taken (0 when empty). One acquire load and one release
  /// store cover the whole batch, amortizing the cross-core index traffic
  /// that TryPop pays per element.
  size_t TryPopBatch(T* out, size_t max) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return 0;
    }
    const size_t available = (cached_head_ - tail) & mask_;
    const size_t take = available < max ? available : max;
    for (size_t i = 0; i < take; ++i) {
      out[i] = slots_[(tail + i) & mask_];
    }
    tail_.store((tail + take) & mask_, std::memory_order_release);
    return take;
  }

  /// True when the queue is empty at this instant (either side may call;
  /// the answer is naturally racy and meant for quiescence polling).
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Number of queued elements at this instant. Racy by nature (the two
  /// indices are read independently); meant for monitoring gauges, not
  /// for flow-control decisions.
  size_t SizeApprox() const {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_relaxed);
    return (head - tail) & mask_;
  }

  /// Usable slots, NOT the constructor's requested capacity: the ring is
  /// sized to the next power of two above `capacity + 1` and one slot is
  /// sacrificed to distinguish full from empty, so this returns
  /// NextPowerOfTwo(capacity + 1) - 1 >= capacity.
  size_t capacity() const { return mask_; }

 private:
  const size_t mask_;
  std::vector<T> slots_;

  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
  alignas(kCacheLineSize) size_t cached_tail_ = 0;   // producer-owned
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
  alignas(kCacheLineSize) size_t cached_head_ = 0;   // consumer-owned
};

}  // namespace asketch

#endif  // ASKETCH_CORE_SPSC_QUEUE_H_
