// Windowed frequency estimation over ASketch.
//
// Long-running monitors usually care about "how often did k appear
// *recently*", not since process start. This adapter implements the
// standard two-epoch jumping window: tuples land in a current epoch
// summary; every `window_size` counts the epochs rotate (previous is
// discarded, current becomes previous, a fresh current starts). A query
// sums the two epochs' estimates and therefore covers between one and
// two windows of history — never less than the last full window, never
// more than the last two. All ASketch guarantees carry over per epoch:
// within the covered span the estimate never under-counts.
//
// This is an application-layer extension (the paper's future-work
// direction of employing ASketch inside larger systems); the epoch
// machinery is sketch-agnostic and works with any config.

#ifndef ASKETCH_CORE_WINDOWED_ASKETCH_H_
#define ASKETCH_CORE_WINDOWED_ASKETCH_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/core/asketch.h"
#include "src/filter/heap_filter.h"
#include "src/sketch/count_min.h"

namespace asketch {

/// Jumping-window ASketch (Relaxed-Heap over Count-Min epochs).
class WindowedASketch {
 public:
  /// Epochs rotate every `window_size` stream counts (>= 1). Each epoch
  /// is an ASketch built from `config`, so total memory is 2x the
  /// config's budget.
  WindowedASketch(uint64_t window_size, const ASketchConfig& config)
      : window_size_(window_size),
        config_(config),
        current_(MakeASketchCountMin<RelaxedHeapFilter>(config)),
        previous_(MakeASketchCountMin<RelaxedHeapFilter>(config)) {
    ASKETCH_CHECK(window_size >= 1);
  }

  /// Processes `weight` arrivals of `key` (weight >= 1; windowed
  /// semantics and deletions do not compose — expired counts already
  /// vanish with their epoch). A weight larger than the current epoch's
  /// remaining room is split across epoch boundaries: each window-sized
  /// slice closes out its epoch (rotating once per boundary crossed) and
  /// only the remainder lands in the fresh epoch, exactly as if the
  /// arrivals had come in one at a time.
  void Update(item_t key, count_t weight = 1) {
    ASKETCH_CHECK(weight >= 1);
    uint64_t left = weight;
    while (left > 0) {
      const uint64_t room = window_size_ - filled_;
      const uint64_t take = std::min<uint64_t>(left, room);
      current_.Update(key, static_cast<delta_t>(take));
      filled_ += take;
      left -= take;
      if (filled_ == window_size_) Rotate();
    }
  }

  /// Estimated frequency of `key` over the covered span (between one
  /// and two windows back from now). Never under-counts within the span.
  count_t Estimate(item_t key) const {
    return SaturatingAdd(current_.Estimate(key),
                         static_cast<delta_t>(previous_.Estimate(key)));
  }

  /// Top-k over the covered span: the union of both epochs' filter keys,
  /// each reported with its full windowed Estimate() (so the report is
  /// consistent with point queries), sorted descending.
  std::vector<FilterEntry> TopK() const {
    std::vector<FilterEntry> merged;
    const auto add_key = [&merged, this](const FilterEntry& e) {
      for (const FilterEntry& existing : merged) {
        if (existing.key == e.key) return;  // already reported
      }
      FilterEntry entry = e;
      entry.new_count = Estimate(e.key);
      merged.push_back(entry);
    };
    current_.filter().ForEach(add_key);
    previous_.filter().ForEach(add_key);
    std::sort(merged.begin(), merged.end(),
              [](const FilterEntry& a, const FilterEntry& b) {
                if (a.new_count != b.new_count) {
                  return a.new_count > b.new_count;
                }
                return a.key < b.key;
              });
    return merged;
  }

  /// Counts accumulated into the current (unfinished) epoch.
  uint64_t current_epoch_fill() const { return filled_; }
  /// Number of completed epoch rotations.
  uint64_t rotations() const { return rotations_; }
  uint64_t window_size() const { return window_size_; }

  size_t MemoryUsageBytes() const {
    return current_.MemoryUsageBytes() + previous_.MemoryUsageBytes();
  }

  void Reset() {
    current_.Reset();
    previous_.Reset();
    filled_ = 0;
    rotations_ = 0;
  }

 private:
  void Rotate() {
    std::swap(current_, previous_);
    current_.Reset();
    filled_ = 0;
    ++rotations_;
  }

  uint64_t window_size_;
  ASketchConfig config_;
  ASketch<RelaxedHeapFilter, CountMin> current_;
  ASketch<RelaxedHeapFilter, CountMin> previous_;
  uint64_t filled_ = 0;
  uint64_t rotations_ = 0;
};

}  // namespace asketch

#endif  // ASKETCH_CORE_WINDOWED_ASKETCH_H_
