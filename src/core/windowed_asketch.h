// Windowed frequency estimation over ASketch.
//
// Long-running monitors usually care about "how often did k appear
// *recently*", not since process start. This adapter implements the
// standard two-epoch jumping window: tuples land in a current epoch
// summary; every `window_size` counts the epochs rotate (previous is
// discarded, current becomes previous, a fresh current starts). A query
// sums the two epochs' estimates and therefore covers between one and
// two windows of history — never less than the last full window, never
// more than the last two. All ASketch guarantees carry over per epoch:
// within the covered span the estimate never under-counts.
//
// This is an application-layer extension (the paper's future-work
// direction of employing ASketch inside larger systems); the epoch
// machinery is sketch-agnostic and works with any config.

#ifndef ASKETCH_CORE_WINDOWED_ASKETCH_H_
#define ASKETCH_CORE_WINDOWED_ASKETCH_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/core/asketch.h"
#include "src/filter/heap_filter.h"
#include "src/sketch/count_min.h"

namespace asketch {

/// Jumping-window ASketch (Relaxed-Heap over Count-Min epochs).
class WindowedASketch {
 public:
  /// Epochs rotate every `window_size` stream counts (>= 1). Each epoch
  /// is an ASketch built from `config`, so total memory is 2x the
  /// config's budget.
  WindowedASketch(uint64_t window_size, const ASketchConfig& config)
      : window_size_(window_size),
        config_(config),
        current_(MakeASketchCountMin<RelaxedHeapFilter>(config)),
        previous_(MakeASketchCountMin<RelaxedHeapFilter>(config)) {
    ASKETCH_CHECK(window_size >= 1);
  }

  /// Processes `weight` arrivals of `key` (weight >= 1; windowed
  /// semantics and deletions do not compose — expired counts already
  /// vanish with their epoch). A weight larger than the current epoch's
  /// remaining room is split across epoch boundaries: each window-sized
  /// slice closes out its epoch (rotating once per boundary crossed) and
  /// only the remainder lands in the fresh epoch, exactly as if the
  /// arrivals had come in one at a time.
  void Update(item_t key, count_t weight = 1) {
    ASKETCH_CHECK(weight >= 1);
    uint64_t left = weight;
    while (left > 0) {
      const uint64_t room = window_size_ - filled_;
      const uint64_t take = std::min<uint64_t>(left, room);
      current_.Update(key, static_cast<delta_t>(take));
      filled_ += take;
      left -= take;
      if (filled_ == window_size_) Rotate();
    }
  }

  /// Estimated frequency of `key` over the covered span (between one
  /// and two windows back from now). Never under-counts within the span.
  count_t Estimate(item_t key) const {
    return SaturatingAdd(current_.Estimate(key),
                         static_cast<delta_t>(previous_.Estimate(key)));
  }

  /// Top-k over the covered span: the union of both epochs' filter keys,
  /// each reported with its full windowed Estimate() (so the report is
  /// consistent with point queries), sorted descending.
  std::vector<FilterEntry> TopK() const {
    std::vector<FilterEntry> merged;
    const auto add_key = [&merged, this](const FilterEntry& e) {
      for (const FilterEntry& existing : merged) {
        if (existing.key == e.key) return;  // already reported
      }
      FilterEntry entry = e;
      entry.new_count = Estimate(e.key);
      merged.push_back(entry);
    };
    current_.filter().ForEach(add_key);
    previous_.filter().ForEach(add_key);
    std::sort(merged.begin(), merged.end(),
              [](const FilterEntry& a, const FilterEntry& b) {
                if (a.new_count != b.new_count) {
                  return a.new_count > b.new_count;
                }
                return a.key < b.key;
              });
    return merged;
  }

  /// Snapshot-envelope payload tag (registry: src/common/snapshot.h).
  static constexpr uint32_t kSnapshotPayloadType = 12;

  /// Writes window geometry, the construction config, epoch fill state,
  /// and both epoch ASketches, so a restored monitor resumes mid-window
  /// with the covered span intact.
  bool SerializeTo(BinaryWriter& writer) const {
    writer.PutU32(0x31534157u);  // "WAS1"
    writer.PutU64(window_size_);
    writer.PutU64(filled_);
    writer.PutU64(rotations_);
    writer.PutU64(config_.total_bytes);
    writer.PutU32(config_.width);
    writer.PutU32(config_.filter_items);
    writer.PutU64(config_.seed);
    if (!current_.SerializeTo(writer)) return false;
    if (!previous_.SerializeTo(writer)) return false;
    return writer.ok();
  }

  /// Inverse of SerializeTo; std::nullopt on malformed input.
  static std::optional<WindowedASketch> DeserializeFrom(
      BinaryReader& reader) {
    uint32_t magic = 0;
    if (!reader.GetU32(&magic) || magic != 0x31534157u) {
      return std::nullopt;
    }
    uint64_t window_size = 0, filled = 0, rotations = 0, total_bytes = 0;
    ASketchConfig config;
    if (!reader.GetU64(&window_size) || !reader.GetU64(&filled) ||
        !reader.GetU64(&rotations) || !reader.GetU64(&total_bytes) ||
        !reader.GetU32(&config.width) ||
        !reader.GetU32(&config.filter_items) ||
        !reader.GetU64(&config.seed)) {
      return std::nullopt;
    }
    config.total_bytes = static_cast<size_t>(total_bytes);
    // Validate everything the constructor and the MakeASketch* budget
    // split would CHECK-abort on: a corrupt blob must come back as
    // nullopt, never as a crash. Rotate() fires at filled == window_size,
    // so a persisted fill is always strictly inside the window.
    if (window_size < 1 || filled >= window_size) return std::nullopt;
    if (total_bytes > kMaxSerializedBytes) return std::nullopt;
    if (config.Validate().has_value()) return std::nullopt;
    if (static_cast<uint64_t>(config.filter_items) *
            RelaxedHeapFilter::BytesPerItem() >=
        config.total_bytes) {
      return std::nullopt;
    }
    auto current =
        ASketch<RelaxedHeapFilter, CountMin>::DeserializeFrom(reader);
    if (!current.has_value()) return std::nullopt;
    auto previous =
        ASketch<RelaxedHeapFilter, CountMin>::DeserializeFrom(reader);
    if (!previous.has_value()) return std::nullopt;
    if (current->filter().capacity() != config.filter_items ||
        previous->filter().capacity() != config.filter_items) {
      return std::nullopt;
    }
    WindowedASketch result(window_size, config);
    result.current_ = *std::move(current);
    result.previous_ = *std::move(previous);
    result.filled_ = filled;
    result.rotations_ = rotations;
    return result;
  }

  /// Counts accumulated into the current (unfinished) epoch.
  uint64_t current_epoch_fill() const { return filled_; }
  /// Number of completed epoch rotations.
  uint64_t rotations() const { return rotations_; }
  uint64_t window_size() const { return window_size_; }

  size_t MemoryUsageBytes() const {
    return current_.MemoryUsageBytes() + previous_.MemoryUsageBytes();
  }

  void Reset() {
    current_.Reset();
    previous_.Reset();
    filled_ = 0;
    rotations_ = 0;
  }

 private:
  void Rotate() {
    std::swap(current_, previous_);
    current_.Reset();
    filled_ = 0;
    ++rotations_;
  }

  uint64_t window_size_;
  ASketchConfig config_;
  ASketch<RelaxedHeapFilter, CountMin> current_;
  ASketch<RelaxedHeapFilter, CountMin> previous_;
  uint64_t filled_ = 0;
  uint64_t rotations_ = 0;
};

}  // namespace asketch

#endif  // ASKETCH_CORE_WINDOWED_ASKETCH_H_
