// The filter contract of ASketch (§5, §6.1).
//
// A filter is a tiny exact summary of the currently-hottest keys. It stores
// up to `capacity` entries of (key, new_count, old_count):
//   * new_count — the (over-)estimated total frequency of the key,
//   * old_count — the portion of new_count that is already reflected in
//     the underlying sketch; new_count - old_count is the exact number of
//     hits absorbed while the key has been resident in the filter.
//
// Four designs are provided, matching the paper's §6.1 alternatives:
//   VectorFilter        — unsorted arrays, SIMD scans for both lookup and
//                         min; fastest at high skew, pays a full min-scan
//                         per filter miss.
//   StrictHeapFilter    — array min-heap on new_count, repaired on every
//                         hit; O(1) min.
//   RelaxedHeapFilter   — min-heap repaired only when the minimum element
//                         itself is hit (counts only grow, so the root
//                         stays the true minimum otherwise); the paper's
//                         best all-round choice.
//   StreamSummaryFilter — Space Saving's hash + sorted-bucket structure;
//                         O(1) min but heavy per-item overhead.
//
// All four satisfy the FilterType concept below; ASketch composes with any
// of them at compile time. Slot handles returned by Find() are invalidated
// by any mutating call.

#ifndef ASKETCH_FILTER_FILTER_INTERFACE_H_
#define ASKETCH_FILTER_FILTER_INTERFACE_H_

#include <concepts>
#include <cstddef>
#include <cstdint>

#include "src/common/types.h"

namespace asketch {

/// An entry evicted from (or enumerated out of) a filter.
struct FilterEntry {
  item_t key = 0;
  count_t new_count = 0;
  count_t old_count = 0;
};

inline bool operator==(const FilterEntry& a, const FilterEntry& b) {
  return a.key == b.key && a.new_count == b.new_count &&
         a.old_count == b.old_count;
}

/// Compile-time contract for filter implementations.
template <typename F>
concept FilterType = requires(F f, const F cf, item_t key, delta_t delta,
                              count_t count, int32_t slot) {
  { cf.Find(key) } -> std::same_as<int32_t>;          // slot or -1
  { cf.NewCount(slot) } -> std::same_as<count_t>;
  { cf.OldCount(slot) } -> std::same_as<count_t>;
  { f.AddToNewCount(slot, delta) };                   // invalidates slots
  { f.SetCounts(slot, count, count) };                // invalidates slots
  { f.Insert(key, count, count) };                    // requires !Full()
  { f.Remove(slot) };                                 // invalidates slots
  { cf.Full() } -> std::same_as<bool>;
  { cf.MinNewCount() } -> std::same_as<count_t>;      // requires size > 0
  { f.EvictMin() } -> std::same_as<FilterEntry>;      // requires size > 0
  { cf.size() } -> std::convertible_to<uint32_t>;
  { cf.capacity() } -> std::convertible_to<uint32_t>;
  { cf.MemoryUsageBytes() } -> std::convertible_to<size_t>;
  { f.Reset() };
};

}  // namespace asketch

#endif  // ASKETCH_FILTER_FILTER_INTERFACE_H_
