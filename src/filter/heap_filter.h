// Heap filters: array min-heaps keyed on new_count (§6.1).
//
// Both variants store (id, new_count, old_count) in parallel arrays
// arranged as an implicit binary min-heap, so the minimum-count item — the
// one consulted on *every* filter miss (Algorithm 1, line 9) — sits at the
// root and is read in O(1). Lookups scan the id array with SIMD
// (Algorithm 3); the heap arrangement is irrelevant to the scan.
//
//  * Strict (kStrict = true): the heap property is repaired after every
//    hit, by sifting the grown entry down.
//  * Relaxed (kStrict = false): the heap is rebuilt only when the minimum
//    entry itself is hit. Counts only grow on the hot path, so a non-root
//    entry growing can never make the root stale — the root remains the
//    global minimum even though the heap's *internal* order decays. This
//    is the paper's best-performing filter in the real-world skew range.
//
// Decreases (the deletion path of Appendix A) can invalidate the root from
// anywhere, so both variants rebuild after a decrease.
//
// Concurrency: every mutator runs inside a single-writer seqlock section
// (seqlock.h) and issues release stores, so SnapshotFind/SnapshotEntries
// can serve concurrent readers without any lock — they retry the scan on
// a torn snapshot. The mutators themselves must stay externally
// serialized (one writer at a time), exactly as before.

#ifndef ASKETCH_FILTER_HEAP_FILTER_H_
#define ASKETCH_FILTER_HEAP_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/atomic_util.h"
#include "src/common/bit_util.h"
#include "src/common/check.h"
#include "src/common/serialize.h"
#include "src/common/simd_scan.h"
#include "src/common/types.h"
#include "src/filter/filter_interface.h"
#include "src/filter/seqlock.h"

namespace asketch {

/// Min-heap filter; see file comment for the strict/relaxed policies.
template <bool kStrict>
class BasicHeapFilter {
 public:
  /// A filter holding at most `capacity` items (>= 1).
  explicit BasicHeapFilter(uint32_t capacity) : capacity_(capacity) {
    ASKETCH_CHECK(capacity >= 1);
    const size_t padded = RoundUp(capacity, kSimdBlockElements);
    ids_.assign(padded, 0);
    new_counts_.assign(padded, std::numeric_limits<count_t>::max());
    old_counts_.assign(padded, 0);
  }

  /// Slot of `key`, or -1. Slots are heap positions and are invalidated by
  /// any mutating call.
  int32_t Find(item_t key) const {
    return FindKey(ids_.data(), ids_.size(), size_, key);
  }

  /// Batched lookup: slots[i] = Find(keys[i]) for `count` keys
  /// (count <= kMaxProbeBatch), resolved in one pass over the id array.
  void FindBatch(const item_t* keys, size_t count, int32_t* slots) const {
    FindKeysBatch(ids_.data(), ids_.size(), size_, keys, count, slots);
  }

  /// Whether AddToNewCount(slot, positive delta) can move entries and
  /// therefore invalidate previously-found slots: the strict heap sifts
  /// after every hit, the relaxed heap only rebuilds when the root is hit.
  static constexpr bool HitInvalidatesSlots(int32_t slot) {
    return kStrict || slot == 0;
  }

  count_t NewCount(int32_t slot) const { return new_counts_[slot]; }
  count_t OldCount(int32_t slot) const { return old_counts_[slot]; }

  /// Adds `delta` (may be negative) to the slot's new_count and repairs
  /// the heap per the variant's policy.
  void AddToNewCount(int32_t slot, delta_t delta) {
    SeqWriteSection section(seq_);
    ReleaseStore(new_counts_[slot],
                 SaturatingAdd(new_counts_[slot], delta));
    if (delta < 0) {
      // Deletions may create a new minimum anywhere: rebuild.
      Heapify();
      return;
    }
    if constexpr (kStrict) {
      SiftDown(static_cast<uint32_t>(slot));
    } else {
      if (slot == 0) Heapify();
    }
  }

  /// Overwrites both counts of `slot` (deletion fix-ups); rebuilds.
  void SetCounts(int32_t slot, count_t new_count, count_t old_count) {
    SeqWriteSection section(seq_);
    ReleaseStore(new_counts_[slot], new_count);
    ReleaseStore(old_counts_[slot], old_count);
    Heapify();
  }

  /// Inserts a new entry; the filter must not be full and `key` absent.
  void Insert(item_t key, count_t new_count, count_t old_count) {
    ASKETCH_CHECK(!Full());
    ASKETCH_DCHECK(Find(key) < 0);
    SeqWriteSection section(seq_);
    ReleaseStore(ids_[size_], key);
    ReleaseStore(new_counts_[size_], new_count);
    ReleaseStore(old_counts_[size_], old_count);
    ReleaseStore(size_, size_ + 1);
    if constexpr (kStrict) {
      SiftUp(size_ - 1);
    } else {
      // Only the root-is-minimum invariant matters.
      if (new_count < new_counts_[0]) Heapify();
    }
  }

  /// Removes the entry at `slot`.
  void Remove(int32_t slot) {
    ASKETCH_DCHECK(slot >= 0 && static_cast<uint32_t>(slot) < size_);
    SeqWriteSection section(seq_);
    ReleaseStore(size_, size_ - 1);
    MoveEntry(size_, static_cast<uint32_t>(slot));
    ReleaseStore(new_counts_[size_], std::numeric_limits<count_t>::max());
    Heapify();
  }

  bool Full() const { return size_ == capacity_; }

  /// Smallest new_count, in O(1) at the heap root.
  count_t MinNewCount() const {
    ASKETCH_DCHECK(size_ > 0);
    return new_counts_[0];
  }

  /// The minimum-new_count entry (the root), without removing it. The
  /// exchange path reads the victim here and writes its exact delta back
  /// to the sketch *before* evicting, so a lock-free reader can never
  /// observe the victim absent from both structures (asketch.h).
  FilterEntry PeekMin() const {
    ASKETCH_CHECK(size_ > 0);
    return FilterEntry{ids_[0], new_counts_[0], old_counts_[0]};
  }

  /// Removes and returns the minimum-new_count entry (the root).
  FilterEntry EvictMin() {
    ASKETCH_CHECK(size_ > 0);
    const FilterEntry entry{ids_[0], new_counts_[0], old_counts_[0]};
    SeqWriteSection section(seq_);
    ReleaseStore(size_, size_ - 1);
    MoveEntry(size_, 0);
    ReleaseStore(new_counts_[size_], std::numeric_limits<count_t>::max());
    if (size_ > 0) {
      if constexpr (kStrict) {
        SiftDown(0);
      } else {
        Heapify();
      }
    }
    return entry;
  }

  uint32_t size() const { return size_; }
  uint32_t capacity() const { return capacity_; }

  /// Bytes per item: id + new_count + old_count (12 B), identical to the
  /// Vector filter — both heap variants hold 32 items in 0.4 KB.
  static constexpr size_t BytesPerItem() {
    return sizeof(item_t) + 2 * sizeof(count_t);
  }
  size_t MemoryUsageBytes() const { return capacity_ * BytesPerItem(); }

  void Reset() {
    SeqWriteSection section(seq_);
    ReleaseStore(size_, 0u);
    for (count_t& c : new_counts_) {
      ReleaseStore(c, std::numeric_limits<count_t>::max());
    }
  }

  /// Lock-free point lookup for concurrent readers: scans a seqlock
  /// snapshot and, on a hit, stores the entry's new_count into `*count`.
  /// Returns whether the key was resident. Retries torn snapshots
  /// (`*retries` accumulates the number of retried scans, for the
  /// asketch_net_seqlock_retries_total counter). The scan is scalar:
  /// each load must be an individually-atomic acquire load for the
  /// seqlock protocol (and TSan), which the SIMD probe cannot provide.
  bool SnapshotFind(item_t key, count_t* count,
                    uint64_t* retries = nullptr) const {
    for (uint64_t attempt = 0;; ++attempt) {
      const uint32_t version = seq_.ReadBegin();
      if ((version & 1u) == 0) {
        const uint32_t n = std::min(AcquireLoad(size_), capacity_);
        bool hit = false;
        count_t result = 0;
        for (uint32_t i = 0; i < n; ++i) {
          if (AcquireLoad(ids_[i]) == key) {
            result = AcquireLoad(new_counts_[i]);
            hit = true;
            break;
          }
        }
        if (seq_.ReadValidate(version)) {
          if (hit) *count = result;
          return hit;
        }
      }
      if (retries != nullptr) ++*retries;
      SeqRetryBackoff(attempt);
    }
  }

  /// Lock-free snapshot of all entries (heap-array order) for concurrent
  /// top-k readers; same retry contract as SnapshotFind.
  void SnapshotEntries(std::vector<FilterEntry>* out,
                       uint64_t* retries = nullptr) const {
    for (uint64_t attempt = 0;; ++attempt) {
      const uint32_t version = seq_.ReadBegin();
      if ((version & 1u) == 0) {
        const uint32_t n = std::min(AcquireLoad(size_), capacity_);
        out->clear();
        out->reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
          out->push_back(FilterEntry{AcquireLoad(ids_[i]),
                                     AcquireLoad(new_counts_[i]),
                                     AcquireLoad(old_counts_[i])});
        }
        if (seq_.ReadValidate(version)) return;
      }
      if (retries != nullptr) ++*retries;
      SeqRetryBackoff(attempt);
    }
  }

  /// Whether AdoptFrom(other) can replace this filter's contents without
  /// reallocating the arrays concurrent readers are scanning.
  bool CanAdoptFrom(const BasicHeapFilter& other) const {
    return capacity_ == other.capacity_;
  }

  /// Replaces this filter's contents with `other`'s, in place: the
  /// backing arrays are never reallocated, so lock-free readers racing
  /// the adoption see either the old or the new state (or retry), never
  /// freed memory. Requires CanAdoptFrom(other); the caller must hold
  /// the writer role (e.g. the shard mutex during snapshot re-adoption).
  void AdoptFrom(BasicHeapFilter&& other) {
    ASKETCH_CHECK(CanAdoptFrom(other));
    SeqWriteSection section(seq_);
    for (size_t i = 0; i < ids_.size(); ++i) {
      ReleaseStore(ids_[i], other.ids_[i]);
      ReleaseStore(new_counts_[i], other.new_counts_[i]);
      ReleaseStore(old_counts_[i], other.old_counts_[i]);
    }
    ReleaseStore(size_, other.size_);
  }

  /// Visits all entries in heap-array order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint32_t i = 0; i < size_; ++i) {
      fn(FilterEntry{ids_[i], new_counts_[i], old_counts_[i]});
    }
  }

  static std::string Name() { return kStrict ? "Strict-Heap"
                                             : "Relaxed-Heap"; }

  /// Snapshot-envelope payload tag (registry: src/common/snapshot.h).
  static constexpr uint32_t kSnapshotPayloadType = kStrict ? 9 : 10;

  bool SerializeTo(BinaryWriter& writer) const {
    writer.PutU32(kStrict ? 0x31544853u : 0x31544852u);  // SHT1 / RHT1
    writer.PutU32(capacity_);
    writer.PutU32(size_);
    for (uint32_t i = 0; i < size_; ++i) {
      writer.PutU32(ids_[i]);
      writer.PutU32(new_counts_[i]);
      writer.PutU32(old_counts_[i]);
    }
    return writer.ok();
  }

  static std::optional<BasicHeapFilter> DeserializeFrom(
      BinaryReader& reader) {
    uint32_t magic = 0, capacity = 0, size = 0;
    if (!reader.GetU32(&magic) ||
        magic != (kStrict ? 0x31544853u : 0x31544852u)) {
      return std::nullopt;
    }
    if (!reader.GetU32(&capacity) || capacity < 1 ||
        capacity > kMaxSerializedCapacity ||
        !reader.GetU32(&size) || size > capacity) {
      return std::nullopt;
    }
    BasicHeapFilter filter(capacity);
    for (uint32_t i = 0; i < size; ++i) {
      uint32_t key = 0, new_count = 0, old_count = 0;
      if (!reader.GetU32(&key) || !reader.GetU32(&new_count) ||
          !reader.GetU32(&old_count)) {
        return std::nullopt;
      }
      if (filter.Find(key) >= 0) return std::nullopt;
      filter.ids_[i] = key;
      filter.new_counts_[i] = new_count;
      filter.old_counts_[i] = old_count;
      filter.size_ = i + 1;
    }
    filter.Heapify();
    return filter;
  }

  /// Test hook: true if the root holds the global minimum (both variants)
  /// and, for the strict variant, the full heap property holds.
  bool CheckInvariants() const {
    if (size_ == 0) return true;
    for (uint32_t i = 1; i < size_; ++i) {
      if (new_counts_[i] < new_counts_[0]) return false;
    }
    if constexpr (kStrict) {
      for (uint32_t i = 1; i < size_; ++i) {
        if (new_counts_[i] < new_counts_[(i - 1) / 2]) return false;
      }
    }
    return true;
  }

 private:
  // The private heap machinery runs inside the caller's write section;
  // its reads are plain (the writer is unique) and its stores release
  // (concurrent snapshot readers load them atomically).
  void SwapEntries(uint32_t a, uint32_t b) {
    const item_t id_a = ids_[a];
    ReleaseStore(ids_[a], ids_[b]);
    ReleaseStore(ids_[b], id_a);
    const count_t new_a = new_counts_[a];
    ReleaseStore(new_counts_[a], new_counts_[b]);
    ReleaseStore(new_counts_[b], new_a);
    const count_t old_a = old_counts_[a];
    ReleaseStore(old_counts_[a], old_counts_[b]);
    ReleaseStore(old_counts_[b], old_a);
  }

  void MoveEntry(uint32_t from, uint32_t to) {
    ReleaseStore(ids_[to], ids_[from]);
    ReleaseStore(new_counts_[to], new_counts_[from]);
    ReleaseStore(old_counts_[to], old_counts_[from]);
  }

  void SiftDown(uint32_t i) {
    while (true) {
      const uint32_t left = 2 * i + 1;
      if (left >= size_) return;
      uint32_t child = left;
      const uint32_t right = left + 1;
      if (right < size_ && new_counts_[right] < new_counts_[left]) {
        child = right;
      }
      if (new_counts_[child] >= new_counts_[i]) return;
      SwapEntries(i, child);
      i = child;
    }
  }

  void SiftUp(uint32_t i) {
    while (i > 0) {
      const uint32_t parent = (i - 1) / 2;
      if (new_counts_[parent] <= new_counts_[i]) return;
      SwapEntries(i, parent);
      i = parent;
    }
  }

  /// Full O(size) heap reconstruction (Floyd's build-heap).
  void Heapify() {
    if (size_ <= 1) return;
    for (uint32_t i = size_ / 2; i-- > 0;) SiftDown(i);
  }

  uint32_t capacity_;
  uint32_t size_ = 0;
  // Parallel arrays padded to a SIMD block multiple; new_counts_ padding
  // stays at UINT32_MAX.
  std::vector<uint32_t> ids_;
  std::vector<count_t> new_counts_;
  std::vector<count_t> old_counts_;
  /// Versions the arrays above for lock-free snapshot readers.
  SeqCounter seq_;
};

extern template class BasicHeapFilter<true>;
extern template class BasicHeapFilter<false>;

/// Heap repaired on every hit.
using StrictHeapFilter = BasicHeapFilter<true>;
/// Heap rebuilt only when the minimum is hit — the paper's default filter.
using RelaxedHeapFilter = BasicHeapFilter<false>;

static_assert(FilterType<StrictHeapFilter>);
static_assert(FilterType<RelaxedHeapFilter>);

}  // namespace asketch

#endif  // ASKETCH_FILTER_HEAP_FILTER_H_
