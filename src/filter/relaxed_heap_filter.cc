#include "src/filter/heap_filter.h"

namespace asketch {

// Explicit instantiation of the relaxed variant; the definition lives in
// heap_filter.h.
template class BasicHeapFilter<false>;

}  // namespace asketch
