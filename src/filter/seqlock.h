// Single-writer seqlock: the synchronization behind the contention-free
// read path (DESIGN.md §5c).
//
// The ASketch filter is tiny (tens of entries) and mutated by exactly
// one thread at a time (the shard worker, serialized by the shard mutex
// with the inline-apply and restore paths). Readers — point queries and
// top-k reports — only need a *consistent* snapshot, not mutual
// exclusion, so instead of taking the shard mutex they run an optimistic
// scan bracketed by two reads of a version counter:
//
//   writer                           reader
//   ------                           ------
//   seq <- v+1 (odd, relaxed)        s1 <- seq (acquire); odd => retry
//   ...release stores to data...     ...acquire loads of data...
//   seq <- v+2 (even, release)       s2 <- seq (relaxed)
//                                    s1 != s2 => retry
//
// Why this is correct without fences: the writer's data stores are
// release stores, so none of them can be observed before the odd bump
// that is sequenced before them; the even bump is itself a release
// store, so it cannot be observed before any data store. The reader's
// data loads are acquire loads, so none of them can move before the
// first sequence read *and* the validating re-read cannot move before
// any of them. If a reader's data load observes a writer's release
// store, that load synchronizes-with the writer, the odd bump
// happens-before the validating re-read, and coherence forces the
// re-read to see it (or something newer) — the torn snapshot is
// discarded and the scan retried. Every operation is a plain MOV on
// x86-64, and ThreadSanitizer sees properly paired atomics (no fences,
// which TSan does not model).
//
// Retries are bounded in practice by the writer's section length — a
// few dozen stores for a filter mutation — but a reader that keeps
// losing (e.g. the writer was preempted mid-section on a loaded box)
// backs off to yield so the writer can finish.

#ifndef ASKETCH_FILTER_SEQLOCK_H_
#define ASKETCH_FILTER_SEQLOCK_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "src/common/atomic_util.h"

namespace asketch {

/// The version counter of a single-writer seqlock. Copy/move transfer
/// the current value (containers relocate filters during construction
/// and adoption, before or while no concurrent reader can exist).
class SeqCounter {
 public:
  SeqCounter() = default;
  SeqCounter(const SeqCounter& other)
      : seq_(other.seq_.load(std::memory_order_relaxed)) {}
  SeqCounter& operator=(const SeqCounter& other) {
    seq_.store(other.seq_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    return *this;
  }

  /// Reader entry: the version to validate against. Odd means a write
  /// section is open — do not bother scanning, retry.
  uint32_t ReadBegin() const {
    return seq_.load(std::memory_order_acquire);
  }

  /// Reader exit: true iff no write section overlapped the scan. Only
  /// meaningful when `begin` was even. The data loads between ReadBegin
  /// and this call must be AcquireLoads (see file comment).
  bool ReadValidate(uint32_t begin) const {
    return seq_.load(std::memory_order_relaxed) == begin;
  }

  /// Writer entry/exit; use SeqWriteSection instead of calling directly.
  void WriteBegin() {
    seq_.store(seq_.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  }
  void WriteEnd() {
    seq_.store(seq_.load(std::memory_order_relaxed) + 1,
               std::memory_order_release);
  }

 private:
  std::atomic<uint32_t> seq_{0};
};

/// RAII write section. Mutators open one at their top; the data stores
/// inside must be ReleaseStores (see file comment). Sections must not
/// nest (the odd/even discipline would break) — public mutators only
/// ever call section-free private helpers.
class SeqWriteSection {
 public:
  explicit SeqWriteSection(SeqCounter& counter) : counter_(counter) {
    counter_.WriteBegin();
  }
  ~SeqWriteSection() { counter_.WriteEnd(); }

  SeqWriteSection(const SeqWriteSection&) = delete;
  SeqWriteSection& operator=(const SeqWriteSection&) = delete;

 private:
  SeqCounter& counter_;
};

/// Reader backoff after a failed validation: spin (PAUSE) for the first
/// few attempts — writer sections are a handful of stores — then yield,
/// covering the writer-preempted-mid-section case on oversubscribed
/// machines.
inline void SeqRetryBackoff(uint64_t attempt) {
  if (attempt < 8) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
    return;
  }
  std::this_thread::yield();
}

}  // namespace asketch

#endif  // ASKETCH_FILTER_SEQLOCK_H_
