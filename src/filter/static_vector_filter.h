// Static (compile-time capacity) vector filter.
//
// §6.2 of the paper observes that a decoupled filter "can even fit into
// the registers of the processor". This variant fixes the capacity at
// compile time and stores the three arrays inline in the object (no heap
// indirection), letting the compiler fully unroll the SIMD scans for the
// common 16/32/64-item configurations and keep the whole filter in L1 —
// or, for the smallest sizes, mostly in registers across the scan.
//
// Semantics are identical to VectorFilter; it satisfies FilterType and
// composes with ASketch like any other filter.

#ifndef ASKETCH_FILTER_STATIC_VECTOR_FILTER_H_
#define ASKETCH_FILTER_STATIC_VECTOR_FILTER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "src/common/bit_util.h"
#include "src/common/check.h"
#include "src/common/simd_scan.h"
#include "src/common/types.h"
#include "src/filter/filter_interface.h"

namespace asketch {

/// Flat-array filter with compile-time capacity `kItems`.
template <uint32_t kItems>
class StaticVectorFilter {
 public:
  static_assert(kItems >= 1);
  static constexpr size_t kPadded = RoundUp(kItems, kSimdBlockElements);

  /// The runtime `capacity` argument exists for FilterType/API symmetry
  /// and must equal kItems.
  explicit StaticVectorFilter(uint32_t capacity = kItems) {
    ASKETCH_CHECK(capacity == kItems);
    new_counts_.fill(std::numeric_limits<count_t>::max());
    ids_.fill(0);
    old_counts_.fill(0);
  }

  int32_t Find(item_t key) const {
    return FindKey(ids_.data(), kPadded, size_, key);
  }

  count_t NewCount(int32_t slot) const { return new_counts_[slot]; }
  count_t OldCount(int32_t slot) const { return old_counts_[slot]; }

  void AddToNewCount(int32_t slot, delta_t delta) {
    new_counts_[slot] = SaturatingAdd(new_counts_[slot], delta);
  }

  void SetCounts(int32_t slot, count_t new_count, count_t old_count) {
    new_counts_[slot] = new_count;
    old_counts_[slot] = old_count;
  }

  void Insert(item_t key, count_t new_count, count_t old_count) {
    ASKETCH_CHECK(!Full());
    ASKETCH_DCHECK(Find(key) < 0);
    ids_[size_] = key;
    new_counts_[size_] = new_count;
    old_counts_[size_] = old_count;
    ++size_;
  }

  void Remove(int32_t slot) {
    ASKETCH_DCHECK(slot >= 0 && static_cast<uint32_t>(slot) < size_);
    --size_;
    ids_[slot] = ids_[size_];
    new_counts_[slot] = new_counts_[size_];
    old_counts_[slot] = old_counts_[size_];
    new_counts_[size_] = std::numeric_limits<count_t>::max();
  }

  bool Full() const { return size_ == kItems; }

  count_t MinNewCount() const {
    ASKETCH_DCHECK(size_ > 0);
    return new_counts_[MinIndex(new_counts_.data(), kPadded, size_)];
  }

  FilterEntry EvictMin() {
    ASKETCH_CHECK(size_ > 0);
    const int32_t slot = static_cast<int32_t>(
        MinIndex(new_counts_.data(), kPadded, size_));
    const FilterEntry entry{ids_[slot], new_counts_[slot],
                            old_counts_[slot]};
    Remove(slot);
    return entry;
  }

  uint32_t size() const { return size_; }
  uint32_t capacity() const { return kItems; }

  static constexpr size_t BytesPerItem() {
    return sizeof(item_t) + 2 * sizeof(count_t);
  }
  size_t MemoryUsageBytes() const { return kItems * BytesPerItem(); }

  void Reset() {
    size_ = 0;
    new_counts_.fill(std::numeric_limits<count_t>::max());
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint32_t i = 0; i < size_; ++i) {
      fn(FilterEntry{ids_[i], new_counts_[i], old_counts_[i]});
    }
  }

  static std::string Name() {
    return "StaticVector<" + std::to_string(kItems) + ">";
  }

 private:
  uint32_t size_ = 0;
  alignas(32) std::array<uint32_t, kPadded> ids_;
  alignas(32) std::array<count_t, kPadded> new_counts_;
  std::array<count_t, kPadded> old_counts_;
};

static_assert(FilterType<StaticVectorFilter<16>>);
static_assert(FilterType<StaticVectorFilter<32>>);

}  // namespace asketch

#endif  // ASKETCH_FILTER_STATIC_VECTOR_FILTER_H_
