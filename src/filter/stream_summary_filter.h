// Stream-Summary filter: Space Saving's hash + sorted-bucket structure
// used as an ASketch filter (§6.1, first design alternative).
//
// Lookup goes through a hash table and the minimum is the head bucket's
// first child, both O(1) — but each monitored item carries ~5x the storage
// of the flat-array filters (pointers for two doubly-linked lists plus the
// hash table), so a fixed byte budget monitors far fewer items. That is
// exactly the trade-off Table 6 reports: a 0.4 KB Stream-Summary filter
// holds only a handful of items and loses accuracy against the 32-item
// Vector/Heap filters.
//
// The node's `aux` field stores old_count; the bucket count is new_count.

#ifndef ASKETCH_FILTER_STREAM_SUMMARY_FILTER_H_
#define ASKETCH_FILTER_STREAM_SUMMARY_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "src/common/check.h"
#include "src/common/serialize.h"
#include "src/common/stream_summary.h"
#include "src/common/types.h"
#include "src/filter/filter_interface.h"

namespace asketch {

/// The Stream-Summary filter.
class StreamSummaryFilter {
 public:
  /// A filter holding at most `capacity` items (>= 1).
  explicit StreamSummaryFilter(uint32_t capacity) : summary_(capacity) {}

  /// Slot (node handle) of `key`, or -1.
  int32_t Find(item_t key) const {
    const uint32_t node = summary_.Find(key);
    return node == kSummaryNil ? -1 : static_cast<int32_t>(node);
  }

  /// Batched lookup; hash-table probes don't amortize, so this is the
  /// plain per-key loop (the batch path still wins via sketch prefetch).
  void FindBatch(const item_t* keys, size_t count, int32_t* slots) const {
    for (size_t i = 0; i < count; ++i) slots[i] = Find(keys[i]);
  }

  /// Node handles are stable across count changes (MoveToCount relinks
  /// buckets without renumbering nodes).
  static constexpr bool HitInvalidatesSlots(int32_t /*slot*/) {
    return false;
  }

  count_t NewCount(int32_t slot) const { return summary_.Count(slot); }
  count_t OldCount(int32_t slot) const { return summary_.Aux(slot); }

  void AddToNewCount(int32_t slot, delta_t delta) {
    summary_.MoveToCount(slot, SaturatingAdd(summary_.Count(slot), delta));
  }

  void SetCounts(int32_t slot, count_t new_count, count_t old_count) {
    summary_.SetAux(slot, old_count);
    summary_.MoveToCount(slot, new_count);
  }

  void Insert(item_t key, count_t new_count, count_t old_count) {
    summary_.Insert(key, new_count, old_count);
  }

  void Remove(int32_t slot) { summary_.Remove(slot); }

  bool Full() const { return summary_.Full(); }

  count_t MinNewCount() const {
    ASKETCH_DCHECK(summary_.size() > 0);
    return summary_.MinCount();
  }

  FilterEntry EvictMin() {
    const uint32_t node = summary_.MinNode();
    ASKETCH_CHECK(node != kSummaryNil);
    const FilterEntry entry{summary_.Key(node), summary_.Count(node),
                            summary_.Aux(node)};
    summary_.Remove(node);
    return entry;
  }

  uint32_t size() const { return summary_.size(); }
  uint32_t capacity() const { return summary_.capacity(); }

  static constexpr size_t BytesPerItem() {
    return StreamSummary::BytesPerItem();
  }
  size_t MemoryUsageBytes() const { return summary_.MemoryUsageBytes(); }

  void Reset() { summary_.Reset(); }

  /// Visits all entries in ascending-count order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    summary_.ForEach([&fn](item_t key, count_t count, count_t aux) {
      fn(FilterEntry{key, count, aux});
    });
  }

  static std::string Name() { return "Stream-Summary"; }

  /// Snapshot-envelope payload tag (registry: src/common/snapshot.h).
  static constexpr uint32_t kSnapshotPayloadType = 11;

  bool SerializeTo(BinaryWriter& writer) const {
    writer.PutU32(0x31545353u);  // "SST1"
    writer.PutU32(summary_.capacity());
    writer.PutU32(summary_.size());
    summary_.ForEach([&writer](item_t key, count_t count, count_t aux) {
      writer.PutU32(key);
      writer.PutU32(count);
      writer.PutU32(aux);
    });
    return writer.ok();
  }

  static std::optional<StreamSummaryFilter> DeserializeFrom(
      BinaryReader& reader) {
    uint32_t magic = 0, capacity = 0, size = 0;
    if (!reader.GetU32(&magic) || magic != 0x31545353u) {
      return std::nullopt;
    }
    if (!reader.GetU32(&capacity) || capacity < 1 ||
        capacity > kMaxSerializedCapacity ||
        !reader.GetU32(&size) || size > capacity) {
      return std::nullopt;
    }
    StreamSummaryFilter filter(capacity);
    for (uint32_t i = 0; i < size; ++i) {
      uint32_t key = 0, count = 0, aux = 0;
      if (!reader.GetU32(&key) || !reader.GetU32(&count) ||
          !reader.GetU32(&aux)) {
        return std::nullopt;
      }
      if (filter.Find(key) >= 0) return std::nullopt;
      filter.Insert(key, count, aux);
    }
    return filter;
  }

 private:
  StreamSummary summary_;
};

static_assert(FilterType<StreamSummaryFilter>);

}  // namespace asketch

#endif  // ASKETCH_FILTER_STREAM_SUMMARY_FILTER_H_
