#include "src/filter/heap_filter.h"

namespace asketch {

// Explicit instantiation of the strict variant; the definition lives in
// heap_filter.h.
template class BasicHeapFilter<true>;

}  // namespace asketch
