#include "src/filter/vector_filter.h"

#include <limits>

#include "src/common/bit_util.h"

namespace asketch {

VectorFilter::VectorFilter(uint32_t capacity) : capacity_(capacity) {
  ASKETCH_CHECK(capacity >= 1);
  const size_t padded = RoundUp(capacity, kSimdBlockElements);
  ids_.assign(padded, 0);
  new_counts_.assign(padded, std::numeric_limits<count_t>::max());
  old_counts_.assign(padded, 0);
}

void VectorFilter::Insert(item_t key, count_t new_count, count_t old_count) {
  ASKETCH_CHECK(!Full());
  ASKETCH_DCHECK(Find(key) < 0);
  ids_[size_] = key;
  new_counts_[size_] = new_count;
  old_counts_[size_] = old_count;
  ++size_;
}

void VectorFilter::Remove(int32_t slot) {
  ASKETCH_DCHECK(slot >= 0 && static_cast<uint32_t>(slot) < size_);
  --size_;
  ids_[slot] = ids_[size_];
  new_counts_[slot] = new_counts_[size_];
  old_counts_[slot] = old_counts_[size_];
  // Restore the padding sentinel so min scans ignore the vacated cell.
  new_counts_[size_] = std::numeric_limits<count_t>::max();
}

namespace {
constexpr uint32_t kVectorFilterMagic = 0x31544c46;  // "FLT1"
}  // namespace

bool VectorFilter::SerializeTo(BinaryWriter& writer) const {
  writer.PutU32(kVectorFilterMagic);
  writer.PutU32(capacity_);
  writer.PutU32(size_);
  for (uint32_t i = 0; i < size_; ++i) {
    writer.PutU32(ids_[i]);
    writer.PutU32(new_counts_[i]);
    writer.PutU32(old_counts_[i]);
  }
  return writer.ok();
}

std::optional<VectorFilter> VectorFilter::DeserializeFrom(
    BinaryReader& reader) {
  uint32_t magic = 0, capacity = 0, size = 0;
  if (!reader.GetU32(&magic) || magic != kVectorFilterMagic) {
    return std::nullopt;
  }
  if (!reader.GetU32(&capacity) || capacity < 1 ||
      capacity > kMaxSerializedCapacity ||
      !reader.GetU32(&size) || size > capacity) {
    return std::nullopt;
  }
  VectorFilter filter(capacity);
  for (uint32_t i = 0; i < size; ++i) {
    uint32_t key = 0, new_count = 0, old_count = 0;
    if (!reader.GetU32(&key) || !reader.GetU32(&new_count) ||
        !reader.GetU32(&old_count)) {
      return std::nullopt;
    }
    if (filter.Find(key) >= 0) return std::nullopt;  // duplicate key
    filter.Insert(key, new_count, old_count);
  }
  return filter;
}

FilterEntry VectorFilter::EvictMin() {
  ASKETCH_CHECK(size_ > 0);
  const int32_t slot = static_cast<int32_t>(
      MinIndex(new_counts_.data(), new_counts_.size(), size_));
  const FilterEntry entry{ids_[slot], new_counts_[slot], old_counts_[slot]};
  Remove(slot);
  return entry;
}

}  // namespace asketch
