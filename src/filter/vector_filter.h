// Vector filter: unsorted parallel arrays with SIMD scans (§6.1).
//
// Lookup is the paper's Algorithm 3 (vectorized linear scan over the id
// array); the minimum-count entry is located with a linear (vectorized)
// scan over the new_count array. No ordering structure is maintained, so
// hits are the cheapest of all filter designs — but every MinNewCount()
// call (one per filter miss in Algorithm 1) pays a full scan, which is why
// the Vector filter only wins at high skew (Fig. 14).

#ifndef ASKETCH_FILTER_VECTOR_FILTER_H_
#define ASKETCH_FILTER_VECTOR_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/serialize.h"
#include "src/common/simd_scan.h"
#include "src/common/types.h"
#include "src/filter/filter_interface.h"

namespace asketch {

/// The Vector (flat-array) filter.
class VectorFilter {
 public:
  /// A filter holding at most `capacity` items (>= 1).
  explicit VectorFilter(uint32_t capacity);

  /// Slot of `key`, or -1.
  int32_t Find(item_t key) const {
    return FindKey(ids_.data(), ids_.size(), size_, key);
  }

  /// Batched lookup: slots[i] = Find(keys[i]) for `count` keys
  /// (count <= kMaxProbeBatch), resolved in one pass over the id array.
  void FindBatch(const item_t* keys, size_t count, int32_t* slots) const {
    FindKeysBatch(ids_.data(), ids_.size(), size_, keys, count, slots);
  }

  /// Slots returned by Find stay valid across AddToNewCount: the flat
  /// array never reorders on a hit.
  static constexpr bool HitInvalidatesSlots(int32_t /*slot*/) {
    return false;
  }

  count_t NewCount(int32_t slot) const { return new_counts_[slot]; }
  count_t OldCount(int32_t slot) const { return old_counts_[slot]; }

  /// Adds `delta` (may be negative) to the slot's new_count.
  void AddToNewCount(int32_t slot, delta_t delta) {
    new_counts_[slot] = SaturatingAdd(new_counts_[slot], delta);
  }

  /// Overwrites both counts of `slot`.
  void SetCounts(int32_t slot, count_t new_count, count_t old_count) {
    new_counts_[slot] = new_count;
    old_counts_[slot] = old_count;
  }

  /// Inserts a new entry; the filter must not be full and `key` absent.
  void Insert(item_t key, count_t new_count, count_t old_count);

  /// Removes the entry at `slot`.
  void Remove(int32_t slot);

  bool Full() const { return size_ == capacity_; }

  /// Smallest new_count; full scan (the Vector filter's Achilles heel).
  count_t MinNewCount() const {
    ASKETCH_DCHECK(size_ > 0);
    return new_counts_[MinIndex(new_counts_.data(), new_counts_.size(),
                                size_)];
  }

  /// Removes and returns the minimum-new_count entry.
  FilterEntry EvictMin();

  uint32_t size() const { return size_; }
  uint32_t capacity() const { return capacity_; }

  /// Bytes per item: id + new_count + old_count (12 B — the paper's
  /// "0.4KB filter holds 32 items" accounting).
  static constexpr size_t BytesPerItem() {
    return sizeof(item_t) + 2 * sizeof(count_t);
  }
  size_t MemoryUsageBytes() const { return capacity_ * BytesPerItem(); }

  void Reset() { size_ = 0; }

  /// Visits all entries in slot order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint32_t i = 0; i < size_; ++i) {
      fn(FilterEntry{ids_[i], new_counts_[i], old_counts_[i]});
    }
  }

  static std::string Name() { return "Vector"; }

  bool SerializeTo(BinaryWriter& writer) const;
  static std::optional<VectorFilter> DeserializeFrom(BinaryReader& reader);

  /// Snapshot-envelope payload tag (registry: src/common/snapshot.h).
  static constexpr uint32_t kSnapshotPayloadType = 8;

 private:
  uint32_t capacity_;
  uint32_t size_ = 0;
  // Parallel arrays padded to a SIMD block multiple; new_counts_ padding
  // is kept at UINT32_MAX so vectorized min scans never pick padding.
  std::vector<uint32_t> ids_;
  std::vector<count_t> new_counts_;
  std::vector<count_t> old_counts_;
};

static_assert(FilterType<VectorFilter>);

}  // namespace asketch

#endif  // ASKETCH_FILTER_VECTOR_FILTER_H_
