#include "src/net/client.h"

#include <algorithm>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define ASKETCH_NET_SUPPORTED 1
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "src/net/net_metrics.h"
#else
#define ASKETCH_NET_SUPPORTED 0
#endif

namespace asketch {
namespace net {

Client::~Client() { Close(); }

#if ASKETCH_NET_SUPPORTED

namespace {

constexpr int kSendFlags =
#ifdef MSG_NOSIGNAL
    MSG_NOSIGNAL;
#else
    0;
#endif

}  // namespace

std::optional<std::string> Client::Connect(const ClientOptions& options) {
  if (fd_ >= 0) return std::string("already connected");
  options_ = options;
  if (auto error = Dial()) return error;
  session_open_ = true;
  return std::nullopt;
}

std::optional<std::string> Client::Dial() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::string("socket() failed");
  // Nonblocking from birth: every wait below goes through poll with a
  // deadline, so no syscall can block past the armed timeouts.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return "bad host address: " + options_.host;
  }
  const std::string endpoint =
      options_.host + ":" + std::to_string(options_.port);
  int rc = SocketConnect(options_.io, fd,
                         reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 &&
      (errno == EINPROGRESS || errno == EINTR || errno == EALREADY)) {
    // The dial continues asynchronously (EINTR included: POSIX keeps
    // the attempt alive); completion is POLLOUT + SO_ERROR.
    if (auto error =
            WaitReady(fd, POLLOUT, options_.connect_timeout_ms)) {
      ::close(fd);
      return "connect to " + endpoint + " failed: " + *error;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    rc = (so_error == 0) ? 0 : -1;
  }
  if (rc != 0) {
    ::close(fd);
    return "connect to " + endpoint + " failed";
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  decoder_ = FrameDecoder{};
  conn_sent_tuples_ = 0;
  batches_since_ack_ = 0;
  acks_requested_ = 0;
  acks_received_ = 0;
  last_ack_ = UpdateAck{};

  // The HELLO exchange runs under the connect deadline, not the I/O
  // deadlines: a dial against a half-up server must also time out.
  io_timeout_override_ms_ = options_.connect_timeout_ms;
  auto hello_error = [this]() -> std::optional<std::string> {
    if (auto error = Send(EncodeHelloRequest(HelloRequest{}))) {
      return error;
    }
    Frame response;
    if (auto error = ReadResponse(Opcode::kHello, &response)) {
      return error;
    }
    if (response.status == NetStatus::kVersionMismatch) {
      std::string range = "?";
      if (response.payload.size() == 8) {
        uint32_t lo = 0, hi = 0;
        std::memcpy(&lo, response.payload.data(), 4);
        std::memcpy(&hi, response.payload.data() + 4, 4);
        range = std::to_string(lo) + ".." + std::to_string(hi);
      }
      transport_failed_ = false;
      return "protocol version mismatch: client speaks " +
             std::to_string(kProtocolVersionMin) + ".." +
             std::to_string(kProtocolVersionMax) + ", server speaks " +
             range;
    }
    HelloResponse hello;
    if (response.status != NetStatus::kOk ||
        !ParseHelloResponse(response.payload, &hello)) {
      transport_failed_ = true;
      return std::string("malformed HELLO response");
    }
    version_ = hello.version;
    server_shards_ = hello.num_shards;
    return std::nullopt;
  }();
  io_timeout_override_ms_ = 0;
  if (hello_error) {
    DropConnection();
    return hello_error;
  }
  return std::nullopt;
}

void Client::DropConnection() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder{};
  version_ = 0;
  server_shards_ = 0;
  conn_sent_tuples_ = 0;
  batches_since_ack_ = 0;
  acks_requested_ = 0;
  acks_received_ = 0;
  last_ack_ = UpdateAck{};
}

void Client::Close() {
  DropConnection();
  sent_tuples_ = 0;
  replay_.clear();
  session_open_ = false;
  transport_failed_ = false;
}

void Client::SleepBackoff(uint32_t attempt) {
  if (options_.retry_backoff_ms == 0) return;
  const uint64_t ms = std::min<uint64_t>(
      1000, static_cast<uint64_t>(options_.retry_backoff_ms)
                << std::min<uint32_t>(attempt, 20));
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::optional<std::string> Client::Reconnect() {
  DropConnection();
  std::string last_error = "no attempts made";
  for (uint32_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) SleepBackoff(attempt - 1);
    auto error = Dial();
    if (!error) error = ReplayPending();
    if (!error) {
      ++reconnects_;
      NetMetrics::Get().client_reconnects.Add(1);
      return std::nullopt;
    }
    last_error = *error;
    DropConnection();
  }
  transport_failed_ = true;
  return "reconnect failed: " + last_error;
}

std::optional<std::string> Client::ReplayPending() {
  std::deque<PendingBatch> pending;
  pending.swap(replay_);
  for (size_t i = 0; i < pending.size(); ++i) {
    ++batches_since_ack_;
    const bool want_ack = (i + 1 == pending.size()) ||
                          batches_since_ack_ >= options_.ack_every;
    if (want_ack) {
      batches_since_ack_ = 0;
      ++acks_requested_;
    }
    const uint64_t size = pending[i].tuples.size();
    replay_.push_back(PendingBatch{std::move(pending[i].tuples),
                                   conn_sent_tuples_ + size});
    auto error = Send(EncodeUpdateRequest(replay_.back().tuples, want_ack,
                                          /*replay=*/true));
    if (!error) {
      conn_sent_tuples_ += size;
      replayed_tuples_ += size;
      NetMetrics::Get().client_replayed_tuples.Add(size);
      // AwaitAcks may retire earlier replay_ entries in place.
      error = AwaitAcks(options_.max_outstanding_acks);
    }
    if (error) {
      // Hand the unsent tail back so the next attempt replays it too
      // (end counts are recomputed on that pass).
      for (size_t j = i + 1; j < pending.size(); ++j) {
        replay_.push_back(std::move(pending[j]));
      }
      return error;
    }
  }
  return std::nullopt;
}

std::optional<std::string> Client::EnsureConnected() {
  if (fd_ >= 0) return std::nullopt;
  if (!session_open_ || !options_.auto_reconnect) {
    return std::string("not connected");
  }
  return Reconnect();
}

std::optional<std::string> Client::Update(std::span<const Tuple> tuples) {
  if (auto error = EnsureConnected()) return error;
  ++batches_since_ack_;
  const bool want_ack = batches_since_ack_ >= options_.ack_every;
  if (want_ack) {
    batches_since_ack_ = 0;
    ++acks_requested_;
  }
  if (options_.auto_reconnect) {
    // Buffered before the send: a batch is retired only by an ack that
    // covers it, so a failure anywhere below replays it.
    replay_.push_back(
        PendingBatch{std::vector<Tuple>(tuples.begin(), tuples.end()),
                     conn_sent_tuples_ + tuples.size()});
    sent_tuples_ += tuples.size();
  }
  auto error = Send(EncodeUpdateRequest(tuples, want_ack));
  if (!error) {
    conn_sent_tuples_ += tuples.size();
    if (!options_.auto_reconnect) sent_tuples_ += tuples.size();
    error = AwaitAcks(options_.max_outstanding_acks);
  }
  if (error && transport_failed_ && options_.auto_reconnect) {
    if (auto reconnect_error = Reconnect()) return reconnect_error;
    error = AwaitAcks(options_.max_outstanding_acks);
  }
  return error;
}

std::optional<std::string> Client::Flush() {
  if (auto error = EnsureConnected()) return error;
  for (uint32_t round = 0;; ++round) {
    ++acks_requested_;
    batches_since_ack_ = 0;
    auto error = Send(EncodeUpdateRequest({}, /*want_ack=*/true));
    if (!error) error = AwaitAcks(0);
    if (!error) return std::nullopt;
    if (!transport_failed_ || !options_.auto_reconnect ||
        round >= options_.max_retries) {
      return error;
    }
    if (auto reconnect_error = Reconnect()) return reconnect_error;
  }
}

template <typename Op>
std::optional<std::string> Client::WithRetry(Op&& op) {
  for (uint32_t attempt = 0;; ++attempt) {
    std::optional<std::string> error;
    if (fd_ < 0) {
      // Default options (no retries, no reconnect) keep the original
      // fail-fast behavior; otherwise idempotent requests may redial.
      if (!session_open_ ||
          (options_.max_retries == 0 && !options_.auto_reconnect)) {
        return std::string("not connected");
      }
      error = options_.auto_reconnect ? Reconnect() : Dial();
    }
    if (!error) error = op();
    if (!error || !transport_failed_) return error;
    if (attempt >= options_.max_retries) return error;
    ++retries_;
    NetMetrics::Get().client_retries.Add(1);
    DropConnection();
    SleepBackoff(attempt);
  }
}

std::optional<std::string> Client::Query(item_t key, uint64_t* estimate) {
  return WithRetry([&]() -> std::optional<std::string> {
    if (auto error = Send(EncodeQueryRequest(key))) return error;
    Frame response;
    if (auto error = ReadResponse(Opcode::kQuery, &response)) return error;
    if (!ParseQueryResponse(response.payload, estimate)) {
      transport_failed_ = true;
      return std::string("malformed QUERY response");
    }
    return std::nullopt;
  });
}

std::optional<std::string> Client::QueryBatch(
    std::span<const item_t> keys, std::vector<uint64_t>* estimates) {
  return WithRetry([&]() -> std::optional<std::string> {
    if (auto error = Send(EncodeQueryBatchRequest(keys))) return error;
    Frame response;
    if (auto error = ReadResponse(Opcode::kQueryBatch, &response)) {
      return error;
    }
    if (!ParseQueryBatchResponse(response.payload, estimates)) {
      transport_failed_ = true;
      return std::string("malformed QUERY_BATCH response");
    }
    return std::nullopt;
  });
}

std::optional<std::string> Client::TopK(uint32_t k,
                                        std::vector<TopKEntry>* entries) {
  return WithRetry([&]() -> std::optional<std::string> {
    if (auto error = Send(EncodeTopKRequest(k))) return error;
    Frame response;
    if (auto error = ReadResponse(Opcode::kTopK, &response)) return error;
    if (!ParseTopKResponse(response.payload, entries)) {
      transport_failed_ = true;
      return std::string("malformed TOPK response");
    }
    return std::nullopt;
  });
}

std::optional<std::string> Client::Stats(WireStats* stats) {
  return WithRetry([&]() -> std::optional<std::string> {
    if (auto error = Send(EncodeStatsRequest())) return error;
    Frame response;
    if (auto error = ReadResponse(Opcode::kStats, &response)) return error;
    if (!ParseStatsResponse(response.payload, stats)) {
      transport_failed_ = true;
      return std::string("malformed STATS response");
    }
    return std::nullopt;
  });
}

std::optional<std::string> Client::Snapshot(StateDigest* digest) {
  // Deliberately not retried: every attempt cuts a checkpoint.
  if (auto error = EnsureConnected()) return error;
  if (auto error = Send(EncodeSnapshotRequest())) return error;
  Frame response;
  if (auto error = ReadResponse(Opcode::kSnapshot, &response)) return error;
  if (!ParseStateDigestResponse(response.payload, digest)) {
    transport_failed_ = true;
    return std::string("malformed SNAPSHOT response");
  }
  return std::nullopt;
}

std::optional<std::string> Client::Digest(StateDigest* digest) {
  return WithRetry([&]() -> std::optional<std::string> {
    if (auto error = Send(EncodeDigestRequest())) return error;
    Frame response;
    if (auto error = ReadResponse(Opcode::kDigest, &response)) return error;
    if (!ParseStateDigestResponse(response.payload, digest)) {
      transport_failed_ = true;
      return std::string("malformed DIGEST response");
    }
    return std::nullopt;
  });
}

std::optional<std::string> Client::WaitReady(int fd, short events,
                                             uint32_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int wait_ms = -1;
    if (timeout_ms > 0) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) {
        transport_failed_ = true;
        NetMetrics::Get().deadline_expired.Add(1);
        return std::string("I/O deadline exceeded");
      }
      wait_ms = static_cast<int>(remaining);
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int ready = SocketPoll(options_.io, &pfd, 1, wait_ms);
    if (ready > 0) return std::nullopt;
    if (ready < 0 && errno != EINTR && errno != EAGAIN) {
      transport_failed_ = true;
      return std::string("poll failed");
    }
    // ready == 0 (timeout tick) or EINTR: loop recomputes the budget.
  }
}

std::optional<std::string> Client::Send(
    const std::vector<uint8_t>& frame) {
  if (fd_ < 0) {
    transport_failed_ = true;
    return std::string("not connected");
  }
  const uint32_t timeout_ms = io_timeout_override_ms_ != 0
                                  ? io_timeout_override_ms_
                                  : options_.write_timeout_ms;
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = SocketSend(options_.io, fd_, frame.data() + sent,
                                 frame.size() - sent, kSendFlags);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (auto error = WaitReady(fd_, POLLOUT, timeout_ms)) return error;
      continue;
    }
    transport_failed_ = true;
    return std::string("send failed (connection lost)");
  }
  return std::nullopt;
}

std::optional<std::string> Client::ReadResponse(Opcode expect, Frame* out) {
  if (fd_ < 0) {
    transport_failed_ = true;
    return std::string("not connected");
  }
  const uint32_t timeout_ms = io_timeout_override_ms_ != 0
                                  ? io_timeout_override_ms_
                                  : options_.read_timeout_ms;
  uint8_t buffer[64 * 1024];
  for (;;) {
    if (auto frame = decoder_.Next()) {
      if (!frame->is_response()) {
        transport_failed_ = true;
        return std::string("server sent a non-response frame");
      }
      if (frame->opcode == Opcode::kUpdate &&
          frame->status == NetStatus::kOk && expect != Opcode::kUpdate) {
        // A pipelined ack arriving ahead of the awaited response.
        if (!ParseUpdateAck(frame->payload, &last_ack_)) {
          transport_failed_ = true;
          return std::string("malformed UPDATE ack");
        }
        ApplyAck();
        continue;
      }
      if (frame->status != NetStatus::kOk &&
          frame->status != NetStatus::kVersionMismatch) {
        transport_failed_ = false;
        return std::string("server error (") +
               std::string(NetStatusName(frame->status)) + "): " +
               std::string(frame->payload.begin(), frame->payload.end());
      }
      if (frame->opcode != expect) {
        transport_failed_ = true;
        return std::string("response opcode mismatch");
      }
      *out = std::move(*frame);
      return std::nullopt;
    }
    if (decoder_.corrupt()) {
      transport_failed_ = true;
      return std::string("corrupt frame from server");
    }
    const ssize_t n =
        SocketRecv(options_.io, fd_, buffer, sizeof(buffer), 0);
    if (n == 0) {
      transport_failed_ = true;
      return std::string("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (auto error = WaitReady(fd_, POLLIN, timeout_ms)) return error;
        continue;
      }
      transport_failed_ = true;
      return std::string("connection closed by server");
    }
    decoder_.Feed(buffer, static_cast<size_t>(n));
  }
}

void Client::ApplyAck() {
  ++acks_received_;
  while (!replay_.empty() &&
         replay_.front().end_count <= last_ack_.received_tuples) {
    replay_.pop_front();
  }
}

std::optional<std::string> Client::AwaitAcks(uint32_t max_outstanding) {
  while (acks_requested_ - acks_received_ > max_outstanding) {
    Frame ack;
    if (auto error = ReadResponse(Opcode::kUpdate, &ack)) return error;
    if (!ParseUpdateAck(ack.payload, &last_ack_)) {
      transport_failed_ = true;
      return std::string("malformed UPDATE ack");
    }
    ApplyAck();
  }
  return std::nullopt;
}

#else  // !ASKETCH_NET_SUPPORTED

std::optional<std::string> Client::Connect(const ClientOptions&) {
  return std::string("asketch net client requires a POSIX socket API");
}
void Client::Close() {}
std::optional<std::string> Client::Update(std::span<const Tuple>) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::Flush() {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::Query(item_t, uint64_t*) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::QueryBatch(std::span<const item_t>,
                                              std::vector<uint64_t>*) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::TopK(uint32_t,
                                        std::vector<TopKEntry>*) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::Stats(WireStats*) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::Snapshot(StateDigest*) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::Digest(StateDigest*) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::Dial() {
  return std::string("unsupported platform");
}
void Client::DropConnection() {}
std::optional<std::string> Client::Reconnect() {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::ReplayPending() {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::EnsureConnected() {
  return std::string("unsupported platform");
}
void Client::SleepBackoff(uint32_t) {}
std::optional<std::string> Client::Send(const std::vector<uint8_t>&) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::ReadResponse(Opcode, Frame*) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::AwaitAcks(uint32_t) {
  return std::string("unsupported platform");
}
void Client::ApplyAck() {}
std::optional<std::string> Client::WaitReady(int, short, uint32_t) {
  return std::string("unsupported platform");
}

#endif  // ASKETCH_NET_SUPPORTED

}  // namespace net
}  // namespace asketch
