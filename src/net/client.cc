#include "src/net/client.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define ASKETCH_NET_SUPPORTED 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define ASKETCH_NET_SUPPORTED 0
#endif

namespace asketch {
namespace net {

Client::~Client() { Close(); }

#if ASKETCH_NET_SUPPORTED

std::optional<std::string> Client::Connect(const ClientOptions& options) {
  if (fd_ >= 0) return std::string("already connected");
  options_ = options;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::string("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return "bad host address: " + options.host;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "connect to " + options.host + ":" +
           std::to_string(options.port) + " failed";
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;

  if (auto error = Send(EncodeHelloRequest(HelloRequest{}))) {
    Close();
    return error;
  }
  Frame response;
  if (auto error = ReadResponse(Opcode::kHello, &response)) {
    Close();
    return error;
  }
  if (response.status == NetStatus::kVersionMismatch) {
    std::string range = "?";
    if (response.payload.size() == 8) {
      uint32_t lo = 0, hi = 0;
      std::memcpy(&lo, response.payload.data(), 4);
      std::memcpy(&hi, response.payload.data() + 4, 4);
      range = std::to_string(lo) + ".." + std::to_string(hi);
    }
    Close();
    return "protocol version mismatch: client speaks " +
           std::to_string(kProtocolVersionMin) + ".." +
           std::to_string(kProtocolVersionMax) + ", server speaks " + range;
  }
  HelloResponse hello;
  if (response.status != NetStatus::kOk ||
      !ParseHelloResponse(response.payload, &hello)) {
    Close();
    return std::string("malformed HELLO response");
  }
  version_ = hello.version;
  server_shards_ = hello.num_shards;
  return std::nullopt;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder{};
  version_ = 0;
  server_shards_ = 0;
  sent_tuples_ = 0;
  batches_since_ack_ = 0;
  acks_requested_ = 0;
  acks_received_ = 0;
  last_ack_ = UpdateAck{};
}

std::optional<std::string> Client::Update(std::span<const Tuple> tuples) {
  if (fd_ < 0) return std::string("not connected");
  ++batches_since_ack_;
  const bool want_ack = batches_since_ack_ >= options_.ack_every;
  if (want_ack) {
    batches_since_ack_ = 0;
    ++acks_requested_;
  }
  if (auto error = Send(EncodeUpdateRequest(tuples, want_ack))) {
    return error;
  }
  sent_tuples_ += tuples.size();
  return AwaitAcks(options_.max_outstanding_acks);
}

std::optional<std::string> Client::Flush() {
  if (fd_ < 0) return std::string("not connected");
  ++acks_requested_;
  batches_since_ack_ = 0;
  if (auto error = Send(EncodeUpdateRequest({}, /*want_ack=*/true))) {
    return error;
  }
  return AwaitAcks(0);
}

std::optional<std::string> Client::Query(item_t key, uint64_t* estimate) {
  if (auto error = Send(EncodeQueryRequest(key))) return error;
  Frame response;
  if (auto error = ReadResponse(Opcode::kQuery, &response)) return error;
  if (!ParseQueryResponse(response.payload, estimate)) {
    return std::string("malformed QUERY response");
  }
  return std::nullopt;
}

std::optional<std::string> Client::QueryBatch(
    std::span<const item_t> keys, std::vector<uint64_t>* estimates) {
  if (auto error = Send(EncodeQueryBatchRequest(keys))) return error;
  Frame response;
  if (auto error = ReadResponse(Opcode::kQueryBatch, &response)) {
    return error;
  }
  if (!ParseQueryBatchResponse(response.payload, estimates)) {
    return std::string("malformed QUERY_BATCH response");
  }
  return std::nullopt;
}

std::optional<std::string> Client::TopK(uint32_t k,
                                        std::vector<TopKEntry>* entries) {
  if (auto error = Send(EncodeTopKRequest(k))) return error;
  Frame response;
  if (auto error = ReadResponse(Opcode::kTopK, &response)) return error;
  if (!ParseTopKResponse(response.payload, entries)) {
    return std::string("malformed TOPK response");
  }
  return std::nullopt;
}

std::optional<std::string> Client::Stats(WireStats* stats) {
  if (auto error = Send(EncodeStatsRequest())) return error;
  Frame response;
  if (auto error = ReadResponse(Opcode::kStats, &response)) return error;
  if (!ParseStatsResponse(response.payload, stats)) {
    return std::string("malformed STATS response");
  }
  return std::nullopt;
}

std::optional<std::string> Client::Snapshot(StateDigest* digest) {
  if (auto error = Send(EncodeSnapshotRequest())) return error;
  Frame response;
  if (auto error = ReadResponse(Opcode::kSnapshot, &response)) return error;
  if (!ParseStateDigestResponse(response.payload, digest)) {
    return std::string("malformed SNAPSHOT response");
  }
  return std::nullopt;
}

std::optional<std::string> Client::Digest(StateDigest* digest) {
  if (auto error = Send(EncodeDigestRequest())) return error;
  Frame response;
  if (auto error = ReadResponse(Opcode::kDigest, &response)) return error;
  if (!ParseStateDigestResponse(response.payload, digest)) {
    return std::string("malformed DIGEST response");
  }
  return std::nullopt;
}

std::optional<std::string> Client::Send(
    const std::vector<uint8_t>& frame) {
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return std::string("send failed (connection lost)");
    sent += static_cast<size_t>(n);
  }
  return std::nullopt;
}

std::optional<std::string> Client::ReadResponse(Opcode expect, Frame* out) {
  uint8_t buffer[64 * 1024];
  for (;;) {
    if (auto frame = decoder_.Next()) {
      if (!frame->is_response()) {
        return std::string("server sent a non-response frame");
      }
      if (frame->opcode == Opcode::kUpdate &&
          frame->status == NetStatus::kOk && expect != Opcode::kUpdate) {
        // A pipelined ack arriving ahead of the awaited response.
        if (!ParseUpdateAck(frame->payload, &last_ack_)) {
          return std::string("malformed UPDATE ack");
        }
        ++acks_received_;
        continue;
      }
      if (frame->status != NetStatus::kOk &&
          frame->status != NetStatus::kVersionMismatch) {
        return std::string("server error (") +
               std::string(NetStatusName(frame->status)) + "): " +
               std::string(frame->payload.begin(), frame->payload.end());
      }
      if (frame->opcode != expect) {
        return std::string("response opcode mismatch");
      }
      *out = std::move(*frame);
      return std::nullopt;
    }
    if (decoder_.corrupt()) {
      return std::string("corrupt frame from server");
    }
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n <= 0) return std::string("connection closed by server");
    decoder_.Feed(buffer, static_cast<size_t>(n));
  }
}

std::optional<std::string> Client::AwaitAcks(uint32_t max_outstanding) {
  while (acks_requested_ - acks_received_ > max_outstanding) {
    Frame ack;
    if (auto error = ReadResponse(Opcode::kUpdate, &ack)) return error;
    if (!ParseUpdateAck(ack.payload, &last_ack_)) {
      return std::string("malformed UPDATE ack");
    }
    ++acks_received_;
  }
  return std::nullopt;
}

#else  // !ASKETCH_NET_SUPPORTED

std::optional<std::string> Client::Connect(const ClientOptions&) {
  return std::string("asketch net client requires a POSIX socket API");
}
void Client::Close() {}
std::optional<std::string> Client::Update(std::span<const Tuple>) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::Flush() {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::Query(item_t, uint64_t*) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::QueryBatch(std::span<const item_t>,
                                              std::vector<uint64_t>*) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::TopK(uint32_t,
                                        std::vector<TopKEntry>*) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::Stats(WireStats*) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::Snapshot(StateDigest*) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::Digest(StateDigest*) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::Send(const std::vector<uint8_t>&) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::ReadResponse(Opcode, Frame*) {
  return std::string("unsupported platform");
}
std::optional<std::string> Client::AwaitAcks(uint32_t) {
  return std::string("unsupported platform");
}

#endif  // ASKETCH_NET_SUPPORTED

}  // namespace net
}  // namespace asketch
