// Blocking client for the asketchd protocol. Connect() performs the
// HELLO negotiation; afterwards the client exposes one call per opcode.
//
// Update() is pipelined: batches are written fire-and-forget, with a
// want-ack flag every `ack_every` batches, and the sender blocks only
// when more than `max_outstanding_acks` requested acks are unread —
// the windowing that makes 2M+ updates/s over loopback possible while
// still bounding how far the client can run ahead of the server.
// Synchronous calls (Query, Stats, ...) first drain any pending acks
// interleaved ahead of their response.
//
// Fault tolerance (all off by default — the defaults reproduce the
// original block-forever, fail-on-first-error behavior bit for bit):
//
//  * Deadlines. connect/read/write timeouts, enforced with a
//    nonblocking socket + poll. Read/write deadlines are progress
//    deadlines: the clock restarts whenever a syscall moves bytes, so
//    a large frame on a slow link is fine while a hung peer is not.
//    EINTR never kills a connection — interrupted syscalls resume
//    against the same deadline.
//
//  * Retry. Idempotent requests (QUERY, QUERY_BATCH, TOPK, STATS,
//    DIGEST) are retried up to `max_retries` times on transport errors
//    with exponential backoff. SNAPSHOT is deliberately excluded: each
//    attempt cuts a checkpoint server-side.
//
//  * Reconnect + replay. With `auto_reconnect`, a transport failure
//    tears the connection down, redials (+ re-HELLO), and re-sends
//    every UPDATE batch not covered by the last cumulative ack before
//    the interrupted call continues. Replay is at-least-once: a batch
//    the server applied but whose ack was lost is applied twice, which
//    only pushes estimates up — the one-sided bound survives by
//    construction (PROTOCOL.md "Ack-based replay"). The replay buffer
//    is bounded by the ack window (at most ~ack_every ×
//    (max_outstanding_acks + 1) batches are ever unacked).
//
// Not thread-safe: one Client per thread (asketch_loadgen opens one
// connection per worker).

#ifndef ASKETCH_NET_CLIENT_H_
#define ASKETCH_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/net/protocol.h"
#include "src/net/socket_io.h"

namespace asketch {
namespace net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Request an ack every N Update() batches (1 = every batch).
  uint32_t ack_every = 16;
  /// Block once this many requested acks are unread.
  uint32_t max_outstanding_acks = 4;
  /// Deadline for Connect() (TCP dial + HELLO); 0 waits forever.
  uint32_t connect_timeout_ms = 0;
  /// Progress deadline for reads/writes; 0 waits forever.
  uint32_t read_timeout_ms = 0;
  uint32_t write_timeout_ms = 0;
  /// Transport-error retries for idempotent requests (0 = fail fast).
  uint32_t max_retries = 0;
  /// Base backoff before retry r is backoff << r, capped at 1s.
  uint32_t retry_backoff_ms = 10;
  /// Redial + replay unacked UPDATE batches on transport failure.
  bool auto_reconnect = false;
  /// Syscall seam for deterministic fault injection (tests only;
  /// empty hooks dispatch straight to the real syscalls).
  SocketIoHooks io{};
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// TCP connect + HELLO negotiation. On a version mismatch the error
  /// message carries the server's supported range.
  std::optional<std::string> Connect(const ClientOptions& options);
  void Close();
  bool connected() const { return fd_ >= 0; }

  uint32_t negotiated_version() const { return version_; }
  uint32_t server_shards() const { return server_shards_; }

  /// Pipelined batched ingest (see header comment). The returned error,
  /// if any, is a transport failure — application-level shedding is
  /// reported through acks (last_ack().shed_weight).
  std::optional<std::string> Update(std::span<const Tuple> tuples);

  /// Barrier: requests and awaits an ack covering everything sent so
  /// far. The ack's received_tuples equals the client-side send count
  /// on a healthy connection.
  std::optional<std::string> Flush();

  /// Most recent ack received (cumulative totals for the current
  /// connection — a reconnect resets the server-side counter).
  const UpdateAck& last_ack() const { return last_ack_; }
  /// Unique tuples handed to Update() across the client's lifetime
  /// (replayed duplicates are not double-counted here).
  uint64_t sent_tuples() const { return sent_tuples_; }

  /// Lifetime resilience counters (survive reconnects).
  uint64_t reconnects() const { return reconnects_; }
  uint64_t retries() const { return retries_; }
  uint64_t replayed_tuples() const { return replayed_tuples_; }

  std::optional<std::string> Query(item_t key, uint64_t* estimate);
  std::optional<std::string> QueryBatch(std::span<const item_t> keys,
                                        std::vector<uint64_t>* estimates);
  std::optional<std::string> TopK(uint32_t k,
                                  std::vector<TopKEntry>* entries);
  std::optional<std::string> Stats(WireStats* stats);
  std::optional<std::string> Snapshot(StateDigest* digest);
  std::optional<std::string> Digest(StateDigest* digest);

 private:
  /// One UPDATE batch awaiting its covering cumulative ack.
  /// `end_count` is the connection-local cumulative tuple count after
  /// this batch; an ack with received_tuples >= end_count retires it.
  struct PendingBatch {
    std::vector<Tuple> tuples;
    uint64_t end_count;
  };

  /// Dial + HELLO against options_ (fd_ must be -1). Does not touch
  /// the replay buffer or lifetime counters.
  std::optional<std::string> Dial();
  /// Tear down the transport but keep session state (replay buffer,
  /// lifetime counters) so a reconnect can resume.
  void DropConnection();
  /// Redial with backoff (up to max_retries + 1 attempts), each
  /// attempt replaying every pending UPDATE batch.
  std::optional<std::string> Reconnect();
  /// Re-sends replay_ on a fresh connection, recomputing end counts.
  std::optional<std::string> ReplayPending();
  /// Reconnects if the session is open, auto_reconnect is on, and the
  /// transport is down; "not connected" otherwise.
  std::optional<std::string> EnsureConnected();
  /// Exponential backoff before retry `attempt` (capped at 1s).
  void SleepBackoff(uint32_t attempt);
  /// Runs `op` with transport-retry semantics for idempotent requests.
  template <typename Op>
  std::optional<std::string> WithRetry(Op&& op);

  std::optional<std::string> Send(const std::vector<uint8_t>& frame);
  /// Reads until a frame arrives; consumes interleaved UPDATE acks.
  /// `expect` is the opcode whose response the caller awaits.
  std::optional<std::string> ReadResponse(Opcode expect, Frame* out);
  /// Blocks until at most `max_outstanding` requested acks are unread.
  std::optional<std::string> AwaitAcks(uint32_t max_outstanding);
  /// Applies a just-parsed cumulative ack: retires covered batches.
  void ApplyAck();
  /// Poll `fd` for `events` within `timeout_ms` (0 = forever);
  /// retries EINTR. Error string on timeout or poll failure.
  std::optional<std::string> WaitReady(int fd, short events,
                                       uint32_t timeout_ms);

  int fd_ = -1;
  ClientOptions options_;
  uint32_t version_ = 0;
  uint32_t server_shards_ = 0;
  FrameDecoder decoder_;
  uint64_t sent_tuples_ = 0;
  uint64_t batches_since_ack_ = 0;
  uint32_t acks_requested_ = 0;
  uint32_t acks_received_ = 0;
  UpdateAck last_ack_;
  /// Connection-local cumulative count of tuples sent (what the
  /// server's ack counter will reach once it has seen them all).
  uint64_t conn_sent_tuples_ = 0;
  /// Sent-but-unacked batches, oldest first (auto_reconnect only).
  std::deque<PendingBatch> replay_;
  /// True when the last error reported by Send/ReadResponse was a
  /// transport failure (as opposed to a server-reported error).
  bool transport_failed_ = false;
  /// True once Connect() has succeeded; cleared by Close(). Gates
  /// whether EnsureConnected/WithRetry may redial.
  bool session_open_ = false;
  /// Nonzero while the HELLO exchange runs under the connect deadline.
  uint32_t io_timeout_override_ms_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t retries_ = 0;
  uint64_t replayed_tuples_ = 0;
};

}  // namespace net
}  // namespace asketch

#endif  // ASKETCH_NET_CLIENT_H_
