// Blocking client for the asketchd protocol. Connect() performs the
// HELLO negotiation; afterwards the client exposes one call per opcode.
//
// Update() is pipelined: batches are written fire-and-forget, with a
// want-ack flag every `ack_every` batches, and the sender blocks only
// when more than `max_outstanding_acks` requested acks are unread —
// the windowing that makes 2M+ updates/s over loopback possible while
// still bounding how far the client can run ahead of the server.
// Synchronous calls (Query, Stats, ...) first drain any pending acks
// interleaved ahead of their response.
//
// Not thread-safe: one Client per thread (asketch_loadgen opens one
// connection per worker).

#ifndef ASKETCH_NET_CLIENT_H_
#define ASKETCH_NET_CLIENT_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/net/protocol.h"

namespace asketch {
namespace net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Request an ack every N Update() batches (1 = every batch).
  uint32_t ack_every = 16;
  /// Block once this many requested acks are unread.
  uint32_t max_outstanding_acks = 4;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// TCP connect + HELLO negotiation. On a version mismatch the error
  /// message carries the server's supported range.
  std::optional<std::string> Connect(const ClientOptions& options);
  void Close();
  bool connected() const { return fd_ >= 0; }

  uint32_t negotiated_version() const { return version_; }
  uint32_t server_shards() const { return server_shards_; }

  /// Pipelined batched ingest (see header comment). The returned error,
  /// if any, is a transport failure — application-level shedding is
  /// reported through acks (last_ack().shed_weight).
  std::optional<std::string> Update(std::span<const Tuple> tuples);

  /// Barrier: requests and awaits an ack covering everything sent so
  /// far. The ack's received_tuples equals the client-side send count
  /// on a healthy connection.
  std::optional<std::string> Flush();

  /// Most recent ack received (cumulative per-connection totals).
  const UpdateAck& last_ack() const { return last_ack_; }
  uint64_t sent_tuples() const { return sent_tuples_; }

  std::optional<std::string> Query(item_t key, uint64_t* estimate);
  std::optional<std::string> QueryBatch(std::span<const item_t> keys,
                                        std::vector<uint64_t>* estimates);
  std::optional<std::string> TopK(uint32_t k,
                                  std::vector<TopKEntry>* entries);
  std::optional<std::string> Stats(WireStats* stats);
  std::optional<std::string> Snapshot(StateDigest* digest);
  std::optional<std::string> Digest(StateDigest* digest);

 private:
  std::optional<std::string> Send(const std::vector<uint8_t>& frame);
  /// Reads until a frame arrives; consumes interleaved UPDATE acks.
  /// `expect` is the opcode whose response the caller awaits.
  std::optional<std::string> ReadResponse(Opcode expect, Frame* out);
  /// Blocks until at most `max_outstanding` requested acks are unread.
  std::optional<std::string> AwaitAcks(uint32_t max_outstanding);

  int fd_ = -1;
  ClientOptions options_;
  uint32_t version_ = 0;
  uint32_t server_shards_ = 0;
  FrameDecoder decoder_;
  uint64_t sent_tuples_ = 0;
  uint64_t batches_since_ack_ = 0;
  uint32_t acks_requested_ = 0;
  uint32_t acks_received_ = 0;
  UpdateAck last_ack_;
};

}  // namespace net
}  // namespace asketch

#endif  // ASKETCH_NET_CLIENT_H_
