// Pre-resolved metric handles for the network serving layer, following
// the core_metrics.h pattern: one registry lookup per process, then each
// instrumentation site is a cache-local counter add.
//
// Per-shard queue depth is per-instance state, so it is not here: each
// ShardSet registers callback gauges `asketch_net_shard_queue_depth`
// labelled shard="N" (plus the shard="none" placeholder below keeping
// the family present while no server is running).
//
// Metric naming (DESIGN.md §5): asketch_net_<what>[_total|_ns].

#ifndef ASKETCH_NET_NET_METRICS_H_
#define ASKETCH_NET_NET_METRICS_H_

#include "src/obs/metrics.h"

namespace asketch {
namespace net {

struct NetMetrics {
  obs::Counter& connections_total;   ///< connections ever accepted
  obs::Counter& frames_total;        ///< request frames decoded
  obs::Counter& frame_errors_total;  ///< malformed/rejected frames
  obs::Counter& update_batches;      ///< UPDATE frames applied
  obs::Counter& update_tuples;       ///< tuples carried by UPDATE frames
  obs::Counter& queries;             ///< QUERY + QUERY_BATCH keys answered
  obs::Counter& shed_weight;         ///< weight dropped under overload
  obs::Counter& inline_applied;      ///< tuples applied on the caller thread
  obs::Counter& enqueue_waits;       ///< bounded waits on a full shard queue
  obs::Counter& lockless_reads;      ///< queries answered without shard.mu
  obs::Counter& seqlock_retries;     ///< filter snapshot reads re-run after
                                     ///< colliding with a writer section
  obs::Counter& corrupt_streams;     ///< connections dropped for an
                                     ///< undecodable frame stream
  obs::Counter& idle_disconnects;    ///< connections closed by the server's
                                     ///< per-connection idle deadline
  obs::Counter& client_reconnects;   ///< successful client redial+replay
  obs::Counter& client_retries;      ///< idempotent requests retried after
                                     ///< a transport failure
  obs::Counter& client_replayed_tuples;  ///< tuples re-sent from the
                                         ///< unacked replay buffer
  obs::Counter& deadline_expired;    ///< client I/O waits that hit their
                                     ///< connect/read/write deadline
  obs::Counter& delta_merges;        ///< DeltaBatches folded in by shard
                                     ///< owners (ASketch::ApplyDelta calls)
  obs::Counter& delta_flushed_tuples;  ///< tuples handed to the owners
                                       ///< inside flushed DeltaBatches
  obs::Counter& exit_flush_shed;     ///< weight shed while flushing a
                                     ///< closing connection's deltas
  obs::Counter& replayed_tuples;     ///< tuples received in UPDATE frames
                                     ///< flagged as reconnect replays
  obs::Counter& sampled_skipped_tuples;  ///< delta-mode tail tuples elided
                                         ///< by sampling (compensated)
  obs::Gauge& connections;           ///< currently open connections
  obs::Gauge& degraded;              ///< 1 while any shard queue overflowed
  obs::Gauge& sample_rate_permille;  ///< effective tail sampling rate
                                     ///< (1000 = sampling off)
  obs::Histogram& request_ns;        ///< wall time of one non-UPDATE request
  obs::Histogram& delta_merge_ns;    ///< wall time of one delta fold
  obs::Gauge& queue_depth_idle;      ///< constant-0 shard="none" placeholder

  static NetMetrics& Get() {
    static NetMetrics* metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new NetMetrics{
          r.GetCounter("asketch_net_connections_total"),
          r.GetCounter("asketch_net_frames_total"),
          r.GetCounter("asketch_net_frame_errors_total"),
          r.GetCounter("asketch_net_update_batches_total"),
          r.GetCounter("asketch_net_update_tuples_total"),
          r.GetCounter("asketch_net_queries_total"),
          r.GetCounter("asketch_net_shed_weight_total"),
          r.GetCounter("asketch_net_inline_applied_total"),
          r.GetCounter("asketch_net_enqueue_waits_total"),
          r.GetCounter("asketch_net_lockless_reads_total"),
          r.GetCounter("asketch_net_seqlock_retries_total"),
          r.GetCounter("asketch_net_corrupt_streams_total"),
          r.GetCounter("asketch_net_idle_disconnects_total"),
          r.GetCounter("asketch_net_client_reconnects_total"),
          r.GetCounter("asketch_net_client_retries_total"),
          r.GetCounter("asketch_net_client_replayed_tuples_total"),
          r.GetCounter("asketch_net_deadline_expired_total"),
          r.GetCounter("asketch_net_delta_merges_total"),
          r.GetCounter("asketch_net_delta_flushed_tuples_total"),
          r.GetCounter("asketch_net_exit_flush_shed_total"),
          r.GetCounter("asketch_net_replayed_tuples_total"),
          r.GetCounter("asketch_net_sampled_skipped_tuples_total"),
          r.GetGauge("asketch_net_connections"),
          r.GetGauge("asketch_net_degraded"),
          r.GetGauge("asketch_net_sample_rate_permille"),
          r.GetHistogram("asketch_net_request_ns"),
          r.GetHistogram("asketch_net_delta_merge_ns"),
          r.GetGauge("asketch_net_shard_queue_depth", "shard=\"none\"")};
    }();
    return *metrics;
  }
};

}  // namespace net
}  // namespace asketch

#endif  // ASKETCH_NET_NET_METRICS_H_
