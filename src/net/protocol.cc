#include "src/net/protocol.h"

#include <algorithm>
#include <cstring>

#include "src/common/serialize.h"

namespace asketch {
namespace net {

namespace {

std::vector<uint8_t> FrameFromWriter(Opcode opcode, uint8_t flags,
                                     NetStatus status,
                                     const BinaryWriter& writer) {
  return EncodeFrame(opcode, flags, status, writer.buffer());
}

}  // namespace

std::string_view NetStatusName(NetStatus status) {
  switch (status) {
    case NetStatus::kOk: return "ok";
    case NetStatus::kBadFrame: return "bad_frame";
    case NetStatus::kUnknownOpcode: return "unknown_opcode";
    case NetStatus::kVersionMismatch: return "version_mismatch";
    case NetStatus::kHelloRequired: return "hello_required";
    case NetStatus::kBadRequest: return "bad_request";
    case NetStatus::kSnapshotFailed: return "snapshot_failed";
    case NetStatus::kShuttingDown: return "shutting_down";
    case NetStatus::kOverloaded: return "overloaded";
  }
  return "unknown_status";
}

std::optional<uint32_t> NegotiateVersion(uint32_t server_min,
                                         uint32_t server_max,
                                         uint32_t client_min,
                                         uint32_t client_max) {
  if (server_min > server_max || client_min > client_max) {
    return std::nullopt;
  }
  const uint32_t low = std::max(server_min, client_min);
  const uint32_t high = std::min(server_max, client_max);
  if (low > high) return std::nullopt;
  return high;
}

std::vector<uint8_t> EncodeFrame(Opcode opcode, uint8_t flags,
                                 NetStatus status,
                                 std::span<const uint8_t> payload) {
  BinaryWriter writer;
  writer.Reserve(kFrameHeaderBytes + payload.size());
  writer.PutU32(static_cast<uint32_t>(4 + payload.size()));
  writer.PutU8(static_cast<uint8_t>(opcode));
  writer.PutU8(flags);
  writer.PutBytes(&status, sizeof(uint16_t));
  writer.PutBytes(payload.data(), payload.size());
  return writer.buffer();
}

void FrameDecoder::Feed(const void* data, size_t size) {
  if (corrupt_ || size == 0) return;
  // Reclaim consumed prefix before appending, so buffering stays bounded
  // by one partial frame plus one read.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const auto* bytes = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

std::optional<Frame> FrameDecoder::Next() {
  if (corrupt_) return std::nullopt;
  const size_t available = buffer_.size() - consumed_;
  if (available < sizeof(uint32_t)) return std::nullopt;
  uint32_t length = 0;
  std::memcpy(&length, buffer_.data() + consumed_, sizeof(length));
  // length counts the opcode/flags/status header tail plus the payload;
  // anything below that minimum or beyond the cap is a lying prefix.
  if (length < 4 || length > 4 + kMaxFramePayloadBytes) {
    corrupt_ = true;
    return std::nullopt;
  }
  if (available < sizeof(uint32_t) + length) return std::nullopt;
  const uint8_t* body = buffer_.data() + consumed_ + sizeof(uint32_t);
  Frame frame;
  frame.opcode = static_cast<Opcode>(body[0]);
  frame.flags = body[1];
  uint16_t status = 0;
  std::memcpy(&status, body + 2, sizeof(status));
  frame.status = static_cast<NetStatus>(status);
  frame.payload.assign(body + 4, body + length);
  consumed_ += sizeof(uint32_t) + length;
  return frame;
}

// -- HELLO --------------------------------------------------------------

std::vector<uint8_t> EncodeHelloRequest(const HelloRequest& hello) {
  BinaryWriter writer;
  writer.PutU32(hello.magic);
  writer.PutU32(hello.min_version);
  writer.PutU32(hello.max_version);
  return FrameFromWriter(Opcode::kHello, 0, NetStatus::kOk, writer);
}

bool ParseHelloRequest(std::span<const uint8_t> payload,
                       HelloRequest* out) {
  if (payload.size() != 12) return false;
  BinaryReader reader(payload.data(), payload.size());
  return reader.GetU32(&out->magic) && reader.GetU32(&out->min_version) &&
         reader.GetU32(&out->max_version) && out->magic == kProtocolMagic;
}

std::vector<uint8_t> EncodeHelloResponse(const HelloResponse& hello) {
  BinaryWriter writer;
  writer.PutU32(hello.version);
  writer.PutU32(hello.num_shards);
  return FrameFromWriter(Opcode::kHello, kFlagResponse, NetStatus::kOk,
                         writer);
}

bool ParseHelloResponse(std::span<const uint8_t> payload,
                        HelloResponse* out) {
  if (payload.size() != 8) return false;
  BinaryReader reader(payload.data(), payload.size());
  return reader.GetU32(&out->version) && reader.GetU32(&out->num_shards);
}

std::vector<uint8_t> EncodeVersionMismatch(uint32_t server_min,
                                           uint32_t server_max) {
  BinaryWriter writer;
  writer.PutU32(server_min);
  writer.PutU32(server_max);
  return FrameFromWriter(Opcode::kHello, kFlagResponse,
                         NetStatus::kVersionMismatch, writer);
}

// -- UPDATE -------------------------------------------------------------

std::vector<uint8_t> EncodeUpdateRequest(std::span<const Tuple> tuples,
                                         bool want_ack, bool replay) {
  BinaryWriter writer;
  writer.Reserve(4 + tuples.size() * 8);
  writer.PutU32(static_cast<uint32_t>(tuples.size()));
  for (const Tuple& t : tuples) {
    writer.PutU32(t.key);
    writer.PutU32(t.value);
  }
  uint8_t flags = want_ack ? kFlagWantAck : uint8_t{0};
  if (replay) flags |= kFlagReplay;
  return FrameFromWriter(Opcode::kUpdate, flags, NetStatus::kOk, writer);
}

bool ParseUpdateRequest(std::span<const uint8_t> payload,
                        std::vector<Tuple>* out) {
  out->clear();
  BinaryReader reader(payload.data(), payload.size());
  uint32_t count = 0;
  if (!reader.GetU32(&count)) return false;
  // Cap before allocating, then cross-check the declared count against
  // the bytes actually present (8 bytes per tuple, no trailing garbage).
  if (count > kMaxBatchTuples) return false;
  if (payload.size() != 4 + static_cast<size_t>(count) * 8) return false;
  out->resize(count);
  for (Tuple& t : *out) {
    if (!reader.GetU32(&t.key) || !reader.GetU32(&t.value)) return false;
  }
  return true;
}

std::vector<uint8_t> EncodeUpdateAck(const UpdateAck& ack) {
  BinaryWriter writer;
  writer.PutU64(ack.received_tuples);
  writer.PutU64(ack.shed_weight);
  return FrameFromWriter(Opcode::kUpdate, kFlagResponse, NetStatus::kOk,
                         writer);
}

bool ParseUpdateAck(std::span<const uint8_t> payload, UpdateAck* out) {
  if (payload.size() != 16) return false;
  BinaryReader reader(payload.data(), payload.size());
  return reader.GetU64(&out->received_tuples) &&
         reader.GetU64(&out->shed_weight);
}

// -- QUERY / QUERY_BATCH -------------------------------------------------

std::vector<uint8_t> EncodeQueryRequest(item_t key) {
  BinaryWriter writer;
  writer.PutU32(key);
  return FrameFromWriter(Opcode::kQuery, 0, NetStatus::kOk, writer);
}

bool ParseQueryRequest(std::span<const uint8_t> payload, item_t* out) {
  if (payload.size() != 4) return false;
  BinaryReader reader(payload.data(), payload.size());
  return reader.GetU32(out);
}

std::vector<uint8_t> EncodeQueryResponse(uint64_t estimate) {
  BinaryWriter writer;
  writer.PutU64(estimate);
  return FrameFromWriter(Opcode::kQuery, kFlagResponse, NetStatus::kOk,
                         writer);
}

bool ParseQueryResponse(std::span<const uint8_t> payload, uint64_t* out) {
  if (payload.size() != 8) return false;
  BinaryReader reader(payload.data(), payload.size());
  return reader.GetU64(out);
}

std::vector<uint8_t> EncodeQueryBatchRequest(
    std::span<const item_t> keys) {
  BinaryWriter writer;
  writer.Reserve(4 + keys.size() * 4);
  writer.PutU32(static_cast<uint32_t>(keys.size()));
  for (const item_t key : keys) writer.PutU32(key);
  return FrameFromWriter(Opcode::kQueryBatch, 0, NetStatus::kOk, writer);
}

bool ParseQueryBatchRequest(std::span<const uint8_t> payload,
                            std::vector<item_t>* out) {
  out->clear();
  BinaryReader reader(payload.data(), payload.size());
  uint32_t count = 0;
  if (!reader.GetU32(&count)) return false;
  if (count > kMaxQueryKeys) return false;
  if (payload.size() != 4 + static_cast<size_t>(count) * 4) return false;
  out->resize(count);
  for (item_t& key : *out) {
    if (!reader.GetU32(&key)) return false;
  }
  return true;
}

std::vector<uint8_t> EncodeQueryBatchResponse(
    std::span<const uint64_t> estimates) {
  BinaryWriter writer;
  writer.Reserve(4 + estimates.size() * 8);
  writer.PutU32(static_cast<uint32_t>(estimates.size()));
  for (const uint64_t estimate : estimates) writer.PutU64(estimate);
  return FrameFromWriter(Opcode::kQueryBatch, kFlagResponse,
                         NetStatus::kOk, writer);
}

bool ParseQueryBatchResponse(std::span<const uint8_t> payload,
                             std::vector<uint64_t>* out) {
  out->clear();
  BinaryReader reader(payload.data(), payload.size());
  uint32_t count = 0;
  if (!reader.GetU32(&count)) return false;
  if (count > kMaxQueryKeys) return false;
  if (payload.size() != 4 + static_cast<size_t>(count) * 8) return false;
  out->resize(count);
  for (uint64_t& estimate : *out) {
    if (!reader.GetU64(&estimate)) return false;
  }
  return true;
}

// -- TOPK ----------------------------------------------------------------

std::vector<uint8_t> EncodeTopKRequest(uint32_t k) {
  BinaryWriter writer;
  writer.PutU32(k);
  return FrameFromWriter(Opcode::kTopK, 0, NetStatus::kOk, writer);
}

bool ParseTopKRequest(std::span<const uint8_t> payload, uint32_t* out) {
  if (payload.size() != 4) return false;
  BinaryReader reader(payload.data(), payload.size());
  return reader.GetU32(out);
}

std::vector<uint8_t> EncodeTopKResponse(
    std::span<const TopKEntry> entries) {
  BinaryWriter writer;
  writer.Reserve(4 + entries.size() * 20);
  writer.PutU32(static_cast<uint32_t>(entries.size()));
  for (const TopKEntry& e : entries) {
    writer.PutU32(e.key);
    writer.PutU64(e.estimate);
    writer.PutU64(e.exact_hits);
  }
  return FrameFromWriter(Opcode::kTopK, kFlagResponse, NetStatus::kOk,
                         writer);
}

bool ParseTopKResponse(std::span<const uint8_t> payload,
                       std::vector<TopKEntry>* out) {
  out->clear();
  BinaryReader reader(payload.data(), payload.size());
  uint32_t count = 0;
  if (!reader.GetU32(&count)) return false;
  if (count > kMaxTopK) return false;
  if (payload.size() != 4 + static_cast<size_t>(count) * 20) return false;
  out->resize(count);
  for (TopKEntry& e : *out) {
    if (!reader.GetU32(&e.key) || !reader.GetU64(&e.estimate) ||
        !reader.GetU64(&e.exact_hits)) {
      return false;
    }
  }
  return true;
}

// -- STATS ---------------------------------------------------------------

std::vector<uint8_t> EncodeStatsRequest() {
  return EncodeFrame(Opcode::kStats, 0, NetStatus::kOk, {});
}

std::vector<uint8_t> EncodeStatsResponse(const WireStats& stats) {
  BinaryWriter writer;
  writer.PutU32(stats.num_shards);
  writer.PutU64(stats.ingested);
  writer.PutU64(stats.shed_weight);
  writer.PutU64(stats.inline_applied);
  writer.PutU64(stats.filtered_weight);
  writer.PutU64(stats.sketch_weight);
  writer.PutU64(stats.exchanges);
  writer.PutU64(stats.sketch_updates);
  writer.PutU64(stats.memory_bytes);
  writer.PutU64(stats.snapshot_generation);
  writer.PutU32(static_cast<uint32_t>(stats.per_shard_ingested.size()));
  for (const uint64_t ingested : stats.per_shard_ingested) {
    writer.PutU64(ingested);
  }
  return FrameFromWriter(Opcode::kStats, kFlagResponse, NetStatus::kOk,
                         writer);
}

bool ParseStatsResponse(std::span<const uint8_t> payload, WireStats* out) {
  BinaryReader reader(payload.data(), payload.size());
  uint32_t shard_count = 0;
  if (!reader.GetU32(&out->num_shards) || !reader.GetU64(&out->ingested) ||
      !reader.GetU64(&out->shed_weight) ||
      !reader.GetU64(&out->inline_applied) ||
      !reader.GetU64(&out->filtered_weight) ||
      !reader.GetU64(&out->sketch_weight) ||
      !reader.GetU64(&out->exchanges) ||
      !reader.GetU64(&out->sketch_updates) ||
      !reader.GetU64(&out->memory_bytes) ||
      !reader.GetU64(&out->snapshot_generation) ||
      !reader.GetU32(&shard_count)) {
    return false;
  }
  // Shard counts are small (a serving box has at most a few dozen
  // kernels); the cap rejects corrupt counts before allocating.
  constexpr uint32_t kMaxShards = 4096;
  if (shard_count > kMaxShards) return false;
  if (payload.size() != 80 + static_cast<size_t>(shard_count) * 8) {
    return false;
  }
  out->per_shard_ingested.resize(shard_count);
  for (uint64_t& ingested : out->per_shard_ingested) {
    if (!reader.GetU64(&ingested)) return false;
  }
  return true;
}

// -- SNAPSHOT / DIGEST -----------------------------------------------------

std::vector<uint8_t> EncodeSnapshotRequest() {
  return EncodeFrame(Opcode::kSnapshot, 0, NetStatus::kOk, {});
}

std::vector<uint8_t> EncodeDigestRequest() {
  return EncodeFrame(Opcode::kDigest, 0, NetStatus::kOk, {});
}

std::vector<uint8_t> EncodeStateDigestResponse(Opcode opcode,
                                               const StateDigest& digest) {
  BinaryWriter writer;
  writer.PutU64(digest.generation);
  writer.PutU64(digest.ingested);
  writer.PutU32(digest.digest);
  return FrameFromWriter(opcode, kFlagResponse, NetStatus::kOk, writer);
}

bool ParseStateDigestResponse(std::span<const uint8_t> payload,
                              StateDigest* out) {
  if (payload.size() != 20) return false;
  BinaryReader reader(payload.data(), payload.size());
  return reader.GetU64(&out->generation) && reader.GetU64(&out->ingested) &&
         reader.GetU32(&out->digest);
}

// -- errors ---------------------------------------------------------------

std::vector<uint8_t> EncodeErrorResponse(Opcode opcode, NetStatus status,
                                         std::string_view message) {
  return EncodeFrame(
      opcode, kFlagResponse, status,
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(message.data()),
          message.size()));
}

}  // namespace net
}  // namespace asketch
