// asketchd wire protocol: a small length-prefixed binary framing over
// TCP. The normative specification lives in docs/PROTOCOL.md; this
// header is its executable twin — the protocol-version negotiation test
// (tests/net_protocol_test.cc) pins the two together so they cannot
// drift silently.
//
// Frame layout (little-endian):
//
//   offset  size  field
//        0     4  length  — bytes that follow this field (4 .. 4 + 1 MiB)
//        4     1  opcode
//        5     1  flags   (bit 0: response, bit 1: want-ack,
//                          bit 2: replayed)
//        6     2  status  (requests: 0; responses: a NetStatus code)
//        8     …  payload (length - 4 bytes)
//
// Every parser here is defensive in the same way the snapshot/serialize
// deserializers are (PR 2 capacity caps): declared counts are bounded
// before any allocation and cross-checked against the bytes actually
// present, so truncated, oversized, or garbage frames yield a parse
// failure — never a crash, an over-read, or a giant allocation.

#ifndef ASKETCH_NET_PROTOCOL_H_
#define ASKETCH_NET_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.h"

namespace asketch {
namespace net {

/// Bytes of the fixed header (length + opcode + flags + status).
inline constexpr size_t kFrameHeaderBytes = 8;

/// Maximum payload a frame may declare. Bounds both the decoder's
/// buffering and the largest UPDATE batch (~128K tuples).
inline constexpr uint32_t kMaxFramePayloadBytes = 1u << 20;

/// Handshake magic carried by HELLO ("ASKN").
inline constexpr uint32_t kProtocolMagic = 0x4e4b5341u;

/// Protocol versions this build speaks, inclusive. A server and client
/// negotiate the highest version both ranges contain (see
/// NegotiateVersion); disjoint ranges abort the connection with
/// kVersionMismatch.
inline constexpr uint32_t kProtocolVersionMin = 1;
inline constexpr uint32_t kProtocolVersionMax = 1;

/// Caps on declared element counts (all cross-checked against the bytes
/// actually present before any allocation).
inline constexpr uint32_t kMaxBatchTuples =
    (kMaxFramePayloadBytes - 4) / 8;
inline constexpr uint32_t kMaxQueryKeys = 1u << 16;
inline constexpr uint32_t kMaxTopK = 1u << 16;

enum class Opcode : uint8_t {
  kHello = 0x01,     ///< version negotiation; must open every connection
  kUpdate = 0x02,    ///< batched tuples; fire-and-forget unless want-ack
  kQuery = 0x03,     ///< single-key point query
  kQueryBatch = 0x04,///< many point queries in one round trip
  kTopK = 0x05,      ///< merged heavy-hitter report
  kStats = 0x06,     ///< serving/ingest statistics
  kSnapshot = 0x07,  ///< cut a checkpoint now
  kDigest = 0x08,    ///< CRC32C digest of the full serialized state
};

/// Frame flag bits.
inline constexpr uint8_t kFlagResponse = 0x01;
inline constexpr uint8_t kFlagWantAck = 0x02;
/// Set by a reconnecting client on UPDATE batches re-sent from its
/// unacked replay buffer. The server applies flagged batches normally
/// (replay is at-least-once by design — PROTOCOL.md "Ack-based replay")
/// and counts them toward the connection's cumulative ack, but books
/// their tuples into asketch_net_replayed_tuples_total instead of the
/// first-transmission counter, so global ingest metrics are not
/// inflated by retransmissions. Servers that predate the flag ignore
/// unknown bits, so it is wire-compatible with protocol version 1.
inline constexpr uint8_t kFlagReplay = 0x04;

/// Status codes carried by response frames.
enum class NetStatus : uint16_t {
  kOk = 0,
  kBadFrame = 1,         ///< malformed payload for the opcode
  kUnknownOpcode = 2,
  kVersionMismatch = 3,  ///< HELLO ranges are disjoint
  kHelloRequired = 4,    ///< non-HELLO frame before negotiation
  kBadRequest = 5,       ///< well-formed but unsatisfiable (e.g. k = 0)
  kSnapshotFailed = 6,   ///< persistence disabled or the save failed
  kShuttingDown = 7,     ///< server is draining; retry elsewhere
  kOverloaded = 8,       ///< reserved: queue-full rejection policy
};

/// Human-readable name of a status code (diagnostics/logs).
std::string_view NetStatusName(NetStatus status);

/// One decoded frame.
struct Frame {
  Opcode opcode = Opcode::kHello;
  uint8_t flags = 0;
  NetStatus status = NetStatus::kOk;
  std::vector<uint8_t> payload;

  bool is_response() const { return (flags & kFlagResponse) != 0; }
  bool want_ack() const { return (flags & kFlagWantAck) != 0; }
  bool is_replay() const { return (flags & kFlagReplay) != 0; }
};

/// Highest protocol version inside both inclusive ranges, or nullopt if
/// the ranges are disjoint (→ kVersionMismatch).
std::optional<uint32_t> NegotiateVersion(uint32_t server_min,
                                         uint32_t server_max,
                                         uint32_t client_min,
                                         uint32_t client_max);

/// Wraps `payload` in a frame header.
std::vector<uint8_t> EncodeFrame(Opcode opcode, uint8_t flags,
                                 NetStatus status,
                                 std::span<const uint8_t> payload);

/// Incremental frame parser. Feed() appends raw bytes from the socket;
/// Next() pops complete frames in order. A frame declaring a length
/// below the 4-byte minimum or beyond kMaxFramePayloadBytes poisons the
/// decoder (corrupt() stays true; Next() returns nothing) — the caller
/// must drop the connection, because resynchronizing inside a byte
/// stream with a lying length prefix is impossible.
class FrameDecoder {
 public:
  void Feed(const void* data, size_t size);

  /// Next complete frame, or nullopt when more bytes are needed (or the
  /// stream is corrupt).
  std::optional<Frame> Next();

  bool corrupt() const { return corrupt_; }
  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  bool corrupt_ = false;
};

// ---------------------------------------------------------------------
// Typed payloads. Encode* returns a complete frame (header included);
// Parse* consumes a Frame::payload and returns false on any malformed
// input (short payload, trailing bytes, count beyond cap).
// ---------------------------------------------------------------------

struct HelloRequest {
  uint32_t magic = kProtocolMagic;
  uint32_t min_version = kProtocolVersionMin;
  uint32_t max_version = kProtocolVersionMax;
};

struct HelloResponse {
  uint32_t version = 0;     ///< negotiated protocol version
  uint32_t num_shards = 0;  ///< server shard count (informational)
};

/// Cumulative per-connection ingest accounting, returned by want-ack
/// UPDATE frames.
struct UpdateAck {
  uint64_t received_tuples = 0;  ///< tuples accepted from this connection
  uint64_t shed_weight = 0;      ///< weight shed under overload
};

struct TopKEntry {
  item_t key = 0;
  uint64_t estimate = 0;    ///< filter new_count (exact for hot keys)
  uint64_t exact_hits = 0;  ///< new_count - old_count
};

/// The STATS response: aggregate ingest/serving counters across shards.
struct WireStats {
  uint32_t num_shards = 0;
  uint64_t ingested = 0;              ///< tuples applied to the shards
  uint64_t shed_weight = 0;           ///< weight dropped under overload
  uint64_t inline_applied = 0;        ///< tuples applied inline (overload)
  uint64_t filtered_weight = 0;       ///< N1 summed over shards
  uint64_t sketch_weight = 0;         ///< N2 summed over shards
  uint64_t exchanges = 0;
  uint64_t sketch_updates = 0;
  uint64_t memory_bytes = 0;
  uint64_t snapshot_generation = 0;   ///< 0 when never checkpointed
  std::vector<uint64_t> per_shard_ingested;
};

/// The SNAPSHOT / DIGEST response. `digest` is CRC32C over the exact
/// serialized shard payload, so two states with equal digests are
/// bit-identical under serialization.
struct StateDigest {
  uint64_t generation = 0;  ///< snapshot generation (0 for kDigest)
  uint64_t ingested = 0;    ///< tuples applied when the state was cut
  uint32_t digest = 0;
};

std::vector<uint8_t> EncodeHelloRequest(const HelloRequest& hello);
bool ParseHelloRequest(std::span<const uint8_t> payload, HelloRequest* out);
std::vector<uint8_t> EncodeHelloResponse(const HelloResponse& hello);
bool ParseHelloResponse(std::span<const uint8_t> payload,
                        HelloResponse* out);
/// Version-mismatch reply: status kVersionMismatch, payload = the
/// server's supported range.
std::vector<uint8_t> EncodeVersionMismatch(uint32_t server_min,
                                           uint32_t server_max);

/// `replay` sets kFlagReplay (reconnect retransmissions only).
std::vector<uint8_t> EncodeUpdateRequest(std::span<const Tuple> tuples,
                                         bool want_ack,
                                         bool replay = false);
bool ParseUpdateRequest(std::span<const uint8_t> payload,
                        std::vector<Tuple>* out);
std::vector<uint8_t> EncodeUpdateAck(const UpdateAck& ack);
bool ParseUpdateAck(std::span<const uint8_t> payload, UpdateAck* out);

std::vector<uint8_t> EncodeQueryRequest(item_t key);
bool ParseQueryRequest(std::span<const uint8_t> payload, item_t* out);
std::vector<uint8_t> EncodeQueryResponse(uint64_t estimate);
bool ParseQueryResponse(std::span<const uint8_t> payload, uint64_t* out);

std::vector<uint8_t> EncodeQueryBatchRequest(std::span<const item_t> keys);
bool ParseQueryBatchRequest(std::span<const uint8_t> payload,
                            std::vector<item_t>* out);
std::vector<uint8_t> EncodeQueryBatchResponse(
    std::span<const uint64_t> estimates);
bool ParseQueryBatchResponse(std::span<const uint8_t> payload,
                             std::vector<uint64_t>* out);

std::vector<uint8_t> EncodeTopKRequest(uint32_t k);
bool ParseTopKRequest(std::span<const uint8_t> payload, uint32_t* out);
std::vector<uint8_t> EncodeTopKResponse(std::span<const TopKEntry> entries);
bool ParseTopKResponse(std::span<const uint8_t> payload,
                       std::vector<TopKEntry>* out);

std::vector<uint8_t> EncodeStatsRequest();
std::vector<uint8_t> EncodeStatsResponse(const WireStats& stats);
bool ParseStatsResponse(std::span<const uint8_t> payload, WireStats* out);

std::vector<uint8_t> EncodeSnapshotRequest();
std::vector<uint8_t> EncodeDigestRequest();
/// Shared by the SNAPSHOT and DIGEST responses.
std::vector<uint8_t> EncodeStateDigestResponse(Opcode opcode,
                                               const StateDigest& digest);
bool ParseStateDigestResponse(std::span<const uint8_t> payload,
                              StateDigest* out);

/// Error reply for any request: echoes the opcode, carries a nonzero
/// status and a UTF-8 message as the payload.
std::vector<uint8_t> EncodeErrorResponse(Opcode opcode, NetStatus status,
                                         std::string_view message);

}  // namespace net
}  // namespace asketch

#endif  // ASKETCH_NET_PROTOCOL_H_
