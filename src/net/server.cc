#include "src/net/server.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "src/net/net_metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define ASKETCH_NET_SUPPORTED 1
#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define ASKETCH_NET_SUPPORTED 0
#endif

namespace asketch {
namespace net {

Server::Server(ServerOptions options)
    : options_(options), shards_(options.shards) {
  if (!options_.snapshot_prefix.empty()) {
    store_ = std::make_unique<SnapshotStore>(options_.snapshot_prefix,
                                             options_.snapshot_retain);
  }
}

Server::~Server() { Stop(); }

#if ASKETCH_NET_SUPPORTED

namespace {

constexpr int kSendFlags =
#ifdef MSG_NOSIGNAL
    MSG_NOSIGNAL;
#else
    0;
#endif

bool SendAll(const SocketIoHooks& io, int fd,
             const std::vector<uint8_t>& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = SocketSend(io, fd, data.data() + sent,
                                 data.size() - sent, kSendFlags);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      if (SocketPoll(io, &pfd, 1, 100) < 0 && errno != EINTR &&
          errno != EAGAIN) {
        return false;
      }
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace

std::optional<std::string> Server::Start() {
  if (listen_fd_ >= 0) return std::string("server already started");
  if (options_.recover) {
    if (store_ == nullptr) {
      return std::string("--recover requires a snapshot prefix");
    }
    StateDigest digest;
    if (auto error = shards_.RecoverFromStore(*store_, &digest)) {
      return error;
    }
    recovered_ = digest;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::string("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return std::string("bind/listen failed on port ") +
           std::to_string(options_.port);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) !=
      0) {
    ::close(fd);
    return std::string("getsockname failed");
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (store_ != nullptr && options_.checkpoint_interval_ms > 0) {
    checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
  }
  return std::nullopt;
}

void Server::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (std::thread& t : connection_threads_) {
      if (t.joinable()) t.join();
    }
    connection_threads_.clear();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  shards_.Drain();
  if (store_ != nullptr) Checkpoint();
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    // 100 ms poll timeout bounds Stop() latency (http_exporter idiom).
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    if (open_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      SendAll(options_.io, client,
              EncodeErrorResponse(Opcode::kHello, NetStatus::kShuttingDown,
                                  "connection limit reached"));
      ::close(client);
      continue;
    }
    NetMetrics::Get().connections_total.Add(1);
    NetMetrics::Get().connections.Add(1);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(connections_mu_);
    connection_threads_.emplace_back([this, client] {
      HandleConnection(client);
      ::close(client);
      open_connections_.fetch_sub(1, std::memory_order_relaxed);
      NetMetrics::Get().connections.Add(-1);
    });
  }
}

void Server::HandleConnection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  FrameDecoder decoder;
  bool hello_done = false;
  uint64_t received = 0;
  uint64_t shed = 0;
  DeltaIngestState delta_state = shards_.MakeDeltaState();
  // Whatever path closes the connection, its unflushed delta tuples
  // reach the shard queues — an UPDATE acknowledged on this connection
  // is never stranded in a dead accumulator. No-op in queue mode.
  // Weight shed by this final flush (overloaded queues degrading to
  // kShed) is booked into the connection's shed total and the
  // exit-flush counter: the connection is closing, so no ack will
  // carry the number to the client, but the server-side ledger must
  // still balance (OPERATIONS.md, asketch_net_exit_flush_shed_total).
  struct FlushOnExit {
    ShardSet& shards;
    DeltaIngestState& state;
    uint64_t& shed;
    ~FlushOnExit() {
      const uint64_t dropped = shards.FlushDeltas(state);
      if (dropped != 0) {
        shed += dropped;
        NetMetrics::Get().exit_flush_shed.Add(dropped);
      }
    }
  } flush_on_exit{shards_, delta_state, shed};
  std::vector<Tuple> update_scratch;
  std::vector<uint8_t> buffer(64 * 1024);
  auto last_activity = std::chrono::steady_clock::now();

  // Feeds `n` fresh bytes and handles every complete frame now
  // buffered. Returns false when the connection must close.
  const auto consume = [&](size_t n) {
    decoder.Feed(buffer.data(), n);
    while (auto frame = decoder.Next()) {
      if (!HandleFrame(fd, *frame, hello_done, received, shed,
                       delta_state, update_scratch)) {
        return false;
      }
    }
    if (decoder.corrupt()) {
      // A lying length prefix is unrecoverable mid-stream; tell the
      // client why, then drop the connection.
      NetMetrics::Get().frame_errors_total.Add(1);
      NetMetrics::Get().corrupt_streams.Add(1);
      SendAll(options_.io, fd,
              EncodeErrorResponse(Opcode::kHello, NetStatus::kBadFrame,
                                  "corrupt frame stream"));
      return false;
    }
    return true;
  };

  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = SocketPoll(options_.io, &pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return;
    }
    if (ready == 0) {
      if (options_.idle_timeout_ms > 0 &&
          std::chrono::steady_clock::now() - last_activity >
              std::chrono::milliseconds(options_.idle_timeout_ms)) {
        // Slow loris: a peer holding the slot without sending frames.
        NetMetrics::Get().idle_disconnects.Add(1);
        SendAll(options_.io, fd,
                EncodeErrorResponse(Opcode::kHello,
                                    NetStatus::kShuttingDown,
                                    "idle deadline exceeded"));
        return;
      }
      continue;
    }
    const ssize_t n =
        SocketRecv(options_.io, fd, buffer.data(), buffer.size(), 0);
    if (n == 0) return;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return;
    }
    last_activity = std::chrono::steady_clock::now();
    if (!consume(static_cast<size_t>(n))) return;
  }

  // Graceful drain on Stop(): handle whatever complete frames the peer
  // already put on the wire, then end with a clean EOF instead of an
  // abrupt close, so a well-behaved client sees its final responses.
  for (;;) {
    const ssize_t n = SocketRecv(options_.io, fd, buffer.data(),
                                 buffer.size(), MSG_DONTWAIT);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    if (!consume(static_cast<size_t>(n))) return;
  }
  ::shutdown(fd, SHUT_WR);
}

bool Server::HandleFrame(int fd, const Frame& frame, bool& hello_done,
                         uint64_t& received, uint64_t& shed,
                         DeltaIngestState& delta_state,
                         std::vector<Tuple>& update_scratch) {
  NetMetrics& metrics = NetMetrics::Get();
  metrics.frames_total.Add(1);
  const auto fail = [&](NetStatus status, std::string_view message) {
    metrics.frame_errors_total.Add(1);
    SendAll(options_.io, fd, EncodeErrorResponse(frame.opcode, status, message));
    return false;
  };

  if (!hello_done) {
    if (frame.opcode != Opcode::kHello) {
      return fail(NetStatus::kHelloRequired,
                  "HELLO must open every connection");
    }
    HelloRequest hello;
    if (!ParseHelloRequest(frame.payload, &hello)) {
      return fail(NetStatus::kBadFrame, "malformed HELLO");
    }
    const auto version =
        NegotiateVersion(kProtocolVersionMin, kProtocolVersionMax,
                         hello.min_version, hello.max_version);
    if (!version.has_value()) {
      metrics.frame_errors_total.Add(1);
      SendAll(options_.io, fd, EncodeVersionMismatch(kProtocolVersionMin,
                                        kProtocolVersionMax));
      return false;
    }
    hello_done = true;
    return SendAll(options_.io, fd, EncodeHelloResponse(
                           HelloResponse{*version, shards_.num_shards()}));
  }

  switch (frame.opcode) {
    case Opcode::kHello:
      return fail(NetStatus::kBadRequest, "HELLO already negotiated");

    case Opcode::kUpdate: {
      // Decode into the connection's scratch vector: ParseUpdateRequest
      // clears and refills it, so capacity persists across frames and
      // steady-state ingest does no per-frame allocation.
      if (!ParseUpdateRequest(frame.payload, &update_scratch)) {
        return fail(NetStatus::kBadFrame, "malformed UPDATE");
      }
      // `received` counts replayed tuples too: the client retires its
      // replay buffer against this cumulative figure, so a replayed
      // batch must advance it exactly like a first transmission. Only
      // the global metric split distinguishes the two.
      received += update_scratch.size();
      // In delta mode the tuples are absorbed into this connection's
      // private accumulator; the ack means "owned by the server", and
      // the flush points below (plus connection teardown) bound how
      // long they can stay invisible to queries.
      shed += shards_.Ingest(update_scratch, &delta_state);
      metrics.update_batches.Add(1);
      if (frame.is_replay()) {
        metrics.replayed_tuples.Add(update_scratch.size());
      } else {
        metrics.update_tuples.Add(update_scratch.size());
      }
      if (frame.want_ack()) {
        return SendAll(options_.io, fd, EncodeUpdateAck(UpdateAck{received, shed}));
      }
      return true;
    }

    case Opcode::kQuery: {
      const auto start = std::chrono::steady_clock::now();
      item_t key = 0;
      if (!ParseQueryRequest(frame.payload, &key)) {
        return fail(NetStatus::kBadFrame, "malformed QUERY");
      }
      metrics.queries.Add(1);
      const bool ok =
          SendAll(options_.io, fd, EncodeQueryResponse(shards_.Estimate(key)));
      metrics.request_ns.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
      return ok;
    }

    case Opcode::kQueryBatch: {
      const auto start = std::chrono::steady_clock::now();
      std::vector<item_t> keys;
      if (!ParseQueryBatchRequest(frame.payload, &keys)) {
        return fail(NetStatus::kBadFrame, "malformed QUERY_BATCH");
      }
      std::vector<uint64_t> estimates;
      shards_.EstimateBatch(keys, &estimates);
      metrics.queries.Add(keys.size());
      const bool ok = SendAll(options_.io, fd, EncodeQueryBatchResponse(estimates));
      metrics.request_ns.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
      return ok;
    }

    case Opcode::kTopK: {
      uint32_t k = 0;
      if (!ParseTopKRequest(frame.payload, &k)) {
        return fail(NetStatus::kBadFrame, "malformed TOPK");
      }
      if (k == 0 || k > kMaxTopK) {
        return fail(NetStatus::kBadRequest, "k out of range");
      }
      return SendAll(options_.io, fd, EncodeTopKResponse(shards_.TopK(k)));
    }

    case Opcode::kStats: {
      shed += shards_.FlushDeltas(delta_state);
      WireStats stats = shards_.GetStats();
      if (store_ != nullptr) {
        stats.snapshot_generation = store_->LatestGeneration();
      }
      return SendAll(options_.io, fd, EncodeStatsResponse(stats));
    }

    case Opcode::kSnapshot: {
      // Flush before the barrier: the cut must reflect every tuple
      // this connection sent, exactly as in queue mode.
      shed += shards_.FlushDeltas(delta_state);
      if (store_ == nullptr) {
        return fail(NetStatus::kSnapshotFailed, "persistence disabled");
      }
      StateDigest digest;
      if (auto error = Checkpoint(&digest)) {
        return fail(NetStatus::kSnapshotFailed, *error);
      }
      return SendAll(options_.io, fd,
                     EncodeStateDigestResponse(Opcode::kSnapshot, digest));
    }

    case Opcode::kDigest: {
      shed += shards_.FlushDeltas(delta_state);
      StateDigest digest;
      shards_.SerializeState(&digest);
      if (store_ != nullptr) {
        digest.generation = store_->LatestGeneration();
      }
      return SendAll(options_.io, fd,
                     EncodeStateDigestResponse(Opcode::kDigest, digest));
    }
  }
  return fail(NetStatus::kUnknownOpcode, "unknown opcode");
}

#else  // !ASKETCH_NET_SUPPORTED

std::optional<std::string> Server::Start() {
  return std::string("asketchd requires a POSIX socket API");
}

void Server::Stop() {}
void Server::AcceptLoop() {}
void Server::HandleConnection(int) {}
bool Server::HandleFrame(int, const Frame&, bool&, uint64_t&, uint64_t&,
                         DeltaIngestState&, std::vector<Tuple>&) {
  return false;
}

#endif  // ASKETCH_NET_SUPPORTED

std::optional<std::string> Server::Checkpoint(StateDigest* digest) {
  if (store_ == nullptr) {
    return std::string("persistence disabled (no snapshot prefix)");
  }
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  StateDigest local;
  if (auto error = shards_.SaveSnapshot(*store_, &local)) return error;
  if (digest != nullptr) *digest = local;
  return std::nullopt;
}

void Server::CheckpointLoop() {
  auto next = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(options_.checkpoint_interval_ms);
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (std::chrono::steady_clock::now() < next) continue;
    Checkpoint();
    next = std::chrono::steady_clock::now() +
           std::chrono::milliseconds(options_.checkpoint_interval_ms);
  }
}

}  // namespace net
}  // namespace asketch
