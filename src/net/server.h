// asketchd's TCP serving core: accepts loopback/LAN connections, speaks
// the framed protocol of src/net/protocol.h, and applies traffic to a
// ShardSet. One OS thread per connection (bounded by max_connections);
// UPDATE frames are fire-and-forget into the shard queues, so a
// connection thread's steady-state cost is recv + frame decode + the
// per-shard split — the sketch work happens on the shard workers.
//
// Persistence: when snapshot_prefix is set the server owns a CKP-style
// SnapshotStore. SNAPSHOT requests, the optional background checkpoint
// loop, and the final checkpoint in Stop() all funnel through
// Checkpoint(), which serializes cuts under one mutex. With
// `recover = true`, Start() refuses to serve unless a valid generation
// was adopted (matching asketch_cli's recover semantics: recovering
// from nothing is an error, not an empty sketch).
//
// Lifecycle: Start() binds (port 0 = ephemeral; read the bound port
// back from port()), Stop() stops accepting, drains connection threads,
// and cuts a final checkpoint. Both are idempotent.

#ifndef ASKETCH_NET_SERVER_H_
#define ASKETCH_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/snapshot.h"
#include "src/net/protocol.h"
#include "src/net/shard_set.h"
#include "src/net/socket_io.h"

namespace asketch {
namespace net {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port.
  uint16_t port = 0;
  ShardSetOptions shards;
  /// SnapshotStore prefix; empty disables persistence (SNAPSHOT then
  /// answers kSnapshotFailed).
  std::string snapshot_prefix;
  uint32_t snapshot_retain = 3;
  /// Adopt the newest valid snapshot generation before serving; an
  /// error if none validates.
  bool recover = false;
  /// Cut a checkpoint every this many ms; 0 disables the loop.
  uint32_t checkpoint_interval_ms = 0;
  /// Connections beyond this are accepted and immediately closed with a
  /// kShuttingDown error frame.
  uint32_t max_connections = 64;
  /// Close a connection that has been silent (no bytes received) for
  /// this long — the slow-loris defense. 0 disables the deadline.
  /// Enforced at the connection loop's 100 ms poll granularity.
  uint32_t idle_timeout_ms = 0;
  /// Syscall seam for deterministic fault injection (tests only;
  /// empty hooks dispatch straight to the real syscalls).
  SocketIoHooks io{};
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and starts serving. Returns an error message on failure
  /// (bind failure, unsupported platform, failed --recover).
  std::optional<std::string> Start();

  /// Graceful shutdown: stop accepting, drain each live connection
  /// (already-buffered complete frames are still handled, then the
  /// write side is shut down for a clean EOF), join connection and
  /// checkpoint threads, drain the shards, cut a final checkpoint.
  /// Idempotent.
  void Stop();

  /// Bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  /// Cuts a checkpoint now (signal handlers in asketchd route here).
  /// Error when persistence is disabled or the save fails.
  std::optional<std::string> Checkpoint(StateDigest* digest = nullptr);

  /// Digest adopted during --recover (nullopt when recover was off).
  const std::optional<StateDigest>& recovered() const { return recovered_; }

  /// Direct shard access for in-process oracles in tests.
  ShardSet& shards() { return shards_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Dispatches one decoded frame; returns false when the connection
  /// must close. `hello_done`, `received`, `shed` and `delta_state`
  /// are per-connection; under --ingest-mode delta the connection
  /// thread is the decode thread that owns the delta accumulator, and
  /// STATS/SNAPSHOT/DIGEST flush it so those barriers cover every
  /// tuple this connection has sent. `update_scratch` is the
  /// connection's reusable UPDATE decode buffer: batches are parsed
  /// into it in place, so steady-state ingest does one allocation per
  /// high-water batch size instead of one per frame.
  bool HandleFrame(int fd, const Frame& frame, bool& hello_done,
                   uint64_t& received, uint64_t& shed,
                   DeltaIngestState& delta_state,
                   std::vector<Tuple>& update_scratch);
  void CheckpointLoop();

  ServerOptions options_;
  ShardSet shards_;
  std::unique_ptr<SnapshotStore> store_;
  std::optional<StateDigest> recovered_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{true};
  std::atomic<uint32_t> open_connections_{0};
  std::thread accept_thread_;
  std::thread checkpoint_thread_;
  std::mutex connections_mu_;  ///< guards connection_threads_
  std::vector<std::thread> connection_threads_;
  std::mutex checkpoint_mu_;  ///< serializes Checkpoint() cuts
};

}  // namespace net
}  // namespace asketch

#endif  // ASKETCH_NET_SERVER_H_
