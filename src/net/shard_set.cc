#include "src/net/shard_set.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/crc32c.h"
#include "src/net/net_metrics.h"
#include "src/obs/metrics.h"

namespace asketch {
namespace net {

namespace {

constexpr uint32_t kShardSetMagic = 0x31445253u;  // "SRD1"

uint64_t BatchWeight(std::span<const Tuple> tuples) {
  uint64_t weight = 0;
  for (const Tuple& t : tuples) weight += t.value;
  return weight;
}

AnyServingSketch MakeServingSketch(const ShardSetOptions& options) {
  if (options.backend == SketchBackend::kSalsa) {
    return MakeASketchSalsa<RelaxedHeapFilter>(options.shard_config);
  }
  return MakeASketchCountMin<RelaxedHeapFilter>(options.shard_config);
}

}  // namespace

uint64_t DeltaIngestState::PendingTuples() const {
  uint64_t pending = 0;
  for (const auto& slot : per_shard_) {
    if (slot.has_value()) {
      pending += std::visit(
          [](const auto& d) { return d.tuple_count(); }, *slot);
    }
  }
  return pending;
}

std::optional<std::string> ShardSetOptions::Validate() const {
  if (num_shards < 1) return std::string("num_shards must be >= 1");
  if (max_queue_batches < 1) {
    return std::string("max_queue_batches must be >= 1");
  }
  if (delta_flush_tuples < 1) {
    return std::string("delta_flush_tuples must be >= 1");
  }
  if (!(sample_rate > 0.0) || sample_rate > 1.0) {
    return std::string("sample_rate must be in (0, 1]");
  }
  return shard_config.Validate();
}

ShardSet::ShardSet(const ShardSetOptions& options) : options_(options) {
  ASKETCH_CHECK(!options.Validate().has_value());
  shards_.reserve(options.num_shards);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (uint32_t i = 0; i < options.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(MakeServingSketch(options)));
    Shard* shard = shards_.back().get();
    gauge_ids_.push_back(registry.RegisterCallbackGauge(
        "asketch_net_shard_queue_depth",
        "shard=\"" + std::to_string(i) + "\"", [shard]() -> double {
          std::lock_guard<std::mutex> lock(shard->queue_mu);
          return static_cast<double>(shard->queue.size());
        }));
  }
  // The placeholder series keeps the family present before/after any
  // ShardSet instance is alive (same trick as the pipeline gauge).
  NetMetrics::Get();
  // Tail sampling: the configured rate is the floor; adaptive mode
  // starts unsampled and decays toward it under pressure. Owner-side
  // samplers are seeded per shard before the workers start, so queue-
  // mode sampled runs are reproducible for a fixed config seed.
  floor_permille_ = std::clamp<uint32_t>(
      static_cast<uint32_t>(options.sample_rate * 1000.0 + 0.5), 1, 1000);
  for (uint32_t i = 0; i < options.num_shards; ++i) {
    std::visit(
        [&](auto& sketch) {
          sketch.SeedTailSampler(options.shard_config.seed ^
                                 (0x9e3779b97f4a7c15ull * (i + 1)));
        },
        shards_[i]->sketch);
  }
  PublishSamplePermille(options.adaptive_sampling ? 1000u
                                                  : floor_permille_);
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(*s); });
  }
}

void ShardSet::PublishSamplePermille(uint32_t permille) {
  sample_permille_.store(permille, std::memory_order_relaxed);
  NetMetrics::Get().sample_rate_permille.Set(permille);
  // Queue mode samples inside the shard owners; their relaxed-atomic
  // rate targets can be stored from any thread (ASketch folds the
  // change in at its next batch boundary). Delta mode reads
  // sample_permille_ when a decode thread opens its next epoch, so
  // nothing to push here.
  if (options_.ingest_mode == IngestMode::kQueue) {
    for (auto& shard : shards_) {
      std::visit(
          [&](auto& sketch) { sketch.SetTailSamplePermille(permille); },
          shard->sketch);
    }
  }
}

void ShardSet::NoteSubmitOutcome(bool pressure) {
  if (!options_.adaptive_sampling) return;
  const uint32_t cur = sample_permille_.load(std::memory_order_relaxed);
  if (pressure) {
    calm_submits_.store(0, std::memory_order_relaxed);
    const uint32_t next = std::max(floor_permille_, cur / 2);
    if (next != cur) PublishSamplePermille(next);
    return;
  }
  if (cur >= 1000) return;
  if (calm_submits_.fetch_add(1, std::memory_order_relaxed) + 1 >=
      kCalmSubmitsToRecover) {
    calm_submits_.store(0, std::memory_order_relaxed);
    PublishSamplePermille(std::min<uint32_t>(1000, cur * 2));
  }
}

ShardSet::~ShardSet() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (const uint64_t id : gauge_ids_) {
    registry.UnregisterCallbackGauge(id);
  }
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->queue_mu);
    shard->cv_pop.notify_all();
    shard->cv_push.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ShardSet::WorkerLoop(Shard& shard) {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(shard.queue_mu);
      shard.cv_pop.wait(lock, [&] {
        const bool stop = stop_.load(std::memory_order_acquire);
        if (shard.queue.empty()) return stop;
        // A stop request overrides the test stall: remaining queued
        // batches are applied before the worker exits, so ~ShardSet
        // never strands acknowledged tuples.
        return stop || !stalled_.load(std::memory_order_acquire);
      });
      if (shard.queue.empty()) return;  // only reachable when stopping
      item = std::move(shard.queue.front());
      shard.queue.pop_front();
      shard.busy = true;
      shard.cv_push.notify_one();
    }
    {
      std::lock_guard<std::mutex> guard(shard.mu);
      ApplyLocked(shard, item);
    }
    {
      std::lock_guard<std::mutex> lock(shard.queue_mu);
      shard.busy = false;
      if (shard.queue.empty()) shard.cv_idle.notify_all();
    }
  }
}

uint64_t ShardSet::ApplyLocked(Shard& shard, WorkItem& item) {
  const uint64_t applied = std::visit(
      [&](auto& work) -> uint64_t {
        using W = std::decay_t<decltype(work)>;
        if constexpr (std::is_same_v<W, std::vector<Tuple>>) {
          std::visit([&](auto& sketch) { sketch.UpdateBatch(work); },
                     shard.sketch);
          return work.size();
        } else {
          // A delta folds into the matching backend alternative — the
          // state it came from was built against this very shard.
          using SketchT = std::decay_t<decltype(work.tail())>;
          auto& sketch =
              std::get<ASketch<RelaxedHeapFilter, SketchT>>(shard.sketch);
          NetMetrics& metrics = NetMetrics::Get();
          const auto start = std::chrono::steady_clock::now();
          const auto error = sketch.ApplyDelta(work);
          ASKETCH_CHECK(!error.has_value());
          metrics.delta_merge_ns.Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count()));
          metrics.delta_merges.Add(1);
          return work.tuple_count();
        }
      },
      item);
  // Release: a reader that observes this boundary via AppliedTuples()
  // is guaranteed to also observe the work it accounts for (the
  // concurrency tests' oracle bracketing).
  shard.applied_tuples.fetch_add(applied, std::memory_order_release);
  return applied;
}

uint64_t ShardSet::Submit(Shard& shard, WorkItem item) {
  NetMetrics& metrics = NetMetrics::Get();
  bool enqueued = false;
  bool pressured = false;  ///< hit a full queue (adaptive-sampling signal)
  {
    std::unique_lock<std::mutex> lock(shard.queue_mu);
    if (shard.queue.size() >= options_.max_queue_batches) {
      pressured = true;
      metrics.enqueue_waits.Add(1);
      shard.cv_push.wait_for(
          lock, std::chrono::milliseconds(options_.max_enqueue_wait_ms),
          [&] {
            return shard.queue.size() < options_.max_queue_batches ||
                   stop_.load(std::memory_order_acquire);
          });
    }
    if (shard.queue.size() < options_.max_queue_batches &&
        !stop_.load(std::memory_order_acquire)) {
      shard.queue.push_back(std::move(item));
      shard.cv_pop.notify_one();
      enqueued = true;
    }
  }
  if (enqueued) {
    NoteSubmitOutcome(pressured);
    return 0;
  }
  NoteSubmitOutcome(true);
  // Bounded wait exhausted: degrade. Sticky gauge — an operator seeing
  // asketch_net_degraded == 1 knows at least one queue overflowed
  // since startup (the *_total counters say how much).
  metrics.degraded.Set(1);
  if (options_.overload == OverloadPolicy::kInlineApply) {
    std::lock_guard<std::mutex> guard(shard.mu);
    const uint64_t applied = ApplyLocked(shard, item);
    inline_applied_.fetch_add(applied, std::memory_order_relaxed);
    metrics.inline_applied.Add(applied);
    return 0;
  }
  const uint64_t weight = std::visit(
      [](const auto& work) -> uint64_t {
        using W = std::decay_t<decltype(work)>;
        if constexpr (std::is_same_v<W, std::vector<Tuple>>) {
          return BatchWeight(work);
        } else {
          return work.head_weight() + work.tail_weight();
        }
      },
      item);
  shed_weight_.fetch_add(weight, std::memory_order_relaxed);
  metrics.shed_weight.Add(weight);
  return weight;
}

uint64_t ShardSet::Ingest(std::span<const Tuple> tuples,
                          DeltaIngestState* delta_state) {
  if (options_.ingest_mode == IngestMode::kDelta &&
      delta_state != nullptr) {
    return IngestDelta(tuples, *delta_state);
  }
  const uint32_t n = num_shards();
  // Split by owning shard, preserving arrival order within each shard.
  std::vector<std::vector<Tuple>> split(n);
  for (const Tuple& t : tuples) {
    split[ShardOf(t.key, n)].push_back(t);
  }
  uint64_t shed = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (split[i].empty()) continue;
    shed += Submit(*shards_[i], WorkItem(std::move(split[i])));
  }
  return shed;
}

DeltaIngestState ShardSet::MakeDeltaState() const {
  DeltaIngestState state;
  state.per_shard_.resize(num_shards());
  return state;
}

template <typename SketchT>
void ShardSet::AccumulateDelta(std::span<const Tuple> tuples,
                               DeltaIngestState& state) {
  const uint32_t n = num_shards();
  // Resolve each shard's typed delta once; per tuple the loop below is
  // one multiplicative hash plus one open-addressed probe (plus a tail
  // update for the miss minority).
  std::vector<DeltaBatch<SketchT>*> deltas(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto& slot = state.per_shard_[i];
    if (!slot.has_value()) {
      // Open a fresh delta epoch: head snapshot taken lock-free from
      // the live filter, tail sketch built from the shard's config.
      slot.emplace(
          std::get<ASketch<RelaxedHeapFilter, SketchT>>(shards_[i]->sketch)
              .MakeDeltaBatch());
      // The effective sampling rate is latched per epoch: a delta is
      // built at one rate end to end, and adaptive changes apply from
      // the next epoch. Each epoch gets a distinct sampler seed so
      // concurrent decode threads do not skip in lockstep.
      const uint32_t permille =
          sample_permille_.load(std::memory_order_relaxed);
      if (permille < 1000) {
        std::get<DeltaBatch<SketchT>>(*slot).SetTailSamplePermille(
            permille,
            options_.shard_config.seed ^
                (0x9e3779b97f4a7c15ull *
                 sampler_seq_.fetch_add(1, std::memory_order_relaxed)));
      }
    }
    deltas[i] = &std::get<DeltaBatch<SketchT>>(*slot);
  }
  for (const Tuple& t : tuples) {
    deltas[ShardOf(t.key, n)]->Add(t.key, t.value);
  }
}

uint64_t ShardSet::IngestDelta(std::span<const Tuple> tuples,
                               DeltaIngestState& state) {
  const uint32_t n = num_shards();
  ASKETCH_CHECK(state.per_shard_.size() == n);
  if (options_.backend == SketchBackend::kCountMin) {
    AccumulateDelta<CountMin>(tuples, state);
  } else {
    AccumulateDelta<SalsaCountMin>(tuples, state);
  }
  uint64_t shed = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t count = std::visit(
        [](const auto& delta) { return delta.tuple_count(); },
        *state.per_shard_[i]);
    if (count >= options_.delta_flush_tuples) {
      shed += FlushShardDelta(i, state);
    }
  }
  return shed;
}

uint64_t ShardSet::FlushShardDelta(uint32_t index,
                                   DeltaIngestState& state) {
  auto& slot = state.per_shard_[index];
  if (!slot.has_value()) return 0;
  const bool empty =
      std::visit([](const auto& d) { return d.Empty(); }, *slot);
  if (empty) {
    slot.reset();
    return 0;
  }
  NetMetrics& metrics = NetMetrics::Get();
  metrics.delta_flushed_tuples.Add(
      std::visit([](const auto& d) { return d.tuple_count(); }, *slot));
  const uint64_t skips = std::visit(
      [](const auto& d) { return d.sampled_skips(); }, *slot);
  if (skips != 0) metrics.sampled_skipped_tuples.Add(skips);
  WorkItem item = std::visit(
      [](auto&& delta) -> WorkItem { return WorkItem(std::move(delta)); },
      std::move(*slot));
  slot.reset();
  return Submit(*shards_[index], std::move(item));
}

uint64_t ShardSet::FlushDeltas(DeltaIngestState& state) {
  if (state.per_shard_.empty()) return 0;
  ASKETCH_CHECK(state.per_shard_.size() == num_shards());
  uint64_t shed = 0;
  for (uint32_t i = 0; i < num_shards(); ++i) {
    shed += FlushShardDelta(i, state);
  }
  return shed;
}

void ShardSet::Drain() {
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->queue_mu);
    shard->cv_idle.wait(lock, [&] {
      return shard->queue.empty() && !shard->busy;
    });
  }
}

namespace {

/// Books one lock-free read (and any torn-snapshot retries it burned)
/// into the read-path counters.
void RecordLocklessRead(uint64_t reads, uint64_t retries) {
  NetMetrics& metrics = NetMetrics::Get();
  metrics.lockless_reads.Add(reads);
  if (retries != 0) metrics.seqlock_retries.Add(retries);
}

/// Exact filter-era hits of a filter entry, clamped at 0: a snapshot
/// forged or corrupted into new_count < old_count must not wrap the
/// unsigned subtraction into a ~2^32 "exact hit" count (every live
/// update path preserves new_count >= old_count, but deserialization
/// does not enforce it).
uint64_t ExactHits(const FilterEntry& e) {
  return e.new_count >= e.old_count
             ? static_cast<uint64_t>(e.new_count - e.old_count)
             : 0;
}

}  // namespace

count_t ShardSet::Estimate(item_t key) const {
  const Shard& shard = *shards_[ShardOf(key, num_shards())];
  uint64_t retries = 0;
  const count_t estimate = std::visit(
      [&](const auto& sketch) {
        return sketch.EstimateConcurrent(key, &retries);
      },
      shard.sketch);
  RecordLocklessRead(1, retries);
  return estimate;
}

void ShardSet::EstimateBatch(std::span<const item_t> keys,
                             std::vector<uint64_t>* estimates) const {
  const uint32_t n = num_shards();
  estimates->assign(keys.size(), 0);
  // Resolve the owning shard once per key and answer shard by shard:
  // one shard's filter ids and sketch rows stay cache-hot for its whole
  // group instead of being round-robined out by the next key's shard.
  std::vector<std::vector<uint32_t>> groups(n);
  for (size_t i = 0; i < keys.size(); ++i) {
    groups[ShardOf(keys[i], n)].push_back(static_cast<uint32_t>(i));
  }
  uint64_t retries = 0;
  for (uint32_t s = 0; s < n; ++s) {
    const Shard& shard = *shards_[s];
    std::visit(
        [&](const auto& sketch) {
          for (const uint32_t i : groups[s]) {
            (*estimates)[i] = sketch.EstimateConcurrent(keys[i], &retries);
          }
        },
        shard.sketch);
  }
  RecordLocklessRead(keys.size(), retries);
}

count_t ShardSet::EstimateMutexBaseline(item_t key) const {
  const Shard& shard = *shards_[ShardOf(key, num_shards())];
  std::lock_guard<std::mutex> guard(shard.mu);
  return std::visit(
      [&](const auto& sketch) { return sketch.Estimate(key); },
      shard.sketch);
}

std::vector<TopKEntry> ShardSet::TopK(uint32_t k) const {
  std::vector<TopKEntry> merged;
  uint64_t retries = 0;
  for (const auto& shard : shards_) {
    const std::vector<FilterEntry> entries = std::visit(
        [&](const auto& sketch) {
          return sketch.TopKConcurrent(&retries);
        },
        shard->sketch);
    for (const FilterEntry& e : entries) {
      merged.push_back(TopKEntry{e.key, e.new_count, ExactHits(e)});
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TopKEntry& a, const TopKEntry& b) {
              if (a.estimate != b.estimate) return a.estimate > b.estimate;
              return a.key < b.key;
            });
  if (merged.size() > k) merged.resize(k);
  RecordLocklessRead(1, retries);
  return merged;
}

uint64_t ShardSet::AppliedTuples(uint32_t shard) const {
  return shards_[shard]->applied_tuples.load(std::memory_order_acquire);
}

WireStats ShardSet::GetStats() const {
  WireStats stats;
  stats.num_shards = num_shards();
  stats.shed_weight = shed_weight_.load(std::memory_order_relaxed);
  stats.inline_applied = inline_applied_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard->mu);
    std::visit(
        [&](const auto& sketch) {
          const ASketchStats& s = sketch.stats();
          stats.filtered_weight += s.filtered_weight;
          stats.sketch_weight += s.sketch_weight;
          stats.exchanges += s.exchanges;
          stats.sketch_updates += s.sketch_updates;
          stats.memory_bytes += sketch.MemoryUsageBytes();
        },
        shard->sketch);
    stats.ingested +=
        shard->applied_tuples.load(std::memory_order_relaxed);
    stats.per_shard_ingested.push_back(
        shard->applied_tuples.load(std::memory_order_relaxed));
  }
  return stats;
}

std::vector<uint8_t> ShardSet::SerializeLocked() const {
  BinaryWriter writer;
  writer.PutU32(kShardSetMagic);
  writer.PutU32(num_shards());
  writer.PutU64(shed_weight_.load(std::memory_order_relaxed));
  writer.PutU64(inline_applied_.load(std::memory_order_relaxed));
  for (const auto& shard : shards_) {
    writer.PutU64(shard->applied_tuples.load(std::memory_order_relaxed));
    const bool ok = std::visit(
        [&](const auto& sketch) { return sketch.SerializeTo(writer); },
        shard->sketch);
    if (!ok) return {};
  }
  return writer.buffer();
}

std::optional<std::string> ShardSet::RestoreLocked(
    std::span<const uint8_t> payload) {
  BinaryReader reader(payload.data(), payload.size());
  uint32_t magic = 0;
  uint32_t shard_count = 0;
  uint64_t shed = 0;
  uint64_t inline_applied = 0;
  if (!reader.GetU32(&magic) || magic != kShardSetMagic ||
      !reader.GetU32(&shard_count) || !reader.GetU64(&shed) ||
      !reader.GetU64(&inline_applied)) {
    return std::string("shard-set payload: bad header");
  }
  if (shard_count != num_shards()) {
    return "shard-set payload holds " + std::to_string(shard_count) +
           " shards but this server runs " + std::to_string(num_shards()) +
           " (the key partition depends on the shard count; restart with "
           "a matching --shards)";
  }
  // Parse everything before committing, so a truncated payload cannot
  // leave the set half-restored. The parsed alternative matches the
  // running backend (ASketch's sketch magic differs per backend, so a
  // snapshot cut under the other --sketch fails to deserialize here
  // instead of half-adopting).
  std::vector<uint64_t> applied(shard_count);
  std::vector<AnyServingSketch> sketches;
  sketches.reserve(shard_count);
  for (uint32_t i = 0; i < shard_count; ++i) {
    if (!reader.GetU64(&applied[i])) {
      return std::string("shard-set payload: truncated shard header");
    }
    bool parsed = false;
    if (options_.backend == SketchBackend::kSalsa) {
      auto sketch = ServingSketchSalsa::DeserializeFrom(reader);
      if (sketch.has_value()) {
        sketches.emplace_back(*std::move(sketch));
        parsed = true;
      }
    } else {
      auto sketch = ServingSketch::DeserializeFrom(reader);
      if (sketch.has_value()) {
        sketches.emplace_back(*std::move(sketch));
        parsed = true;
      }
    }
    if (!parsed) {
      return "shard-set payload: shard " + std::to_string(i) +
             " failed to deserialize (corrupt, or cut under a different "
             "--sketch backend)";
    }
  }
  // Adopt in place: the restored state is copied into the live shards'
  // existing buffers instead of move-assigned over them, so lock-free
  // readers racing a restore (the SNAPSHOT re-adoption runs during live
  // serving) never chase a freed cell array or filter slab. That makes
  // shape compatibility a hard requirement; check every shard before
  // touching any of them so a mismatch cannot half-restore the set.
  for (uint32_t i = 0; i < shard_count; ++i) {
    const bool adoptable = std::visit(
        [&](const auto& live) {
          using SketchT = std::decay_t<decltype(live)>;
          return live.CanAdoptFrom(std::get<SketchT>(sketches[i]));
        },
        shards_[i]->sketch);
    if (!adoptable) {
      return "shard-set payload: shard " + std::to_string(i) +
             " has a different filter capacity or sketch geometry than "
             "this server's configuration (restart with the snapshot's "
             "original sizing flags)";
    }
  }
  for (uint32_t i = 0; i < shard_count; ++i) {
    std::visit(
        [&](auto& live) {
          using SketchT = std::decay_t<decltype(live)>;
          live.AdoptFrom(std::move(std::get<SketchT>(sketches[i])));
        },
        shards_[i]->sketch);
    shards_[i]->applied_tuples.store(applied[i],
                                     std::memory_order_release);
  }
  shed_weight_.store(shed, std::memory_order_relaxed);
  inline_applied_.store(inline_applied, std::memory_order_relaxed);
  return std::nullopt;
}

std::vector<uint8_t> ShardSet::SerializeState(StateDigest* digest) {
  Drain();
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) locks.emplace_back(shard->mu);
  std::vector<uint8_t> payload = SerializeLocked();
  if (digest != nullptr) {
    digest->generation = 0;
    digest->ingested = 0;
    for (const auto& shard : shards_) {
      digest->ingested +=
          shard->applied_tuples.load(std::memory_order_relaxed);
    }
    digest->digest = Crc32c(payload.data(), payload.size());
  }
  return payload;
}

std::optional<std::string> ShardSet::RestoreState(
    std::span<const uint8_t> payload) {
  Drain();
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) locks.emplace_back(shard->mu);
  return RestoreLocked(payload);
}

std::optional<std::string> ShardSet::SaveSnapshot(SnapshotStore& store,
                                                  StateDigest* digest) {
  Drain();
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) locks.emplace_back(shard->mu);
  std::vector<uint8_t> payload = SerializeLocked();
  if (payload.empty()) {
    return std::string("shard-set serialization failed");
  }
  // Re-adopt the serialized form (the CLI's SaveAndReload discipline),
  // then serialize again: deserialization re-heapifies the filters, which
  // can reorder entries, so only the second serialization is a fixpoint
  // of save -> recover -> serialize. Persisting the canonical bytes makes
  // the digest returned here match what a --recover'd server reports.
  if (auto error = RestoreLocked(payload)) {
    return "post-save re-adoption failed: " + *error;
  }
  payload = SerializeLocked();
  if (payload.empty()) {
    return std::string("shard-set serialization failed");
  }
  if (auto error = store.Save(kShardSetPayloadType, payload)) return error;
  if (digest != nullptr) {
    digest->generation = store.LatestGeneration();
    digest->ingested = 0;
    for (const auto& shard : shards_) {
      digest->ingested +=
          shard->applied_tuples.load(std::memory_order_relaxed);
    }
    digest->digest = Crc32c(payload.data(), payload.size());
  }
  return std::nullopt;
}

std::optional<std::string> ShardSet::RecoverFromStore(
    const SnapshotStore& store, StateDigest* digest) {
  std::string error;
  const auto loaded = store.Load(kShardSetPayloadType, &error);
  if (!loaded.has_value()) {
    return "recovery failed: " + (error.empty() ? "no snapshot" : error);
  }
  if (auto restore_error = RestoreState(loaded->payload)) {
    return restore_error;
  }
  if (digest != nullptr) {
    digest->generation = loaded->generation;
    digest->ingested = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> guard(shard->mu);
      digest->ingested +=
          shard->applied_tuples.load(std::memory_order_relaxed);
    }
    digest->digest =
        Crc32c(loaded->payload.data(), loaded->payload.size());
  }
  return std::nullopt;
}

void ShardSet::StallWorkersForTesting(bool stalled) {
  stalled_.store(stalled, std::memory_order_release);
  if (!stalled) {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->queue_mu);
      shard->cv_pop.notify_all();
    }
  }
}

}  // namespace net
}  // namespace asketch
