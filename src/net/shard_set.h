// A keyspace-sharded group of ASketch instances with per-shard ingest
// workers — the serving-side analogue of the paper's SPMD evaluation
// (§6, Fig. 13): each shard owns a disjoint key partition, so point
// queries route to exactly one shard and the merged TOPK report is the
// exact union of the per-shard reports (no cross-shard double counting).
//
// Ingest is asynchronous: UPDATE batches are split by shard and pushed
// onto bounded per-shard queues drained by one worker thread each via
// ASketch::UpdateBatch. When a queue stays full past the bounded wait,
// the pipeline overload policy applies (reusing OverloadPolicy from
// pipeline_asketch.h): kInlineApply applies the sub-batch on the caller
// thread under the shard mutex (one-sided guarantee intact, caller pays
// the cycles), kShed drops it and accounts the weight. Both paths are
// reported through NetMetrics and WireStats.
//
// Two ingest modes share those queues (docs/ARCHITECTURE.md):
//
//   kQueue — raw tuple sub-batches queue per shard; the owner worker
//   replays them through ASketch::UpdateBatch, so the applied state is
//   bit-identical to per-tuple serial ingest in arrival order.
//
//   kDelta — each decode thread accumulates its tuples into private
//   per-shard DeltaBatches (exact head table + tail sketch, see
//   src/core/delta_batch.h) held in a caller-owned DeltaIngestState.
//   When a shard's delta reaches delta_flush_tuples the whole delta is
//   queued as one work item and the owner folds it in with
//   ASketch::ApplyDelta. The single-writer seqlock invariant holds by
//   construction — decode threads never touch shard state — and the
//   per-tuple hot path shrinks to a private table probe or tail-sketch
//   update with no locks, condition variables, or seqlock sections.
//
// Queries read the *applied* state: tuples still queued are not yet
// visible. SNAPSHOT and DIGEST therefore drain all queues first, making
// them barriers — every tuple enqueued before the call is reflected in
// the cut. In delta mode a tuple enters the queue only when its delta
// is flushed, so the barrier covers flushed deltas; callers that need a
// tuple in the next cut must FlushDeltas their state first (the server
// flushes a connection's deltas before STATS/SNAPSHOT/DIGEST and at
// connection teardown).
//
// Reads are contention-free: Estimate/EstimateBatch/TopK never take
// shard.mu. Point and top-k lookups run against the filter's
// single-writer seqlock (src/filter/seqlock.h) and fall through to
// relaxed atomic sketch-cell reads, so read latency no longer collapses
// when an ingest worker is mid-batch under the mutex. Answers remain
// one-sided and prefix-consistent per key (DESIGN.md §5c); shard.mu
// still serializes the writers (worker, inline-apply, restore).
//
// Persistence mirrors asketch_cli's checkpoint discipline: SaveSnapshot
// serializes all shards into one SnapshotStore generation (payload tag
// "SRD1"), then re-adopts the deserialized form, so the live state, the
// on-disk state, and any --recover'd state are bit-identical under
// serialization — the CRC32C digest returned here equals the digest a
// recovered server reports.

#ifndef ASKETCH_NET_SHARD_SET_H_
#define ASKETCH_NET_SHARD_SET_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "src/common/snapshot.h"
#include "src/common/types.h"
#include "src/core/asketch.h"
#include "src/core/pipeline_asketch.h"
#include "src/net/protocol.h"

namespace asketch {
namespace net {

/// The serving synopsis type — the same composition asketch_cli
/// persists, so operators can inspect asketchd snapshots with the CLI's
/// tooling conventions.
using ServingSketch = ASketch<RelaxedHeapFilter, CountMin>;

/// The SALSA-backed alternative (asketchd --sketch=salsa): identical
/// filter, self-adjusting Count-Min rows (salsa_count_min.h). Same
/// lock-free read guarantees — EstimateRelaxed validates the sketch's
/// merge epoch instead of relying on cell monotonicity alone.
using ServingSketchSalsa = ASketch<RelaxedHeapFilter, SalsaCountMin>;

/// Which sketch backend each shard's ASketch composes. The wire format,
/// shard header, and filter are identical across backends; snapshots
/// embed the backend's own sketch magic, so restoring a snapshot into a
/// server running the other backend fails cleanly at deserialization.
enum class SketchBackend {
  kCountMin,
  kSalsa,
};

/// One shard's synopsis, whichever backend the options selected. All
/// per-shard operations dispatch through std::visit; the alternatives
/// share every API the shard code touches, so the visitors are generic
/// lambdas and the variant never pays a heap indirection.
using AnyServingSketch = std::variant<ServingSketch, ServingSketchSalsa>;

/// Snapshot payload tag for a serialized ShardSet ("SRD1" — application
/// namespace, top byte outside the library's 0x41 composed tags).
inline constexpr uint32_t kShardSetPayloadType = 0x31445253u;

/// Owning shard of `key`: Knuth multiplicative hash — multiply by the
/// constant 2654435761 mod 2^32 — then modulo the shard count.
/// Deterministic and config-independent, so any client can precompute
/// shard affinity; documented in docs/PROTOCOL.md §Sharding (which
/// states the same constant).
inline uint32_t ShardOf(item_t key, uint32_t num_shards) {
  return (key * 2654435761u) % num_shards;
}

/// How UPDATE traffic reaches a shard's owner thread (file comment).
enum class IngestMode {
  kQueue,  ///< raw tuple batches, replayed serially by the owner
  kDelta,  ///< caller-built DeltaBatches, folded in via ApplyDelta
};

/// A decode thread's private delta accumulator, one slot per shard.
/// Obtained from ShardSet::MakeDeltaState and passed back to Ingest /
/// FlushDeltas by the same thread; never shared between threads without
/// external synchronization (the whole point is that it needs none).
class DeltaIngestState {
 public:
  DeltaIngestState() = default;

  /// Tuples accumulated but not yet flushed to the shard queues.
  uint64_t PendingTuples() const;

 private:
  friend class ShardSet;

  using AnyDeltaBatch =
      std::variant<DeltaBatch<CountMin>, DeltaBatch<SalsaCountMin>>;

  std::vector<std::optional<AnyDeltaBatch>> per_shard_;
};

struct ShardSetOptions {
  uint32_t num_shards = 4;
  ASketchConfig shard_config;
  SketchBackend backend = SketchBackend::kCountMin;
  /// Bounded per-shard queue length, in batches.
  size_t max_queue_batches = 64;
  /// How long Ingest waits on a full queue before degrading.
  uint32_t max_enqueue_wait_ms = 100;
  OverloadPolicy overload = OverloadPolicy::kInlineApply;
  /// Queue mode until delta-mode parity is proven in production
  /// (`asketchd --ingest-mode`); both modes pass the same equivalence,
  /// concurrency, and recovery suites.
  IngestMode ingest_mode = IngestMode::kQueue;
  /// Delta epoch length: a shard's delta is flushed to the owner once
  /// it has absorbed this many tuples. Larger epochs amortize the dense
  /// sketch merge over more tuples; smaller epochs shorten the window
  /// in which a delta's tuples are invisible to queries (the server
  /// flushes a connection's deltas before answering its STATS/SNAPSHOT/
  /// DIGEST, so a connection always reads its own writes regardless).
  uint32_t delta_flush_tuples = 32768;
  /// Tail sampling rate (NitroSketch-style, ALGORITHMS.md §8): each
  /// tail-sketch update is applied with this probability and scaled by
  /// its inverse. Head keys (exact filter / delta head table) are never
  /// sampled. 1.0 (the default) is bit-identical to unsampled ingest;
  /// below 1.0 tail estimates are unbiased but no longer one-sided.
  /// In (0, 1]. Queue mode samples in the shard owner's MissPositive;
  /// delta mode samples in the decode threads' DeltaBatch tail path.
  double sample_rate = 1.0;
  /// "Always line rate": start unsampled and halve the effective rate
  /// on queue pressure (bounded enqueue waits / sheds), down to
  /// `sample_rate` as the floor; recover ×2 after a calm stretch. The
  /// live value is exported as asketch_net_sample_rate_permille.
  bool adaptive_sampling = false;

  std::optional<std::string> Validate() const;
};

class ShardSet {
 public:
  explicit ShardSet(const ShardSetOptions& options);
  ~ShardSet();

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  /// Splits `tuples` by shard and enqueues per-shard sub-batches. Blocks
  /// at most max_enqueue_wait_ms per full queue, then degrades per the
  /// overload policy. Returns the weight shed (0 under kInlineApply).
  ///
  /// Under IngestMode::kDelta with a non-null `delta_state`, tuples are
  /// instead absorbed into the caller's private per-shard deltas; only
  /// shards whose delta crossed delta_flush_tuples touch the queues.
  /// With a null `delta_state` the queue path is used regardless of
  /// mode (warm-up / oracle traffic in tests relies on this).
  uint64_t Ingest(std::span<const Tuple> tuples,
                  DeltaIngestState* delta_state = nullptr);

  /// A delta accumulator sized for this set; see DeltaIngestState.
  DeltaIngestState MakeDeltaState() const;

  /// Flushes every non-empty delta in `state` to its shard queue (same
  /// bounded-wait + overload discipline as Ingest). Returns the weight
  /// shed. After this returns, a Drain() barrier covers the tuples.
  uint64_t FlushDeltas(DeltaIngestState& state);

  /// Blocks until every queued batch has been applied and all workers
  /// are idle. Concurrent Ingest calls may refill queues afterwards.
  void Drain();

  /// Point query against the applied state of the owning shard.
  /// Lock-free: never blocks on shard.mu (see file comment).
  count_t Estimate(item_t key) const;

  /// Batched point query: estimates->at(i) answers keys[i]. Keys are
  /// grouped by owning shard once and each group is answered in one
  /// pass, instead of re-resolving the shard per key — QUERY_BATCH's
  /// fanout. Lock-free like Estimate.
  void EstimateBatch(std::span<const item_t> keys,
                     std::vector<uint64_t>* estimates) const;

  /// Mutex-baseline point query: the pre-seqlock read path (take
  /// shard.mu, query under the lock), kept for the read-concurrency
  /// bench so the contention win stays measurable against the real
  /// implementation (bench/bench_net_read_concurrency.cc).
  count_t EstimateMutexBaseline(item_t key) const;

  /// Merged heavy-hitter report: per-shard filter contents, globally
  /// sorted by descending estimate, truncated to `k`. Exact union —
  /// shards partition the keyspace. Lock-free like Estimate; each
  /// shard's entries come from one validated filter snapshot.
  std::vector<TopKEntry> TopK(uint32_t k) const;

  /// Tuples applied so far by `shard` (worker + inline applies). Only
  /// advances after a whole sub-batch is applied, so the value is always
  /// a sub-batch boundary — the prefix-cut handle the concurrency tests
  /// bracket their oracle checks with.
  uint64_t AppliedTuples(uint32_t shard) const;

  /// Aggregate counters across shards (snapshot_generation left 0; the
  /// server fills it in from its SnapshotStore).
  WireStats GetStats() const;

  /// Drains, then serializes every shard into one payload. The digest is
  /// CRC32C over that payload.
  std::vector<uint8_t> SerializeState(StateDigest* digest = nullptr);

  /// Replaces all shard state from a SerializeState payload. Returns an
  /// error message on malformed payloads, a shard-count mismatch (the
  /// partition function depends on num_shards, so a snapshot can only be
  /// adopted by a server with the same --shards), or a sketch-shape
  /// mismatch (state is adopted into the live shards' buffers so
  /// lock-free readers never chase freed memory, which requires the
  /// snapshot's filter capacity and sketch geometry to match this
  /// server's configuration).
  std::optional<std::string> RestoreState(std::span<const uint8_t> payload);

  /// Drain + serialize + store.Save + re-adopt. On success fills
  /// `digest` (generation, ingested, CRC32C of the saved payload).
  std::optional<std::string> SaveSnapshot(SnapshotStore& store,
                                          StateDigest* digest);

  /// Recovers from the newest valid generation in `store`. Returns the
  /// recovered digest, or an error message.
  std::optional<std::string> RecoverFromStore(const SnapshotStore& store,
                                              StateDigest* digest);

  /// Test hook: while stalled, workers stop popping batches, so queues
  /// fill deterministically and the overload paths can be exercised.
  void StallWorkersForTesting(bool stalled);

  /// The effective tail sampling rate in permille (1000 = off). Equals
  /// the configured rate unless adaptive_sampling is moving it.
  uint32_t SamplePermille() const {
    return sample_permille_.load(std::memory_order_relaxed);
  }

 private:
  /// One unit of owner-thread work: a raw tuple sub-batch (queue mode)
  /// or a whole decode-thread delta (delta mode). Flattened — not
  /// variant-of-variant — so the worker dispatches once.
  using WorkItem = std::variant<std::vector<Tuple>, DeltaBatch<CountMin>,
                                DeltaBatch<SalsaCountMin>>;

  struct Shard {
    /// Serializes the *writers* of sketch + applied_tuples (worker
    /// batch application, inline-apply, restore). Readers go through
    /// the sketch's lock-free query path instead of taking it.
    mutable std::mutex mu;
    AnyServingSketch sketch;
    /// Tuples applied (worker + inline). Written under mu, bumped only
    /// at work-item boundaries; read without mu by AppliedTuples.
    std::atomic<uint64_t> applied_tuples{0};

    std::mutex queue_mu;
    std::condition_variable cv_push;  ///< signalled when space frees up
    std::condition_variable cv_pop;   ///< signalled when work arrives
    std::condition_variable cv_idle;  ///< signalled when fully drained
    std::deque<WorkItem> queue;
    bool busy = false;  ///< worker currently applying a batch
    std::thread worker;

    explicit Shard(AnyServingSketch s) : sketch(std::move(s)) {}
  };

  void WorkerLoop(Shard& shard);
  /// Applies one work item under shard.mu (caller holds it) and bumps
  /// applied_tuples at the boundary; returns the tuple count applied.
  uint64_t ApplyLocked(Shard& shard, WorkItem& item);
  /// Bounded-wait enqueue of `item`, degrading per the overload policy
  /// when the wait expires. Returns the weight shed (0 unless kShed).
  uint64_t Submit(Shard& shard, WorkItem item);
  /// Delta-mode Ingest body: absorb into `state`, flush full epochs.
  uint64_t IngestDelta(std::span<const Tuple> tuples,
                       DeltaIngestState& state);
  /// Backend-typed accumulation loop: the variant dispatch is hoisted
  /// out of the per-tuple path (all shards share one backend), so each
  /// tuple pays one ShardOf and one DeltaBatch::Add — no staging copy.
  template <typename SketchT>
  void AccumulateDelta(std::span<const Tuple> tuples,
                       DeltaIngestState& state);
  /// Flushes shard `index`'s delta from `state` if it is non-empty.
  uint64_t FlushShardDelta(uint32_t index, DeltaIngestState& state);
  /// Publishes a new effective sampling rate: atomic target + gauge,
  /// and (queue mode) the per-shard owner samplers' relaxed targets.
  void PublishSamplePermille(uint32_t permille);
  /// Adaptive-sampling feedback from one Submit: pressure (a bounded
  /// wait or degradation) halves the rate toward the floor; a calm
  /// stretch of kCalmSubmitsToRecover submits doubles it toward 1000.
  void NoteSubmitOutcome(bool pressure);
  /// Serializes all shards; caller must hold every shard.mu.
  std::vector<uint8_t> SerializeLocked() const;
  /// Deserializes `payload` into the shards; caller must hold every
  /// shard.mu. Returns an error message on failure (state unchanged).
  std::optional<std::string> RestoreLocked(
      std::span<const uint8_t> payload);

  /// Consecutive pressure-free Submits before adaptive sampling doubles
  /// the rate back toward 1.0 — long enough that a transient lull does
  /// not immediately re-saturate the queues.
  static constexpr uint32_t kCalmSubmitsToRecover = 128;

  ShardSetOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> stalled_{false};
  std::atomic<uint64_t> shed_weight_{0};
  std::atomic<uint64_t> inline_applied_{0};
  /// Effective tail sampling rate in permille; configured floor; calm-
  /// submit streak (adaptive mode); per-epoch sampler seed sequence.
  std::atomic<uint32_t> sample_permille_{1000};
  uint32_t floor_permille_ = 1000;
  std::atomic<uint32_t> calm_submits_{0};
  std::atomic<uint64_t> sampler_seq_{1};
  std::vector<uint64_t> gauge_ids_;
};

}  // namespace net
}  // namespace asketch

#endif  // ASKETCH_NET_SHARD_SET_H_
