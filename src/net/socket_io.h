// Syscall seam + deterministic fault injection for the socket path.
//
// Every transport syscall in src/net/client.cc and src/net/server.cc is
// routed through a SocketIoHooks so tests can interpose: short reads and
// writes, EINTR, ECONNRESET, stalls, and byte corruption, armed at the
// Nth call of each kind and fully determined by what was armed — the
// socket twin of src/common/fault_injection.h's FaultInjectingIo. No
// randomness lives here; tests that want fuzzed schedules draw offsets
// from a seeded Rng and arm them explicitly, so every failure is
// replayable from its seed.
//
// An empty (default) hook dispatches straight to the real syscall; the
// production fast path pays one branch per call.

#ifndef ASKETCH_NET_SOCKET_IO_H_
#define ASKETCH_NET_SOCKET_IO_H_

#include <cstdint>
#include <functional>

#if defined(__unix__) || defined(__APPLE__)

#include <cerrno>
#include <chrono>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <vector>

namespace asketch {
namespace net {

/// Interposition points for the four socket syscalls the net path
/// issues after a socket exists. Empty functions mean "call the real
/// syscall"; a hook that wants real behavior plus a fault calls the
/// syscall itself.
struct SocketIoHooks {
  std::function<ssize_t(int fd, void* buf, size_t len, int flags)> recv;
  std::function<ssize_t(int fd, const void* buf, size_t len, int flags)>
      send;
  std::function<int(pollfd* fds, nfds_t n, int timeout_ms)> poll;
  std::function<int(int fd, const sockaddr* addr, socklen_t len)> connect;
};

inline ssize_t SocketRecv(const SocketIoHooks& io, int fd, void* buf,
                          size_t len, int flags) {
  if (io.recv) return io.recv(fd, buf, len, flags);
  return ::recv(fd, buf, len, flags);
}

inline ssize_t SocketSend(const SocketIoHooks& io, int fd, const void* buf,
                          size_t len, int flags) {
  if (io.send) return io.send(fd, buf, len, flags);
  return ::send(fd, buf, len, flags);
}

inline int SocketPoll(const SocketIoHooks& io, pollfd* fds, nfds_t n,
                      int timeout_ms) {
  if (io.poll) return io.poll(fds, n, timeout_ms);
  return ::poll(fds, n, timeout_ms);
}

inline int SocketConnect(const SocketIoHooks& io, int fd,
                         const sockaddr* addr, socklen_t len) {
  if (io.connect) return io.connect(fd, addr, len);
  return ::connect(fd, addr, len);
}

/// Fault-point shim producing SocketIoHooks bound to this object (which
/// must outlive them). Calls of each kind are counted across the shim's
/// lifetime, letting tests target "the Nth recv of the run". Thread
/// safety matches FaultInjectingIo: arm everything before handing the
/// hooks to the code under test; counters may then be read after the
/// run. A single shim may serve both a Client and a Server in the same
/// test, but the call indices are shared.
class FaultInjectingSocket {
 public:
  FaultInjectingSocket() = default;

  /// The `index`-th recv call (0-based) reads at most `max_bytes` — a
  /// short read, as on a fragmented TCP stream.
  void ArmShortRecvAt(uint64_t index, size_t max_bytes = 1) {
    short_recvs_.push_back({index, max_bytes});
  }

  /// The `index`-th send call writes at most `max_bytes` (short write,
  /// as on a full socket buffer).
  void ArmShortSendAt(uint64_t index, size_t max_bytes = 1) {
    short_sends_.push_back({index, max_bytes});
  }

  /// The `index`-th call of each kind fails with EINTR, the state a
  /// checkpoint signal landing mid-syscall leaves behind.
  void ArmRecvEintrAt(uint64_t index) { recv_eintr_.push_back(index); }
  void ArmSendEintrAt(uint64_t index) { send_eintr_.push_back(index); }
  void ArmPollEintrAt(uint64_t index) { poll_eintr_.push_back(index); }
  void ArmConnectEintrAt(uint64_t index) {
    connect_eintr_.push_back(index);
  }

  /// The `index`-th recv/send call fails with `error` (ECONNRESET by
  /// default — the peer vanished).
  void ArmRecvErrorAt(uint64_t index, int error = ECONNRESET) {
    recv_error_at_ = index;
    recv_errno_ = error;
  }
  void ArmSendErrorAt(uint64_t index, int error = ECONNRESET) {
    send_error_at_ = index;
    send_errno_ = error;
  }

  /// The `index`-th recv call stalls for `ms` before proceeding — a
  /// peer that hangs mid-frame (drives deadline paths determinstically
  /// when `ms` exceeds the armed deadline).
  void ArmRecvStallAt(uint64_t index, uint32_t ms) {
    recv_stall_at_ = index;
    recv_stall_ms_ = ms;
  }

  /// Flips bit `bit` (0-7) of byte `byte_offset` within the buffer the
  /// `index`-th recv call returns — corruption on the wire that frame
  /// validation must catch.
  void ArmRecvBitFlip(uint64_t index, uint64_t byte_offset, uint32_t bit) {
    bit_flips_.push_back(BitFlip{index, byte_offset, bit});
  }

  uint64_t recvs_seen() const { return recvs_; }
  uint64_t sends_seen() const { return sends_; }
  uint64_t polls_seen() const { return polls_; }
  uint64_t connects_seen() const { return connects_; }

  SocketIoHooks Hooks() {
    SocketIoHooks hooks;
    hooks.recv = [this](int fd, void* buf, size_t len, int flags) {
      return Recv(fd, buf, len, flags);
    };
    hooks.send = [this](int fd, const void* buf, size_t len, int flags) {
      return Send(fd, buf, len, flags);
    };
    hooks.poll = [this](pollfd* fds, nfds_t n, int timeout_ms) {
      return Poll(fds, n, timeout_ms);
    };
    hooks.connect = [this](int fd, const sockaddr* addr, socklen_t len) {
      return Connect(fd, addr, len);
    };
    return hooks;
  }

 private:
  struct ShortIo {
    uint64_t index;
    size_t max_bytes;
  };
  struct BitFlip {
    uint64_t recv_index;
    uint64_t byte_offset;
    uint32_t bit;
  };

  static bool Contains(const std::vector<uint64_t>& v, uint64_t index) {
    for (uint64_t x : v) {
      if (x == index) return true;
    }
    return false;
  }

  ssize_t Recv(int fd, void* buf, size_t len, int flags) {
    const uint64_t index = recvs_++;
    if (Contains(recv_eintr_, index)) {
      errno = EINTR;
      return -1;
    }
    if (index == recv_error_at_) {
      errno = recv_errno_;
      return -1;
    }
    if (index == recv_stall_at_ && recv_stall_ms_ > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(recv_stall_ms_));
    }
    size_t want = len;
    for (const ShortIo& s : short_recvs_) {
      if (s.index == index && s.max_bytes < want) want = s.max_bytes;
    }
    const ssize_t n = ::recv(fd, buf, want, flags);
    if (n > 0) {
      for (const BitFlip& flip : bit_flips_) {
        if (flip.recv_index == index &&
            flip.byte_offset < static_cast<uint64_t>(n)) {
          static_cast<uint8_t*>(buf)[flip.byte_offset] ^=
              static_cast<uint8_t>(1u << (flip.bit & 7u));
        }
      }
    }
    return n;
  }

  ssize_t Send(int fd, const void* buf, size_t len, int flags) {
    const uint64_t index = sends_++;
    if (Contains(send_eintr_, index)) {
      errno = EINTR;
      return -1;
    }
    if (index == send_error_at_) {
      errno = send_errno_;
      return -1;
    }
    size_t want = len;
    for (const ShortIo& s : short_sends_) {
      if (s.index == index && s.max_bytes < want) want = s.max_bytes;
    }
    return ::send(fd, buf, want, flags);
  }

  int Poll(pollfd* fds, nfds_t n, int timeout_ms) {
    const uint64_t index = polls_++;
    if (Contains(poll_eintr_, index)) {
      errno = EINTR;
      return -1;
    }
    return ::poll(fds, n, timeout_ms);
  }

  int Connect(int fd, const sockaddr* addr, socklen_t len) {
    const uint64_t index = connects_++;
    if (Contains(connect_eintr_, index)) {
      // POSIX: EINTR on connect leaves the attempt in progress, so the
      // emulation must actually start it before reporting the
      // interruption (callers then wait for POLLOUT like EINPROGRESS).
      (void)::connect(fd, addr, len);
      errno = EINTR;
      return -1;
    }
    return ::connect(fd, addr, len);
  }

  static constexpr uint64_t kNever = ~uint64_t{0};

  uint64_t recvs_ = 0;
  uint64_t sends_ = 0;
  uint64_t polls_ = 0;
  uint64_t connects_ = 0;
  std::vector<ShortIo> short_recvs_;
  std::vector<ShortIo> short_sends_;
  std::vector<uint64_t> recv_eintr_;
  std::vector<uint64_t> send_eintr_;
  std::vector<uint64_t> poll_eintr_;
  std::vector<uint64_t> connect_eintr_;
  uint64_t recv_error_at_ = kNever;
  uint64_t send_error_at_ = kNever;
  int recv_errno_ = ECONNRESET;
  int send_errno_ = ECONNRESET;
  uint64_t recv_stall_at_ = kNever;
  uint32_t recv_stall_ms_ = 0;
  std::vector<BitFlip> bit_flips_;
};

}  // namespace net
}  // namespace asketch

#else  // !(__unix__ || __APPLE__)

namespace asketch {
namespace net {

/// Stub keeping ClientOptions/ServerOptions well-formed on platforms
/// without the POSIX socket API (the net path itself is stubbed there).
struct SocketIoHooks {};

}  // namespace net
}  // namespace asketch

#endif

#endif  // ASKETCH_NET_SOCKET_IO_H_
