// Pre-resolved metric handles for the library's instrumentation sites.
//
// Hot paths must not pay the registry's name lookup (a map find under a
// mutex) per event, so each instrumented subsystem declares a struct of
// Counter/Gauge/Histogram references resolved once, on first use, against
// MetricsRegistry::Global(). After that an increment is the counter's
// cache-local cell add and nothing else.
//
// The same structs exist under -DASKETCH_NO_TELEMETRY via the stub
// registry (whose getters return shared no-ops), but instrumentation
// sites wrap their calls in ASKETCH_TELEMETRY_ONLY anyway, so the structs
// are only actually referenced in telemetry builds.
//
// Metric naming (DESIGN.md §5): asketch_<subsystem>_<what>[_total|_ns].

#ifndef ASKETCH_OBS_CORE_METRICS_H_
#define ASKETCH_OBS_CORE_METRICS_H_

#include "src/obs/metrics.h"

namespace asketch {
namespace obs {

/// ASketch::Update / UpdateBatch — the ingest path. The two weight
/// counters are the live equivalents of ASketchStats::filtered_weight /
/// sketch_weight; `asketch_filter_selectivity` is derived from them at
/// collection time by a callback gauge registered on first use.
struct IngestMetrics {
  Counter& filtered_weight;      ///< weight absorbed by the filter (N1)
  Counter& sketch_weight;        ///< weight forwarded to the sketch (N2)
  Counter& exchanges;            ///< filter<->sketch exchanges
  Counter& exchange_writebacks;  ///< evictions with nonzero exact delta
  Counter& sketch_updates;       ///< sketch insertions incl. writebacks
  Counter& deletions;            ///< negative-delta updates
  Counter& sampled_skips;        ///< tail updates elided by sampling
  Histogram& update_batch_ns;    ///< wall time of one UpdateBatch call

  static IngestMetrics& Get() {
    static IngestMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      auto* m = new IngestMetrics{
          r.GetCounter("asketch_filter_hit_weight_total"),
          r.GetCounter("asketch_sketch_weight_total"),
          r.GetCounter("asketch_exchanges_total"),
          r.GetCounter("asketch_exchange_writebacks_total"),
          r.GetCounter("asketch_sketch_updates_total"),
          r.GetCounter("asketch_deletions_total"),
          r.GetCounter("asketch_sampled_skips_total"),
          r.GetHistogram("asketch_update_batch_ns")};
      // N2 / (N1 + N2), the paper's filter selectivity, always current.
      r.RegisterCallbackGauge(
          "asketch_filter_selectivity", "", [m]() -> double {
            const double n2 = static_cast<double>(m->sketch_weight.Value());
            const double total =
                n2 + static_cast<double>(m->filtered_weight.Value());
            return total == 0 ? 0.0 : n2 / total;
          });
      return m;
    }();
    return *metrics;
  }
};

/// PipelineASketch — live aggregates across all pipeline instances,
/// mirroring PipelineStats (which stays the per-instance view). Queue
/// depth is per-instance: each pipeline registers its own callback gauge
/// `asketch_pipeline_queue_depth{pipeline="N"}`; `queue_depth_idle`
/// (labelled `pipeline="none"`, always 0) keeps the family present on
/// scrapes even while no pipeline instance is alive.
struct PipelineMetrics {
  Counter& filter_hits;
  Counter& forwarded;
  Counter& exchanges;
  Counter& rejected_candidates;
  Counter& fixups_applied;
  Counter& fixups_dropped;
  Counter& forward_full_spins;
  Counter& inline_applied;
  Counter& shed_weight;
  Gauge& degraded;         ///< number of currently-degraded pipelines
  Gauge& worker_dead;      ///< number of pipelines with a dead sketch stage
  Gauge& queue_depth_idle; ///< constant-0 placeholder series (see above)

  static PipelineMetrics& Get() {
    static PipelineMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new PipelineMetrics{
          r.GetCounter("asketch_pipeline_filter_hits_total"),
          r.GetCounter("asketch_pipeline_forwarded_total"),
          r.GetCounter("asketch_pipeline_exchanges_total"),
          r.GetCounter("asketch_pipeline_rejected_candidates_total"),
          r.GetCounter("asketch_pipeline_fixups_applied_total"),
          r.GetCounter("asketch_pipeline_fixups_dropped_total"),
          r.GetCounter("asketch_pipeline_forward_full_spins_total"),
          r.GetCounter("asketch_pipeline_inline_applied_total"),
          r.GetCounter("asketch_pipeline_shed_weight_total"),
          r.GetGauge("asketch_pipeline_degraded"),
          r.GetGauge("asketch_pipeline_worker_dead"),
          r.GetGauge("asketch_pipeline_queue_depth", "pipeline=\"none\"")};
    }();
    return *metrics;
  }
};

/// SalsaCountMin — counter-merge events (salsa_count_min.h). Merges are
/// rare (bounded by 3/4 of the buckets per sketch lifetime), so the
/// merge path adds straight to the registry counters instead of banking
/// deltas. `counters_lost` accumulates logical counters removed by
/// merging (1 per pair merge, parts−1 per quad merge): the aggregate
/// effective width across all live salsa sketches is their initial
/// bucket count minus this total.
struct SalsaMetrics {
  Counter& pair_merges;    ///< 8-bit pairs widened to one 16-bit counter
  Counter& quad_merges;    ///< aligned quads widened to one 32-bit counter
  Counter& counters_lost;  ///< logical counters removed by merges

  static SalsaMetrics& Get() {
    static SalsaMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new SalsaMetrics{
          r.GetCounter("asketch_salsa_pair_merges_total"),
          r.GetCounter("asketch_salsa_quad_merges_total"),
          r.GetCounter("asketch_salsa_counters_lost_total")};
    }();
    return *metrics;
  }
};

/// SnapshotStore — checkpoint durability path.
struct SnapshotMetrics {
  Counter& saves;
  Counter& save_failures;
  Counter& loads;
  Counter& load_failures;
  Counter& corrupt_skipped;  ///< generations skipped during fallback
  Histogram& save_ns;
  Histogram& load_ns;

  static SnapshotMetrics& Get() {
    static SnapshotMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new SnapshotMetrics{
          r.GetCounter("asketch_snapshot_saves_total"),
          r.GetCounter("asketch_snapshot_save_failures_total"),
          r.GetCounter("asketch_snapshot_loads_total"),
          r.GetCounter("asketch_snapshot_load_failures_total"),
          r.GetCounter("asketch_snapshot_corrupt_skipped_total"),
          r.GetHistogram("asketch_snapshot_save_ns"),
          r.GetHistogram("asketch_snapshot_load_ns")};
    }();
    return *metrics;
  }
};

}  // namespace obs
}  // namespace asketch

#endif  // ASKETCH_OBS_CORE_METRICS_H_
