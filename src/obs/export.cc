#include "src/obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace asketch {
namespace obs {
namespace {

void Append(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void Append(std::string* out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (n > 0) out->append(buffer, std::min<size_t>(n, sizeof(buffer) - 1));
}

/// `name{labels}` or bare `name`; `extra` (e.g. le="...") is merged into
/// the label set.
void AppendSeries(std::string* out, const std::string& name,
                  const std::string& labels, const std::string& extra) {
  out->append(name);
  if (!labels.empty() || !extra.empty()) {
    out->push_back('{');
    out->append(labels);
    if (!labels.empty() && !extra.empty()) out->push_back(',');
    out->append(extra);
    out->push_back('}');
  }
}

/// Renders a double the way Prometheus clients do: integers without a
/// decimal point, everything else with enough digits to round-trip.
void AppendNumber(std::string* out, double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value))) {
    Append(out, "%" PRId64, static_cast<int64_t>(value));
  } else {
    Append(out, "%.17g", value);
  }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          Append(out, "\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_type_line;
  const auto type_line = [&out, &last_type_line](const std::string& name,
                                                 const char* kind) {
    // Labelled series of one family share a single TYPE line.
    std::string line = "# TYPE " + name + " " + kind + "\n";
    if (line != last_type_line) {
      out.append(line);
      last_type_line = std::move(line);
    }
  };
  for (const CounterSample& c : snapshot.counters) {
    type_line(c.name, "counter");
    AppendSeries(&out, c.name, c.labels, "");
    Append(&out, " %" PRIu64 "\n", c.value);
  }
  for (const GaugeSample& g : snapshot.gauges) {
    type_line(g.name, "gauge");
    AppendSeries(&out, g.name, g.labels, "");
    out.push_back(' ');
    AppendNumber(&out, g.value);
    out.push_back('\n');
  }
  for (const HistogramSample& h : snapshot.histograms) {
    type_line(h.name, "histogram");
    // Last finite bucket worth emitting: everything after it is covered
    // by +Inf.
    uint32_t last = 0;
    for (uint32_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[i] != 0) last = i;
    }
    uint64_t cumulative = 0;
    for (uint32_t i = 0; i <= last; ++i) {
      cumulative += h.buckets[i];
      AppendSeries(&out, h.name + "_bucket", h.labels,
                   "le=\"" + std::to_string(HistogramBucketUpperBound(i)) +
                       "\"");
      Append(&out, " %" PRIu64 "\n", cumulative);
    }
    AppendSeries(&out, h.name + "_bucket", h.labels, "le=\"+Inf\"");
    Append(&out, " %" PRIu64 "\n", h.count);
    AppendSeries(&out, h.name + "_sum", h.labels, "");
    Append(&out, " %" PRIu64 "\n", h.sum);
    AppendSeries(&out, h.name + "_count", h.labels, "");
    Append(&out, " %" PRIu64 "\n", h.count);
  }
  return out;
}

std::string RenderMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const CounterSample& c : snapshot.counters) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, c.name);
    if (!c.labels.empty()) {
      out.append(",\"labels\":");
      AppendJsonString(&out, c.labels);
    }
    Append(&out, ",\"value\":%" PRIu64 "}", c.value);
  }
  out.append("],\"gauges\":[");
  first = true;
  for (const GaugeSample& g : snapshot.gauges) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, g.name);
    if (!g.labels.empty()) {
      out.append(",\"labels\":");
      AppendJsonString(&out, g.labels);
    }
    out.append(",\"value\":");
    AppendNumber(&out, g.value);
    out.push_back('}');
  }
  out.append("],\"histograms\":[");
  first = true;
  for (const HistogramSample& h : snapshot.histograms) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, h.name);
    if (!h.labels.empty()) {
      out.append(",\"labels\":");
      AppendJsonString(&out, h.labels);
    }
    Append(&out, ",\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                 ",\"max\":%" PRIu64,
           h.count, h.sum, h.max);
    out.append(",\"p50\":");
    AppendNumber(&out, h.p50);
    out.append(",\"p90\":");
    AppendNumber(&out, h.p90);
    out.append(",\"p99\":");
    AppendNumber(&out, h.p99);
    out.append(",\"buckets\":[");
    bool first_bucket = true;
    for (uint32_t i = 0; i <= kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      if (!first_bucket) out.push_back(',');
      first_bucket = false;
      if (i == kHistogramBuckets) {
        Append(&out, "{\"le\":null,\"count\":%" PRIu64 "}", h.buckets[i]);
      } else {
        Append(&out, "{\"le\":%" PRIu64 ",\"count\":%" PRIu64 "}",
               HistogramBucketUpperBound(i), h.buckets[i]);
      }
    }
    out.append("]}");
  }
  out.append("]}");
  return out;
}

}  // namespace obs
}  // namespace asketch
