// Exposition formats for MetricsSnapshot: Prometheus text format and a
// JSON dump with derived percentiles.
//
// Both renderers are pure functions of a snapshot, so the same bytes can
// be served over HTTP (`asketch_cli serve-metrics`), dumped to a file
// (`--metrics-out`), or printed by the background StatsReporter. Output
// is deterministic: metric sections are sorted by (name, labels) by
// Collect(), and numbers render with a fixed format — the Prometheus
// golden test diffs against tests/golden/exposition.prom byte-for-byte.

#ifndef ASKETCH_OBS_EXPORT_H_
#define ASKETCH_OBS_EXPORT_H_

#include <string>

#include "src/obs/metrics.h"

namespace asketch {
namespace obs {

/// Prometheus text exposition (version 0.0.4): one `# TYPE` line per
/// metric, counters/gauges as single samples, histograms as cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`. Zero-count
/// histogram buckets below the first occupied one are still emitted (the
/// format requires the full cumulative series), but the bucket list is
/// truncated after the last finite bucket with data; `le="+Inf"` always
/// closes the series.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

/// JSON object {"counters":[...],"gauges":[...],"histograms":[...]};
/// histograms carry count/sum/max plus p50/p90/p99 and the non-empty
/// buckets as {"le":bound,"count":n} pairs ("le":"+Inf" renders as
/// le = null). Parses under any strict JSON parser.
std::string RenderMetricsJson(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace asketch

#endif  // ASKETCH_OBS_EXPORT_H_
