#include "src/obs/http_exporter.h"

#include <cstdio>
#include <cstring>
#include <string_view>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define ASKETCH_HTTP_SUPPORTED 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define ASKETCH_HTTP_SUPPORTED 0
#endif

namespace asketch {
namespace obs {

MetricsHttpServer::MetricsHttpServer() = default;

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void MetricsHttpServer::AddHandler(std::string path,
                                   std::string content_type,
                                   Handler handler) {
  routes_[std::move(path)] = Route{std::move(content_type),
                                   std::move(handler)};
}

#if ASKETCH_HTTP_SUPPORTED

bool MetricsHttpServer::Start(uint16_t port) {
  if (listen_fd_ >= 0) return false;  // already running
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) !=
      0) {
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void MetricsHttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsHttpServer::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    // 100 ms poll timeout bounds Stop() latency without a wakeup pipe.
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    HandleConnection(client);
    ::close(client);
  }
}

namespace {

/// First line of an HTTP request is "METHOD SP path SP version"; returns
/// the path (query string stripped) or empty on anything but a GET.
std::string ParseRequestPath(const char* request, size_t length) {
  const std::string_view text(request, length);
  if (text.substr(0, 4) != "GET ") return "";
  const size_t start = 4;
  size_t end = start;
  while (end < text.size() && text[end] != ' ' && text[end] != '\r' &&
         text[end] != '\n' && text[end] != '?') {
    ++end;
  }
  return std::string(text.substr(start, end - start));
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

void MetricsHttpServer::HandleConnection(int client_fd) {
  // One read is enough for the GET request lines we serve; anything
  // larger is not a client we support.
  char buffer[2048];
  pollfd pfd{};
  pfd.fd = client_fd;
  pfd.events = POLLIN;
  if (::poll(&pfd, 1, 1000) <= 0) return;
  const ssize_t n = ::recv(client_fd, buffer, sizeof(buffer) - 1, 0);
  if (n <= 0) return;
  requests_.fetch_add(1, std::memory_order_relaxed);

  const std::string path =
      ParseRequestPath(buffer, static_cast<size_t>(n));
  const auto it = routes_.find(path);
  std::string body, status, content_type;
  if (it == routes_.end()) {
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "not found; try /metrics\n";
  } else {
    status = "200 OK";
    content_type = it->second.content_type;
    body = it->second.handler();
  }

  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.0 %s\r\nContent-Type: %s\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                status.c_str(), content_type.c_str(), body.size());
  SendAll(client_fd, std::string(header) + body);
}

#else  // !ASKETCH_HTTP_SUPPORTED

bool MetricsHttpServer::Start(uint16_t) { return false; }
void MetricsHttpServer::Stop() {}
void MetricsHttpServer::Serve() {}
void MetricsHttpServer::HandleConnection(int) {}

#endif  // ASKETCH_HTTP_SUPPORTED

}  // namespace obs
}  // namespace asketch
