// Tiny HTTP exporter for live metrics.
//
// MetricsHttpServer binds a loopback TCP port and serves registered paths
// (typically /metrics → Prometheus text, /metrics.json, /stats,
// /trace.json) from one background thread. It is deliberately minimal —
// blocking accept loop woken by poll(), HTTP/1.0-style one-request
// connections, no TLS, no keep-alive — because its job is `curl
// localhost:PORT/metrics` and Prometheus scrapes during a benchmark or
// soak run, not production traffic.
//
// Handlers run on the server thread; they must be thread-safe against the
// instrumented program (registry Collect() already is).
//
// Only built on POSIX platforms; elsewhere Start() fails gracefully.

#ifndef ASKETCH_OBS_HTTP_EXPORTER_H_
#define ASKETCH_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace asketch {
namespace obs {

class MetricsHttpServer {
 public:
  /// Returns the response body for one GET; the content type is declared
  /// at registration.
  using Handler = std::function<std::string()>;

  MetricsHttpServer();
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Registers `handler` for exact-match GET `path` (e.g. "/metrics").
  /// Must be called before Start().
  void AddHandler(std::string path, std::string content_type,
                  Handler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts the
  /// serving thread. False if the platform lacks sockets or bind fails.
  bool Start(uint16_t port);

  /// Stops the serving thread and closes the socket (idempotent).
  void Stop();

  /// The bound port once Start() succeeded (resolves port 0 requests).
  uint16_t port() const { return port_; }

  /// Requests served so far (including 404s).
  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Route {
    std::string content_type;
    Handler handler;
  };

  void Serve();
  void HandleConnection(int client_fd);

  std::map<std::string, Route> routes_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace asketch

#endif  // ASKETCH_OBS_HTTP_EXPORTER_H_
