#include "src/obs/metrics.h"

#include <algorithm>

#include "src/common/check.h"

namespace asketch {
namespace obs {

double HistogramPercentileFromBuckets(
    const std::array<uint64_t, kHistogramBuckets + 1>& buckets,
    uint64_t count, uint64_t max, double q) {
  if (count == 0) return 0.0;
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  const uint64_t target = rank < count ? rank + 1 : count;
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i <= kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      if (i == kHistogramBuckets) return static_cast<double>(max);
      // Never report past the observed maximum: a quantile that lands in
      // the max's bucket is capped at the max itself.
      return std::min(static_cast<double>(HistogramBucketUpperBound(i)),
                      static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

#ifndef ASKETCH_NO_TELEMETRY

namespace {

/// Returns blocks to their registry's free list when the thread exits, so
/// thread churn (e.g. repeated SpmdGroup::Process calls) reuses blocks
/// instead of growing the registry without bound. Guarded by the same
/// epoch: if any registry died since acquisition, the pointer is not
/// trusted and the block is intentionally leaked to its (still-alive)
/// owner's blocks_ list.
struct TlsBlockReleaser {
  MetricsRegistry* registry = nullptr;
  internal::ThreadBlock* block = nullptr;
  uint64_t epoch = 0;
  ~TlsBlockReleaser();
};

thread_local TlsBlockReleaser tls_block_releaser;

}  // namespace

MetricsRegistry::MetricsRegistry() = default;

MetricsRegistry::~MetricsRegistry() {
  internal::g_registry_epoch.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally leaked: instrumentation may run during static
  // destruction, and Global() must stay valid for the whole process.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

internal::ThreadBlock* MetricsRegistry::LocalBlockSlow() {
  internal::ThreadBlock* block = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_blocks_.empty()) {
      block = free_blocks_.back();
      free_blocks_.pop_back();
    } else {
      blocks_.push_back(std::make_unique<internal::ThreadBlock>());
      block = blocks_.back().get();
    }
  }
  const uint64_t epoch =
      internal::g_registry_epoch.load(std::memory_order_relaxed);
  internal::tls_block_cache = {this, block, epoch};
  // Register the exit hook only for the global registry: private (test)
  // registries may die before the thread does, and their blocks_ list
  // already owns the memory.
  if (this == &Global() && tls_block_releaser.registry == nullptr) {
    tls_block_releaser.registry = this;
    tls_block_releaser.block = block;
    tls_block_releaser.epoch = epoch;
  }
  return block;
}

namespace {
TlsBlockReleaser::~TlsBlockReleaser() {
  if (registry == nullptr) return;
  if (epoch != internal::g_registry_epoch.load(std::memory_order_relaxed)) {
    return;
  }
  registry->ReleaseBlock(block);
}
}  // namespace

void MetricsRegistry::ReleaseBlock(internal::ThreadBlock* block) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_blocks_.push_back(block);
}

uint64_t Counter::Value() const {
  return owner_->SumCounter(index_, overflow_);
}

uint64_t MetricsRegistry::SumCounter(
    uint32_t index, const std::atomic<uint64_t>& overflow) const {
  uint64_t total = overflow.load(std::memory_order_relaxed);
  if (index < internal::ThreadBlock::kMaxCounters) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& block : blocks_) {
      total += block->cells[index].load(std::memory_order_relaxed);
    }
  }
  return total;
}

void Histogram::MergeCounts(
    const std::array<uint64_t, kHistogramBuckets + 1>& buckets,
    uint64_t sum, uint64_t max) {
  for (uint32_t i = 0; i <= kHistogramBuckets; ++i) {
    if (buckets[i] != 0) {
      buckets_[i].fetch_add(buckets[i], std::memory_order_relaxed);
    }
  }
  sum_.fetch_add(sum, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (max > seen && !max_.compare_exchange_weak(
                           seen, max, std::memory_order_relaxed)) {
  }
}

HistogramSample Histogram::Sample() const {
  HistogramSample sample;
  for (uint32_t i = 0; i <= kHistogramBuckets; ++i) {
    sample.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    sample.count += sample.buckets[i];
  }
  sample.sum = sum_.load(std::memory_order_relaxed);
  sample.max = max_.load(std::memory_order_relaxed);
  sample.p50 = HistogramPercentileFromBuckets(sample.buckets, sample.count,
                                              sample.max, 0.50);
  sample.p90 = HistogramPercentileFromBuckets(sample.buckets, sample.count,
                                              sample.max, 0.90);
  sample.p99 = HistogramPercentileFromBuckets(sample.buckets, sample.count,
                                              sample.max, 0.99);
  return sample;
}

void* MetricsRegistry::FindOrCreate(std::string_view name,
                                    std::string_view labels, Kind kind) {
  std::string key;
  key.reserve(name.size() + 1 + labels.size());
  key.append(name);
  key.push_back('\0');
  key.append(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A metric name identifies one kind for its whole lifetime;
    // re-requesting it as another kind is a programming error.
    ASKETCH_CHECK(it->second.kind == kind);
    return it->second.object;
  }
  Entry entry;
  entry.name = std::string(name);
  entry.labels = std::string(labels);
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      counters_.emplace_back(this,
                             static_cast<uint32_t>(counters_.size()));
      entry.object = &counters_.back();
      break;
    case Kind::kGauge:
      gauges_.emplace_back();
      entry.object = &gauges_.back();
      break;
    case Kind::kHistogram:
      histograms_.emplace_back();
      entry.object = &histograms_.back();
      break;
  }
  return entries_.emplace(std::move(key), std::move(entry))
      .first->second.object;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view labels) {
  return *static_cast<Counter*>(FindOrCreate(name, labels, Kind::kCounter));
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view labels) {
  return *static_cast<Gauge*>(FindOrCreate(name, labels, Kind::kGauge));
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view labels) {
  return *static_cast<Histogram*>(
      FindOrCreate(name, labels, Kind::kHistogram));
}

uint64_t MetricsRegistry::RegisterCallbackGauge(std::string name,
                                                std::string labels,
                                                std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(callback_mutex_);
  const uint64_t id = next_callback_id_++;
  callbacks_.push_back(
      {id, std::move(name), std::move(labels), std::move(fn)});
  return id;
}

void MetricsRegistry::UnregisterCallbackGauge(uint64_t id) {
  std::lock_guard<std::mutex> lock(callback_mutex_);
  for (auto it = callbacks_.begin(); it != callbacks_.end(); ++it) {
    if (it->id == id) {
      callbacks_.erase(it);
      return;
    }
  }
}

MetricsSnapshot MetricsRegistry::Collect() const {
  MetricsSnapshot snapshot;
  // Phase 1 under the lock: copy entry descriptors and raw storage
  // pointers. Phase 2 (counter sums, callbacks) re-locks per item or runs
  // caller code, so it happens outside.
  struct Pending {
    std::string name;
    std::string labels;
    Kind kind;
    const void* object;
  };
  std::vector<Pending> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      pending.push_back(
          {entry.name, entry.labels, entry.kind, entry.object});
    }
  }
  for (const Pending& p : pending) {
    switch (p.kind) {
      case Kind::kCounter: {
        const auto* counter = static_cast<const Counter*>(p.object);
        snapshot.counters.push_back({p.name, p.labels, counter->Value()});
        break;
      }
      case Kind::kGauge: {
        const auto* gauge = static_cast<const Gauge*>(p.object);
        snapshot.gauges.push_back(
            {p.name, p.labels, static_cast<double>(gauge->Value())});
        break;
      }
      case Kind::kHistogram: {
        HistogramSample sample =
            static_cast<const Histogram*>(p.object)->Sample();
        sample.name = p.name;
        sample.labels = p.labels;
        snapshot.histograms.push_back(std::move(sample));
        break;
      }
    }
  }
  {
    // Held across invocation: UnregisterCallbackGauge blocking on this
    // mutex is the guarantee that lets callers destroy captured state
    // right after unregistering (see the header).
    std::lock_guard<std::mutex> lock(callback_mutex_);
    for (const CallbackEntry& cb : callbacks_) {
      snapshot.gauges.push_back({cb.name, cb.labels, cb.fn()});
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

size_t MetricsRegistry::MetricCount() const {
  size_t count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    count = entries_.size();
  }
  std::lock_guard<std::mutex> lock(callback_mutex_);
  return count + callbacks_.size();
}

#endif  // ASKETCH_NO_TELEMETRY

}  // namespace obs
}  // namespace asketch
