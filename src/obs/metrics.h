// Low-overhead telemetry: a registry of named counters, gauges, and
// log-bucketed latency histograms.
//
// The design goal is SALSA-style counter discipline for *telemetry*: the
// filter/sketch/SPMD hot loops must pay at most one cache-local increment
// per instrumented event, and the whole subsystem must compile out to
// nothing under -DASKETCH_NO_TELEMETRY.
//
// Counters are the hot primitive, so they get the careful layout. Each
// thread owns a ThreadBlock — a fixed array of one 8-byte cell per
// registered counter — handed out by the registry the first time the
// thread increments anything. A cell has exactly one writer (its owning
// thread), so an increment is a relaxed load + add + relaxed store: no
// lock prefix, no RMW, no shared-line ping-pong. Readers sum the cell
// across all blocks under the registry mutex; relaxed atomics make the
// cross-thread reads well-defined without slowing the writer. Blocks are
// pooled: when a thread exits its block returns to a free list and the
// next thread reuses it, so counter totals survive thread churn and
// memory stays bounded by the peak thread count.
//
// Gauges are instantaneous values (queue depth, degraded flags): a single
// shared atomic, set from cold paths only. Callback gauges are evaluated
// at collection time and cost the hot path nothing — they are how
// always-current values like queue occupancy are exposed.
//
// Histograms bucket by floor(log2(value))+1 — bucket i covers
// [2^(i-1), 2^i - 1], bucket 0 holds zeros — with an explicit overflow
// bucket past kHistogramBuckets. Record() is two relaxed fetch_adds plus
// a rarely-taken max CAS; it belongs on per-batch / per-snapshot paths,
// not per-tuple ones. Percentiles (p50/p90/p99) are computed at read
// time from the cumulative bucket counts.
//
// Naming scheme (see DESIGN.md §5): `asketch_<subsystem>_<what>[_total|_ns]`
// with Prometheus conventions — `_total` for monotonic counters, `_ns`
// histograms record nanoseconds. Labels are pre-rendered exposition
// fragments like `worker="3"`.

#ifndef ASKETCH_OBS_METRICS_H_
#define ASKETCH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef ASKETCH_NO_TELEMETRY
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#endif

/// Expands its arguments only when telemetry is compiled in. Hot-path
/// instrumentation sites wrap every telemetry statement (including any
/// timer reads feeding a histogram) in this macro so a
/// -DASKETCH_NO_TELEMETRY build contains no trace of them.
#ifndef ASKETCH_NO_TELEMETRY
#define ASKETCH_TELEMETRY_ONLY(...) __VA_ARGS__
#else
#define ASKETCH_TELEMETRY_ONLY(...)
#endif

namespace asketch {
namespace obs {

/// Number of finite histogram buckets. Bucket i < kHistogramBuckets covers
/// values with bit_width(v) == i (i.e. [2^(i-1), 2^i - 1]; bucket 0 is
/// exactly {0}); everything at or above 2^(kHistogramBuckets-1) lands in
/// the overflow bucket with index kHistogramBuckets. 40 finite buckets
/// cover latencies up to ~9 minutes in nanoseconds.
inline constexpr uint32_t kHistogramBuckets = 40;

/// Bucket index of `value` (see kHistogramBuckets).
inline uint32_t HistogramBucketIndex(uint64_t value) {
  uint32_t width = 0;
  while (value != 0) {
    ++width;
    value >>= 1;
  }
  return width < kHistogramBuckets ? width : kHistogramBuckets;
}

/// Inclusive upper bound of finite bucket i: 2^i - 1.
inline uint64_t HistogramBucketUpperBound(uint32_t i) {
  return (uint64_t{1} << i) - 1;
}

/// Point-in-time value of one counter.
struct CounterSample {
  std::string name;
  std::string labels;  ///< pre-rendered, e.g. `worker="3"`; may be empty
  uint64_t value = 0;
};

/// Point-in-time value of one gauge (stored or callback).
struct GaugeSample {
  std::string name;
  std::string labels;
  double value = 0;
};

/// Point-in-time state of one histogram, with derived percentiles.
struct HistogramSample {
  std::string name;
  std::string labels;
  /// Per-bucket counts; index kHistogramBuckets is the overflow bucket.
  std::array<uint64_t, kHistogramBuckets + 1> buckets{};
  uint64_t count = 0;  ///< sum of buckets
  uint64_t sum = 0;    ///< sum of recorded values
  uint64_t max = 0;    ///< largest recorded value
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

/// Everything a registry knows at one instant; what the exporters render.
/// Each section is sorted by (name, labels) so output is deterministic.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Percentile estimate from bucket counts: the upper bound of the first
/// bucket whose cumulative count reaches q*count (the overflow bucket
/// reports `max`). Exact for distributions that stay within one bucket
/// per quantile; otherwise an over-estimate by at most the bucket width.
double HistogramPercentileFromBuckets(
    const std::array<uint64_t, kHistogramBuckets + 1>& buckets,
    uint64_t count, uint64_t max, double q);

#ifndef ASKETCH_NO_TELEMETRY

class MetricsRegistry;

namespace internal {

/// Per-thread counter cells: one slot per registered counter index.
/// Single writer (the owning thread); readers use relaxed loads.
struct ThreadBlock {
  static constexpr uint32_t kMaxCounters = 256;
  std::array<std::atomic<uint64_t>, kMaxCounters> cells{};
};

/// One-entry cache mapping the most recently used registry to this
/// thread's cell block. Lives in the header so Counter::Add's fast path
/// inlines into instrumented hot loops (constant-initialized, so access
/// carries no TLS init guard). The epoch invalidates every cache when any
/// registry is destroyed, so a new registry reusing the address of a dead
/// one can never alias its freed blocks.
struct TlsBlockCache {
  MetricsRegistry* registry = nullptr;
  ThreadBlock* block = nullptr;
  uint64_t epoch = 0;
};

inline thread_local TlsBlockCache tls_block_cache;

/// Bumped by every registry destruction (see TlsBlockCache).
inline std::atomic<uint64_t> g_registry_epoch{1};

}  // namespace internal

/// Monotonic counter. Obtain via MetricsRegistry::GetCounter; references
/// stay valid for the registry's lifetime.
class Counter {
 public:
  /// Construct via MetricsRegistry::GetCounter (public only so the
  /// registry's container can emplace it).
  Counter(MetricsRegistry* owner, uint32_t index)
      : owner_(owner), index_(index) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Hot-path increment: one cache-local relaxed load+store on this
  /// thread's cell (plus a shared fetch_add fallback for counters past
  /// the per-block cell budget). Defined below MetricsRegistry so the
  /// fast path inlines into instrumented loops.
  inline void Add(uint64_t n);
  void Increment() { Add(1); }

  /// Sum over every thread's cell. Takes the registry mutex; cold.
  uint64_t Value() const;

 private:
  friend class MetricsRegistry;

  MetricsRegistry* owner_;
  const uint32_t index_;
  /// Shared fallback cell used when index_ >= ThreadBlock::kMaxCounters.
  std::atomic<uint64_t> overflow_{0};
};

/// Instantaneous value; a single shared atomic. Not for per-tuple paths.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed histogram (see the file comment). Record() is safe from
/// any thread; meant for per-batch and per-snapshot latencies.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    buckets_[HistogramBucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Adds externally accumulated bucket counts (snapshot restore and
  /// histogram merging). `buckets` uses this class's bucket layout.
  void MergeCounts(
      const std::array<uint64_t, kHistogramBuckets + 1>& buckets,
      uint64_t sum, uint64_t max);

  /// Point-in-time copy with derived count/percentiles (name/labels left
  /// empty; the registry fills them during Collect()).
  HistogramSample Sample() const;

 private:
  std::array<std::atomic<uint64_t>, kHistogramBuckets + 1> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Owner of every metric. One process-wide instance (Global()) backs all
/// library instrumentation; tests may create private registries — their
/// metrics behave identically, just with cold increments competing for
/// the same per-thread cache slot.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (never destroyed, so instrumented code may
  /// use it from static destructors).
  static MetricsRegistry& Global();

  /// Finds or creates the metric named (`name`, `labels`). References
  /// remain valid until the registry is destroyed. A name/labels pair
  /// identifies exactly one metric kind: re-requesting it as a different
  /// kind aborts (programming error).
  Counter& GetCounter(std::string_view name, std::string_view labels = "");
  Gauge& GetGauge(std::string_view name, std::string_view labels = "");
  Histogram& GetHistogram(std::string_view name,
                          std::string_view labels = "");

  /// Registers a gauge whose value is computed by `fn` at Collect() time
  /// (zero hot-path cost). Returns an id for UnregisterCallbackGauge.
  /// `fn` may take registry locks (e.g. Counter::Value()) but must not
  /// call Register/UnregisterCallbackGauge or Collect.
  uint64_t RegisterCallbackGauge(std::string name, std::string labels,
                                 std::function<double()> fn);

  /// Removes the callback and blocks until any in-flight Collect() is
  /// done invoking it, so the caller may destroy captured state
  /// immediately afterwards.
  void UnregisterCallbackGauge(uint64_t id);

  /// Snapshot of every metric, sections sorted by (name, labels).
  MetricsSnapshot Collect() const;

  /// Number of distinct registered metrics (all kinds).
  size_t MetricCount() const;

  /// Returns a thread's cell block to the reuse pool (called from the
  /// thread-exit hook; not part of the public surface).
  void ReleaseBlock(internal::ThreadBlock* block);

 private:
  friend class Counter;

  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    std::string labels;
    Kind kind;
    void* object;  // Counter*/Gauge*/Histogram*; stable (deque-backed)
  };

  struct CallbackEntry {
    uint64_t id;
    std::string name;
    std::string labels;
    std::function<double()> fn;
  };

  /// Allocates (or reuses) this thread's cell block and refreshes the
  /// TLS cache; Counter::Add's inline fast path calls this on cache miss.
  internal::ThreadBlock* LocalBlockSlow();

  /// Sums `index` across all blocks plus `overflow`.
  uint64_t SumCounter(uint32_t index,
                      const std::atomic<uint64_t>& overflow) const;

  /// Finds or creates the metric and returns a stable pointer to its
  /// storage object (cast per `kind`).
  void* FindOrCreate(std::string_view name, std::string_view labels,
                     Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // key: name + '\0' + labels
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<std::unique_ptr<internal::ThreadBlock>> blocks_;
  std::vector<internal::ThreadBlock*> free_blocks_;
  /// Guards callbacks_ and is HELD while Collect() invokes them, so
  /// UnregisterCallbackGauge synchronizes with in-flight evaluation.
  /// Lock order: callback_mutex_ may be held while taking mutex_ (a
  /// callback reading a Counter), never the reverse.
  mutable std::mutex callback_mutex_;
  std::vector<CallbackEntry> callbacks_;
  uint64_t next_callback_id_ = 1;
};

inline void Counter::Add(uint64_t n) {
  if (index_ < internal::ThreadBlock::kMaxCounters) {
    const internal::TlsBlockCache& cache = internal::tls_block_cache;
    internal::ThreadBlock* block =
        (cache.registry == owner_ &&
         cache.epoch ==
             internal::g_registry_epoch.load(std::memory_order_relaxed))
            ? cache.block
            : owner_->LocalBlockSlow();
    std::atomic<uint64_t>& cell = block->cells[index_];
    // Single writer per cell: a plain load/add/store pair is exact and
    // avoids the locked RMW a fetch_add would cost on the hot path.
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  } else {
    overflow_.fetch_add(n, std::memory_order_relaxed);
  }
}

#else  // ASKETCH_NO_TELEMETRY

// ---------------------------------------------------------------------
// Compiled-out telemetry: the same API as above, reduced to no-ops the
// optimizer deletes entirely. Exporters still link and render an empty
// snapshot, so tools keep working.
// ---------------------------------------------------------------------

class Counter {
 public:
  void Add(uint64_t) {}
  void Increment() {}
  uint64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  int64_t Value() const { return 0; }
};

class Histogram {
 public:
  void Record(uint64_t) {}
  void MergeCounts(const std::array<uint64_t, kHistogramBuckets + 1>&,
                   uint64_t, uint64_t) {}
  HistogramSample Sample() const { return {}; }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }

  Counter& GetCounter(std::string_view, std::string_view = "") {
    static Counter counter;
    return counter;
  }
  Gauge& GetGauge(std::string_view, std::string_view = "") {
    static Gauge gauge;
    return gauge;
  }
  Histogram& GetHistogram(std::string_view, std::string_view = "") {
    static Histogram histogram;
    return histogram;
  }

  template <typename Fn>
  uint64_t RegisterCallbackGauge(std::string, std::string, Fn&&) {
    return 0;
  }
  void UnregisterCallbackGauge(uint64_t) {}

  MetricsSnapshot Collect() const { return {}; }
  size_t MetricCount() const { return 0; }
};

#endif  // ASKETCH_NO_TELEMETRY

/// True when the library was built with telemetry compiled in.
inline constexpr bool TelemetryCompiledIn() {
#ifndef ASKETCH_NO_TELEMETRY
  return true;
#else
  return false;
#endif
}

}  // namespace obs
}  // namespace asketch

#endif  // ASKETCH_OBS_METRICS_H_
