#include "src/obs/metrics_persist.h"

#include <string>

namespace asketch {
namespace obs {
namespace {

constexpr uint32_t kMetricsRecordMagic = 0x3152544du;  // "MTR1"
constexpr uint32_t kMetricsRecordVersion = 1;

/// Defensive caps: a flipped bit in a count field must not turn into a
/// gigabyte allocation or an hours-long parse loop.
constexpr uint32_t kMaxRecords = 65536;
constexpr uint32_t kMaxNameLength = 1024;
constexpr uint32_t kMaxBuckets = 4096;

void PutString(BinaryWriter& writer, const std::string& s) {
  writer.PutU32(static_cast<uint32_t>(s.size()));
  writer.PutBytes(s.data(), s.size());
}

bool GetString(BinaryReader& reader, std::string* out) {
  uint32_t length = 0;
  if (!reader.GetU32(&length) || length > kMaxNameLength) return false;
  out->resize(length);
  return length == 0 || reader.GetBytes(out->data(), length);
}

}  // namespace

bool SerializeMetricsTo(const MetricsRegistry& registry,
                        BinaryWriter& writer) {
  const MetricsSnapshot snapshot = registry.Collect();
  writer.PutU32(kMetricsRecordMagic);
  writer.PutU32(kMetricsRecordVersion);
  writer.PutU32(static_cast<uint32_t>(snapshot.counters.size()));
  for (const CounterSample& c : snapshot.counters) {
    PutString(writer, c.name);
    PutString(writer, c.labels);
    writer.PutU64(c.value);
  }
  writer.PutU32(static_cast<uint32_t>(snapshot.histograms.size()));
  for (const HistogramSample& h : snapshot.histograms) {
    PutString(writer, h.name);
    PutString(writer, h.labels);
    writer.PutU32(kHistogramBuckets + 1);
    for (const uint64_t bucket : h.buckets) writer.PutU64(bucket);
    writer.PutU64(h.sum);
    writer.PutU64(h.max);
  }
  return writer.ok();
}

bool RestoreMetricsInto(MetricsRegistry& registry, BinaryReader& reader) {
  uint32_t magic = 0, version = 0;
  if (!reader.GetU32(&magic) || magic != kMetricsRecordMagic) return false;
  // Version-gated: this reader only understands version 1; a future
  // writer bumping the version keeps old binaries from misparsing.
  if (!reader.GetU32(&version) || version != kMetricsRecordVersion) {
    return false;
  }
  uint32_t counter_count = 0;
  if (!reader.GetU32(&counter_count) || counter_count > kMaxRecords) {
    return false;
  }
  std::string name, labels;
  for (uint32_t i = 0; i < counter_count; ++i) {
    uint64_t value = 0;
    if (!GetString(reader, &name) || !GetString(reader, &labels) ||
        !reader.GetU64(&value)) {
      return false;
    }
    if (value != 0) registry.GetCounter(name, labels).Add(value);
  }
  uint32_t hist_count = 0;
  if (!reader.GetU32(&hist_count) || hist_count > kMaxRecords) return false;
  for (uint32_t i = 0; i < hist_count; ++i) {
    uint32_t n_buckets = 0;
    if (!GetString(reader, &name) || !GetString(reader, &labels) ||
        !reader.GetU32(&n_buckets) || n_buckets > kMaxBuckets) {
      return false;
    }
    std::array<uint64_t, kHistogramBuckets + 1> buckets{};
    for (uint32_t b = 0; b < n_buckets; ++b) {
      uint64_t count = 0;
      if (!reader.GetU64(&count)) return false;
      // Buckets past this build's layout accumulate into overflow.
      const uint32_t slot = b <= kHistogramBuckets ? b : kHistogramBuckets;
      buckets[slot] += count;
    }
    uint64_t sum = 0, max = 0;
    if (!reader.GetU64(&sum) || !reader.GetU64(&max)) return false;
    registry.GetHistogram(name, labels).MergeCounts(buckets, sum, max);
  }
  return true;
}

}  // namespace obs
}  // namespace asketch
