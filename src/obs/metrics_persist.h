// Snapshot persistence for telemetry counters and histograms.
//
// Without this, a checkpoint/restore cycle silently resets every
// cumulative metric: a recovered `asketch_cli checkpoint --recover` run
// would report only the tuples ingested since the crash, and operator
// dashboards would see counters jump backwards. The fix is a compact,
// version-gated record that rides inside the application's snapshot
// envelope (see tools/asketch_cli.cc's "CKP2" checkpoint tag): counter
// values and histogram bucket arrays keyed by (name, labels).
//
// Restore is additive — values are merged into the live registry with
// Counter::Add / Histogram::MergeCounts — so restoring on top of a
// partially warmed process keeps totals monotonic, and restoring into a
// fresh process reproduces the saved values exactly.
//
// Gauges are deliberately not persisted: they are instantaneous
// observations (queue depth, degraded flags) that would be stale lies
// after a restart.
//
// Record format (version 1, little-endian, inside whatever envelope the
// caller provides):
//
//   u32 magic "MTR1"   u32 version (1)
//   u32 counter_count  { str name, str labels, u64 value } ...
//   u32 hist_count     { str name, str labels, u32 n_buckets,
//                        u64 bucket[n_buckets], u64 sum, u64 max } ...
//
// where `str` is a u32 length + raw bytes. Readers are defensive: counts
// and lengths are capped, and a histogram record with a different bucket
// count than this build's kHistogramBuckets+1 maps buckets by index and
// sends the remainder to the overflow bucket, so the record survives a
// future re-bucketing.

#ifndef ASKETCH_OBS_METRICS_PERSIST_H_
#define ASKETCH_OBS_METRICS_PERSIST_H_

#include "src/common/serialize.h"
#include "src/obs/metrics.h"

namespace asketch {
namespace obs {

/// Snapshot-envelope payload tag for a standalone metrics record
/// ("TEL1"; application formats may also embed the record inline).
inline constexpr uint32_t kMetricsPayloadType = 0x314c4554u;

/// Writes every counter and histogram of `registry` (via Collect()) as a
/// metrics record. Returns writer.ok().
bool SerializeMetricsTo(const MetricsRegistry& registry,
                        BinaryWriter& writer);

/// Parses a metrics record and merges it into `registry` (see the file
/// comment). False on malformed input; the registry may then hold a
/// partially applied record (callers treat that as a corrupt snapshot
/// and fall back a generation).
bool RestoreMetricsInto(MetricsRegistry& registry, BinaryReader& reader);

}  // namespace obs
}  // namespace asketch

#endif  // ASKETCH_OBS_METRICS_PERSIST_H_
