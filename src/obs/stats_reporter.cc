#include "src/obs/stats_reporter.h"

#include "src/obs/export.h"

namespace asketch {
namespace obs {

StatsReporter::StatsReporter(StatsReporterOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricsRegistry::Global();
  }
}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = false;
  }
  if (options_.report_on_stop) EmitOnce();
}

uint64_t StatsReporter::reports() const {
  return reports_.load(std::memory_order_relaxed);
}

void StatsReporter::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (cv_.wait_for(lock, options_.interval, [this] { return stop_; })) {
      break;
    }
    lock.unlock();
    EmitOnce();
    lock.lock();
  }
}

void StatsReporter::EmitOnce() {
  if (!options_.sink) return;
  const MetricsSnapshot snapshot = options_.registry->Collect();
  const std::string rendered =
      options_.format == StatsReporterOptions::Format::kJson
          ? RenderMetricsJson(snapshot)
          : RenderPrometheusText(snapshot);
  options_.sink(rendered);
  reports_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace asketch
