// Background periodic metrics reporter.
//
// A StatsReporter owns one thread that snapshots a MetricsRegistry every
// `interval` and hands the rendered exposition (Prometheus text or JSON)
// to a sink callback — typically fwrite to stderr, a log shipper, or a
// file. The registry is never locked for longer than Collect() takes, so
// a reporter ticking at 1 Hz is invisible to the ingest hot path.
//
// Stop() (and the destructor) wakes the thread immediately and emits one
// final report, so short-lived tools still get a complete last sample.

#ifndef ASKETCH_OBS_STATS_REPORTER_H_
#define ASKETCH_OBS_STATS_REPORTER_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "src/obs/metrics.h"

namespace asketch {
namespace obs {

struct StatsReporterOptions {
  enum class Format { kPrometheus, kJson };

  std::chrono::milliseconds interval{1000};
  Format format = Format::kPrometheus;
  /// Receives each rendered report. Called from the reporter thread; must
  /// be thread-safe with respect to the rest of the program.
  std::function<void(const std::string&)> sink;
  /// Registry to report on; defaults to the global one.
  MetricsRegistry* registry = nullptr;
  /// Emit one final report when stopping (default on).
  bool report_on_stop = true;
};

class StatsReporter {
 public:
  explicit StatsReporter(StatsReporterOptions options);
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  /// Starts the reporting thread (no-op if already running).
  void Start();

  /// Stops and joins the thread, emitting the final report (no-op if not
  /// running).
  void Stop();

  /// Number of reports emitted so far.
  uint64_t reports() const;

 private:
  void Loop();
  void EmitOnce();

  StatsReporterOptions options_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::atomic<uint64_t> reports_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace asketch

#endif  // ASKETCH_OBS_STATS_REPORTER_H_
