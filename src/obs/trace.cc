#include "src/obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace asketch {
namespace obs {

std::string RenderTraceJson(const std::vector<CollectedTraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  char buffer[256];
  bool first = true;
  for (const CollectedTraceEvent& e : events) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"");
    // Span names are static strings chosen by this library; escape the
    // two characters that could break the JSON anyway.
    for (const char* p = e.name; *p != '\0'; ++p) {
      if (*p == '"' || *p == '\\') out.push_back('\\');
      out.push_back(*p);
    }
    std::snprintf(buffer, sizeof(buffer),
                  "\",\"cat\":\"asketch\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
                  static_cast<double>(e.ts_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3, e.tid);
    out.append(buffer);
  }
  out.append("]}");
  return out;
}

#ifndef ASKETCH_NO_TELEMETRY

namespace {

struct TlsRingCache {
  internal::TraceRing* ring = nullptr;
  uint64_t generation = 0;
};

thread_local TlsRingCache tls_ring_cache;

}  // namespace

namespace internal {

TraceRing::TraceRing(uint32_t tid, size_t capacity)
    : tid_(tid), slots_(capacity < 2 ? 2 : capacity) {}

void TraceRing::Record(const char* name, uint64_t ts_ns, uint64_t dur_ns) {
  const uint64_t index = head_.load(std::memory_order_relaxed);
  TraceSlot& slot = slots_[index % slots_.size()];
  // Seqlock write: odd while in flight, 2*index+2 once complete. The
  // release pairs with the collector's acquire so a slot observed at its
  // final sequence has fully written fields.
  slot.seq.store(2 * index + 1, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.ts_ns.store(ts_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.seq.store(2 * index + 2, std::memory_order_release);
  head_.store(index + 1, std::memory_order_release);
}

void TraceRing::CollectInto(std::vector<CollectedTraceEvent>* out) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t size = slots_.size();
  const uint64_t begin = head > size ? head - size : 0;
  for (uint64_t index = begin; index < head; ++index) {
    const TraceSlot& slot = slots_[index % size];
    const uint64_t expected = 2 * index + 2;
    if (slot.seq.load(std::memory_order_acquire) != expected) continue;
    CollectedTraceEvent event;
    event.name = slot.name.load(std::memory_order_relaxed);
    event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    event.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    event.tid = tid_;
    // Re-check: if the owner started overwriting this slot while we read
    // it, the sequence moved on and the fields may be torn — drop it.
    if (slot.seq.load(std::memory_order_acquire) != expected) continue;
    if (event.name == nullptr) continue;
    out->push_back(event);
  }
}

}  // namespace internal

TraceRegistry& TraceRegistry::Global() {
  static TraceRegistry* registry = new TraceRegistry();
  return *registry;
}

void TraceRegistry::SetRingCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_capacity_ = capacity < 2 ? 2 : capacity;
}

internal::TraceRing* TraceRegistry::LocalRing() {
  TlsRingCache& cache = tls_ring_cache;
  const uint64_t generation = generation_.load(std::memory_order_relaxed);
  if (cache.ring != nullptr && cache.generation == generation) {
    return cache.ring;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.push_back(
      std::make_unique<internal::TraceRing>(next_tid_++, ring_capacity_));
  cache.ring = rings_.back().get();
  cache.generation = generation;
  return cache.ring;
}

std::vector<CollectedTraceEvent> TraceRegistry::Collect() const {
  std::vector<CollectedTraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& ring : rings_) {
      ring->CollectInto(&events);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const CollectedTraceEvent& a, const CollectedTraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.tid < b.tid;
            });
  return events;
}

uint64_t TraceRegistry::DroppedEvents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t dropped = 0;
  for (const auto& ring : rings_) dropped += ring->dropped();
  return dropped;
}

void TraceRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.clear();
  next_tid_ = 1;
  generation_.fetch_add(1, std::memory_order_relaxed);
}

#endif  // ASKETCH_NO_TELEMETRY

}  // namespace obs
}  // namespace asketch
