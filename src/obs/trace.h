// Per-thread trace-event ring buffers with scoped-span macros and
// Chrome/Perfetto trace_event JSON export.
//
// Each thread that records a span owns a TraceRing: a fixed-capacity ring
// of seqlock-protected slots written only by that thread (SPSC: the owner
// produces, the exporter consumes). Recording a completed span is two
// steady_clock reads plus a handful of relaxed stores; when the ring
// wraps, the oldest events are overwritten (recent history wins, which is
// what a flight recorder wants). The per-slot sequence number lets the
// exporter detect and discard slots that were mid-overwrite while it was
// reading — no locks touch the recording path.
//
// Tracing is off by default: ASKETCH_TRACE_SPAN costs one relaxed load
// and a branch until TraceRegistry::SetEnabled(true), and compiles out
// entirely under -DASKETCH_NO_TELEMETRY.
//
// Export renders the Chrome tracing format ("trace_event"), loadable in
// chrome://tracing and Perfetto: complete events ("ph":"X") with
// microsecond timestamps relative to steady_clock's epoch.
//
//   { "traceEvents": [ {"name":"snapshot_save","cat":"asketch","ph":"X",
//                       "ts":12.5,"dur":340.2,"pid":1,"tid":2} ] }

#ifndef ASKETCH_OBS_TRACE_H_
#define ASKETCH_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#ifndef ASKETCH_NO_TELEMETRY
#include <atomic>
#include <memory>
#include <mutex>
#endif

namespace asketch {
namespace obs {

/// One completed span, as collected for export. `name` must be a string
/// with static storage duration (the ring stores the pointer).
struct CollectedTraceEvent {
  const char* name = "";
  uint64_t ts_ns = 0;   ///< steady_clock start, nanoseconds
  uint64_t dur_ns = 0;  ///< span duration, nanoseconds
  uint32_t tid = 0;     ///< small per-ring thread id
};

/// Renders events as Chrome trace_event JSON (see the file comment).
std::string RenderTraceJson(const std::vector<CollectedTraceEvent>& events);

#ifndef ASKETCH_NO_TELEMETRY

namespace internal {

/// Seqlock-protected slot. The sequence is 2*write_index+2 when the slot
/// holds a fully written event; odd while the owner is writing it.
struct TraceSlot {
  std::atomic<uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<uint64_t> ts_ns{0};
  std::atomic<uint64_t> dur_ns{0};
};

/// A single thread's ring. Created lazily on first span and owned by the
/// TraceRegistry (events survive the recording thread's exit).
class TraceRing {
 public:
  TraceRing(uint32_t tid, size_t capacity);

  /// Owner thread only.
  void Record(const char* name, uint64_t ts_ns, uint64_t dur_ns);

  /// Any thread; skips slots that are concurrently overwritten.
  void CollectInto(std::vector<CollectedTraceEvent>* out) const;

  uint32_t tid() const { return tid_; }
  uint64_t dropped() const {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    return head > slots_.size() ? head - slots_.size() : 0;
  }

 private:
  const uint32_t tid_;
  std::vector<TraceSlot> slots_;
  std::atomic<uint64_t> head_{0};  // next write index (monotonic)
};

}  // namespace internal

/// Process-wide owner of every thread's ring.
class TraceRegistry {
 public:
  static TraceRegistry& Global();

  /// Master switch; spans recorded while disabled cost one load+branch.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Ring capacity (events) for rings created after this call; existing
  /// rings keep their size. Default 4096 events per thread.
  void SetRingCapacity(size_t capacity);

  /// All events from all rings, ordered by (ts, tid). Overwritten-while-
  /// reading slots are skipped, never torn.
  std::vector<CollectedTraceEvent> Collect() const;

  /// Total events overwritten before collection (ring wrap), across all
  /// rings.
  uint64_t DroppedEvents() const;

  /// Forgets all rings (events recorded afterwards allocate fresh ones).
  /// Only safe when no instrumented thread is running; meant for tests
  /// and tools that take repeated independent traces.
  void Reset();

  /// The calling thread's ring (creating it on first use).
  internal::TraceRing* LocalRing();

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<internal::TraceRing>> rings_;
  size_t ring_capacity_ = 4096;
  uint32_t next_tid_ = 1;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> generation_{1};

  friend class ScopedSpan;
};

/// RAII span: records a complete event from construction to destruction
/// when tracing is enabled. Use via ASKETCH_TRACE_SPAN.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TraceRegistry::Global().enabled()) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedSpan() {
    if (name_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    const uint64_t ts_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            start_.time_since_epoch())
            .count());
    const uint64_t dur_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count());
    TraceRegistry::Global().LocalRing()->Record(name_, ts_ns, dur_ns);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

#define ASKETCH_TRACE_CONCAT_INNER(a, b) a##b
#define ASKETCH_TRACE_CONCAT(a, b) ASKETCH_TRACE_CONCAT_INNER(a, b)
/// Records the enclosing scope as a trace span named `name` (a string
/// literal / static string).
#define ASKETCH_TRACE_SPAN(name) \
  ::asketch::obs::ScopedSpan ASKETCH_TRACE_CONCAT(asketch_span_, \
                                                  __LINE__)(name)

#else  // ASKETCH_NO_TELEMETRY

class TraceRegistry {
 public:
  static TraceRegistry& Global() {
    static TraceRegistry registry;
    return registry;
  }
  void SetEnabled(bool) {}
  bool enabled() const { return false; }
  void SetRingCapacity(size_t) {}
  std::vector<CollectedTraceEvent> Collect() const { return {}; }
  uint64_t DroppedEvents() const { return 0; }
  void Reset() {}
};

#define ASKETCH_TRACE_SPAN(name) \
  do {                           \
  } while (0)

#endif  // ASKETCH_NO_TELEMETRY

}  // namespace obs
}  // namespace asketch

#endif  // ASKETCH_OBS_TRACE_H_
