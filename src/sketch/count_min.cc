#include "src/sketch/count_min.h"

#include <algorithm>
#include <limits>

// All cell stores below go through RelaxedStore (atomic_util.h): the
// serving layer reads cells concurrently with the shard worker's updates
// via EstimateRelaxed, and a plain store racing an atomic load is a data
// race. The stores compile to the same MOVs as before; the updater
// itself stays single-threaded (reads of its own cells remain plain).

namespace asketch {

std::optional<std::string> CountMinConfig::Validate() const {
  if (width < 1) return "CountMin width (number of rows) must be >= 1";
  // The conservative update path stages one bucket per row in a fixed
  // 64-entry block (see Update); a wider config would overflow it, and
  // the DCHECK guarding the block compiles out of release builds.
  if (width > kMaxWidth) {
    return "CountMin width (number of rows) must be <= 64";
  }
  if (depth < 1) return "CountMin depth (cells per row) must be >= 1";
  return std::nullopt;
}

CountMinConfig CountMinConfig::FromSpaceBudget(size_t bytes, uint32_t width,
                                               uint64_t seed) {
  CountMinConfig config;
  // Clamp into the valid row range before dividing: width 0 would be a
  // division by zero below, and the result must pass Validate().
  config.width = std::max<uint32_t>(1, std::min(width, kMaxWidth));
  const size_t depth =
      std::max<size_t>(1, bytes / (static_cast<size_t>(config.width) *
                                   sizeof(count_t)));
  // Budgets beyond 16 GiB used to truncate size_t -> uint32_t and wrap
  // to a tiny (or zero) depth; cap at the type's range instead.
  config.depth = static_cast<uint32_t>(
      std::min<size_t>(depth, std::numeric_limits<uint32_t>::max()));
  config.seed = seed;
  return config;
}

CountMin::CountMin(const CountMinConfig& config) : config_(config) {
  ASKETCH_CHECK(!config.Validate().has_value());
  hashes_ = HashFamily(config_.width, config_.depth, config_.seed);
  cells_.assign(static_cast<size_t>(config_.width) * config_.depth, 0);
}

void CountMin::Update(item_t key, delta_t delta) {
  if (config_.policy == CmUpdatePolicy::kConservative && delta > 0) {
    // Conservative update: the new estimate after this arrival is
    // old_estimate + delta; no cell needs to exceed that.
    count_t est = std::numeric_limits<count_t>::max();
    uint32_t buckets[64];
    ASKETCH_DCHECK(config_.width <= 64);
    for (uint32_t row = 0; row < config_.width; ++row) {
      buckets[row] = hashes_.Bucket(row, key);
      est = std::min(est, Cell(row, buckets[row]));
    }
    const count_t target = SaturatingAdd(est, delta);
    for (uint32_t row = 0; row < config_.width; ++row) {
      count_t& cell = Cell(row, buckets[row]);
      RelaxedStore(cell, std::max(cell, target));
    }
    return;
  }
  for (uint32_t row = 0; row < config_.width; ++row) {
    count_t& cell = Cell(row, hashes_.Bucket(row, key));
    RelaxedStore(cell, SaturatingAdd(cell, delta));
  }
}

void CountMin::UpdateAt(const uint32_t* buckets, delta_t delta,
                        size_t stride) {
  if (config_.policy == CmUpdatePolicy::kConservative && delta > 0) {
    count_t est = std::numeric_limits<count_t>::max();
    for (uint32_t row = 0; row < config_.width; ++row) {
      est = std::min(est, Cell(row, buckets[row * stride]));
    }
    const count_t target = SaturatingAdd(est, delta);
    for (uint32_t row = 0; row < config_.width; ++row) {
      count_t& cell = Cell(row, buckets[row * stride]);
      RelaxedStore(cell, std::max(cell, target));
    }
    return;
  }
  for (uint32_t row = 0; row < config_.width; ++row) {
    count_t& cell = Cell(row, buckets[row * stride]);
    RelaxedStore(cell, SaturatingAdd(cell, delta));
  }
}

count_t CountMin::UpdateAndEstimateAt(const uint32_t* buckets,
                                      delta_t delta, size_t stride) {
  if (config_.policy == CmUpdatePolicy::kConservative && delta > 0) {
    count_t est = std::numeric_limits<count_t>::max();
    for (uint32_t row = 0; row < config_.width; ++row) {
      est = std::min(est, Cell(row, buckets[row * stride]));
    }
    const count_t target = SaturatingAdd(est, delta);
    for (uint32_t row = 0; row < config_.width; ++row) {
      count_t& cell = Cell(row, buckets[row * stride]);
      RelaxedStore(cell, std::max(cell, target));
    }
    // Every hashed cell is now >= target and the minimal one exactly
    // target, so the post-update estimate is target itself.
    return target;
  }
  count_t est = std::numeric_limits<count_t>::max();
  for (uint32_t row = 0; row < config_.width; ++row) {
    count_t& cell = Cell(row, buckets[row * stride]);
    const count_t next = SaturatingAdd(cell, delta);
    RelaxedStore(cell, next);
    est = std::min(est, next);
  }
  return est;
}

count_t CountMin::UpdateAndEstimate(item_t key, delta_t delta) {
  if (config_.policy == CmUpdatePolicy::kConservative && delta > 0) {
    // The conservative path already computes the estimate.
    Update(key, delta);
    return Estimate(key);
  }
  count_t est = std::numeric_limits<count_t>::max();
  for (uint32_t row = 0; row < config_.width; ++row) {
    count_t& cell = Cell(row, hashes_.Bucket(row, key));
    const count_t next = SaturatingAdd(cell, delta);
    RelaxedStore(cell, next);
    est = std::min(est, next);
  }
  return est;
}

void CountMin::UpdateBatch(std::span<const Tuple> tuples) {
  // Chunked two-phase ingestion: hash a whole chunk with the vectorized
  // multi-key kernel (and prefetch every addressed cell), then apply the
  // updates against warm lines. Each tuple is hashed exactly once; the
  // chunk bound keeps the prefetches close enough that the lines are
  // still resident when their update executes.
  constexpr size_t kChunk = 16;
  const size_t n = tuples.size();
  const uint32_t w = config_.width;
  std::vector<uint32_t> buckets(kChunk * w);
  item_t keys[kChunk];
  for (size_t begin = 0; begin < n; begin += kChunk) {
    const size_t count = std::min(kChunk, n - begin);
    for (size_t i = 0; i < count; ++i) keys[i] = tuples[begin + i].key;
    PrepareUpdateBatch(keys, count, buckets.data());
    for (size_t i = 0; i < count; ++i) {
      UpdateAt(&buckets[i], static_cast<delta_t>(tuples[begin + i].value),
               count);
    }
  }
}

count_t CountMin::Estimate(item_t key) const {
  count_t est = std::numeric_limits<count_t>::max();
  for (uint32_t row = 0; row < config_.width; ++row) {
    est = std::min(est, Cell(row, hashes_.Bucket(row, key)));
  }
  return est;
}

void CountMin::Reset() {
  for (count_t& cell : cells_) RelaxedStore(cell, 0u);
}

namespace {
constexpr uint32_t kCountMinMagic = 0x314d4d43;  // "CMM1"
}  // namespace

bool CountMin::CompatibleWith(const CountMin& other) const {
  return config_.width == other.config_.width &&
         config_.depth == other.config_.depth &&
         config_.seed == other.config_.seed;
}

std::optional<std::string> CountMin::MergeFrom(const CountMin& other) {
  if (!CompatibleWith(other)) {
    return "CountMin::MergeFrom: incompatible configs (width/depth/seed "
           "must match)";
  }
  // Delta-aware fast path: deltas from short epochs leave most source
  // cells zero; skipping them turns the merge's read-modify-write
  // stream into a sequential read of `other` plus sparse writes.
  for (size_t i = 0; i < cells_.size(); ++i) {
    const count_t add = other.cells_[i];
    if (add == 0) continue;
    RelaxedStore(cells_[i],
                 SaturatingAdd(cells_[i], static_cast<delta_t>(add)));
  }
  return std::nullopt;
}

wide_count_t CountMin::InnerProductEstimate(const CountMin& other) const {
  ASKETCH_CHECK(CompatibleWith(other));
  wide_count_t best = ~wide_count_t{0};
  for (uint32_t row = 0; row < config_.width; ++row) {
    unsigned __int128 dot = 0;
    for (uint32_t b = 0; b < config_.depth; ++b) {
      dot += static_cast<unsigned __int128>(Cell(row, b)) *
             other.Cell(row, b);
    }
    const wide_count_t clamped =
        dot > static_cast<unsigned __int128>(~wide_count_t{0})
            ? ~wide_count_t{0}
            : static_cast<wide_count_t>(dot);
    best = std::min(best, clamped);
  }
  return best;
}

bool CountMin::SerializeTo(BinaryWriter& writer) const {
  writer.PutU32(kCountMinMagic);
  writer.PutU32(config_.width);
  writer.PutU32(config_.depth);
  writer.PutU64(config_.seed);
  writer.PutU8(config_.policy == CmUpdatePolicy::kConservative ? 1 : 0);
  writer.PutPodVector(cells_);
  return writer.ok();
}

std::optional<CountMin> CountMin::DeserializeFrom(BinaryReader& reader) {
  uint32_t magic = 0;
  CountMinConfig config;
  uint8_t policy = 0;
  if (!reader.GetU32(&magic) || magic != kCountMinMagic) {
    return std::nullopt;
  }
  if (!reader.GetU32(&config.width) || !reader.GetU32(&config.depth) ||
      !reader.GetU64(&config.seed) || !reader.GetU8(&policy)) {
    return std::nullopt;
  }
  config.policy = policy != 0 ? CmUpdatePolicy::kConservative
                              : CmUpdatePolicy::kPlain;
  if (config.Validate().has_value()) return std::nullopt;
  std::vector<count_t> cells;
  if (!reader.GetPodVector(&cells) ||
      cells.size() !=
          static_cast<size_t>(config.width) * config.depth) {
    return std::nullopt;
  }
  CountMin sketch(config);
  sketch.cells_ = std::move(cells);
  return sketch;
}

wide_count_t CountMin::RowSum(uint32_t row) const {
  ASKETCH_CHECK(row < config_.width);
  wide_count_t sum = 0;
  for (uint32_t b = 0; b < config_.depth; ++b) sum += Cell(row, b);
  return sum;
}

}  // namespace asketch
