#include "src/sketch/count_min.h"

#include <algorithm>
#include <limits>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "src/common/hugepage.h"

// All cell stores below go through RelaxedStore (atomic_util.h): the
// serving layer reads cells concurrently with the shard worker's updates
// via EstimateRelaxed, and a plain store racing an atomic load is a data
// race. The stores compile to the same MOVs as before; the updater
// itself stays single-threaded (reads of its own cells remain plain).

namespace asketch {

std::optional<std::string> CountMinConfig::Validate() const {
  if (width < 1) return "CountMin width (number of rows) must be >= 1";
  // The conservative update path stages one bucket per row in a fixed
  // 64-entry block (see Update); a wider config would overflow it, and
  // the DCHECK guarding the block compiles out of release builds.
  if (width > kMaxWidth) {
    return "CountMin width (number of rows) must be <= 64";
  }
  if (depth < 1) return "CountMin depth (cells per row) must be >= 1";
  return std::nullopt;
}

CountMinConfig CountMinConfig::FromSpaceBudget(size_t bytes, uint32_t width,
                                               uint64_t seed) {
  CountMinConfig config;
  // Clamp into the valid row range before dividing: width 0 would be a
  // division by zero below, and the result must pass Validate().
  config.width = std::max<uint32_t>(1, std::min(width, kMaxWidth));
  const size_t depth =
      std::max<size_t>(1, bytes / (static_cast<size_t>(config.width) *
                                   sizeof(count_t)));
  // Budgets beyond 16 GiB used to truncate size_t -> uint32_t and wrap
  // to a tiny (or zero) depth; cap at the type's range instead.
  config.depth = static_cast<uint32_t>(
      std::min<size_t>(depth, std::numeric_limits<uint32_t>::max()));
  config.seed = seed;
  return config;
}

CountMin::CountMin(const CountMinConfig& config) : config_(config) {
  ASKETCH_CHECK(!config.Validate().has_value());
  hashes_ = HashFamily(config_.width, config_.depth, config_.seed);
  cells_.assign(static_cast<size_t>(config_.width) * config_.depth, 0);
  AdviseHugePagesIfLarge();
}

void CountMin::AdviseHugePagesIfLarge() {
  // Each update touches one cell per row at a random offset; 2 MiB
  // backing keeps out-of-cache sketches to ~one TLB entry per row range
  // instead of one miss per probe. Best-effort, behavior-neutral.
  if (MemoryUsageBytes() >= kHugePageAdviseMinBytes) {
    MaybeAdviseHugePages(cells_.data(), cells_.size() * sizeof(count_t));
  }
}

void CountMin::Update(item_t key, delta_t delta) {
  if (config_.policy == CmUpdatePolicy::kConservative && delta > 0) {
    // Conservative update: the new estimate after this arrival is
    // old_estimate + delta; no cell needs to exceed that.
    count_t est = std::numeric_limits<count_t>::max();
    uint32_t buckets[64];
    ASKETCH_DCHECK(config_.width <= 64);
    for (uint32_t row = 0; row < config_.width; ++row) {
      buckets[row] = hashes_.Bucket(row, key);
      est = std::min(est, Cell(row, buckets[row]));
    }
    const count_t target = SaturatingAdd(est, delta);
    for (uint32_t row = 0; row < config_.width; ++row) {
      count_t& cell = Cell(row, buckets[row]);
      RelaxedStore(cell, std::max(cell, target));
    }
    return;
  }
  for (uint32_t row = 0; row < config_.width; ++row) {
    count_t& cell = Cell(row, hashes_.Bucket(row, key));
    RelaxedStore(cell, SaturatingAdd(cell, delta));
  }
}

void CountMin::UpdateAt(const uint32_t* buckets, delta_t delta,
                        size_t stride) {
  if (config_.policy == CmUpdatePolicy::kConservative && delta > 0) {
    count_t est = std::numeric_limits<count_t>::max();
    for (uint32_t row = 0; row < config_.width; ++row) {
      est = std::min(est, Cell(row, buckets[row * stride]));
    }
    const count_t target = SaturatingAdd(est, delta);
    for (uint32_t row = 0; row < config_.width; ++row) {
      count_t& cell = Cell(row, buckets[row * stride]);
      RelaxedStore(cell, std::max(cell, target));
    }
    return;
  }
  for (uint32_t row = 0; row < config_.width; ++row) {
    count_t& cell = Cell(row, buckets[row * stride]);
    RelaxedStore(cell, SaturatingAdd(cell, delta));
  }
}

count_t CountMin::UpdateAndEstimateAt(const uint32_t* buckets,
                                      delta_t delta, size_t stride) {
  if (config_.policy == CmUpdatePolicy::kConservative && delta > 0) {
    count_t est = std::numeric_limits<count_t>::max();
    for (uint32_t row = 0; row < config_.width; ++row) {
      est = std::min(est, Cell(row, buckets[row * stride]));
    }
    const count_t target = SaturatingAdd(est, delta);
    for (uint32_t row = 0; row < config_.width; ++row) {
      count_t& cell = Cell(row, buckets[row * stride]);
      RelaxedStore(cell, std::max(cell, target));
    }
    // Every hashed cell is now >= target and the minimal one exactly
    // target, so the post-update estimate is target itself.
    return target;
  }
  count_t est = std::numeric_limits<count_t>::max();
  for (uint32_t row = 0; row < config_.width; ++row) {
    count_t& cell = Cell(row, buckets[row * stride]);
    const count_t next = SaturatingAdd(cell, delta);
    RelaxedStore(cell, next);
    est = std::min(est, next);
  }
  return est;
}

count_t CountMin::UpdateAndEstimate(item_t key, delta_t delta) {
  if (config_.policy == CmUpdatePolicy::kConservative && delta > 0) {
    // The conservative path already computes the estimate.
    Update(key, delta);
    return Estimate(key);
  }
  count_t est = std::numeric_limits<count_t>::max();
  for (uint32_t row = 0; row < config_.width; ++row) {
    count_t& cell = Cell(row, hashes_.Bucket(row, key));
    const count_t next = SaturatingAdd(cell, delta);
    RelaxedStore(cell, next);
    est = std::min(est, next);
  }
  return est;
}

void CountMin::UpdateBatch(std::span<const Tuple> tuples) {
  // Chunked two-phase ingestion: hash a whole chunk with the vectorized
  // multi-key kernel (and prefetch every addressed cell), then apply the
  // updates against warm lines. Each tuple is hashed exactly once; the
  // chunk bound keeps the prefetches close enough that the lines are
  // still resident when their update executes.
  //
  // Plain policy on AVX2 builds: the apply phase runs row-major through
  // ApplyPreparedAvx2 — gather 8 cells, add 8 deltas, saturate, store.
  // Bit-identical to the scalar tuple-major walk (see the UpdateBatch
  // doc comment in count_min.h for the order-independence argument).
  constexpr size_t kChunk = 16;
  const size_t n = tuples.size();
  const uint32_t w = config_.width;
  std::vector<uint32_t> buckets(kChunk * w);
  item_t keys[kChunk];
#if defined(__AVX2__)
  const bool vectorize = config_.policy == CmUpdatePolicy::kPlain;
  alignas(32) uint32_t values[kChunk];
#endif
  for (size_t begin = 0; begin < n; begin += kChunk) {
    const size_t count = std::min(kChunk, n - begin);
    for (size_t i = 0; i < count; ++i) keys[i] = tuples[begin + i].key;
    PrepareUpdateBatch(keys, count, buckets.data());
#if defined(__AVX2__)
    if (vectorize) {
      for (size_t i = 0; i < count; ++i) {
        values[i] = tuples[begin + i].value;
      }
      ApplyPreparedAvx2(buckets.data(), values, count);
      continue;
    }
#endif
    for (size_t i = 0; i < count; ++i) {
      UpdateAt(&buckets[i], static_cast<delta_t>(tuples[begin + i].value),
               count);
    }
  }
}

#if defined(__AVX2__)
void CountMin::ApplyPreparedAvx2(const uint32_t* buckets,
                                 const uint32_t* values, size_t count) {
  // Row-major prepared layout: row r's bucket indices for the chunk are
  // contiguous at buckets[r*count .. r*count+count). Per 8-lane group:
  // gather the cells, add the deltas, emulate unsigned saturation
  // (overflowed lanes — where max_epu32(sum, cell) != sum — become
  // all-ones), store lanewise. AVX2 has no scatter, and a gather+store
  // group would lose increments if two lanes hit the same cell, so any
  // intra-group index collision (detected by OR-ing lane-equality over
  // the 7 nontrivial rotations) drops that group to the scalar loop.
  const __m256i rotate1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  const __m256i ones = _mm256_set1_epi32(-1);
  for (uint32_t row = 0; row < config_.width; ++row) {
    count_t* base = &cells_[static_cast<size_t>(row) * config_.depth];
    const uint32_t* idx = buckets + static_cast<size_t>(row) * count;
    size_t k = 0;
    for (; k + 8 <= count; k += 8) {
      const __m256i lanes =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + k));
      __m256i conflict = _mm256_setzero_si256();
      __m256i rot = lanes;
      for (int r = 0; r < 7; ++r) {
        rot = _mm256_permutevar8x32_epi32(rot, rotate1);
        conflict =
            _mm256_or_si256(conflict, _mm256_cmpeq_epi32(lanes, rot));
      }
      if (_mm256_movemask_epi8(conflict) != 0) [[unlikely]] {
        for (size_t j = k; j < k + 8; ++j) {
          count_t& cell = base[idx[j]];
          RelaxedStore(cell, SaturatingAdd(
                                 cell, static_cast<delta_t>(values[j])));
        }
        continue;
      }
      // Gathers are plain reads of our own cells — the updater is the
      // single writer, concurrent readers never store (count_min.cc top
      // comment), so only the stores need to be atomic.
      const __m256i cells = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(base), lanes, 4);
      const __m256i vals =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + k));
      const __m256i sum = _mm256_add_epi32(cells, vals);
      const __m256i no_overflow =
          _mm256_cmpeq_epi32(_mm256_max_epu32(sum, cells), sum);
      const __m256i result =
          _mm256_or_si256(sum, _mm256_andnot_si256(no_overflow, ones));
      alignas(32) uint32_t out[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(out), result);
      for (size_t j = 0; j < 8; ++j) {
        RelaxedStore(base[idx[k + j]], out[j]);
      }
    }
    for (; k < count; ++k) {
      count_t& cell = base[idx[k]];
      RelaxedStore(cell,
                   SaturatingAdd(cell, static_cast<delta_t>(values[k])));
    }
  }
}
#endif  // defined(__AVX2__)

count_t CountMin::Estimate(item_t key) const {
  count_t est = std::numeric_limits<count_t>::max();
  for (uint32_t row = 0; row < config_.width; ++row) {
    est = std::min(est, Cell(row, hashes_.Bucket(row, key)));
  }
  return est;
}

void CountMin::Reset() {
  for (count_t& cell : cells_) RelaxedStore(cell, 0u);
}

namespace {
constexpr uint32_t kCountMinMagic = 0x314d4d43;  // "CMM1"
}  // namespace

bool CountMin::CompatibleWith(const CountMin& other) const {
  return config_.width == other.config_.width &&
         config_.depth == other.config_.depth &&
         config_.seed == other.config_.seed;
}

std::optional<std::string> CountMin::MergeFrom(const CountMin& other) {
  if (!CompatibleWith(other)) {
    return "CountMin::MergeFrom: incompatible configs (width/depth/seed "
           "must match)";
  }
  // Delta-aware fast path: deltas from short epochs leave most source
  // cells zero; skipping them turns the merge's read-modify-write
  // stream into a sequential read of `other` plus sparse writes.
  for (size_t i = 0; i < cells_.size(); ++i) {
    const count_t add = other.cells_[i];
    if (add == 0) continue;
    RelaxedStore(cells_[i],
                 SaturatingAdd(cells_[i], static_cast<delta_t>(add)));
  }
  return std::nullopt;
}

wide_count_t CountMin::InnerProductEstimate(const CountMin& other) const {
  ASKETCH_CHECK(CompatibleWith(other));
  wide_count_t best = ~wide_count_t{0};
  for (uint32_t row = 0; row < config_.width; ++row) {
    unsigned __int128 dot = 0;
    for (uint32_t b = 0; b < config_.depth; ++b) {
      dot += static_cast<unsigned __int128>(Cell(row, b)) *
             other.Cell(row, b);
    }
    const wide_count_t clamped =
        dot > static_cast<unsigned __int128>(~wide_count_t{0})
            ? ~wide_count_t{0}
            : static_cast<wide_count_t>(dot);
    best = std::min(best, clamped);
  }
  return best;
}

bool CountMin::SerializeTo(BinaryWriter& writer) const {
  writer.PutU32(kCountMinMagic);
  writer.PutU32(config_.width);
  writer.PutU32(config_.depth);
  writer.PutU64(config_.seed);
  writer.PutU8(config_.policy == CmUpdatePolicy::kConservative ? 1 : 0);
  writer.PutPodVector(cells_);
  return writer.ok();
}

std::optional<CountMin> CountMin::DeserializeFrom(BinaryReader& reader) {
  uint32_t magic = 0;
  CountMinConfig config;
  uint8_t policy = 0;
  if (!reader.GetU32(&magic) || magic != kCountMinMagic) {
    return std::nullopt;
  }
  if (!reader.GetU32(&config.width) || !reader.GetU32(&config.depth) ||
      !reader.GetU64(&config.seed) || !reader.GetU8(&policy)) {
    return std::nullopt;
  }
  config.policy = policy != 0 ? CmUpdatePolicy::kConservative
                              : CmUpdatePolicy::kPlain;
  if (config.Validate().has_value()) return std::nullopt;
  std::vector<count_t> cells;
  if (!reader.GetPodVector(&cells) ||
      cells.size() !=
          static_cast<size_t>(config.width) * config.depth) {
    return std::nullopt;
  }
  CountMin sketch(config);
  sketch.cells_ = std::move(cells);
  // The moved-in buffer replaced the ctor's advised allocation.
  sketch.AdviseHugePagesIfLarge();
  return sketch;
}

wide_count_t CountMin::RowSum(uint32_t row) const {
  ASKETCH_CHECK(row < config_.width);
  wide_count_t sum = 0;
  for (uint32_t b = 0; b < config_.depth; ++b) sum += Cell(row, b);
  return sum;
}

}  // namespace asketch
