// Count-Min sketch (Cormode & Muthukrishnan, J. Algorithms 2005).
//
// A 2-dimensional array of w rows (one pairwise-independent hash function
// per row) and h cells per row. Every update adds the delta to one cell per
// row; a point query returns the minimum over the w hashed cells. For a
// strict stream of total count N the estimate errs by at most (e/h)·N with
// probability at least 1 − e^{−w} (one-sided: never an under-estimate).
//
// This is the default sketch backend for ASketch, the baseline in every
// paper experiment, and the underlying sketch of Holistic UDAFs.

#ifndef ASKETCH_SKETCH_COUNT_MIN_H_
#define ASKETCH_SKETCH_COUNT_MIN_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/atomic_util.h"
#include "src/common/check.h"
#include "src/common/hashing.h"
#include "src/common/serialize.h"
#include "src/common/types.h"

namespace asketch {

/// Cell-update policies for CountMin.
enum class CmUpdatePolicy {
  /// Classic Count-Min: every hashed cell receives the full delta.
  kPlain,
  /// Conservative update (Estan & Varghese): a positive delta only raises
  /// the hashed cells up to max(estimate + delta, cell) — strictly more
  /// accurate for point queries, still one-sided, but only defined for
  /// insertions (negative deltas fall back to plain subtraction).
  kConservative,
};

/// Configuration for CountMin. `width` is the number of hash functions
/// (rows, "w" in the paper); `depth` is the range of each hash function
/// (cells per row, "h" in the paper).
struct CountMinConfig {
  uint32_t width = 8;
  uint32_t depth = 4096;
  uint64_t seed = 42;
  CmUpdatePolicy policy = CmUpdatePolicy::kPlain;

  /// Largest accepted `width`: the conservative-update path stages one
  /// bucket per row in a fixed 64-entry block.
  static constexpr uint32_t kMaxWidth = 64;

  /// Returns an error message if invalid, std::nullopt otherwise.
  std::optional<std::string> Validate() const;

  /// Config with `width` rows whose total cell storage fits `bytes`.
  /// depth = bytes / (width * sizeof(count_t)), capped at UINT32_MAX;
  /// `width` is clamped into [1, kMaxWidth] before dividing.
  static CountMinConfig FromSpaceBudget(size_t bytes, uint32_t width,
                                        uint64_t seed = 42);
};

/// The Count-Min sketch.
class CountMin {
 public:
  /// Constructs from a validated config (CHECK-fails on invalid configs;
  /// call config.Validate() first for recoverable handling).
  explicit CountMin(const CountMinConfig& config);

  /// Applies tuple (key, delta). Negative deltas model deletions and are
  /// valid as long as the stream stays strict (no true count below zero).
  void Update(item_t key, delta_t delta = 1);

  /// Point query: min over the hashed cells. Never under-estimates on
  /// strict streams.
  count_t Estimate(item_t key) const;

  /// Point query safe against a concurrent updater: the cells are read
  /// with relaxed atomic loads (every mutator stores them atomically,
  /// so the mixed access is race-free). On insert-only streams each
  /// cell is monotone non-decreasing, so whatever interleaving the
  /// loads observe, every cell is at least its value at any earlier
  /// consistent cut — the min stays a one-sided (never-under) estimate
  /// of any prefix of the applied stream. Deletions break the
  /// monotonicity argument; the serving wire protocol carries none
  /// (Tuple weights are unsigned).
  count_t EstimateRelaxed(item_t key) const {
    count_t est = std::numeric_limits<count_t>::max();
    for (uint32_t row = 0; row < config_.width; ++row) {
      est = std::min(est, RelaxedLoad(Cell(row, hashes_.Bucket(row, key))));
    }
    return est;
  }

  /// Update(key, delta) followed by Estimate(key), hashing only once —
  /// the fused form Algorithm 1's miss path wants (line 8 + line 9).
  count_t UpdateAndEstimate(item_t key, delta_t delta);

  /// Issues software prefetches for the w cells `key` hashes to. An
  /// update touches one cell per row, w dependent random accesses — the
  /// cost the paper's pre-filter exists to avoid (§6.1); prefetching the
  /// next tuples' rows while the current one is processed hides it on
  /// the batch path.
  void Prefetch(item_t key) const {
    for (uint32_t row = 0; row < config_.width; ++row) {
      __builtin_prefetch(&Cell(row, hashes_.Bucket(row, key)), 1, 3);
    }
  }

  /// Sketches at or below this footprint are effectively cache-resident
  /// on any modern core (the paper's default budget is 128 KB, well
  /// inside an L2): their cells come back in a few cycles anyway, and
  /// issuing w prefetch instructions per miss is pure overhead. The
  /// prepared-batch path only prefetches above this size.
  static constexpr size_t kPrefetchMinBytes = size_t{2} << 20;

  /// Prefetch that also records the bucket `key` hashes to in every row
  /// into buckets[0..width()). The Carter–Wegman hash is the expensive
  /// half of an update (a 128-bit multiply plus a division per row), so
  /// batched callers hash once here and replay via UpdateAt /
  /// UpdateAndEstimateAt (with stride 1) instead of paying it twice. The
  /// indices depend only on the hash seeds and stay valid for the
  /// sketch's lifetime.
  void PrepareUpdate(item_t key, uint32_t* buckets) const {
    for (uint32_t row = 0; row < config_.width; ++row) {
      buckets[row] = hashes_.Bucket(row, key);
      __builtin_prefetch(&Cell(row, buckets[row]), 1, 3);
    }
  }

  /// PrepareUpdate for `count` keys at once, row-major:
  /// buckets[row*count + k] receives the bucket of keys[k] in `row`
  /// (pass `count` as the stride to UpdateAt / UpdateAndEstimateAt and
  /// &buckets[k] as the base). Hashing is vectorized across the keys
  /// (HashFamily::BucketsForKeys), which is where the batched ingestion
  /// path gets most of its speedup — the Carter–Wegman evaluation
  /// dominates an update and the vector kernel amortizes it over eight
  /// keys. Cells are software-prefetched only for sketches too large to
  /// sit in cache (see kPrefetchMinBytes).
  void PrepareUpdateBatch(const item_t* keys, size_t count,
                          uint32_t* buckets) const {
    hashes_.BucketsForKeys(keys, count, buckets, count);
    if (MemoryUsageBytes() > kPrefetchMinBytes) {
      for (uint32_t row = 0; row < config_.width; ++row) {
        for (size_t k = 0; k < count; ++k) {
          __builtin_prefetch(&Cell(row, buckets[row * count + k]), 1, 3);
        }
      }
    }
  }

  /// Update(key, delta) where `buckets` points at the key's column of a
  /// PrepareUpdate/PrepareUpdateBatch result: row r's bucket is
  /// buckets[r*stride]. Bit-identical effect, no second hash pass.
  void UpdateAt(const uint32_t* buckets, delta_t delta, size_t stride = 1);

  /// UpdateAndEstimate(key, delta) through prepared buckets.
  count_t UpdateAndEstimateAt(const uint32_t* buckets, delta_t delta,
                              size_t stride = 1);

  /// Applies the tuples (bit-identical to the equivalent sequence of
  /// Update calls), prefetching a few tuples ahead. Under the plain
  /// policy the counter writes are vectorized with AVX2 gathers on
  /// builds that have them: row-major prepared buckets make each row's
  /// chunk indices contiguous, and per-cell saturating addition of
  /// unsigned deltas is order-independent (final cell = min(2^32-1,
  /// initial + Σdeltas)), so the row-major application order — with a
  /// scalar fallback for any 8-lane group whose indices collide — stays
  /// bit-identical to the scalar tuple-major walk. The conservative
  /// policy is order-dependent and always takes the scalar path.
  void UpdateBatch(std::span<const Tuple> tuples);

  /// Clears all cells; hash functions are kept.
  void Reset();

  uint32_t width() const { return config_.width; }
  uint32_t depth() const { return config_.depth; }
  const CountMinConfig& config() const { return config_; }

  /// Sum of all cells in one row == total stream count pushed through the
  /// sketch (plain policy only). Used by tests and the selectivity model.
  wide_count_t RowSum(uint32_t row) const;

  /// Storage footprint of the cell array in bytes.
  size_t MemoryUsageBytes() const {
    return cells_.size() * sizeof(count_t);
  }

  /// True if `other` was built with the same width, depth, and seed —
  /// the precondition for MergeFrom (the two share hash functions).
  bool CompatibleWith(const CountMin& other) const;

  /// Whether AdoptFrom(other) can replace this sketch's state without
  /// reallocating the cell array or rebuilding the hash functions
  /// concurrent readers are using: full config match (the update policy
  /// may differ — it does not affect layout or hashing).
  bool CanAdoptFrom(const CountMin& other) const {
    return CompatibleWith(other);
  }

  /// Replaces this sketch's cells (and update policy) with `other`'s,
  /// in place: the cell array is never reallocated, so lock-free
  /// readers racing the adoption observe a mix of old and new cell
  /// values, never freed memory. Requires CanAdoptFrom(other); the
  /// caller must exclude concurrent updaters (e.g. hold the shard mutex
  /// during snapshot re-adoption).
  void AdoptFrom(CountMin&& other) {
    ASKETCH_CHECK(CanAdoptFrom(other));
    config_.policy = other.config_.policy;
    for (size_t i = 0; i < cells_.size(); ++i) {
      RelaxedStore(cells_[i], other.cells_[i]);
    }
  }

  /// Adds `other`'s cells into this sketch (saturating). Count-Min is
  /// linearly mergeable: the merged sketch answers queries over the
  /// union of both streams with the usual one-sided guarantee. Returns
  /// an error message on an incompatible configuration.
  std::optional<std::string> MergeFrom(const CountMin& other);

  /// Estimates the inner product of the two summarized frequency vectors
  /// Σ_k f_this(k)·f_other(k) — the classic sketch join-size estimator
  /// (min over rows of the row dot products; never an under-estimate on
  /// strict streams). The sketches must be CompatibleWith each other;
  /// CHECK-fails otherwise.
  wide_count_t InnerProductEstimate(const CountMin& other) const;

  /// Writes config + cells; hash functions are reconstructed from the
  /// seed on load.
  bool SerializeTo(BinaryWriter& writer) const;

  /// Inverse of SerializeTo; std::nullopt on malformed input.
  static std::optional<CountMin> DeserializeFrom(BinaryReader& reader);

  /// Snapshot-envelope payload tag (registry: src/common/snapshot.h).
  static constexpr uint32_t kSnapshotPayloadType = 1;

  std::string Name() const { return "CountMin"; }

 private:
  /// AVX2 apply loop for UpdateBatch's plain-policy path: per row,
  /// gathers 8 cells, adds 8 deltas with saturation, stores lanewise.
  /// Only defined (and called) on __AVX2__ builds.
  void ApplyPreparedAvx2(const uint32_t* buckets, const uint32_t* values,
                         size_t count);

  /// madvise(MADV_HUGEPAGE) on the cell array when it is large enough
  /// to profit (ctor + deserialize; see src/common/hugepage.h).
  void AdviseHugePagesIfLarge();

  count_t& Cell(uint32_t row, uint32_t bucket) {
    return cells_[static_cast<size_t>(row) * config_.depth + bucket];
  }
  const count_t& Cell(uint32_t row, uint32_t bucket) const {
    return cells_[static_cast<size_t>(row) * config_.depth + bucket];
  }

  CountMinConfig config_;
  HashFamily hashes_;
  std::vector<count_t> cells_;
};

}  // namespace asketch

#endif  // ASKETCH_SKETCH_COUNT_MIN_H_
