#include "src/sketch/count_sketch.h"

#include <algorithm>

namespace asketch {

std::optional<std::string> CountSketchConfig::Validate() const {
  if (width < 1) return "CountSketch width must be >= 1";
  if (depth < 1) return "CountSketch depth must be >= 1";
  return std::nullopt;
}

CountSketchConfig CountSketchConfig::FromSpaceBudget(size_t bytes,
                                                     uint32_t width,
                                                     uint64_t seed) {
  CountSketchConfig config;
  config.width = width;
  config.depth = static_cast<uint32_t>(
      std::max<size_t>(1, bytes / (static_cast<size_t>(width) *
                                   sizeof(int32_t))));
  config.seed = seed;
  return config;
}

CountSketch::CountSketch(const CountSketchConfig& config) : config_(config) {
  ASKETCH_CHECK(!config.Validate().has_value());
  hashes_ = HashFamily(config_.width, config_.depth, config_.seed);
  signs_ = SignFamily(config_.width, config_.seed);
  cells_.assign(static_cast<size_t>(config_.width) * config_.depth, 0);
}

void CountSketch::Update(item_t key, delta_t delta) {
  for (uint32_t row = 0; row < config_.width; ++row) {
    int64_t signed_delta = signs_.Sign(row, key) * delta;
    int32_t& cell = Cell(row, hashes_.Bucket(row, key));
    // Saturating signed add: per-cell noise can be large on adversarial
    // streams; clamping is cheaper than widening every cell.
    int64_t v = static_cast<int64_t>(cell) + signed_delta;
    v = std::clamp<int64_t>(v, INT32_MIN, INT32_MAX);
    cell = static_cast<int32_t>(v);
  }
}

namespace {

// Median of readings[0, w): for even widths the two middle elements are
// averaged, which keeps the estimator unbiased.
count_t MedianEstimate(int32_t* readings, uint32_t w) {
  std::nth_element(readings, readings + w / 2, readings + w);
  int64_t median = readings[w / 2];
  if (w % 2 == 0) {
    int32_t lower = *std::max_element(readings, readings + w / 2);
    median = (median + lower) / 2;
  }
  return median <= 0 ? 0 : static_cast<count_t>(median);
}

}  // namespace

void CountSketch::UpdateBatch(std::span<const Tuple> tuples) {
  constexpr size_t kPrefetchTuples = 4;
  const size_t n = tuples.size();
  const size_t warm = std::min(kPrefetchTuples, n);
  for (size_t i = 0; i < warm; ++i) Prefetch(tuples[i].key);
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchTuples < n) Prefetch(tuples[i + kPrefetchTuples].key);
    Update(tuples[i].key, static_cast<delta_t>(tuples[i].value));
  }
}

count_t CountSketch::Estimate(item_t key) const {
  int32_t readings[64] = {};
  ASKETCH_DCHECK(config_.width <= 64);
  for (uint32_t row = 0; row < config_.width; ++row) {
    readings[row] =
        signs_.Sign(row, key) * Cell(row, hashes_.Bucket(row, key));
  }
  return MedianEstimate(readings, config_.width);
}

count_t CountSketch::UpdateAndEstimate(item_t key, delta_t delta) {
  int32_t readings[64] = {};
  ASKETCH_DCHECK(config_.width <= 64);
  for (uint32_t row = 0; row < config_.width; ++row) {
    const int32_t sign = signs_.Sign(row, key);
    int32_t& cell = Cell(row, hashes_.Bucket(row, key));
    const int64_t v = static_cast<int64_t>(cell) + sign * delta;
    cell = static_cast<int32_t>(
        std::clamp<int64_t>(v, INT32_MIN, INT32_MAX));
    readings[row] = sign * cell;
  }
  return MedianEstimate(readings, config_.width);
}

void CountSketch::Reset() { std::fill(cells_.begin(), cells_.end(), 0); }

namespace {
constexpr uint32_t kCountSketchMagic = 0x314b5343;  // "CSK1"
}  // namespace

bool CountSketch::CompatibleWith(const CountSketch& other) const {
  return config_.width == other.config_.width &&
         config_.depth == other.config_.depth &&
         config_.seed == other.config_.seed;
}

std::optional<std::string> CountSketch::MergeFrom(
    const CountSketch& other) {
  if (!CompatibleWith(other)) {
    return "CountSketch::MergeFrom: incompatible configs";
  }
  for (size_t i = 0; i < cells_.size(); ++i) {
    const int64_t v =
        static_cast<int64_t>(cells_[i]) + other.cells_[i];
    cells_[i] = static_cast<int32_t>(
        std::clamp<int64_t>(v, INT32_MIN, INT32_MAX));
  }
  return std::nullopt;
}

bool CountSketch::SerializeTo(BinaryWriter& writer) const {
  writer.PutU32(kCountSketchMagic);
  writer.PutU32(config_.width);
  writer.PutU32(config_.depth);
  writer.PutU64(config_.seed);
  writer.PutPodVector(cells_);
  return writer.ok();
}

std::optional<CountSketch> CountSketch::DeserializeFrom(
    BinaryReader& reader) {
  uint32_t magic = 0;
  CountSketchConfig config;
  if (!reader.GetU32(&magic) || magic != kCountSketchMagic) {
    return std::nullopt;
  }
  if (!reader.GetU32(&config.width) || !reader.GetU32(&config.depth) ||
      !reader.GetU64(&config.seed)) {
    return std::nullopt;
  }
  if (config.Validate().has_value()) return std::nullopt;
  std::vector<int32_t> cells;
  if (!reader.GetPodVector(&cells) ||
      cells.size() !=
          static_cast<size_t>(config.width) * config.depth) {
    return std::nullopt;
  }
  CountSketch sketch(config);
  sketch.cells_ = std::move(cells);
  return sketch;
}

}  // namespace asketch
