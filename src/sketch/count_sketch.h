// Count Sketch (Charikar, Chen, Farach-Colton, ICALP 2002).
//
// Like Count-Min but each row additionally draws a pairwise-independent
// ±1 sign per key; updates add sign·delta and the point estimate is the
// *median* of the per-row signed readings. The error is two-sided but
// unbiased, with variance bounded by the stream's second moment over h.
//
// In this library Count Sketch serves as the "other sketch" demonstrating
// that ASketch is generic over its backend (§3 of the paper lists it as an
// admissible underlying sketch).

#ifndef ASKETCH_SKETCH_COUNT_SKETCH_H_
#define ASKETCH_SKETCH_COUNT_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/hashing.h"
#include "src/common/serialize.h"
#include "src/common/types.h"

namespace asketch {

/// Configuration for CountSketch; same vocabulary as CountMinConfig.
struct CountSketchConfig {
  uint32_t width = 8;
  uint32_t depth = 4096;
  uint64_t seed = 42;

  std::optional<std::string> Validate() const;

  /// Config with `width` rows whose cell storage fits `bytes`
  /// (cells are int32, the same size as CountMin's uint32 cells).
  static CountSketchConfig FromSpaceBudget(size_t bytes, uint32_t width,
                                           uint64_t seed = 42);
};

/// The Count Sketch. Estimates are clamped at zero before being returned
/// as count_t (true counts are non-negative on strict streams).
class CountSketch {
 public:
  explicit CountSketch(const CountSketchConfig& config);

  /// Applies tuple (key, delta); deletions are negative deltas.
  void Update(item_t key, delta_t delta = 1);

  /// Point query: median of the signed per-row readings, clamped to >= 0.
  count_t Estimate(item_t key) const;

  /// Fused Update + Estimate with a single round of hashing.
  count_t UpdateAndEstimate(item_t key, delta_t delta);

  /// Issues software prefetches for the cells `key` hashes to (one per
  /// row), hiding the w random accesses on the batch path.
  void Prefetch(item_t key) const {
    for (uint32_t row = 0; row < config_.width; ++row) {
      __builtin_prefetch(&Cell(row, hashes_.Bucket(row, key)), 1, 3);
    }
  }

  /// Applies the tuples in order (bit-identical to the equivalent
  /// sequence of Update calls), prefetching a few tuples ahead.
  void UpdateBatch(std::span<const Tuple> tuples);

  void Reset();

  uint32_t width() const { return config_.width; }
  uint32_t depth() const { return config_.depth; }

  size_t MemoryUsageBytes() const { return cells_.size() * sizeof(int32_t); }

  /// True if `other` shares width, depth, and seed (hence hash + sign
  /// functions).
  bool CompatibleWith(const CountSketch& other) const;

  /// Adds `other`'s cells (clamped). Count Sketch is linearly mergeable.
  std::optional<std::string> MergeFrom(const CountSketch& other);

  bool SerializeTo(BinaryWriter& writer) const;
  static std::optional<CountSketch> DeserializeFrom(BinaryReader& reader);

  /// Snapshot-envelope payload tag (registry: src/common/snapshot.h).
  static constexpr uint32_t kSnapshotPayloadType = 2;

  std::string Name() const { return "CountSketch"; }

 private:
  int32_t& Cell(uint32_t row, uint32_t bucket) {
    return cells_[static_cast<size_t>(row) * config_.depth + bucket];
  }
  const int32_t& Cell(uint32_t row, uint32_t bucket) const {
    return cells_[static_cast<size_t>(row) * config_.depth + bucket];
  }

  CountSketchConfig config_;
  HashFamily hashes_;
  SignFamily signs_;
  std::vector<int32_t> cells_;
};

}  // namespace asketch

#endif  // ASKETCH_SKETCH_COUNT_SKETCH_H_
