#include "src/sketch/dyadic_count_min.h"

#include <algorithm>

namespace asketch {

std::optional<std::string> DyadicCountMinConfig::Validate() const {
  if (domain_bits < 1 || domain_bits > 32) {
    return std::string("domain_bits must be in [1, 32]");
  }
  if (width < 1) return std::string("width must be >= 1");
  if (total_bytes < 1024) {
    return std::string("total_bytes must be >= 1KB");
  }
  return std::nullopt;
}

DyadicCountMin::DyadicCountMin(const DyadicCountMinConfig& config)
    : config_(config) {
  ASKETCH_CHECK(!config.Validate().has_value());
  // Level L covers 2^(bits-L) intervals; levels 0..bits-1 need storage
  // (the root, level `bits`, is just total_). First decide which levels
  // can be exact within an even share of the budget, then give the
  // remaining (hashed) levels the rest.
  const uint32_t num_levels = config_.domain_bits;
  levels_.resize(num_levels);
  const size_t even_share = config_.total_bytes / num_levels;
  size_t hashed_levels = 0;
  for (uint32_t level = 0; level < num_levels; ++level) {
    const uint64_t intervals = uint64_t{1} << (config_.domain_bits - level);
    if (intervals * sizeof(count_t) > even_share) ++hashed_levels;
  }
  size_t exact_bytes = 0;
  for (uint32_t level = 0; level < num_levels; ++level) {
    const uint64_t intervals = uint64_t{1} << (config_.domain_bits - level);
    if (intervals * sizeof(count_t) <= even_share) {
      levels_[level].exact.assign(intervals, 0);
      exact_bytes += intervals * sizeof(count_t);
    }
  }
  const size_t hashed_budget =
      config_.total_bytes > exact_bytes ? config_.total_bytes - exact_bytes
                                        : 1024;
  const size_t per_hashed =
      hashed_levels > 0 ? hashed_budget / hashed_levels : 0;
  for (uint32_t level = 0; level < num_levels; ++level) {
    if (levels_[level].exact.empty()) {
      levels_[level].sketch.emplace(CountMinConfig::FromSpaceBudget(
          std::max<size_t>(per_hashed, 64), config_.width,
          config_.seed + level));
    }
  }
}

void DyadicCountMin::Update(item_t key, delta_t delta) {
  ASKETCH_DCHECK(config_.domain_bits == 32 ||
                 key < (uint64_t{1} << config_.domain_bits));
  for (uint32_t level = 0; level < levels_.size(); ++level) {
    const uint64_t prefix = static_cast<uint64_t>(key) >> level;
    Level& l = levels_[level];
    if (!l.exact.empty()) {
      l.exact[prefix] = SaturatingAdd(l.exact[prefix], delta);
    } else {
      l.sketch->Update(static_cast<item_t>(prefix), delta);
    }
  }
  total_ = static_cast<wide_count_t>(
      std::max<int64_t>(0, static_cast<int64_t>(total_) + delta));
}

count_t DyadicCountMin::LevelEstimate(uint32_t level,
                                      uint64_t prefix) const {
  if (level >= levels_.size()) {
    // The root: clamp the running total into count_t.
    return static_cast<count_t>(
        std::min<wide_count_t>(total_, ~count_t{0}));
  }
  const Level& l = levels_[level];
  if (!l.exact.empty()) return l.exact[prefix];
  return l.sketch->Estimate(static_cast<item_t>(prefix));
}

wide_count_t DyadicCountMin::RangeSum(item_t lo, item_t hi) const {
  ASKETCH_CHECK(lo <= hi);
  wide_count_t sum = 0;
  uint64_t left = lo;
  uint64_t right = hi;
  uint32_t level = 0;
  // Standard dyadic decomposition (segment-tree style): peel off
  // unaligned endpoints, then ascend one level.
  while (left <= right) {
    if ((left & 1) == 1) {
      sum += LevelEstimate(level, left);
      ++left;
    }
    if ((right & 1) == 0) {
      sum += LevelEstimate(level, right);
      if (right == 0) return sum;  // cannot go below zero
      --right;
    }
    if (left > right) break;
    left >>= 1;
    right >>= 1;
    ++level;
    // The loop always terminates through the peeling branches: once
    // left == right the next iteration peels it (whatever its parity),
    // at the root (level == levels_.size()) LevelEstimate returns the
    // exact running total.
  }
  return sum;
}

std::vector<RangeHeavyHitter> DyadicCountMin::HeavyHitters(
    count_t threshold) const {
  ASKETCH_CHECK(threshold >= 1);
  std::vector<RangeHeavyHitter> result;
  // Depth-first descent from the two halves of the root.
  struct Frame {
    uint32_t level;
    uint64_t prefix;
  };
  std::vector<Frame> stack;
  const uint32_t top = static_cast<uint32_t>(levels_.size()) - 1;
  stack.push_back(Frame{top, 0});
  stack.push_back(Frame{top, 1});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const count_t estimate = LevelEstimate(frame.level, frame.prefix);
    if (estimate < threshold) continue;
    if (frame.level == 0) {
      result.push_back(RangeHeavyHitter{
          static_cast<item_t>(frame.prefix), estimate});
      continue;
    }
    stack.push_back(Frame{frame.level - 1, frame.prefix * 2});
    stack.push_back(Frame{frame.level - 1, frame.prefix * 2 + 1});
  }
  std::sort(result.begin(), result.end(),
            [](const RangeHeavyHitter& a, const RangeHeavyHitter& b) {
              if (a.estimate != b.estimate) return a.estimate > b.estimate;
              return a.key < b.key;
            });
  return result;
}

size_t DyadicCountMin::MemoryUsageBytes() const {
  size_t bytes = 0;
  for (const Level& level : levels_) {
    if (!level.exact.empty()) {
      bytes += level.exact.size() * sizeof(count_t);
    } else {
      bytes += level.sketch->MemoryUsageBytes();
    }
  }
  return bytes;
}

namespace {
constexpr uint32_t kDyadicMagic = 0x31434451;  // "QDC1"
}  // namespace

bool DyadicCountMin::SerializeTo(BinaryWriter& writer) const {
  writer.PutU32(kDyadicMagic);
  writer.PutU32(config_.domain_bits);
  writer.PutU32(config_.width);
  writer.PutU64(config_.total_bytes);
  writer.PutU64(config_.seed);
  writer.PutU64(total_);
  for (const Level& level : levels_) {
    writer.PutU8(level.exact.empty() ? 0 : 1);
    if (!level.exact.empty()) {
      writer.PutPodVector(level.exact);
    } else if (!level.sketch->SerializeTo(writer)) {
      return false;
    }
  }
  return writer.ok();
}

std::optional<DyadicCountMin> DyadicCountMin::DeserializeFrom(
    BinaryReader& reader) {
  uint32_t magic = 0;
  DyadicCountMinConfig config;
  uint64_t total_bytes = 0, total = 0;
  if (!reader.GetU32(&magic) || magic != kDyadicMagic) {
    return std::nullopt;
  }
  if (!reader.GetU32(&config.domain_bits) || !reader.GetU32(&config.width) ||
      !reader.GetU64(&total_bytes) || !reader.GetU64(&config.seed) ||
      !reader.GetU64(&total)) {
    return std::nullopt;
  }
  config.total_bytes = total_bytes;
  if (total_bytes > kMaxSerializedBytes) return std::nullopt;
  if (config.Validate().has_value()) return std::nullopt;
  DyadicCountMin sketch(config);
  sketch.total_ = total;
  for (Level& level : sketch.levels_) {
    uint8_t is_exact = 0;
    if (!reader.GetU8(&is_exact)) return std::nullopt;
    // The exact/hashed split is a deterministic function of the config,
    // so a mismatch indicates corruption.
    if ((is_exact != 0) != !level.exact.empty()) return std::nullopt;
    if (is_exact != 0) {
      std::vector<count_t> cells;
      if (!reader.GetPodVector(&cells) ||
          cells.size() != level.exact.size()) {
        return std::nullopt;
      }
      level.exact = std::move(cells);
    } else {
      auto restored = CountMin::DeserializeFrom(reader);
      if (!restored.has_value() ||
          !restored->CompatibleWith(*level.sketch)) {
        return std::nullopt;
      }
      level.sketch = *std::move(restored);
    }
  }
  return sketch;
}

void DyadicCountMin::Reset() {
  total_ = 0;
  for (Level& level : levels_) {
    if (!level.exact.empty()) {
      std::fill(level.exact.begin(), level.exact.end(), 0);
    } else {
      level.sketch->Reset();
    }
  }
}

}  // namespace asketch
