// Dyadic Count-Min: range queries and hierarchical heavy hitters.
//
// The "hierarchical data structure" route to top-k/heavy-hitter queries
// referenced in §2 of the ASketch paper (Cormode & Muthukrishnan's
// count-min range-query construction). The key domain [0, 2^bits) is
// covered by bits+1 dyadic levels; level L summarizes the counts of the
// 2^(bits-L) aligned intervals of length 2^L. A range sum decomposes
// into at most 2·bits canonical intervals, each answered by one level;
// heavy hitters are found by descending from the root and expanding only
// the children whose estimate clears the threshold.
//
// Levels whose domain is small enough to afford one exact counter per
// interval store exact counts (no hashing); larger levels each hold a
// Count-Min. All estimates are one-sided on strict streams, so range
// sums and the heavy-hitter descent never miss (no false negatives).

#ifndef ASKETCH_SKETCH_DYADIC_COUNT_MIN_H_
#define ASKETCH_SKETCH_DYADIC_COUNT_MIN_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/serialize.h"
#include "src/common/types.h"
#include "src/sketch/count_min.h"

namespace asketch {

/// Configuration for DyadicCountMin.
struct DyadicCountMinConfig {
  /// Number of key bits covered; keys must lie in [0, 2^domain_bits).
  uint32_t domain_bits = 32;
  /// Rows per per-level Count-Min.
  uint32_t width = 4;
  /// Total byte budget across all levels (split evenly over the levels
  /// that need hashing).
  size_t total_bytes = 256 * 1024;
  uint64_t seed = 42;

  std::optional<std::string> Validate() const;
};

/// A heavy hitter reported by the hierarchical descent.
struct RangeHeavyHitter {
  item_t key = 0;
  count_t estimate = 0;
};

/// The dyadic Count-Min structure.
class DyadicCountMin {
 public:
  explicit DyadicCountMin(const DyadicCountMinConfig& config);

  /// Applies tuple (key, delta) to every level. Negative deltas model
  /// deletions (strict streams only).
  void Update(item_t key, delta_t delta = 1);

  /// Point query (level 0).
  count_t Estimate(item_t key) const { return LevelEstimate(0, key); }

  /// Over-estimate of the total count of keys in [lo, hi] (inclusive).
  wide_count_t RangeSum(item_t lo, item_t hi) const;

  /// All keys whose estimated count is >= threshold, found by dyadic
  /// descent; complete (every key with true count >= threshold is
  /// reported) because estimates never under-count.
  std::vector<RangeHeavyHitter> HeavyHitters(count_t threshold) const;

  /// Total stream weight processed (the root level's count).
  wide_count_t Total() const { return total_; }

  uint32_t domain_bits() const { return config_.domain_bits; }
  size_t MemoryUsageBytes() const;

  void Reset();

  bool SerializeTo(BinaryWriter& writer) const;
  static std::optional<DyadicCountMin> DeserializeFrom(
      BinaryReader& reader);

  /// Snapshot-envelope payload tag (registry: src/common/snapshot.h).
  static constexpr uint32_t kSnapshotPayloadType = 7;

  std::string Name() const { return "DyadicCountMin"; }

 private:
  /// Estimated count of the dyadic interval `prefix` at `level`
  /// (covering keys [prefix << level, (prefix+1) << level - 1]).
  count_t LevelEstimate(uint32_t level, uint64_t prefix) const;

  DyadicCountMinConfig config_;
  wide_count_t total_ = 0;
  // Per level: either an exact array (small domains) or a Count-Min.
  struct Level {
    std::vector<count_t> exact;  // non-empty => exact level
    std::optional<CountMin> sketch;
  };
  std::vector<Level> levels_;
};

}  // namespace asketch

#endif  // ASKETCH_SKETCH_DYADIC_COUNT_MIN_H_
