#include "src/sketch/fcm.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/common/bit_util.h"
#include "src/common/random.h"

namespace asketch {

std::optional<std::string> FcmConfig::Validate() const {
  if (width < 2) return "FCM width must be >= 2 (hot/cold subsets differ)";
  if (depth < 1) return "FCM depth must be >= 1";
  if (use_mg_classifier && mg_capacity < 1) {
    return "FCM MG classifier capacity must be >= 1";
  }
  return std::nullopt;
}

FcmConfig FcmConfig::FromSpaceBudget(size_t bytes, uint32_t width,
                                     uint32_t mg_capacity, uint64_t seed) {
  FcmConfig config;
  config.width = width;
  config.mg_capacity = mg_capacity;
  config.seed = seed;
  // MG counter entries plus the sticky hot-set ids.
  const size_t mg_bytes =
      mg_capacity * (MisraGries::BytesPerItem() + sizeof(item_t));
  const size_t cell_bytes = bytes > mg_bytes ? bytes - mg_bytes : 0;
  config.depth = static_cast<uint32_t>(
      std::max<size_t>(1, cell_bytes / (static_cast<size_t>(width) *
                                        sizeof(count_t))));
  return config;
}

Fcm::Fcm(const FcmConfig& config)
    : config_(config),
      hot_rows_((config.width + 1) / 2),
      cold_rows_(std::min(config.width, (4 * config.width + 4) / 5)),
      mg_(config.use_mg_classifier ? config.mg_capacity : 1) {
  ASKETCH_CHECK(!config.Validate().has_value());
  hot_ids_.assign(
      RoundUp(std::max<uint32_t>(1, config_.mg_capacity),
              kSimdBlockElements),
      0);
  hashes_ = HashFamily(config_.width, config_.depth, config_.seed);
  // Offset/gap hashes: drawn from a distinct part of the seed stream.
  Rng rng(config_.seed ^ 0x5bd1e995u);
  offset_hash_ = PairwiseHash(1 + rng.NextBounded(kMersenne61 - 1),
                              rng.NextBounded(kMersenne61), config_.width);
  // Gap values must be coprime with width so a key's row sequence visits
  // distinct rows (and hot subsets stay prefixes of cold subsets).
  for (uint32_t g = 1; g < config_.width; ++g) {
    if (std::gcd(g, config_.width) == 1) coprime_gaps_.push_back(g);
  }
  if (coprime_gaps_.empty()) coprime_gaps_.push_back(1);
  gap_hash_ = PairwiseHash(
      1 + rng.NextBounded(kMersenne61 - 1), rng.NextBounded(kMersenne61),
      static_cast<uint32_t>(coprime_gaps_.size()));
  cells_.assign(static_cast<size_t>(config_.width) * config_.depth, 0);
}

void Fcm::OffsetGap(item_t key, uint32_t* offset, uint32_t* gap) const {
  *offset = offset_hash_(key);
  *gap = coprime_gaps_[gap_hash_(key)];
}

void Fcm::Update(item_t key, delta_t delta) {
  // Classify BEFORE feeding the MG counter: a key only counts as
  // high-frequency once it has survived in the summary, not on the very
  // arrival that inserts it (a first-touch "hot" classification would
  // write only the hot row subset for every key exactly once and
  // systematically under-estimate the cold tail).
  const bool hot = IsHot(key);
  if (config_.use_mg_classifier && delta > 0) {
    mg_.Update(key, static_cast<count_t>(delta));
    processed_ += static_cast<wide_count_t>(delta);
    if (!hot && hot_size_ < config_.mg_capacity) {
      // Promote once the MG count proves the key heavy: the MG guarantee
      // says a count this large implies true frequency > N/(k+1).
      const wide_count_t count = mg_.CountOf(key);
      if (count * (config_.mg_capacity + 1) > processed_) {
        hot_ids_[hot_size_++] = key;
      }
    }
  }
  const uint32_t rows = hot ? hot_rows_ : cold_rows_;
  uint32_t offset, gap;
  OffsetGap(key, &offset, &gap);
  for (uint32_t i = 0; i < rows; ++i) {
    const uint32_t row = RowAt(offset, gap, i);
    count_t& cell = Cell(row, hashes_.Bucket(row, key));
    cell = SaturatingAdd(cell, delta);
  }
}

count_t Fcm::UpdateAndEstimate(item_t key, delta_t delta) {
  const bool hot = IsHot(key);
  if (config_.use_mg_classifier && delta > 0) {
    mg_.Update(key, static_cast<count_t>(delta));
    processed_ += static_cast<wide_count_t>(delta);
    if (!hot && hot_size_ < config_.mg_capacity) {
      const wide_count_t count = mg_.CountOf(key);
      if (count * (config_.mg_capacity + 1) > processed_) {
        hot_ids_[hot_size_++] = key;
      }
    }
  }
  const uint32_t rows = hot ? hot_rows_ : cold_rows_;
  uint32_t offset, gap;
  OffsetGap(key, &offset, &gap);
  // The estimate reads the key's *current* classification subset, which
  // is always a prefix of the rows just written (a promotion inside this
  // call can only shrink the subset: hot_rows_ <= cold_rows_).
  const uint32_t estimate_rows = IsHot(key) ? hot_rows_ : rows;
  count_t est = std::numeric_limits<count_t>::max();
  for (uint32_t i = 0; i < rows; ++i) {
    const uint32_t row = RowAt(offset, gap, i);
    count_t& cell = Cell(row, hashes_.Bucket(row, key));
    cell = SaturatingAdd(cell, delta);
    if (i < estimate_rows) est = std::min(est, cell);
  }
  return est;
}

void Fcm::UpdateBatch(std::span<const Tuple> tuples) {
  constexpr size_t kPrefetchTuples = 4;
  const size_t n = tuples.size();
  const size_t warm = std::min(kPrefetchTuples, n);
  for (size_t i = 0; i < warm; ++i) Prefetch(tuples[i].key);
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchTuples < n) Prefetch(tuples[i + kPrefetchTuples].key);
    Update(tuples[i].key, static_cast<delta_t>(tuples[i].value));
  }
}

count_t Fcm::Estimate(item_t key) const {
  const uint32_t rows = IsHot(key) ? hot_rows_ : cold_rows_;
  uint32_t offset, gap;
  OffsetGap(key, &offset, &gap);
  count_t est = std::numeric_limits<count_t>::max();
  for (uint32_t i = 0; i < rows; ++i) {
    const uint32_t row = RowAt(offset, gap, i);
    est = std::min(est, Cell(row, hashes_.Bucket(row, key)));
  }
  return est;
}

bool Fcm::CompatibleWith(const Fcm& other) const {
  return config_.width == other.config_.width &&
         config_.depth == other.config_.depth &&
         config_.seed == other.config_.seed &&
         config_.mg_capacity == other.config_.mg_capacity &&
         config_.use_mg_classifier == other.config_.use_mg_classifier;
}

std::optional<std::string> Fcm::MergeFrom(const Fcm& other) {
  if (!CompatibleWith(other)) {
    return "Fcm::MergeFrom: incompatible configs";
  }
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] = SaturatingAdd(cells_[i],
                              static_cast<delta_t>(other.cells_[i]));
  }
  processed_ += other.processed_;
  if (config_.use_mg_classifier) {
    mg_.MergeFrom(other.mg_);
    for (uint32_t i = 0;
         i < other.hot_size_ && hot_size_ < config_.mg_capacity; ++i) {
      const item_t key = other.hot_ids_[i];
      if (FindKey(hot_ids_.data(), hot_ids_.size(), hot_size_, key) < 0) {
        hot_ids_[hot_size_++] = key;
      }
    }
  }
  return std::nullopt;
}

namespace {
constexpr uint32_t kFcmMagic = 0x314d4346;  // "FCM1"
}  // namespace

bool Fcm::SerializeTo(BinaryWriter& writer) const {
  writer.PutU32(kFcmMagic);
  writer.PutU32(config_.width);
  writer.PutU32(config_.depth);
  writer.PutU32(config_.mg_capacity);
  writer.PutU8(config_.use_mg_classifier ? 1 : 0);
  writer.PutU64(config_.seed);
  writer.PutU64(processed_);
  writer.PutU32(hot_size_);
  for (uint32_t i = 0; i < hot_size_; ++i) writer.PutU32(hot_ids_[i]);
  if (config_.use_mg_classifier && !mg_.SerializeTo(writer)) return false;
  writer.PutPodVector(cells_);
  return writer.ok();
}

std::optional<Fcm> Fcm::DeserializeFrom(BinaryReader& reader) {
  uint32_t magic = 0;
  FcmConfig config;
  uint8_t use_mg = 0;
  if (!reader.GetU32(&magic) || magic != kFcmMagic) return std::nullopt;
  if (!reader.GetU32(&config.width) || !reader.GetU32(&config.depth) ||
      !reader.GetU32(&config.mg_capacity) || !reader.GetU8(&use_mg) ||
      use_mg > 1 || !reader.GetU64(&config.seed)) {
    return std::nullopt;
  }
  config.use_mg_classifier = use_mg != 0;
  if (config.Validate().has_value()) return std::nullopt;
  uint64_t processed = 0;
  uint32_t hot_size = 0;
  if (!reader.GetU64(&processed) || !reader.GetU32(&hot_size)) {
    return std::nullopt;
  }
  Fcm sketch(config);
  if (hot_size > sketch.hot_ids_.size() ||
      hot_size > std::max<uint32_t>(1, config.mg_capacity)) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < hot_size; ++i) {
    if (!reader.GetU32(&sketch.hot_ids_[i])) return std::nullopt;
  }
  sketch.hot_size_ = hot_size;
  sketch.processed_ = processed;
  if (config.use_mg_classifier) {
    auto mg = MisraGries::DeserializeFrom(reader);
    if (!mg.has_value() || mg->capacity() != config.mg_capacity) {
      return std::nullopt;
    }
    sketch.mg_ = *std::move(mg);
  }
  std::vector<count_t> cells;
  if (!reader.GetPodVector(&cells) ||
      cells.size() !=
          static_cast<size_t>(config.width) * config.depth) {
    return std::nullopt;
  }
  sketch.cells_ = std::move(cells);
  return sketch;
}

void Fcm::Reset() {
  std::fill(cells_.begin(), cells_.end(), 0);
  mg_.Reset();
  processed_ = 0;
  hot_size_ = 0;
}

}  // namespace asketch
