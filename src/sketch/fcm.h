// Frequency-Aware Counting (FCM; Thomas, Bordawekar, Aggarwal, Yu,
// ICDE 2009), as described and evaluated in the ASketch paper.
//
// FCM improves Count-Min accuracy by (1) spreading keys over *subsets* of
// the w rows — two auxiliary hash functions give each key an `offset` and a
// `gap`, and the key uses rows offset, offset+gap, offset+2·gap, ... — and
// (2) using fewer rows for high-frequency keys (w/2) than for low-frequency
// keys (4w/5), so hot keys pollute fewer cells. A Misra–Gries counter
// classifies keys as hot or cold.
//
// Because the hot row subset is a prefix of the cold row subset, every row
// in a key's *hot* subset receives all of that key's updates regardless of
// how the key was classified over time, so estimates for keys that were
// never demoted stay one-sided. (A key that was hot and later demoted can
// be under-estimated through its cold-only rows — an inherent FCM property
// the paper inherits.)

#ifndef ASKETCH_SKETCH_FCM_H_
#define ASKETCH_SKETCH_FCM_H_

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/hashing.h"
#include "src/common/serialize.h"
#include "src/common/types.h"
#include "src/sketch/misra_gries.h"

namespace asketch {

/// Configuration for FCM.
struct FcmConfig {
  /// Total number of rows ("w"). Hot keys use ceil(w/2) rows, cold keys
  /// ceil(4w/5) rows, matching the parameters quoted in the paper.
  uint32_t width = 8;
  /// Cells per row ("h").
  uint32_t depth = 4096;
  /// Capacity of the Misra–Gries classifier (the paper sizes it to match
  /// the ASketch filter's item capacity for fairness).
  uint32_t mg_capacity = 32;
  /// When false the MG classifier is dropped and every key is treated as
  /// cold. The paper's real-data experiments use this variant because "the
  /// MG counter incurs a significant performance overhead" (§7.3).
  bool use_mg_classifier = true;
  uint64_t seed = 42;

  std::optional<std::string> Validate() const;

  /// Config whose cell storage plus MG counter fits `bytes`.
  static FcmConfig FromSpaceBudget(size_t bytes, uint32_t width,
                                   uint32_t mg_capacity, uint64_t seed = 42);
};

/// The FCM sketch.
class Fcm {
 public:
  explicit Fcm(const FcmConfig& config);

  /// Applies tuple (key, delta). Positive deltas feed the MG classifier;
  /// negative deltas (deletions) bypass it and update the key's current
  /// row subset.
  void Update(item_t key, delta_t delta = 1);

  /// Point query: min over the key's current row subset.
  count_t Estimate(item_t key) const;

  /// Fused Update + Estimate with a single round of hashing (the ASketch
  /// miss path). Equivalent to Update(key, delta); Estimate(key).
  count_t UpdateAndEstimate(item_t key, delta_t delta);

  /// Issues software prefetches for the cells `key` can hash to. The cold
  /// row subset is prefetched unconditionally — the hot subset is a
  /// prefix of the same row sequence, so this covers both
  /// classifications without consulting the MG counter.
  void Prefetch(item_t key) const {
    uint32_t offset, gap;
    OffsetGap(key, &offset, &gap);
    for (uint32_t i = 0; i < cold_rows_; ++i) {
      const uint32_t row = RowAt(offset, gap, i);
      __builtin_prefetch(&Cell(row, hashes_.Bucket(row, key)), 1, 3);
    }
  }

  /// Applies the tuples in order (bit-identical to the equivalent
  /// sequence of Update calls), prefetching a few tuples ahead.
  void UpdateBatch(std::span<const Tuple> tuples);

  void Reset();

  uint32_t width() const { return config_.width; }
  uint32_t depth() const { return config_.depth; }
  uint32_t hot_rows() const { return hot_rows_; }
  uint32_t cold_rows() const { return cold_rows_; }

  /// True if `key` is classified high-frequency. Classification is
  /// *sticky*: a key becomes hot once its Misra–Gries count exceeds the
  /// MG guarantee threshold N/(k+1) — i.e. it is provably heavy — and
  /// then stays hot. Stickiness matters for correctness: a key demoted
  /// after writing only its hot row subset would be under-estimated
  /// through the cold rows; with a monotone hot set, every key's estimate
  /// row subset receives all of its updates and stays one-sided.
  bool IsHot(item_t key) const {
    if (!config_.use_mg_classifier) return false;
    return FindKey(hot_ids_.data(), hot_ids_.size(), hot_size_, key) >= 0;
  }

  size_t MemoryUsageBytes() const {
    return cells_.size() * sizeof(count_t) +
           (config_.use_mg_classifier
                ? mg_.MemoryUsageBytes() +
                      config_.mg_capacity * sizeof(item_t)
                : 0);
  }

  /// True if `other` shares width, depth, seed, and classifier config.
  bool CompatibleWith(const Fcm& other) const;

  /// Adds `other`'s cells, merges the MG classifiers, and unions the
  /// sticky hot sets (a key hot on either side stays one-sided through
  /// the hot row prefix, which both sides always write).
  std::optional<std::string> MergeFrom(const Fcm& other);

  bool SerializeTo(BinaryWriter& writer) const;
  static std::optional<Fcm> DeserializeFrom(BinaryReader& reader);

  /// Snapshot-envelope payload tag (registry: src/common/snapshot.h).
  static constexpr uint32_t kSnapshotPayloadType = 3;

  std::string Name() const { return "FCM"; }

 private:
  /// Row visited at step `i` for a key with the given offset/gap.
  uint32_t RowAt(uint32_t offset, uint32_t gap, uint32_t i) const {
    return (offset + i * gap) % config_.width;
  }

  void OffsetGap(item_t key, uint32_t* offset, uint32_t* gap) const;

  count_t& Cell(uint32_t row, uint32_t bucket) {
    return cells_[static_cast<size_t>(row) * config_.depth + bucket];
  }
  const count_t& Cell(uint32_t row, uint32_t bucket) const {
    return cells_[static_cast<size_t>(row) * config_.depth + bucket];
  }

  FcmConfig config_;
  uint32_t hot_rows_;
  uint32_t cold_rows_;
  HashFamily hashes_;        // one bucket function per row
  PairwiseHash offset_hash_;
  PairwiseHash gap_hash_;
  std::vector<uint32_t> coprime_gaps_;  // values coprime with width
  MisraGries mg_;
  wide_count_t processed_ = 0;  // total positive count fed in (N)
  // Sticky hot set (ids padded to a SIMD block; capacity mg_capacity).
  std::vector<uint32_t> hot_ids_;
  uint32_t hot_size_ = 0;
  std::vector<count_t> cells_;
};

}  // namespace asketch

#endif  // ASKETCH_SKETCH_FCM_H_
