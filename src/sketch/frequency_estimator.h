// Common vocabulary for frequency estimators.
//
// Concrete sketches (CountMin, CountSketch, Fcm, ...) expose a non-virtual
// hot-path API and are composed through templates, so updates and queries
// inline fully. `FrequencyEstimator` is a thin runtime-polymorphic facade
// for code that wants to hold heterogeneous estimators (the examples do);
// `EstimatorAdapter<T>` wraps any concrete type into it.

#ifndef ASKETCH_SKETCH_FREQUENCY_ESTIMATOR_H_
#define ASKETCH_SKETCH_FREQUENCY_ESTIMATOR_H_

#include <concepts>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>

#include "src/common/types.h"

namespace asketch {

/// Compile-time contract satisfied by every concrete estimator in the
/// library. `Update` applies a signed delta (negative deltas model
/// deletions under the strict-turnstile assumption); `Estimate` returns the
/// approximate frequency of `key`.
template <typename T>
concept FrequencyEstimatorType =
    requires(T t, const T ct, item_t key, delta_t delta) {
      { t.Update(key, delta) };
      { ct.Estimate(key) } -> std::convertible_to<count_t>;
      { ct.MemoryUsageBytes() } -> std::convertible_to<size_t>;
      { t.Reset() };
    };

/// Runtime-polymorphic view of a frequency estimator.
class FrequencyEstimator {
 public:
  virtual ~FrequencyEstimator() = default;

  /// Applies tuple (key, delta) to the summary.
  virtual void Update(item_t key, delta_t delta) = 0;

  /// Point query: approximate frequency of `key`.
  virtual count_t Estimate(item_t key) const = 0;

  /// Total memory footprint of the summary in bytes.
  virtual size_t MemoryUsageBytes() const = 0;

  /// Clears all state, keeping configuration and hash functions.
  virtual void Reset() = 0;

  /// Human-readable name ("CountMin", "ASketch<RelaxedHeap,CountMin>", ...).
  virtual std::string Name() const = 0;
};

/// Wraps a concrete estimator into the virtual interface.
template <FrequencyEstimatorType T>
class EstimatorAdapter final : public FrequencyEstimator {
 public:
  explicit EstimatorAdapter(T impl, std::string name)
      : impl_(std::move(impl)), name_(std::move(name)) {}

  void Update(item_t key, delta_t delta) override { impl_.Update(key, delta); }
  count_t Estimate(item_t key) const override { return impl_.Estimate(key); }
  size_t MemoryUsageBytes() const override { return impl_.MemoryUsageBytes(); }
  void Reset() override { impl_.Reset(); }
  std::string Name() const override { return name_; }

  T& impl() { return impl_; }
  const T& impl() const { return impl_; }

 private:
  T impl_;
  std::string name_;
};

/// Convenience factory: wraps `impl` into a heap-allocated adapter.
template <FrequencyEstimatorType T>
std::unique_ptr<FrequencyEstimator> MakeEstimator(T impl, std::string name) {
  return std::make_unique<EstimatorAdapter<T>>(std::move(impl),
                                               std::move(name));
}

}  // namespace asketch

#endif  // ASKETCH_SKETCH_FREQUENCY_ESTIMATOR_H_
