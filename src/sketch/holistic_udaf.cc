#include "src/sketch/holistic_udaf.h"

#include <algorithm>

#include "src/common/bit_util.h"

namespace asketch {

std::optional<std::string> HolisticUdafConfig::Validate() const {
  if (table_capacity < 1) return "HolisticUdaf table capacity must be >= 1";
  return sketch.Validate();
}

HolisticUdafConfig HolisticUdafConfig::FromSpaceBudget(
    size_t bytes, uint32_t width, uint32_t table_capacity, uint64_t seed) {
  HolisticUdafConfig config;
  config.table_capacity = table_capacity;
  const size_t table_bytes =
      table_capacity * HolisticUdaf::TableBytesPerItem();
  const size_t sketch_bytes = bytes > table_bytes ? bytes - table_bytes : 0;
  config.sketch = CountMinConfig::FromSpaceBudget(sketch_bytes, width, seed);
  return config;
}

HolisticUdaf::HolisticUdaf(const HolisticUdafConfig& config)
    : config_(config), sketch_(config.sketch) {
  ASKETCH_CHECK(!config.Validate().has_value());
  const size_t padded = RoundUp(config_.table_capacity, kSimdBlockElements);
  ids_.assign(padded, 0);
  counts_.assign(padded, 0);
}

void HolisticUdaf::Update(item_t key, delta_t delta) {
  const int32_t slot = FindKey(ids_.data(), ids_.size(), size_, key);
  if (delta <= 0) {
    // Deletion: release the buffered count for this key first so the
    // combined subtraction happens entirely inside the sketch.
    if (slot >= 0) {
      sketch_.Update(key, static_cast<delta_t>(counts_[slot]));
      --size_;
      ids_[slot] = ids_[size_];
      counts_[slot] = counts_[size_];
    }
    sketch_.Update(key, delta);
    return;
  }
  if (slot >= 0) {
    counts_[slot] = SaturatingAdd(counts_[slot], delta);
    return;
  }
  if (size_ == config_.table_capacity) Flush();
  ids_[size_] = key;
  counts_[size_] = static_cast<count_t>(
      std::min<delta_t>(delta, ~count_t{0}));
  ++size_;
}

count_t HolisticUdaf::Estimate(item_t key) const {
  count_t est = sketch_.Estimate(key);
  const int32_t slot = FindKey(ids_.data(), ids_.size(), size_, key);
  if (slot >= 0) est = SaturatingAdd(est, counts_[slot]);
  return est;
}

void HolisticUdaf::Flush() {
  for (uint32_t i = 0; i < size_; ++i) {
    sketch_.Update(ids_[i], counts_[i]);
  }
  size_ = 0;
  ++flush_count_;
}

namespace {
constexpr uint32_t kHolisticUdafMagic = 0x31445548;  // "HUD1"
}  // namespace

bool HolisticUdaf::SerializeTo(BinaryWriter& writer) const {
  writer.PutU32(kHolisticUdafMagic);
  writer.PutU32(config_.table_capacity);
  writer.PutU64(flush_count_);
  writer.PutU32(size_);
  for (uint32_t i = 0; i < size_; ++i) {
    writer.PutU32(ids_[i]);
    writer.PutU32(counts_[i]);
  }
  return sketch_.SerializeTo(writer) && writer.ok();
}

std::optional<HolisticUdaf> HolisticUdaf::DeserializeFrom(
    BinaryReader& reader) {
  uint32_t magic = 0, table_capacity = 0, size = 0;
  uint64_t flush_count = 0;
  if (!reader.GetU32(&magic) || magic != kHolisticUdafMagic) {
    return std::nullopt;
  }
  if (!reader.GetU32(&table_capacity) || table_capacity < 1 ||
      table_capacity > kMaxSerializedCapacity ||
      !reader.GetU64(&flush_count) || !reader.GetU32(&size) ||
      size > table_capacity) {
    return std::nullopt;
  }
  std::vector<uint32_t> ids(size), counts(size);
  for (uint32_t i = 0; i < size; ++i) {
    if (!reader.GetU32(&ids[i]) || !reader.GetU32(&counts[i])) {
      return std::nullopt;
    }
  }
  auto sketch = CountMin::DeserializeFrom(reader);
  if (!sketch.has_value()) return std::nullopt;
  HolisticUdafConfig config;
  config.table_capacity = table_capacity;
  config.sketch = sketch->config();
  HolisticUdaf udaf(config);
  udaf.sketch_ = *std::move(sketch);
  udaf.flush_count_ = flush_count;
  udaf.size_ = size;
  for (uint32_t i = 0; i < size; ++i) {
    udaf.ids_[i] = ids[i];
    udaf.counts_[i] = counts[i];
  }
  return udaf;
}

void HolisticUdaf::Reset() {
  sketch_.Reset();
  size_ = 0;
  flush_count_ = 0;
}

}  // namespace asketch
