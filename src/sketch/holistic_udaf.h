// Holistic UDAFs at streaming speeds (Cormode, Johnson, Korn,
// Muthukrishnan, Spatscheck, Srivastava, SIGMOD 2004) — the
// early-aggregation baseline of the ASketch paper.
//
// Incoming tuples are aggregated in a small "low-level" table; when a new
// key arrives and the table is full, the whole table is flushed into an
// underlying Count-Min sketch and refilled. Unlike the ASketch filter, the
// low-level table is a write-through buffer: it has no notion of hot items
// and cannot answer queries alone — a point query must consult the sketch
// (plus any counts still buffered, to preserve the one-sided guarantee).

#ifndef ASKETCH_SKETCH_HOLISTIC_UDAF_H_
#define ASKETCH_SKETCH_HOLISTIC_UDAF_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/serialize.h"
#include "src/common/simd_scan.h"
#include "src/common/types.h"
#include "src/sketch/count_min.h"

namespace asketch {

/// Configuration for HolisticUdaf.
struct HolisticUdafConfig {
  /// Item capacity of the low-level aggregation table (the paper sizes it
  /// to match the ASketch filter's item capacity).
  uint32_t table_capacity = 32;
  /// Underlying Count-Min configuration.
  CountMinConfig sketch;

  std::optional<std::string> Validate() const;

  /// Config whose table plus sketch cells fit `bytes`.
  static HolisticUdafConfig FromSpaceBudget(size_t bytes, uint32_t width,
                                            uint32_t table_capacity,
                                            uint64_t seed = 42);
};

/// The Holistic-UDAF estimator: aggregation table over Count-Min.
class HolisticUdaf {
 public:
  explicit HolisticUdaf(const HolisticUdafConfig& config);

  /// Applies tuple (key, delta). Positive deltas aggregate in the table;
  /// negative deltas (deletions) are pushed straight to the sketch after
  /// flushing the key's buffered count, which keeps estimates one-sided.
  void Update(item_t key, delta_t delta = 1);

  /// Point query: sketch estimate plus any count still buffered for `key`.
  count_t Estimate(item_t key) const;

  /// Flushes all buffered counts into the sketch and clears the table.
  void Flush();

  void Reset();

  /// Number of table flushes so far (the §7 experiments attribute the
  /// method's low-skew slowdown to excessive flushing).
  uint64_t flush_count() const { return flush_count_; }

  uint32_t table_capacity() const { return config_.table_capacity; }
  const CountMin& sketch() const { return sketch_; }

  /// Bytes per buffered item (id + count).
  static constexpr size_t TableBytesPerItem() {
    return sizeof(item_t) + sizeof(count_t);
  }

  size_t MemoryUsageBytes() const {
    return config_.table_capacity * TableBytesPerItem() +
           sketch_.MemoryUsageBytes();
  }

  bool SerializeTo(BinaryWriter& writer) const;
  static std::optional<HolisticUdaf> DeserializeFrom(BinaryReader& reader);

  /// Snapshot-envelope payload tag (registry: src/common/snapshot.h).
  static constexpr uint32_t kSnapshotPayloadType = 6;

  std::string Name() const { return "HolisticUDAF"; }

 private:
  HolisticUdafConfig config_;
  CountMin sketch_;
  uint32_t size_ = 0;
  uint64_t flush_count_ = 0;
  // Parallel arrays, capacity padded to a SIMD block multiple.
  std::vector<uint32_t> ids_;
  std::vector<count_t> counts_;
};

}  // namespace asketch

#endif  // ASKETCH_SKETCH_HOLISTIC_UDAF_H_
