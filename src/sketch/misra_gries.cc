#include "src/sketch/misra_gries.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/bit_util.h"

namespace asketch {

MisraGries::MisraGries(uint32_t capacity) : capacity_(capacity) {
  ASKETCH_CHECK(capacity >= 1);
  const size_t padded = RoundUp(capacity, kSimdBlockElements);
  ids_.assign(padded, 0);
  counts_.assign(padded, 0);
}

void MisraGries::Update(item_t key, count_t weight) {
  ASKETCH_CHECK(weight >= 1);
  const int32_t slot = FindKey(ids_.data(), ids_.size(), size_, key);
  if (slot >= 0) {
    counts_[slot] = SaturatingAdd(counts_[slot], weight);
    return;
  }
  if (size_ < capacity_) {
    ids_[size_] = key;
    counts_[size_] = weight;
    ++size_;
    return;
  }
  // Summary full and key absent: decrement all counters by the largest
  // amount that keeps them non-negative (min(weight, smallest counter)),
  // then compact away zeroed entries. Classic MG uses weight == 1; the
  // weighted generalization decrements by the full residual iteratively.
  count_t remaining = weight;
  while (remaining > 0) {
    const size_t min_slot = MinIndex(counts_.data(), counts_.size(), size_);
    const count_t step = std::min(remaining, counts_[min_slot]);
    if (step == 0) break;  // defensive: a zero counter should not persist
    for (uint32_t i = 0; i < size_; ++i) counts_[i] -= step;
    remaining -= step;
    // Compact zeroed entries (swap-with-last keeps the arrays dense).
    for (uint32_t i = 0; i < size_;) {
      if (counts_[i] == 0) {
        --size_;
        ids_[i] = ids_[size_];
        counts_[i] = counts_[size_];
      } else {
        ++i;
      }
    }
    if (remaining > 0 && size_ < capacity_) {
      ids_[size_] = key;
      counts_[size_] = remaining;
      ++size_;
      return;
    }
    if (size_ == 0) return;  // the whole residual was absorbed by decrements
  }
}

void MisraGries::MergeFrom(const MisraGries& other) {
  // Gather the union with summed counts.
  std::vector<std::pair<item_t, count_t>> merged;
  merged.reserve(size_ + other.size_);
  for (uint32_t i = 0; i < size_; ++i) {
    merged.emplace_back(ids_[i], counts_[i]);
  }
  other.ForEach([this, &merged](item_t key, count_t count) {
    const int32_t slot = FindKey(ids_.data(), ids_.size(), size_, key);
    if (slot >= 0) {
      merged[slot].second = SaturatingAdd(merged[slot].second, count);
    } else {
      merged.emplace_back(key, count);
    }
  });
  if (merged.size() > capacity_) {
    // Subtract the (capacity+1)-th largest count from everyone and drop
    // the non-positive remainder — the mergeable-summaries step that
    // preserves the MG error bound.
    std::nth_element(
        merged.begin(), merged.begin() + capacity_, merged.end(),
        [](const auto& a, const auto& b) { return a.second > b.second; });
    const count_t pivot = merged[capacity_].second;
    std::vector<std::pair<item_t, count_t>> kept;
    kept.reserve(capacity_);
    for (const auto& [key, count] : merged) {
      if (count > pivot) kept.emplace_back(key, count - pivot);
    }
    merged = std::move(kept);
  }
  ASKETCH_CHECK(merged.size() <= capacity_);
  size_ = static_cast<uint32_t>(merged.size());
  for (uint32_t i = 0; i < size_; ++i) {
    ids_[i] = merged[i].first;
    counts_[i] = merged[i].second;
  }
}

namespace {
constexpr uint32_t kMisraGriesMagic = 0x3147534d;  // "MSG1"
}  // namespace

bool MisraGries::SerializeTo(BinaryWriter& writer) const {
  writer.PutU32(kMisraGriesMagic);
  writer.PutU32(capacity_);
  writer.PutU32(size_);
  for (uint32_t i = 0; i < size_; ++i) {
    writer.PutU32(ids_[i]);
    writer.PutU32(counts_[i]);
  }
  return writer.ok();
}

std::optional<MisraGries> MisraGries::DeserializeFrom(
    BinaryReader& reader) {
  uint32_t magic = 0, capacity = 0, size = 0;
  if (!reader.GetU32(&magic) || magic != kMisraGriesMagic) {
    return std::nullopt;
  }
  if (!reader.GetU32(&capacity) || capacity < 1 ||
      capacity > kMaxSerializedCapacity ||
      !reader.GetU32(&size) || size > capacity) {
    return std::nullopt;
  }
  MisraGries mg(capacity);
  for (uint32_t i = 0; i < size; ++i) {
    uint32_t key = 0, count = 0;
    if (!reader.GetU32(&key) || !reader.GetU32(&count)) {
      return std::nullopt;
    }
    mg.ids_[i] = key;
    mg.counts_[i] = count;
  }
  mg.size_ = size;
  return mg;
}

}  // namespace asketch
