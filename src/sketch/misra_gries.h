// Misra–Gries frequent-items counter (Misra & Gries, 1982).
//
// Maintains at most k (key, count) pairs. An arrival of a monitored key
// increments its counter; an arrival with free capacity inserts the key;
// otherwise every counter is decremented and zeroed entries are evicted.
// Any key with true frequency > N/(k+1) is guaranteed to be monitored.
//
// In this library the MG counter is the frequency classifier inside FCM
// (Frequency-Aware Counting): keys currently monitored are treated as
// high-frequency. Lookups use the same SIMD linear scan as the ASketch
// filter, per the paper's fairness setup in §7.1.

#ifndef ASKETCH_SKETCH_MISRA_GRIES_H_
#define ASKETCH_SKETCH_MISRA_GRIES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/serialize.h"
#include "src/common/simd_scan.h"
#include "src/common/types.h"

namespace asketch {

/// Fixed-capacity Misra–Gries summary over uint32 keys.
class MisraGries {
 public:
  /// Creates a summary monitoring at most `capacity` keys (>= 1).
  explicit MisraGries(uint32_t capacity);

  /// Processes `weight` arrivals of `key` (weight >= 1).
  void Update(item_t key, count_t weight = 1);

  /// True if `key` is currently monitored (the FCM "high-frequency" test).
  bool Contains(item_t key) const {
    return FindKey(ids_.data(), ids_.size(), size_, key) >= 0;
  }

  /// Monitored count of `key` (a lower bound on its true frequency minus
  /// the decrement error), or 0 if not monitored.
  count_t CountOf(item_t key) const {
    const int32_t slot = FindKey(ids_.data(), ids_.size(), size_, key);
    return slot < 0 ? 0 : counts_[slot];
  }

  uint32_t size() const { return size_; }
  uint32_t capacity() const { return capacity_; }

  /// Bytes per monitored item (id + count), used for space budgeting.
  static constexpr size_t BytesPerItem() {
    return sizeof(item_t) + sizeof(count_t);
  }
  size_t MemoryUsageBytes() const { return capacity_ * BytesPerItem(); }

  void Reset() { size_ = 0; }

  /// Merges `other` into this summary using the mergeable-summaries
  /// construction (Agarwal et al.): counts of shared keys add; if the
  /// union exceeds capacity, the (capacity+1)-th largest count is
  /// subtracted from every entry and non-positive entries are dropped.
  /// The merged summary keeps the MG error bound over the union stream.
  void MergeFrom(const MisraGries& other);

  bool SerializeTo(BinaryWriter& writer) const;
  static std::optional<MisraGries> DeserializeFrom(BinaryReader& reader);

  /// Snapshot-envelope payload tag (registry: src/common/snapshot.h).
  static constexpr uint32_t kSnapshotPayloadType = 4;

  /// Visits all monitored (key, count) pairs.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint32_t i = 0; i < size_; ++i) fn(ids_[i], counts_[i]);
  }

 private:
  uint32_t capacity_;
  uint32_t size_ = 0;
  // Parallel arrays, capacity padded to a SIMD block multiple.
  std::vector<uint32_t> ids_;
  std::vector<count_t> counts_;
};

}  // namespace asketch

#endif  // ASKETCH_SKETCH_MISRA_GRIES_H_
