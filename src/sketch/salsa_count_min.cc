#include "src/sketch/salsa_count_min.h"

#include <utility>

#include "src/obs/core_metrics.h"

// Store discipline (see the header's concurrency note): in-level counter
// stores go through RelaxedStore — monotone cells under insertions, same
// argument as CountMin. Anything that changes the *layout* (merge bits,
// the widened counter's initial value, Reset/AdoptFrom/MergeFrom
// rebuilds) uses ReleaseStores inside a SeqWriteSection on the merge
// epoch, so a concurrent EstimateRelaxed either validates a stable
// layout or retries.

namespace asketch {

namespace {
constexpr uint32_t kSalsaMagic = 0x31534c53u;  // "SLS1"

size_t BitmapWords(size_t bits) { return (bits + 63) / 64; }
}  // namespace

std::optional<std::string> SalsaConfig::Validate() const {
  if (width < 1) return "Salsa width (number of rows) must be >= 1";
  if (width > 64) {
    return "Salsa width (number of rows) must be <= 64 (the prepared "
           "update path stages one bucket per row in a fixed block)";
  }
  if (depth < 4) return "Salsa depth (counters per row) must be >= 4";
  if (depth % 4 != 0) {
    return "Salsa depth must be a multiple of 4 (counters merge in "
           "aligned pairs and quads)";
  }
  return std::nullopt;
}

SalsaConfig SalsaConfig::FromSpaceBudget(size_t bytes, uint32_t width,
                                         uint64_t seed) {
  SalsaConfig config;
  config.width = std::max<uint32_t>(1, std::min<uint32_t>(width, 64));
  config.seed = seed;
  // Row cost: depth counter bytes + depth/16 pair-bitmap bytes +
  // depth/32 quad-bitmap bytes = depth·35/32.
  const size_t per_row = bytes / config.width;
  size_t depth = per_row * 32 / 35;
  depth &= ~size_t{3};
  depth = std::max<size_t>(4, depth);
  depth = std::min<size_t>(depth, (uint64_t{1} << 32) - 4);
  config.depth = static_cast<uint32_t>(depth);
  return config;
}

SalsaCountMin::SalsaCountMin(const SalsaConfig& config) : config_(config) {
  ASKETCH_CHECK(!config.Validate().has_value());
  hashes_ = HashFamily(config_.width, config_.depth, config_.seed);
  const size_t cells = static_cast<size_t>(config_.width) * config_.depth;
  words_.assign(cells / 4, 0);
  pair_bits_.assign(BitmapWords(cells / 2), 0);
  quad_bits_.assign(BitmapWords(cells / 4), 0);
}

count_t SalsaCountMin::ReadAtLevel(size_t cell, Level level) const {
  switch (level) {
    case Level::k8:
      return bytes()[cell];
    case Level::k16:
      return *reinterpret_cast<const uint16_t*>(bytes() +
                                                (cell & ~size_t{1}));
    case Level::k32:
      return words_[cell >> 2];
  }
  return 0;
}

count_t SalsaCountMin::ReadBucketAcquire(size_t cell) const {
  if (TestBitAcquire(quad_bits_, cell >> 2)) {
    return AcquireLoad(words_[cell >> 2]);
  }
  if (TestBitAcquire(pair_bits_, cell >> 1)) {
    return AcquireLoad(*reinterpret_cast<const uint16_t*>(
        bytes() + (cell & ~size_t{1})));
  }
  return AcquireLoad(bytes()[cell]);
}

void SalsaCountMin::StoreAtLevel(size_t cell, Level level, count_t value) {
  switch (level) {
    case Level::k8:
      RelaxedStore(bytes()[cell], static_cast<uint8_t>(value));
      return;
    case Level::k16:
      RelaxedStore(
          *reinterpret_cast<uint16_t*>(bytes() + (cell & ~size_t{1})),
          static_cast<uint16_t>(value));
      return;
    case Level::k32:
      RelaxedStore(words_[cell >> 2], value);
      return;
  }
}

void SalsaCountMin::MergeUpLocked(size_t cell, Level level) {
  ASKETCH_TELEMETRY_ONLY(obs::SalsaMetrics& metrics =
                             obs::SalsaMetrics::Get();)
  if (level == Level::k8) {
    const size_t pair = cell & ~size_t{1};
    // Max of the parts: each byte already upper-bounds every key hashed
    // into it, and the shared counter upper-bounds both — one-sidedness
    // is preserved at the cost of the neighbor's collisions.
    const count_t merged =
        std::max<count_t>(bytes()[pair], bytes()[pair + 1]);
    SetBitRelease(pair_bits_, pair >> 1);
    ReleaseStore(*reinterpret_cast<uint16_t*>(bytes() + pair),
                 static_cast<uint16_t>(merged));
    ASKETCH_TELEMETRY_ONLY({
      metrics.pair_merges.Add(1);
      metrics.counters_lost.Add(1);
    })
    return;
  }
  // 16 -> 32: the whole aligned quad collapses into one counter. The
  // sibling half-pair may still be two 8-bit counters; read every part
  // at its own current level and take the max.
  const size_t quad = cell & ~size_t{3};
  count_t merged = 0;
  uint64_t parts = 0;
  for (size_t half = quad; half < quad + 4; half += 2) {
    if (TestBit(pair_bits_, half >> 1)) {
      merged = std::max(merged, ReadAtLevel(half, Level::k16));
      parts += 1;
    } else {
      merged = std::max<count_t>(merged, bytes()[half]);
      merged = std::max<count_t>(merged, bytes()[half + 1]);
      parts += 2;
    }
  }
  SetBitRelease(quad_bits_, quad >> 2);
  ReleaseStore(words_[quad >> 2], merged);
  ASKETCH_TELEMETRY_ONLY({
    metrics.quad_merges.Add(1);
    metrics.counters_lost.Add(parts - 1);
  })
}

count_t SalsaCountMin::AddAt(size_t cell, delta_t delta) {
  for (;;) {
    const Level level = LevelAt(cell);
    const count_t cap = CapOf(level);
    const count_t cur = ReadAtLevel(cell, level);
    int64_t next = static_cast<int64_t>(cur) + delta;
    if (next < 0) next = 0;
    if (next <= static_cast<int64_t>(cap)) {
      StoreAtLevel(cell, level, static_cast<count_t>(next));
      return static_cast<count_t>(next);
    }
    if (level == Level::k32) {
      // Top level: saturate like CountMin instead of wrapping.
      StoreAtLevel(cell, level, ~count_t{0});
      return ~count_t{0};
    }
    SeqWriteSection section(epoch_);
    MergeUpLocked(cell, level);
  }
}

void SalsaCountMin::Update(item_t key, delta_t delta) {
  for (uint32_t row = 0; row < config_.width; ++row) {
    AddAt(CellIndex(row, hashes_.Bucket(row, key)), delta);
  }
}

count_t SalsaCountMin::UpdateAndEstimate(item_t key, delta_t delta) {
  count_t est = std::numeric_limits<count_t>::max();
  for (uint32_t row = 0; row < config_.width; ++row) {
    est = std::min(est,
                   AddAt(CellIndex(row, hashes_.Bucket(row, key)), delta));
  }
  return est;
}

void SalsaCountMin::UpdateAt(const uint32_t* buckets, delta_t delta,
                             size_t stride) {
  for (uint32_t row = 0; row < config_.width; ++row) {
    AddAt(CellIndex(row, buckets[row * stride]), delta);
  }
}

count_t SalsaCountMin::UpdateAndEstimateAt(const uint32_t* buckets,
                                           delta_t delta, size_t stride) {
  count_t est = std::numeric_limits<count_t>::max();
  for (uint32_t row = 0; row < config_.width; ++row) {
    est = std::min(est, AddAt(CellIndex(row, buckets[row * stride]), delta));
  }
  return est;
}

void SalsaCountMin::UpdateBatch(std::span<const Tuple> tuples) {
  // Same chunked two-phase ingestion as CountMin::UpdateBatch: hash a
  // chunk with the vectorized multi-key kernel, then apply in order.
  constexpr size_t kChunk = 16;
  const size_t n = tuples.size();
  const uint32_t w = config_.width;
  std::vector<uint32_t> buckets(kChunk * w);
  item_t keys[kChunk];
  for (size_t begin = 0; begin < n; begin += kChunk) {
    const size_t count = std::min(kChunk, n - begin);
    for (size_t i = 0; i < count; ++i) keys[i] = tuples[begin + i].key;
    PrepareUpdateBatch(keys, count, buckets.data());
    for (size_t i = 0; i < count; ++i) {
      UpdateAt(&buckets[i], static_cast<delta_t>(tuples[begin + i].value),
               count);
    }
  }
}

count_t SalsaCountMin::Estimate(item_t key) const {
  count_t est = std::numeric_limits<count_t>::max();
  for (uint32_t row = 0; row < config_.width; ++row) {
    est = std::min(est, ReadBucket(CellIndex(row, hashes_.Bucket(row, key))));
  }
  return est;
}

void SalsaCountMin::Reset() {
  SeqWriteSection section(epoch_);
  for (uint64_t& word : quad_bits_) ReleaseStore(word, uint64_t{0});
  for (uint64_t& word : pair_bits_) ReleaseStore(word, uint64_t{0});
  for (uint32_t& word : words_) ReleaseStore(word, 0u);
}

uint64_t SalsaCountMin::MergedPairs() const {
  uint64_t merged = 0;
  for (const uint64_t word : pair_bits_) {
    merged += static_cast<uint64_t>(__builtin_popcountll(word));
  }
  return merged;
}

uint64_t SalsaCountMin::MergedQuads() const {
  uint64_t merged = 0;
  for (const uint64_t word : quad_bits_) {
    merged += static_cast<uint64_t>(__builtin_popcountll(word));
  }
  return merged;
}

uint64_t SalsaCountMin::LogicalCounters() const {
  const size_t cells = static_cast<size_t>(config_.width) * config_.depth;
  uint64_t logical = 0;
  for (size_t quad = 0; quad < cells; quad += 4) {
    if (TestBit(quad_bits_, quad >> 2)) {
      logical += 1;
      continue;
    }
    for (size_t half = quad; half < quad + 4; half += 2) {
      logical += TestBit(pair_bits_, half >> 1) ? 1 : 2;
    }
  }
  return logical;
}

bool SalsaCountMin::CompatibleWith(const SalsaCountMin& other) const {
  return config_.width == other.config_.width &&
         config_.depth == other.config_.depth &&
         config_.seed == other.config_.seed;
}

void SalsaCountMin::AdoptFrom(SalsaCountMin&& other) {
  ASKETCH_CHECK(CanAdoptFrom(other));
  SeqWriteSection section(epoch_);
  for (size_t i = 0; i < quad_bits_.size(); ++i) {
    ReleaseStore(quad_bits_[i], other.quad_bits_[i]);
  }
  for (size_t i = 0; i < pair_bits_.size(); ++i) {
    ReleaseStore(pair_bits_[i], other.pair_bits_[i]);
  }
  for (size_t i = 0; i < words_.size(); ++i) {
    ReleaseStore(words_[i], other.words_[i]);
  }
}

void SalsaCountMin::EnsureAtLeastLocked(size_t cell, count_t target) {
  for (;;) {
    const Level level = LevelAt(cell);
    const count_t cur = ReadAtLevel(cell, level);
    if (target <= cur) return;
    if (target <= CapOf(level)) {
      // Release (not relaxed): runs inside rebuild sections whose
      // intermediate states must stay invisible to validated readers.
      switch (level) {
        case Level::k8:
          ReleaseStore(bytes()[cell], static_cast<uint8_t>(target));
          return;
        case Level::k16:
          ReleaseStore(
              *reinterpret_cast<uint16_t*>(bytes() + (cell & ~size_t{1})),
              static_cast<uint16_t>(target));
          return;
        case Level::k32:
          ReleaseStore(words_[cell >> 2], target);
          return;
      }
    }
    MergeUpLocked(cell, level);
  }
}

std::optional<std::string> SalsaCountMin::MergeFrom(
    const SalsaCountMin& other) {
  if (!CompatibleWith(other)) {
    return "SalsaCountMin::MergeFrom: incompatible configs "
           "(width/depth/seed must match)";
  }
  // Per-bucket targets at the *old* layouts: the union stream's count of
  // any key hashed into bucket i is at most Read_this(i) + Read_other(i).
  const size_t cells = static_cast<size_t>(config_.width) * config_.depth;
  // Delta-aware fast path: deltas from short ingest epochs leave most of
  // `other`'s buckets zero. Gather only the touched buckets and raise
  // them in place (EnsureAtLeastLocked merges layouts up as needed) —
  // no zeroing, no re-raising of the untouched majority. Raising in
  // place can only leave the layout finer than the full rebuild would,
  // never a reading below its target, so the one-sided bound is the
  // same. Dense merges keep the rebuild for its layout compaction.
  std::vector<std::pair<uint32_t, count_t>> sparse;
  bool is_sparse = true;
  for (size_t cell = 0; cell < cells; ++cell) {
    const count_t add = other.ReadBucket(cell);
    if (add == 0) continue;
    const uint64_t sum = static_cast<uint64_t>(ReadBucket(cell)) + add;
    sparse.emplace_back(static_cast<uint32_t>(cell),
                        sum > ~count_t{0} ? ~count_t{0}
                                          : static_cast<count_t>(sum));
    if (sparse.size() > cells / 4) {
      is_sparse = false;
      break;
    }
  }
  if (is_sparse) {
    SeqWriteSection section(epoch_);
    for (const auto& [cell, target] : sparse) {
      EnsureAtLeastLocked(cell, target);
    }
    return std::nullopt;
  }
  std::vector<count_t> targets(cells);
  for (size_t cell = 0; cell < cells; ++cell) {
    const uint64_t sum = static_cast<uint64_t>(ReadBucket(cell)) +
                         other.ReadBucket(cell);
    targets[cell] = sum > ~count_t{0} ? ~count_t{0}
                                      : static_cast<count_t>(sum);
  }
  // Rebuild from scratch inside one epoch section: start at the 8-bit
  // layout and let the targets drive the merges, so the merged sketch is
  // no coarser than the targets demand.
  SeqWriteSection section(epoch_);
  for (uint64_t& word : quad_bits_) ReleaseStore(word, uint64_t{0});
  for (uint64_t& word : pair_bits_) ReleaseStore(word, uint64_t{0});
  for (uint32_t& word : words_) ReleaseStore(word, 0u);
  for (size_t cell = 0; cell < cells; ++cell) {
    EnsureAtLeastLocked(cell, targets[cell]);
  }
  return std::nullopt;
}

bool SalsaCountMin::SerializeTo(BinaryWriter& writer) const {
  writer.PutU32(kSalsaMagic);
  writer.PutU32(config_.width);
  writer.PutU32(config_.depth);
  writer.PutU64(config_.seed);
  writer.PutPodVector(words_);
  writer.PutPodVector(pair_bits_);
  writer.PutPodVector(quad_bits_);
  return writer.ok();
}

std::optional<SalsaCountMin> SalsaCountMin::DeserializeFrom(
    BinaryReader& reader) {
  uint32_t magic = 0;
  SalsaConfig config;
  if (!reader.GetU32(&magic) || magic != kSalsaMagic) return std::nullopt;
  if (!reader.GetU32(&config.width) || !reader.GetU32(&config.depth) ||
      !reader.GetU64(&config.seed)) {
    return std::nullopt;
  }
  if (config.Validate().has_value()) return std::nullopt;
  const size_t cells =
      static_cast<size_t>(config.width) * config.depth;
  std::vector<uint32_t> words;
  std::vector<uint64_t> pair_bits;
  std::vector<uint64_t> quad_bits;
  if (!reader.GetPodVector(&words) || words.size() != cells / 4 ||
      !reader.GetPodVector(&pair_bits) ||
      pair_bits.size() != BitmapWords(cells / 2) ||
      !reader.GetPodVector(&quad_bits) ||
      quad_bits.size() != BitmapWords(cells / 4)) {
    return std::nullopt;
  }
  SalsaCountMin sketch(config);
  sketch.words_ = std::move(words);
  sketch.pair_bits_ = std::move(pair_bits);
  sketch.quad_bits_ = std::move(quad_bits);
  return sketch;
}

}  // namespace asketch
