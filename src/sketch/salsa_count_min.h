// SALSA-style self-adjusting Count-Min (Ben Basat, Chen, Einziger,
// Friedman, Scalosub — "SALSA: Self-Adjusting Lean Streaming Analytics",
// ICDE 2021), specialized to the Count-Min estimator this library serves.
//
// A plain Count-Min spends a full 32-bit cell on every bucket, but under
// ASketch's pre-filter the sketch only ever sees the tail of the
// distribution — almost every cell stays tiny. SalsaCountMin therefore
// backs each row with packed 8-bit counters and lets a counter that
// overflows *merge* with its aligned neighbor into one 16-bit counter
// (and an overflowing 16-bit pair into one 32-bit counter). Merging is
// recorded in two per-sketch bitmaps (one bit per aligned pair, one per
// aligned quad); the merged counter's value is the maximum of its parts,
// which keeps every cell an upper bound for every key hashed into it —
// the one-sided never-underestimate guarantee survives, only the
// collision rate of the few merged buckets grows. At equal byte budget
// the row gains ~3.7x the buckets of a 32-bit Count-Min (the two bitmaps
// cost 3/32 of the counter bytes), which is exactly the accuracy-per-byte
// trade the bench_salsa_accuracy sweep measures.
//
// Concurrency (DESIGN.md §5c): between merge events the sketch behaves
// like Count-Min — single-writer relaxed atomic stores into cells that
// are monotone non-decreasing on insert-only streams, so concurrent
// relaxed reads stay one-sided. A merge event changes the *layout* (a
// reader that loads the bitmaps before a merge and the counter bytes
// after it would decode garbage), so merges run inside a single-writer
// seqlock section on a sketch-wide merge epoch: EstimateRelaxed
// validates the epoch around its row loads and retries the rare torn
// scan. Total merges are bounded by 3/4 of the buckets for the sketch's
// lifetime (each bucket merges at most twice), so retries vanish once
// the layout converges.
//
// Deletions: negative deltas clamp at zero within the current counter
// layout. On merged counters a deletion for one resident key lowers the
// shared upper bound of its merge-neighbors too, so the one-sided
// guarantee only holds for insert-only streams once merging has begun
// (the serving wire path is insert-only; Tuple weights are unsigned).

#ifndef ASKETCH_SKETCH_SALSA_COUNT_MIN_H_
#define ASKETCH_SKETCH_SALSA_COUNT_MIN_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/atomic_util.h"
#include "src/common/check.h"
#include "src/common/hashing.h"
#include "src/common/serialize.h"
#include "src/common/types.h"
#include "src/filter/seqlock.h"

namespace asketch {

/// Configuration for SalsaCountMin. `width` is the number of rows,
/// `depth` the number of 8-bit starting counters per row (a multiple of
/// 4, so every counter belongs to one aligned pair and one aligned quad).
struct SalsaConfig {
  uint32_t width = 8;
  uint32_t depth = 16384;
  uint64_t seed = 42;

  /// Returns an error message if invalid, std::nullopt otherwise.
  std::optional<std::string> Validate() const;

  /// Config with `width` rows whose counters *and* merge bitmaps fit
  /// `bytes`: a row of h 8-bit counters carries h/16 bytes of pair bits
  /// and h/32 bytes of quad bits, so depth = (bytes/width)·32/35 rounded
  /// down to a multiple of 4 (min 4). A zero width is treated as 1.
  static SalsaConfig FromSpaceBudget(size_t bytes, uint32_t width,
                                     uint64_t seed = 42);
};

/// Count-Min with SALSA neighbor-merging counters.
class SalsaCountMin {
 public:
  /// Constructs from a validated config (CHECK-fails on invalid configs;
  /// call config.Validate() first for recoverable handling).
  explicit SalsaCountMin(const SalsaConfig& config);

  /// Applies tuple (key, delta). See the file comment for the deletion
  /// caveat on merged counters.
  void Update(item_t key, delta_t delta = 1);

  /// Point query: min over the hashed buckets, each read at its current
  /// merge level. Never under-estimates on insert-only streams.
  count_t Estimate(item_t key) const;

  /// Point query safe against a concurrent updater. In-level counter
  /// stores are relaxed atomics over monotone cells (the Count-Min
  /// argument); layout changes (merges) run inside a seqlock section on
  /// the sketch-wide merge epoch, which this validates around its row
  /// loads — a scan torn by a merge is discarded and retried.
  count_t EstimateRelaxed(item_t key) const {
    for (uint64_t attempt = 0;; ++attempt) {
      const uint32_t begin = epoch_.ReadBegin();
      if ((begin & 1) == 0) {
        count_t est = std::numeric_limits<count_t>::max();
        for (uint32_t row = 0; row < config_.width; ++row) {
          est = std::min(
              est, ReadBucketAcquire(CellIndex(row,
                                               hashes_.Bucket(row, key))));
        }
        if (epoch_.ReadValidate(begin)) return est;
      }
      SeqRetryBackoff(attempt);
    }
  }

  /// Update(key, delta) followed by Estimate(key), hashing only once.
  count_t UpdateAndEstimate(item_t key, delta_t delta);

  /// Software prefetch of the w counter bytes `key` hashes to.
  void Prefetch(item_t key) const {
    for (uint32_t row = 0; row < config_.width; ++row) {
      __builtin_prefetch(bytes() + CellIndex(row, hashes_.Bucket(row, key)),
                         1, 3);
    }
  }

  /// Same threshold as CountMin::kPrefetchMinBytes: below it the sketch
  /// is cache-resident and prefetching is pure overhead.
  static constexpr size_t kPrefetchMinBytes = size_t{2} << 20;

  /// Records the bucket `key` hashes to in every row into
  /// buckets[0..width()) and prefetches the counters (the prepared-batch
  /// protocol shared with CountMin; buckets depend only on the hash
  /// seeds and stay valid for the sketch's lifetime).
  void PrepareUpdate(item_t key, uint32_t* buckets) const {
    for (uint32_t row = 0; row < config_.width; ++row) {
      buckets[row] = hashes_.Bucket(row, key);
      __builtin_prefetch(bytes() + CellIndex(row, buckets[row]), 1, 3);
    }
  }

  /// PrepareUpdate for `count` keys at once, row-major (stride `count`),
  /// hashed with the vectorized multi-key kernel.
  void PrepareUpdateBatch(const item_t* keys, size_t count,
                          uint32_t* buckets) const {
    hashes_.BucketsForKeys(keys, count, buckets, count);
    if (MemoryUsageBytes() > kPrefetchMinBytes) {
      for (uint32_t row = 0; row < config_.width; ++row) {
        for (size_t k = 0; k < count; ++k) {
          __builtin_prefetch(
              bytes() + CellIndex(row, buckets[row * count + k]), 1, 3);
        }
      }
    }
  }

  /// Update(key, delta) through prepared buckets (row r's bucket at
  /// buckets[r*stride]). Bit-identical effect, no second hash pass.
  void UpdateAt(const uint32_t* buckets, delta_t delta, size_t stride = 1);

  /// UpdateAndEstimate(key, delta) through prepared buckets.
  count_t UpdateAndEstimateAt(const uint32_t* buckets, delta_t delta,
                              size_t stride = 1);

  /// Applies the tuples in order (bit-identical to the equivalent
  /// sequence of Update calls).
  void UpdateBatch(std::span<const Tuple> tuples);

  /// Clears all counters and un-merges every bucket (the bitmaps reset
  /// too — a fresh sketch). Runs inside a merge-epoch section so
  /// concurrent relaxed readers retry instead of decoding a half-reset
  /// layout.
  void Reset();

  uint32_t width() const { return config_.width; }
  uint32_t depth() const { return config_.depth; }
  const SalsaConfig& config() const { return config_; }

  /// Counters + both merge bitmaps, in bytes.
  size_t MemoryUsageBytes() const {
    return words_.size() * sizeof(uint32_t) +
           (pair_bits_.size() + quad_bits_.size()) * sizeof(uint64_t);
  }

  /// Number of aligned pairs currently merged into 16-bit counters
  /// (including pairs later subsumed by a quad merge).
  uint64_t MergedPairs() const;

  /// Number of aligned quads currently merged into 32-bit counters.
  uint64_t MergedQuads() const;

  /// Logical counters still addressable across all rows; starts at
  /// width()*depth() and shrinks as merges coarsen the layout — the
  /// "effective width" the accuracy sweep reports.
  uint64_t LogicalCounters() const;

  /// True if `other` was built with the same width, depth, and seed —
  /// the precondition for MergeFrom (the two share hash functions).
  bool CompatibleWith(const SalsaCountMin& other) const;

  /// Whether AdoptFrom(other) can replace this sketch's state without
  /// reallocating the arrays concurrent readers are scanning: full
  /// config match.
  bool CanAdoptFrom(const SalsaCountMin& other) const {
    return CompatibleWith(other);
  }

  /// Replaces this sketch's counters and merge bitmaps with `other`'s,
  /// in place, under one merge-epoch section: lock-free readers racing
  /// the adoption retry and never chase freed memory or decode a mixed
  /// layout. Requires CanAdoptFrom(other); the caller must exclude
  /// concurrent updaters (e.g. hold the shard mutex).
  void AdoptFrom(SalsaCountMin&& other);

  /// Folds `other` into this sketch: every bucket is raised to at least
  /// the sum of the two sketches' readings at that index (merging
  /// further as the sums demand), so the result keeps the one-sided
  /// guarantee over the union of both streams. Unlike CountMin the
  /// result is not the cell-wise sum — a merged counter covers its
  /// neighbors with the max of their targets. Returns an error message
  /// on an incompatible configuration.
  std::optional<std::string> MergeFrom(const SalsaCountMin& other);

  /// Writes config + counters + merge bitmaps; hash functions are
  /// reconstructed from the seed on load.
  bool SerializeTo(BinaryWriter& writer) const;

  /// Inverse of SerializeTo; std::nullopt on malformed input.
  static std::optional<SalsaCountMin> DeserializeFrom(BinaryReader& reader);

  /// Snapshot-envelope payload tag (registry: src/common/snapshot.h).
  static constexpr uint32_t kSnapshotPayloadType = 13;

  std::string Name() const { return "SalsaCountMin"; }

 private:
  /// Merge level of a bucket: how wide the counter holding it is.
  enum class Level : uint8_t { k8, k16, k32 };

  /// Flat index of (row, bucket) into the packed counter bytes. Rows are
  /// `depth` bytes and depth is a multiple of 4, so pair/quad alignment
  /// never crosses a row boundary.
  size_t CellIndex(uint32_t row, uint32_t bucket) const {
    return static_cast<size_t>(row) * config_.depth + bucket;
  }

  const uint8_t* bytes() const {
    return reinterpret_cast<const uint8_t*>(words_.data());
  }
  uint8_t* bytes() { return reinterpret_cast<uint8_t*>(words_.data()); }

  static bool TestBit(const std::vector<uint64_t>& bits, size_t index) {
    return (bits[index >> 6] >> (index & 63)) & 1;
  }
  static bool TestBitAcquire(const std::vector<uint64_t>& bits,
                             size_t index) {
    return (AcquireLoad(bits[index >> 6]) >> (index & 63)) & 1;
  }
  /// Sets a bitmap bit with a release store (merge-section discipline).
  static void SetBitRelease(std::vector<uint64_t>& bits, size_t index) {
    ReleaseStore(bits[index >> 6],
                 bits[index >> 6] | (uint64_t{1} << (index & 63)));
  }

  Level LevelAt(size_t cell) const {
    if (TestBit(quad_bits_, cell >> 2)) return Level::k32;
    if (TestBit(pair_bits_, cell >> 1)) return Level::k16;
    return Level::k8;
  }

  static constexpr count_t CapOf(Level level) {
    switch (level) {
      case Level::k8: return 0xffu;
      case Level::k16: return 0xffffu;
      case Level::k32: return ~count_t{0};
    }
    return ~count_t{0};
  }

  /// Value of the counter holding `cell` at `level` (plain loads —
  /// writer thread or excluded-writer contexts).
  count_t ReadAtLevel(size_t cell, Level level) const;

  /// Single-threaded read of `cell` at its current level.
  count_t ReadBucket(size_t cell) const {
    return ReadAtLevel(cell, LevelAt(cell));
  }

  /// Concurrent-reader load of `cell`: acquire loads of the bitmap words
  /// and the counter (at whichever width the bitmaps indicate), to be
  /// validated against the merge epoch by the caller.
  count_t ReadBucketAcquire(size_t cell) const;

  /// Stores `value` into the counter holding `cell` (relaxed — in-level
  /// stores are monotone under insertions and need no epoch).
  void StoreAtLevel(size_t cell, Level level, count_t value);

  /// Adds `delta` to the bucket at flat index `cell`, merging up on
  /// overflow. Returns the stored post-update value of its counter.
  count_t AddAt(size_t cell, delta_t delta);

  /// Widens the counter holding `cell` one level, inside an open
  /// merge-epoch section (release stores; must not open its own).
  void MergeUpLocked(size_t cell, Level level);

  /// Raises the counter holding `cell` to at least `target`, merging up
  /// as needed. Inside an open merge-epoch section (MergeFrom/rebuild).
  void EnsureAtLeastLocked(size_t cell, count_t target);

  SalsaConfig config_;
  HashFamily hashes_;
  /// Packed counters, 4-byte aligned so merged 16/32-bit counters (which
  /// sit at naturally aligned offsets) can be accessed atomically.
  std::vector<uint32_t> words_;
  /// One bit per aligned counter pair across all rows; set = merged.
  std::vector<uint64_t> pair_bits_;
  /// One bit per aligned counter quad across all rows; set = merged
  /// (overrides pair bits underneath).
  std::vector<uint64_t> quad_bits_;
  /// Merge epoch: odd while a layout change is in flight (seqlock.h).
  mutable SeqCounter epoch_;
};

}  // namespace asketch

#endif  // ASKETCH_SKETCH_SALSA_COUNT_MIN_H_
