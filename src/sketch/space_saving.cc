#include "src/sketch/space_saving.h"

#include <algorithm>
#include <unordered_map>

namespace asketch {

SpaceSaving::SpaceSaving(uint32_t capacity, SpaceSavingEstimateMode mode)
    : summary_(capacity), mode_(mode) {}

void SpaceSaving::Update(item_t key, delta_t weight) {
  ASKETCH_CHECK(weight >= 1);
  const count_t w = static_cast<count_t>(
      std::min<delta_t>(weight, ~count_t{0}));
  const uint32_t node = summary_.Find(key);
  if (node != kSummaryNil) {
    summary_.MoveToCount(node, SaturatingAdd(summary_.Count(node), w));
    return;
  }
  if (!summary_.Full()) {
    summary_.Insert(key, w, /*aux=*/0);
    return;
  }
  // Evict the minimum and let the new key inherit its count: the inherited
  // amount is the new key's over-estimation error.
  const uint32_t min_node = summary_.MinNode();
  const count_t min_count = summary_.Count(min_node);
  summary_.Remove(min_node);
  summary_.Insert(key, SaturatingAdd(min_count, w), /*aux=*/min_count);
}

count_t SpaceSaving::Estimate(item_t key) const {
  const uint32_t node = summary_.Find(key);
  if (node != kSummaryNil) return summary_.Count(node);
  return mode_ == SpaceSavingEstimateMode::kMin ? summary_.MinCount() : 0;
}

void SpaceSaving::MergeFrom(const SpaceSaving& other) {
  const count_t self_min = summary_.Full() ? summary_.MinCount() : 0;
  const count_t other_min =
      other.summary_.Full() ? other.summary_.MinCount() : 0;
  std::unordered_map<item_t, SpaceSavingEntry> merged;
  merged.reserve(summary_.size() + other.summary_.size());
  summary_.ForEach([&merged](item_t key, count_t count, count_t error) {
    merged[key] = SpaceSavingEntry{key, count, error};
  });
  other.summary_.ForEach(
      [&merged, self_min](item_t key, count_t count, count_t error) {
        auto [it, inserted] =
            merged.try_emplace(key, SpaceSavingEntry{key, 0, 0});
        if (inserted) {
          // Unmonitored on our side: its count here is at most self_min.
          it->second.count = self_min;
          it->second.error = self_min;
        }
        it->second.count = SaturatingAdd(it->second.count,
                                         static_cast<delta_t>(count));
        it->second.error = SaturatingAdd(it->second.error,
                                         static_cast<delta_t>(error));
      });
  // Keys monitored only on our side absorb the other side's minimum.
  std::vector<SpaceSavingEntry> entries;
  entries.reserve(merged.size());
  for (auto& [key, entry] : merged) {
    if (other.summary_.Find(key) == kSummaryNil) {
      entry.count = SaturatingAdd(entry.count,
                                  static_cast<delta_t>(other_min));
      entry.error = SaturatingAdd(entry.error,
                                  static_cast<delta_t>(other_min));
    }
    entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const SpaceSavingEntry& a, const SpaceSavingEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  if (entries.size() > summary_.capacity()) {
    entries.resize(summary_.capacity());
  }
  summary_.Reset();
  for (const SpaceSavingEntry& entry : entries) {
    summary_.Insert(entry.key, entry.count, entry.error);
  }
}

namespace {
constexpr uint32_t kSpaceSavingMagic = 0x31565353;  // "SSV1"
}  // namespace

bool SpaceSaving::SerializeTo(BinaryWriter& writer) const {
  writer.PutU32(kSpaceSavingMagic);
  writer.PutU32(summary_.capacity());
  writer.PutU8(mode_ == SpaceSavingEstimateMode::kMin ? 0 : 1);
  writer.PutU32(summary_.size());
  summary_.ForEach([&writer](item_t key, count_t count, count_t error) {
    writer.PutU32(key);
    writer.PutU32(count);
    writer.PutU32(error);
  });
  return writer.ok();
}

std::optional<SpaceSaving> SpaceSaving::DeserializeFrom(
    BinaryReader& reader) {
  uint32_t magic = 0, capacity = 0, size = 0;
  uint8_t mode = 0;
  if (!reader.GetU32(&magic) || magic != kSpaceSavingMagic) {
    return std::nullopt;
  }
  if (!reader.GetU32(&capacity) || capacity < 1 ||
      capacity > kMaxSerializedCapacity ||
      !reader.GetU8(&mode) || mode > 1 || !reader.GetU32(&size) ||
      size > capacity) {
    return std::nullopt;
  }
  SpaceSaving ss(capacity, mode == 0 ? SpaceSavingEstimateMode::kMin
                                     : SpaceSavingEstimateMode::kZero);
  for (uint32_t i = 0; i < size; ++i) {
    uint32_t key = 0, count = 0, error = 0;
    if (!reader.GetU32(&key) || !reader.GetU32(&count) ||
        !reader.GetU32(&error)) {
      return std::nullopt;
    }
    if (ss.summary_.Find(key) != kSummaryNil) return std::nullopt;
    ss.summary_.Insert(key, count, error);
  }
  return ss;
}

std::vector<SpaceSavingEntry> SpaceSaving::TopK() const {
  std::vector<SpaceSavingEntry> entries;
  entries.reserve(summary_.size());
  summary_.ForEach([&entries](item_t key, count_t count, count_t error) {
    entries.push_back(SpaceSavingEntry{key, count, error});
  });
  std::sort(entries.begin(), entries.end(),
            [](const SpaceSavingEntry& a, const SpaceSavingEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  return entries;
}

}  // namespace asketch
