// Space Saving (Metwally, Agrawal, El Abbadi, ICDT 2005).
//
// The canonical counter-based top-k summary: at most k monitored keys; an
// unmonitored arrival evicts the minimum-count key and inherits its count
// (recording the inherited amount as the new key's error bound). Guarantees
// count_of(key) >= true frequency for monitored keys and monitors every key
// with true frequency > N/k.
//
// The ASketch paper compares against Space Saving adapted to frequency-
// estimation point queries (Fig. 11): a monitored key answers with its
// counter; an unmonitored key answers either with the minimum counter
// (never under-estimates; Metwally et al.'s suggestion) or with 0
// (Cormode & Hadjieleftheriou's suggestion). Both adapters are provided.

#ifndef ASKETCH_SKETCH_SPACE_SAVING_H_
#define ASKETCH_SKETCH_SPACE_SAVING_H_

#include <cstddef>
#include <string>
#include <vector>

#include <optional>

#include "src/common/check.h"
#include "src/common/serialize.h"
#include "src/common/stream_summary.h"
#include "src/common/types.h"

namespace asketch {

/// Answer policy for point queries on unmonitored keys.
enum class SpaceSavingEstimateMode {
  /// Return the minimum monitored count (one-sided, pessimistic).
  kMin,
  /// Return zero (better observed error on skewed query mixes).
  kZero,
};

/// One reported heavy hitter.
struct SpaceSavingEntry {
  item_t key = 0;
  count_t count = 0;  ///< upper bound on the true frequency
  count_t error = 0;  ///< count - error is a lower bound
};

/// The Space Saving summary.
class SpaceSaving {
 public:
  /// Monitors at most `capacity` keys (>= 1).
  explicit SpaceSaving(uint32_t capacity,
                       SpaceSavingEstimateMode mode =
                           SpaceSavingEstimateMode::kMin);

  /// Processes `weight` arrivals of `key`. Space Saving has no deletion
  /// support; weight must be >= 1 (pass deletions to a sketch instead).
  void Update(item_t key, delta_t weight = 1);

  /// Point query under the configured estimate mode.
  count_t Estimate(item_t key) const;

  /// True if `key` is currently monitored.
  bool Contains(item_t key) const {
    return summary_.Find(key) != kSummaryNil;
  }

  /// The monitored keys sorted by descending count (the top-k report).
  std::vector<SpaceSavingEntry> TopK() const;

  uint32_t size() const { return summary_.size(); }
  uint32_t capacity() const { return summary_.capacity(); }
  count_t MinCount() const { return summary_.MinCount(); }

  static constexpr size_t BytesPerItem() {
    return StreamSummary::BytesPerItem();
  }
  size_t MemoryUsageBytes() const { return summary_.MemoryUsageBytes(); }

  void Reset() { summary_.Reset(); }

  /// Merges `other` using the mergeable-summaries construction: counts
  /// and errors add for shared keys; a key monitored on one side only
  /// inherits the other side's minimum count as extra count and error
  /// (its true count there is at most that minimum). The top `capacity`
  /// entries by count survive. Upper/lower-bound guarantees hold over
  /// the union stream.
  void MergeFrom(const SpaceSaving& other);

  bool SerializeTo(BinaryWriter& writer) const;
  static std::optional<SpaceSaving> DeserializeFrom(BinaryReader& reader);

  /// Snapshot-envelope payload tag (registry: src/common/snapshot.h).
  static constexpr uint32_t kSnapshotPayloadType = 5;

  std::string Name() const {
    return mode_ == SpaceSavingEstimateMode::kMin ? "SpaceSaving(min)"
                                                  : "SpaceSaving(zero)";
  }

 private:
  StreamSummary summary_;
  SpaceSavingEstimateMode mode_;
};

}  // namespace asketch

#endif  // ASKETCH_SKETCH_SPACE_SAVING_H_
