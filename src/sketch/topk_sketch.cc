#include "src/sketch/topk_sketch.h"

#include <algorithm>

namespace asketch {

TopKCountMin::TopKCountMin(uint32_t k, const CountMinConfig& sketch_config)
    : sketch_(sketch_config), candidates_(k) {
  ASKETCH_CHECK(k >= 1);
}

TopKCountMin TopKCountMin::FromSpaceBudget(size_t bytes, uint32_t width,
                                           uint32_t k, uint64_t seed) {
  const size_t candidate_bytes = k * StreamSummary::BytesPerItem();
  ASKETCH_CHECK(candidate_bytes < bytes);
  return TopKCountMin(
      k, CountMinConfig::FromSpaceBudget(bytes - candidate_bytes, width,
                                         seed));
}

void TopKCountMin::Update(item_t key, count_t weight) {
  ASKETCH_CHECK(weight >= 1);
  sketch_.Update(key, weight);
  const count_t estimate = sketch_.Estimate(key);
  const uint32_t node = candidates_.Find(key);
  if (node != kSummaryNil) {
    // Estimates are monotone under insertions; refresh in place.
    candidates_.MoveToCount(node, estimate);
    return;
  }
  if (!candidates_.Full()) {
    candidates_.Insert(key, estimate, 0);
    return;
  }
  if (estimate > candidates_.MinCount()) {
    candidates_.Remove(candidates_.MinNode());
    candidates_.Insert(key, estimate, 0);
  }
}

std::vector<TopKEntry> TopKCountMin::TopK() const {
  std::vector<TopKEntry> entries;
  entries.reserve(candidates_.size());
  candidates_.ForEach([&entries](item_t key, count_t count, count_t) {
    entries.push_back(TopKEntry{key, count});
  });
  std::sort(entries.begin(), entries.end(),
            [](const TopKEntry& a, const TopKEntry& b) {
              if (a.estimate != b.estimate) return a.estimate > b.estimate;
              return a.key < b.key;
            });
  return entries;
}

}  // namespace asketch
