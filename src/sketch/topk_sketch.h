// Count-Min with a candidate set for top-k queries.
//
// §2 of the ASketch paper: "Sketches can support top-k queries with an
// additional heap [Charikar et al.] or a hierarchical data structure".
// This is that classic baseline: every update refreshes the key's sketch
// estimate and a bounded candidate set (a count-ordered stream-summary,
// serving as the 'heap') keeps the k keys with the largest estimates seen
// so far. Against ASketch's filter-based top-k (§7.2.2) this baseline
// pays the full sketch update for every arrival and its reported counts
// carry sketch noise instead of exact filter counts.

#ifndef ASKETCH_SKETCH_TOPK_SKETCH_H_
#define ASKETCH_SKETCH_TOPK_SKETCH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/stream_summary.h"
#include "src/common/types.h"
#include "src/sketch/count_min.h"

namespace asketch {

/// One reported top-k entry.
struct TopKEntry {
  item_t key = 0;
  count_t estimate = 0;
};

/// Count-Min + candidate heap top-k tracker.
class TopKCountMin {
 public:
  /// `k` candidates over a Count-Min built from `sketch_config`.
  TopKCountMin(uint32_t k, const CountMinConfig& sketch_config);

  /// Budget-based construction: the candidate set's storage is carved
  /// out of `bytes` like the ASketch filter is.
  static TopKCountMin FromSpaceBudget(size_t bytes, uint32_t width,
                                      uint32_t k, uint64_t seed = 42);

  /// Processes `weight` arrivals of `key` (>= 1; this baseline does not
  /// track deletions in the candidate set).
  void Update(item_t key, count_t weight = 1);

  /// Point query (the underlying sketch's estimate).
  count_t Estimate(item_t key) const { return sketch_.Estimate(key); }

  /// The current top-k candidates, sorted by descending estimate.
  std::vector<TopKEntry> TopK() const;

  uint32_t k() const { return candidates_.capacity(); }
  const CountMin& sketch() const { return sketch_; }

  size_t MemoryUsageBytes() const {
    return sketch_.MemoryUsageBytes() + candidates_.MemoryUsageBytes();
  }

  void Reset() {
    sketch_.Reset();
    candidates_.Reset();
  }

  std::string Name() const { return "TopKCountMin"; }

 private:
  CountMin sketch_;
  StreamSummary candidates_;  // count = current estimate, aux unused
};

}  // namespace asketch

#endif  // ASKETCH_SKETCH_TOPK_SKETCH_H_
