#include "src/workload/dataset_io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>

namespace asketch {

namespace {

constexpr uint32_t kMagic = 0x41534b31;  // "ASK1"
constexpr uint32_t kVersion = 1;

struct FileHeader {
  uint32_t magic = kMagic;
  uint32_t version = kVersion;
  uint64_t num_tuples = 0;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

std::optional<std::string> WriteStreamFile(const std::string& path,
                                           const std::vector<Tuple>& stream) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) return "cannot open for writing: " + path;
  FileHeader header;
  header.num_tuples = stream.size();
  if (std::fwrite(&header, sizeof(header), 1, file.get()) != 1) {
    return "short write (header): " + path;
  }
  // Tuple is a packed pair of u32s; write it directly.
  static_assert(sizeof(Tuple) == 2 * sizeof(uint32_t));
  if (!stream.empty() &&
      std::fwrite(stream.data(), sizeof(Tuple), stream.size(), file.get()) !=
          stream.size()) {
    return "short write (tuples): " + path;
  }
  return std::nullopt;
}

std::optional<std::string> ReadStreamFile(const std::string& path,
                                          std::vector<Tuple>* stream) {
  stream->clear();
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) return "cannot open for reading: " + path;
  FileHeader header;
  if (std::fread(&header, sizeof(header), 1, file.get()) != 1) {
    return "short read (header): " + path;
  }
  if (header.magic != kMagic) return "bad magic in " + path;
  if (header.version != kVersion) return "unsupported version in " + path;
  stream->resize(header.num_tuples);
  if (header.num_tuples != 0 &&
      std::fread(stream->data(), sizeof(Tuple), header.num_tuples,
                 file.get()) != header.num_tuples) {
    stream->clear();
    return "short read (tuples): " + path;
  }
  return std::nullopt;
}

StreamFileReader::~StreamFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

std::optional<std::string> StreamFileReader::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return "cannot open for reading: " + path;
  FileHeader header;
  if (std::fread(&header, sizeof(header), 1, file) != 1) {
    std::fclose(file);
    return "short read (header): " + path;
  }
  if (header.magic != kMagic) {
    std::fclose(file);
    return "bad magic in " + path;
  }
  if (header.version != kVersion) {
    std::fclose(file);
    return "unsupported version in " + path;
  }
  if (file_ != nullptr) std::fclose(file_);
  file_ = file;
  path_ = path;
  total_ = header.num_tuples;
  remaining_ = header.num_tuples;
  return std::nullopt;
}

std::optional<std::string> StreamFileReader::ReadBlock(
    size_t max_tuples, std::vector<Tuple>* block) {
  block->clear();
  if (file_ == nullptr) return std::string("StreamFileReader not opened");
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(max_tuples, remaining_));
  if (want == 0) return std::nullopt;
  block->resize(want);
  if (std::fread(block->data(), sizeof(Tuple), want, file_) != want) {
    block->clear();
    return "short read (tuples): " + path_;
  }
  remaining_ -= want;
  return std::nullopt;
}

}  // namespace asketch
