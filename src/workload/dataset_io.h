// Binary (de)serialization of streams.
//
// Lets expensive streams be generated once and replayed across benchmark
// runs, and lets users feed their own traces to the examples. Format:
// a fixed little-endian header (magic, version, tuple count) followed by
// packed (key: u32, value: u32) pairs.

#ifndef ASKETCH_WORKLOAD_DATASET_IO_H_
#define ASKETCH_WORKLOAD_DATASET_IO_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace asketch {

/// Writes `stream` to `path`. Returns an error message on failure.
std::optional<std::string> WriteStreamFile(const std::string& path,
                                           const std::vector<Tuple>& stream);

/// Reads a stream previously written by WriteStreamFile. On failure
/// returns an error message and leaves `stream` empty.
std::optional<std::string> ReadStreamFile(const std::string& path,
                                          std::vector<Tuple>* stream);

}  // namespace asketch

#endif  // ASKETCH_WORKLOAD_DATASET_IO_H_
