// Binary (de)serialization of streams.
//
// Lets expensive streams be generated once and replayed across benchmark
// runs, and lets users feed their own traces to the examples. Format:
// a fixed little-endian header (magic, version, tuple count) followed by
// packed (key: u32, value: u32) pairs.

#ifndef ASKETCH_WORKLOAD_DATASET_IO_H_
#define ASKETCH_WORKLOAD_DATASET_IO_H_

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace asketch {

/// Writes `stream` to `path`. Returns an error message on failure.
std::optional<std::string> WriteStreamFile(const std::string& path,
                                           const std::vector<Tuple>& stream);

/// Reads a stream previously written by WriteStreamFile. On failure
/// returns an error message and leaves `stream` empty.
std::optional<std::string> ReadStreamFile(const std::string& path,
                                          std::vector<Tuple>* stream);

/// Incremental reader for stream files: validates the header once, then
/// hands the tuples out in caller-sized blocks. Lets consumers (the CLI's
/// batched build path) ingest traces much larger than memory instead of
/// materializing the whole stream up front.
class StreamFileReader {
 public:
  StreamFileReader() = default;
  ~StreamFileReader();

  StreamFileReader(const StreamFileReader&) = delete;
  StreamFileReader& operator=(const StreamFileReader&) = delete;

  /// Opens `path` and reads the header. Returns an error message on
  /// failure (the reader stays unopened).
  std::optional<std::string> Open(const std::string& path);

  /// Tuples declared by the header of the opened file.
  uint64_t num_tuples() const { return total_; }
  /// Tuples not yet returned by ReadBlock.
  uint64_t remaining() const { return remaining_; }

  /// Replaces `block` with the next min(max_tuples, remaining()) tuples.
  /// An empty block signals end of stream. Returns an error message on a
  /// short read (the file promised more tuples than it holds).
  std::optional<std::string> ReadBlock(size_t max_tuples,
                                       std::vector<Tuple>* block);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t total_ = 0;
  uint64_t remaining_ = 0;
};

}  // namespace asketch

#endif  // ASKETCH_WORKLOAD_DATASET_IO_H_
