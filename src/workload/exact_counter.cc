#include "src/workload/exact_counter.h"

#include <algorithm>
#include <numeric>

namespace asketch {

std::vector<item_t> ExactCounter::KeysByFrequency() const {
  std::vector<item_t> keys(counts_.size());
  std::iota(keys.begin(), keys.end(), 0);
  std::sort(keys.begin(), keys.end(), [this](item_t a, item_t b) {
    if (counts_[a] != counts_[b]) return counts_[a] > counts_[b];
    return a < b;
  });
  return keys;
}

wide_count_t ExactCounter::CountOfRank(uint32_t k) const {
  if (k == 0 || k > counts_.size()) return 0;
  // nth_element on a copy: O(M) instead of a full sort.
  std::vector<wide_count_t> copy = counts_;
  std::nth_element(copy.begin(), copy.begin() + (k - 1), copy.end(),
                   std::greater<wide_count_t>());
  return copy[k - 1];
}

}  // namespace asketch
