// Exact ground-truth counting for accuracy evaluation.
//
// Dense mode (flat array) for the synthetic generators whose keys live in
// [0, num_distinct); a hash-map mode is available for arbitrary 32-bit
// keys (used by examples that delete items or feed external data).

#ifndef ASKETCH_WORKLOAD_EXACT_COUNTER_H_
#define ASKETCH_WORKLOAD_EXACT_COUNTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace asketch {

/// Exact per-key counter over a dense key domain [0, domain_size).
class ExactCounter {
 public:
  /// Counter for keys in [0, domain_size).
  explicit ExactCounter(uint32_t domain_size) : counts_(domain_size, 0) {}

  /// Applies tuple (key, delta); CHECK-fails if a count would go negative
  /// (the library models strict streams only).
  void Update(item_t key, delta_t delta = 1) {
    ASKETCH_CHECK(key < counts_.size());
    const int64_t next = static_cast<int64_t>(counts_[key]) + delta;
    ASKETCH_CHECK(next >= 0);
    counts_[key] = static_cast<wide_count_t>(next);
    total_ = static_cast<wide_count_t>(static_cast<int64_t>(total_) + delta);
  }

  wide_count_t Count(item_t key) const {
    ASKETCH_CHECK(key < counts_.size());
    return counts_[key];
  }

  /// Sum of all counts (N in the paper's notation).
  wide_count_t Total() const { return total_; }

  uint32_t domain_size() const {
    return static_cast<uint32_t>(counts_.size());
  }

  const std::vector<wide_count_t>& counts() const { return counts_; }

  /// Keys sorted by descending true count (ties by ascending key);
  /// computed in O(M log M).
  std::vector<item_t> KeysByFrequency() const;

  /// True count of the k-th most frequent key (1-based); 0 if k exceeds
  /// the number of keys with positive counts.
  wide_count_t CountOfRank(uint32_t k) const;

 private:
  std::vector<wide_count_t> counts_;
  wide_count_t total_ = 0;
};

/// Exact counter over arbitrary 32-bit keys (hash-map backed).
class SparseExactCounter {
 public:
  void Update(item_t key, delta_t delta = 1) {
    const int64_t next =
        static_cast<int64_t>(counts_[key]) + delta;
    ASKETCH_CHECK(next >= 0);
    counts_[key] = static_cast<wide_count_t>(next);
    total_ = static_cast<wide_count_t>(static_cast<int64_t>(total_) + delta);
  }

  wide_count_t Count(item_t key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  wide_count_t Total() const { return total_; }
  size_t NumDistinct() const { return counts_.size(); }

 private:
  std::unordered_map<item_t, wide_count_t> counts_;
  wide_count_t total_ = 0;
};

}  // namespace asketch

#endif  // ASKETCH_WORKLOAD_EXACT_COUNTER_H_
