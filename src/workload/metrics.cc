#include "src/workload/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/common/check.h"

namespace asketch {

namespace {

double AbsDiff(count_t estimate, wide_count_t truth) {
  const double e = static_cast<double>(estimate);
  const double t = static_cast<double>(truth);
  return std::abs(e - t);
}

}  // namespace

double ObservedError(const std::vector<item_t>& queries,
                     const EstimateFn& estimate, const ExactCounter& truth) {
  ASKETCH_CHECK(!queries.empty());
  double error_sum = 0;
  double true_sum = 0;
  for (const item_t key : queries) {
    const wide_count_t t = truth.Count(key);
    error_sum += AbsDiff(estimate(key), t);
    true_sum += static_cast<double>(t);
  }
  ASKETCH_CHECK(true_sum > 0);
  return error_sum / true_sum;
}

double AverageRelativeError(const std::vector<item_t>& queries,
                            const EstimateFn& estimate,
                            const ExactCounter& truth) {
  ASKETCH_CHECK(!queries.empty());
  double sum = 0;
  uint64_t counted = 0;
  for (const item_t key : queries) {
    const wide_count_t t = truth.Count(key);
    if (t == 0) continue;
    sum += AbsDiff(estimate(key), t) / static_cast<double>(t);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

double PrecisionAtK(const std::vector<item_t>& reported,
                    const ExactCounter& truth, uint32_t k) {
  ASKETCH_CHECK(k >= 1);
  const wide_count_t threshold = truth.CountOfRank(k);
  uint32_t hits = 0;
  uint32_t considered = 0;
  for (const item_t key : reported) {
    if (considered == k) break;
    ++considered;
    if (threshold > 0 && truth.Count(key) >= threshold) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

std::vector<Misclassification> FindMisclassifiedKeys(
    const EstimateFn& estimate, const ExactCounter& truth, uint32_t k,
    uint32_t low_frequency_divisor) {
  ASKETCH_CHECK(k >= 1);
  ASKETCH_CHECK(low_frequency_divisor >= 1);
  const wide_count_t threshold = truth.CountOfRank(k);
  std::vector<Misclassification> result;
  if (threshold == 0) return result;
  const wide_count_t low_cutoff = threshold / low_frequency_divisor;
  for (uint32_t key = 0; key < truth.domain_size(); ++key) {
    const wide_count_t t = truth.Count(key);
    if (t >= low_cutoff || t >= threshold) continue;  // not "low-frequency"
    const count_t est = estimate(key);
    if (est >= threshold) {
      result.push_back(Misclassification{key, t, est});
    }
  }
  return result;
}

double TopErrorItemsMeanError(const EstimateFn& estimate,
                              const ExactCounter& truth, uint32_t top_n) {
  ASKETCH_CHECK(top_n >= 1);
  std::vector<double> errors;
  errors.reserve(truth.domain_size());
  for (uint32_t key = 0; key < truth.domain_size(); ++key) {
    errors.push_back(AbsDiff(estimate(key), truth.Count(key)));
  }
  const uint32_t n = std::min<uint32_t>(top_n, errors.size());
  std::nth_element(errors.begin(), errors.begin() + (n - 1), errors.end(),
                   std::greater<double>());
  double sum = 0;
  for (uint32_t i = 0; i < n; ++i) sum += errors[i];
  return sum / n;
}

double LowFrequencyAverageRelativeError(const EstimateFn& estimate,
                                        const ExactCounter& truth,
                                        uint32_t k) {
  const wide_count_t threshold = truth.CountOfRank(k);
  double sum = 0;
  uint64_t counted = 0;
  for (uint32_t key = 0; key < truth.domain_size(); ++key) {
    const wide_count_t t = truth.Count(key);
    if (t == 0 || t >= threshold) continue;
    sum += AbsDiff(estimate(key), t) / static_cast<double>(t);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

}  // namespace asketch
