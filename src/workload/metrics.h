// Accuracy metrics — the exact definitions of §7.1.
//
//   Observed error   = Σ|est_i − true_i| / Σ true_i over the queried keys.
//   Avg. rel. error  = mean(|est_i − true_i| / true_i) over queried keys
//                      (biased toward low-frequency keys by construction).
//   Precision-at-k   = |reported top-k ∩ true top-k| / k.
//
// Plus the misclassification analysis of Tables 3 / Fig. 6: a key is
// "misclassified" when its estimate reaches the count of the true k-th
// most frequent key although the key itself is not in the true top-k —
// i.e. a cold key that a top-k report built from estimates would admit.

#ifndef ASKETCH_WORKLOAD_METRICS_H_
#define ASKETCH_WORKLOAD_METRICS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/types.h"
#include "src/workload/exact_counter.h"

namespace asketch {

/// Point-query function: key -> estimated count. Wraps any estimator.
using EstimateFn = std::function<count_t(item_t)>;

/// Observed error over `queries` (§7.1). Queries of keys with true count 0
/// contribute their estimate to the numerator only.
double ObservedError(const std::vector<item_t>& queries,
                     const EstimateFn& estimate, const ExactCounter& truth);

/// Average relative error over `queries`; keys with true count 0 are
/// skipped (their relative error is undefined).
double AverageRelativeError(const std::vector<item_t>& queries,
                            const EstimateFn& estimate,
                            const ExactCounter& truth);

/// Precision-at-k of a reported top-k list: the fraction of reported keys
/// whose true count is at least the true k-th largest count (this handles
/// ties the way the paper's precision metric behaves).
double PrecisionAtK(const std::vector<item_t>& reported,
                    const ExactCounter& truth, uint32_t k);

/// A misclassified key and its error magnitudes.
struct Misclassification {
  item_t key = 0;
  wide_count_t true_count = 0;
  count_t estimate = 0;

  double RelativeError() const {
    return true_count == 0
               ? static_cast<double>(estimate)
               : static_cast<double>(estimate - true_count) /
                     static_cast<double>(true_count);
  }
};

/// Scans the whole key domain and returns every key whose estimate is >=
/// the true count of the k-th most frequent key although its own true
/// count is below threshold / low_frequency_divisor (Table 3's
/// "low-frequency items misleadingly appearing as high-frequency
/// items"). divisor = 1 flags every non-top-k key that would sneak into
/// a top-k report; larger divisors restrict to genuinely cold keys.
std::vector<Misclassification> FindMisclassifiedKeys(
    const EstimateFn& estimate, const ExactCounter& truth, uint32_t k,
    uint32_t low_frequency_divisor = 1);

/// Mean absolute error |est − true| of the `top_n` keys with the largest
/// absolute error, scanning the whole domain (Table 7's "average
/// accumulative error for top-10 error items").
double TopErrorItemsMeanError(const EstimateFn& estimate,
                              const ExactCounter& truth, uint32_t top_n);

/// Average relative error over all keys OUTSIDE the true top-k with
/// positive true counts (Fig. 16's "all low-frequency items").
double LowFrequencyAverageRelativeError(const EstimateFn& estimate,
                                        const ExactCounter& truth,
                                        uint32_t k);

}  // namespace asketch

#endif  // ASKETCH_WORKLOAD_METRICS_H_
