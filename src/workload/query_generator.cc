#include "src/workload/query_generator.h"

#include "src/common/check.h"

namespace asketch {

std::vector<item_t> GenerateQueries(const std::vector<Tuple>& stream,
                                    uint32_t num_distinct,
                                    uint64_t num_queries,
                                    QuerySampling sampling, uint64_t seed) {
  std::vector<item_t> queries;
  queries.reserve(num_queries);
  Rng rng(seed);
  switch (sampling) {
    case QuerySampling::kFrequencyProportional: {
      ASKETCH_CHECK(!stream.empty());
      for (uint64_t i = 0; i < num_queries; ++i) {
        queries.push_back(stream[rng.NextBounded(stream.size())].key);
      }
      break;
    }
    case QuerySampling::kUniformOverDistinct: {
      ASKETCH_CHECK(num_distinct >= 1);
      for (uint64_t i = 0; i < num_queries; ++i) {
        queries.push_back(
            static_cast<item_t>(rng.NextBounded(num_distinct)));
      }
      break;
    }
  }
  return queries;
}

}  // namespace asketch
