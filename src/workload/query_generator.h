// Query workload generation (§7.1 "Query and Parameters Setting").
//
// The paper evaluates frequency-estimation queries "obtained by sampling
// the data items based on their frequencies": a key is queried with
// probability proportional to its frequency in the stream, i.e. hot keys
// are queried more. That is exactly sampling uniform positions of the
// stream, which is how kFrequencyProportional is implemented. The
// kUniformOverDistinct mode queries every distinct key with equal
// probability (used by the misclassification analysis, which must visit
// the cold tail).

#ifndef ASKETCH_WORKLOAD_QUERY_GENERATOR_H_
#define ASKETCH_WORKLOAD_QUERY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"

namespace asketch {

/// How query keys are drawn.
enum class QuerySampling {
  /// P(query = k) ∝ frequency of k — the paper's default.
  kFrequencyProportional,
  /// Every distinct key equally likely.
  kUniformOverDistinct,
};

/// Draws `num_queries` query keys from `stream` under `sampling`.
/// For kUniformOverDistinct, keys are drawn from [0, num_distinct).
std::vector<item_t> GenerateQueries(const std::vector<Tuple>& stream,
                                    uint32_t num_distinct,
                                    uint64_t num_queries,
                                    QuerySampling sampling, uint64_t seed);

}  // namespace asketch

#endif  // ASKETCH_WORKLOAD_QUERY_GENERATOR_H_
