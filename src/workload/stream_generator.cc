#include "src/workload/stream_generator.h"

#include <numeric>
#include <sstream>

#include "src/common/bit_util.h"

namespace asketch {

std::optional<std::string> StreamSpec::Validate() const {
  if (stream_size < 1) return std::string("stream_size must be >= 1");
  if (num_distinct < 1) return std::string("num_distinct must be >= 1");
  if (skew < 0) return std::string("skew must be >= 0");
  return std::nullopt;
}

std::string StreamSpec::ToString() const {
  std::ostringstream os;
  os << "StreamSpec{n=" << stream_size << ", m=" << num_distinct
     << ", skew=" << skew << ", seed=" << seed << "}";
  return os.str();
}

ZipfStreamGenerator::ZipfStreamGenerator(const StreamSpec& spec)
    : spec_(spec),
      zipf_(spec.num_distinct, spec.skew),
      rng_(spec.seed) {
  ASKETCH_CHECK(!spec.Validate().has_value());
  // Derive an odd-ish multiplier coprime with M from the seed; fall back
  // to 1 for degenerate domains.
  const uint64_t m = spec_.num_distinct;
  uint64_t candidate = (Mix64(spec_.seed) % m) | 1;
  while (std::gcd(candidate, m) != 1) {
    candidate = (candidate + 2) % m;
    if (candidate == 0) candidate = 1;
  }
  mult_ = m == 1 ? 1 : candidate;
  offset_ = Mix64(spec_.seed ^ 0xdeadbeefULL) % m;
}

std::vector<Tuple> GenerateStream(const StreamSpec& spec) {
  ZipfStreamGenerator gen(spec);
  std::vector<Tuple> stream;
  stream.reserve(spec.stream_size);
  for (uint64_t i = 0; i < spec.stream_size; ++i) {
    stream.push_back(gen.Next());
  }
  return stream;
}

std::vector<Tuple> GenerateStreamWithTruth(
    const StreamSpec& spec, std::vector<wide_count_t>* truth) {
  ASKETCH_CHECK(truth != nullptr);
  truth->assign(spec.num_distinct, 0);
  ZipfStreamGenerator gen(spec);
  std::vector<Tuple> stream;
  stream.reserve(spec.stream_size);
  for (uint64_t i = 0; i < spec.stream_size; ++i) {
    const Tuple t = gen.Next();
    (*truth)[t.key] += t.value;
    stream.push_back(t);
  }
  return stream;
}

}  // namespace asketch
