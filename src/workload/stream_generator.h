// Synthetic stream generation.
//
// Produces the paper's synthetic workload: a stream of `stream_size`
// tuples over `num_distinct` distinct keys whose frequencies follow a Zipf
// distribution of configurable skew. Ranks are mapped to keys through an
// affine bijection of [0, num_distinct) so that hot keys are not the small
// integers (which would make hashing look artificially good or bad), while
// keys remain dense in [0, num_distinct) so ground-truth counting can use
// a flat array.

#ifndef ASKETCH_WORKLOAD_STREAM_GENERATOR_H_
#define ASKETCH_WORKLOAD_STREAM_GENERATOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/common/types.h"
#include "src/workload/zipf.h"

namespace asketch {

/// Parameters of a synthetic Zipf stream.
struct StreamSpec {
  /// Number of tuples (N). The paper's default is 32M; the benchmark
  /// harness scales this down by default.
  uint64_t stream_size = 32u << 20;
  /// Number of distinct keys (M); the paper's default is 8M.
  uint32_t num_distinct = 8u << 20;
  /// Zipf skew z in [0, 3]; 0 = uniform.
  double skew = 1.5;
  uint64_t seed = 7;

  std::optional<std::string> Validate() const;

  std::string ToString() const;
};

/// Streaming generator of Zipf tuples. Deterministic for a given spec.
class ZipfStreamGenerator {
 public:
  explicit ZipfStreamGenerator(const StreamSpec& spec);

  /// Next tuple; all tuples carry value 1 (the paper's u_t = 1 setting).
  Tuple Next() {
    return Tuple{RankToKey(zipf_.Sample(rng_)), 1};
  }

  /// The key that rank r (1-based; rank 1 is the hottest) maps to.
  item_t RankToKey(uint64_t rank) const {
    ASKETCH_DCHECK(rank >= 1 && rank <= spec_.num_distinct);
    // Affine bijection of Z_M: key = (a*(rank-1) + b) mod M, gcd(a,M)=1.
    return static_cast<item_t>(
        (mult_ * (rank - 1) + offset_) % spec_.num_distinct);
  }

  const StreamSpec& spec() const { return spec_; }
  const ZipfDistribution& distribution() const { return zipf_; }

 private:
  StreamSpec spec_;
  ZipfDistribution zipf_;
  Rng rng_;
  uint64_t mult_;
  uint64_t offset_;
};

/// Materializes the whole stream described by `spec`.
std::vector<Tuple> GenerateStream(const StreamSpec& spec);

/// Materializes the stream and the exact per-key ground truth (a flat
/// array indexed by key, sized spec.num_distinct).
std::vector<Tuple> GenerateStreamWithTruth(
    const StreamSpec& spec, std::vector<wide_count_t>* truth);

}  // namespace asketch

#endif  // ASKETCH_WORKLOAD_STREAM_GENERATOR_H_
