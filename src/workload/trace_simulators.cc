#include "src/workload/trace_simulators.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace asketch {

namespace {

StreamSpec ScaledSpec(uint64_t full_n, uint32_t full_m, double skew,
                      double scale, uint64_t seed) {
  ASKETCH_CHECK(scale > 0);
  StreamSpec spec;
  spec.stream_size = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::llround(full_n * scale)));
  spec.num_distinct = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::llround(full_m * scale)));
  spec.skew = skew;
  spec.seed = seed;
  return spec;
}

}  // namespace

StreamSpec IpTraceLikeSpec(double scale, uint64_t seed) {
  return ScaledSpec(/*full_n=*/461'000'000, /*full_m=*/13'000'000,
                    /*skew=*/0.9, scale, seed);
}

StreamSpec KosarakLikeSpec(double scale, uint64_t seed) {
  // The Kosarak domain is small; keep the full 40 270 items unless the
  // scale is tiny, so the distribution's head keeps its shape.
  StreamSpec spec = ScaledSpec(/*full_n=*/8'000'000, /*full_m=*/40'270,
                               /*skew=*/1.0, /*scale=*/1.0, seed);
  spec.stream_size = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::llround(8'000'000 * scale)));
  spec.num_distinct = static_cast<uint32_t>(
      std::min<uint64_t>(40'270, std::max<uint64_t>(
                                     1024, spec.stream_size / 100)));
  return spec;
}

}  // namespace asketch
