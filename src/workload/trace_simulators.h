// Simulated stand-ins for the paper's real-world traces.
//
// The originals are not redistributable / available offline:
//   * an anonymized LAN IP-packet trace — 461M tuples, 13M distinct
//     address pairs, max frequency 17 978 588, skew similar to Zipf 0.9;
//   * the Kosarak click stream — 8M clicks, 40 270 distinct items, max
//     frequency 601 374, skew similar to Zipf 1.0.
//
// Every ASketch result on these datasets depends only on the frequency
// distribution (the quoted Zipf skews) and the stream/domain ratio, both
// of which the simulators match; `scale` shrinks both N and M
// proportionally so the benches stay laptop-sized. See DESIGN.md
// ("Substitutions") for the full argument.

#ifndef ASKETCH_WORKLOAD_TRACE_SIMULATORS_H_
#define ASKETCH_WORKLOAD_TRACE_SIMULATORS_H_

#include "src/workload/stream_generator.h"

namespace asketch {

/// Spec matching the IP-trace stream's shape. scale = 1 reproduces the
/// full 461M-tuple trace; the benches default to much smaller scales.
StreamSpec IpTraceLikeSpec(double scale, uint64_t seed = 17);

/// Spec matching the Kosarak click stream's shape (scale = 1 -> 8M
/// clicks over 40 270 items).
StreamSpec KosarakLikeSpec(double scale, uint64_t seed = 19);

}  // namespace asketch

#endif  // ASKETCH_WORKLOAD_TRACE_SIMULATORS_H_
