#include "src/workload/zipf.h"

#include <cmath>

namespace asketch {

namespace {

// (exp(x) - 1) / x, numerically stable near 0.
double Helper1(double x) {
  return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1 + x / 2 + x * x / 6;
}

// log(1 + x) / x, numerically stable near 0.
double Helper2(double x) {
  return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1 - x / 2 + x * x / 3;
}

}  // namespace

ZipfDistribution::ZipfDistribution(uint64_t num_elements, double skew)
    : num_elements_(num_elements), skew_(skew) {
  ASKETCH_CHECK(num_elements >= 1);
  ASKETCH_CHECK(skew >= 0);
  if (skew_ > 0) {
    h_integral_x1_ = HIntegral(1.5) - 1;
    h_integral_num_elements_ =
        HIntegral(static_cast<double>(num_elements_) + 0.5);
    s_ = 2 - HIntegralInverse(HIntegral(2.5) - H(2));
  }
}

// H(x) = integral of x^{-skew}: ((x^{1-skew}) - 1)/(1-skew) shifted so the
// expression is stable for skew near 1 (where it tends to log(x)).
double ZipfDistribution::HIntegral(double x) const {
  const double log_x = std::log(x);
  return Helper1((1 - skew_) * log_x) * log_x;
}

double ZipfDistribution::H(double x) const {
  return std::exp(-skew_ * std::log(x));
}

double ZipfDistribution::HIntegralInverse(double x) const {
  double t = x * (1 - skew_);
  if (t < -1) t = -1;  // guard against rounding below the pole
  return std::exp(Helper2(t) * x);
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  if (skew_ == 0) return 1 + rng.NextBounded(num_elements_);
  while (true) {
    const double u =
        h_integral_num_elements_ +
        rng.NextDouble() * (h_integral_x1_ - h_integral_num_elements_);
    const double x = HIntegralInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > num_elements_) {
      k = num_elements_;
    }
    if (static_cast<double>(k) - x <= s_ ||
        u >= HIntegral(static_cast<double>(k) + 0.5) -
                 H(static_cast<double>(k))) {
      return k;
    }
  }
}

double ZipfDistribution::Probability(uint64_t rank) const {
  ASKETCH_CHECK(rank >= 1 && rank <= num_elements_);
  if (normalizer_ == 0) {
    double sum = 0;
    for (uint64_t r = 1; r <= num_elements_; ++r) {
      sum += std::pow(static_cast<double>(r), -skew_);
    }
    normalizer_ = sum;
  }
  return std::pow(static_cast<double>(rank), -skew_) / normalizer_;
}

double ZipfDistribution::TopKMass(uint64_t k) const {
  if (k >= num_elements_) return 1.0;
  if (normalizer_ == 0) {
    Probability(1);  // populate the cached normalizer
  }
  double mass = 0;
  for (uint64_t r = 1; r <= k; ++r) {
    mass += std::pow(static_cast<double>(r), -skew_);
  }
  return mass / normalizer_;
}

}  // namespace asketch
