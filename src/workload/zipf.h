// Zipf-distributed rank sampling.
//
// All of the paper's synthetic experiments draw streams from a Zipf
// distribution over M distinct items with skew z in [0, 3]: rank r has
// probability proportional to r^{-z}. This sampler uses Hörmann's
// rejection-inversion method, which is O(1) per sample for any z > 0 and
// any domain size — no O(M) CDF table, which matters for M = 8M domains.
// z = 0 degenerates to the uniform distribution and is special-cased.

#ifndef ASKETCH_WORKLOAD_ZIPF_H_
#define ASKETCH_WORKLOAD_ZIPF_H_

#include <cstdint>

#include "src/common/check.h"
#include "src/common/random.h"

namespace asketch {

/// Samples ranks in [1, num_elements] with P(r) ∝ r^{-skew}.
class ZipfDistribution {
 public:
  /// Distribution over [1, num_elements] with the given skew (>= 0).
  ZipfDistribution(uint64_t num_elements, double skew);

  /// Draws one rank using `rng`.
  uint64_t Sample(Rng& rng) const;

  uint64_t num_elements() const { return num_elements_; }
  double skew() const { return skew_; }

  /// Exact probability of rank r (computed on demand in O(M) the first
  /// time via the normalization constant; the constant is cached).
  double Probability(uint64_t rank) const;

  /// Fraction of the total probability mass held by the top-k ranks; this
  /// is 1 - filter_selectivity for an ideal k-item filter (§4, Fig. 3).
  double TopKMass(uint64_t k) const;

 private:
  double HIntegral(double x) const;
  double HIntegralInverse(double x) const;
  double H(double x) const;

  uint64_t num_elements_;
  double skew_;
  // Rejection-inversion precomputed constants (unused when skew == 0).
  double h_integral_x1_ = 0;
  double h_integral_num_elements_ = 0;
  double s_ = 0;
  // Cached normalization constant sum_{r=1..M} r^{-z}; computed lazily.
  mutable double normalizer_ = 0;
};

}  // namespace asketch

#endif  // ASKETCH_WORKLOAD_ZIPF_H_
