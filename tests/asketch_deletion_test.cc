// Deletion (negative-count update) semantics — Appendix A of the paper.

#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/asketch.h"
#include "src/workload/exact_counter.h"

namespace asketch {
namespace {

ASketchConfig SmallConfig() {
  ASketchConfig config;
  config.total_bytes = 8 * 1024;
  config.width = 4;
  config.filter_items = 8;
  config.seed = 3;
  return config;
}

TEST(ASketchDeletionTest, FilterAbsorbsWhenSlackSuffices) {
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  as.Update(1, 10);  // filter-resident: new=10, old=0, slack=10
  as.Update(1, -4);
  EXPECT_EQ(as.Estimate(1), 6u);
  // Sketch was never touched.
  EXPECT_EQ(as.sketch().RowSum(0), 0u);
}

TEST(ASketchDeletionTest, ExactDeletionToZero) {
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  as.Update(1, 5);
  as.Update(1, -5);
  EXPECT_EQ(as.Estimate(1), 0u);
}

TEST(ASketchDeletionTest, SplitDeletionSpillsResidualIntoSketch) {
  // Arrange a filter entry with old_count > 0 by forcing an exchange.
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  // Fill the filter with 8 keys of weight 10.
  for (item_t key = 100; key < 108; ++key) as.Update(key, 10);
  // Key 1 goes to the sketch and then gets exchanged in (estimate 20>10).
  as.Update(1, 20);
  ASSERT_GE(as.filter().Find(1), 0);
  const int32_t slot = as.filter().Find(1);
  const count_t old_count = as.filter().OldCount(slot);
  ASSERT_GT(old_count, 0u);  // entered through an exchange
  as.Update(1, 5);  // slack = 5 now
  // Delete 8: slack of 5 absorbed, residual 3 must come out of the sketch.
  as.Update(1, -8);
  const int32_t after = as.filter().Find(1);
  ASSERT_GE(after, 0);
  EXPECT_EQ(as.filter().NewCount(after), as.filter().OldCount(after));
  EXPECT_EQ(as.Estimate(1), 25u - 8u);  // 20 est + 5 hits - 8 deleted
}

TEST(ASketchDeletionTest, UnmonitoredKeyDeletesDirectlyInSketch) {
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  for (item_t key = 100; key < 108; ++key) as.Update(key, 100);
  as.Update(1, 6);   // goes to the sketch (estimate 6 <= min 100)
  as.Update(1, -2);
  EXPECT_EQ(as.Estimate(1), 4u);
}

TEST(ASketchDeletionTest, FilterAbsorbedDeletionAdjustsFilteredWeight) {
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  as.Update(1, 10);  // filter-resident: filtered_weight = 10
  ASSERT_EQ(as.stats().filtered_weight, 10u);
  as.Update(1, -4);
  EXPECT_EQ(as.stats().filtered_weight, 6u);
  EXPECT_EQ(as.stats().sketch_weight, 0u);
}

TEST(ASketchDeletionTest, UnmonitoredDeletionAdjustsSketchWeight) {
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  for (item_t key = 100; key < 108; ++key) as.Update(key, 100);
  as.Update(1, 6);  // goes to the sketch: sketch_weight = 6
  ASSERT_EQ(as.stats().sketch_weight, 6u);
  const wide_count_t filtered = as.stats().filtered_weight;
  as.Update(1, -2);
  EXPECT_EQ(as.stats().sketch_weight, 4u);
  EXPECT_EQ(as.stats().filtered_weight, filtered);
}

TEST(ASketchDeletionTest, SplitDeletionAdjustsBothWeights) {
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  for (item_t key = 100; key < 108; ++key) as.Update(key, 10);
  as.Update(1, 20);  // sketch insert, then exchanged into the filter
  ASSERT_GE(as.filter().Find(1), 0);
  as.Update(1, 5);  // filter hit: slack = 5
  const wide_count_t filtered = as.stats().filtered_weight;
  const wide_count_t sketched = as.stats().sketch_weight;
  // Delete 8: slack of 5 comes out of filtered_weight, residual 3 out of
  // sketch_weight.
  as.Update(1, -8);
  EXPECT_EQ(as.stats().filtered_weight, filtered - 5u);
  EXPECT_EQ(as.stats().sketch_weight, sketched - 3u);
}

TEST(ASketchDeletionTest, OverDeletionClampsWeightsAtZero) {
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  for (item_t key = 100; key < 108; ++key) as.Update(key, 100);
  as.Update(1, 3);  // sketch-resident, sketch_weight grows by 3
  // Delete more than was ever inserted (legal against the sketch as long
  // as the caller accepts the estimate noise): stats must floor at the
  // pre-insert level, not wrap around.
  as.Update(1, -1000);
  EXPECT_LE(as.stats().sketch_weight, 800u);  // 8*100 from the fill keys
  EXPECT_LT(as.stats().sketch_weight,
            wide_count_t{1} << 63);  // no unsigned wraparound
}

TEST(ASketchDeletionTest, InsertDeleteRoundTripRestoresWeights) {
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  for (item_t key = 100; key < 108; ++key) as.Update(key, 10);
  const wide_count_t filtered = as.stats().filtered_weight;
  const wide_count_t sketched = as.stats().sketch_weight;
  as.Update(200, 7);
  as.Update(100, 4);
  as.Update(200, -7);
  as.Update(100, -4);
  EXPECT_EQ(as.stats().filtered_weight, filtered);
  EXPECT_EQ(as.stats().sketch_weight, sketched);
}

TEST(ASketchDeletionTest, NoExchangeOnNegativeUpdates) {
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  for (item_t key = 100; key < 108; ++key) as.Update(key, 10);
  as.Update(1, 50);  // exchange happens (positive update)
  const uint64_t exchanges = as.stats().exchanges;
  as.Update(2, -1);  // deleting an unmonitored key: no exchange
  as.Update(1, -1);  // deleting a monitored key: no exchange
  EXPECT_EQ(as.stats().exchanges, exchanges);
}

using AllFilters = ::testing::Types<VectorFilter, StrictHeapFilter,
                                    RelaxedHeapFilter, StreamSummaryFilter>;

template <typename T>
class ASketchDeletionPropertyTest : public ::testing::Test {};
TYPED_TEST_SUITE(ASketchDeletionPropertyTest, AllFilters);

TYPED_TEST(ASketchDeletionPropertyTest, OneSidedUnderInsertDeleteChurn) {
  auto as = MakeASketchCountMin<TypeParam>(SmallConfig());
  ExactCounter truth(400);
  Rng rng(17);
  std::vector<int64_t> live(400, 0);
  for (int i = 0; i < 40000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(400));
    // Hot head: key 0..3 get extra positive traffic.
    const bool deletion = live[key] > 0 && rng.NextBounded(3) == 0;
    if (deletion) {
      const delta_t amount =
          -static_cast<delta_t>(1 + rng.NextBounded(
                                        static_cast<uint64_t>(live[key])));
      as.Update(key, amount);
      truth.Update(key, amount);
      live[key] += amount;
    } else {
      const delta_t amount = 1 + static_cast<delta_t>(rng.NextBounded(4));
      as.Update(key, amount);
      truth.Update(key, amount);
      live[key] += amount;
    }
  }
  for (item_t key = 0; key < 400; ++key) {
    ASSERT_GE(as.Estimate(key), truth.Count(key)) << "key " << key;
  }
}

TYPED_TEST(ASketchDeletionPropertyTest, DeleteEverythingLeavesZeros) {
  auto as = MakeASketchCountMin<TypeParam>(SmallConfig());
  std::vector<std::pair<item_t, delta_t>> inserted;
  Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(50));
    const delta_t amount = 1 + static_cast<delta_t>(rng.NextBounded(5));
    as.Update(key, amount);
    inserted.push_back({key, amount});
  }
  // Delete in reverse order.
  for (auto it = inserted.rbegin(); it != inserted.rend(); ++it) {
    as.Update(it->first, -it->second);
  }
  // All true counts are zero; estimates must be over-estimates of zero
  // but in this small setting the sketch should also have drained back
  // towards zero for most keys (collisions may leave small residue).
  for (item_t key = 0; key < 50; ++key) {
    EXPECT_GE(as.Estimate(key), 0u);
  }
}

}  // namespace
}  // namespace asketch
