#include "src/core/asketch.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

// ---------------------------------------------------------------------------
// Algorithm-level tests against a transparent sketch double.
// ---------------------------------------------------------------------------

// A deterministic "sketch" with one private cell per key (no collisions):
// estimates are exact sums of what was pushed into it. This exposes
// Algorithm 1's control flow without hash noise.
class TransparentSketch {
 public:
  void Update(item_t key, delta_t delta) {
    counts_[key] = SaturatingAdd(counts_[key], delta);
    log_.push_back({key, delta});
  }
  count_t Estimate(item_t key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }
  size_t MemoryUsageBytes() const { return counts_.size() * 8; }
  void Reset() {
    counts_.clear();
    log_.clear();
  }
  std::string Name() const { return "Transparent"; }

  const std::vector<std::pair<item_t, delta_t>>& log() const { return log_; }

 private:
  std::map<item_t, count_t> counts_;
  std::vector<std::pair<item_t, delta_t>> log_;
};

static_assert(FrequencyEstimatorType<TransparentSketch>);

using TestASketch = ASketch<VectorFilter, TransparentSketch>;

TestASketch MakeTestASketch(uint32_t filter_items) {
  return TestASketch(VectorFilter(filter_items), TransparentSketch());
}

TEST(ASketchAlgorithmTest, FilterAbsorbsUntilFull) {
  TestASketch as = MakeTestASketch(2);
  as.Update(1);
  as.Update(2);
  as.Update(1);
  // Nothing reached the sketch.
  EXPECT_TRUE(as.sketch().log().empty());
  EXPECT_EQ(as.Estimate(1), 2u);
  EXPECT_EQ(as.Estimate(2), 1u);
  EXPECT_EQ(as.stats().filtered_weight, 3u);
  EXPECT_EQ(as.stats().sketch_weight, 0u);
}

TEST(ASketchAlgorithmTest, MissOnFullFilterGoesToSketch) {
  TestASketch as = MakeTestASketch(2);
  as.Update(1, 10);
  as.Update(2, 10);
  as.Update(3, 1);  // estimate 1 <= min 10: no exchange
  ASSERT_EQ(as.sketch().log().size(), 1u);
  EXPECT_EQ(as.sketch().log()[0], (std::pair<item_t, delta_t>{3, 1}));
  EXPECT_EQ(as.stats().exchanges, 0u);
  EXPECT_EQ(as.Estimate(3), 1u);
}

TEST(ASketchAlgorithmTest, ExchangeMovesHotKeyIntoFilter) {
  TestASketch as = MakeTestASketch(2);
  as.Update(1, 10);
  as.Update(2, 3);
  // Key 3 arrives repeatedly; once its sketch estimate exceeds the filter
  // minimum (3), it must displace key 2.
  as.Update(3, 4);  // sketch: 3->4 ; 4 > 3 -> exchange
  EXPECT_EQ(as.stats().exchanges, 1u);
  // Key 2 had new=3, old=0: its 3 exact hits must be written back.
  ASSERT_EQ(as.sketch().log().size(), 2u);
  EXPECT_EQ(as.sketch().log()[1], (std::pair<item_t, delta_t>{2, 3}));
  // Key 3 now answers from the filter with the (over-)estimate 4.
  EXPECT_GE(as.filter().Find(3), 0);
  EXPECT_EQ(as.Estimate(3), 4u);
  // Key 2 now answers from the sketch: exactly its 3 hits.
  EXPECT_EQ(as.Estimate(2), 3u);
}

TEST(ASketchAlgorithmTest, ExchangedKeyCountsExactlyFromThenOn) {
  TestASketch as = MakeTestASketch(1);
  as.Update(1, 5);
  as.Update(2, 6);  // sketch 2->6 > 5 -> exchange; 1's 5 hits -> sketch
  as.Update(2, 7);  // filter hit: new=13, old=6
  EXPECT_EQ(as.Estimate(2), 13u);
  // Evict 2 by making another key hotter; only 13-6=7 goes back.
  as.Update(3, 100);
  const auto& log = as.sketch().log();
  // log: (2,6) initial, (1,5) writeback, (3,100), (2,7) writeback.
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[3], (std::pair<item_t, delta_t>{2, 7}));
  EXPECT_EQ(as.Estimate(2), 13u);  // 6 + 7 in the sketch, still exact
}

TEST(ASketchAlgorithmTest, ZeroDeltaWritebackIsSuppressed) {
  TestASketch as = MakeTestASketch(1);
  as.Update(1, 5);
  as.Update(2, 6);  // exchange #1; writeback (1,5)
  as.Update(1, 7);  // sketch 1 -> 12 > 6 -> exchange #2; 2 has new==old
  EXPECT_EQ(as.stats().exchanges, 2u);
  EXPECT_EQ(as.stats().exchange_writebacks, 1u);
  const auto& log = as.sketch().log();
  // (2,6), (1,5) writeback, (1,7) update — and no (2,0) writeback.
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[2], (std::pair<item_t, delta_t>{1, 7}));
}

TEST(ASketchAlgorithmTest, AtMostOneExchangePerSketchInsertion) {
  TestASketch as = MakeTestASketch(3);
  as.Update(1, 2);
  as.Update(2, 3);
  as.Update(3, 4);
  as.Update(4, 100);  // one exchange, even though 100 > all remaining mins
  EXPECT_EQ(as.stats().exchanges, 1u);
  EXPECT_GE(as.filter().Find(4), 0);
  EXPECT_EQ(as.filter().Find(1), -1);  // the minimum was evicted
  EXPECT_GE(as.filter().Find(2), 0);   // the others stayed
  EXPECT_GE(as.filter().Find(3), 0);
}

// The worked example of Figure 4 (performed on a real Count-Min so the
// cell arithmetic matches the paper's semantics; the concrete hash layout
// differs, but every invariant of the example is checked).
TEST(ASketchAlgorithmTest, Figure4Example) {
  // Filter holds A(new=8, old=2) and B(new=10, old=1); sketch holds what
  // it holds; C arrives with weight 1 and estimate > 8.
  TestASketch primed = MakeTestASketch(2);
  primed.filter().Insert(/*A=*/65, 8, 2);
  primed.filter().Insert(/*B=*/66, 10, 1);
  primed.sketch().Update(/*C=*/67, 8);  // C already has 8 in the sketch
  const size_t log_before = primed.sketch().log().size();

  primed.Update(67, 1);  // (C, 1) arrives

  // C's estimate after update was 9 > min(8) -> exchange happened.
  EXPECT_EQ(primed.stats().exchanges, 1u);
  // C is in the filter with new = old = 9 (nothing removed from sketch).
  const int32_t c_slot = primed.filter().Find(67);
  ASSERT_GE(c_slot, 0);
  EXPECT_EQ(primed.filter().NewCount(c_slot), 9u);
  EXPECT_EQ(primed.filter().OldCount(c_slot), 9u);
  // A was evicted and only its (new-old) = 6 was inserted into the sketch.
  EXPECT_EQ(primed.filter().Find(65), -1);
  const auto& log = primed.sketch().log();
  ASSERT_EQ(log.size(), log_before + 2);  // (C,1) then (A,6)
  EXPECT_EQ(log[log_before], (std::pair<item_t, delta_t>{67, 1}));
  EXPECT_EQ(log[log_before + 1], (std::pair<item_t, delta_t>{65, 6}));
  // B is untouched.
  const int32_t b_slot = primed.filter().Find(66);
  ASSERT_GE(b_slot, 0);
  EXPECT_EQ(primed.filter().NewCount(b_slot), 10u);
  EXPECT_EQ(primed.filter().OldCount(b_slot), 1u);
  // Although A's estimate (10 via its exact cell) now exceeds the filter
  // minimum (9 for C), no second exchange was initiated.
  EXPECT_EQ(primed.stats().exchanges, 1u);
}

// ---------------------------------------------------------------------------
// Property tests on real backends, parameterized over the filter designs.
// ---------------------------------------------------------------------------

template <typename T>
class ASketchFilterTest : public ::testing::Test {};

using AllFilters = ::testing::Types<VectorFilter, StrictHeapFilter,
                                    RelaxedHeapFilter, StreamSummaryFilter>;
TYPED_TEST_SUITE(ASketchFilterTest, AllFilters);

ASketchConfig TestConfig() {
  ASketchConfig config;
  config.total_bytes = 16 * 1024;
  config.width = 4;
  config.filter_items = 16;
  config.seed = 11;
  return config;
}

TYPED_TEST(ASketchFilterTest, NeverUnderestimatesOnStrictStreams) {
  auto as = MakeASketchCountMin<TypeParam>(TestConfig());
  ExactCounter truth(5000);
  StreamSpec spec;
  spec.stream_size = 100000;
  spec.num_distinct = 5000;
  spec.skew = 1.2;
  spec.seed = 23;
  for (const Tuple& t : GenerateStream(spec)) {
    as.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  for (item_t key = 0; key < 5000; ++key) {
    ASSERT_GE(as.Estimate(key), truth.Count(key)) << "key " << key;
  }
}

TYPED_TEST(ASketchFilterTest, SketchInsertionsNeverExceedStreamWeight) {
  // Aggregate form of Lemma 1: total count pushed into the sketch
  // (updates + writebacks) never exceeds the total stream weight.
  auto as = MakeASketchCountMin<TypeParam>(TestConfig());
  StreamSpec spec;
  spec.stream_size = 50000;
  spec.num_distinct = 2000;
  spec.skew = 0.5;
  spec.seed = 31;
  wide_count_t total = 0;
  for (const Tuple& t : GenerateStream(spec)) {
    as.Update(t.key, t.value);
    total += t.value;
  }
  wide_count_t sketch_row_sum = as.sketch().RowSum(0);
  EXPECT_LE(sketch_row_sum, total);
}

TYPED_TEST(ASketchFilterTest, HighSkewKeepsHotKeysExact) {
  auto as = MakeASketchCountMin<TypeParam>(TestConfig());
  ExactCounter truth(100000);
  StreamSpec spec;
  spec.stream_size = 200000;
  spec.num_distinct = 100000;
  spec.skew = 2.0;
  spec.seed = 41;
  std::vector<wide_count_t> counts;
  ZipfStreamGenerator gen(spec);
  for (uint64_t i = 0; i < spec.stream_size; ++i) {
    const Tuple t = gen.Next();
    as.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  // With skew 2.0 the top handful of keys dominates; the very hottest key
  // must sit in the filter with an exact (or near-exact) count.
  const item_t hottest = gen.RankToKey(1);
  EXPECT_GE(as.filter().Find(hottest), 0);
  // Exact if the key entered the filter through a free slot (the common
  // case); at worst it carries the small over-estimate of one exchange.
  EXPECT_GE(as.Estimate(hottest), truth.Count(hottest));
  EXPECT_LE(as.Estimate(hottest),
            truth.Count(hottest) + truth.Total() / 100);
}

TYPED_TEST(ASketchFilterTest, SelectivityDropsAsSkewRises) {
  double previous = 1.1;
  for (const double skew : {0.0, 1.0, 2.0}) {
    auto as = MakeASketchCountMin<TypeParam>(TestConfig());
    StreamSpec spec;
    spec.stream_size = 50000;
    spec.num_distinct = 20000;
    spec.skew = skew;
    spec.seed = 53;
    for (const Tuple& t : GenerateStream(spec)) {
      as.Update(t.key, t.value);
    }
    const double selectivity = as.stats().FilterSelectivity();
    EXPECT_LT(selectivity, previous) << "skew " << skew;
    previous = selectivity;
  }
}

TYPED_TEST(ASketchFilterTest, TopKReportsFilterContentsSortedDescending) {
  auto as = MakeASketchCountMin<TypeParam>(TestConfig());
  StreamSpec spec;
  spec.stream_size = 50000;
  spec.num_distinct = 1000;
  spec.skew = 1.5;
  spec.seed = 61;
  for (const Tuple& t : GenerateStream(spec)) {
    as.Update(t.key, t.value);
  }
  const auto top = as.TopK();
  EXPECT_EQ(top.size(), as.filter().size());
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].new_count, top[i].new_count);
  }
}

TYPED_TEST(ASketchFilterTest, ResetRestoresPristineState) {
  auto as = MakeASketchCountMin<TypeParam>(TestConfig());
  for (int i = 0; i < 1000; ++i) {
    as.Update(static_cast<item_t>(i % 37));
  }
  as.Reset();
  EXPECT_EQ(as.Estimate(1), 0u);
  EXPECT_EQ(as.stats().exchanges, 0u);
  EXPECT_EQ(as.stats().filtered_weight, 0u);
  EXPECT_EQ(as.TopK().size(), 0u);
}

// ---------------------------------------------------------------------------
// Space accounting and the h' = h - s_f/w identity.
// ---------------------------------------------------------------------------

TEST(ASketchSpaceTest, TotalBudgetIsPreserved) {
  ASketchConfig config;
  config.total_bytes = 128 * 1024;
  config.width = 8;
  config.filter_items = 32;
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
  EXPECT_LE(as.MemoryUsageBytes(), config.total_bytes);
  EXPECT_GT(as.MemoryUsageBytes(), config.total_bytes - 64);
  // Same total as the plain 128KB Count-Min it is compared against.
  const CountMin plain(CountMinConfig::FromSpaceBudget(128 * 1024, 8));
  EXPECT_LE(as.MemoryUsageBytes(), plain.MemoryUsageBytes());
}

TEST(ASketchSpaceTest, DepthShrinksToPayForFilter) {
  ASketchConfig config;
  config.total_bytes = 128 * 1024;
  config.width = 8;
  config.filter_items = 32;
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
  const CountMin plain(CountMinConfig::FromSpaceBudget(128 * 1024, 8));
  EXPECT_EQ(as.sketch().width(), plain.width());  // w' = w
  EXPECT_LT(as.sketch().depth(), plain.depth());  // h' < h
  // h' = h - s_f / (w * cell) = 4096 - 384/32 = 4084 — the value the
  // paper's appendix quotes for this configuration.
  EXPECT_EQ(as.sketch().depth(), 4084u);
}

TEST(ASketchSpaceTest, SketchEstimateIsUsedForUnfilteredKeys) {
  ASketchConfig config = TestConfig();
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
  // Fill the filter with hot keys, then query a cold key.
  for (int round = 0; round < 100; ++round) {
    for (item_t key = 0; key < 20; ++key) as.Update(key);
  }
  as.Update(999);
  EXPECT_GE(as.Estimate(999), 1u);
}

TEST(ASketchSpaceTest, NameDescribesComposition) {
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(TestConfig());
  EXPECT_EQ(as.Name(), "ASketch<Relaxed-Heap,CountMin>");
}

}  // namespace
}  // namespace asketch
