// UpdateBatch must be bit-identical to the equivalent sequence of
// Update() calls: same filter contents, same sketch cells (observed via
// Estimate), same exchange decisions, same stats — for every filter and
// sketch backend and for every way of slicing the stream into batches.
// This is the contract that lets the ingestion fast path (SIMD filter
// probe + vectorized bucket hashing + prepared sketch updates) replace
// the scalar loop without changing a single answer.

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/asketch.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

constexpr item_t kKeyUniverse = 700;

ASketchConfig SmallConfig() {
  ASketchConfig config;
  config.total_bytes = 16 * 1024;
  config.width = 4;
  config.filter_items = 16;
  config.seed = 11;
  return config;
}

/// Mixed-weight stream: a skewed base workload with extra random-weight
/// tuples (including zero weights, which Update() skips and UpdateBatch
/// must skip identically) spliced in.
std::vector<Tuple> MakeStream(uint64_t seed, size_t n) {
  StreamSpec spec;
  spec.stream_size = n;
  spec.num_distinct = kKeyUniverse;
  spec.skew = 1.1;
  spec.seed = seed;
  std::vector<Tuple> stream = GenerateStream(spec);
  Rng rng(seed * 77 + 1);
  for (Tuple& t : stream) {
    if (rng.NextBounded(4) == 0) {
      t.value = static_cast<count_t>(rng.NextBounded(6));  // may be 0
    }
  }
  return stream;
}

/// Drives `scalar` tuple-by-tuple and `batched` through UpdateBatch with
/// the given slicing, then asserts observable state is identical:
/// estimates for every key in (and beyond) the universe, top-k, and the
/// full stats block.
template <typename A>
void CheckEquivalence(A scalar, A batched, const std::vector<Tuple>& stream,
                      const std::vector<size_t>& batch_sizes) {
  for (const Tuple& t : stream) {
    scalar.Update(t.key, static_cast<delta_t>(t.value));
  }
  size_t begin = 0;
  size_t size_index = 0;
  while (begin < stream.size()) {
    const size_t want = batch_sizes[size_index++ % batch_sizes.size()];
    const size_t count = std::min(want, stream.size() - begin);
    batched.UpdateBatch(
        std::span<const Tuple>(stream.data() + begin, count));
    begin += count;
  }

  for (item_t key = 0; key < kKeyUniverse + 50; ++key) {
    ASSERT_EQ(scalar.Estimate(key), batched.Estimate(key))
        << "key " << key;
  }
  EXPECT_EQ(scalar.TopK(), batched.TopK());
  EXPECT_EQ(scalar.stats().filtered_weight, batched.stats().filtered_weight);
  EXPECT_EQ(scalar.stats().sketch_weight, batched.stats().sketch_weight);
  EXPECT_EQ(scalar.stats().exchanges, batched.stats().exchanges);
  EXPECT_EQ(scalar.stats().exchange_writebacks,
            batched.stats().exchange_writebacks);
  EXPECT_EQ(scalar.stats().sketch_updates, batched.stats().sketch_updates);
}

/// Batch slicings exercised per backend: single-tuple batches, sizes
/// around the internal chunk width (16), chunk-misaligned primes, large
/// blocks, and a ragged mix.
const std::vector<std::vector<size_t>> kSlicings = {
    {1}, {3}, {16}, {17}, {64}, {1000}, {1, 31, 2, 16, 128, 5}};

template <typename MakeFn>
void RunAllSlicings(MakeFn make) {
  for (size_t s = 0; s < kSlicings.size(); ++s) {
    SCOPED_TRACE("slicing " + std::to_string(s));
    CheckEquivalence(make(), make(), MakeStream(/*seed=*/s + 1, 6000),
                     kSlicings[s]);
  }
}

TEST(BatchEquivalenceTest, VectorFilterCountMin) {
  RunAllSlicings([] {
    return MakeASketchCountMin<VectorFilter>(SmallConfig());
  });
}

TEST(BatchEquivalenceTest, StrictHeapFilterCountMin) {
  RunAllSlicings([] {
    return MakeASketchCountMin<StrictHeapFilter>(SmallConfig());
  });
}

TEST(BatchEquivalenceTest, RelaxedHeapFilterCountMin) {
  RunAllSlicings([] {
    return MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  });
}

TEST(BatchEquivalenceTest, StreamSummaryFilterCountMin) {
  RunAllSlicings([] {
    return MakeASketchCountMin<StreamSummaryFilter>(SmallConfig());
  });
}

TEST(BatchEquivalenceTest, RelaxedHeapFilterFcm) {
  RunAllSlicings([] {
    return MakeASketchFcm<RelaxedHeapFilter>(SmallConfig());
  });
}

TEST(BatchEquivalenceTest, RelaxedHeapFilterCountSketch) {
  RunAllSlicings([] {
    return MakeASketchCountSketch<RelaxedHeapFilter>(SmallConfig());
  });
}

TEST(BatchEquivalenceTest, ConservativeCountMin) {
  // Conservative update's prepared path shares less code with the plain
  // one (UpdateAndEstimateAt has a dedicated branch), so cover it too.
  auto make = [] {
    CountMinConfig cm = CountMinConfig::FromSpaceBudget(12 * 1024, 4, 11);
    cm.policy = CmUpdatePolicy::kConservative;
    RelaxedHeapFilter filter(16);
    return ASketch<RelaxedHeapFilter, CountMin>(std::move(filter),
                                                CountMin(cm));
  };
  for (size_t s = 0; s < kSlicings.size(); ++s) {
    SCOPED_TRACE("slicing " + std::to_string(s));
    CheckEquivalence(make(), make(), MakeStream(/*seed=*/s + 40, 6000),
                     kSlicings[s]);
  }
}

TEST(BatchEquivalenceTest, ExchangesDisabled) {
  auto make = [] {
    auto as = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
    return ASketch<RelaxedHeapFilter, CountMin>(
        std::move(as.filter()), std::move(as.sketch()),
        /*enable_exchanges=*/false);
  };
  CheckEquivalence(make(), make(), MakeStream(/*seed=*/99, 6000),
                   {1, 31, 2, 16, 128, 5});
}

TEST(BatchEquivalenceTest, EmptyAndTinyBatches) {
  auto scalar = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  auto batched = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  batched.UpdateBatch(std::span<const Tuple>{});  // no-op
  const std::vector<Tuple> stream = MakeStream(/*seed=*/7, 100);
  CheckEquivalence(std::move(scalar), std::move(batched), stream, {1});
}

}  // namespace
}  // namespace asketch
