#include "src/common/bit_util.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace asketch {
namespace {

TEST(BitUtilTest, RoundUp) {
  EXPECT_EQ(RoundUp(0, 16), 0u);
  EXPECT_EQ(RoundUp(1, 16), 16u);
  EXPECT_EQ(RoundUp(16, 16), 16u);
  EXPECT_EQ(RoundUp(17, 16), 32u);
  EXPECT_EQ(RoundUp(31, 7), 35u);
}

TEST(BitUtilTest, RoundDown) {
  EXPECT_EQ(RoundDown(0, 16), 0u);
  EXPECT_EQ(RoundDown(15, 16), 0u);
  EXPECT_EQ(RoundDown(16, 16), 16u);
  EXPECT_EQ(RoundDown(33, 16), 32u);
}

TEST(BitUtilTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 40));
  EXPECT_FALSE(IsPowerOfTwo((uint64_t{1} << 40) + 1));
}

TEST(BitUtilTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(4), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(NextPowerOfTwo((uint64_t{1} << 32) + 1), uint64_t{1} << 33);
}

TEST(BitUtilTest, Mix64ProducesDistinctValuesOnSequentialInputs) {
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    seen.insert(Mix64(i));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(BitUtilTest, Mix64IsDeterministic) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(12345), Mix64(12346));
}

TEST(BitUtilTest, Mix64SpreadsBits) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    total_flips += __builtin_popcountll(Mix64(0x1234567890abcdefULL) ^
                                        Mix64(0x1234567890abcdefULL ^
                                              (uint64_t{1} << bit)));
  }
  const double mean_flips = total_flips / 64.0;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

}  // namespace
}  // namespace asketch
