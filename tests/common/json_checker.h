// Minimal strict JSON validator for exporter tests: a recursive-descent
// pass that accepts exactly the RFC 8259 grammar (no trailing commas, no
// comments, no NaN/Infinity literals, one top-level value). It validates
// only — tests that need values grep the raw string — so it stays a
// header with no dependencies.

#ifndef ASKETCH_TESTS_COMMON_JSON_CHECKER_H_
#define ASKETCH_TESTS_COMMON_JSON_CHECKER_H_

#include <cctype>
#include <cstddef>
#include <string_view>

namespace asketch {
namespace testing_support {

class JsonChecker {
 public:
  /// True iff `text` is one valid JSON value with nothing but whitespace
  /// around it.
  static bool Valid(std::string_view text) {
    JsonChecker checker(text);
    checker.SkipWhitespace();
    if (!checker.Value()) return false;
    checker.SkipWhitespace();
    return checker.pos_ == text.size();
  }

 private:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool Value() {
    if (AtEnd()) return false;
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    if (!Consume('{')) return false;
    SkipWhitespace();
    if (Consume('}')) return true;
    while (true) {
      SkipWhitespace();
      if (!String()) return false;
      SkipWhitespace();
      if (!Consume(':')) return false;
      SkipWhitespace();
      if (!Value()) return false;
      SkipWhitespace();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool Array() {
    if (!Consume('[')) return false;
    SkipWhitespace();
    if (Consume(']')) return true;
    while (true) {
      SkipWhitespace();
      if (!Value()) return false;
      SkipWhitespace();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool String() {
    if (!Consume('"')) return false;
    while (true) {
      if (AtEnd()) return false;
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control characters are invalid
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
  }

  bool Digits() {
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return false;
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
    return true;
  }

  bool Number() {
    Consume('-');
    if (AtEnd()) return false;
    if (Peek() == '0') {
      ++pos_;  // leading zero admits no further integer digits
    } else if (!Digits()) {
      return false;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (!Digits()) return false;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (!Digits()) return false;
    }
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace testing_support
}  // namespace asketch

#endif  // ASKETCH_TESTS_COMMON_JSON_CHECKER_H_
