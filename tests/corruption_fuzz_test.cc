// Corruption robustness fuzz: for every serializable summary type, all
// prefix truncations and a seeded schedule of single-bit flips must be
// rejected at the snapshot layer, and the raw defensive readers must
// never crash (run under ASan/UBSan in CI) — a corrupt blob yields
// std::nullopt or a well-formed (if wrong) object, never UB.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/common/snapshot.h"
#include "src/core/asketch.h"
#include "src/core/windowed_asketch.h"
#include "src/filter/heap_filter.h"
#include "src/filter/stream_summary_filter.h"
#include "src/filter/vector_filter.h"
#include "src/sketch/count_min.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/dyadic_count_min.h"
#include "src/sketch/fcm.h"
#include "src/sketch/holistic_udaf.h"
#include "src/sketch/misra_gries.h"
#include "src/sketch/space_saving.h"

namespace asketch {
namespace {

constexpr int kFlipsPerBlob = 160;

/// Shared corruption battery. `seed` makes every flip replayable.
template <typename T>
void ExpectCorruptionRobust(const T& object, uint64_t seed) {
  const std::vector<uint8_t> snapshot = ToSnapshot(object);
  ASSERT_FALSE(snapshot.empty());
  ASSERT_TRUE(FromSnapshot<T>(snapshot.data(), snapshot.size()).has_value());

  // Every prefix truncation of the envelope is rejected.
  for (size_t size = 0; size < snapshot.size(); ++size) {
    EXPECT_FALSE(FromSnapshot<T>(snapshot.data(), size).has_value())
        << "envelope truncated to " << size;
  }

  // Seeded single-bit flips anywhere in the envelope are rejected: the
  // header fields are validated exactly and the payload is CRC-guarded.
  Rng rng(seed);
  for (int i = 0; i < kFlipsPerBlob; ++i) {
    auto corrupted = snapshot;
    const size_t byte = rng.NextBounded(corrupted.size());
    const uint32_t bit = static_cast<uint32_t>(rng.NextBounded(8));
    corrupted[byte] ^= static_cast<uint8_t>(1u << bit);
    EXPECT_FALSE(
        FromSnapshot<T>(corrupted.data(), corrupted.size()).has_value())
        << "flip at byte " << byte << " bit " << bit;
  }

  // The raw (un-enveloped) readers stay defensive: truncations fail
  // cleanly, and bit flips — which CAN yield a wrong-but-well-formed
  // object without a checksum — must never crash or trip a sanitizer.
  BinaryWriter writer;
  ASSERT_TRUE(object.SerializeTo(writer));
  const std::vector<uint8_t>& blob = writer.buffer();
  for (size_t size = 0; size < blob.size(); ++size) {
    BinaryReader reader(blob.data(), size);
    EXPECT_FALSE(T::DeserializeFrom(reader).has_value())
        << "raw blob truncated to " << size;
  }
  for (int i = 0; i < kFlipsPerBlob; ++i) {
    auto corrupted = blob;
    corrupted[rng.NextBounded(corrupted.size())] ^=
        static_cast<uint8_t>(1u << rng.NextBounded(8));
    BinaryReader reader(corrupted.data(), corrupted.size());
    (void)T::DeserializeFrom(reader);
  }
}

TEST(CorruptionFuzzTest, CountMin) {
  CountMin sketch(CountMinConfig::FromSpaceBudget(8192, 4, 11));
  for (item_t key = 0; key < 2000; ++key) sketch.Update(key, key % 5 + 1);
  ExpectCorruptionRobust(sketch, 101);
}

TEST(CorruptionFuzzTest, CountSketch) {
  CountSketch sketch(CountSketchConfig::FromSpaceBudget(8192, 4, 11));
  for (item_t key = 0; key < 2000; ++key) sketch.Update(key, key % 5 + 1);
  ExpectCorruptionRobust(sketch, 102);
}

TEST(CorruptionFuzzTest, Fcm) {
  Fcm sketch(FcmConfig::FromSpaceBudget(8192, 4, 11));
  for (item_t key = 0; key < 2000; ++key) sketch.Update(key, key % 5 + 1);
  ExpectCorruptionRobust(sketch, 103);
}

TEST(CorruptionFuzzTest, MisraGries) {
  MisraGries summary(64);
  for (item_t key = 0; key < 2000; ++key) summary.Update(key % 97, 1);
  ExpectCorruptionRobust(summary, 104);
}

TEST(CorruptionFuzzTest, SpaceSaving) {
  SpaceSaving summary(64);
  for (item_t key = 0; key < 2000; ++key) summary.Update(key % 97, 1);
  ExpectCorruptionRobust(summary, 105);
}

TEST(CorruptionFuzzTest, HolisticUdaf) {
  HolisticUdafConfig config;
  HolisticUdaf udaf(config);
  for (item_t key = 0; key < 2000; ++key) udaf.Update(key % 300, 1);
  ExpectCorruptionRobust(udaf, 106);
}

TEST(CorruptionFuzzTest, DyadicCountMin) {
  DyadicCountMinConfig config;
  config.domain_bits = 16;
  config.total_bytes = 32 * 1024;
  DyadicCountMin sketch(config);
  for (item_t key = 0; key < 2000; ++key) sketch.Update(key % 5000, 1);
  ExpectCorruptionRobust(sketch, 107);
}

TEST(CorruptionFuzzTest, VectorFilter) {
  VectorFilter filter(32);
  for (item_t key = 0; key < 32; ++key) filter.Insert(key, key + 1, key);
  ExpectCorruptionRobust(filter, 108);
}

TEST(CorruptionFuzzTest, StrictHeapFilter) {
  StrictHeapFilter filter(32);
  for (item_t key = 0; key < 32; ++key) filter.Insert(key, key + 1, key);
  ExpectCorruptionRobust(filter, 109);
}

TEST(CorruptionFuzzTest, RelaxedHeapFilter) {
  RelaxedHeapFilter filter(32);
  for (item_t key = 0; key < 32; ++key) filter.Insert(key, key + 1, key);
  ExpectCorruptionRobust(filter, 110);
}

TEST(CorruptionFuzzTest, StreamSummaryFilter) {
  StreamSummaryFilter filter(16);
  for (item_t key = 0; key < 16; ++key) filter.Insert(key, key + 1, key);
  ExpectCorruptionRobust(filter, 111);
}

TEST(CorruptionFuzzTest, ASketch) {
  ASketchConfig config;
  config.total_bytes = 16 * 1024;
  config.width = 4;
  config.filter_items = 32;
  auto sketch = MakeASketchCountMin<RelaxedHeapFilter>(config);
  for (item_t key = 0; key < 5000; ++key) sketch.Update(key % 400, 1);
  ExpectCorruptionRobust(sketch, 112);
}

TEST(CorruptionFuzzTest, WindowedASketch) {
  ASketchConfig config;
  config.total_bytes = 16 * 1024;
  config.width = 4;
  config.filter_items = 32;
  WindowedASketch windowed(/*window_size=*/3000, config);
  for (item_t key = 0; key < 10000; ++key) windowed.Update(key % 400, 1);
  ExpectCorruptionRobust(windowed, 113);
}

}  // namespace
}  // namespace asketch
