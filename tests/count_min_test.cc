#include "src/sketch/count_min.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

CountMinConfig SmallConfig(uint32_t width = 4, uint32_t depth = 256,
                           uint64_t seed = 42) {
  CountMinConfig config;
  config.width = width;
  config.depth = depth;
  config.seed = seed;
  return config;
}

TEST(CountMinConfigTest, ValidatesParameters) {
  CountMinConfig config = SmallConfig();
  EXPECT_FALSE(config.Validate().has_value());
  config.width = 0;
  EXPECT_TRUE(config.Validate().has_value());
  config = SmallConfig();
  config.depth = 0;
  EXPECT_TRUE(config.Validate().has_value());
}

TEST(CountMinConfigTest, RejectsWidthBeyondConservativeBucketBlock) {
  // Regression: the conservative update path stages one bucket per row
  // in a fixed uint32_t[64] block guarded only by a DCHECK, so a
  // width-65 config used to validate fine and overflow the stack in
  // release builds. Validate() must reject it up front.
  CountMinConfig config = SmallConfig();
  config.width = CountMinConfig::kMaxWidth;
  EXPECT_FALSE(config.Validate().has_value());
  config.width = CountMinConfig::kMaxWidth + 1;
  EXPECT_TRUE(config.Validate().has_value());
}

TEST(CountMinConfigTest, FromSpaceBudgetGuardsDegenerateWidth) {
  // Regression: width 0 used to divide by zero (UB); it must clamp to a
  // valid single-row config instead.
  const CountMinConfig config = CountMinConfig::FromSpaceBudget(1024, 0);
  EXPECT_EQ(config.width, 1u);
  EXPECT_FALSE(config.Validate().has_value());
  EXPECT_EQ(config.depth, 256u);  // 1024 B / (1 row * 4 B)
  // Widths beyond the valid range clamp too, so the returned config
  // always passes Validate().
  const CountMinConfig wide = CountMinConfig::FromSpaceBudget(1024, 1000);
  EXPECT_EQ(wide.width, CountMinConfig::kMaxWidth);
  EXPECT_FALSE(wide.Validate().has_value());
}

TEST(CountMinConfigTest, FromSpaceBudgetClampsHugeBudgets) {
  // Regression: the computed depth was truncated size_t -> uint32_t, so
  // a budget over 16 GiB wrapped to a tiny (or zero) depth. It must cap
  // at UINT32_MAX instead. Config-only check: nothing is allocated.
  const size_t kHuge = size_t{1} << 35;  // 32 GiB, depth_raw = 2^33
  const CountMinConfig config = CountMinConfig::FromSpaceBudget(kHuge, 1);
  EXPECT_EQ(config.depth, std::numeric_limits<uint32_t>::max());
  EXPECT_FALSE(config.Validate().has_value());
}

TEST(CountMinConfigTest, FromSpaceBudgetMatchesPaperAccounting) {
  // 128 KB with w = 8 rows of 4-byte cells -> h = 4096 (§7.1 setting).
  const CountMinConfig config =
      CountMinConfig::FromSpaceBudget(128 * 1024, 8);
  EXPECT_EQ(config.width, 8u);
  EXPECT_EQ(config.depth, 4096u);
  const CountMin sketch(config);
  EXPECT_EQ(sketch.MemoryUsageBytes(), 128u * 1024u);
}

TEST(CountMinTest, ExactWhenNoCollisions) {
  CountMin sketch(SmallConfig(4, 4096));
  sketch.Update(1, 10);
  sketch.Update(2, 20);
  // With 2 keys in 4096 cells the chance of a min-destroying collision in
  // all rows is negligible; these should be exact.
  EXPECT_EQ(sketch.Estimate(1), 10u);
  EXPECT_EQ(sketch.Estimate(2), 20u);
  EXPECT_EQ(sketch.Estimate(3), 0u);
}

TEST(CountMinTest, NeverUnderestimatesOnStrictStreams) {
  CountMin sketch(SmallConfig(4, 64));  // tiny: lots of collisions
  ExactCounter truth(1000);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(1000));
    sketch.Update(key);
    truth.Update(key);
  }
  for (item_t key = 0; key < 1000; ++key) {
    EXPECT_GE(sketch.Estimate(key), truth.Count(key)) << "key " << key;
  }
}

TEST(CountMinTest, ErrorBoundHoldsWithHighProbability) {
  // Expected error <= (e/h)·N with probability >= 1 - e^{-w}. Check the
  // empirical violation rate over many keys is well below e^{-w} ≈ 1.8%
  // for w = 4 (allowing slack for test stability).
  const uint32_t h = 512;
  const uint32_t w = 4;
  CountMin sketch(SmallConfig(w, h, 99));
  ExactCounter truth(50000);
  Rng rng(13);
  const uint64_t n = 200000;
  for (uint64_t i = 0; i < n; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(50000));
    sketch.Update(key);
    truth.Update(key);
  }
  const double bound = (2.718281828 / h) * static_cast<double>(n);
  int violations = 0;
  for (item_t key = 0; key < 50000; ++key) {
    const double err = static_cast<double>(sketch.Estimate(key)) -
                       static_cast<double>(truth.Count(key));
    if (err > bound) ++violations;
  }
  EXPECT_LT(violations, 50000 * 0.05);
}

TEST(CountMinTest, DeletionsReverseInsertions) {
  CountMin sketch(SmallConfig());
  sketch.Update(5, 100);
  sketch.Update(5, -40);
  EXPECT_EQ(sketch.Estimate(5), 60u);
  sketch.Update(5, -60);
  EXPECT_EQ(sketch.Estimate(5), 0u);
}

TEST(CountMinTest, DeletionsKeepOneSidedGuarantee) {
  CountMin sketch(SmallConfig(4, 64, 5));
  ExactCounter truth(500);
  Rng rng(11);
  std::vector<int> live(500, 0);
  for (int i = 0; i < 20000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(500));
    if (live[key] > 0 && rng.NextBounded(3) == 0) {
      sketch.Update(key, -1);
      truth.Update(key, -1);
      --live[key];
    } else {
      sketch.Update(key, 1);
      truth.Update(key, 1);
      ++live[key];
    }
  }
  for (item_t key = 0; key < 500; ++key) {
    EXPECT_GE(sketch.Estimate(key), truth.Count(key)) << "key " << key;
  }
}

TEST(CountMinTest, RowSumEqualsStreamWeight) {
  CountMin sketch(SmallConfig(3, 128));
  Rng rng(3);
  wide_count_t total = 0;
  for (int i = 0; i < 5000; ++i) {
    const count_t u = 1 + static_cast<count_t>(rng.NextBounded(5));
    sketch.Update(static_cast<item_t>(rng.NextBounded(10000)), u);
    total += u;
  }
  for (uint32_t row = 0; row < 3; ++row) {
    EXPECT_EQ(sketch.RowSum(row), total);
  }
}

TEST(CountMinTest, ResetZeroesCells) {
  CountMin sketch(SmallConfig());
  sketch.Update(1, 5);
  sketch.Reset();
  EXPECT_EQ(sketch.Estimate(1), 0u);
  for (uint32_t row = 0; row < sketch.width(); ++row) {
    EXPECT_EQ(sketch.RowSum(row), 0u);
  }
}

TEST(CountMinTest, SaturatesInsteadOfWrapping) {
  CountMin sketch(SmallConfig(1, 1));  // all keys share one cell
  sketch.Update(1, ~count_t{0});
  sketch.Update(1, 100);
  EXPECT_EQ(sketch.Estimate(1), ~count_t{0});
  sketch.Update(1, -50);
  EXPECT_EQ(sketch.Estimate(1), ~count_t{0} - 50);
}

TEST(CountMinTest, UpdateAndEstimateMatchesSeparateCalls) {
  CountMin fused(SmallConfig(4, 128, 31));
  CountMin plain(SmallConfig(4, 128, 31));
  Rng rng(41);
  for (int i = 0; i < 20000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(2000));
    const delta_t delta = 1 + static_cast<delta_t>(rng.NextBounded(5));
    const count_t fused_estimate = fused.UpdateAndEstimate(key, delta);
    plain.Update(key, delta);
    ASSERT_EQ(fused_estimate, plain.Estimate(key)) << "step " << i;
  }
  for (item_t key = 0; key < 2000; ++key) {
    ASSERT_EQ(fused.Estimate(key), plain.Estimate(key));
  }
}

TEST(CountMinTest, UpdateAndEstimateConservativePolicy) {
  CountMinConfig config = SmallConfig(4, 128, 31);
  config.policy = CmUpdatePolicy::kConservative;
  CountMin fused(config);
  CountMin plain(config);
  Rng rng(43);
  for (int i = 0; i < 10000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(1000));
    const count_t fused_estimate = fused.UpdateAndEstimate(key, 1);
    plain.Update(key, 1);
    ASSERT_EQ(fused_estimate, plain.Estimate(key)) << "step " << i;
  }
}

TEST(CountMinTest, AdoptFromCarriesUpdatePolicy) {
  // AdoptFrom copies the donor's update policy along with its cells: a
  // --recover-style re-adoption of a conservative-policy snapshot into a
  // plain-policy instance must continue updating conservatively (and
  // vice versa), or estimates drift from the recovered lineage.
  CountMinConfig plain_config = SmallConfig(4, 128, 21);
  CountMinConfig cons_config = plain_config;
  cons_config.policy = CmUpdatePolicy::kConservative;

  CountMin donor(cons_config);
  CountMin reference(cons_config);
  Rng rng(29);
  std::vector<Tuple> prefix;
  for (int i = 0; i < 20000; ++i) {
    prefix.push_back(Tuple{static_cast<item_t>(rng.NextBounded(1000)), 1});
  }
  for (const Tuple& t : prefix) {
    donor.Update(t.key, t.value);
    reference.Update(t.key, t.value);
  }

  CountMin adopted(plain_config);  // plain policy before the adoption
  ASSERT_TRUE(adopted.CanAdoptFrom(donor));
  adopted.AdoptFrom(std::move(donor));
  EXPECT_EQ(adopted.config().policy, CmUpdatePolicy::kConservative);

  // Post-adoption updates must follow the adopted (conservative) policy:
  // bit-identical estimates to a sketch that was conservative all along.
  std::vector<Tuple> suffix;
  for (int i = 0; i < 20000; ++i) {
    suffix.push_back(Tuple{static_cast<item_t>(rng.NextBounded(1000)), 1});
  }
  for (const Tuple& t : suffix) {
    adopted.Update(t.key, t.value);
    reference.Update(t.key, t.value);
  }
  for (item_t key = 0; key < 1000; ++key) {
    ASSERT_EQ(adopted.Estimate(key), reference.Estimate(key))
        << "key " << key;
  }
}

TEST(CountMinConservativeTest, AtLeastAsAccurateAsPlain) {
  CountMinConfig plain_config = SmallConfig(4, 128, 21);
  CountMinConfig cons_config = plain_config;
  cons_config.policy = CmUpdatePolicy::kConservative;
  CountMin plain(plain_config);
  CountMin conservative(cons_config);
  ExactCounter truth(2000);
  StreamSpec spec;
  spec.stream_size = 50000;
  spec.num_distinct = 2000;
  spec.skew = 1.2;
  for (const Tuple& t : GenerateStream(spec)) {
    plain.Update(t.key, t.value);
    conservative.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  wide_count_t plain_error = 0, cons_error = 0;
  for (item_t key = 0; key < 2000; ++key) {
    ASSERT_GE(conservative.Estimate(key), truth.Count(key));
    ASSERT_LE(conservative.Estimate(key), plain.Estimate(key));
    plain_error += plain.Estimate(key) - truth.Count(key);
    cons_error += conservative.Estimate(key) - truth.Count(key);
  }
  EXPECT_LE(cons_error, plain_error);
}

}  // namespace
}  // namespace asketch
