#include "src/sketch/count_sketch.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/workload/exact_counter.h"

namespace asketch {
namespace {

CountSketchConfig SmallConfig(uint32_t width = 5, uint32_t depth = 256,
                              uint64_t seed = 42) {
  CountSketchConfig config;
  config.width = width;
  config.depth = depth;
  config.seed = seed;
  return config;
}

TEST(CountSketchConfigTest, ValidatesParameters) {
  CountSketchConfig config = SmallConfig();
  EXPECT_FALSE(config.Validate().has_value());
  config.width = 0;
  EXPECT_TRUE(config.Validate().has_value());
}

TEST(CountSketchConfigTest, FromSpaceBudget) {
  const CountSketchConfig config =
      CountSketchConfig::FromSpaceBudget(128 * 1024, 8);
  EXPECT_EQ(config.depth, 4096u);
  EXPECT_EQ(CountSketch(config).MemoryUsageBytes(), 128u * 1024u);
}

TEST(CountSketchTest, ExactWhenNoCollisions) {
  CountSketch sketch(SmallConfig(5, 4096));
  sketch.Update(1, 10);
  sketch.Update(2, 20);
  EXPECT_EQ(sketch.Estimate(1), 10u);
  EXPECT_EQ(sketch.Estimate(2), 20u);
  EXPECT_EQ(sketch.Estimate(3), 0u);
}

TEST(CountSketchTest, DeletionsReverseInsertions) {
  CountSketch sketch(SmallConfig());
  sketch.Update(5, 100);
  sketch.Update(5, -40);
  EXPECT_EQ(sketch.Estimate(5), 60u);
}

TEST(CountSketchTest, ErrorIsTwoSidedButSmallOnAverage) {
  CountSketch sketch(SmallConfig(5, 256, 17));
  ExactCounter truth(5000);
  Rng rng(23);
  const uint64_t n = 100000;
  for (uint64_t i = 0; i < n; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(5000));
    sketch.Update(key);
    truth.Update(key);
  }
  // Count Sketch error bound: |err| <= O(sqrt(F2)/sqrt(h)) w.h.p.; for a
  // uniform stream F2 = M·(N/M)^2. Allow a generous constant.
  double f2 = 0;
  for (item_t key = 0; key < 5000; ++key) {
    f2 += std::pow(static_cast<double>(truth.Count(key)), 2);
  }
  const double bound = 8 * std::sqrt(f2 / 256);
  int violations = 0;
  for (item_t key = 0; key < 5000; ++key) {
    const double err =
        std::abs(static_cast<double>(sketch.Estimate(key)) -
                 static_cast<double>(truth.Count(key)));
    if (err > bound) ++violations;
  }
  EXPECT_LT(violations, 50);
}

TEST(CountSketchTest, HeavyItemDominatesItsNoise) {
  CountSketch sketch(SmallConfig(5, 512, 3));
  Rng rng(5);
  sketch.Update(7, 100000);
  for (int i = 0; i < 10000; ++i) {
    sketch.Update(static_cast<item_t>(10 + rng.NextBounded(1000)));
  }
  const double est = static_cast<double>(sketch.Estimate(7));
  EXPECT_NEAR(est, 100000.0, 2000.0);
}

TEST(CountSketchTest, ResetZeroesEverything) {
  CountSketch sketch(SmallConfig());
  sketch.Update(1, 500);
  sketch.Reset();
  EXPECT_EQ(sketch.Estimate(1), 0u);
}

TEST(CountSketchTest, NegativeMedianClampsToZero) {
  CountSketch sketch(SmallConfig(1, 4, 1));
  // With one row, another key's negative-signed traffic can drive the
  // queried key's reading negative; Estimate must clamp at 0.
  for (item_t key = 0; key < 64; ++key) {
    sketch.Update(key, 100);
  }
  for (item_t key = 0; key < 64; ++key) {
    // count_t is unsigned; a negative median must come back as 0, never
    // as a huge wrapped value.
    EXPECT_LT(sketch.Estimate(key), 100000u);
  }
}

TEST(CountSketchTest, UpdateAndEstimateMatchesSeparateCalls) {
  CountSketch fused(SmallConfig(5, 128, 61));
  CountSketch plain(SmallConfig(5, 128, 61));
  Rng rng(53);
  for (int i = 0; i < 20000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(2000));
    const count_t fused_estimate = fused.UpdateAndEstimate(key, 1);
    plain.Update(key, 1);
    ASSERT_EQ(fused_estimate, plain.Estimate(key)) << "step " << i;
  }
}

TEST(CountSketchTest, WidthOneAndTwoWork) {
  for (uint32_t width : {1u, 2u}) {
    CountSketch sketch(SmallConfig(width, 4096, 9));
    sketch.Update(1, 42);
    EXPECT_EQ(sketch.Estimate(1), 42u) << "width " << width;
  }
}

}  // namespace
}  // namespace asketch
