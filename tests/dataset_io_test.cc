#include "src/workload/dataset_io.h"

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(DatasetIoTest, RoundTripsAStream) {
  StreamSpec spec;
  spec.stream_size = 5000;
  spec.num_distinct = 100;
  spec.skew = 1.0;
  const std::vector<Tuple> original = GenerateStream(spec);
  const std::string path = TempPath("roundtrip.ask");
  ASSERT_FALSE(WriteStreamFile(path, original).has_value());
  std::vector<Tuple> loaded;
  ASSERT_FALSE(ReadStreamFile(path, &loaded).has_value());
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(loaded[i], original[i]);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RoundTripsEmptyStream) {
  const std::string path = TempPath("empty.ask");
  ASSERT_FALSE(WriteStreamFile(path, {}).has_value());
  std::vector<Tuple> loaded = {{1, 1}};
  ASSERT_FALSE(ReadStreamFile(path, &loaded).has_value());
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileReportsError) {
  std::vector<Tuple> loaded;
  const auto error = ReadStreamFile(TempPath("nonexistent.ask"), &loaded);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("cannot open"), std::string::npos);
}

TEST(DatasetIoTest, BadMagicReportsError) {
  const std::string path = TempPath("garbage.ask");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[32] = "this is not a stream file";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  std::vector<Tuple> loaded;
  const auto error = ReadStreamFile(path, &loaded);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("bad magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, TruncatedFileReportsError) {
  StreamSpec spec;
  spec.stream_size = 100;
  spec.num_distinct = 10;
  const std::vector<Tuple> original = GenerateStream(spec);
  const std::string path = TempPath("truncated.ask");
  ASSERT_FALSE(WriteStreamFile(path, original).has_value());
  // Truncate the file to cut off half the tuples.
  ASSERT_EQ(truncate(path.c_str(), 16 + 100 * 4), 0);
  std::vector<Tuple> loaded;
  const auto error = ReadStreamFile(path, &loaded);
  ASSERT_TRUE(error.has_value());
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace asketch
