// Merge laws of the delta-ingest path (src/core/delta_batch.h,
// ASketch::ApplyDelta): a DeltaBatch folded into an owner ASketch must
// behave like the serial application of the same tuples — bit-identical
// estimates for CountMin under a stable head, one-sided with bounded
// inflation for SalsaCountMin (whose bucket-saturating merge reorders
// saturation) — and stay one-sided under every head-drift race the
// advisory snapshot allows (eviction of a snapshot member, admission of
// a tail key).

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/asketch.h"
#include "src/core/delta_batch.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

constexpr uint32_t kFilterItems = 16;
constexpr uint32_t kDomain = 4096;

ASketchConfig SmallConfig() {
  ASketchConfig config;
  config.total_bytes = 32 * 1024;
  config.width = 4;
  config.filter_items = kFilterItems;
  config.seed = 99;
  return config;
}

/// Fills the filter with keys [0, kFilterItems) at weights large enough
/// that no later tail estimate can win an exchange — the "stable head"
/// regime, where the head snapshot and the live filter agree for the
/// whole delta epoch.
template <typename SketchT>
void WarmHead(ASketch<RelaxedHeapFilter, SketchT>& sketch) {
  for (item_t key = 0; key < kFilterItems; ++key) {
    sketch.Update(key, 1 << 20);
  }
  ASSERT_TRUE(sketch.filter().Full());
}

/// A mixed workload: hot traffic on the head keys, a zipf tail on
/// [kFilterItems, kDomain).
std::vector<Tuple> MixedStream(uint64_t seed) {
  StreamSpec spec;
  spec.stream_size = 20000;
  spec.num_distinct = kDomain - kFilterItems;
  spec.skew = 1.1;
  spec.seed = seed;
  std::vector<Tuple> stream = GenerateStream(spec);
  for (size_t i = 0; i < stream.size(); ++i) {
    if (i % 3 == 0) {
      stream[i] = Tuple{static_cast<item_t>(i % kFilterItems), 2};
    } else {
      stream[i].key += kFilterItems;
    }
  }
  return stream;
}

TEST(DeltaBatchTest, EmptyDeltaIsANoOp) {
  auto sketch = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  WarmHead(sketch);
  BinaryWriter before;
  ASSERT_TRUE(sketch.SerializeTo(before));
  DeltaBatch<CountMin> delta = sketch.MakeDeltaBatch();
  EXPECT_TRUE(delta.Empty());
  EXPECT_FALSE(sketch.ApplyDelta(delta).has_value());
  BinaryWriter after;
  ASSERT_TRUE(sketch.SerializeTo(after));
  EXPECT_EQ(before.buffer(), after.buffer());
}

TEST(DeltaBatchTest, SingleHeadKeyAggregatesExactly) {
  auto serial = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  auto merged = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  WarmHead(serial);
  WarmHead(merged);
  DeltaBatch<CountMin> delta = merged.MakeDeltaBatch();
  for (int i = 0; i < 1000; ++i) {
    serial.Update(3, 5);
    delta.Add(3, 5);
  }
  EXPECT_EQ(delta.head_weight(), 5000u);
  EXPECT_EQ(delta.tail_weight(), 0u);
  ASSERT_FALSE(merged.ApplyDelta(delta).has_value());
  EXPECT_EQ(merged.Estimate(3), serial.Estimate(3));
  EXPECT_EQ(merged.stats().filtered_weight, serial.stats().filtered_weight);
}

/// A snapshot-only delta (first-touch claiming disabled) against the
/// given sketch's filter contents — the routing the head-drift tests
/// below need to pin: every non-snapshot key goes to the tail sketch.
template <typename SketchT>
DeltaBatch<SketchT> SnapshotOnlyDelta(
    const ASketch<RelaxedHeapFilter, SketchT>& sketch) {
  std::vector<FilterEntry> entries;
  sketch.filter().SnapshotEntries(&entries);
  std::vector<item_t> keys;
  for (const FilterEntry& e : entries) keys.push_back(e.key);
  return DeltaBatch<SketchT>(keys, SketchT(sketch.sketch().config()),
                             sketch.filter().capacity(),
                             /*head_slots=*/0);
}

TEST(DeltaBatchTest, SingleTailKeyLandsInTheSketch) {
  auto serial = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  auto merged = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  WarmHead(serial);
  WarmHead(merged);
  DeltaBatch<CountMin> delta = SnapshotOnlyDelta(merged);
  const item_t key = kFilterItems + 7;
  serial.Update(key, 42);
  delta.Add(key, 42);
  EXPECT_EQ(delta.tail_weight(), 42u);
  ASSERT_FALSE(merged.ApplyDelta(delta).has_value());
  EXPECT_EQ(merged.Estimate(key), serial.Estimate(key));
  EXPECT_EQ(merged.stats().sketch_weight, serial.stats().sketch_weight);
  EXPECT_EQ(merged.stats().sketch_updates, serial.stats().sketch_updates);
}

// With claiming enabled (the default), a repeating non-filter key takes
// a free head slot on first touch and aggregates exactly: no tail mass,
// one owner-side sketch update carrying the whole epoch aggregate —
// identical cell sums to serial ingest under the plain CountMin policy.
TEST(DeltaBatchTest, FirstTouchClaimAggregatesExactly) {
  auto serial = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  auto merged = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  WarmHead(serial);
  WarmHead(merged);
  DeltaBatch<CountMin> delta = merged.MakeDeltaBatch();
  const item_t key = kFilterItems + 7;
  for (int i = 0; i < 100; ++i) {
    serial.Update(key, 3);
    delta.Add(key, 3);
  }
  EXPECT_EQ(delta.head_weight(), 300u);
  EXPECT_EQ(delta.tail_weight(), 0u) << "claim did not aggregate";
  ASSERT_FALSE(merged.ApplyDelta(delta).has_value());
  EXPECT_EQ(merged.Estimate(key), serial.Estimate(key));
  EXPECT_EQ(merged.stats().sketch_weight, serial.stats().sketch_weight);
  // One aggregate update replaced 100 per-arrival updates.
  EXPECT_EQ(merged.stats().sketch_updates, 1u);
  for (uint32_t row = 0; row < merged.sketch().width(); ++row) {
    EXPECT_EQ(merged.sketch().RowSum(row), serial.sketch().RowSum(row));
  }
}

// A claimed key that finds a free filter slot at apply time is admitted
// with its exact epoch aggregate as (new = W, old = 0): the mass never
// touched the sketch, so the full W is eviction-writeback slack.
TEST(DeltaBatchTest, ClaimedKeyAdmittedToFreeSlotKeepsExactSlack) {
  auto sketch = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  ASSERT_FALSE(sketch.filter().Full());
  DeltaBatch<CountMin> delta = sketch.MakeDeltaBatch();
  delta.Add(777, 29);
  EXPECT_EQ(delta.tail_weight(), 0u);
  ASSERT_FALSE(sketch.ApplyDelta(delta).has_value());
  const int32_t slot = sketch.filter().Find(777);
  ASSERT_GE(slot, 0) << "claimed key should warm the cold filter";
  EXPECT_EQ(sketch.filter().NewCount(slot), 29u);
  EXPECT_EQ(sketch.filter().OldCount(slot), 0u);
  EXPECT_EQ(sketch.Estimate(777), 29u);
}

// The tentpole's equivalence bar: with a stable head, delta-merge ingest
// over CountMin is indistinguishable from serial per-tuple ingest —
// estimate-for-estimate over the whole domain, stat-for-stat, and
// cell-mass-for-cell-mass per sketch row.
TEST(DeltaBatchTest, StableHeadCountMinMatchesSerialApplyBitForBit) {
  auto serial = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  auto merged = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  WarmHead(serial);
  WarmHead(merged);
  const std::vector<Tuple> stream = MixedStream(17);
  for (const Tuple& t : stream) {
    serial.Update(t.key, static_cast<delta_t>(t.value));
  }
  DeltaBatch<CountMin> delta = merged.MakeDeltaBatch();
  delta.AddBatch(stream);
  ASSERT_FALSE(merged.ApplyDelta(delta).has_value());

  EXPECT_EQ(serial.stats().exchanges, 0u) << "stable-head premise broken";
  EXPECT_EQ(merged.stats().filtered_weight, serial.stats().filtered_weight);
  EXPECT_EQ(merged.stats().sketch_weight, serial.stats().sketch_weight);
  // First-touch claims turn per-arrival tail updates into one aggregate
  // update per claimed key, so the delta side performs FEWER update
  // operations for the same cell mass (checked row-for-row below).
  EXPECT_LE(merged.stats().sketch_updates, serial.stats().sketch_updates);
  EXPECT_EQ(merged.stats().exchanges, serial.stats().exchanges);
  for (uint32_t row = 0; row < merged.sketch().width(); ++row) {
    EXPECT_EQ(merged.sketch().RowSum(row), serial.sketch().RowSum(row));
  }
  for (item_t key = 0; key < kDomain; ++key) {
    ASSERT_EQ(merged.Estimate(key), serial.Estimate(key)) << "key " << key;
  }
}

// SalsaCountMin's MergeFrom raises each bucket to at least the sum of
// both readings, so delta-merge reorders bucket saturation: estimates
// stay one-sided but may inflate relative to serial ingest. The test
// pins both properties — never below truth, inflation within a small
// multiple of the serial backend's own error.
TEST(DeltaBatchTest, SalsaDeltaMergeIsOneSidedWithBoundedInflation) {
  auto serial = MakeASketchSalsa<RelaxedHeapFilter>(SmallConfig());
  auto merged = MakeASketchSalsa<RelaxedHeapFilter>(SmallConfig());
  WarmHead(serial);
  WarmHead(merged);
  ExactCounter truth(kDomain);
  for (item_t key = 0; key < kFilterItems; ++key) truth.Update(key, 1 << 20);
  const std::vector<Tuple> stream = MixedStream(23);
  for (const Tuple& t : stream) {
    truth.Update(t.key, static_cast<delta_t>(t.value));
    serial.Update(t.key, static_cast<delta_t>(t.value));
  }
  DeltaBatch<SalsaCountMin> delta = merged.MakeDeltaBatch();
  delta.AddBatch(stream);
  ASSERT_FALSE(merged.ApplyDelta(delta).has_value());

  uint64_t serial_error = 0;
  uint64_t merged_error = 0;
  for (item_t key = 0; key < kDomain; ++key) {
    const wide_count_t exact = truth.Count(key);
    ASSERT_GE(merged.Estimate(key), exact) << "key " << key;
    serial_error += serial.Estimate(key) - exact;
    merged_error += merged.Estimate(key) - exact;
  }
  // Bounded inflation: the reordered saturation may cost accuracy, but
  // not more than a small multiple of the serial error (plus slack for
  // a serial run that happens to be near-exact).
  EXPECT_LE(merged_error, 4 * serial_error + 64 * kDomain);
}

// Head drift race 1: a key in the delta's head snapshot is evicted by
// an exchange before the delta lands. Its exact aggregate must re-enter
// through the normal miss path and stay one-sided.
TEST(DeltaBatchTest, EvictionDuringMergeStaysOneSided) {
  auto sketch = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  ExactCounter truth(kDomain);
  // Modest head counts, so later traffic CAN win exchanges.
  for (item_t key = 0; key < kFilterItems; ++key) {
    sketch.Update(key, 3);
    truth.Update(key, 3);
  }
  DeltaBatch<CountMin> delta = sketch.MakeDeltaBatch();
  ASSERT_TRUE(delta.HeadContains(2));
  delta.Add(2, 10);
  truth.Update(2, 10);
  // Heavy traffic on fresh keys evicts (at least some of) the original
  // head while the delta is open.
  for (item_t key = kFilterItems; key < kFilterItems + 64; ++key) {
    for (int repeat = 0; repeat < 50; ++repeat) {
      sketch.Update(key, 1);
      truth.Update(key, 1);
    }
  }
  EXPECT_GT(sketch.stats().exchanges, 0u) << "eviction premise broken";
  ASSERT_FALSE(sketch.ApplyDelta(delta).has_value());
  for (item_t key = 0; key < kFilterItems + 64; ++key) {
    ASSERT_GE(static_cast<wide_count_t>(sketch.Estimate(key)),
              truth.Count(key))
        << "key " << key;
  }
}

// Head drift race 2: a key that was tail at epoch start becomes
// filter-resident before the delta lands. Its tail mass merges into
// sketch cells while queries answer from the filter — the inflation
// pass must raise the filter entry so the answer stays one-sided.
TEST(DeltaBatchTest, LateFilterAdmissionGetsInflated) {
  auto sketch = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  // Leave the filter with exactly one free slot, then open the epoch.
  for (item_t key = 0; key + 1 < kFilterItems; ++key) {
    sketch.Update(key, 1 << 20);
  }
  ASSERT_FALSE(sketch.filter().Full());
  DeltaBatch<CountMin> delta = SnapshotOnlyDelta(sketch);
  const item_t late = 777;
  ASSERT_FALSE(delta.HeadContains(late));
  delta.Add(late, 25);  // tail mass, headed for the sketch cells
  sketch.Update(late, 4);  // admitted to the free slot mid-epoch
  ASSERT_GE(sketch.filter().Find(late), 0);
  ASSERT_FALSE(sketch.ApplyDelta(delta).has_value());
  // 29 true occurrences; the filter must answer at least that.
  EXPECT_GE(sketch.Estimate(late), 29u);
  // The raise went into both counters: the exact slack (new - old) must
  // still be the 4 filter-era hits, not the sketch-held 25.
  const int32_t slot = sketch.filter().Find(late);
  ASSERT_GE(slot, 0);
  EXPECT_EQ(sketch.filter().NewCount(slot) - sketch.filter().OldCount(slot),
            4u);
}

// Deltas carry their backend's sketch geometry; folding a delta built
// from a differently-shaped sketch must fail cleanly, not corrupt.
TEST(DeltaBatchTest, GeometryMismatchIsRejected) {
  auto sketch = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  ASketchConfig other_config = SmallConfig();
  other_config.total_bytes = 16 * 1024;
  auto other = MakeASketchCountMin<RelaxedHeapFilter>(other_config);
  DeltaBatch<CountMin> delta = other.MakeDeltaBatch();
  delta.Add(1, 1);
  EXPECT_TRUE(sketch.ApplyDelta(delta).has_value());
}

}  // namespace
}  // namespace asketch
