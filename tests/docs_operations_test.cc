// Pins the metric reference table in docs/OPERATIONS.md against the
// live registry: every family the instrumented code registers must be
// documented with the correct type, and every documented family must
// exist. A metric added, removed, or re-typed without updating the doc
// fails here, so the operator documentation cannot drift silently —
// the companion of net_protocol_test's PROTOCOL.md pinning.

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/spmd_group.h"
#include "src/net/net_metrics.h"
#include "src/obs/core_metrics.h"
#include "src/obs/metrics.h"

namespace asketch {
namespace {

std::string ReadOperationsDoc() {
  const std::string path =
      std::string(ASKETCH_REPO_ROOT) + "/docs/OPERATIONS.md";
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string text;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return text;
}

/// Parses `| \`name\` | type | ...` rows between the metrics-table
/// markers into name -> type.
std::map<std::string, std::string> DocumentedMetrics(
    const std::string& doc) {
  std::map<std::string, std::string> metrics;
  const size_t begin = doc.find("<!-- metrics-table-begin -->");
  const size_t end = doc.find("<!-- metrics-table-end -->");
  if (begin == std::string::npos || end == std::string::npos) {
    return metrics;
  }
  size_t pos = begin;
  while (pos < end) {
    const size_t eol = doc.find('\n', pos);
    const std::string line = doc.substr(pos, eol - pos);
    pos = eol == std::string::npos ? end : eol + 1;
    // Row shape: | `asketch_...` | counter | meaning |
    if (line.rfind("| `asketch_", 0) != 0) continue;
    const size_t name_end = line.find('`', 3);
    if (name_end == std::string::npos) continue;
    const std::string name = line.substr(3, name_end - 3);
    const size_t type_begin = line.find("| ", name_end);
    if (type_begin == std::string::npos) continue;
    const size_t type_end = line.find(' ', type_begin + 2);
    if (type_end == std::string::npos) continue;
    metrics[name] = line.substr(type_begin + 2, type_end - type_begin - 2);
  }
  return metrics;
}

/// Touches every instrumented subsystem so all lazily-registered
/// families exist, then snapshots the global registry as name -> type.
std::map<std::string, std::string> LiveMetrics() {
  obs::IngestMetrics::Get();
  obs::PipelineMetrics::Get();
  obs::SalsaMetrics::Get();
  obs::SnapshotMetrics::Get();
  net::NetMetrics::Get();
  // The SPMD families register inside Process() worker threads.
  ASketchConfig config;
  config.total_bytes = 16 * 1024;
  config.width = 4;
  config.filter_items = 16;
  SpmdAsketchGroup group(1, config);
  const std::vector<Tuple> stream{{1, 1}, {2, 1}};
  group.Process(stream);

  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Collect();
  std::map<std::string, std::string> metrics;
  for (const auto& counter : snapshot.counters) {
    metrics[counter.name] = "counter";
  }
  for (const auto& gauge : snapshot.gauges) {
    metrics[gauge.name] = "gauge";
  }
  for (const auto& histogram : snapshot.histograms) {
    metrics[histogram.name] = "histogram";
  }
  return metrics;
}

TEST(OperationsDoc, MetricTableMatchesLiveRegistry) {
  if (!obs::TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  const std::string doc = ReadOperationsDoc();
  ASSERT_FALSE(doc.empty()) << "docs/OPERATIONS.md missing";
  const auto documented = DocumentedMetrics(doc);
  ASSERT_FALSE(documented.empty())
      << "docs/OPERATIONS.md metrics-table markers missing or empty";
  const auto live = LiveMetrics();
  ASSERT_FALSE(live.empty());

  for (const auto& [name, type] : live) {
    const auto it = documented.find(name);
    if (it == documented.end()) {
      ADD_FAILURE() << "metric `" << name
                    << "` is registered but not documented in "
                       "docs/OPERATIONS.md";
    } else {
      EXPECT_EQ(it->second, type)
          << "docs/OPERATIONS.md documents `" << name << "` as "
          << it->second << " but the registry exposes a " << type;
    }
  }
  for (const auto& [name, type] : documented) {
    EXPECT_TRUE(live.count(name) != 0)
        << "docs/OPERATIONS.md documents `" << name
        << "` (" << type << ") but no such metric is registered";
  }
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string text;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return text;
}

/// Flags asketchd's argv parser accepts, scraped from the
/// `arg == "--name"` comparisons in tools/asketchd.cc.
std::set<std::string> ParsedServerFlags() {
  const std::string source =
      ReadFile(std::string(ASKETCH_REPO_ROOT) + "/tools/asketchd.cc");
  std::set<std::string> flags;
  const std::string needle = "arg == \"--";
  size_t pos = 0;
  while ((pos = source.find(needle, pos)) != std::string::npos) {
    const size_t begin = pos + needle.size() - 2;  // keep the leading --
    const size_t end = source.find('"', begin);
    if (end == std::string::npos) break;
    flags.insert(source.substr(begin, end - begin));
    pos = end;
  }
  return flags;
}

/// Flags documented in OPERATIONS.md's server flag table — the rows
/// shaped `| \`--name ARG\` | default | meaning |` under "## Running"
/// (OPERATIONS.md documents other tools' flags in later sections; those
/// are out of scope here).
std::set<std::string> DocumentedServerFlags(const std::string& doc) {
  std::set<std::string> flags;
  size_t pos = doc.find("## Running");
  const size_t section_end =
      pos == std::string::npos ? std::string::npos : doc.find("###", pos);
  while (pos != std::string::npos &&
         (pos = doc.find("| `--", pos)) != std::string::npos) {
    if (pos >= section_end) break;
    const size_t begin = pos + 3;  // past "| `"
    size_t end = begin;
    while (end < doc.size() && doc[end] != ' ' && doc[end] != '`') ++end;
    flags.insert(doc.substr(begin, end - begin));
    pos = end;
  }
  return flags;
}

// The flag-table companion of the metric pinning above, fail-closed in
// both directions: every flag asketchd's parser accepts must have a row
// in the server flag table, and every row must name a flag the parser
// still accepts.
TEST(OperationsDoc, FlagTableMatchesServerParser) {
  const std::string doc = ReadOperationsDoc();
  ASSERT_FALSE(doc.empty()) << "docs/OPERATIONS.md missing";
  const std::set<std::string> parsed = ParsedServerFlags();
  ASSERT_FALSE(parsed.empty())
      << "could not scrape flags from tools/asketchd.cc";
  const std::set<std::string> documented = DocumentedServerFlags(doc);
  ASSERT_FALSE(documented.empty())
      << "server flag table not found under '## Running'";
  for (const std::string& flag : parsed) {
    EXPECT_TRUE(documented.count(flag) != 0)
        << "asketchd parses `" << flag
        << "` but docs/OPERATIONS.md has no flag-table row for it";
  }
  for (const std::string& flag : documented) {
    EXPECT_TRUE(parsed.count(flag) != 0)
        << "docs/OPERATIONS.md documents `" << flag
        << "` but asketchd no longer parses it";
  }
}

}  // namespace
}  // namespace asketch
