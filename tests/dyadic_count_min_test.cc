#include "src/sketch/dyadic_count_min.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

DyadicCountMinConfig SmallConfig(uint32_t bits = 16) {
  DyadicCountMinConfig config;
  config.domain_bits = bits;
  config.width = 4;
  config.total_bytes = 256 * 1024;
  config.seed = 5;
  return config;
}

TEST(DyadicCountMinConfigTest, Validates) {
  DyadicCountMinConfig config = SmallConfig();
  EXPECT_FALSE(config.Validate().has_value());
  config.domain_bits = 0;
  EXPECT_TRUE(config.Validate().has_value());
  config = SmallConfig();
  config.domain_bits = 33;
  EXPECT_TRUE(config.Validate().has_value());
  config = SmallConfig();
  config.total_bytes = 100;
  EXPECT_TRUE(config.Validate().has_value());
}

TEST(DyadicCountMinTest, PointQueriesWork) {
  DyadicCountMin sketch(SmallConfig());
  sketch.Update(100, 7);
  sketch.Update(200, 3);
  EXPECT_EQ(sketch.Estimate(100), 7u);
  EXPECT_EQ(sketch.Estimate(200), 3u);
  EXPECT_EQ(sketch.Total(), 10u);
}

TEST(DyadicCountMinTest, RangeSumsExactOnSmallDomains) {
  // With a 16-bit domain and 256KB, every level is exact: range sums
  // must be exactly right.
  DyadicCountMin sketch(SmallConfig(10));
  ExactCounter truth(1024);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(1024));
    sketch.Update(key);
    truth.Update(key);
  }
  Rng range_rng(4);
  for (int round = 0; round < 200; ++round) {
    item_t lo = static_cast<item_t>(range_rng.NextBounded(1024));
    item_t hi = static_cast<item_t>(range_rng.NextBounded(1024));
    if (lo > hi) std::swap(lo, hi);
    wide_count_t exact = 0;
    for (item_t k = lo; k <= hi; ++k) exact += truth.Count(k);
    ASSERT_EQ(sketch.RangeSum(lo, hi), exact)
        << "range [" << lo << ", " << hi << "]";
  }
}

TEST(DyadicCountMinTest, FullRangeEqualsTotal) {
  DyadicCountMin sketch(SmallConfig(12));
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    sketch.Update(static_cast<item_t>(rng.NextBounded(1 << 12)));
  }
  EXPECT_EQ(sketch.RangeSum(0, (1 << 12) - 1), sketch.Total());
}

TEST(DyadicCountMinTest, SingleElementRangeEqualsPointQuery) {
  DyadicCountMin sketch(SmallConfig(12));
  sketch.Update(77, 5);
  EXPECT_EQ(sketch.RangeSum(77, 77), sketch.Estimate(77));
  EXPECT_EQ(sketch.RangeSum(0, 0), sketch.Estimate(0));
  EXPECT_EQ(sketch.RangeSum((1 << 12) - 1, (1 << 12) - 1),
            sketch.Estimate((1 << 12) - 1));
}

TEST(DyadicCountMinTest, RangeSumsNeverUnderestimate) {
  // 24-bit domain: deep levels are hashed, so sums are approximate but
  // must stay one-sided.
  DyadicCountMinConfig config = SmallConfig(24);
  config.total_bytes = 64 * 1024;
  DyadicCountMin sketch(config);
  ExactCounter truth(1 << 16);
  StreamSpec spec;
  spec.stream_size = 50000;
  spec.num_distinct = 1 << 16;
  spec.skew = 1.0;
  spec.seed = 6;
  for (const Tuple& t : GenerateStream(spec)) {
    sketch.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  Rng range_rng(7);
  for (int round = 0; round < 100; ++round) {
    item_t lo = static_cast<item_t>(range_rng.NextBounded(1 << 16));
    item_t hi = static_cast<item_t>(
        lo + range_rng.NextBounded((1 << 16) - lo));
    wide_count_t exact = 0;
    for (item_t k = lo; k <= hi; ++k) exact += truth.Count(k);
    ASSERT_GE(sketch.RangeSum(lo, hi), exact)
        << "range [" << lo << ", " << hi << "]";
  }
}

TEST(DyadicCountMinTest, HeavyHittersFindsAllHeavyKeys) {
  DyadicCountMin sketch(SmallConfig(20));
  ExactCounter truth(1 << 20);
  StreamSpec spec;
  spec.stream_size = 100000;
  spec.num_distinct = 1 << 20;
  spec.skew = 1.5;
  spec.seed = 11;
  for (const Tuple& t : GenerateStream(spec)) {
    sketch.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  const count_t threshold =
      static_cast<count_t>(sketch.Total() / 100);  // 1% heavy hitters
  const auto hitters = sketch.HeavyHitters(threshold);
  // Completeness: every truly-heavy key is reported (one-sidedness).
  for (item_t key = 0; key < (1 << 20); ++key) {
    if (truth.Count(key) >= threshold) {
      const bool found =
          std::any_of(hitters.begin(), hitters.end(),
                      [key](const RangeHeavyHitter& h) {
                        return h.key == key;
                      });
      EXPECT_TRUE(found) << "heavy key " << key;
    }
  }
  // Soundness (approximate): reported estimates clear the threshold.
  for (const RangeHeavyHitter& h : hitters) {
    EXPECT_GE(h.estimate, threshold);
    EXPECT_GE(h.estimate, truth.Count(h.key));
  }
}

TEST(DyadicCountMinTest, DeletionsAdjustRanges) {
  DyadicCountMin sketch(SmallConfig(10));
  sketch.Update(5, 10);
  sketch.Update(6, 10);
  sketch.Update(5, -4);
  EXPECT_EQ(sketch.RangeSum(5, 6), 16u);
  EXPECT_EQ(sketch.Total(), 16u);
}

TEST(DyadicCountMinTest, ResetClearsAllLevels) {
  DyadicCountMin sketch(SmallConfig(12));
  sketch.Update(1, 100);
  sketch.Reset();
  EXPECT_EQ(sketch.Total(), 0u);
  EXPECT_EQ(sketch.RangeSum(0, (1 << 12) - 1), 0u);
}

TEST(DyadicCountMinTest, MemoryStaysNearBudget) {
  DyadicCountMinConfig config = SmallConfig(32);
  config.total_bytes = 512 * 1024;
  DyadicCountMin sketch(config);
  EXPECT_LE(sketch.MemoryUsageBytes(), config.total_bytes * 2);
  EXPECT_GE(sketch.MemoryUsageBytes(), config.total_bytes / 2);
}

}  // namespace
}  // namespace asketch
