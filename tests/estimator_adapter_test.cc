#include "src/sketch/frequency_estimator.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/asketch.h"
#include "src/sketch/count_min.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/fcm.h"
#include "src/sketch/holistic_udaf.h"

namespace asketch {
namespace {

TEST(EstimatorConceptTest, AllEstimatorsSatisfyTheConcept) {
  static_assert(FrequencyEstimatorType<CountMin>);
  static_assert(FrequencyEstimatorType<CountSketch>);
  static_assert(FrequencyEstimatorType<Fcm>);
  static_assert(FrequencyEstimatorType<HolisticUdaf>);
  static_assert(
      FrequencyEstimatorType<ASketch<RelaxedHeapFilter, CountMin>>);
  static_assert(FrequencyEstimatorType<ASketch<VectorFilter, Fcm>>);
}

TEST(EstimatorAdapterTest, ForwardsAllOperations) {
  auto adapter = MakeEstimator(
      CountMin(CountMinConfig::FromSpaceBudget(16 * 1024, 4)), "cm16k");
  adapter->Update(7, 3);
  adapter->Update(7, 2);
  EXPECT_EQ(adapter->Estimate(7), 5u);
  EXPECT_EQ(adapter->MemoryUsageBytes(), 16u * 1024u);
  EXPECT_EQ(adapter->Name(), "cm16k");
  adapter->Reset();
  EXPECT_EQ(adapter->Estimate(7), 0u);
}

TEST(EstimatorAdapterTest, HeterogeneousCollection) {
  ASketchConfig config;
  config.total_bytes = 16 * 1024;
  config.width = 4;
  config.filter_items = 8;
  std::vector<std::unique_ptr<FrequencyEstimator>> estimators;
  estimators.push_back(MakeEstimator(
      CountMin(CountMinConfig::FromSpaceBudget(16 * 1024, 4)), "CountMin"));
  estimators.push_back(MakeEstimator(
      MakeASketchCountMin<RelaxedHeapFilter>(config), "ASketch"));
  for (const auto& estimator : estimators) {
    for (int i = 0; i < 100; ++i) estimator->Update(42, 1);
    EXPECT_GE(estimator->Estimate(42), 100u) << estimator->Name();
  }
}

TEST(EstimatorAdapterTest, ImplAccessorExposesConcreteType) {
  EstimatorAdapter<CountMin> adapter(
      CountMin(CountMinConfig::FromSpaceBudget(8 * 1024, 4)), "cm");
  adapter.Update(1, 1);
  EXPECT_EQ(adapter.impl().width(), 4u);
}

}  // namespace
}  // namespace asketch
