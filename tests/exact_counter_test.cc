#include "src/workload/exact_counter.h"

#include <gtest/gtest.h>

namespace asketch {
namespace {

TEST(ExactCounterTest, CountsUpdates) {
  ExactCounter counter(10);
  counter.Update(3, 5);
  counter.Update(3, 2);
  counter.Update(7);
  EXPECT_EQ(counter.Count(3), 7u);
  EXPECT_EQ(counter.Count(7), 1u);
  EXPECT_EQ(counter.Count(0), 0u);
  EXPECT_EQ(counter.Total(), 8u);
}

TEST(ExactCounterTest, DeletionsSubtract) {
  ExactCounter counter(10);
  counter.Update(1, 5);
  counter.Update(1, -3);
  EXPECT_EQ(counter.Count(1), 2u);
  EXPECT_EQ(counter.Total(), 2u);
}

TEST(ExactCounterTest, NegativeCountAborts) {
  ExactCounter counter(10);
  counter.Update(1, 2);
  EXPECT_DEATH(counter.Update(1, -3), "next >= 0");
}

TEST(ExactCounterTest, OutOfDomainAborts) {
  ExactCounter counter(10);
  EXPECT_DEATH(counter.Update(10), "key");
}

TEST(ExactCounterTest, KeysByFrequencySortsDescending) {
  ExactCounter counter(5);
  counter.Update(0, 3);
  counter.Update(1, 9);
  counter.Update(2, 1);
  counter.Update(3, 9);
  const auto keys = counter.KeysByFrequency();
  ASSERT_EQ(keys.size(), 5u);
  EXPECT_EQ(keys[0], 1u);  // tie 9/9 broken by key
  EXPECT_EQ(keys[1], 3u);
  EXPECT_EQ(keys[2], 0u);
  EXPECT_EQ(keys[3], 2u);
  EXPECT_EQ(keys[4], 4u);  // zero-count key last
}

TEST(ExactCounterTest, CountOfRank) {
  ExactCounter counter(5);
  counter.Update(0, 3);
  counter.Update(1, 9);
  counter.Update(2, 1);
  EXPECT_EQ(counter.CountOfRank(1), 9u);
  EXPECT_EQ(counter.CountOfRank(2), 3u);
  EXPECT_EQ(counter.CountOfRank(3), 1u);
  EXPECT_EQ(counter.CountOfRank(4), 0u);
  EXPECT_EQ(counter.CountOfRank(0), 0u);
  EXPECT_EQ(counter.CountOfRank(99), 0u);
}

TEST(SparseExactCounterTest, CountsArbitraryKeys) {
  SparseExactCounter counter;
  counter.Update(~0u, 4);
  counter.Update(0, 1);
  EXPECT_EQ(counter.Count(~0u), 4u);
  EXPECT_EQ(counter.Count(0), 1u);
  EXPECT_EQ(counter.Count(5), 0u);
  EXPECT_EQ(counter.NumDistinct(), 2u);
  EXPECT_EQ(counter.Total(), 5u);
}

}  // namespace
}  // namespace asketch
