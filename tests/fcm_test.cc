#include "src/sketch/fcm.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

FcmConfig SmallConfig(uint32_t width = 8, uint32_t depth = 512,
                      uint64_t seed = 42) {
  FcmConfig config;
  config.width = width;
  config.depth = depth;
  config.mg_capacity = 16;
  config.seed = seed;
  return config;
}

TEST(FcmConfigTest, Validates) {
  FcmConfig config = SmallConfig();
  EXPECT_FALSE(config.Validate().has_value());
  config.width = 1;
  EXPECT_TRUE(config.Validate().has_value());
  config = SmallConfig();
  config.mg_capacity = 0;
  EXPECT_TRUE(config.Validate().has_value());
  config.use_mg_classifier = false;
  EXPECT_FALSE(config.Validate().has_value());
}

TEST(FcmConfigTest, FromSpaceBudgetAccountsForMgCounter) {
  const FcmConfig config = FcmConfig::FromSpaceBudget(128 * 1024, 8, 32);
  const Fcm sketch(config);
  EXPECT_LE(sketch.MemoryUsageBytes(), 128u * 1024u);
  EXPECT_GT(sketch.MemoryUsageBytes(), 127u * 1024u);
}

TEST(FcmTest, RowCountsMatchPaperFractions) {
  const Fcm sketch(SmallConfig(8, 512));
  EXPECT_EQ(sketch.hot_rows(), 4u);   // w/2
  EXPECT_EQ(sketch.cold_rows(), 7u);  // ceil(4w/5) = ceil(6.4)
}

TEST(FcmTest, ExactWhenNoCollisions) {
  Fcm sketch(SmallConfig(8, 4096));
  sketch.Update(1, 10);
  sketch.Update(2, 20);
  EXPECT_EQ(sketch.Estimate(1), 10u);
  EXPECT_EQ(sketch.Estimate(2), 20u);
  EXPECT_EQ(sketch.Estimate(999), 0u);
}

TEST(FcmTest, NeverHotKeysNeverUnderestimated) {
  // Keys that never enter the MG classifier always update the full cold
  // prefix, so their estimate is one-sided. (Keys that were hot at some
  // point and later demoted can legitimately be under-estimated — an
  // inherent FCM property; they are excluded here by tracking ever-hot
  // membership after every update.)
  Fcm sketch(SmallConfig(8, 128, 7));
  ExactCounter truth(2000);
  std::vector<bool> ever_hot(2000, false);
  StreamSpec spec;
  spec.stream_size = 100000;
  spec.num_distinct = 2000;
  spec.skew = 1.3;
  spec.seed = 5;
  for (const Tuple& t : GenerateStream(spec)) {
    sketch.Update(t.key, t.value);
    truth.Update(t.key, t.value);
    if (sketch.IsHot(t.key)) ever_hot[t.key] = true;
  }
  for (item_t key = 0; key < 2000; ++key) {
    if (ever_hot[key]) continue;
    EXPECT_GE(sketch.Estimate(key), truth.Count(key)) << "key " << key;
  }
}

TEST(FcmTest, HotKeysUseFewerRowsAndStayOneSided) {
  Fcm sketch(SmallConfig(8, 256, 9));
  // One overwhelmingly hot key is monitored by MG immediately and stays.
  ExactCounter truth(1000);
  Rng rng(31);
  for (int i = 0; i < 50000; ++i) {
    const item_t key = rng.NextBounded(4) == 0
                           ? 0
                           : static_cast<item_t>(rng.NextBounded(1000));
    sketch.Update(key);
    truth.Update(key);
  }
  EXPECT_TRUE(sketch.IsHot(0));
  EXPECT_GE(sketch.Estimate(0), truth.Count(0));
}

TEST(FcmTest, MoreAccurateThanItsOwnColdEstimates) {
  // FCM's design goal: hot keys hashed into fewer rows pollute fewer
  // cells. Sanity-check the total over-estimation is bounded sensibly.
  Fcm sketch(SmallConfig(8, 256, 15));
  ExactCounter truth(5000);
  StreamSpec spec;
  spec.stream_size = 100000;
  spec.num_distinct = 5000;
  spec.skew = 1.5;
  spec.seed = 8;
  for (const Tuple& t : GenerateStream(spec)) {
    sketch.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  double total_overestimate = 0;
  for (item_t key = 0; key < 5000; ++key) {
    const double err = static_cast<double>(sketch.Estimate(key)) -
                       static_cast<double>(truth.Count(key));
    if (err > 0) total_overestimate += err;
  }
  // Each of the 100k counts lands in <= 7 of 8*256 cells; average noise
  // per cell is bounded; the aggregate should be far below N * M.
  EXPECT_LT(total_overestimate, 5000.0 * 100000 / 256);
}

TEST(FcmTest, DisabledClassifierTreatsAllKeysCold) {
  FcmConfig config = SmallConfig();
  config.use_mg_classifier = false;
  Fcm sketch(config);
  for (int i = 0; i < 1000; ++i) sketch.Update(7);
  EXPECT_FALSE(sketch.IsHot(7));
  EXPECT_GE(sketch.Estimate(7), 1000u);
}

TEST(FcmTest, DeletionsBypassClassifier) {
  Fcm sketch(SmallConfig(8, 4096));
  sketch.Update(1, 100);
  sketch.Update(1, -30);
  EXPECT_EQ(sketch.Estimate(1), 70u);
}

TEST(FcmTest, ResetClearsCellsAndClassifier) {
  Fcm sketch(SmallConfig());
  for (int i = 0; i < 100; ++i) sketch.Update(5);
  EXPECT_TRUE(sketch.IsHot(5));
  sketch.Reset();
  EXPECT_FALSE(sketch.IsHot(5));
  EXPECT_EQ(sketch.Estimate(5), 0u);
}

TEST(FcmTest, UpdateAndEstimateMatchesSeparateCalls) {
  Fcm fused(SmallConfig(8, 128, 51));
  Fcm plain(SmallConfig(8, 128, 51));
  Rng rng(47);
  for (int i = 0; i < 20000; ++i) {
    // Hot head so the classifier actually promotes keys mid-stream.
    const item_t key = rng.NextBounded(3) == 0
                           ? static_cast<item_t>(rng.NextBounded(4))
                           : static_cast<item_t>(rng.NextBounded(1000));
    const count_t fused_estimate = fused.UpdateAndEstimate(key, 1);
    plain.Update(key, 1);
    ASSERT_EQ(fused_estimate, plain.Estimate(key)) << "step " << i;
  }
  for (item_t key = 0; key < 1000; ++key) {
    ASSERT_EQ(fused.Estimate(key), plain.Estimate(key));
    ASSERT_EQ(fused.IsHot(key), plain.IsHot(key));
  }
}

TEST(FcmTest, WidthFiveCoprimeGapsExist) {
  // width=5: all gaps 1..4 are coprime; exercise a non-power-of-two width.
  Fcm sketch(SmallConfig(5, 1024, 3));
  sketch.Update(123, 7);
  EXPECT_EQ(sketch.Estimate(123), 7u);
  EXPECT_EQ(sketch.hot_rows(), 3u);   // ceil(5/2)
  EXPECT_EQ(sketch.cold_rows(), 4u);  // floor... ceil(4*5/5)=4
}

}  // namespace
}  // namespace asketch
