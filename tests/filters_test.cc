// Behavioural tests shared by all four filter designs, plus a randomized
// reference-model fuzz. Everything runs as typed tests so each design is
// exercised identically.

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/filter/filter_interface.h"
#include "src/filter/heap_filter.h"
#include "src/filter/stream_summary_filter.h"
#include "src/filter/vector_filter.h"

namespace asketch {
namespace {

template <typename T>
class FilterTest : public ::testing::Test {};

using FilterTypes = ::testing::Types<VectorFilter, StrictHeapFilter,
                                     RelaxedHeapFilter, StreamSummaryFilter>;
TYPED_TEST_SUITE(FilterTest, FilterTypes);

TYPED_TEST(FilterTest, StartsEmpty) {
  TypeParam filter(8);
  EXPECT_EQ(filter.size(), 0u);
  EXPECT_EQ(filter.capacity(), 8u);
  EXPECT_FALSE(filter.Full());
  EXPECT_EQ(filter.Find(42), -1);
}

TYPED_TEST(FilterTest, InsertAndFind) {
  TypeParam filter(8);
  filter.Insert(10, 5, 2);
  const int32_t slot = filter.Find(10);
  ASSERT_GE(slot, 0);
  EXPECT_EQ(filter.NewCount(slot), 5u);
  EXPECT_EQ(filter.OldCount(slot), 2u);
  EXPECT_EQ(filter.size(), 1u);
}

TYPED_TEST(FilterTest, AddToNewCountAccumulates) {
  TypeParam filter(8);
  filter.Insert(10, 5, 5);
  filter.AddToNewCount(filter.Find(10), 7);
  const int32_t slot = filter.Find(10);
  EXPECT_EQ(filter.NewCount(slot), 12u);
  EXPECT_EQ(filter.OldCount(slot), 5u);  // old_count untouched
}

TYPED_TEST(FilterTest, NegativeDeltaDecreases) {
  TypeParam filter(8);
  filter.Insert(10, 9, 0);
  filter.AddToNewCount(filter.Find(10), -4);
  EXPECT_EQ(filter.NewCount(filter.Find(10)), 5u);
}

TYPED_TEST(FilterTest, SetCountsOverwrites) {
  TypeParam filter(8);
  filter.Insert(10, 9, 3);
  filter.SetCounts(filter.Find(10), 100, 100);
  const int32_t slot = filter.Find(10);
  EXPECT_EQ(filter.NewCount(slot), 100u);
  EXPECT_EQ(filter.OldCount(slot), 100u);
}

TYPED_TEST(FilterTest, FullAfterCapacityInserts) {
  TypeParam filter(4);
  for (item_t key = 0; key < 4; ++key) {
    filter.Insert(key, key + 1, 0);
  }
  EXPECT_TRUE(filter.Full());
  EXPECT_EQ(filter.size(), 4u);
}

TYPED_TEST(FilterTest, MinNewCountTracksSmallest) {
  TypeParam filter(4);
  filter.Insert(1, 50, 0);
  filter.Insert(2, 10, 0);
  filter.Insert(3, 30, 0);
  EXPECT_EQ(filter.MinNewCount(), 10u);
  filter.AddToNewCount(filter.Find(2), 100);  // 2 -> 110
  EXPECT_EQ(filter.MinNewCount(), 30u);
}

TYPED_TEST(FilterTest, EvictMinReturnsSmallestEntry) {
  TypeParam filter(4);
  filter.Insert(1, 50, 7);
  filter.Insert(2, 10, 3);
  filter.Insert(3, 30, 1);
  const FilterEntry evicted = filter.EvictMin();
  EXPECT_EQ(evicted.key, 2u);
  EXPECT_EQ(evicted.new_count, 10u);
  EXPECT_EQ(evicted.old_count, 3u);
  EXPECT_EQ(filter.size(), 2u);
  EXPECT_EQ(filter.Find(2), -1);
  EXPECT_EQ(filter.MinNewCount(), 30u);
}

TYPED_TEST(FilterTest, EvictionsComeOutInAscendingOrder) {
  TypeParam filter(8);
  const std::vector<count_t> counts = {42, 7, 99, 13, 56, 21, 3, 70};
  for (size_t i = 0; i < counts.size(); ++i) {
    filter.Insert(static_cast<item_t>(i), counts[i], 0);
  }
  std::vector<count_t> drained;
  while (filter.size() > 0) {
    drained.push_back(filter.EvictMin().new_count);
  }
  EXPECT_TRUE(std::is_sorted(drained.begin(), drained.end()));
  EXPECT_EQ(drained.size(), counts.size());
}

TYPED_TEST(FilterTest, RemoveErasesEntry) {
  TypeParam filter(4);
  filter.Insert(1, 5, 0);
  filter.Insert(2, 6, 0);
  filter.Remove(filter.Find(1));
  EXPECT_EQ(filter.Find(1), -1);
  EXPECT_EQ(filter.size(), 1u);
  EXPECT_EQ(filter.MinNewCount(), 6u);
}

TYPED_TEST(FilterTest, ResetEmpties) {
  TypeParam filter(4);
  filter.Insert(1, 5, 0);
  filter.Reset();
  EXPECT_EQ(filter.size(), 0u);
  EXPECT_EQ(filter.Find(1), -1);
  filter.Insert(1, 2, 0);
  EXPECT_EQ(filter.NewCount(filter.Find(1)), 2u);
}

TYPED_TEST(FilterTest, CapacityOneWorks) {
  TypeParam filter(1);
  filter.Insert(9, 4, 0);
  EXPECT_TRUE(filter.Full());
  EXPECT_EQ(filter.MinNewCount(), 4u);
  const FilterEntry e = filter.EvictMin();
  EXPECT_EQ(e.key, 9u);
  EXPECT_EQ(filter.size(), 0u);
}

TYPED_TEST(FilterTest, ForEachVisitsAllEntries) {
  TypeParam filter(8);
  for (item_t key = 0; key < 5; ++key) {
    filter.Insert(key, (key + 1) * 10, key);
  }
  std::map<item_t, FilterEntry> seen;
  filter.ForEach([&seen](const FilterEntry& e) { seen[e.key] = e; });
  ASSERT_EQ(seen.size(), 5u);
  for (item_t key = 0; key < 5; ++key) {
    EXPECT_EQ(seen[key].new_count, (key + 1) * 10);
    EXPECT_EQ(seen[key].old_count, key);
  }
}

TYPED_TEST(FilterTest, ZeroAndMaxKeysAreOrdinary) {
  TypeParam filter(4);
  filter.Insert(0, 1, 0);
  filter.Insert(std::numeric_limits<item_t>::max(), 2, 0);
  EXPECT_GE(filter.Find(0), 0);
  EXPECT_GE(filter.Find(std::numeric_limits<item_t>::max()), 0);
  EXPECT_EQ(filter.Find(1), -1);
}

// Randomized reference-model fuzz mirroring the exact operation mix the
// ASketch core performs, checking Find/counts/min against a std::map.
TYPED_TEST(FilterTest, MatchesReferenceModelUnderRandomOps) {
  constexpr uint32_t kCapacity = 16;
  TypeParam filter(kCapacity);
  std::map<item_t, std::pair<count_t, count_t>> model;
  Rng rng(20240607);
  for (int step = 0; step < 5000; ++step) {
    const item_t key = static_cast<item_t>(rng.NextBounded(64));
    const int32_t slot = filter.Find(key);
    const auto it = model.find(key);
    ASSERT_EQ(slot >= 0, it != model.end()) << "step " << step;
    if (slot >= 0) {
      ASSERT_EQ(filter.NewCount(slot), it->second.first);
      ASSERT_EQ(filter.OldCount(slot), it->second.second);
      const count_t delta = 1 + static_cast<count_t>(rng.NextBounded(9));
      filter.AddToNewCount(slot, delta);
      it->second.first += delta;
    } else if (!filter.Full()) {
      const count_t c = 1 + static_cast<count_t>(rng.NextBounded(100));
      filter.Insert(key, c, 0);
      model[key] = {c, 0};
    } else {
      // Simulate the exchange decision on a miss.
      count_t model_min = ~count_t{0};
      for (const auto& [k, v] : model) {
        model_min = std::min(model_min, v.first);
      }
      ASSERT_EQ(filter.MinNewCount(), model_min) << "step " << step;
      if (rng.NextBounded(2) == 0) {
        const FilterEntry victim = filter.EvictMin();
        ASSERT_EQ(victim.new_count, model_min);
        ASSERT_EQ(model.count(victim.key), 1u);
        model.erase(victim.key);
        const count_t est = victim.new_count +
                            static_cast<count_t>(rng.NextBounded(10)) + 1;
        filter.Insert(key, est, est);
        model[key] = {est, est};
      }
    }
    ASSERT_EQ(filter.size(), model.size());
  }
}

// Heap-specific invariant checks.
TEST(HeapFilterTest, StrictKeepsFullHeapProperty) {
  StrictHeapFilter filter(16);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(32));
    const int32_t slot = filter.Find(key);
    if (slot >= 0) {
      filter.AddToNewCount(slot, 1 + rng.NextBounded(5));
    } else if (!filter.Full()) {
      filter.Insert(key, 1 + rng.NextBounded(50), 0);
    } else if (rng.NextBounded(2) == 0) {
      filter.EvictMin();
    }
    ASSERT_TRUE(filter.CheckInvariants()) << "step " << i;
  }
}

TEST(HeapFilterTest, RelaxedKeepsRootMinimalDespiteStaleInterior) {
  RelaxedHeapFilter filter(16);
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(32));
    const int32_t slot = filter.Find(key);
    if (slot >= 0) {
      filter.AddToNewCount(slot, 1 + rng.NextBounded(5));
    } else if (!filter.Full()) {
      filter.Insert(key, 1 + rng.NextBounded(50), 0);
    } else if (rng.NextBounded(2) == 0) {
      filter.EvictMin();
    }
    ASSERT_TRUE(filter.CheckInvariants()) << "step " << i;
  }
}

TEST(FilterMemoryTest, FlatFiltersCost12BytesPerItem) {
  EXPECT_EQ(VectorFilter::BytesPerItem(), 12u);
  EXPECT_EQ(StrictHeapFilter::BytesPerItem(), 12u);
  EXPECT_EQ(RelaxedHeapFilter::BytesPerItem(), 12u);
  // 32 items ≈ 0.4 KB — the paper's filter sizing.
  EXPECT_EQ(VectorFilter(32).MemoryUsageBytes(), 384u);
}

TEST(FilterMemoryTest, StreamSummaryFilterIsMuchHeavier) {
  EXPECT_GT(StreamSummaryFilter::BytesPerItem(),
            3 * VectorFilter::BytesPerItem());
  // With the same 0.4 KB budget it monitors only a handful of items —
  // Table 6's "only 4 items with a 0.4KB filter size".
  const size_t budget = 384;
  const size_t items = budget / StreamSummaryFilter::BytesPerItem();
  EXPECT_LE(items, 8u);
  EXPECT_GE(items, 2u);
}

}  // namespace
}  // namespace asketch
