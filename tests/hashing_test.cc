#include "src/common/hashing.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace asketch {
namespace {

TEST(ModMersenne61Test, MatchesDirectModulo) {
  for (uint64_t x : std::vector<uint64_t>{0, 1, kMersenne61 - 1,
                                          kMersenne61, kMersenne61 + 1,
                                          ~uint64_t{0}}) {
    EXPECT_EQ(ModMersenne61(x), x % kMersenne61) << x;
  }
  // A large 128-bit product.
  const unsigned __int128 big =
      static_cast<unsigned __int128>(~0ull) * 0x123456789abcdefULL;
  EXPECT_EQ(ModMersenne61(big),
            static_cast<uint64_t>(big % kMersenne61));
}

TEST(PairwiseHashTest, StaysInRange) {
  const PairwiseHash h(12345, 6789, 100);
  for (uint64_t key = 0; key < 10000; ++key) {
    EXPECT_LT(h(key), 100u);
  }
}

TEST(PairwiseHashTest, IsDeterministic) {
  const PairwiseHash h(999983, 31337, 4096);
  EXPECT_EQ(h(42), h(42));
}

TEST(PairwiseHashTest, IdentityCoefficientsComputeAffine) {
  // a=1, b=0 -> h(x) = x mod range (for x < p).
  const PairwiseHash h(1, 0, 97);
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(h(key), key % 97);
  }
}

TEST(PairwiseHashTest, RangeOneMapsEverythingToZero) {
  const PairwiseHash h(7, 3, 1);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(h(key), 0u);
  }
}

TEST(PairwiseHashTest, DistributionIsRoughlyUniform) {
  const PairwiseHash h(0x9e3779b97f4a7c15ULL % kMersenne61, 12345, 64);
  std::vector<int> histogram(64, 0);
  constexpr int kKeys = 64000;
  for (uint64_t key = 0; key < kKeys; ++key) {
    ++histogram[h(key)];
  }
  for (const int count : histogram) {
    EXPECT_GT(count, 700);   // expected 1000
    EXPECT_LT(count, 1300);
  }
}

TEST(HashFamilyTest, RowsHashIndependently) {
  const HashFamily family(4, 1024, /*seed=*/7);
  // Two keys colliding in one row should almost never collide in all rows.
  int all_row_collisions = 0;
  for (uint64_t key = 0; key < 2000; key += 2) {
    bool all = true;
    for (uint32_t row = 0; row < 4; ++row) {
      if (family.Bucket(row, key) != family.Bucket(row, key + 1)) {
        all = false;
        break;
      }
    }
    if (all) ++all_row_collisions;
  }
  EXPECT_EQ(all_row_collisions, 0);
}

TEST(HashFamilyTest, SameSeedSameFunctions) {
  const HashFamily a(8, 4096, 42), b(8, 4096, 42);
  for (uint32_t row = 0; row < 8; ++row) {
    for (uint64_t key = 0; key < 100; ++key) {
      EXPECT_EQ(a.Bucket(row, key), b.Bucket(row, key));
    }
  }
}

TEST(HashFamilyTest, DifferentSeedsDifferentFunctions) {
  const HashFamily a(1, 1 << 20, 1), b(1, 1 << 20, 2);
  int equal = 0;
  for (uint64_t key = 0; key < 1000; ++key) {
    if (a.Bucket(0, key) == b.Bucket(0, key)) ++equal;
  }
  EXPECT_LT(equal, 10);
}

TEST(SignFamilyTest, SignsAreBalanced) {
  const SignFamily signs(4, /*seed=*/11);
  for (uint32_t row = 0; row < 4; ++row) {
    int sum = 0;
    for (uint64_t key = 0; key < 10000; ++key) {
      const int32_t s = signs.Sign(row, key);
      ASSERT_TRUE(s == 1 || s == -1);
      sum += s;
    }
    EXPECT_LT(std::abs(sum), 400);  // ~4 sigma for 10k fair coins
  }
}

TEST(SignFamilyTest, IsDeterministic) {
  const SignFamily a(2, 5), b(2, 5);
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(a.Sign(0, key), b.Sign(0, key));
    EXPECT_EQ(a.Sign(1, key), b.Sign(1, key));
  }
}

}  // namespace
}  // namespace asketch
