#include "src/sketch/holistic_udaf.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

HolisticUdafConfig SmallConfig(uint32_t table = 4, uint32_t depth = 1024,
                               uint64_t seed = 42) {
  HolisticUdafConfig config;
  config.table_capacity = table;
  config.sketch.width = 4;
  config.sketch.depth = depth;
  config.sketch.seed = seed;
  return config;
}

TEST(HolisticUdafConfigTest, Validates) {
  HolisticUdafConfig config = SmallConfig();
  EXPECT_FALSE(config.Validate().has_value());
  config.table_capacity = 0;
  EXPECT_TRUE(config.Validate().has_value());
  config = SmallConfig();
  config.sketch.depth = 0;
  EXPECT_TRUE(config.Validate().has_value());
}

TEST(HolisticUdafConfigTest, FromSpaceBudget) {
  const HolisticUdafConfig config =
      HolisticUdafConfig::FromSpaceBudget(128 * 1024, 8, 32);
  const HolisticUdaf udaf(config);
  EXPECT_LE(udaf.MemoryUsageBytes(), 128u * 1024u);
  EXPECT_GT(udaf.MemoryUsageBytes(), 127u * 1024u);
}

TEST(HolisticUdafTest, BufferedCountsAreVisibleToQueries) {
  HolisticUdaf udaf(SmallConfig());
  udaf.Update(1, 5);
  udaf.Update(1, 3);
  // Nothing has been flushed yet; the estimate must still see the counts.
  EXPECT_EQ(udaf.flush_count(), 0u);
  EXPECT_EQ(udaf.Estimate(1), 8u);
}

TEST(HolisticUdafTest, OverflowFlushesWholeTable) {
  HolisticUdaf udaf(SmallConfig(2));
  udaf.Update(1);
  udaf.Update(2);
  EXPECT_EQ(udaf.flush_count(), 0u);
  udaf.Update(3);  // table of 2 overflows
  EXPECT_EQ(udaf.flush_count(), 1u);
  EXPECT_EQ(udaf.Estimate(1), 1u);
  EXPECT_EQ(udaf.Estimate(2), 1u);
  EXPECT_EQ(udaf.Estimate(3), 1u);
}

TEST(HolisticUdafTest, RepeatedKeysAggregateWithoutFlushing) {
  HolisticUdaf udaf(SmallConfig(2));
  for (int i = 0; i < 1000; ++i) udaf.Update(7);
  for (int i = 0; i < 1000; ++i) udaf.Update(8);
  EXPECT_EQ(udaf.flush_count(), 0u);
  EXPECT_EQ(udaf.Estimate(7), 1000u);
}

TEST(HolisticUdafTest, NeverUnderestimates) {
  HolisticUdaf udaf(SmallConfig(8, 64, 3));
  ExactCounter truth(1000);
  StreamSpec spec;
  spec.stream_size = 50000;
  spec.num_distinct = 1000;
  spec.skew = 1.0;
  spec.seed = 12;
  for (const Tuple& t : GenerateStream(spec)) {
    udaf.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  for (item_t key = 0; key < 1000; ++key) {
    EXPECT_GE(udaf.Estimate(key), truth.Count(key)) << "key " << key;
  }
}

TEST(HolisticUdafTest, ManualFlushMovesEverythingToSketch) {
  HolisticUdaf udaf(SmallConfig());
  udaf.Update(1, 5);
  udaf.Flush();
  EXPECT_EQ(udaf.flush_count(), 1u);
  EXPECT_EQ(udaf.Estimate(1), 5u);
  EXPECT_GE(udaf.sketch().Estimate(1), 5u);
}

TEST(HolisticUdafTest, DeletionsReleaseBufferedCounts) {
  HolisticUdaf udaf(SmallConfig());
  udaf.Update(1, 10);
  udaf.Update(1, -4);
  EXPECT_EQ(udaf.Estimate(1), 6u);
  udaf.Update(1, -6);
  EXPECT_EQ(udaf.Estimate(1), 0u);
}

TEST(HolisticUdafTest, DeletionsStayOneSidedUnderChurn) {
  HolisticUdaf udaf(SmallConfig(4, 128, 9));
  ExactCounter truth(300);
  Rng rng(21);
  std::vector<int> live(300, 0);
  for (int i = 0; i < 20000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(300));
    if (live[key] > 0 && rng.NextBounded(4) == 0) {
      udaf.Update(key, -1);
      truth.Update(key, -1);
      --live[key];
    } else {
      udaf.Update(key, 1);
      truth.Update(key, 1);
      ++live[key];
    }
  }
  for (item_t key = 0; key < 300; ++key) {
    EXPECT_GE(udaf.Estimate(key), truth.Count(key)) << "key " << key;
  }
}

TEST(HolisticUdafTest, HighSkewStreamsRarelyFlush) {
  // The §7 narrative: at high skew the table absorbs nearly everything.
  HolisticUdaf skewed(SmallConfig(32, 1024, 4));
  HolisticUdaf uniform(SmallConfig(32, 1024, 4));
  StreamSpec spec;
  spec.stream_size = 50000;
  spec.num_distinct = 10000;
  spec.seed = 3;
  spec.skew = 2.5;
  for (const Tuple& t : GenerateStream(spec)) skewed.Update(t.key, t.value);
  spec.skew = 0.0;
  for (const Tuple& t : GenerateStream(spec)) uniform.Update(t.key, t.value);
  EXPECT_LT(skewed.flush_count() * 10, uniform.flush_count());
}

TEST(HolisticUdafTest, ResetClearsTableAndSketch) {
  HolisticUdaf udaf(SmallConfig());
  udaf.Update(1, 5);
  udaf.Flush();
  udaf.Update(2, 3);
  udaf.Reset();
  EXPECT_EQ(udaf.Estimate(1), 0u);
  EXPECT_EQ(udaf.Estimate(2), 0u);
  EXPECT_EQ(udaf.flush_count(), 0u);
}

}  // namespace
}  // namespace asketch
