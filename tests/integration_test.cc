// End-to-end assertions that the paper's qualitative results hold on this
// implementation (scaled-down workloads; the bench harness reproduces the
// full tables/figures).

#include <vector>

#include <gtest/gtest.h>

#include "src/core/asketch.h"
#include "src/sketch/holistic_udaf.h"
#include "src/workload/exact_counter.h"
#include "src/workload/metrics.h"
#include "src/workload/query_generator.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

struct Workload {
  std::vector<Tuple> stream;
  ExactCounter truth;
  std::vector<item_t> queries;
};

Workload MakeWorkload(double skew, uint64_t n = 400000,
                      uint32_t m = 100000) {
  StreamSpec spec;
  spec.stream_size = n;
  spec.num_distinct = m;
  spec.skew = skew;
  spec.seed = 2024;
  Workload w{GenerateStream(spec), ExactCounter(m), {}};
  for (const Tuple& t : w.stream) w.truth.Update(t.key, t.value);
  w.queries = GenerateQueries(w.stream, m, 50000,
                              QuerySampling::kFrequencyProportional, 5);
  return w;
}

constexpr size_t kBudget = 32 * 1024;
constexpr uint32_t kWidth = 8;
constexpr uint32_t kFilterItems = 32;

ASketchConfig BudgetConfig() {
  ASketchConfig config;
  config.total_bytes = kBudget;
  config.width = kWidth;
  config.filter_items = kFilterItems;
  config.seed = 42;
  return config;
}

// The headline claim (Table 1 / Fig. 7): at real-world skew, ASketch has
// lower observed error than a same-space Count-Min.
TEST(IntegrationTest, ASketchBeatsCountMinOnObservedError) {
  const Workload w = MakeWorkload(1.5);
  CountMin cm(CountMinConfig::FromSpaceBudget(kBudget, kWidth, 42));
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(BudgetConfig());
  for (const Tuple& t : w.stream) {
    cm.Update(t.key, t.value);
    as.Update(t.key, t.value);
  }
  const double cm_error = ObservedError(
      w.queries, [&cm](item_t k) { return cm.Estimate(k); }, w.truth);
  const double as_error = ObservedError(
      w.queries, [&as](item_t k) { return as.Estimate(k); }, w.truth);
  EXPECT_LT(as_error, cm_error);
  // The paper reports order-of-magnitude improvements at skew 1.5.
  EXPECT_LT(as_error, cm_error / 4 + 1e-12);
}

// Fig. 8 analogue: the improvement carries over to an FCM backend.
TEST(IntegrationTest, ASketchFcmBeatsFcm) {
  const Workload w = MakeWorkload(1.5);
  Fcm fcm(FcmConfig::FromSpaceBudget(kBudget, kWidth, kFilterItems, 42));
  auto as = MakeASketchFcm<RelaxedHeapFilter>(BudgetConfig());
  for (const Tuple& t : w.stream) {
    fcm.Update(t.key, t.value);
    as.Update(t.key, t.value);
  }
  const double fcm_error = ObservedError(
      w.queries, [&fcm](item_t k) { return fcm.Estimate(k); }, w.truth);
  const double as_error = ObservedError(
      w.queries, [&as](item_t k) { return as.Estimate(k); }, w.truth);
  EXPECT_LT(as_error, fcm_error);
}

// Table 3 / Fig. 6 analogue: a small Count-Min misclassifies cold keys as
// heavy hitters; the same-space ASketch does not.
TEST(IntegrationTest, ASketchAvoidsMisclassification) {
  const Workload w = MakeWorkload(1.5);
  const size_t tiny_budget = 4 * 1024;
  CountMin cm(CountMinConfig::FromSpaceBudget(tiny_budget, kWidth, 42));
  ASketchConfig config = BudgetConfig();
  config.total_bytes = tiny_budget;
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
  for (const Tuple& t : w.stream) {
    cm.Update(t.key, t.value);
    as.Update(t.key, t.value);
  }
  const auto cm_mis = FindMisclassifiedKeys(
      [&cm](item_t k) { return cm.Estimate(k); }, w.truth, kFilterItems);
  const auto as_mis = FindMisclassifiedKeys(
      [&as](item_t k) { return as.Estimate(k); }, w.truth, kFilterItems);
  EXPECT_GT(cm_mis.size(), 0u);
  EXPECT_LT(as_mis.size(), cm_mis.size() / 2 + 1);
}

// Table 5 analogue: precision-at-k of the filter's top-k report is
// perfect at skew >= 1.
TEST(IntegrationTest, TopKPrecisionIsHighAtRealWorldSkew) {
  for (const double skew : {1.0, 1.5}) {
    const Workload w = MakeWorkload(skew);
    auto as = MakeASketchCountMin<RelaxedHeapFilter>(BudgetConfig());
    for (const Tuple& t : w.stream) as.Update(t.key, t.value);
    std::vector<item_t> reported;
    for (const FilterEntry& e : as.TopK()) reported.push_back(e.key);
    EXPECT_GE(PrecisionAtK(reported, w.truth, kFilterItems), 0.9)
        << "skew " << skew;
  }
}

// §4 selectivity table: at skew 1.5 a 32-item filter absorbs ~80% of all
// counts, so only ~20% reach the sketch.
TEST(IntegrationTest, FilterSelectivityMatchesAnalyticPrediction) {
  const Workload w = MakeWorkload(1.5);
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(BudgetConfig());
  for (const Tuple& t : w.stream) as.Update(t.key, t.value);
  const double achieved = as.stats().FilterSelectivity();
  ZipfStreamGenerator gen(StreamSpec{
      .stream_size = 1, .num_distinct = 100000, .skew = 1.5, .seed = 1});
  const double predicted = 1.0 - gen.distribution().TopKMass(kFilterItems);
  EXPECT_NEAR(achieved, predicted, 0.08);
}

// Fig. 9 analogue: exchanges are rare relative to the stream and decrease
// with skew.
TEST(IntegrationTest, ExchangesAreRareAndDropWithSkew) {
  uint64_t previous = ~0ull;
  for (const double skew : {0.0, 1.0, 2.0}) {
    const Workload w = MakeWorkload(skew, 200000, 50000);
    auto as = MakeASketchCountMin<RelaxedHeapFilter>(BudgetConfig());
    for (const Tuple& t : w.stream) as.Update(t.key, t.value);
    const uint64_t exchanges = as.stats().exchanges;
    EXPECT_LT(exchanges, w.stream.size() / 50) << "skew " << skew;
    EXPECT_LE(exchanges, previous) << "skew " << skew;
    previous = exchanges;
  }
}

// Fig. 16 analogue: the filter costs low-frequency keys almost nothing.
TEST(IntegrationTest, LowFrequencyErrorComparableToCountMin) {
  const Workload w = MakeWorkload(1.2);
  CountMin cm(CountMinConfig::FromSpaceBudget(kBudget, kWidth, 42));
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(BudgetConfig());
  for (const Tuple& t : w.stream) {
    cm.Update(t.key, t.value);
    as.Update(t.key, t.value);
  }
  const double cm_low = LowFrequencyAverageRelativeError(
      [&cm](item_t k) { return cm.Estimate(k); }, w.truth, kFilterItems);
  const double as_low = LowFrequencyAverageRelativeError(
      [&as](item_t k) { return as.Estimate(k); }, w.truth, kFilterItems);
  // ASketch's low-frequency error may exceed Count-Min's slightly (the
  // sketch is smaller by the filter's 384 bytes) but must stay comparable;
  // Theorem 1 bounds the increase, and in practice the separation of hot
  // keys more than compensates.
  EXPECT_LT(as_low, cm_low * 1.5 + 0.05);
}

// Appendix (Fig. 17): predicted vs achieved selectivity agree across the
// whole skew range.
TEST(IntegrationTest, PredictedSelectivityTracksAchievedAcrossSkews) {
  for (const double skew : {0.5, 1.0, 2.0}) {
    StreamSpec spec;
    spec.stream_size = 200000;
    spec.num_distinct = 50000;
    spec.skew = skew;
    spec.seed = 31;
    auto as = MakeASketchCountMin<RelaxedHeapFilter>(BudgetConfig());
    ZipfStreamGenerator gen(spec);
    for (uint64_t i = 0; i < spec.stream_size; ++i) {
      const Tuple t = gen.Next();
      as.Update(t.key, t.value);
    }
    const double predicted =
        1.0 - gen.distribution().TopKMass(kFilterItems);
    EXPECT_NEAR(as.stats().FilterSelectivity(), predicted, 0.12)
        << "skew " << skew;
  }
}

}  // namespace
}  // namespace asketch
