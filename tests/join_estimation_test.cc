// Inner-product (join-size) estimation with Count-Min — the classic
// second-frequency-moment application (and the setting Skimmed Sketch,
// cited in the paper's related work, improves on).

#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/sketch/count_min.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

CountMinConfig JoinConfig(uint32_t depth = 2048) {
  CountMinConfig config;
  config.width = 5;
  config.depth = depth;
  config.seed = 77;
  return config;
}

TEST(JoinEstimationTest, ExactForDisjointSingletons) {
  CountMin a(JoinConfig()), b(JoinConfig());
  a.Update(1, 10);
  b.Update(2, 20);
  // Disjoint keys: true join size 0; with 2 keys in 2048 cells the
  // estimate should be exactly 0 w.h.p.
  EXPECT_EQ(a.InnerProductEstimate(b), 0u);
}

TEST(JoinEstimationTest, ExactForIdenticalSingletons) {
  CountMin a(JoinConfig()), b(JoinConfig());
  a.Update(7, 10);
  b.Update(7, 20);
  EXPECT_EQ(a.InnerProductEstimate(b), 200u);
}

TEST(JoinEstimationTest, IsSymmetric) {
  CountMin a(JoinConfig()), b(JoinConfig());
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    a.Update(static_cast<item_t>(rng.NextBounded(300)));
    b.Update(static_cast<item_t>(rng.NextBounded(300)));
  }
  EXPECT_EQ(a.InnerProductEstimate(b), b.InnerProductEstimate(a));
}

TEST(JoinEstimationTest, NeverUnderestimatesTrueJoinSize) {
  CountMin a(JoinConfig(256)), b(JoinConfig(256));
  ExactCounter truth_a(500), truth_b(500);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const item_t ka = static_cast<item_t>(rng.NextBounded(500));
    const item_t kb = static_cast<item_t>(rng.NextBounded(500));
    a.Update(ka);
    truth_a.Update(ka);
    b.Update(kb);
    truth_b.Update(kb);
  }
  wide_count_t true_join = 0;
  for (item_t key = 0; key < 500; ++key) {
    true_join += truth_a.Count(key) * truth_b.Count(key);
  }
  EXPECT_GE(a.InnerProductEstimate(b), true_join);
}

TEST(JoinEstimationTest, EstimateIsReasonablyTightWithEnoughCells) {
  CountMin a(JoinConfig(8192)), b(JoinConfig(8192));
  ExactCounter truth_a(2000), truth_b(2000);
  StreamSpec spec;
  spec.stream_size = 100000;
  spec.num_distinct = 2000;
  spec.skew = 1.1;
  spec.seed = 5;
  for (const Tuple& t : GenerateStream(spec)) {
    a.Update(t.key, t.value);
    truth_a.Update(t.key, t.value);
  }
  spec.seed = 6;
  for (const Tuple& t : GenerateStream(spec)) {
    b.Update(t.key, t.value);
    truth_b.Update(t.key, t.value);
  }
  wide_count_t true_join = 0;
  for (item_t key = 0; key < 2000; ++key) {
    true_join += truth_a.Count(key) * truth_b.Count(key);
  }
  const wide_count_t estimate = a.InnerProductEstimate(b);
  EXPECT_GE(estimate, true_join);
  // Error bound ~ N_a*N_b/h; with h = 8192 and N = 100k each the noise
  // term is ~1.2e6 — allow 4x slack.
  EXPECT_LE(estimate, true_join + 4ull * 100000ull * 100000ull / 8192ull);
}

TEST(JoinEstimationTest, RequiresCompatibleSketches) {
  CountMin a(JoinConfig(1024)), b(JoinConfig(2048));
  EXPECT_DEATH(a.InnerProductEstimate(b), "Compatible");
}

}  // namespace
}  // namespace asketch
