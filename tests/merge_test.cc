// Merge semantics: distributed agents each summarize a partition and the
// summaries are merged; the result must answer queries over the union
// stream with each structure's usual guarantees.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/asketch.h"
#include "src/sketch/space_saving.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

struct SplitStream {
  std::vector<Tuple> first;
  std::vector<Tuple> second;
  ExactCounter truth;
};

SplitStream MakeSplit(double skew, uint64_t n = 100000,
                      uint32_t m = 5000) {
  StreamSpec spec;
  spec.stream_size = n;
  spec.num_distinct = m;
  spec.skew = skew;
  spec.seed = 55;
  SplitStream split{{}, {}, ExactCounter(m)};
  const std::vector<Tuple> stream = GenerateStream(spec);
  for (size_t i = 0; i < stream.size(); ++i) {
    split.truth.Update(stream[i].key, stream[i].value);
    (i % 2 == 0 ? split.first : split.second).push_back(stream[i]);
  }
  return split;
}

TEST(CountMinMergeTest, MergedEqualsSingleStreamSketch) {
  const SplitStream split = MakeSplit(1.2);
  const CountMinConfig config = CountMinConfig::FromSpaceBudget(
      16 * 1024, 4, 9);
  CountMin a(config), b(config), whole(config);
  for (const Tuple& t : split.first) {
    a.Update(t.key, t.value);
    whole.Update(t.key, t.value);
  }
  for (const Tuple& t : split.second) {
    b.Update(t.key, t.value);
    whole.Update(t.key, t.value);
  }
  ASSERT_FALSE(a.MergeFrom(b).has_value());
  for (item_t key = 0; key < 5000; ++key) {
    ASSERT_EQ(a.Estimate(key), whole.Estimate(key)) << "key " << key;
  }
}

TEST(CountMinMergeTest, RejectsIncompatibleConfigs) {
  CountMin a(CountMinConfig::FromSpaceBudget(16 * 1024, 4, 9));
  CountMin b(CountMinConfig::FromSpaceBudget(16 * 1024, 4, 10));  // seed
  EXPECT_TRUE(a.MergeFrom(b).has_value());
  CountMin c(CountMinConfig::FromSpaceBudget(8 * 1024, 4, 9));  // depth
  EXPECT_TRUE(a.MergeFrom(c).has_value());
}

TEST(SalsaCountMinMergeTest, MergedStaysOneSidedOverTheUnion) {
  // Salsa merging is not cell-wise addition (a merged counter covers its
  // neighbors with the max of their targets), so the merged sketch is
  // not bit-identical to a single-stream sketch. The contract is
  // one-sidedness over the union, with each bucket at least the sum of
  // the two inputs' readings.
  const SplitStream split = MakeSplit(1.2);
  const SalsaConfig config = SalsaConfig::FromSpaceBudget(16 * 1024, 4, 9);
  SalsaCountMin a(config), b(config);
  for (const Tuple& t : split.first) a.Update(t.key, t.value);
  for (const Tuple& t : split.second) b.Update(t.key, t.value);
  // Snapshot the inputs' estimates before the merge mutates `a`.
  std::vector<count_t> a_est(5000), b_est(5000);
  for (item_t key = 0; key < 5000; ++key) {
    a_est[key] = a.Estimate(key);
    b_est[key] = b.Estimate(key);
  }
  ASSERT_FALSE(a.MergeFrom(b).has_value());
  for (item_t key = 0; key < 5000; ++key) {
    ASSERT_GE(a.Estimate(key), split.truth.Count(key)) << "key " << key;
    // Every bucket was raised to at least the sum of both inputs'
    // readings, so per key the merged estimate dominates each input's
    // estimate (different rows may attain the two minima, so only the
    // max — not the sum — is a sound lower bound here).
    ASSERT_GE(a.Estimate(key), std::max(a_est[key], b_est[key]))
        << "key " << key;
  }
}

TEST(SalsaCountMinMergeTest, RejectsIncompatibleConfigs) {
  SalsaCountMin a(SalsaConfig::FromSpaceBudget(16 * 1024, 4, 9));
  SalsaCountMin b(SalsaConfig::FromSpaceBudget(16 * 1024, 4, 10));  // seed
  EXPECT_TRUE(a.MergeFrom(b).has_value());
  SalsaCountMin c(SalsaConfig::FromSpaceBudget(8 * 1024, 4, 9));  // depth
  EXPECT_TRUE(a.MergeFrom(c).has_value());
}

TEST(SalsaCountMinMergeTest, MergePreservesHeavilyMergedLayouts) {
  // Both inputs overflow into merged counters first; the fold must stay
  // one-sided even when it has to re-derive a coarser layout.
  SalsaConfig config;
  config.width = 4;
  config.depth = 64;
  config.seed = 9;
  const SplitStream split = MakeSplit(1.4, 200000, 1000);
  SalsaCountMin a(config), b(config);
  for (const Tuple& t : split.first) a.Update(t.key, t.value);
  for (const Tuple& t : split.second) b.Update(t.key, t.value);
  ASSERT_GT(a.MergedPairs() + b.MergedPairs(), 0u);
  ASSERT_FALSE(a.MergeFrom(b).has_value());
  for (item_t key = 0; key < 1000; ++key) {
    ASSERT_GE(a.Estimate(key), split.truth.Count(key)) << "key " << key;
  }
}

TEST(CountSketchMergeTest, MergedEqualsSingleStreamSketch) {
  const SplitStream split = MakeSplit(1.0);
  const CountSketchConfig config =
      CountSketchConfig::FromSpaceBudget(16 * 1024, 5, 9);
  CountSketch a(config), b(config), whole(config);
  for (const Tuple& t : split.first) {
    a.Update(t.key, t.value);
    whole.Update(t.key, t.value);
  }
  for (const Tuple& t : split.second) {
    b.Update(t.key, t.value);
    whole.Update(t.key, t.value);
  }
  ASSERT_FALSE(a.MergeFrom(b).has_value());
  for (item_t key = 0; key < 5000; key += 3) {
    ASSERT_EQ(a.Estimate(key), whole.Estimate(key)) << "key " << key;
  }
}

TEST(MisraGriesMergeTest, MergedSummaryKeepsHeavyHitters) {
  const uint32_t k = 15;
  const SplitStream split = MakeSplit(1.5, 60000, 2000);
  MisraGries a(k), b(k);
  for (const Tuple& t : split.first) a.Update(t.key, t.value);
  for (const Tuple& t : split.second) b.Update(t.key, t.value);
  a.MergeFrom(b);
  EXPECT_LE(a.size(), k);
  // MG merge guarantee: every key with total frequency > N/(k+1) is
  // monitored in the merged summary.
  const wide_count_t n = split.truth.Total();
  for (item_t key = 0; key < 2000; ++key) {
    if (split.truth.Count(key) > n / (k + 1)) {
      EXPECT_TRUE(a.Contains(key)) << "heavy key " << key;
    }
  }
  // Counts stay lower bounds.
  a.ForEach([&split](item_t key, count_t count) {
    EXPECT_LE(count, split.truth.Count(key));
  });
}

TEST(SpaceSavingMergeTest, BoundsHoldOverTheUnion) {
  const SplitStream split = MakeSplit(1.4, 80000, 2000);
  SpaceSaving a(24), b(24);
  for (const Tuple& t : split.first) a.Update(t.key, t.value);
  for (const Tuple& t : split.second) b.Update(t.key, t.value);
  a.MergeFrom(b);
  EXPECT_LE(a.size(), 24u);
  for (const SpaceSavingEntry& e : a.TopK()) {
    EXPECT_GE(e.count, split.truth.Count(e.key)) << "key " << e.key;
    EXPECT_LE(e.count - e.error, split.truth.Count(e.key))
        << "key " << e.key;
  }
}

TEST(SpaceSavingMergeTest, HeavyHittersSurviveTheMerge) {
  const uint32_t k = 20;
  const SplitStream split = MakeSplit(1.6, 80000, 2000);
  SpaceSaving a(k), b(k);
  for (const Tuple& t : split.first) a.Update(t.key, t.value);
  for (const Tuple& t : split.second) b.Update(t.key, t.value);
  a.MergeFrom(b);
  const wide_count_t n = split.truth.Total();
  for (item_t key = 0; key < 2000; ++key) {
    if (split.truth.Count(key) > 2 * n / k) {
      EXPECT_TRUE(a.Contains(key)) << "heavy key " << key;
    }
  }
}

using AllFilters = ::testing::Types<VectorFilter, StrictHeapFilter,
                                    RelaxedHeapFilter, StreamSummaryFilter>;

template <typename T>
class ASketchMergeTest : public ::testing::Test {};
TYPED_TEST_SUITE(ASketchMergeTest, AllFilters);

ASketchConfig MergeConfig() {
  ASketchConfig config;
  config.total_bytes = 16 * 1024;
  config.width = 4;
  config.filter_items = 16;
  config.seed = 21;
  return config;
}

TYPED_TEST(ASketchMergeTest, MergedEstimatesAreOneSidedOverTheUnion) {
  const SplitStream split = MakeSplit(1.3);
  auto a = MakeASketchCountMin<TypeParam>(MergeConfig());
  auto b = MakeASketchCountMin<TypeParam>(MergeConfig());
  for (const Tuple& t : split.first) a.Update(t.key, t.value);
  for (const Tuple& t : split.second) b.Update(t.key, t.value);
  ASSERT_FALSE(a.MergeFrom(b).has_value());
  for (item_t key = 0; key < 5000; ++key) {
    ASSERT_GE(a.Estimate(key), split.truth.Count(key)) << "key " << key;
  }
}

TYPED_TEST(ASketchMergeTest, MergedHotKeysStayTight) {
  const SplitStream split = MakeSplit(1.8, 200000, 20000);
  auto a = MakeASketchCountMin<TypeParam>(MergeConfig());
  auto b = MakeASketchCountMin<TypeParam>(MergeConfig());
  for (const Tuple& t : split.first) a.Update(t.key, t.value);
  for (const Tuple& t : split.second) b.Update(t.key, t.value);
  ASSERT_FALSE(a.MergeFrom(b).has_value());
  // The hottest key's merged estimate must be within the combined
  // sketch noise (each side's estimate was near-exact).
  item_t hottest = 0;
  for (item_t key = 1; key < 20000; ++key) {
    if (split.truth.Count(key) > split.truth.Count(hottest)) {
      hottest = key;
    }
  }
  const double est = static_cast<double>(a.Estimate(hottest));
  const double t = static_cast<double>(split.truth.Count(hottest));
  EXPECT_GE(est, t);
  EXPECT_LE(est, t * 1.1 + 2.0 * split.truth.Total() / 1000);
}

TYPED_TEST(ASketchMergeTest, MergeRejectsMismatchedConfigs) {
  auto a = MakeASketchCountMin<TypeParam>(MergeConfig());
  ASketchConfig other_config = MergeConfig();
  other_config.filter_items = 8;
  auto b = MakeASketchCountMin<TypeParam>(other_config);
  EXPECT_TRUE(a.MergeFrom(b).has_value());
  ASketchConfig third = MergeConfig();
  third.seed = 99;
  auto c = MakeASketchCountMin<TypeParam>(third);
  EXPECT_TRUE(a.MergeFrom(c).has_value());
}

TEST(ASketchMergeTest2, MergeIntoEmptyAndFromEmpty) {
  const SplitStream split = MakeSplit(1.2, 20000, 1000);
  auto a = MakeASketchCountMin<RelaxedHeapFilter>(MergeConfig());
  auto empty = MakeASketchCountMin<RelaxedHeapFilter>(MergeConfig());
  for (const Tuple& t : split.first) a.Update(t.key, t.value);
  // Merge an empty sketch in: nothing changes.
  const count_t before = a.Estimate(1);
  ASSERT_FALSE(a.MergeFrom(empty).has_value());
  EXPECT_EQ(a.Estimate(1), before);
  // Merge into an empty sketch: estimates dominate a's own.
  ASSERT_FALSE(empty.MergeFrom(a).has_value());
  for (item_t key = 0; key < 1000; key += 11) {
    EXPECT_GE(empty.Estimate(key), a.Estimate(key) > 0 ? 1u : 0u);
  }
}

TEST(FcmMergeTest, MergedFcmStaysOneSidedForColdKeys) {
  const SplitStream split = MakeSplit(1.3);
  const FcmConfig config = FcmConfig::FromSpaceBudget(16 * 1024, 8, 16, 9);
  Fcm a(config), b(config);
  std::vector<bool> ever_hot(5000, false);
  for (const Tuple& t : split.first) {
    a.Update(t.key, t.value);
    if (a.IsHot(t.key)) ever_hot[t.key] = true;
  }
  for (const Tuple& t : split.second) {
    b.Update(t.key, t.value);
    if (b.IsHot(t.key)) ever_hot[t.key] = true;
  }
  ASSERT_FALSE(a.MergeFrom(b).has_value());
  for (item_t key = 0; key < 5000; ++key) {
    if (ever_hot[key] || a.IsHot(key)) continue;
    ASSERT_GE(a.Estimate(key), split.truth.Count(key)) << "key " << key;
  }
}

}  // namespace
}  // namespace asketch
