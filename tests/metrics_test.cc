#include "src/workload/metrics.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace asketch {
namespace {

// Fixture: truth {0:100, 1:50, 2:10, 3:1, 4:0}.
ExactCounter MakeTruth() {
  ExactCounter truth(5);
  truth.Update(0, 100);
  truth.Update(1, 50);
  truth.Update(2, 10);
  truth.Update(3, 1);
  return truth;
}

EstimateFn MapEstimator(std::map<item_t, count_t> values) {
  return [values = std::move(values)](item_t key) -> count_t {
    const auto it = values.find(key);
    return it == values.end() ? 0 : it->second;
  };
}

TEST(MetricsTest, ObservedErrorExactEstimatorIsZero) {
  const ExactCounter truth = MakeTruth();
  const auto estimator =
      MapEstimator({{0, 100}, {1, 50}, {2, 10}, {3, 1}});
  EXPECT_DOUBLE_EQ(
      ObservedError({0, 1, 2, 3}, estimator, truth), 0.0);
}

TEST(MetricsTest, ObservedErrorHandComputed) {
  const ExactCounter truth = MakeTruth();
  // est: 0->110 (+10), 1->50, 2->15 (+5). Queries 0,1,2:
  // sum|err| = 15, sum true = 160.
  const auto estimator = MapEstimator({{0, 110}, {1, 50}, {2, 15}});
  EXPECT_DOUBLE_EQ(ObservedError({0, 1, 2}, estimator, truth),
                   15.0 / 160.0);
}

TEST(MetricsTest, ObservedErrorWeighsRepeatedQueries) {
  const ExactCounter truth = MakeTruth();
  const auto estimator = MapEstimator({{0, 110}, {2, 10}});
  // Query 0 twice: numerator 20, denominator 210.
  EXPECT_DOUBLE_EQ(ObservedError({0, 0, 2}, estimator, truth),
                   20.0 / 210.0);
}

TEST(MetricsTest, AverageRelativeErrorHandComputed) {
  const ExactCounter truth = MakeTruth();
  // rel errors: 0: 10/100 = 0.1 ; 2: 5/10 = 0.5 ; mean = 0.3.
  const auto estimator = MapEstimator({{0, 110}, {2, 15}});
  EXPECT_DOUBLE_EQ(AverageRelativeError({0, 2}, estimator, truth), 0.3);
}

TEST(MetricsTest, AverageRelativeErrorSkipsZeroTruth) {
  const ExactCounter truth = MakeTruth();
  const auto estimator = MapEstimator({{0, 100}, {4, 1000}});
  // Key 4 has truth 0 and must be skipped; key 0 contributes 0.
  EXPECT_DOUBLE_EQ(AverageRelativeError({0, 4}, estimator, truth), 0.0);
}

TEST(MetricsTest, PrecisionAtKPerfectReport) {
  const ExactCounter truth = MakeTruth();
  EXPECT_DOUBLE_EQ(PrecisionAtK({0, 1}, truth, 2), 1.0);
}

TEST(MetricsTest, PrecisionAtKPartialReport) {
  const ExactCounter truth = MakeTruth();
  // Reported {0, 3}: key 3 (count 1) is below the 2nd-ranked count 50.
  EXPECT_DOUBLE_EQ(PrecisionAtK({0, 3}, truth, 2), 0.5);
}

TEST(MetricsTest, PrecisionAtKShortReportPenalized) {
  const ExactCounter truth = MakeTruth();
  EXPECT_DOUBLE_EQ(PrecisionAtK({0}, truth, 2), 0.5);
}

TEST(MetricsTest, PrecisionAtKIgnoresExtraEntries) {
  const ExactCounter truth = MakeTruth();
  // Only the first k reported entries are considered.
  EXPECT_DOUBLE_EQ(PrecisionAtK({0, 1, 3, 3, 3}, truth, 2), 1.0);
}

TEST(MetricsTest, FindMisclassifiedKeys) {
  const ExactCounter truth = MakeTruth();
  // k=2: threshold = 50. Key 3 (truth 1) estimated at 60 -> misclassified;
  // key 2 (truth 10) estimated at 20 -> fine.
  const auto estimator =
      MapEstimator({{0, 100}, {1, 50}, {2, 20}, {3, 60}});
  const auto mis = FindMisclassifiedKeys(estimator, truth, 2);
  ASSERT_EQ(mis.size(), 1u);
  EXPECT_EQ(mis[0].key, 3u);
  EXPECT_EQ(mis[0].true_count, 1u);
  EXPECT_EQ(mis[0].estimate, 60u);
  EXPECT_DOUBLE_EQ(mis[0].RelativeError(), 59.0);
}

TEST(MetricsTest, MisclassificationOfZeroTruthKey) {
  const ExactCounter truth = MakeTruth();
  const auto estimator = MapEstimator({{4, 70}});
  const auto mis = FindMisclassifiedKeys(estimator, truth, 2);
  ASSERT_EQ(mis.size(), 1u);
  EXPECT_EQ(mis[0].key, 4u);
  EXPECT_DOUBLE_EQ(mis[0].RelativeError(), 70.0);
}

TEST(MetricsTest, NoMisclassificationsForExactEstimator) {
  const ExactCounter truth = MakeTruth();
  const auto estimator =
      MapEstimator({{0, 100}, {1, 50}, {2, 10}, {3, 1}});
  EXPECT_TRUE(FindMisclassifiedKeys(estimator, truth, 2).empty());
}

TEST(MetricsTest, TopErrorItemsMeanError) {
  const ExactCounter truth = MakeTruth();
  // errors: 0:+20, 1:+10, 2:0, 3:0, 4:+5. Top-2 mean = 15.
  const auto estimator =
      MapEstimator({{0, 120}, {1, 60}, {2, 10}, {3, 1}, {4, 5}});
  EXPECT_DOUBLE_EQ(TopErrorItemsMeanError(estimator, truth, 2), 15.0);
}

TEST(MetricsTest, LowFrequencyAverageRelativeError) {
  const ExactCounter truth = MakeTruth();
  // k=2 -> threshold 50; low-frequency keys with truth>0: 2 (10), 3 (1).
  // est 2->15 (rel 0.5), 3->2 (rel 1.0) => mean 0.75.
  const auto estimator =
      MapEstimator({{0, 100}, {1, 50}, {2, 15}, {3, 2}});
  EXPECT_DOUBLE_EQ(
      LowFrequencyAverageRelativeError(estimator, truth, 2), 0.75);
}

}  // namespace
}  // namespace asketch
