#include "src/sketch/misra_gries.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/workload/exact_counter.h"

namespace asketch {
namespace {

TEST(MisraGriesTest, InsertAndLookup) {
  MisraGries mg(4);
  mg.Update(10);
  mg.Update(10);
  mg.Update(20);
  EXPECT_TRUE(mg.Contains(10));
  EXPECT_EQ(mg.CountOf(10), 2u);
  EXPECT_EQ(mg.CountOf(20), 1u);
  EXPECT_FALSE(mg.Contains(30));
  EXPECT_EQ(mg.CountOf(30), 0u);
}

TEST(MisraGriesTest, DecrementOnOverflow) {
  MisraGries mg(2);
  mg.Update(1);
  mg.Update(1);
  mg.Update(2);
  // Summary full {1:2, 2:1}; a third key decrements everything and evicts
  // the zeroed key 2, then inserts key 3 with the residual weight 0... so
  // key 3 lands with no count only if its weight was fully absorbed.
  mg.Update(3);
  EXPECT_TRUE(mg.Contains(1));
  EXPECT_EQ(mg.CountOf(1), 1u);
  EXPECT_FALSE(mg.Contains(2));
}

TEST(MisraGriesTest, GuaranteesFrequentItemsAreMonitored) {
  // Any key with frequency > N/(k+1) must be monitored at the end.
  const uint32_t k = 9;
  MisraGries mg(k);
  ExactCounter truth(100);
  Rng rng(3);
  const uint64_t n = 10000;
  for (uint64_t i = 0; i < n; ++i) {
    // Keys 0 and 1 are hot (~30% each); the rest is uniform noise.
    item_t key;
    const uint64_t r = rng.NextBounded(10);
    if (r < 3) {
      key = 0;
    } else if (r < 6) {
      key = 1;
    } else {
      key = static_cast<item_t>(2 + rng.NextBounded(98));
    }
    mg.Update(key);
    truth.Update(key);
  }
  for (item_t key = 0; key < 100; ++key) {
    if (truth.Count(key) > n / (k + 1)) {
      EXPECT_TRUE(mg.Contains(key)) << "hot key " << key << " missing";
    }
  }
}

TEST(MisraGriesTest, CountNeverExceedsTruth) {
  MisraGries mg(8);
  ExactCounter truth(200);
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(200));
    mg.Update(key);
    truth.Update(key);
  }
  // MG counters are lower bounds on true frequency.
  mg.ForEach([&truth](item_t key, count_t count) {
    EXPECT_LE(count, truth.Count(key));
  });
}

TEST(MisraGriesTest, CountErrorBoundedByNOverK) {
  const uint32_t k = 10;
  MisraGries mg(k);
  ExactCounter truth(50);
  Rng rng(29);
  const uint64_t n = 5000;
  for (uint64_t i = 0; i < n; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(50));
    mg.Update(key);
    truth.Update(key);
  }
  // truth - count <= N/(k+1) for monitored keys.
  mg.ForEach([&](item_t key, count_t count) {
    EXPECT_LE(truth.Count(key) - count, n / (k + 1));
  });
}

TEST(MisraGriesTest, WeightedUpdates) {
  MisraGries mg(2);
  mg.Update(1, 100);
  mg.Update(2, 50);
  mg.Update(3, 60);  // decrements by 50, evicts 2, inserts 3 with 10
  EXPECT_TRUE(mg.Contains(1));
  EXPECT_EQ(mg.CountOf(1), 50u);
  EXPECT_FALSE(mg.Contains(2));
  EXPECT_TRUE(mg.Contains(3));
  EXPECT_EQ(mg.CountOf(3), 10u);
}

TEST(MisraGriesTest, WeightFullyAbsorbedLeavesKeyOut) {
  MisraGries mg(2);
  mg.Update(1, 100);
  mg.Update(2, 100);
  mg.Update(3, 40);  // all 40 absorbed by decrements; no eviction room
  EXPECT_FALSE(mg.Contains(3));
  EXPECT_EQ(mg.CountOf(1), 60u);
  EXPECT_EQ(mg.CountOf(2), 60u);
}

TEST(MisraGriesTest, CapacityOne) {
  MisraGries mg(1);
  mg.Update(1);
  mg.Update(1);
  mg.Update(2);  // decrement 1 to 1... then 2 absorbed
  EXPECT_TRUE(mg.Contains(1));
  EXPECT_EQ(mg.CountOf(1), 1u);
  mg.Update(2);  // 1 hits zero, evicted; 2 inserted? weight absorbed first
  // Either way the summary stays consistent:
  EXPECT_LE(mg.size(), 1u);
}

TEST(MisraGriesTest, ResetEmptiesSummary) {
  MisraGries mg(4);
  mg.Update(1);
  mg.Reset();
  EXPECT_EQ(mg.size(), 0u);
  EXPECT_FALSE(mg.Contains(1));
}

TEST(MisraGriesTest, MemoryAccounting) {
  MisraGries mg(32);
  EXPECT_EQ(mg.MemoryUsageBytes(), 32 * MisraGries::BytesPerItem());
  EXPECT_EQ(MisraGries::BytesPerItem(), 8u);
}

}  // namespace
}  // namespace asketch
