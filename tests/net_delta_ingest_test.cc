// ShardSet delta-mode ingest (src/net/shard_set.{h,cc}): parity with
// queue mode under a stable head, flush/drain barrier semantics, the
// overload paths, snapshot round-trips, and — under TSan — concurrent
// decode threads building private deltas while lock-free readers query.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/net/shard_set.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace net {
namespace {

constexpr uint32_t kFilterItems = 16;
constexpr uint32_t kDomain = 4096;

ShardSetOptions BaseOptions(SketchBackend backend, IngestMode mode) {
  ShardSetOptions options;
  options.num_shards = 4;
  options.backend = backend;
  options.ingest_mode = mode;
  options.shard_config.total_bytes = 32 * 1024;
  options.shard_config.width = 4;
  options.shard_config.filter_items = kFilterItems;
  options.shard_config.seed = 99;
  return options;
}

/// Heavy warm-up tuples: per-shard filters fill with the hottest keys
/// at weights no tail estimate can beat, so the heads stay stable for
/// the rest of the test (the CountMin equivalence regime).
std::vector<Tuple> WarmupTuples() {
  std::vector<Tuple> tuples;
  for (item_t key = 0; key < 4 * kFilterItems; ++key) {
    tuples.push_back(Tuple{key, 1 << 20});
  }
  return tuples;
}

std::vector<Tuple> PayloadTuples(uint64_t seed) {
  StreamSpec spec;
  spec.stream_size = 30000;
  spec.num_distinct = kDomain;
  spec.skew = 1.1;
  spec.seed = seed;
  return GenerateStream(spec);
}

uint64_t TotalApplied(const ShardSet& shards) {
  uint64_t total = 0;
  for (uint32_t i = 0; i < shards.num_shards(); ++i) {
    total += shards.AppliedTuples(i);
  }
  return total;
}

TEST(NetDeltaIngestTest, QueueAndDeltaModeAgreeUnderStableHead) {
  ShardSet queue_set(
      BaseOptions(SketchBackend::kCountMin, IngestMode::kQueue));
  ShardSet delta_set(
      BaseOptions(SketchBackend::kCountMin, IngestMode::kDelta));
  const std::vector<Tuple> warmup = WarmupTuples();
  // Null state => queue path in both sets: identical warm-up.
  queue_set.Ingest(warmup);
  delta_set.Ingest(warmup);
  queue_set.Drain();
  delta_set.Drain();

  const std::vector<Tuple> payload = PayloadTuples(31);
  queue_set.Ingest(payload);
  DeltaIngestState state = delta_set.MakeDeltaState();
  // Many small UPDATE-sized slices, exercising epoch rollover.
  for (size_t begin = 0; begin < payload.size(); begin += 997) {
    const size_t count = std::min<size_t>(997, payload.size() - begin);
    delta_set.Ingest(
        std::span<const Tuple>(payload.data() + begin, count), &state);
  }
  delta_set.FlushDeltas(state);
  queue_set.Drain();
  delta_set.Drain();

  EXPECT_EQ(TotalApplied(queue_set), TotalApplied(delta_set));
  EXPECT_EQ(TotalApplied(delta_set), warmup.size() + payload.size());
  for (item_t key = 0; key < kDomain; ++key) {
    ASSERT_EQ(delta_set.Estimate(key), queue_set.Estimate(key))
        << "key " << key;
  }
  // The merged top-k reports agree too (same filters, same counts).
  const auto queue_topk = queue_set.TopK(32);
  const auto delta_topk = delta_set.TopK(32);
  ASSERT_EQ(queue_topk.size(), delta_topk.size());
  for (size_t i = 0; i < queue_topk.size(); ++i) {
    EXPECT_EQ(queue_topk[i].key, delta_topk[i].key);
    EXPECT_EQ(queue_topk[i].estimate, delta_topk[i].estimate);
  }
}

TEST(NetDeltaIngestTest, SalsaDeltaModeStaysOneSided) {
  ShardSet shards(BaseOptions(SketchBackend::kSalsa, IngestMode::kDelta));
  ExactCounter truth(kDomain);
  const std::vector<Tuple> payload = PayloadTuples(37);
  for (const Tuple& t : payload) {
    truth.Update(t.key, static_cast<delta_t>(t.value));
  }
  DeltaIngestState state = shards.MakeDeltaState();
  shards.Ingest(payload, &state);
  shards.FlushDeltas(state);
  shards.Drain();
  for (item_t key = 0; key < kDomain; ++key) {
    ASSERT_GE(static_cast<wide_count_t>(shards.Estimate(key)),
              truth.Count(key))
        << "key " << key;
  }
}

TEST(NetDeltaIngestTest, TuplesBecomeVisibleOnlyAtFlush) {
  ShardSetOptions options =
      BaseOptions(SketchBackend::kCountMin, IngestMode::kDelta);
  options.delta_flush_tuples = 1u << 30;  // never auto-flush
  ShardSet shards(options);
  DeltaIngestState state = shards.MakeDeltaState();
  std::vector<Tuple> tuples;
  for (item_t key = 0; key < 100; ++key) tuples.push_back(Tuple{key, 7});
  shards.Ingest(tuples, &state);
  shards.Drain();
  // Still private to the accumulator: nothing queued, nothing applied.
  EXPECT_EQ(state.PendingTuples(), tuples.size());
  EXPECT_EQ(TotalApplied(shards), 0u);
  shards.FlushDeltas(state);
  shards.Drain();
  EXPECT_EQ(state.PendingTuples(), 0u);
  EXPECT_EQ(TotalApplied(shards), tuples.size());
  for (item_t key = 0; key < 100; ++key) {
    EXPECT_GE(shards.Estimate(key), 7u);
  }
}

TEST(NetDeltaIngestTest, AutoFlushHonorsEpochThreshold) {
  ShardSetOptions options =
      BaseOptions(SketchBackend::kCountMin, IngestMode::kDelta);
  options.delta_flush_tuples = 256;
  ShardSet shards(options);
  DeltaIngestState state = shards.MakeDeltaState();
  const std::vector<Tuple> payload = PayloadTuples(41);
  shards.Ingest(payload, &state);
  // Every shard saw far more than one epoch of tuples, so almost all
  // of the payload must already have been flushed without an explicit
  // FlushDeltas call.
  EXPECT_LT(state.PendingTuples(),
            4ull * options.delta_flush_tuples + 4ull * payload.size() / 256);
  shards.FlushDeltas(state);
  shards.Drain();
  EXPECT_EQ(TotalApplied(shards), payload.size());
}

TEST(NetDeltaIngestTest, ShedOverloadAccountsDeltaWeight) {
  ShardSetOptions options =
      BaseOptions(SketchBackend::kCountMin, IngestMode::kDelta);
  options.overload = OverloadPolicy::kShed;
  options.max_queue_batches = 1;
  options.max_enqueue_wait_ms = 1;
  ShardSet shards(options);
  shards.StallWorkersForTesting(true);
  DeltaIngestState state = shards.MakeDeltaState();
  std::vector<Tuple> tuples;
  for (item_t key = 0; key < 512; ++key) tuples.push_back(Tuple{key, 3});
  shards.Ingest(tuples, &state);
  uint64_t shed = shards.FlushDeltas(state);
  // One delta per shard fits the queue; flushing again with fresh
  // tuples must shed and report the dropped weight.
  shards.Ingest(tuples, &state);
  shed += shards.FlushDeltas(state);
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(shed % 3, 0u);  // whole tuples of weight 3
  shards.StallWorkersForTesting(false);
  shards.Drain();
  const WireStats stats = shards.GetStats();
  EXPECT_EQ(stats.shed_weight, shed);
}

TEST(NetDeltaIngestTest, SnapshotRoundTripsDeltaIngestedState) {
  ShardSet shards(BaseOptions(SketchBackend::kCountMin, IngestMode::kDelta));
  DeltaIngestState state = shards.MakeDeltaState();
  const std::vector<Tuple> payload = PayloadTuples(43);
  shards.Ingest(payload, &state);
  shards.FlushDeltas(state);
  StateDigest digest;
  const std::vector<uint8_t> payload_bytes = shards.SerializeState(&digest);
  ASSERT_FALSE(payload_bytes.empty());
  EXPECT_EQ(digest.ingested, payload.size());

  ShardSet restored(
      BaseOptions(SketchBackend::kCountMin, IngestMode::kDelta));
  ASSERT_FALSE(restored.RestoreState(payload_bytes).has_value());
  for (item_t key = 0; key < kDomain; key += 7) {
    EXPECT_EQ(restored.Estimate(key), shards.Estimate(key));
  }
}

// The TSan target: decode threads accumulate and flush private deltas
// while a reader hammers the lock-free query paths. Ends with an
// exactness check on applied counts and a one-sidedness check against
// the union stream.
TEST(NetDeltaIngestTest, ConcurrentDecodeThreadsAndReadersAreSafe) {
  ShardSetOptions options =
      BaseOptions(SketchBackend::kCountMin, IngestMode::kDelta);
  options.delta_flush_tuples = 512;
  ShardSet shards(options);
  ExactCounter truth(kDomain);
  std::vector<std::vector<Tuple>> streams;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    streams.push_back(PayloadTuples(100 + seed));
    for (const Tuple& t : streams.back()) {
      truth.Update(t.key, static_cast<delta_t>(t.value));
    }
  }
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    uint64_t sink = 0;
    while (!stop_reader.load(std::memory_order_acquire)) {
      sink += shards.Estimate(5);
      sink += shards.TopK(8).size();
    }
    EXPECT_GE(sink, 0u);
  });
  std::vector<std::thread> writers;
  for (const auto& stream : streams) {
    writers.emplace_back([&shards, &stream] {
      DeltaIngestState state = shards.MakeDeltaState();
      for (size_t begin = 0; begin < stream.size(); begin += 503) {
        const size_t count = std::min<size_t>(503, stream.size() - begin);
        shards.Ingest(
            std::span<const Tuple>(stream.data() + begin, count), &state);
      }
      shards.FlushDeltas(state);
    });
  }
  for (std::thread& t : writers) t.join();
  stop_reader.store(true, std::memory_order_release);
  reader.join();
  shards.Drain();

  uint64_t expected = 0;
  for (const auto& stream : streams) expected += stream.size();
  EXPECT_EQ(TotalApplied(shards), expected);
  for (item_t key = 0; key < kDomain; ++key) {
    ASSERT_GE(static_cast<wide_count_t>(shards.Estimate(key)),
              truth.Count(key))
        << "key " << key;
  }
}

}  // namespace
}  // namespace net
}  // namespace asketch
