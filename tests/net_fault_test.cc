// Deterministic socket-fault tests for the net path: EINTR resumption
// (injected and from a real signal), short reads/writes, connection
// resets with retry and reconnect+replay, client connect/read
// deadlines, on-wire corruption detection, server idle disconnects,
// and the graceful drain on Stop(). Every schedule is armed explicitly
// on a FaultInjectingSocket, so a failure replays exactly.

#include "src/net/socket_io.h"

#include <chrono>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"
#include "src/net/client.h"
#include "src/net/net_metrics.h"
#include "src/net/server.h"
#include "src/workload/stream_generator.h"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>
#define ASKETCH_NET_TESTS 1
#else
#define ASKETCH_NET_TESTS 0
#endif

namespace asketch {
namespace net {
namespace {

#if ASKETCH_NET_TESTS

ServerOptions SmallServer() {
  ServerOptions options;
  options.shards.num_shards = 2;
  options.shards.shard_config.total_bytes = 32 * 1024;
  return options;
}

std::vector<Tuple> TestStream(uint64_t n, uint64_t seed = 7) {
  StreamSpec spec;
  spec.stream_size = n;
  spec.num_distinct = n / 4 + 16;
  spec.seed = seed;
  return GenerateStream(spec);
}

/// A scriptable single-connection server speaking just enough of the
/// protocol to drive client failure paths the real Server is too
/// well-behaved to exercise (silent hangs, mid-request closes).
class MiniServer {
 public:
  enum class Behavior {
    kAnswerQueries,         ///< HELLO then answer every QUERY with 42
    kSilentAfterHello,      ///< HELLO then never write another byte
    kCloseOnFirstQuery,     ///< connection 0 closes on QUERY;
                            ///< connection 1+ answers normally
    kDelayedQueryResponse,  ///< HELLO, then sleep before each answer
  };

  explicit MiniServer(Behavior behavior, uint32_t delay_ms = 0)
      : behavior_(behavior), delay_ms_(delay_ms) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 8) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Serve(); });
  }

  ~MiniServer() {
    stop_.store(true);
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  bool ok() const { return listen_fd_ >= 0; }
  uint16_t port() const { return port_; }

 private:
  void Serve() {
    uint64_t index = 0;
    while (!stop_.load()) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;
      }
      Handle(fd, index++);
      ::close(fd);
    }
  }

  bool SendAll(int fd, const std::vector<uint8_t>& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + sent,
                               bytes.size() - sent,
#ifdef MSG_NOSIGNAL
                               MSG_NOSIGNAL
#else
                               0
#endif
      );
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  void Handle(int fd, uint64_t index) {
    FrameDecoder decoder;
    uint8_t buffer[4096];
    uint64_t received = 0;
    for (;;) {
      while (auto frame = decoder.Next()) {
        switch (frame->opcode) {
          case Opcode::kHello:
            if (!SendAll(fd, EncodeHelloResponse(
                                 {kProtocolVersionMax, 1}))) {
              return;
            }
            if (behavior_ == Behavior::kSilentAfterHello) {
              // Hold the connection open but never write again; exit
              // only when the harness tears the listener down.
              while (!stop_.load()) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
              }
              return;
            }
            break;
          case Opcode::kQuery:
            if (behavior_ == Behavior::kCloseOnFirstQuery && index == 0) {
              return;  // abrupt close mid-request
            }
            if (behavior_ == Behavior::kDelayedQueryResponse) {
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(delay_ms_));
            }
            if (!SendAll(fd, EncodeQueryResponse(42))) return;
            break;
          case Opcode::kUpdate: {
            std::vector<Tuple> tuples;
            ParseUpdateRequest(frame->payload, &tuples);
            received += tuples.size();
            if (frame->want_ack() &&
                !SendAll(fd, EncodeUpdateAck({received, 0}))) {
              return;
            }
            break;
          }
          default:
            return;
        }
      }
      if (decoder.corrupt()) return;
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;
      decoder.Feed(buffer, static_cast<size_t>(n));
    }
  }

  Behavior behavior_;
  uint32_t delay_ms_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// --------------------------------------------------------------------
// EINTR resumption (the fails-on-old regression: the old client treated
// any -1 from connect/poll/recv/send as fatal).
// --------------------------------------------------------------------

TEST(NetFault, ClientSurvivesInjectedEintrOnEverySyscall) {
  Server server(SmallServer());
  ASSERT_EQ(server.Start(), std::nullopt);

  FaultInjectingSocket faults;
  // Interrupt the first call of every kind, plus a few extra recvs —
  // wherever the client happens to be blocked, the syscall must resume.
  faults.ArmConnectEintrAt(0);
  faults.ArmPollEintrAt(0);
  faults.ArmSendEintrAt(0);
  faults.ArmRecvEintrAt(0);
  faults.ArmRecvEintrAt(1);
  faults.ArmRecvEintrAt(2);

  ClientOptions options;
  options.port = server.port();
  options.io = faults.Hooks();
  Client client;
  ASSERT_EQ(client.Connect(options), std::nullopt);
  EXPECT_GE(faults.connects_seen(), 1u);
  EXPECT_GE(faults.recvs_seen(), 1u);

  const auto tuples = TestStream(5'000);
  ASSERT_EQ(client.Update(tuples), std::nullopt);
  ASSERT_EQ(client.Flush(), std::nullopt);
  EXPECT_EQ(client.last_ack().received_tuples, tuples.size());
}

namespace {
void IgnoreSignal(int) {}
}  // namespace

// A real signal delivered mid-recv/mid-poll (the state a checkpoint
// SIGUSR1 leaves behind in asketchd deployments). The handler is
// installed without SA_RESTART, so blocking syscalls genuinely return
// EINTR instead of resuming transparently.
TEST(NetFault, ClientSurvivesRealSignalDuringBlockingQuery) {
  MiniServer server(MiniServer::Behavior::kDelayedQueryResponse,
                    /*delay_ms=*/300);
  ASSERT_TRUE(server.ok());

  struct sigaction action {};
  action.sa_handler = IgnoreSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction previous {};
  ASSERT_EQ(sigaction(SIGUSR2, &action, &previous), 0);

  Client client;
  ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt);

  const pthread_t victim = pthread_self();
  std::atomic<bool> done{false};
  std::thread pounder([&] {
    while (!done.load()) {
      pthread_kill(victim, SIGUSR2);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  uint64_t estimate = 0;
  const auto error = client.Query(1, &estimate);
  done.store(true);
  pounder.join();
  sigaction(SIGUSR2, &previous, nullptr);

  EXPECT_EQ(error, std::nullopt)
      << "a signal mid-request must not kill the connection";
  EXPECT_EQ(estimate, 42u);
}

// --------------------------------------------------------------------
// Short reads and writes: fragmented TCP must reassemble.
// --------------------------------------------------------------------

TEST(NetFault, ClientReassemblesUnderShortReadsAndWrites) {
  Server server(SmallServer());
  ASSERT_EQ(server.Start(), std::nullopt);

  FaultInjectingSocket faults;
  for (uint64_t i = 0; i < 48; ++i) faults.ArmShortRecvAt(i, 3);
  for (uint64_t i = 0; i < 16; ++i) faults.ArmShortSendAt(i, 7);

  ClientOptions options;
  options.port = server.port();
  options.io = faults.Hooks();
  Client client;
  ASSERT_EQ(client.Connect(options), std::nullopt);
  const auto tuples = TestStream(2'000);
  ASSERT_EQ(client.Update(tuples), std::nullopt);
  ASSERT_EQ(client.Flush(), std::nullopt);
  EXPECT_EQ(client.last_ack().received_tuples, tuples.size());
  uint64_t estimate = 0;
  ASSERT_EQ(client.Query(tuples.front().key, &estimate), std::nullopt);
  EXPECT_GE(estimate, tuples.front().value);
}

// --------------------------------------------------------------------
// Retry of idempotent requests across a dropped connection.
// --------------------------------------------------------------------

TEST(NetFault, IdempotentQueryRetriesAcrossServerClose) {
  MiniServer server(MiniServer::Behavior::kCloseOnFirstQuery);
  ASSERT_TRUE(server.ok());

  ClientOptions options;
  options.port = server.port();
  options.max_retries = 2;
  options.retry_backoff_ms = 1;
  Client client;
  ASSERT_EQ(client.Connect(options), std::nullopt);
  uint64_t estimate = 0;
  ASSERT_EQ(client.Query(7, &estimate), std::nullopt)
      << "retry must redial and repeat the request";
  EXPECT_EQ(estimate, 42u);
  EXPECT_GE(client.retries(), 1u);
}

TEST(NetFault, NoRetriesFailsFastOnServerClose) {
  MiniServer server(MiniServer::Behavior::kCloseOnFirstQuery);
  ASSERT_TRUE(server.ok());
  Client client;
  ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt);
  uint64_t estimate = 0;
  EXPECT_NE(client.Query(7, &estimate), std::nullopt)
      << "default options must keep fail-fast semantics";
  EXPECT_EQ(client.retries(), 0u);
}

// --------------------------------------------------------------------
// Reconnect + replay: a mid-stream ECONNRESET on send must not lose
// updates, and estimates stay one-sided against an exact counter.
// --------------------------------------------------------------------

TEST(NetFault, SendResetReconnectsReplaysAndStaysOneSided) {
  Server server(SmallServer());
  ASSERT_EQ(server.Start(), std::nullopt);

  FaultInjectingSocket faults;
  // Send index 0 is the HELLO; the reset lands a few UPDATE batches in.
  faults.ArmSendErrorAt(6, ECONNRESET);

  ClientOptions options;
  options.port = server.port();
  options.ack_every = 4;
  options.max_retries = 3;
  options.retry_backoff_ms = 1;
  options.auto_reconnect = true;
  options.io = faults.Hooks();
  Client client;
  ASSERT_EQ(client.Connect(options), std::nullopt);

  const auto tuples = TestStream(20'000);
  for (size_t offset = 0; offset < tuples.size(); offset += 500) {
    const size_t n = std::min<size_t>(500, tuples.size() - offset);
    ASSERT_EQ(client.Update(std::span<const Tuple>(tuples.data() + offset,
                                                   n)),
              std::nullopt);
  }
  ASSERT_EQ(client.Flush(), std::nullopt);
  EXPECT_EQ(client.sent_tuples(), tuples.size());
  EXPECT_GE(client.reconnects(), 1u) << "the armed reset must have bitten";

  // At-least-once delivery: every key's estimate dominates its exact
  // count even though some batches were replayed. The ack only means
  // "enqueued" — the shard workers may still be applying the last
  // batches — so poll until the estimates have caught up before
  // asserting (bounded staleness, OPERATIONS.md "Ingest modes").
  std::unordered_map<item_t, uint64_t> exact;
  for (const Tuple& t : tuples) exact[t.key] += t.value;
  std::vector<item_t> keys;
  for (const auto& [key, count] : exact) {
    keys.push_back(key);
    if (keys.size() == 1024) break;
  }
  std::vector<uint64_t> estimates;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    ASSERT_EQ(client.QueryBatch(keys, &estimates), std::nullopt);
    bool dominated = true;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (estimates[i] < exact[keys[i]]) dominated = false;
    }
    if (dominated || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_GE(estimates[i], exact[keys[i]]) << "key " << keys[i];
  }
}

// --------------------------------------------------------------------
// Deadlines.
// --------------------------------------------------------------------

TEST(NetFault, ReadDeadlineFiresAgainstSilentServer) {
  MiniServer server(MiniServer::Behavior::kSilentAfterHello);
  ASSERT_TRUE(server.ok());

  const uint64_t expired_before =
      NetMetrics::Get().deadline_expired.Value();
  ClientOptions options;
  options.port = server.port();
  options.read_timeout_ms = 200;
  Client client;
  ASSERT_EQ(client.Connect(options), std::nullopt);

  const auto start = std::chrono::steady_clock::now();
  uint64_t estimate = 0;
  const auto error = client.Query(1, &estimate);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("deadline"), std::string::npos) << *error;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_GT(NetMetrics::Get().deadline_expired.Value(), expired_before);
}

TEST(NetFault, ConnectDeadlineFiresAgainstNeverAcceptingListener) {
  // A bound listener that never accepts, its backlog pre-filled so the
  // client's SYN is dropped and the dial genuinely hangs.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const uint16_t port = ntohs(addr.sin_port);
  std::vector<int> fillers;
  for (int i = 0; i < 16; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    // Nonblocking: we only need the SYNs in flight, not the handshakes.
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(fd);
  }

  ClientOptions options;
  options.port = port;
  options.connect_timeout_ms = 300;
  Client client;
  const auto start = std::chrono::steady_clock::now();
  const auto error = client.Connect(options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(error.has_value())
      << "connect against a full backlog must not succeed";
  EXPECT_LT(elapsed, std::chrono::seconds(10));

  for (int fd : fillers) ::close(fd);
  ::close(listen_fd);
}

// --------------------------------------------------------------------
// On-wire corruption: a flipped length-prefix bit must poison the
// stream, not feed garbage to the parser.
// --------------------------------------------------------------------

TEST(NetFault, BitFlippedLengthPrefixDetected) {
  Server server(SmallServer());
  ASSERT_EQ(server.Start(), std::nullopt);

  FaultInjectingSocket faults;
  // Byte 2 of the little-endian length prefix: +8 MiB, beyond the
  // 1 MiB cap, so the decoder poisons instantly. Armed on every early
  // recv index because the indices of EAGAIN probes vary with timing;
  // exactly one recv returns the response bytes and gets flipped.
  for (uint64_t i = 0; i < 8; ++i) faults.ArmRecvBitFlip(i, 2, 7);

  ClientOptions options;
  options.port = server.port();
  options.read_timeout_ms = 2000;  // backstop; corruption fails sooner
  options.io = faults.Hooks();
  Client client;
  const auto error = client.Connect(options);
  ASSERT_TRUE(error.has_value());
  EXPECT_FALSE(client.connected());

  // The server is unharmed: a clean client connects fine.
  Client clean;
  EXPECT_EQ(clean.Connect({.port = server.port()}), std::nullopt);
}

// --------------------------------------------------------------------
// Server hardening: idle disconnect and graceful drain.
// --------------------------------------------------------------------

TEST(NetFault, IdleConnectionDisconnectedAndCounted) {
  ServerOptions options = SmallServer();
  options.idle_timeout_ms = 200;
  Server server(options);
  ASSERT_EQ(server.Start(), std::nullopt);

  const uint64_t idle_before =
      NetMetrics::Get().idle_disconnects.Value();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  // Send nothing; the slow-loris deadline must cut us loose with a
  // kShuttingDown notice followed by EOF.
  FrameDecoder decoder;
  uint8_t buffer[512];
  bool got_eof = false;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start <
         std::chrono::seconds(10)) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      got_eof = true;
      break;
    }
    decoder.Feed(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_TRUE(got_eof);
  const auto notice = decoder.Next();
  ASSERT_TRUE(notice.has_value());
  EXPECT_EQ(notice->status, NetStatus::kShuttingDown);
  EXPECT_GT(NetMetrics::Get().idle_disconnects.Value(), idle_before);
}

// A meaningful idle deadline must not cut off a connection that is
// slowly but steadily making progress.
TEST(NetFault, TricklingConnectionSurvivesIdleDeadline) {
  ServerOptions options = SmallServer();
  options.idle_timeout_ms = 400;
  Server server(options);
  ASSERT_EQ(server.Start(), std::nullopt);
  Client client;
  ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt);
  const auto tuples = TestStream(100);
  for (int round = 0; round < 5; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    ASSERT_EQ(client.Update(tuples), std::nullopt) << "round " << round;
    ASSERT_EQ(client.Flush(), std::nullopt) << "round " << round;
  }
  EXPECT_EQ(client.last_ack().received_tuples, 5 * tuples.size());
}

// --------------------------------------------------------------------
// Reconnect-replay accounting: replayed batches are flagged on the
// wire and booked into their own server counter, while the cumulative
// per-connection ack keeps counting them (the client retires its
// replay buffer against that figure — PROTOCOL.md "Ack-based replay").
// --------------------------------------------------------------------

TEST(NetFault, ReplayedBatchesBookedSeparatelyFromFirstTransmissions) {
  Server server(SmallServer());
  ASSERT_EQ(server.Start(), std::nullopt);

  FaultInjectingSocket faults;
  faults.ArmSendErrorAt(6, ECONNRESET);

  const uint64_t update_before = NetMetrics::Get().update_tuples.Value();
  const uint64_t replayed_before =
      NetMetrics::Get().replayed_tuples.Value();

  ClientOptions options;
  options.port = server.port();
  options.ack_every = 4;
  options.max_retries = 3;
  options.retry_backoff_ms = 1;
  options.auto_reconnect = true;
  options.io = faults.Hooks();
  Client client;
  ASSERT_EQ(client.Connect(options), std::nullopt);

  const auto tuples = TestStream(20'000);
  for (size_t offset = 0; offset < tuples.size(); offset += 500) {
    const size_t n = std::min<size_t>(500, tuples.size() - offset);
    ASSERT_EQ(client.Update(std::span<const Tuple>(tuples.data() + offset,
                                                   n)),
              std::nullopt);
  }
  ASSERT_EQ(client.Flush(), std::nullopt);
  ASSERT_GE(client.reconnects(), 1u) << "the armed reset must have bitten";
  ASSERT_GT(client.replayed_tuples(), 0u);

  const uint64_t update_delta =
      NetMetrics::Get().update_tuples.Value() - update_before;
  const uint64_t replayed_delta =
      NetMetrics::Get().replayed_tuples.Value() - replayed_before;
  // Every replayed tuple lands in the replay counter, none of them in
  // the first-transmission counter. The pre-fix server double-booked
  // replays into update_tuples, so update_delta exceeded the stream
  // size — the <= bound below is the fails-on-old observable.
  EXPECT_EQ(replayed_delta, client.replayed_tuples());
  EXPECT_GT(replayed_delta, 0u);
  EXPECT_LE(update_delta, tuples.size());
  // At-least-once: across both counters the server holds at least one
  // copy of every tuple. (The ack's received_tuples is per-connection
  // — it reset with the reconnect — so totals are checked against the
  // process-wide metrics, not the final ack.)
  EXPECT_GE(update_delta + replayed_delta, tuples.size());
}

// --------------------------------------------------------------------
// Exit-flush shed accounting (the fails-on-old regression): weight
// dropped while flushing a closing connection's delta accumulator must
// reach the exit-flush counter, not vanish with the connection.
// --------------------------------------------------------------------

TEST(NetFault, ExitFlushShedWeightIsCounted) {
  ServerOptions options = SmallServer();
  options.shards.ingest_mode = IngestMode::kDelta;
  options.shards.overload = OverloadPolicy::kShed;
  options.shards.max_queue_batches = 1;
  options.shards.max_enqueue_wait_ms = 1;
  options.shards.delta_flush_tuples = 1u << 30;  // only the exit flush
  Server server(options);
  ASSERT_EQ(server.Start(), std::nullopt);
  server.shards().StallWorkersForTesting(true);

  // Occupy every 1-deep shard queue with an in-process delta so the
  // connection's teardown flush cannot enqueue and must shed.
  std::vector<Tuple> tuples;
  for (item_t key = 0; key < 512; ++key) tuples.push_back(Tuple{key, 3});
  DeltaIngestState filler = server.shards().MakeDeltaState();
  server.shards().Ingest(tuples, &filler);
  EXPECT_EQ(server.shards().FlushDeltas(filler), 0u);

  const uint64_t shed_before = NetMetrics::Get().exit_flush_shed.Value();
  {
    Client client;
    ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt);
    ASSERT_EQ(client.Update(tuples), std::nullopt);
    // The ack proves the server absorbed the batch into the
    // connection's accumulator before we disconnect.
    ASSERT_EQ(client.Flush(), std::nullopt);
    EXPECT_EQ(client.last_ack().received_tuples, tuples.size());
  }
  // The connection thread runs its teardown flush asynchronously.
  uint64_t shed_delta = 0;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start <
         std::chrono::seconds(10)) {
    shed_delta = NetMetrics::Get().exit_flush_shed.Value() - shed_before;
    if (shed_delta != 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(shed_delta, 3ull * tuples.size())
      << "the teardown flush dropped weight without booking it";
  server.shards().StallWorkersForTesting(false);
  server.Stop();
}

TEST(NetFault, StopDrainsBufferedFramesBeforeClosing) {
  ServerOptions options = SmallServer();
  Server server(options);
  ASSERT_EQ(server.Start(), std::nullopt);
  Client client;
  ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt);
  const auto tuples = TestStream(30'000);
  ASSERT_EQ(client.Update(tuples), std::nullopt);
  // No Flush: the tail batches may still sit in the server's receive
  // buffer when Stop() lands. The graceful drain must apply them.
  server.Stop();
  const WireStats stats = server.shards().GetStats();
  EXPECT_EQ(stats.ingested, tuples.size());
}

#endif  // ASKETCH_NET_TESTS

}  // namespace
}  // namespace net
}  // namespace asketch
